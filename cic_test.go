package cic_test

import (
	"bytes"
	"math"
	"testing"

	"cic"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := cic.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SampleRate() != 1e6 {
		t.Errorf("sample rate %g", cfg.SampleRate())
	}
	if cfg.SamplesPerSymbol() != 1024 {
		t.Errorf("samples/symbol %d", cfg.SamplesPerSymbol())
	}
	n, err := cfg.PacketSamples(28)
	if err != nil || n <= 0 {
		t.Errorf("PacketSamples: %d, %v", n, err)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, mutate := range []func(*cic.Config){
		func(c *cic.Config) { c.SpreadingFactor = 3 },
		func(c *cic.Config) { c.Bandwidth = 0 },
		func(c *cic.Config) { c.Oversampling = 3 },
		func(c *cic.Config) { c.CodingRate = 9 },
	} {
		cfg := cic.DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%+v validated", cfg)
		}
	}
}

func TestTransmitterReceiverLoopback(t *testing.T) {
	cfg := cic.DefaultConfig()
	payload := []byte("public API loopback")
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: payload, StartSample: 5000, SNR: 25, CFO: 1500},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := cic.NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := recv.DecodeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || !pkts[0].OK || !bytes.Equal(pkts[0].Payload, payload) {
		t.Fatalf("loopback failed: %+v", pkts)
	}
	if math.Abs(pkts[0].CFO-1500) > 300 {
		t.Errorf("CFO estimate %g", pkts[0].CFO)
	}
	if pkts[0].Start < 4990 || pkts[0].Start > 5010 {
		t.Errorf("start %d", pkts[0].Start)
	}
}

func TestCollisionDecodeViaPublicAPI(t *testing.T) {
	cfg := cic.DefaultConfig()
	// 4/7 coding: one marginal ±1-bin symbol slip per packet stays inside
	// the FEC budget, keeping this deterministic test robust.
	cfg.CodingRate = 3
	symSamples := int64(cfg.SamplesPerSymbol())
	p1 := []byte("collision packet alpha")
	p2 := []byte("collision packet bravo")
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: p1, StartSample: 4096, SNR: 25, CFO: 900},
		{Payload: p2, StartSample: 4096 + 18*symSamples + 300, SNR: 22, CFO: -2100},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	recv, _ := cic.NewReceiver(cfg)
	pkts, err := recv.DecodeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	decoded := 0
	for _, p := range pkts {
		if p.OK && (bytes.Equal(p.Payload, p1) || bytes.Equal(p.Payload, p2)) {
			decoded++
		}
	}
	if decoded != 2 {
		t.Errorf("decoded %d of 2 collided packets", decoded)
	}
}

func TestAlgorithmSelection(t *testing.T) {
	cfg := cic.DefaultConfig()
	payload := []byte("algo check")
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: payload, StartSample: 4096, SNR: 25},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	iq := cic.Samples(src)
	for _, algo := range cic.Algorithms() {
		recv, err := cic.NewReceiver(cfg, cic.WithAlgorithm(algo), cic.WithWorkers(2))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if recv.Algorithm() != algo {
			t.Errorf("Algorithm() = %s, want %s", recv.Algorithm(), algo)
		}
		pkts, err := recv.DecodeBuffer(iq)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		ok := false
		for _, p := range pkts {
			if p.OK && bytes.Equal(p.Payload, payload) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s failed to decode a clean packet", algo)
		}
	}
	if _, err := cic.NewReceiver(cfg, cic.WithAlgorithm("nope")); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestAblationOptionsAccepted(t *testing.T) {
	cfg := cic.DefaultConfig()
	if _, err := cic.NewReceiver(cfg,
		cic.WithoutSED(), cic.WithoutCFOFilter(), cic.WithoutPowerFilter()); err != nil {
		t.Fatal(err)
	}
}

func TestCF32RoundTrip(t *testing.T) {
	iq := []complex128{1, 2i, complex(-0.5, 0.25), complex(1e-3, -1e-3)}
	var buf bytes.Buffer
	if err := cic.WriteCF32(&buf, iq); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(iq)*8 {
		t.Errorf("cf32 size %d", buf.Len())
	}
	back, err := cic.ReadCF32(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(iq) {
		t.Fatalf("round trip length %d", len(back))
	}
	for i := range iq {
		if math.Abs(real(back[i])-real(iq[i])) > 1e-6 || math.Abs(imag(back[i])-imag(iq[i])) > 1e-6 {
			t.Errorf("sample %d: %v != %v", i, back[i], iq[i])
		}
	}
	// Truncated stream is an error.
	bad := bytes.NewReader([]byte{1, 2, 3})
	if _, err := cic.ReadCF32(bad); err == nil {
		t.Error("truncated cf32 accepted")
	}
}

func TestCF32File(t *testing.T) {
	path := t.TempDir() + "/x.cf32"
	iq := []complex128{1, -1i}
	if err := cic.WriteCF32File(path, iq); err != nil {
		t.Fatal(err)
	}
	back, err := cic.ReadCF32File(path)
	if err != nil || len(back) != 2 {
		t.Fatalf("file round trip: %v %d", err, len(back))
	}
}

func TestMemorySamples(t *testing.T) {
	src := cic.MemorySamples([]complex128{1, 2, 3})
	s, e := src.Span()
	if s != 0 || e != 3 {
		t.Errorf("span [%d,%d)", s, e)
	}
	buf := make([]complex128, 5)
	src.Read(buf, -1)
	if buf[0] != 0 || buf[1] != 1 || buf[4] != 0 {
		t.Errorf("read %v", buf)
	}
}

// TestDecimateCaptureEndToEnd: a packet captured at 8x oversampling,
// decimated by 2, decodes with a 4x configuration.
func TestDecimateCaptureEndToEnd(t *testing.T) {
	wide := cic.DefaultConfig()
	wide.Oversampling = 8
	payload := []byte("wideband capture")
	src, err := cic.SimulateCollision(wide, []cic.Emission{
		{Payload: payload, StartSample: 8192, SNR: 25, CFO: 2100},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	iq := cic.Samples(src)
	narrowIQ, err := cic.Decimate(iq, 2)
	if err != nil {
		t.Fatal(err)
	}
	narrow := cic.DefaultConfig() // Oversampling 4
	recv, err := cic.NewReceiver(narrow)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := recv.DecodeBuffer(narrowIQ)
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for _, p := range pkts {
		if p.OK && bytes.Equal(p.Payload, payload) {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("decimated capture failed to decode: %+v", pkts)
	}
	if _, err := cic.Decimate(iq, 0); err == nil {
		t.Error("factor 0 accepted")
	}
}

// TestImplicitHeaderEndToEnd: implicit-header mode through the full radio
// path (both ends configured with the fixed length).
func TestImplicitHeaderEndToEnd(t *testing.T) {
	cfg := cic.DefaultConfig()
	cfg.ImplicitHeader = true
	cfg.ImplicitLength = 16
	payload := []byte("implicit mode 16")
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: payload, StartSample: 4096, SNR: 25, CFO: 700},
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := cic.NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := recv.DecodeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || !pkts[0].OK || !bytes.Equal(pkts[0].Payload, payload) {
		t.Fatalf("implicit end-to-end failed: %+v", pkts)
	}
	// Wrong fixed length at the transmitter must be rejected.
	tx, _ := cic.NewTransmitter(cfg)
	if _, err := tx.Modulate([]byte("short")); err == nil {
		t.Error("length mismatch accepted in implicit mode")
	}
}

func TestTransmitterGeometryMatchesConfig(t *testing.T) {
	cfg := cic.DefaultConfig()
	tx, err := cic.NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{0, 1, 28, 255} {
		payload := make([]byte, l)
		wave, err := tx.Modulate(payload)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cfg.PacketSamples(l)
		if err != nil {
			t.Fatal(err)
		}
		if len(wave) != want {
			t.Errorf("payload %d: %d samples, want %d", l, len(wave), want)
		}
	}
	if _, err := tx.Modulate(make([]byte, 256)); err == nil {
		t.Error("oversize payload accepted")
	}
}

func TestSamplesEmptySpan(t *testing.T) {
	if s := cic.Samples(cic.MemorySamples(nil)); s != nil {
		t.Errorf("empty source produced %d samples", len(s))
	}
}

func TestSimulateCollisionDeterministic(t *testing.T) {
	cfg := cic.DefaultConfig()
	ems := []cic.Emission{{Payload: []byte("det"), StartSample: 1000, SNR: 20}}
	a, err := cic.SimulateCollision(cfg, ems, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cic.SimulateCollision(cfg, ems, 5)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := cic.Samples(a), cic.Samples(b)
	if len(sa) != len(sb) {
		t.Fatal("lengths differ")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed produced different airs")
		}
	}
}
