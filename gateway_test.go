package cic_test

import (
	"bytes"
	"testing"

	"cic"
)

// collectPackets drains the gateway's channel in the background.
func collectPackets(gw *cic.Gateway) <-chan []cic.Packet {
	done := make(chan []cic.Packet, 1)
	go func() {
		var all []cic.Packet
		for p := range gw.Packets() {
			all = append(all, p)
		}
		done <- all
	}()
	return done
}

func TestGatewayStreamsSinglePacket(t *testing.T) {
	cfg := cic.DefaultConfig()
	payload := []byte("streaming hello")
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: payload, StartSample: 4096, SNR: 25, CFO: 1200},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	iq := cic.Samples(src)
	// Pad with noise-free tail so the air moves past the packet end.
	iq = append(iq, make([]complex128, 8*cfg.SamplesPerSymbol())...)

	gw, err := cic.NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := collectPackets(gw)
	// Feed in SDR-sized chunks.
	chunk := 4096
	for off := 0; off < len(iq); off += chunk {
		end := off + chunk
		if end > len(iq) {
			end = len(iq)
		}
		if _, err := gw.Write(iq[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	all := <-done
	if len(all) != 1 || !all[0].OK || !bytes.Equal(all[0].Payload, payload) {
		t.Fatalf("gateway stream: %+v", all)
	}
}

func TestGatewayStreamsCollision(t *testing.T) {
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3 // tolerate a marginal ±1-bin slip
	sym := int64(cfg.SamplesPerSymbol())
	p1 := []byte("stream collision A")
	p2 := []byte("stream collision B")
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: p1, StartSample: 4096, SNR: 26, CFO: 1700},
		{Payload: p2, StartSample: 4096 + 19*sym + 113, SNR: 23, CFO: -2600},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	iq := cic.Samples(src)
	iq = append(iq, make([]complex128, 8*cfg.SamplesPerSymbol())...)

	gw, err := cic.NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := collectPackets(gw)
	for off := 0; off < len(iq); off += 10000 {
		end := off + 10000
		if end > len(iq) {
			end = len(iq)
		}
		if _, err := gw.Write(iq[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	gw.Close()
	all := <-done
	got := map[string]bool{}
	for _, p := range all {
		if p.OK {
			got[string(p.Payload)] = true
		}
	}
	if !got[string(p1)] || !got[string(p2)] {
		t.Fatalf("gateway missed collided packets: %+v", all)
	}
}

func TestGatewayFlushOnClose(t *testing.T) {
	cfg := cic.DefaultConfig()
	payload := []byte("flush me")
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: payload, StartSample: 2048, SNR: 25},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	iq := cic.Samples(src) // no tail: only Close's flush can decode it

	gw, _ := cic.NewGateway(cfg)
	done := collectPackets(gw)
	if _, err := gw.Write(iq); err != nil {
		t.Fatal(err)
	}
	gw.Close()
	all := <-done
	if len(all) != 1 || !all[0].OK {
		t.Fatalf("flush did not deliver the packet: %+v", all)
	}
}

func TestGatewayWriteAfterClose(t *testing.T) {
	gw, err := cic.NewGateway(cic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gw.Close()
	if _, err := gw.Write(make([]complex128, 10)); err == nil {
		t.Error("Write after Close succeeded")
	}
	if err := gw.Close(); err != nil {
		t.Error("double Close errored")
	}
}

func TestGatewayRejectsBatchOnlyAlgorithms(t *testing.T) {
	if _, err := cic.NewGateway(cic.DefaultConfig(), cic.WithAlgorithm(cic.AlgorithmFTrack)); err == nil {
		t.Error("gateway accepted a batch-only algorithm")
	}
	if _, err := cic.NewGateway(cic.DefaultConfig(), cic.WithAlgorithm(cic.AlgorithmStrawman)); err != nil {
		t.Errorf("strawman gateway rejected: %v", err)
	}
}

func TestGatewayBoundedMemory(t *testing.T) {
	cfg := cic.DefaultConfig()
	gw, err := cic.NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	go func() {
		for range gw.Packets() {
		}
	}()
	// Stream two seconds of pure silence: buffered samples must stay
	// bounded by the ring size regardless of input volume.
	chunk := make([]complex128, 1<<15)
	total := int64(0)
	for total < int64(2*cfg.SampleRate()) {
		if _, err := gw.Write(chunk); err != nil {
			t.Fatal(err)
		}
		total += int64(len(chunk))
	}
	maxPkt, _ := cfg.PacketSamples(255)
	if got := gw.BufferedSamples(); got > int64(3*maxPkt) {
		t.Errorf("gateway buffered %d samples, ring bound %d", got, 3*maxPkt)
	}
}

// TestGatewayRingWrap: packets arriving long after the stream start (well
// past the ring capacity) must still decode — the ring base/head arithmetic
// has to stay consistent across many wraps.
func TestGatewayRingWrap(t *testing.T) {
	cfg := cic.DefaultConfig()
	payload := []byte("after the wrap")
	maxPkt, _ := cfg.PacketSamples(255)
	late := int64(7*maxPkt + 12345) // several ring lengths into the stream
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: payload, StartSample: late, SNR: 25, CFO: -1600},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, end := src.Span()
	gw, err := cic.NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := collectPackets(gw)
	buf := make([]complex128, 8192)
	for pos := int64(0); pos < end+int64(4*cfg.SamplesPerSymbol()); pos += int64(len(buf)) {
		src.Read(buf, pos)
		if _, err := gw.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	gw.Close()
	all := <-done
	found := false
	for _, p := range all {
		if p.OK && bytes.Equal(p.Payload, payload) {
			if d := p.Start - late; d > 2 || d < -2 {
				t.Errorf("start %d, want %d", p.Start, late)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("packet past the ring wrap not decoded: %+v", all)
	}
}
