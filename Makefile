# Developer / CI entry points. `make ci` is the gate: vet + the project
# invariant linter + build + the full test suite under the race detector
# + the short benchmark sweep + short fuzz passes over the byte-level
# parsers + the network-pipeline smoke test.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all vet lint lint-fast build test race bench bench-gateway bench-json bench-matrix bench-gate fuzz chaos smoke experiments-smoke results ci

all: ci

vet:
	$(GO) vet ./...

# Project-specific safety invariants: the per-package analyzers
# (nopanic, boundedalloc, errwrap, clockinject, nilsafeobs, atomicalign,
# hotalloc) plus the whole-program flow analyzers (hotpropagate,
# goroutineleak, lockdiscipline, arenaescape). See docs/LINTING.md.
# -v puts per-analyzer wall time in the CI log; on failure the SARIF
# artifact is kept and its path printed for annotation upload.
LINT_SARIF ?= lint.sarif
lint:
	@start=$$(date +%s); \
	if ! $(GO) run ./cmd/cic-lint -v -sarif-file $(LINT_SARIF) ./...; then \
		echo "lint: FAILED in $$(( $$(date +%s) - start ))s — SARIF report: $(LINT_SARIF)" >&2; \
		exit 1; \
	fi; \
	rm -f $(LINT_SARIF); \
	echo "lint: OK in $$(( $$(date +%s) - start ))s"

# Local iteration: lint only the packages with Go changes since the
# origin/main merge-base. Whole-program analyzers see just these
# packages, so cross-package reachability is partial — `make lint`
# (and ci) still runs the full module.
lint-fast:
	@base=$$(git merge-base origin/main HEAD 2>/dev/null) || base=; \
	if [ -z "$$base" ]; then \
		echo "lint-fast: no origin/main merge-base; running the full module" >&2; \
		exec $(GO) run ./cmd/cic-lint ./...; \
	fi; \
	pkgs=$$(git diff --name-only "$$base" HEAD -- '*.go'; git diff --name-only -- '*.go'); \
	dirs=$$(echo "$$pkgs" | grep -v '^$$' | xargs -r -n1 dirname | sort -u | grep -v testdata | sed 's|^|./|'); \
	if [ -z "$$dirs" ]; then echo "lint-fast: no Go changes since $$base"; exit 0; fi; \
	echo "lint-fast: $$dirs"; \
	$(GO) run ./cmd/cic-lint $$dirs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# ./... includes internal/lint, so the race run also drives the lint
# fixture harness and the parallel package loader (checkDAG workers)
# under the race detector.
race:
	$(GO) test -race ./...

# Short benchmark sweep: the streaming gateway pipeline plus the kernel
# micro-benchmarks. One iteration each — a smoke test that the benches
# run, not a measurement (use bench-gateway for numbers).
bench:
	$(GO) test -run '^$$' -bench 'GatewayStream|FFT1024|FFT4096|ForwardWindowed1024|ForwardReal1024|DFTBin1024|DechirpAndFold|MustPlanParallel|CICSymbol' -benchtime=1x ./ ./internal/dsp/

# Measured gateway streaming throughput at 1/4/GOMAXPROCS workers;
# baselines recorded in BENCH_gateway.json.
bench-gateway:
	$(GO) test -run '^$$' -bench 'GatewayStream' -benchtime=5x ./

# Re-record BENCH_gateway.json from a measured run: the gateway streaming
# benchmark (including the instrumentation-overhead sub-benchmark, which
# asserts the <=2% budget at >=10 iterations whenever the host is quiet
# enough to resolve it) piped through cic-bench into the checked-in JSON
# shape.
bench-json:
	$(GO) test -run '^$$' -bench 'GatewayStream' -benchtime=10x ./ | $(GO) run ./cmd/cic-bench -out BENCH_gateway.json

# Re-record the full benchmark matrix: the gateway streaming record
# (bench-json) plus the DSP kernel record. Run on the machine whose
# numbers you intend to commit; the records embed the host environment.
bench-matrix: bench-json
	$(GO) test -run '^$$' -bench 'FFT4096|ForwardWindowed1024|ForwardReal1024|DFTBin1024' -benchtime=1000x ./internal/dsp/ | \
		$(GO) run ./cmd/cic-bench -out BENCH_dsp.json \
		-benchmark "DSP kernels" \
		-description "FFT kernel micro-benchmarks: radix-4 forward transform, fused windowed transform, packed real-input transform, Goertzel fractional-bin DTFT (make bench-matrix)."

# Regression gate against the committed records: allocs/op must stay
# within max(+10%, +5) of BENCH_gateway.json / BENCH_dsp.json. Alloc
# counts are deterministic, so this is CI-safe; wall-clock numbers are
# informational only (see scripts/bench_gate.sh).
bench-gate:
	./scripts/bench_gate.sh

# Short fuzz passes over every byte-level parser that faces untrusted
# input: the cf32 reader and the cic-gatewayd frame/handshake parsers.
# Go allows one -fuzz target per invocation, hence one run per target.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadCF32$$' -fuzztime $(FUZZTIME) ./
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzParseHello$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzPublishLineFraming$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzFaultConnFraming$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzFaultTwoHop$$' -fuzztime $(FUZZTIME) ./internal/fault/
	$(GO) test -run '^$$' -fuzz '^FuzzParseBenchLine$$' -fuzztime $(FUZZTIME) ./cmd/cic-bench/
	$(GO) test -run '^$$' -fuzz '^FuzzParseExperimentConfig$$' -fuzztime $(FUZZTIME) ./internal/experiment/

# Chaos end-to-end suite: concurrent sessions under seeded fault
# schedules (forced disconnects, worker panics, process-restart resume)
# must produce record-identical NDJSON vs a fault-free run, and the
# cluster suite does the same across a sharded fleet (backend kills,
# partitions, rebalances mid-collision). The seed matrix is fixed
# inside the tests so runs are reproducible.
chaos:
	$(GO) test -race -run '^TestChaos' -count=1 ./internal/server/ ./internal/cluster/

# Loopback end-to-end smoke of the ingestion pipeline:
# cic-gen capture → cic-feed → cic-gatewayd → NDJSON assert (plus a
# cic-decode -stream cross-check). See scripts/smoke.sh.
smoke:
	./scripts/smoke.sh

# Declarative experiment harness smoke: the committed downscaled config
# (experiments/smoke.json) end-to-end in both drive modes — in-process
# and through a spawned cic-gatewayd — including a kill mid-matrix whose
# journal resume must aggregate byte-identically. See
# scripts/experiments_smoke.sh.
experiments-smoke:
	./scripts/experiments_smoke.sh

# Regenerate every committed figure CSV in results/ from its config
# under experiments/. Deterministic: identical invocations reproduce the
# files byte-for-byte (≈20 min; the throughput/detection sweeps dominate).
results:
	for c in spectra heisenberg cancellation clutter maps snr ablation \
	         temporal throughput detection; do \
		$(GO) run ./cmd/cic-experiments -config experiments/$$c.json -outdir results -quiet || exit 1; \
	done

ci: vet lint build race bench bench-gate fuzz chaos smoke experiments-smoke
