// Phybits: a tour of the LoRa PHY bit pipeline this repository implements
// from scratch — whitening, Hamming FEC, the diagonal interleaver, Gray
// mapping and the explicit header — showing how a fully corrupted chirp
// symbol is repaired before the payload CRC ever sees it.
//
//	go run ./examples/phybits
package main

import (
	"fmt"
	"log"

	"cic/internal/phy"
)

func main() {
	cfg := phy.Config{SF: 8, CR: phy.CR48, HasCRC: true}
	payload := []byte("hello, LoRa PHY")

	symbols, err := phy.Encode(payload, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("payload %q → %d chirp symbols (SF%d, CR %v)\n",
		payload, len(symbols), cfg.SF, cfg.CR)
	fmt.Printf("header block: %v\n", symbols[:phy.HeaderSymbolCount])
	fmt.Printf("first payload block: %v\n", symbols[phy.HeaderSymbolCount:phy.HeaderSymbolCount+cfg.CR.CodewordBits()])

	// Destroy one entire payload symbol — as a collision would — and watch
	// the diagonal interleaver spread the damage into single-bit errors
	// that Hamming(8,4) repairs.
	corrupted := append([]uint16(nil), symbols...)
	victim := phy.HeaderSymbolCount + 3
	corrupted[victim] ^= 0xAB
	fmt.Printf("\ncorrupting symbol %d: %d → %d\n", victim, symbols[victim], corrupted[victim])

	res, err := phy.Decode(corrupted, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded %q  crcOK=%v  fecCorrected=%d bits\n",
		res.Payload, res.CRCOK, res.FECCorrected)

	// The same corruption at coding rate 4/5 (no correction capability) is
	// detected by the CRC instead.
	cfg45 := phy.Config{SF: 8, CR: phy.CR45, HasCRC: true}
	symbols45, err := phy.Encode(payload, cfg45)
	if err != nil {
		log.Fatal(err)
	}
	symbols45[phy.HeaderSymbolCount+3] ^= 0xAB
	res45, err := phy.Decode(symbols45, cfg45)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame corruption at CR 4/5: crcOK=%v (error detected, packet dropped)\n", res45.CRCOK)
}
