// Quickstart: synthesise a three-packet LoRa collision and decode every
// packet with CIC — the scenario a standard gateway resolves as at most
// one packet.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cic"
)

func main() {
	cfg := cic.DefaultConfig() // SF8, 250 kHz, CR 4/5 — the paper's setup

	// Three transmitters send overlapping packets: each starts before the
	// previous one ends, with distinct receive powers and oscillator
	// offsets, exactly like independent devices in the wild.
	symbol := int64(cfg.SamplesPerSymbol())
	air, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: []byte("sensor-A: 21.4C"), StartSample: 4096, SNR: 28, CFO: 1800},
		{Payload: []byte("sensor-B: door open"), StartSample: 4096 + 15*symbol + 211, SNR: 24, CFO: -3400},
		{Payload: []byte("sensor-C: 3.71V"), StartSample: 4096 + 31*symbol + 87, SNR: 26, CFO: 650},
	}, 42)
	if err != nil {
		log.Fatal(err)
	}

	// One receiver, two algorithms: standard LoRa (what a commercial
	// gateway does) vs CIC.
	for _, algo := range []cic.Algorithm{cic.AlgorithmLoRa, cic.AlgorithmCIC} {
		recv, err := cic.NewReceiver(cfg, cic.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		packets, err := recv.DecodeSource(air)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s decoded %d packet(s):\n", algo, len(packets))
		for _, p := range packets {
			if p.OK {
				fmt.Printf("  @%-7d snr=%4.1f dB cfo=%+5.0f Hz  %q\n", p.Start, p.SNR, p.CFO, p.Payload)
			}
		}
	}
}
