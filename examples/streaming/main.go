// Streaming: decode collided packets in real time with the Gateway API —
// IQ samples arrive in SDR-sized chunks and decoded packets come out of a
// channel as soon as each transmission completes (the paper's §6 gateway /
// C-RAN deployment shape).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"runtime"

	"cic"
)

func main() {
	cfg := cic.DefaultConfig()
	sym := int64(cfg.SamplesPerSymbol())

	// A burst of three overlapping transmissions followed by a quiet gap,
	// then a fourth packet.
	air, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: []byte("meter-17: 230V"), StartSample: 4096, SNR: 27, CFO: 1100},
		{Payload: []byte("meter-04: 231V"), StartSample: 4096 + 14*sym + 77, SNR: 24, CFO: -2800},
		{Payload: []byte("meter-22: 229V"), StartSample: 4096 + 29*sym + 501, SNR: 25, CFO: 400},
		{Payload: []byte("meter-09: 230V"), StartSample: 4096 + 150*sym, SNR: 26, CFO: -900},
	}, 99)
	if err != nil {
		log.Fatal(err)
	}
	iq := cic.Samples(air)

	// Payload demodulation fans out over a worker pool (one core per
	// worker is the useful maximum); packets still arrive on Packets()
	// in air-time order. The metrics registry collects per-stage counters
	// and latency histograms as the stream flows.
	metrics := cic.NewMetrics()
	gw, err := cic.NewGateway(cfg,
		cic.WithWorkers(runtime.GOMAXPROCS(0)),
		cic.WithMetrics(metrics))
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := range gw.Packets() {
			status := "CRC OK"
			if !p.OK {
				status = "CRC BAD"
			}
			fmt.Printf("rx @%-7d snr=%4.1f dB  %-8s %q\n", p.Start, p.SNR, status, p.Payload)
		}
	}()

	// Feed the air in 8192-sample chunks, as an SDR driver would deliver it.
	const chunk = 8192
	for off := 0; off < len(iq); off += chunk {
		end := off + chunk
		if end > len(iq) {
			end = len(iq)
		}
		if _, err := gw.Write(iq[off:end]); err != nil {
			log.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		log.Fatal(err)
	}
	<-done

	stats := gw.Stats()
	lat := stats.Histograms["decode_latency_seconds"]
	fmt.Printf("stream closed: %d samples in, %d preambles, %d headers, CRC %d/%d, mean latency %.3fms\n",
		stats.Counters["samples_ingested"], stats.Counters["preambles_detected"],
		stats.Counters["headers_decoded"], stats.Counters["crc_pass"],
		stats.Counters["crc_pass"]+stats.Counters["crc_fail"], lat.Mean()*1e3)
}
