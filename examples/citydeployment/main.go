// Citydeployment: the paper's hardest scenario — the D4 outdoor wide-area
// deployment where packets arrive at or below the noise floor (smart
// street lighting over ~2 km², §7.1). Standard LoRa and FTrack collapse
// here; CIC keeps decoding.
//
//	go run ./examples/citydeployment
package main

import (
	"fmt"
	"log"
	"sort"

	"cic/internal/eval"
	"cic/internal/sim"
)

func main() {
	cfg := eval.DefaultConfig()
	cfg.Duration = 2.0

	nw, err := sim.NewNetwork(cfg.Frame, sim.D4, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Show what "sub-noise" means: most street lights reach the gateway
	// below 5 dB SNR, many below 0.
	snrs := make([]float64, 0, len(nw.Nodes))
	for _, n := range nw.Nodes {
		snrs = append(snrs, n.SNRdB)
	}
	sort.Float64s(snrs)
	fmt.Printf("%s: %d street lights, SNR %.1f…%.1f dB (median %.1f)\n",
		sim.D4.Label, len(nw.Nodes), snrs[0], snrs[len(snrs)-1], snrs[len(snrs)/2])

	for _, rate := range []float64{10, 40} {
		run, err := nw.BuildRun(rate, cfg.Duration, cfg.PayloadLen, 13)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\noffered %.0f pkts/s (%d packets):\n", rate, len(run.Truth))
		receivers, err := eval.DefaultReceivers(cfg.Frame, 0)
		if err != nil {
			log.Fatal(err)
		}
		for _, recv := range receivers {
			results, err := recv.Receive(run.Source)
			if err != nil {
				log.Fatal(err)
			}
			score := sim.ScoreDecodes(run, results, cfg.Duration)
			fmt.Printf("  %-8s %3d/%3d decoded (detection %4.0f%%)\n",
				recv.Name(), score.Decoded, score.Offered, 100*score.DetectionRate())
		}
	}
}
