// Gateway: run a paper-style network simulation (20 nodes, Poisson
// traffic, deployment D1) and compare the four receivers' network capacity
// at one offered load — a miniature of Fig 28.
//
//	go run ./examples/gateway
package main

import (
	"fmt"
	"log"
	"time"

	"cic/internal/eval"
	"cic/internal/obs"
	"cic/internal/sim"
)

func main() {
	cfg := eval.DefaultConfig()
	cfg.Duration = 2.0
	const rate = 40.0 // offered load, packets/second network-wide

	nw, err := sim.NewNetwork(cfg.Frame, sim.D1, 7)
	if err != nil {
		log.Fatal(err)
	}
	run, err := nw.BuildRun(rate, cfg.Duration, cfg.PayloadLen, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment %s: %d nodes, %d packets offered over %.0fs (%.0f pkts/s)\n",
		sim.D1.Name, len(nw.Nodes), len(run.Truth), cfg.Duration, rate)

	// The CIC receiver runs instrumented so the decode-stage totals can be
	// reported after the comparison.
	reg := obs.NewRegistry()
	receivers, err := eval.DefaultReceiversObserved(cfg.Frame, 0, obs.NewDecodeMetrics(reg))
	if err != nil {
		log.Fatal(err)
	}
	for _, recv := range receivers {
		t0 := time.Now()
		results, err := recv.Receive(run.Source)
		if err != nil {
			log.Fatal(err)
		}
		score := sim.ScoreDecodes(run, results, cfg.Duration)
		fmt.Printf("%-8s decoded %3d/%3d packets (%5.1f pkts/s) in %v\n",
			recv.Name(), score.Decoded, score.Offered, score.Throughput(), time.Since(t0).Round(time.Millisecond))
	}

	stats := reg.Snapshot()
	fmt.Printf("CIC stats: %d preambles, %d headers, %d symbols, gates sed=%d/%d cfo=%d/%d pow=%d/%d, CRC %d/%d\n",
		stats.Counters[obs.MetricPreamblesDetected], stats.Counters[obs.MetricHeadersDecoded],
		stats.Counters[obs.MetricSymbolsDemodulated],
		stats.Counters[obs.MetricSEDAccept], stats.Counters[obs.MetricSEDReject],
		stats.Counters[obs.MetricCFOAccept], stats.Counters[obs.MetricCFOReject],
		stats.Counters[obs.MetricPowerAccept], stats.Counters[obs.MetricPowerReject],
		stats.Counters[obs.MetricCRCPass], stats.Counters[obs.MetricCRCPass]+stats.Counters[obs.MetricCRCFail])
}
