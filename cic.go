// Package cic is a pure-Go implementation of Concurrent Interference
// Cancellation (CIC) — the LoRa multi-packet collision decoder of Shahid
// et al., SIGCOMM 2021 — together with everything needed to use and
// evaluate it: a LoRa modulator (chirp spread spectrum + full PHY bit
// pipeline), a channel simulator, the prior-art baseline receivers
// (standard LoRa, Choir, FTrack), and an evaluation harness that
// regenerates every figure of the paper.
//
// # Quick start
//
//	cfg := cic.DefaultConfig()
//	tx, _ := cic.NewTransmitter(cfg)
//	wave, _ := tx.Modulate([]byte("hello"))
//	// ... mix waves, add noise (see SimulateCollision) ...
//	rx, _ := cic.NewReceiver(cfg)
//	packets, _ := rx.DecodeBuffer(iq)
//
// The receiver accepts raw complex-baseband IQ (as a []complex128 buffer, a
// SampleSource, or a .cf32 file via ReadCF32) and returns every decodable
// packet, including packets that collide in time — the paper's
// contribution. Algorithm selection (WithAlgorithm) switches between CIC
// and the baseline decoders for comparison.
package cic

import (
	"fmt"

	"cic/internal/chirp"
	"cic/internal/frame"
	"cic/internal/phy"
)

// Config describes a LoRa network's PHY parameters. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// SpreadingFactor is the LoRa SF, 7..12.
	SpreadingFactor int
	// Bandwidth in Hz (125e3, 250e3 or 500e3 for standard LoRa).
	Bandwidth float64
	// Oversampling is the ratio of complex sample rate to bandwidth
	// (a power of two; the paper's USRP capture used 8).
	Oversampling int
	// CodingRate selects the forward error correction: 1..4 for the LoRa
	// rates 4/5, 4/6, 4/7 and 4/8.
	CodingRate int
	// PayloadCRC appends (and checks) the 16-bit payload CRC.
	PayloadCRC bool
	// LowDataRate enables the low data-rate optimisation (reduced-rate
	// payload symbols; normally used at SF11/12).
	LowDataRate bool
	// ImplicitHeader omits the explicit PHY header; all devices must agree
	// on ImplicitLength, CodingRate and PayloadCRC out of band.
	ImplicitHeader bool
	// ImplicitLength is the fixed payload length in implicit-header mode.
	ImplicitLength int
	// SyncWord is the network sync word embedded in the preamble.
	SyncWord byte
}

// DefaultConfig returns the paper's deployment configuration: SF8,
// 250 kHz bandwidth, coding rate 4/5, payload CRC on, 4× oversampling
// (raise Oversampling to 8 to match the paper's USRP capture exactly —
// 4× halves the compute at an accuracy cost that is negligible in
// simulation).
func DefaultConfig() Config {
	return Config{
		SpreadingFactor: 8,
		Bandwidth:       250e3,
		Oversampling:    4,
		CodingRate:      1,
		PayloadCRC:      true,
		SyncWord:        0x34,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	_, err := c.frameConfig()
	return err
}

// SampleRate returns the complex baseband sample rate in Hz.
func (c Config) SampleRate() float64 {
	return float64(c.Oversampling) * c.Bandwidth
}

// SamplesPerSymbol returns 2^SF · Oversampling.
func (c Config) SamplesPerSymbol() int {
	return (1 << c.SpreadingFactor) * c.Oversampling
}

// PacketSamples returns the total samples a packet with the given payload
// length occupies (preamble included).
func (c Config) PacketSamples(payloadLen int) (int, error) {
	fc, err := c.frameConfig()
	if err != nil {
		return 0, err
	}
	return fc.PacketSampleCount(payloadLen), nil
}

// frameConfig converts to the internal layered configuration.
func (c Config) frameConfig() (frame.Config, error) {
	fc := frame.Config{
		Chirp: chirp.Params{
			SF:        c.SpreadingFactor,
			Bandwidth: c.Bandwidth,
			OSR:       c.Oversampling,
		},
		PHY: phy.Config{
			SF:             c.SpreadingFactor,
			CR:             phy.CodingRate(c.CodingRate),
			HasCRC:         c.PayloadCRC,
			LowDataRate:    c.LowDataRate,
			ImplicitHeader: c.ImplicitHeader,
			ImplicitLength: c.ImplicitLength,
		},
		SyncWord: c.SyncWord,
	}
	if err := fc.Validate(); err != nil {
		return frame.Config{}, fmt.Errorf("cic: invalid config: %w", err)
	}
	return fc, nil
}

// Packet is one received LoRa packet.
type Packet struct {
	// Start is the absolute sample index of the packet's first preamble
	// sample.
	Start int64
	// Payload is the decoded payload (nil when the decode failed).
	Payload []byte
	// OK reports a fully verified decode: header checksum and payload CRC
	// both passed.
	OK bool
	// SNR is the estimated signal-to-noise ratio in dB (in-band).
	SNR float64
	// CFO is the estimated carrier frequency offset in Hz.
	CFO float64
	// FECCorrected counts single-bit errors repaired by the Hamming layer.
	FECCorrected int
}

// SampleSource exposes random access to complex baseband samples.
// Implementations must zero-fill reads outside their span and be safe for
// concurrent readers. MemorySamples adapts a plain buffer.
type SampleSource interface {
	// Read fills dst with samples for the absolute window
	// [start, start+len(dst)).
	Read(dst []complex128, start int64)
	// Span returns the half-open range of sample indices carrying signal.
	Span() (start, end int64)
}
