package cic

import (
	"fmt"
	"math/rand"

	"cic/internal/channel"
	"cic/internal/frame"
	"cic/internal/rx"
)

// Transmitter synthesises LoRa packet waveforms at complex baseband.
type Transmitter struct {
	cfg Config
	mod *frame.Modulator
}

// NewTransmitter builds a Transmitter for the configuration.
func NewTransmitter(cfg Config) (*Transmitter, error) {
	fc, err := cfg.frameConfig()
	if err != nil {
		return nil, err
	}
	mod, err := frame.NewModulator(fc)
	if err != nil {
		return nil, err
	}
	return &Transmitter{cfg: cfg, mod: mod}, nil
}

// Modulate encodes payload (up to 255 bytes) into a unit-amplitude packet
// waveform: preamble, SYNC word, down-chirps and PHY-encoded data symbols.
func (t *Transmitter) Modulate(payload []byte) ([]complex128, error) {
	wave, _, err := t.mod.Modulate(payload)
	return wave, err
}

// Emission places one transmission on a simulated air.
type Emission struct {
	// Payload to transmit.
	Payload []byte
	// StartSample is the absolute sample index of the packet start.
	StartSample int64
	// SNR is the received signal-to-noise ratio in dB (in-band; the
	// simulated air uses unit in-band noise power).
	SNR float64
	// CFO is the transmitter's carrier frequency offset in Hz.
	CFO float64
}

// SimulateCollision renders a set of (possibly overlapping) transmissions
// plus AWGN into a SampleSource, exactly as a gateway's radio front end
// would capture them. The seed makes the noise reproducible.
func SimulateCollision(cfg Config, emissions []Emission, seed int64) (SampleSource, error) {
	tx, err := NewTransmitter(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	ems := make([]channel.Emission, 0, len(emissions))
	for i, e := range emissions {
		wave, err := tx.Modulate(e.Payload)
		if err != nil {
			return nil, fmt.Errorf("cic: emission %d: %w", i, err)
		}
		ems = append(ems, channel.Emission{
			Start: e.StartSample,
			Samples: channel.Apply(wave, channel.Impairments{
				Amplitude:    channel.AmplitudeForSNR(e.SNR),
				CFOHz:        e.CFO,
				InitialPhase: rng.Float64() * 6.283185307179586,
				SampleRate:   cfg.SampleRate(),
			}),
		})
	}
	r := channel.NewRenderer(ems, cfg.Oversampling, seed)
	return publicSource{rx.SourceFromRenderer(r)}, nil
}

// publicSource re-exports an internal source under the public interface.
type publicSource struct{ s rx.SampleSource }

func (p publicSource) Read(dst []complex128, start int64) { p.s.Read(dst, start) }
func (p publicSource) Span() (int64, int64)               { return p.s.Span() }

// Samples materialises a SampleSource's full span into one buffer (useful
// before WriteCF32; beware memory for long captures).
func Samples(src SampleSource) []complex128 {
	start, end := src.Span()
	if end <= start {
		return nil
	}
	buf := make([]complex128, end-start)
	src.Read(buf, start)
	return buf
}
