// Benchmarks: one per paper figure (the paper's evaluation has no numbered
// tables — every result is a figure) plus kernel micro-benchmarks. The
// figure benchmarks run reduced configurations (short durations, fewer
// rate points) so `go test -bench=.` completes in minutes; use
// cmd/cic-experiments for full-scale regeneration.
package cic_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"cic"
	"cic/internal/chirp"
	"cic/internal/core"
	"cic/internal/dsp"
	"cic/internal/eval"
	"cic/internal/frame"
	"cic/internal/phy"
	"cic/internal/rx"
	"cic/internal/sim"
)

// benchEvalConfig is a reduced experiment configuration for benchmarks.
func benchEvalConfig() eval.Config {
	cfg := eval.DefaultConfig()
	cfg.Rates = []float64{40}
	cfg.Duration = 0.5
	cfg.PayloadLen = 16
	cfg.Workers = 0
	return cfg
}

// --- Kernel micro-benchmarks ---------------------------------------------

func BenchmarkFFT1024(b *testing.B) {
	fft := dsp.MustPlan(1024)
	buf := make([]complex128, 1024)
	for i := range buf {
		buf[i] = complex(float64(i%7), float64(i%3))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.Forward(buf)
	}
}

func BenchmarkDechirpAndFold(b *testing.B) {
	p := chirp.Params{SF: 8, Bandwidth: 250e3, OSR: 4}
	gen, err := chirp.NewGenerator(p)
	if err != nil {
		b.Fatal(err)
	}
	m := p.SamplesPerSymbol()
	sym := make([]complex128, m)
	gen.Symbol(sym, 99)
	buf := make([]complex128, m)
	spec := make(dsp.Spectrum, p.ChipCount())
	fft := dsp.MustPlan(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Dechirp(buf, sym)
		fft.Forward(buf)
		dsp.FoldMagnitude(spec, buf, p.ChipCount(), p.OSR)
	}
}

func BenchmarkPHYEncodeDecode(b *testing.B) {
	cfg := phy.Config{SF: 8, CR: phy.CR45, HasCRC: true}
	payload := make([]byte, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syms, err := phy.Encode(payload, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := phy.Decode(syms, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCollisionSource builds a reusable n-packet collision air.
func benchCollisionSource(b testing.TB, n int) (rx.SampleSource, []*rx.Packet, frame.Config) {
	b.Helper()
	cfg := benchEvalConfig().Frame
	symSamples := int64(cfg.Chirp.SamplesPerSymbol())
	var ems []cic.Emission
	pub := cic.DefaultConfig()
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < n; i++ {
		payload := make([]byte, 20)
		rng.Read(payload)
		ems = append(ems, cic.Emission{
			Payload:     payload,
			StartSample: 4096 + int64(i)*9*symSamples + int64(rng.Intn(int(symSamples))),
			SNR:         22 + 6*rng.Float64(),
			CFO:         (2*rng.Float64() - 1) * 9150,
		})
	}
	src, err := cic.SimulateCollision(pub, ems, 5)
	if err != nil {
		b.Fatal(err)
	}
	adapted := adaptedSource{src}
	det, err := rx.NewDetector(cfg, rx.DetectorOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pkts := det.ScanDownchirp(adapted)
	if len(pkts) == 0 {
		b.Fatal("no packets detected for benchmark")
	}
	return adapted, pkts, cfg
}

type adaptedSource struct{ s cic.SampleSource }

func (a adaptedSource) Read(dst []complex128, start int64) { a.s.Read(dst, start) }
func (a adaptedSource) Span() (int64, int64)               { return a.s.Span() }

func BenchmarkCICSymbol3Interferers(b *testing.B) {
	src, pkts, cfg := benchCollisionSource(b, 4)
	dm, err := core.NewDemodulator(cfg, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pkt := pkts[0]
	pkt.NSymbols = 40
	others := pkts[1:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dm.DemodulateSymbol(src, pkt, 20, others)
	}
}

func BenchmarkPreambleScanDownchirp(b *testing.B) {
	src, _, cfg := benchCollisionSource(b, 3)
	det, err := rx.NewDetector(cfg, rx.DetectorOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.ScanDownchirp(src)
	}
}

func BenchmarkFullReceive3Packets(b *testing.B) {
	src, _, cfg := benchCollisionSource(b, 3)
	recv, err := core.NewReceiver(cfg, core.Options{}, rx.DetectorOptions{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recv.Receive(src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStreamTrace builds the 3-packet-collision IQ trace BenchmarkGatewayStream
// feeds through the gateway.
func benchStreamTrace(b testing.TB) (cic.Config, []complex128) {
	b.Helper()
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3
	sym := int64(cfg.SamplesPerSymbol())
	rng := rand.New(rand.NewSource(53))
	var ems []cic.Emission
	for i := 0; i < 3; i++ {
		payload := make([]byte, 20)
		rng.Read(payload)
		ems = append(ems, cic.Emission{
			Payload:     payload,
			StartSample: 4096 + int64(i)*11*sym + int64(rng.Intn(int(sym))),
			SNR:         23 + 4*rng.Float64(),
			CFO:         (2*rng.Float64() - 1) * 8000,
		})
	}
	src, err := cic.SimulateCollision(cfg, ems, 5)
	if err != nil {
		b.Fatal(err)
	}
	iq := cic.Samples(src)
	iq = append(iq, make([]complex128, 8*cfg.SamplesPerSymbol())...)
	return cfg, iq
}

// benchStreamOnce pushes the trace through one freshly built gateway and
// returns the number of CRC-clean packets.
func benchStreamOnce(b testing.TB, cfg cic.Config, iq []complex128, options ...cic.Option) int {
	gw, err := cic.NewGateway(cfg, options...)
	if err != nil {
		b.Fatal(err)
	}
	return streamThroughGateway(b, gw, iq)
}

// streamThroughGateway writes the trace through an already-built gateway in
// streaming chunks and Closes it, returning the number of CRC-clean packets.
// Separated from construction so the throughput benchmark can time only the
// steady-state ingest path.
func streamThroughGateway(b testing.TB, gw *cic.Gateway, iq []complex128) int {
	const chunk = 8192
	drained := make(chan int, 1)
	go func() {
		n := 0
		for p := range gw.Packets() {
			if p.OK {
				n++
			}
		}
		drained <- n
	}()
	for off := 0; off < len(iq); off += chunk {
		end := off + chunk
		if end > len(iq) {
			end = len(iq)
		}
		if _, err := gw.Write(iq[off:end]); err != nil {
			b.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		b.Fatal(err)
	}
	n := <-drained
	if n == 0 {
		b.Fatal("gateway decoded nothing")
	}
	return n
}

// BenchmarkGatewayStream measures streaming ingest throughput (samples/sec)
// through the Gateway's pipelined decode path on a 3-packet-collision trace
// at 1, 4 and GOMAXPROCS payload workers. The "overhead" sub-benchmark
// interleaves uninstrumented and fully instrumented (WithMetrics +
// WithFlightScope) runs — alternating which side goes first so warm-state
// bias cancels — and reports the summed-time delta as overhead_%. The 2%
// budget is asserted only when the run can resolve it: >=10 iterations
// AND the paired ratios' standard error under 0.75% (a loaded host fails
// that precision check and gets a report-only run instead of a
// noise-driven flake; smoke runs such as `make ci`'s -benchtime=1x are
// likewise report-only).
func BenchmarkGatewayStream(b *testing.B) {
	cfg, iq := benchStreamTrace(b)

	counts := []int{1, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 4 {
		counts = append(counts, gmp)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(iq) * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Keep construction (plans, arenas, worker spin-up) off the
				// timer and out of allocs/op: the benchmark measures the
				// steady-state ingest path, Write through Close-flush.
				b.StopTimer()
				gw, err := cic.NewGateway(cfg, cic.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				streamThroughGateway(b, gw, iq)
			}
			b.ReportMetric(float64(len(iq))*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
	b.Run("overhead", func(b *testing.B) {
		// The instrumented side carries the full telemetry surface a
		// cic-gatewayd session attaches: the shared metrics registry plus
		// a flight-recorder scope capturing every emit. Each iteration
		// times the two sides back to back (alternating which goes first,
		// so warm-cache bias cancels) and contributes one paired ratio;
		// the reported figure is the median ratio. Pairing cancels the
		// slow scheduler/thermal drift of a shared host, which otherwise
		// dwarfs the per-packet atomics being measured.
		reg := cic.NewMetrics()
		scope := cic.NewFlightRecorder(1024).Scope("bench-cid", "bench")
		plainSide := func() {
			benchStreamOnce(b, cfg, iq, cic.WithWorkers(1))
		}
		instrSide := func() {
			benchStreamOnce(b, cfg, iq, cic.WithWorkers(1),
				cic.WithMetrics(reg), cic.WithFlightScope(scope))
		}
		var plain, instrumented time.Duration
		ratios := make([]float64, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var dp, di time.Duration
			if i%2 == 0 {
				t0 := time.Now()
				plainSide()
				dp = time.Since(t0)
				t0 = time.Now()
				instrSide()
				di = time.Since(t0)
			} else {
				t0 := time.Now()
				instrSide()
				di = time.Since(t0)
				t0 = time.Now()
				plainSide()
				dp = time.Since(t0)
			}
			plain += dp
			instrumented += di
			ratios = append(ratios, di.Seconds()/dp.Seconds())
		}
		pct := 100 * (instrumented - plain).Seconds() / plain.Seconds()
		b.ReportMetric(pct, "overhead_%")
		// Only enforce the budget when the run could actually resolve a
		// 2% effect: enough iterations, and the paired ratios dispersed
		// tightly enough that the mean's standard error is well under the
		// budget. A loaded CI host fails that precision check and gets a
		// report-only run rather than a noise-driven flake.
		if b.N >= 10 && stderrPct(ratios) < 0.75 && pct > 2.0 {
			b.Fatalf("instrumented gateway %.2f%% slower than nil-registry path (budget 2%%)", pct)
		}
	})
}

// stderrPct is the standard error of the mean of the paired
// instrumented/plain ratios, in percent — the overhead sub-benchmark's
// measurement-precision estimate.
func stderrPct(ratios []float64) float64 {
	n := float64(len(ratios))
	if n < 2 {
		return math.Inf(1)
	}
	var mean float64
	for _, r := range ratios {
		mean += r
	}
	mean /= n
	var ss float64
	for _, r := range ratios {
		ss += (r - mean) * (r - mean)
	}
	return 100 * math.Sqrt(ss/(n-1)/n)
}

// --- Figure benchmarks -----------------------------------------------------

func benchFigure(b *testing.B, run func(eval.Config) (eval.Figure, error)) {
	cfg := benchEvalConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig12to14Spectra(b *testing.B) { benchFigure(b, eval.SpectraDemo) }
func BenchmarkFig15Heisenberg(b *testing.B)  { benchFigure(b, eval.Heisenberg) }
func BenchmarkFig17Cancellation(b *testing.B) {
	benchFigure(b, eval.Cancellation)
}
func BenchmarkFig19to20PreambleClutter(b *testing.B) { benchFigure(b, eval.PreambleClutter) }
func BenchmarkFig22to26DeploymentMaps(b *testing.B)  { benchFigure(b, eval.DeploymentMaps) }
func BenchmarkFig27SNRDistribution(b *testing.B)     { benchFigure(b, eval.SNRDistribution) }

func benchThroughput(b *testing.B, dep sim.Deployment) {
	benchFigure(b, func(cfg eval.Config) (eval.Figure, error) {
		return eval.Throughput(cfg, dep)
	})
}

func BenchmarkFig28ThroughputD1(b *testing.B) { benchThroughput(b, sim.D1) }
func BenchmarkFig29ThroughputD2(b *testing.B) { benchThroughput(b, sim.D2) }
func BenchmarkFig30ThroughputD3(b *testing.B) { benchThroughput(b, sim.D3) }
func BenchmarkFig31ThroughputD4(b *testing.B) { benchThroughput(b, sim.D4) }

func benchDetection(b *testing.B, dep sim.Deployment) {
	benchFigure(b, func(cfg eval.Config) (eval.Figure, error) {
		return eval.Detection(cfg, dep)
	})
}

func BenchmarkFig32DetectionD1(b *testing.B) { benchDetection(b, sim.D1) }
func BenchmarkFig33DetectionD2(b *testing.B) { benchDetection(b, sim.D2) }
func BenchmarkFig34DetectionD3(b *testing.B) { benchDetection(b, sim.D3) }
func BenchmarkFig35DetectionD4(b *testing.B) { benchDetection(b, sim.D4) }

func BenchmarkFig36AblationD1(b *testing.B) {
	benchFigure(b, func(cfg eval.Config) (eval.Figure, error) {
		return eval.Ablation(cfg, sim.D1)
	})
}

func BenchmarkFig37AblationD4(b *testing.B) {
	benchFigure(b, func(cfg eval.Config) (eval.Figure, error) {
		return eval.Ablation(cfg, sim.D4)
	})
}

func BenchmarkFig38TemporalProximity(b *testing.B) {
	benchFigure(b, func(cfg eval.Config) (eval.Figure, error) {
		cfg.PayloadLen = 8 // 10 offsets × 2 packets per iteration: keep it lean
		return eval.TemporalProximity(cfg)
	})
}

// --- Design-choice ablation benchmarks --------------------------------------
// These measure the throughput cost/benefit of the design decisions called
// out in DESIGN.md §6 on a fixed 4-packet collision: the optimal ICSS vs
// the strawman, SED on/off, and the §5.7 filters on/off. The reported
// metric of interest is `decoded/op` (packets recovered per run).

func benchAblation(b *testing.B, opts core.Options) {
	src, pkts, cfg := benchCollisionSource(b, 4)
	recv, err := core.NewReceiver(cfg, opts, rx.DetectorOptions{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	decoded := 0
	for i := 0; i < b.N; i++ {
		results, err := recv.DecodeAll(src, clonePkts(pkts))
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.OK() {
				decoded++
			}
		}
	}
	b.ReportMetric(float64(decoded)/float64(b.N), "decoded/op")
}

func clonePkts(pkts []*rx.Packet) []*rx.Packet {
	out := make([]*rx.Packet, len(pkts))
	for i, p := range pkts {
		c := *p
		out[i] = &c
	}
	return out
}

func BenchmarkAblationFullCIC(b *testing.B)  { benchAblation(b, core.Options{}) }
func BenchmarkAblationStrawman(b *testing.B) { benchAblation(b, core.Options{Strawman: true}) }
func BenchmarkAblationNoSED(b *testing.B)    { benchAblation(b, core.Options{DisableSED: true}) }
func BenchmarkAblationNoFilters(b *testing.B) {
	benchAblation(b, core.Options{DisableCFOFilter: true, DisablePowerFilter: true})
}
func BenchmarkAblationRelativeSED(b *testing.B) {
	benchAblation(b, core.Options{RelativeSED: true})
}
