module cic

go 1.22
