package cic

import (
	"fmt"

	"cic/internal/baseline/choir"
	"cic/internal/baseline/ftrack"
	"cic/internal/baseline/stdlora"
	"cic/internal/core"
	"cic/internal/obs"
	"cic/internal/rx"
)

// Algorithm selects the collision-decoding strategy of a Receiver.
type Algorithm string

// The available receiver algorithms.
const (
	// AlgorithmCIC is the paper's contribution: concurrent interference
	// cancellation with down-chirp detection, spectral intersection, SED
	// and the CFO/power candidate filters.
	AlgorithmCIC Algorithm = "cic"
	// AlgorithmStrawman is CIC restricted to the two-sub-symbol strawman
	// ICSS (paper §5, Figs 9/13) — for ablation.
	AlgorithmStrawman Algorithm = "strawman"
	// AlgorithmLoRa is the standard single-packet gateway with capture.
	AlgorithmLoRa Algorithm = "lora"
	// AlgorithmChoir matches peaks to transmitters by fractional CFO
	// (Eletreby et al., SIGCOMM 2017).
	AlgorithmChoir Algorithm = "choir"
	// AlgorithmFTrack matches time–frequency tracks to transmitters
	// (Xia et al., SenSys 2019).
	AlgorithmFTrack Algorithm = "ftrack"
)

// Algorithms lists every supported algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{AlgorithmCIC, AlgorithmStrawman, AlgorithmLoRa, AlgorithmChoir, AlgorithmFTrack}
}

// Option customises a Receiver.
type Option func(*receiverOptions)

type receiverOptions struct {
	algo    Algorithm
	workers int

	disableSED         bool
	disableCFOFilter   bool
	disablePowerFilter bool

	metrics *Metrics
	tracer  func(Event)
	flight  *obs.FlightScope

	intercept func(Packet) Packet
	panicHook func(stage string, recovered any)

	// batchOnly collects the names of applied options that only affect the
	// batch Receiver. NewReceiver ignores it; NewGateway rejects any option
	// recorded here rather than silently ignoring it, so a streaming caller
	// can't believe a knob is in effect when it isn't. Every current option
	// has a streaming effect; an Option that does not must call
	// markBatchOnly.
	batchOnly []string
}

// markBatchOnly records that the named option has no streaming effect.
func (o *receiverOptions) markBatchOnly(name string) {
	o.batchOnly = append(o.batchOnly, name)
}

// WithAlgorithm selects the decoding algorithm (default AlgorithmCIC).
func WithAlgorithm(a Algorithm) Option {
	return func(o *receiverOptions) { o.algo = a }
}

// WithWorkers sets the decoder worker-pool size (default GOMAXPROCS) for
// both the batch Receiver and the streaming Gateway. Packets decode
// independently, so throughput scales with workers.
func WithWorkers(n int) Option {
	return func(o *receiverOptions) { o.workers = n }
}

// WithoutSED disables Spectral Edge Difference candidate selection
// (ablation of paper §5.6).
func WithoutSED() Option {
	return func(o *receiverOptions) { o.disableSED = true }
}

// WithoutCFOFilter disables the fractional-CFO candidate filter (ablation
// of paper §5.7, Figs 36–37).
func WithoutCFOFilter() Option {
	return func(o *receiverOptions) { o.disableCFOFilter = true }
}

// WithoutPowerFilter disables the received-power candidate filter
// (ablation of paper §5.7, Figs 36–37).
func WithoutPowerFilter() Option {
	return func(o *receiverOptions) { o.disablePowerFilter = true }
}

// WithDecodeInterceptor installs f on the streaming Gateway's worker
// output path: every decoded packet passes through f before the reorder
// stage, so a deployment can filter, annotate or transform packets
// in-pipeline. f runs on a worker goroutine and must be safe for
// concurrent calls; a panic inside f is contained by the worker's
// recovery (the packet is delivered undecoded and the panic hook
// fires). Batch Receivers ignore the interceptor.
func WithDecodeInterceptor(f func(Packet) Packet) Option {
	return func(o *receiverOptions) { o.intercept = f }
}

// WithPanicHook installs h as the streaming Gateway's panic observer: a
// panic recovered on a decode worker (stage "payload") invokes h with
// the recovered value instead of crashing the process. The packet whose
// decode panicked is delivered undecoded (OK=false) so delivery order
// is preserved. h runs on the panicking goroutine and must not itself
// panic. Batch Receivers ignore the hook.
func WithPanicHook(h func(stage string, recovered any)) Option {
	return func(o *receiverOptions) { o.panicHook = h }
}

// Receiver decodes LoRa packets — including collided ones — from raw
// complex-baseband samples. Receivers are safe for sequential reuse across
// many buffers; a single Decode call fans work out over the worker pool.
type Receiver struct {
	cfg  Config
	opts receiverOptions
	impl interface {
		Receive(src rx.SampleSource) ([]rx.Decoded, error)
	}
}

// Stats returns a snapshot of the registry attached with WithMetrics; the
// zero Stats when none is attached.
func (r *Receiver) Stats() Stats { return r.opts.metrics.Snapshot() }

// NewReceiver builds a Receiver for the configuration.
func NewReceiver(cfg Config, options ...Option) (*Receiver, error) {
	fc, err := cfg.frameConfig()
	if err != nil {
		return nil, err
	}
	o := receiverOptions{algo: AlgorithmCIC}
	for _, opt := range options {
		opt(&o)
	}
	r := &Receiver{cfg: cfg, opts: o}
	// One DecodeMetrics handle set serves the detector and every
	// demodulator; with no WithMetrics registry it is the shared no-op set,
	// keeping the hot path free of clock reads and allocations.
	m := obs.NewDecodeMetrics(o.metrics)
	detOpts := rx.DetectorOptions{Metrics: m}
	coreOpts := core.Options{
		DisableSED:         o.disableSED,
		DisableCFOFilter:   o.disableCFOFilter,
		DisablePowerFilter: o.disablePowerFilter,
		Metrics:            m,
		Tracer:             obs.Tracer(o.tracer),
	}
	switch o.algo {
	case AlgorithmCIC, "":
		r.impl, err = core.NewReceiver(fc, coreOpts, detOpts, o.workers)
	case AlgorithmStrawman:
		coreOpts.Strawman = true
		r.impl, err = core.NewReceiver(fc, coreOpts, detOpts, o.workers)
	case AlgorithmLoRa:
		r.impl, err = stdlora.New(fc, detOpts, o.workers)
	case AlgorithmChoir:
		r.impl, err = choir.New(fc, choir.Options{}, detOpts, o.workers)
	case AlgorithmFTrack:
		r.impl, err = ftrack.New(fc, ftrack.Options{}, detOpts, o.workers)
	default:
		return nil, fmt.Errorf("cic: unknown algorithm %q", o.algo)
	}
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Algorithm returns the receiver's decoding algorithm.
func (r *Receiver) Algorithm() Algorithm {
	if r.opts.algo == "" {
		return AlgorithmCIC
	}
	return r.opts.algo
}

// DecodeBuffer decodes every packet found in an IQ buffer whose first
// sample has absolute index 0.
func (r *Receiver) DecodeBuffer(iq []complex128) ([]Packet, error) {
	return r.DecodeSource(MemorySamples(iq))
}

// DecodeSource decodes every packet found in a SampleSource.
func (r *Receiver) DecodeSource(src SampleSource) ([]Packet, error) {
	results, err := r.impl.Receive(sourceAdapter{src})
	if err != nil {
		return nil, err
	}
	out := make([]Packet, 0, len(results))
	for _, res := range results {
		out = append(out, Packet{
			Start:        res.Packet.Start,
			Payload:      res.Payload,
			OK:           res.OK(),
			SNR:          res.Packet.SNRdB,
			CFO:          res.Packet.CFOHz,
			FECCorrected: res.FECCorrected,
		})
	}
	return out, nil
}

// MemorySamples wraps an IQ buffer (first sample at absolute index 0) as a
// SampleSource.
func MemorySamples(iq []complex128) SampleSource {
	return &rx.MemorySource{Samples: iq}
}

// sourceAdapter bridges the public SampleSource to the internal interface.
type sourceAdapter struct{ s SampleSource }

func (a sourceAdapter) Read(dst []complex128, start int64) { a.s.Read(dst, start) }
func (a sourceAdapter) Span() (int64, int64)               { return a.s.Span() }
