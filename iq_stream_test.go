package cic_test

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"cic"
)

// TestCF32ReaderChunkedParity: reading a stream through CF32Reader in
// awkward chunk sizes must reproduce ReadCF32 exactly.
func TestCF32ReaderChunkedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	iq := make([]complex128, 10_000)
	for i := range iq {
		iq[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := cic.WriteCF32(&buf, iq); err != nil {
		t.Fatal(err)
	}
	want, err := cic.ReadCF32(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 7, 4096, 100_000} {
		r := cic.NewCF32Reader(bytes.NewReader(buf.Bytes()))
		dst := make([]complex128, chunk)
		var got []complex128
		for {
			n, err := r.Read(dst)
			got = append(got, dst[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d samples, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: sample %d differs", chunk, i)
			}
		}
	}
}

// TestCF32ReaderTruncated: a stream ending mid-sample is an error, not
// a silent short read.
func TestCF32ReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := cic.WriteCF32(&buf, []complex128{1, 2i, 3}); err != nil {
		t.Fatal(err)
	}
	r := cic.NewCF32Reader(bytes.NewReader(buf.Bytes()[:buf.Len()-5]))
	dst := make([]complex128, 16)
	n, err := r.Read(dst)
	if n != 2 {
		t.Fatalf("decoded %d whole samples before the tear, want 2", n)
	}
	if err == nil || err == io.EOF || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("got %v, want truncation error", err)
	}
}
