package cic_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestMetricsDocumented enforces the observability contract: every
// Metric* string constant declared in internal/server/metrics.go,
// internal/experiment/metrics.go and internal/obs must appear — by its
// exposed metric name — in docs/OBSERVABILITY.md. A new metric without
// documentation fails CI here, which is how the catalogue stays
// trustworthy.
func TestMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("reading metric catalogue: %v", err)
	}
	catalogue := string(doc)

	srcs := []string{
		filepath.Join("internal", "server", "metrics.go"),
		filepath.Join("internal", "experiment", "metrics.go"),
		filepath.Join("internal", "cluster", "metrics.go"),
	}
	obsFiles, err := filepath.Glob(filepath.Join("internal", "obs", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range obsFiles {
		if !strings.HasSuffix(f, "_test.go") {
			srcs = append(srcs, f)
		}
	}

	total := 0
	for _, src := range srcs {
		for constName, metricName := range metricConsts(t, src) {
			total++
			if !strings.Contains(catalogue, metricName) {
				t.Errorf("%s: %s = %q is not documented in docs/OBSERVABILITY.md",
					src, constName, metricName)
			}
		}
	}
	if total < 25 {
		t.Fatalf("found only %d Metric* constants across %v — extraction broken?", total, srcs)
	}
}

// metricConsts parses one Go source file and returns every top-level
// `Metric* = "literal"` constant as constant-name → metric-name.
func metricConsts(t *testing.T, path string) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	out := map[string]string{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Metric") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("%s: unquoting %s: %v", path, lit.Value, err)
				}
				out[name.Name] = val
			}
		}
	}
	return out
}
