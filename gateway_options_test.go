package cic

import (
	"strings"
	"testing"
)

// TestGatewayRejectsBatchOnlyOptions: NewGateway must return a clear error
// for an option with no streaming effect instead of silently ignoring it.
// No shipped option is currently batch-only, so this exercises the
// mechanism directly with a synthetic option.
func TestGatewayRejectsBatchOnlyOptions(t *testing.T) {
	batchOnly := Option(func(o *receiverOptions) { o.markBatchOnly("WithBatchThing") })
	_, err := NewGateway(DefaultConfig(), batchOnly)
	if err == nil {
		t.Fatal("NewGateway accepted a batch-only option")
	}
	if !strings.Contains(err.Error(), "WithBatchThing") {
		t.Errorf("error %q does not name the offending option", err)
	}

	// A batch Receiver must still accept the same option.
	if _, err := NewReceiver(DefaultConfig(), batchOnly); err != nil {
		t.Errorf("NewReceiver rejected a batch-only option: %v", err)
	}
}
