package cic_test

import (
	"testing"

	"cic"
)

// writeAllocBudget is the pinned steady-state allocation ceiling for one
// full trace pass (three colliding packets + quiet tail, ~4.7M samples)
// through a warm single-worker gateway: every Write, the detection scan,
// three dispatches, three payload decodes and three emitted packets.
// The measured value on a warm gateway is ~80 allocs; the budget leaves
// ~2× headroom for scheduling noise so the test stays deterministic while
// still catching any per-window or per-symbol allocation regression
// (one alloc per symbol window would add thousands).
const writeAllocBudget = 200

// TestGatewayWriteAllocBudget pins the steady-state allocation count of
// the streaming ingest path on a long-lived gateway. Construction and
// arena warm-up are excluded by running several passes before measuring.
func TestGatewayWriteAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3
	iq, _ := streamTrace(t, cfg)

	gw, err := cic.NewGateway(cfg, cic.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	// Drain emitted packets for the gateway's whole lifetime; count them
	// so the measured passes are known to exercise the full decode path.
	decoded := make(chan int, 1)
	go func() {
		n := 0
		for p := range gw.Packets() {
			if p.OK {
				n++
			}
		}
		decoded <- n
	}()

	const chunk = 8192
	pass := func() {
		for off := 0; off < len(iq); off += chunk {
			end := off + chunk
			if end > len(iq) {
				end = len(iq)
			}
			if _, err := gw.Write(iq[off:end]); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Warm-up: let every scratch arena, reorder buffer and channel reach
	// its steady-state capacity before counting.
	const warmPasses = 6
	for i := 0; i < warmPasses; i++ {
		pass()
	}

	const measuredPasses = 8
	avg := testing.AllocsPerRun(measuredPasses, pass)

	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	n := <-decoded
	// AllocsPerRun executes pass once extra before its measured runs.
	minDecodes := 3 * (warmPasses + measuredPasses)
	if n < minDecodes {
		t.Fatalf("gateway decoded %d packets across all passes, want >= %d (decode path not exercised)", n, minDecodes)
	}
	if avg > writeAllocBudget {
		t.Errorf("steady-state pass allocates %.0f objects, budget %d", avg, writeAllocBudget)
	}
	t.Logf("steady-state allocs per trace pass: %.1f (budget %d)", avg, writeAllocBudget)
}
