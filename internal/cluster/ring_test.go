package cluster

import (
	"fmt"
	"testing"
	"time"
)

// TestRingDeterministicOwner: the owner of a station is a pure function
// of the backend name set — two independently built rings agree on every
// station, and every owner is a configured backend.
func TestRingDeterministicOwner(t *testing.T) {
	names := []string{"a", "b", "c"}
	r1 := newRing(names)
	r2 := newRing([]string{"c", "a", "b"}) // order must not matter
	valid := map[string]bool{"a": true, "b": true, "c": true}
	for i := 0; i < 1000; i++ {
		station := fmt.Sprintf("station-%d", i)
		o1, o2 := r1.owner(station), r2.owner(station)
		if o1 != o2 {
			t.Fatalf("owner(%q) differs across builds: %q vs %q", station, o1, o2)
		}
		if !valid[o1] {
			t.Fatalf("owner(%q) = %q, not a configured backend", station, o1)
		}
	}
	if got := newRing(nil).owner("x"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
}

// TestRingConsistency: growing the fleet by one backend only moves
// stations onto the new backend — no station shuffles between surviving
// backends, and the moved fraction is near 1/(n+1).
func TestRingConsistency(t *testing.T) {
	before := newRing([]string{"a", "b", "c"})
	after := newRing([]string{"a", "b", "c", "d"})
	const stations = 2000
	moved := 0
	for i := 0; i < stations; i++ {
		station := fmt.Sprintf("station-%d", i)
		was, now := before.owner(station), after.owner(station)
		if was == now {
			continue
		}
		moved++
		if now != "d" {
			t.Fatalf("station %q moved %q → %q, not onto the new backend", station, was, now)
		}
	}
	// Expect ~1/4 of stations on the new backend; allow generous slack
	// for hash variance (vnodesPerBackend keeps this tight in practice).
	if moved < stations/8 || moved > stations/2 {
		t.Errorf("%d/%d stations moved to the new backend, want roughly %d", moved, stations, stations/4)
	}
}

// TestRingOwnerSkipping: the failover walk offers each distinct backend
// exactly once, in ring order, and reports failure when every backend is
// vetoed.
func TestRingOwnerSkipping(t *testing.T) {
	r := newRing([]string{"a", "b", "c"})
	primary := r.owner("station-42")

	// Accepting everything picks the primary owner.
	got, ok := r.ownerSkipping("station-42", func(string) bool { return true })
	if !ok || got != primary {
		t.Fatalf("ownerSkipping(accept all) = %q,%v, want %q,true", got, ok, primary)
	}

	// Vetoing the primary picks a different backend.
	got, ok = r.ownerSkipping("station-42", func(name string) bool { return name != primary })
	if !ok || got == primary {
		t.Fatalf("ownerSkipping(veto primary) = %q,%v, want a different backend", got, ok)
	}

	// The walk offers every distinct backend exactly once.
	var offered []string
	_, ok = r.ownerSkipping("station-42", func(name string) bool {
		offered = append(offered, name)
		return false
	})
	if ok {
		t.Fatal("ownerSkipping(veto all) reported success")
	}
	if len(offered) != 3 {
		t.Fatalf("walk offered %v, want each of 3 backends exactly once", offered)
	}
	seen := map[string]bool{}
	for _, name := range offered {
		if seen[name] {
			t.Fatalf("walk offered %q twice: %v", name, offered)
		}
		seen[name] = true
	}
}

// TestBreakerBackoff: consecutive failures open the breaker with
// exponentially growing, capped, jittered windows; a success after the
// window closes resets the failure streak.
func TestBreakerBackoff(t *testing.T) {
	b := newBackend(BackendSpec{Name: "x", Addr: "127.0.0.1:1"}, newClusterMetrics(nil), 7)
	base, max := 100*time.Millisecond, 500*time.Millisecond

	if !b.available() {
		t.Fatal("fresh backend unavailable")
	}
	var prev time.Duration
	for i := 1; i <= 5; i++ {
		before := time.Now()
		b.noteFailure(base, max)
		b.mu.Lock()
		window := b.openUntil.Sub(before)
		fails := b.fails
		b.mu.Unlock()
		if fails != i {
			t.Fatalf("after %d failures fails = %d", i, fails)
		}
		// Jitter keeps the window in [d/2, d] for d = min(base<<(i-1), max).
		d := base << (i - 1)
		if d > max {
			d = max
		}
		if window < d/2-20*time.Millisecond || window > d+20*time.Millisecond {
			t.Errorf("failure %d: open window %v outside [%v, %v]", i, window, d/2, d)
		}
		if i > 1 && d < max && window < prev/4 {
			t.Errorf("failure %d: window %v collapsed vs previous %v", i, window, prev)
		}
		prev = window
		if b.available() {
			t.Errorf("failure %d: backend available while breaker open", i)
		}
	}

	// A success while the window is still open is a half-open probe racing
	// the breaker: it must not reset the streak.
	b.noteSuccess()
	b.mu.Lock()
	stillOpen := b.fails
	b.mu.Unlock()
	if stillOpen == 0 {
		t.Error("success inside the open window reset the breaker")
	}

	// Once the window elapses, a success closes the breaker for good.
	b.mu.Lock()
	b.openUntil = time.Now().Add(-time.Millisecond)
	b.mu.Unlock()
	b.noteSuccess()
	b.mu.Lock()
	fails := b.fails
	b.mu.Unlock()
	if fails != 0 {
		t.Errorf("success after the open window left fails = %d", fails)
	}
	if !b.available() {
		t.Error("backend unavailable after breaker reset")
	}
}

// TestBackendSpecDefaults: a bare address derives the backend name.
func TestBackendSpecDefaults(t *testing.T) {
	s := BackendSpec{Addr: "127.0.0.1:7733"}.withDefaults()
	if s.Name != "127.0.0.1:7733" {
		t.Errorf("defaulted name %q, want the address", s.Name)
	}
	s = BackendSpec{Addr: "127.0.0.1:7733", Name: "alpha"}.withDefaults()
	if s.Name != "alpha" {
		t.Errorf("explicit name overridden to %q", s.Name)
	}
}
