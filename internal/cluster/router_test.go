package cluster_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"cic/internal/cluster"
	"cic/internal/server"
)

// TestRouterShardsAndMerges is the fault-free cluster equivalence test:
// six stations shard across three backends by consistent hash, every
// live session sits on its ring owner, and the merged deduplicated
// output is record-identical to a single-daemon run.
func TestRouterShardsAndMerges(t *testing.T) {
	cfg := testConfig()
	tc := startCluster(t, 3, clusterOpts{})

	traces := map[string][]complex128{}
	for i := 0; i < 6; i++ {
		station := fmt.Sprintf("merge-%d", i)
		iq, _ := collisionTrace(t, cfg, 300+int64(i), station)
		traces[station] = iq
	}
	baseline := singleDaemonBaseline(t, cfg, traces)

	// Open every session first so the shard placement can be inspected
	// while all six are live.
	clients := map[string]chaosClient{}
	for station := range traces {
		c := helloClient(t, tc.addr, station, cfg)
		if c == nil {
			t.Fatal("handshake failed")
		}
		clients[station] = c
	}
	used := map[string]bool{}
	for station := range traces {
		want := tc.router.BackendFor(station)
		if got := tc.router.SessionBackend(station); got != want {
			t.Errorf("%s routed to %q, ring owner is %q", station, got, want)
		}
		used[want] = true
	}
	if len(used) < 2 {
		t.Errorf("6 stations all hashed onto %d backend(s); want spread", len(used))
	}
	if n := tc.router.SessionCount(); n != 6 {
		t.Errorf("SessionCount = %d, want 6", n)
	}

	runStations(t, traces, func(station string) chaosClient { return clients[station] })
	merged := tc.shutdownAndCollect()
	assertIdentical(t, baseline, merged)

	snap := tc.reg.Snapshot()
	if got := snap.Counters[cluster.MetricSessionsTotal]; got != 6 {
		t.Errorf("%s = %d, want 6", cluster.MetricSessionsTotal, got)
	}
	var total int
	for _, recs := range baseline {
		total += len(recs)
	}
	if got := snap.Counters[cluster.MetricRecordsRelayed]; got != int64(total) {
		t.Errorf("%s = %d, want %d", cluster.MetricRecordsRelayed, got, total)
	}
	if got := snap.Counters[cluster.MetricRecordsDeduped]; got != 0 {
		t.Errorf("%s = %d on a fault-free run, want 0", cluster.MetricRecordsDeduped, got)
	}
	if got := snap.Gauges[cluster.MetricSessionsActive]; got != 0 {
		t.Errorf("%s = %d after shutdown, want 0", cluster.MetricSessionsActive, got)
	}
}

// TestRouterShedsBackendOverloadVerbatim: a backend's structured
// overload rejection must surface through the router handshake as-is —
// the router never spills an overloaded station onto a non-owner shard.
func TestRouterShedsBackendOverloadVerbatim(t *testing.T) {
	cfg := testConfig()
	tc := startCluster(t, 1, clusterOpts{
		backendCfg: func(c *server.Config) { c.MaxSessions = 1 },
	})

	// Fill the backend's only admission slot from the side.
	hold, err := server.Dial(tc.backends[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Abort()
	if err := hold.Hello("holder", cfg); err != nil {
		t.Fatal(err)
	}

	c, err := server.Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	err = c.Hello("shed-me", cfg)
	if err == nil {
		t.Fatal("session admitted past the backend's MaxSessions=1")
	}
	var se *server.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("rejection not a structured *ServerError: %v", err)
	}
	if se.Code != server.ErrCodeOverload || !se.Temporary() {
		t.Errorf("rejection code 0x%02x, want overload", se.Code)
	}
	if se.RetryAfter <= 0 {
		t.Errorf("retry-after hint %v, want > 0 (backend hint must propagate)", se.RetryAfter)
	}
	if !strings.Contains(se.Reason, "session limit") {
		t.Errorf("reason %q does not carry the backend's reason", se.Reason)
	}

	snap := tc.reg.Snapshot()
	if got := vecTotal(snap.CounterVecs[cluster.MetricSheds]); got < 1 {
		t.Errorf("%s = %d, want ≥ 1", cluster.MetricSheds, got)
	}
	if got := snap.Counters[cluster.MetricRejected]; got < 1 {
		t.Errorf("%s = %d, want ≥ 1", cluster.MetricRejected, got)
	}
}

// TestRouterStationConflict: one routed session per station — a second
// concurrent stream for the same station would corrupt the dedup
// watermark, so it is rejected with a non-retryable error.
func TestRouterStationConflict(t *testing.T) {
	cfg := testConfig()
	tc := startCluster(t, 2, clusterOpts{})

	first := helloClient(t, tc.addr, "dup", cfg)
	if first == nil {
		t.Fatal("first handshake failed")
	}
	defer first.Close()

	c, err := server.Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	err = c.Hello("dup", cfg)
	if err == nil {
		t.Fatal("second session for one station admitted")
	}
	var se *server.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("rejection not a structured *ServerError: %v", err)
	}
	if se.Temporary() {
		t.Error("station conflict marked retryable; clients would spin")
	}
	if !strings.Contains(se.Reason, "already has a routed session") {
		t.Errorf("reason %q does not name the conflict", se.Reason)
	}
}

// TestRouterSessionLimit: the router's own admission cap rejects with a
// structured overload carrying its retry-after hint.
func TestRouterSessionLimit(t *testing.T) {
	cfg := testConfig()
	tc := startCluster(t, 2, clusterOpts{
		routerCfg: func(c *cluster.Config) {
			c.MaxSessions = 1
			c.RetryAfter = 1500 * time.Millisecond
		},
	})

	hold := helloClient(t, tc.addr, "holder", cfg)
	if hold == nil {
		t.Fatal("holder handshake failed")
	}
	defer hold.Close()

	c, err := server.Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	err = c.Hello("over", cfg)
	var se *server.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("over-limit handshake error = %v, want *ServerError", err)
	}
	if se.Code != server.ErrCodeOverload || se.RetryAfter != 1500*time.Millisecond {
		t.Errorf("got code 0x%02x retry-after %v, want overload with the configured 1.5s hint",
			se.Code, se.RetryAfter)
	}
	if !strings.Contains(se.Reason, "router session limit") {
		t.Errorf("reason %q does not name the router limit", se.Reason)
	}
}

// TestRouterParkResumeOffset: a client that dies abruptly mid-stream
// can resume through the router within the park window; the router
// reports the exact ingestion offset and the merged output matches an
// uninterrupted single-daemon run.
func TestRouterParkResumeOffset(t *testing.T) {
	cfg := testConfig()
	iq, _ := collisionTrace(t, cfg, 311, "restart")
	traces := map[string][]complex128{"restart": iq}
	baseline := singleDaemonBaseline(t, cfg, traces)

	tc := startCluster(t, 2, clusterOpts{
		routerCfg: func(c *cluster.Config) { c.ParkTimeout = 30 * time.Second },
	})

	first := tc.reconnecting("restart", cfg)
	if _, err := first.Connect(); err != nil {
		t.Fatal(err)
	}
	half := len(iq) / 2
	for off := 0; off < half; off += chaosChunk {
		end := off + chaosChunk
		if end > half {
			end = half
		}
		if err := first.WriteIQ(iq[off:end]); err != nil {
			t.Fatalf("first half write: %v", err)
		}
	}
	waitFor(t, "first half acked", func() bool { return first.Acked() == int64(half) })
	first.Abort()
	waitFor(t, "session parked", func() bool { return tc.router.ParkedCount() == 1 })

	second := tc.reconnecting("restart", cfg)
	off, err := second.Connect()
	if err != nil {
		t.Fatal(err)
	}
	if off != int64(half) {
		t.Fatalf("resume offset %d, want %d", off, half)
	}
	for pos := int(off); pos < len(iq); pos += chaosChunk {
		end := pos + chaosChunk
		if end > len(iq) {
			end = len(iq)
		}
		if err := second.WriteIQ(iq[pos:end]); err != nil {
			t.Fatalf("second half write: %v", err)
		}
	}
	if err := second.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	merged := tc.shutdownAndCollect()
	assertIdentical(t, baseline, merged)
	snap := tc.reg.Snapshot()
	if got := snap.Counters[cluster.MetricResumesTotal]; got != 1 {
		t.Errorf("%s = %d, want 1", cluster.MetricResumesTotal, got)
	}
	if got := snap.Counters[cluster.MetricSessionsTotal]; got != 1 {
		t.Errorf("%s = %d, want 1 (one routed session across two client processes)",
			cluster.MetricSessionsTotal, got)
	}
	if got := snap.Gauges[cluster.MetricSessionsParked]; got != 0 {
		t.Errorf("%s = %d after shutdown, want 0", cluster.MetricSessionsParked, got)
	}
}

// TestRouterAddRemoveBackendErrors: fleet mutation rejects duplicates
// and unknown names, and removal takes the backend out of the ring.
func TestRouterAddRemoveBackendErrors(t *testing.T) {
	tc := startCluster(t, 2, clusterOpts{})

	if err := tc.router.AddBackend(cluster.BackendSpec{Name: "shard-0", Addr: "127.0.0.1:1"}); err == nil {
		t.Error("duplicate AddBackend accepted")
	}
	if err := tc.router.RemoveBackend("nope"); err == nil {
		t.Error("RemoveBackend of unknown backend accepted")
	}
	if err := tc.router.RemoveBackend("shard-1"); err != nil {
		t.Fatalf("RemoveBackend(shard-1): %v", err)
	}
	for i := 0; i < 50; i++ {
		station := fmt.Sprintf("after-remove-%d", i)
		if got := tc.router.BackendFor(station); got != "shard-0" {
			t.Fatalf("BackendFor(%s) = %q after removal, want shard-0", station, got)
		}
	}
}

// TestRouterProbeMarksBackendDown: the health prober flips the
// cluster_backend_healthy gauge within one probe interval of a backend
// dying, and readiness degrades only when the whole fleet is gone.
func TestRouterProbeMarksBackendDown(t *testing.T) {
	tc := startCluster(t, 2, clusterOpts{
		routerCfg: func(c *cluster.Config) { c.ProbeInterval = 50 * time.Millisecond },
	})

	if err := tc.router.Ready(); err != nil {
		t.Fatalf("fresh cluster not ready: %v", err)
	}
	tc.backends[0].kill()
	waitFor(t, "probe to mark shard-0 down", func() bool {
		v, ok := vecGet(tc.reg.Snapshot().GaugeVecs[cluster.MetricBackendHealthy], "shard-0")
		return ok && v == 0
	})
	if err := tc.router.Ready(); err != nil {
		t.Errorf("router not ready with one surviving backend: %v", err)
	}

	tc.backends[1].kill()
	waitFor(t, "probe to mark shard-1 down", func() bool {
		v, ok := vecGet(tc.reg.Snapshot().GaugeVecs[cluster.MetricBackendHealthy], "shard-1")
		return ok && v == 0
	})
	waitFor(t, "readiness to degrade", func() bool { return tc.router.Ready() != nil })

	snap := tc.reg.Snapshot()
	if got, _ := vecGet(snap.CounterVecs[cluster.MetricBackendProbes], "shard-0", "fail"); got < 1 {
		t.Errorf("%s{shard-0,fail} = %d, want ≥ 1", cluster.MetricBackendProbes, got)
	}
}
