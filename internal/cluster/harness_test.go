package cluster_test

// Shared harness for the cluster tests: in-process gatewayd shards whose
// NDJSON output feeds the router's record intake through a cuttable
// valve, a partitionable dial fabric, and the byte-identical comparison
// helpers mirrored from the internal/server chaos suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"slices"
	"sync"
	"testing"
	"time"

	"cic"
	"cic/internal/cluster"
	"cic/internal/obs"
	"cic/internal/server"
)

// chaosChunk is the IQ chunk size the test clients stream with, matching
// the server chaos suite so frame boundaries land mid-stream.
const chaosChunk = 8192

// testConfig is the PHY configuration used across the cluster tests:
// the paper's SF8/250k setup at CR 4/7.
func testConfig() cic.Config {
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3
	return cfg
}

// collisionTrace synthesises a deterministic three-packet collision for
// one station, returning the IQ (with a quiet tail) and the ground-truth
// payloads in air-time order.
func collisionTrace(t testing.TB, cfg cic.Config, seed int64, tag string) ([]complex128, [][]byte) {
	t.Helper()
	sym := int64(cfg.SamplesPerSymbol())
	payloads := [][]byte{
		[]byte(tag + "-pkt-alpha"),
		[]byte(tag + "-pkt-bravo"),
		[]byte(tag + "-pkt-charl"),
	}
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: payloads[0], StartSample: 4096, SNR: 27, CFO: 1500},
		{Payload: payloads[1], StartSample: 4096 + 13*sym + 211, SNR: 24, CFO: -2400},
		{Payload: payloads[2], StartSample: 4096 + 26*sym + 97, SNR: 25, CFO: 800},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	iq := cic.Samples(src)
	iq = append(iq, make([]complex128, 8*cfg.SamplesPerSymbol())...)
	return iq, payloads
}

// memSink is a concurrency-safe NDJSON capture for Fanout writers.
type memSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (m *memSink) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.Write(p)
}

func (m *memSink) Records(t testing.TB) []server.Record {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []server.Record
	for _, line := range bytes.Split(m.buf.Bytes(), []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var r server.Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, r)
	}
	return out
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// groupByStation splits sink records per station, preserving order.
func groupByStation(recs []server.Record) map[string][]server.Record {
	out := map[string][]server.Record{}
	for _, r := range recs {
		out[r.Station] = append(out[r.Station], r)
	}
	return out
}

// assertIdentical compares two runs' per-station record sequences
// field-by-field, ignoring only the server-assigned session id.
func assertIdentical(t *testing.T, want, got map[string][]server.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("records from %d stations, want %d", len(got), len(want))
	}
	for station, w := range want {
		g := got[station]
		if len(g) != len(w) {
			t.Fatalf("%s: %d records, want %d\n got: %+v\nwant: %+v", station, len(g), len(w), g, w)
		}
		for i := range w {
			a, b := g[i], w[i]
			a.Session, b.Session = 0, 0
			if a != b {
				t.Errorf("%s: record %d differs under faults:\n got %+v\nwant %+v", station, i, a, b)
			}
		}
	}
}

// chaosClient is the common surface of Client and ReconnectingClient
// used by runStations.
type chaosClient interface {
	WriteIQ([]complex128) error
	Close() error
}

// runStations streams each station's collision trace through clients
// built by mkClient (nil on construction failure). Every station must
// close cleanly.
func runStations(t *testing.T, traces map[string][]complex128,
	mkClient func(station string) chaosClient) {
	t.Helper()
	var wg sync.WaitGroup
	errc := make(chan error, len(traces))
	for station, iq := range traces {
		wg.Add(1)
		go func(station string, iq []complex128) {
			defer wg.Done()
			c := mkClient(station)
			if c == nil {
				errc <- fmt.Errorf("%s: client construction failed", station)
				return
			}
			for off := 0; off < len(iq); off += chaosChunk {
				end := off + chaosChunk
				if end > len(iq) {
					end = len(iq)
				}
				if err := c.WriteIQ(iq[off:end]); err != nil {
					errc <- fmt.Errorf("%s write: %w", station, err)
					return
				}
			}
			if err := c.Close(); err != nil {
				errc <- fmt.Errorf("%s close: %w", station, err)
			}
		}(station, iq)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// helloClient dials and handshakes a plain (non-resumable) client
// against addr, nil on failure.
func helloClient(t *testing.T, addr, station string, cfg cic.Config) chaosClient {
	c, err := server.Dial(addr)
	if err != nil {
		t.Errorf("%s dial: %v", station, err)
		return nil
	}
	if err := c.Hello(station, cfg); err != nil {
		t.Errorf("%s hello: %v", station, err)
		return nil
	}
	return c
}

// singleDaemonBaseline runs every trace through one plain gatewayd and
// returns the per-station record groups — the ground truth the cluster
// runs must reproduce byte-for-byte.
func singleDaemonBaseline(t *testing.T, cfg cic.Config, traces map[string][]complex128) map[string][]server.Record {
	t.Helper()
	sink := &memSink{}
	srv := server.New(server.Config{
		Workers: 1,
		Metrics: cic.NewMetrics(),
		Sink:    server.NewFanout(sink),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	runStations(t, traces, func(station string) chaosClient {
		return helloClient(t, ln.Addr().String(), station, cfg)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("baseline shutdown: %v", err)
	}
	baseline := groupByStation(sink.Records(t))
	for station := range traces {
		if len(baseline[station]) == 0 {
			t.Fatalf("baseline: no records for %s", station)
		}
	}
	return baseline
}

// valve forwards NDJSON bytes to a destination writer until shut off —
// modelling the record stream of a backend whose process was killed
// (records decoded after the kill never reach the router).
type valve struct {
	mu   sync.Mutex
	dst  io.Writer
	open bool
}

func (v *valve) Write(p []byte) (int, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.open || v.dst == nil {
		return len(p), nil
	}
	return v.dst.Write(p)
}

func (v *valve) redirect(w io.Writer) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.dst = w
}

func (v *valve) shut() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.open = false
}

// netmap is the test dial fabric: the router's Config.Dial hook routes
// through it, so cutting an address partitions a backend from the router
// (new connects fail) without touching the backend process.
type netmap struct {
	mu  sync.Mutex
	cut map[string]bool
}

func newNetmap() *netmap { return &netmap{cut: map[string]bool{}} }

func (n *netmap) dial(ctx context.Context, addr string) (net.Conn, error) {
	n.mu.Lock()
	severed := n.cut[addr]
	n.mu.Unlock()
	if severed {
		return nil, fmt.Errorf("netmap: %s partitioned", addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

func (n *netmap) sever(addr string) { n.mu.Lock(); n.cut[addr] = true; n.mu.Unlock() }
func (n *netmap) heal(addr string)  { n.mu.Lock(); delete(n.cut, addr); n.mu.Unlock() }

// testBackend is one in-process gatewayd shard: a real server.Server on
// a loopback listener, publishing through a valve into the router's
// record intake, with every accepted connection tracked so kill and
// partition can sever them abruptly.
type testBackend struct {
	name  string
	srv   *server.Server
	ln    net.Listener
	addr  string
	valve *valve
	reg   *cic.Metrics

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	killed bool
}

func startTestBackend(t testing.TB, name string, mutate func(*server.Config)) *testBackend {
	t.Helper()
	b := &testBackend{name: name, valve: &valve{open: true}, conns: map[net.Conn]struct{}{}}
	var blog *slog.Logger
	if os.Getenv("CLUSTER_TEST_LOG") != "" {
		blog = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})).With("shard", name)
	}
	b.reg = cic.NewMetrics()
	cfg := server.Config{
		Workers: 1,
		Metrics: b.reg,
		Log:     blog,
		Sink:    server.NewFanout(b.valve),
		WrapConn: func(c net.Conn) net.Conn {
			b.mu.Lock()
			if b.killed {
				b.mu.Unlock()
				c.Close()
				return c
			}
			b.conns[c] = struct{}{}
			b.mu.Unlock()
			return c
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	b.srv = server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.ln, b.addr = ln, ln.Addr().String()
	go b.srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		b.srv.Shutdown(ctx)
	})
	return b
}

// severConns abruptly closes every connection the backend has accepted
// (the router's upstream legs included) without stopping the server.
func (b *testBackend) severConns() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for c := range b.conns {
		c.Close()
	}
	b.conns = map[net.Conn]struct{}{}
}

// kill models a kill -9: the record stream stops first (decodes after
// the kill are lost, exactly like a dead process's stdout), then the
// listener and every live connection die.
func (b *testBackend) kill() {
	b.mu.Lock()
	b.killed = true
	b.mu.Unlock()
	b.valve.shut()
	b.ln.Close()
	b.severConns()
}

// testCluster is a router fronting a fleet of in-process shards.
type testCluster struct {
	t        *testing.T
	router   *cluster.Router
	addr     string
	sink     *memSink
	reg      *cic.Metrics
	nm       *netmap
	backends []*testBackend
}

// clusterOpts tweak the harness: routerCfg and backendCfg mutate the
// respective configs before construction.
type clusterOpts struct {
	routerCfg  func(*cluster.Config)
	backendCfg func(*server.Config)
}

// startCluster launches n shards and a router on loopback listeners and
// wires every shard's NDJSON output into the router's record intake.
func startCluster(t *testing.T, n int, opt clusterOpts) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, sink: &memSink{}, reg: cic.NewMetrics(), nm: newNetmap()}
	specs := make([]cluster.BackendSpec, 0, n)
	for i := 0; i < n; i++ {
		b := startTestBackend(t, fmt.Sprintf("shard-%d", i), opt.backendCfg)
		tc.backends = append(tc.backends, b)
		specs = append(specs, cluster.BackendSpec{Name: b.name, Addr: b.addr})
	}
	cfg := cluster.Config{
		Backends: specs,
		Metrics:  tc.reg,
		Sink:     server.NewFanout(tc.sink),
		Dial:     tc.nm.dial,
		Seed:     1,
	}
	// CLUSTER_TEST_LOG=1 streams the router's structured log to stderr —
	// the first thing to reach for when a chaos test fails.
	if os.Getenv("CLUSTER_TEST_LOG") != "" {
		cfg.Log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	if opt.routerCfg != nil {
		opt.routerCfg(&cfg)
	}
	tc.router = cluster.New(cfg)
	for _, b := range tc.backends {
		b.valve.redirect(tc.router.RecordWriter())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.addr = ln.Addr().String()
	go tc.router.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		tc.router.Shutdown(ctx)
	})
	return tc
}

// addBackend grows the fleet at runtime, wiring the new shard's records
// into the router before it can receive sessions.
func (tc *testCluster) addBackend(mutate func(*server.Config)) *testBackend {
	tc.t.Helper()
	b := startTestBackend(tc.t, fmt.Sprintf("shard-%d", len(tc.backends)), mutate)
	b.valve.redirect(tc.router.RecordWriter())
	tc.backends = append(tc.backends, b)
	if err := tc.router.AddBackend(cluster.BackendSpec{Name: b.name, Addr: b.addr}); err != nil {
		tc.t.Fatalf("AddBackend(%s): %v", b.name, err)
	}
	return b
}

// byName finds a harness backend by its cluster name.
func (tc *testCluster) byName(name string) *testBackend {
	for _, b := range tc.backends {
		if b.name == name {
			return b
		}
	}
	tc.t.Fatalf("no harness backend named %q", name)
	return nil
}

// shutdownAndCollect drains the router and returns the merged
// per-station record groups.
func (tc *testCluster) shutdownAndCollect() map[string][]server.Record {
	tc.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := tc.router.Shutdown(ctx); err != nil {
		tc.t.Fatalf("router shutdown: %v", err)
	}
	return groupByStation(tc.sink.Records(tc.t))
}

// reconnecting builds a resumable client aimed at the router.
func (tc *testCluster) reconnecting(station string, cfg cic.Config) *server.ReconnectingClient {
	return server.NewReconnectingClient(server.ReconnectOptions{
		Station:     station,
		Config:      cfg,
		Addr:        tc.addr,
		MaxAttempts: 50,
		BaseBackoff: 10 * time.Millisecond,
	})
}

// vecTotal sums every series of a labeled family.
func vecTotal(v obs.VecSnapshot) int64 {
	var n int64
	for _, s := range v.Series {
		n += s.Value
	}
	return n
}

// vecGet reads one labeled series value (0, false when absent).
func vecGet(v obs.VecSnapshot, values ...string) (int64, bool) {
	for _, s := range v.Series {
		if slices.Equal(s.Values, values) {
			return s.Value, true
		}
	}
	return 0, false
}
