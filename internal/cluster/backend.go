package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"cic/internal/obs"
)

// BackendSpec names one cic-gatewayd shard of the fleet.
type BackendSpec struct {
	// Name labels the backend in metrics and logs (Addr when empty).
	Name string
	// Addr is the backend's ingestion address (the v2 wire protocol).
	Addr string
	// ReadyURL is the backend's readiness probe (its /readyz debug
	// endpoint). Empty falls back to a TCP dial probe of Addr.
	ReadyURL string
	// PubAddr is the backend's NDJSON subscriber address; when set the
	// router subscribes and merges the backend's records into its own
	// sink (see intake.go). Empty disables the fan-in for this backend.
	PubAddr string
}

// withDefaults fills the spec's optional fields.
func (s BackendSpec) withDefaults() BackendSpec {
	if s.Name == "" {
		s.Name = s.Addr
	}
	return s
}

// backend is one shard's live state: the last probe verdict plus a
// circuit breaker fed by probe and session-transport failures. The
// breaker opens with jittered exponential backoff so a flapping or
// partitioned shard is not hammered by every failover at once.
type backend struct {
	spec BackendSpec

	mu        sync.Mutex
	probed    bool // at least one probe completed
	healthy   bool // last probe verdict
	fails     int  // consecutive failures feeding the breaker
	openUntil time.Time
	rng       *rand.Rand
	// removedFlag: RemoveBackend marked this shard as draining out of
	// the ring (see removed/setRemoved in router.go).
	removedFlag bool
	sessions    int

	// Pre-resolved metric handles (nil-safe).
	mHealthy  *obs.Gauge
	mBreaker  *obs.Gauge
	mSessions *obs.Gauge
	mProbeOK  *obs.Counter
	mProbeBad *obs.Counter
	mFailures *obs.Counter
}

func newBackend(spec BackendSpec, m *clusterMetrics, seed int64) *backend {
	spec = spec.withDefaults()
	b := &backend{
		spec: spec,
		rng:  rand.New(rand.NewSource(seed ^ int64(fnv64a(spec.Name)))),

		mHealthy:  m.BackendHealthy.With(spec.Name),
		mBreaker:  m.BreakerOpen.With(spec.Name),
		mSessions: m.BackendSessions.With(spec.Name),
		mProbeOK:  m.BackendProbes.With(spec.Name, "ok"),
		mProbeBad: m.BackendProbes.With(spec.Name, "fail"),
		mFailures: m.BackendFailures.With(spec.Name),
	}
	// Optimistic until the first probe: a freshly configured fleet must
	// accept sessions before the probe loop's first tick.
	b.mHealthy.Set(1)
	return b
}

// available reports whether the router may route a (new or failed-over)
// session to this backend: not removed, not probed-down, breaker not
// open.
func (b *backend) available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.removedFlag {
		return false
	}
	if b.probed && !b.healthy {
		return false
	}
	return !time.Now().Before(b.openUntil)
}

// noteFailure feeds the breaker: consecutive failures push the open
// window out exponentially (base·2^(n-1), capped at max) with uniform
// jitter over [d/2, d) so failovers across the fleet decorrelate.
func (b *backend) noteFailure(base, max time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	d := base << (b.fails - 1)
	if b.fails > 16 || d > max || d <= 0 {
		d = max
	}
	d = d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
	b.openUntil = time.Now().Add(d)
	b.mBreaker.Set(1)
	b.mFailures.Inc()
}

// noteSuccess closes the breaker after demonstrated health (a
// successful handshake, or a probe that passed once the open window
// elapsed — half-open semantics: an open breaker is only reset by
// evidence gathered after it expired).
func (b *backend) noteSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if time.Now().Before(b.openUntil) {
		return
	}
	b.fails = 0
	b.openUntil = time.Time{}
	b.mBreaker.Set(0)
}

// setProbe records one probe verdict.
func (b *backend) setProbe(ok bool) {
	b.mu.Lock()
	b.probed = true
	b.healthy = ok
	b.mu.Unlock()
	if ok {
		b.mHealthy.Set(1)
		b.mProbeOK.Inc()
		b.noteSuccess()
	} else {
		b.mHealthy.Set(0)
		b.mProbeBad.Inc()
	}
}

// addSession / dropSession maintain the per-backend session gauge.
func (b *backend) addSession() {
	b.mu.Lock()
	b.sessions++
	n := b.sessions
	b.mu.Unlock()
	b.mSessions.Set(int64(n))
}

func (b *backend) dropSession() {
	b.mu.Lock()
	b.sessions--
	n := b.sessions
	b.mu.Unlock()
	b.mSessions.Set(int64(n))
}

// probe runs one readiness check: an HTTP GET of ReadyURL when set
// (200 = ready), otherwise a TCP dial of the ingest address.
func (r *Router) probe(b *backend) bool {
	// The timeout floor keeps a short probe interval from flagging a
	// healthy-but-momentarily-slow backend: a dead one fails the dial
	// immediately (connection refused), so down-detection still lands
	// within one interval.
	timeout := r.cfg.ProbeInterval
	if timeout < time.Second {
		timeout = time.Second
	}
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	if b.spec.ReadyURL != "" {
		client := &http.Client{Timeout: timeout}
		resp, err := client.Get(b.spec.ReadyURL)
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	conn, err := r.dial(ctx, b.spec.Addr)
	if err != nil {
		return false
	}
	conn.Close()
	return true
}

// probeLoop drives one backend's health prober until the router shuts
// down. Probe failures also feed the breaker so a dead shard's open
// window keeps extending without any session traffic.
func (r *Router) probeLoop(b *backend) {
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-ticker.C:
		}
		ok := r.probe(b)
		wasHealthy := b.currentlyHealthy()
		b.setProbe(ok)
		if !ok {
			b.noteFailure(r.cfg.BreakerBase, r.cfg.BreakerMax)
		}
		if ok != wasHealthy {
			r.info("backend health changed", "backend", b.spec.Name, "healthy", ok)
		}
	}
}

// currentlyHealthy reports the last probe verdict (optimistic before
// the first probe).
func (b *backend) currentlyHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.probed || b.healthy
}

// String names the backend for errors.
func (b *backend) String() string { return fmt.Sprintf("backend %s (%s)", b.spec.Name, b.spec.Addr) }
