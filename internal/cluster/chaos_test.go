package cluster_test

// Cluster chaos suite: N stations × M backends with seeded mid-collision
// kills, partitions and fleet mutations. The acceptance bar everywhere
// is record-identical NDJSON against a fault-free single-daemon run —
// no gaps, no duplicates, air-time order intact.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cic/internal/cluster"
	"cic/internal/server"
)

// writeChunks streams one IQ slice in chaosChunk frames.
func writeChunks(c chaosClient, iq []complex128) error {
	for off := 0; off < len(iq); off += chaosChunk {
		end := off + chaosChunk
		if end > len(iq) {
			end = len(iq)
		}
		if err := c.WriteIQ(iq[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// runPhased streams every trace concurrently, pausing all stations at
// each cut fraction: when every station reaches cut i, between(i) runs
// in the test goroutine (kill a backend, mutate the fleet, …), then
// streaming resumes. Every station must close cleanly.
func runPhased(t *testing.T, mk func(station string) chaosClient,
	traces map[string][]complex128, cuts []float64, between func(phase int)) {
	t.Helper()
	n, phases := len(traces), len(cuts)
	arrived := make([]*sync.WaitGroup, phases)
	gates := make([]chan struct{}, phases)
	for i := 0; i < phases; i++ {
		arrived[i] = &sync.WaitGroup{}
		arrived[i].Add(n)
		gates[i] = make(chan struct{})
	}
	errc := make(chan error, n)
	var wg sync.WaitGroup
	for station, iq := range traces {
		wg.Add(1)
		go func(station string, iq []complex128) {
			defer wg.Done()
			bail := func(phase int, err error) {
				errc <- fmt.Errorf("%s: %w", station, err)
				for i := phase; i < phases; i++ {
					arrived[i].Done()
				}
			}
			c := mk(station)
			if c == nil {
				bail(0, errors.New("client construction failed"))
				return
			}
			prev := 0
			for i, f := range cuts {
				cut := int(float64(len(iq)) * f)
				if err := writeChunks(c, iq[prev:cut]); err != nil {
					bail(i, fmt.Errorf("phase %d write: %w", i, err))
					return
				}
				prev = cut
				arrived[i].Done()
				<-gates[i]
			}
			if err := writeChunks(c, iq[prev:]); err != nil {
				errc <- fmt.Errorf("%s: final write: %w", station, err)
				return
			}
			if err := c.Close(); err != nil {
				errc <- fmt.Errorf("%s: close: %w", station, err)
			}
		}(station, iq)
	}
	for i := 0; i < phases; i++ {
		arrived[i].Wait()
		between(i)
		close(gates[i])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestChaosClusterKillByteIdentical is the cluster acceptance test: six
// resumable stations shard across three backends; with every station
// mid-collision one backend is killed -9 (listener, connections and
// record stream all die abruptly). The router must fail the victim's
// sessions over — replaying their retained streams onto surviving
// shards — and the merged output must be record-identical to a
// fault-free single-daemon run.
func TestChaosClusterKillByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos e2e in -short mode")
	}
	cfg := testConfig()
	traces := map[string][]complex128{}
	for i := 0; i < 6; i++ {
		station := fmt.Sprintf("kill-%d", i)
		iq, _ := collisionTrace(t, cfg, 500+int64(i), station)
		traces[station] = iq
	}
	baseline := singleDaemonBaseline(t, cfg, traces)

	tc := startCluster(t, 3, clusterOpts{
		routerCfg: func(c *cluster.Config) {
			c.ParkTimeout = 30 * time.Second
			c.ProbeInterval = 50 * time.Millisecond
		},
	})
	victim := ""
	runPhased(t, func(station string) chaosClient { return tc.reconnecting(station, cfg) },
		traces, []float64{2.0 / 3}, func(int) {
			victim = tc.router.SessionBackend("kill-0")
			if victim == "" {
				t.Fatal("kill-0 has no routed session at the cut point")
			}
			tc.byName(victim).kill()
			t.Logf("killed %s mid-collision", victim)
		})

	merged := tc.shutdownAndCollect()
	assertIdentical(t, baseline, merged)

	snap := tc.reg.Snapshot()
	if got := vecTotal(snap.CounterVecs[cluster.MetricFailovers]); got < 1 {
		t.Errorf("%s = %d, want ≥ 1 (a backend died with live sessions)", cluster.MetricFailovers, got)
	}
	if got := snap.Counters[cluster.MetricReplayedSamples]; got == 0 {
		t.Errorf("%s = 0, want > 0 (failover must replay retained streams)", cluster.MetricReplayedSamples)
	}
	if got := snap.Gauges[cluster.MetricSessionsParked]; got != 0 {
		t.Errorf("%s = %d after shutdown, want 0", cluster.MetricSessionsParked, got)
	}
	if v, ok := vecGet(snap.GaugeVecs[cluster.MetricBackendHealthy], victim); !ok || v != 0 {
		t.Errorf("%s{%s} = %d, want 0 for the killed backend", cluster.MetricBackendHealthy, victim, v)
	}
}

// TestChaosClusterPartitionHeals: a backend is partitioned from the
// router (connections severed, dials blackholed) but keeps running — the
// worst case for duplicates, because its park window later expires and
// it republishes everything it had ingested. The router must fail over,
// the dedup watermark must suppress every straggler record, the prober
// must mark the backend down and then healthy again once the partition
// heals, and a healed backend must accept new sessions.
func TestChaosClusterPartitionHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos e2e in -short mode")
	}
	cfg := testConfig()
	traces := map[string][]complex128{}
	for i := 0; i < 4; i++ {
		station := fmt.Sprintf("part-%d", i)
		iq, _ := collisionTrace(t, cfg, 600+int64(i), station)
		traces[station] = iq
	}
	// The healed backend serves one more station after the partition, so
	// the baseline covers it too.
	healIQ, _ := collisionTrace(t, cfg, 690, "part-healed")
	fullTraces := map[string][]complex128{"part-healed": healIQ}
	for st, iq := range traces {
		fullTraces[st] = iq
	}
	baseline := singleDaemonBaseline(t, cfg, fullTraces)

	tc := startCluster(t, 2, clusterOpts{
		routerCfg: func(c *cluster.Config) {
			c.ParkTimeout = 30 * time.Second
			c.ProbeInterval = 50 * time.Millisecond
		},
		// The partitioned backend's park window expires mid-test, so its
		// straggler republication flows into the router while it runs. The
		// window must outlast the replacement's drain comfortably: the
		// replacement's records have to reach the relay watermark first,
		// or a straggler decoded from the victim's truncated stream would
		// be relayed instead of suppressed.
		backendCfg: func(c *server.Config) { c.ParkTimeout = 5 * time.Second },
	})

	var victim *testBackend
	// The cut lands at 0.85 of the stream — past the overlapping first
	// and second packets' last samples but before the third's. The
	// duplicate-suppression assertions below need the victim's post-park
	// drain to republish at least packet 1, so before severing it the
	// hook waits for the victim to have ingested everything the client
	// wrote: the victim's ingest is decode-paced and can trail the
	// client's write mark by the full socket buffer (the router forwards
	// ahead of a backpressured shard), and a victim cut mid-lag may hold
	// too little of the stream to decode anything at all.
	cutSamples := int(float64(len(traces["part-0"])) * 0.85)
	runPhased(t, func(station string) chaosClient { return tc.reconnecting(station, cfg) },
		traces, []float64{0.85}, func(int) {
			name := tc.router.SessionBackend("part-0")
			if name == "" {
				t.Fatal("part-0 has no routed session at the cut point")
			}
			victim = tc.byName(name)
			waitFor(t, "the victim to ingest the stream up to the cut", func() bool {
				v, ok := vecGet(victim.reg.Snapshot().CounterVecs[server.MetricStationBytes], "part-0")
				return ok && v >= int64(cutSamples*8)
			})
			tc.nm.sever(victim.addr)
			victim.severConns()
			t.Logf("partitioned %s mid-collision", name)
		})

	// The prober sees the partition (dials run through the netmap).
	waitFor(t, "probe to mark the partitioned backend down", func() bool {
		v, ok := vecGet(tc.reg.Snapshot().GaugeVecs[cluster.MetricBackendHealthy], victim.name)
		return ok && v == 0
	})

	// The partitioned backend's park window expires and it republishes
	// every record it had decoded; the watermark must drop them all.
	waitFor(t, "straggler records to be deduplicated", func() bool {
		return tc.reg.Snapshot().Counters[cluster.MetricRecordsDeduped] > 0
	})

	// Heal: probes recover within an interval, and a fresh station owned
	// by the healed backend routes onto it.
	tc.nm.heal(victim.addr)
	waitFor(t, "probe to mark the healed backend up", func() bool {
		v, ok := vecGet(tc.reg.Snapshot().GaugeVecs[cluster.MetricBackendHealthy], victim.name)
		return ok && v == 1
	})
	if tc.router.BackendFor("part-healed") == victim.name {
		t.Logf("post-heal station part-healed is owned by the healed backend")
	}
	c := tc.reconnecting("part-healed", cfg)
	if _, err := c.Connect(); err != nil {
		t.Fatalf("post-heal session: %v", err)
	}
	if err := writeChunks(c, healIQ); err != nil {
		t.Fatalf("post-heal stream: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("post-heal close: %v", err)
	}

	merged := tc.shutdownAndCollect()
	assertIdentical(t, baseline, merged)

	snap := tc.reg.Snapshot()
	if got := vecTotal(snap.CounterVecs[cluster.MetricFailovers]); got < 1 {
		t.Errorf("%s = %d, want ≥ 1", cluster.MetricFailovers, got)
	}
	if got := snap.Counters[cluster.MetricRecordsDeduped]; got < 1 {
		t.Errorf("%s = %d, want ≥ 1 (stragglers must have been suppressed)", cluster.MetricRecordsDeduped, got)
	}
}

// TestChaosClusterRebalance: fleet mutations mid-collision. Six stations
// start on a single shard; a second shard joins (stations whose ring
// owner moved migrate with a full replay), then the first shard is
// removed (its remaining stations drain onto the survivor). The merged
// output must still be record-identical to the single-daemon run.
func TestChaosClusterRebalance(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos e2e in -short mode")
	}
	cfg := testConfig()
	traces := map[string][]complex128{}
	for i := 0; i < 6; i++ {
		station := fmt.Sprintf("rebal-%d", i)
		iq, _ := collisionTrace(t, cfg, 700+int64(i), station)
		traces[station] = iq
	}
	baseline := singleDaemonBaseline(t, cfg, traces)

	tc := startCluster(t, 1, clusterOpts{
		routerCfg: func(c *cluster.Config) { c.ParkTimeout = 30 * time.Second },
	})

	movedOnAdd := 0
	runPhased(t, func(station string) chaosClient { return tc.reconnecting(station, cfg) },
		traces, []float64{0.5, 0.75}, func(phase int) {
			switch phase {
			case 0:
				tc.addBackend(nil)
				for station := range traces {
					if tc.router.BackendFor(station) == "shard-1" {
						movedOnAdd++
					}
				}
				if movedOnAdd == 0 {
					// The ring is a pure function of the fixed names above, so
					// this is a deterministic outcome, not flake.
					t.Fatal("no station's ring owner moved to the new backend")
				}
				t.Logf("shard-1 joined; %d/6 stations rebalance onto it", movedOnAdd)
			case 1:
				if err := tc.router.RemoveBackend("shard-0"); err != nil {
					t.Fatalf("RemoveBackend(shard-0): %v", err)
				}
				for station := range traces {
					if got := tc.router.BackendFor(station); got != "shard-1" {
						t.Fatalf("BackendFor(%s) = %q after removal, want shard-1", station, got)
					}
				}
			}
		})

	merged := tc.shutdownAndCollect()
	assertIdentical(t, baseline, merged)

	snap := tc.reg.Snapshot()
	// Phase 0 migrates the moved stations; phase 1 migrates the rest.
	if got := snap.Counters[cluster.MetricMigrations]; got != 6 {
		t.Errorf("%s = %d, want 6 (every station migrates exactly once across the two mutations)",
			cluster.MetricMigrations, got)
	}
	if got := snap.Counters[cluster.MetricReplayedSamples]; got == 0 {
		t.Errorf("%s = 0, want > 0 (migration replays retained streams)", cluster.MetricReplayedSamples)
	}
	if got := snap.Counters[cluster.MetricRecordsDeduped]; got < 0 {
		t.Errorf("%s = %d, want ≥ 0", cluster.MetricRecordsDeduped, got)
	}
}
