// Package cluster is the station-sharded scale-out layer for the cic
// ingestion fleet: a Router (cmd/cic-routerd) terminates the v2 wire
// protocol, consistently hashes each station id onto one of a set of
// cic-gatewayd backends, and proxies the session upstream. The fleet is
// self-healing — per-backend health probing and circuit breakers, full
// session retention with RESUME-based replay onto a replacement shard
// when a backend dies, drain-based rebalancing when the backend set
// changes, and a record fan-in that merges the backends' NDJSON streams
// behind a per-station dedup watermark so failover replay is invisible
// in the output. docs/SERVER.md ("Cluster mode") is the walkthrough.
package cluster

import (
	"fmt"
	"sort"
)

// vnodesPerBackend is the virtual-node count per backend on the hash
// ring: enough that removing one backend redistributes its stations
// roughly evenly over the survivors.
const vnodesPerBackend = 128

// ringPoint is one virtual node: a hash position owned by a backend.
type ringPoint struct {
	hash uint64
	name string
}

// ring is an immutable consistent-hash ring over backend names. The
// Router swaps the whole ring on membership changes, so readers never
// need a lock beyond the pointer load.
type ring struct {
	points []ringPoint
	names  []string // distinct backend names, stable order
}

// fnv64a is the 64-bit FNV-1a hash (inlined to keep the hot lookup
// allocation-free).
func fnv64a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// ringHash positions a key on the ring. Raw FNV-1a barely avalanches
// the high bits for short shared-prefix keys (vnode labels like
// "shard-0#17" differ only in trailing digits), which clusters one
// backend's vnodes into a narrow arc; the murmur3 finalizer spreads
// them over the whole ring.
func ringHash(s string) uint64 {
	h := fnv64a(s)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// newRing builds a ring over the given backend names.
func newRing(names []string) *ring {
	r := &ring{names: append([]string(nil), names...)}
	r.points = make([]ringPoint, 0, len(names)*vnodesPerBackend)
	for _, name := range names {
		for v := 0; v < vnodesPerBackend; v++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", name, v)),
				name: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
	return r
}

// owner returns the backend that owns a station: the first virtual node
// clockwise from the station's hash point. Empty ring returns "".
func (r *ring) owner(station string) string {
	name, _ := r.ownerSkipping(station, nil)
	return name
}

// ownerSkipping walks clockwise from the station's hash point and
// returns the first backend accepted by ok (nil ok accepts everything).
// Each distinct backend is offered once; false when none qualifies.
func (r *ring) ownerSkipping(station string, ok func(name string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(station)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.names))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.name] {
			continue
		}
		seen[p.name] = true
		if ok == nil || ok(p.name) {
			return p.name, true
		}
		if len(seen) == len(r.names) {
			break
		}
	}
	return "", false
}
