package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cic"
	"cic/internal/server"
)

// Defaults for Config zero values.
const (
	// DefaultProbeInterval is the per-backend health-probe period; a
	// probed-down backend is reflected on cluster_backend_healthy within
	// one interval.
	DefaultProbeInterval = time.Second
	// DefaultBreakerBase / DefaultBreakerMax shape the per-backend
	// circuit breaker's jittered exponential backoff.
	DefaultBreakerBase = 100 * time.Millisecond
	DefaultBreakerMax  = 5 * time.Second
	// DefaultRetainCap bounds one routed session's replay retention
	// (samples). Past the cap the oldest chunks are trimmed — failover
	// onto a fresh shard then replays a truncated stream (graceful
	// degradation, counted on cluster_retain_trimmed).
	DefaultRetainCap = int64(4) << 20 // 32 MiB of cf32 per session
	// DefaultCloseTimeout bounds a drain handshake against a backend.
	DefaultCloseTimeout = 60 * time.Second
)

// Config parameterises a Router. Backends is required; everything else
// has usable zero-value defaults.
type Config struct {
	// Backends is the initial gatewayd fleet (AddBackend/RemoveBackend
	// rebalance at runtime).
	Backends []BackendSpec
	// MaxSessions caps concurrently routed sessions, parked included
	// (server.DefaultMaxSessions when 0; negative means unlimited).
	MaxSessions int
	// RetainCap bounds per-session replay retention in samples
	// (DefaultRetainCap when 0; negative means unlimited).
	RetainCap int64
	// IdleTimeout closes a client session idle for this long
	// (server.DefaultIdleTimeout when 0; negative disables).
	IdleTimeout time.Duration
	// ParkTimeout is the client-side resume window: how long a routed
	// resumable session survives its client connection
	// (server.DefaultParkTimeout when 0; negative disables parking).
	ParkTimeout time.Duration
	// ProbeInterval is the backend health-probe period
	// (DefaultProbeInterval when 0).
	ProbeInterval time.Duration
	// BreakerBase / BreakerMax shape the backend circuit breaker
	// (DefaultBreakerBase / DefaultBreakerMax when 0).
	BreakerBase time.Duration
	BreakerMax  time.Duration
	// RetryAfter is the hint carried in the router's own overload
	// rejections (server.DefaultRetryAfter when 0; negative disables).
	RetryAfter time.Duration
	// DialTimeout bounds each upstream TCP connect
	// (server.DefaultDialTimeout when 0).
	DialTimeout time.Duration
	// CloseTimeout bounds a drain handshake against a backend
	// (DefaultCloseTimeout when 0).
	CloseTimeout time.Duration
	// Seed makes the breaker jitter deterministic (0 = fixed default).
	Seed int64
	// Metrics receives the cluster_* families (nil disables).
	Metrics *cic.Metrics
	// Sink receives the merged, deduplicated record stream (a silent
	// fanout when nil).
	Sink *server.Fanout
	// WrapConn wraps every accepted client connection (the client-leg
	// -fault-spec hook).
	WrapConn func(net.Conn) net.Conn
	// WrapUpstream wraps every dialled backend connection (the
	// router↔backend-leg -fault-spec hook).
	WrapUpstream func(net.Conn) net.Conn
	// Dial overrides the upstream transport (tests inject partitions
	// here); nil uses a net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Log receives structured routing events, stamped with each
	// session's correlation id (nil = silent).
	Log *slog.Logger
}

// Router is the failure-aware routing frontend: it speaks the v2 wire
// protocol to clients, shards stations onto backends by consistent
// hash, retains each session's stream for replay, and fails sessions
// over onto healthy shards when a backend dies. Create with New, feed
// it listeners via Serve/ServePub, stop it with Shutdown.
type Router struct {
	cfg  Config
	m    *clusterMetrics
	sink *server.Fanout
	log  *slog.Logger
	done chan struct{}

	ringVersion atomic.Uint64

	mu        sync.Mutex
	closed    bool
	nextID    uint64
	ring      *ring
	backends  map[string]*backend
	sessions  map[uint64]*session // attached to a client connection
	byStation map[string]*session // attached or parked
	parked    map[string]*parkedEntry
	listeners map[net.Listener]struct{}
	connWG    sync.WaitGroup

	intakeWG    sync.WaitGroup
	intakeMu    sync.Mutex
	intakeConns map[net.Conn]struct{}

	// wmMu guards the per-station dedup watermarks (see relay).
	wmMu sync.Mutex
	wms  map[string]*wmState
}

// wmState is one station's record-dedup watermark: the number of
// records already emitted for the station's current router session.
// Replayed backend records with Seq below the watermark are duplicates
// of already-emitted output and are dropped.
type wmState struct {
	sessID  uint64
	next    int64
	retired bool // session closed; kept to suppress late shard stragglers
}

// maxWatermarks bounds retired watermark retention (stations whose
// session closed keep their watermark so straggler records from a
// drained shard stay suppressed; past the cap arbitrary retired
// entries are evicted).
const maxWatermarks = 1 << 16

// parkedEntry is a routed session between client connections: its
// upstream connection and retention stay live until a RESUME reclaims
// it or the park timer drains it.
type parkedEntry struct {
	s     *session
	timer *time.Timer
}

// New builds a Router from cfg (see Config for defaults). Health
// probers and record intakes start immediately; call Shutdown to stop
// them even if Serve is never called.
func New(cfg Config) *Router {
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = server.DefaultMaxSessions
	}
	if cfg.RetainCap == 0 {
		cfg.RetainCap = DefaultRetainCap
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = server.DefaultIdleTimeout
	}
	if cfg.ParkTimeout == 0 {
		cfg.ParkTimeout = server.DefaultParkTimeout
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.BreakerBase == 0 {
		cfg.BreakerBase = DefaultBreakerBase
	}
	if cfg.BreakerMax == 0 {
		cfg.BreakerMax = DefaultBreakerMax
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = server.DefaultRetryAfter
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = server.DefaultDialTimeout
	}
	if cfg.CloseTimeout == 0 {
		cfg.CloseTimeout = DefaultCloseTimeout
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Sink == nil {
		cfg.Sink = server.NewFanout()
	}
	r := &Router{
		cfg:         cfg,
		m:           newClusterMetrics(cfg.Metrics),
		sink:        cfg.Sink,
		log:         cfg.Log,
		done:        make(chan struct{}),
		backends:    map[string]*backend{},
		sessions:    map[uint64]*session{},
		byStation:   map[string]*session{},
		parked:      map[string]*parkedEntry{},
		listeners:   map[net.Listener]struct{}{},
		intakeConns: map[net.Conn]struct{}{},
		wms:         map[string]*wmState{},
	}
	for _, spec := range cfg.Backends {
		r.addBackendLocked(spec)
	}
	r.rebuildRingLocked()
	return r
}

func (r *Router) info(msg string, args ...any) {
	if r.log != nil {
		r.log.Info(msg, args...)
	}
}

func (r *Router) warn(msg string, args ...any) {
	if r.log != nil {
		r.log.Warn(msg, args...)
	}
}

// dial opens one upstream transport.
func (r *Router) dial(ctx context.Context, addr string) (net.Conn, error) {
	if r.cfg.Dial != nil {
		return r.cfg.Dial(ctx, addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// addBackendLocked registers a backend and starts its prober and
// intake. Caller holds r.mu (or is New, pre-concurrency).
func (r *Router) addBackendLocked(spec BackendSpec) *backend {
	b := newBackend(spec, r.m, r.cfg.Seed)
	r.backends[b.spec.Name] = b
	r.m.Backends.Set(int64(len(r.backends)))
	go r.probeLoop(b)
	if b.spec.PubAddr != "" {
		r.intakeWG.Add(1)
		go r.runIntake(b)
	}
	return b
}

// rebuildRingLocked recomputes the hash ring from the non-removed
// backends. Caller holds r.mu (or is New).
func (r *Router) rebuildRingLocked() {
	names := make([]string, 0, len(r.backends))
	for name, b := range r.backends {
		if !b.removed() {
			names = append(names, name)
		}
	}
	r.ring = newRing(names)
	r.ringVersion.Add(1)
}

// AddBackend grows the fleet at runtime. Stations whose ring owner
// moves onto the new backend migrate lazily: their sessions drain on
// the old shard and RESUME + replay on the new one at the next frame.
func (r *Router) AddBackend(spec BackendSpec) error {
	spec = spec.withDefaults()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("cluster: router shut down")
	}
	if _, dup := r.backends[spec.Name]; dup {
		return fmt.Errorf("cluster: backend %q already configured", spec.Name)
	}
	r.addBackendLocked(spec) //cic:lock-ok: only *spawns* the prober/intake goroutines under mu — their blocking selects run outside the lock; registering before the ring swap keeps membership changes atomic
	r.rebuildRingLocked()
	r.info("backend added", "backend", spec.Name, "addr", spec.Addr)
	return nil
}

// RemoveBackend drains a backend out of the fleet: it leaves the ring
// immediately (no new sessions route to it) and existing sessions
// migrate off lazily via the same drain → RESUME → replay path.
func (r *Router) RemoveBackend(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.backends[name]
	if b == nil {
		return fmt.Errorf("cluster: unknown backend %q", name)
	}
	b.setRemoved()
	r.rebuildRingLocked()
	r.info("backend removed", "backend", name)
	return nil
}

// backendByName resolves a backend under the lock.
func (r *Router) backendByName(name string) *backend {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.backends[name]
}

// currentRing loads the ring under the lock.
func (r *Router) currentRing() *ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// backendCount reports the non-removed fleet size.
func (r *Router) backendCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.backends {
		if !b.removed() {
			n++
		}
	}
	return n
}

// BackendFor reports the ring owner for a station ("" with an empty
// fleet) — topology, not the live routing decision (see
// SessionBackend).
func (r *Router) BackendFor(station string) string {
	return r.currentRing().owner(station)
}

// SessionBackend reports which backend the station's live session is
// currently attached to ("" when the station has no routed session).
func (r *Router) SessionBackend(station string) string {
	r.mu.Lock()
	s := r.byStation[station]
	r.mu.Unlock()
	if s == nil {
		return ""
	}
	return s.backendName()
}

// SessionCount reports attached (client-connected) routed sessions.
func (r *Router) SessionCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// ParkedCount reports parked routed sessions.
func (r *Router) ParkedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.parked)
}

// Sink returns the router's merged-output fanout.
func (r *Router) Sink() *server.Fanout { return r.sink }

// register adds a listener unless the router is shut down.
func (r *Router) register(ln net.Listener) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.listeners[ln] = struct{}{}
	return true
}

// Serve accepts client ingestion connections on ln until Shutdown
// closes it (Serve then returns nil) or Accept fails.
func (r *Router) Serve(ln net.Listener) error {
	if !r.register(ln) {
		ln.Close()
		return errors.New("cluster: router already shut down")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.isClosed() {
				return nil
			}
			return err
		}
		r.connWG.Add(1)
		go func() {
			defer r.connWG.Done()
			r.handleConn(conn)
		}()
	}
}

// ServePub accepts NDJSON subscriber connections on ln and attaches
// them to the router's merged sink.
func (r *Router) ServePub(ln net.Listener) error {
	if !r.register(ln) {
		ln.Close()
		return errors.New("cluster: router already shut down")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.isClosed() {
				return nil
			}
			return err
		}
		r.sink.AddSubscriber(conn)
	}
}

func (r *Router) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// retryAfter is the hint for the router's own overload rejections.
func (r *Router) retryAfter() time.Duration {
	if r.cfg.RetryAfter < 0 {
		return 0
	}
	return r.cfg.RetryAfter
}

// Ready reports whether the router would currently admit a session:
// nil while accepting with at least one available backend — the
// /readyz truth source for cic-routerd.
func (r *Router) Ready() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errors.New("draining")
	}
	inUse := len(r.sessions) + len(r.parked)
	limit := r.cfg.MaxSessions
	backends := make([]*backend, 0, len(r.backends))
	for _, b := range r.backends {
		backends = append(backends, b)
	}
	r.mu.Unlock()
	if limit > 0 && inUse >= limit {
		return fmt.Errorf("shedding: session limit reached (%d/%d)", inUse, limit)
	}
	for _, b := range backends {
		if b.available() {
			return nil
		}
	}
	return errors.New("no healthy backend available")
}

// Shutdown stops the router gracefully: stop accepting, drain every
// routed session's upstream (so backends publish all buffered
// packets), stop probers and intakes — bounded by ctx. The sink is
// left open; close it after Shutdown.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for ln := range r.listeners {
		ln.Close()
	}
	attached := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		attached = append(attached, s)
	}
	idle := make([]*parkedEntry, 0, len(r.parked))
	for _, p := range r.parked {
		p.timer.Stop()
		idle = append(idle, p)
	}
	r.parked = map[string]*parkedEntry{}
	r.mu.Unlock()
	r.m.SessionsParked.Set(0)

	// Unblock the attached handlers (their disconnect path drains the
	// upstream because the router is closed), and drain parked sessions
	// here — their upstream gateways still hold undecoded samples.
	for _, s := range attached {
		s.closeClientConn()
	}
	var wg sync.WaitGroup
	for _, p := range idle {
		wg.Add(1)
		go func(s *session) {
			defer wg.Done()
			if err := s.drainUpstream(); err != nil {
				r.warn("shutdown drain failed", "cid", s.cid, "station", s.station, "err", err.Error())
			}
			r.finishSession(s)
		}(p.s)
	}
	flushed := make(chan struct{})
	go func() {
		wg.Wait()
		r.connWG.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-ctx.Done():
		return ctx.Err()
	}

	// Give in-flight backend records a moment to reach the intake before
	// tearing the subscriber connections down (bounded by ctx).
	settle := time.NewTimer(200 * time.Millisecond)
	defer settle.Stop()
	select {
	case <-settle.C:
	case <-ctx.Done():
	}
	close(r.done)
	r.intakeMu.Lock()
	for c := range r.intakeConns {
		c.Close()
	}
	r.intakeMu.Unlock()
	r.intakeWG.Wait()
	return nil
}

// removed / setRemoved manage RemoveBackend's draining flag.
func (b *backend) removed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.removedFlag
}

func (b *backend) setRemoved() {
	b.mu.Lock()
	b.removedFlag = true
	b.mu.Unlock()
	b.mHealthy.Set(0)
}
