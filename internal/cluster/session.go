package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cic/internal/server"
)

// session is one routed client session: the router terminates the
// client's v2 protocol here, retains the stream for replay, and proxies
// it upstream to the station's shard. Exactly one goroutine drives a
// session at a time (the connection handler, or — after the handler
// released it — the park-expiry / shutdown drain), so the retention and
// upstream fields need no lock.
type session struct {
	r         *Router
	id        uint64
	cid       string
	hello     server.Hello
	station   string
	resumable bool

	// conn is the attached client connection (Shutdown closes it to
	// unblock the handler).
	connMu sync.Mutex
	conn   net.Conn

	// Retention: the full session stream as raw IQ frame bodies, each
	// chunk one client frame, chunkStarts its absolute sample offset.
	// Failover replays chunks[retainStart:] onto the replacement shard;
	// past RetainCap the oldest chunks are trimmed (lossy degraded mode).
	chunks      [][]byte
	chunkStarts []int64
	retainStart int64
	ingested    int64
	retained    int64

	up          *upstream
	lastBackend string
	ringVer     uint64

	// bname mirrors the attached backend name for concurrent readers
	// (Router.SessionBackend).
	bname atomic.Value
}

// upstream is one live connection to a backend shard. The read loop
// owns the inbound side (ACK/OK/ERROR frames); the session's driving
// goroutine owns the outbound side.
type upstream struct {
	b    *backend
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	dead atomic.Bool
	done chan struct{}
	okCh chan struct{}

	mu   sync.Mutex
	rerr error               // transport-level reader exit
	serr *server.ServerError // structured terminal ERROR from the backend
}

// terminalErr reports a structured terminal ERROR the backend sent
// (decode failure, drain) — the session's fate, never a failover
// trigger: replaying the same stream elsewhere would cycle a poison
// packet through the fleet.
func (u *upstream) terminalErr() *server.ServerError {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.serr
}

// readLoop drains backend→router frames until the connection dies.
// Terminates when the peer or teardownUpstream closes the connection;
// teardownUpstream waits on done.
func (u *upstream) readLoop() {
	defer func() {
		u.dead.Store(true)
		close(u.done)
	}()
	for {
		typ, body, err := server.ReadFrame(u.br)
		if err != nil {
			u.mu.Lock()
			u.rerr = err
			u.mu.Unlock()
			return
		}
		switch typ {
		case server.FrameAck:
			// Informational: the router's retention is the replay source
			// of truth (a replacement shard resumes at offset 0, so the
			// backend's ack high-water mark must not trim it).
		case server.FrameOK:
			select {
			case u.okCh <- struct{}{}:
			default:
			}
		case server.FrameError:
			se, perr := server.ParseErrorBody(body)
			if perr != nil {
				se = &server.ServerError{Reason: perr.Error()}
			}
			u.mu.Lock()
			u.serr = se
			u.mu.Unlock()
			return
		default:
			u.mu.Lock()
			u.rerr = fmt.Errorf("unexpected upstream frame type 0x%02x", typ)
			u.mu.Unlock()
			return
		}
	}
}

func (s *session) setConn(conn net.Conn) {
	s.connMu.Lock()
	s.conn = conn
	s.connMu.Unlock()
}

func (s *session) closeClientConn() {
	s.connMu.Lock()
	c := s.conn
	s.connMu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (s *session) backendName() string {
	if v, ok := s.bname.Load().(string); ok {
		return v
	}
	return ""
}

// retain appends one IQ frame body to the replay retention, trimming
// the oldest chunks past RetainCap. body is owned by the session from
// here on (ReadFrame allocates a fresh slice per frame).
func (s *session) retain(body []byte) {
	n := int64(len(body) / 8)
	s.chunks = append(s.chunks, body)
	s.chunkStarts = append(s.chunkStarts, s.ingested)
	s.ingested += n
	s.retained += n
	s.r.m.RetainSamples.Add(n)
	cap := s.r.cfg.RetainCap
	if cap <= 0 {
		return
	}
	var trimmed int64
	for s.retained > cap && len(s.chunks) > 1 {
		dn := int64(len(s.chunks[0]) / 8)
		s.chunks = s.chunks[1:]
		s.chunkStarts = s.chunkStarts[1:]
		s.retainStart = s.chunkStarts[0]
		s.retained -= dn
		trimmed += dn
	}
	if trimmed > 0 {
		s.r.m.RetainTrimmed.Add(trimmed)
		s.r.m.RetainSamples.Add(-trimmed)
		s.r.warn("session retention trimmed (failover now lossy)",
			"cid", s.cid, "station", s.station, "samples", trimmed)
	}
}

// forward proxies one already-retained IQ body upstream. On a dead
// transport it reconnects via ensureUpstream, whose replay covers the
// body — the frame is never written twice to one upstream.
func (s *session) forward(body []byte) *server.ServerError {
	if s.up != nil && !s.up.dead.Load() {
		err := server.WriteFrame(s.up.bw, server.FrameIQ, body)
		if err == nil {
			err = s.up.bw.Flush()
		}
		if err == nil {
			return nil
		}
		s.up.dead.Store(true)
	}
	return s.ensureUpstream()
}

// ensureUpstream makes the session's upstream live: on first use it
// routes the station onto its ring owner; after a transport death it
// fails the session over — pick the next available shard, RESUME,
// replay the retained stream — under the per-backend circuit breakers.
// A non-nil return is the session's client-facing fate: overload
// (retryable, parkable) when no shard can take it, or the backend's own
// terminal error propagated verbatim.
func (s *session) ensureUpstream() *server.ServerError {
	if s.up != nil && !s.up.dead.Load() {
		return nil
	}
	r := s.r
	if s.up != nil {
		if se := s.up.terminalErr(); se != nil {
			s.teardownUpstream()
			return se
		}
		prev := s.up.b
		prev.noteFailure(r.cfg.BreakerBase, r.cfg.BreakerMax)
		s.teardownUpstream()
		r.m.Failovers.With(prev.spec.Name).Inc()
		r.warn("upstream died, failing over",
			"cid", s.cid, "station", s.station, "backend", prev.spec.Name)
	}
	maxAttempts := 2*r.backendCount() + 3
	var lastReason string
	for attempt := 0; ; attempt++ {
		if r.isClosed() {
			return &server.ServerError{Reason: "router draining"}
		}
		name, ok := r.currentRing().ownerSkipping(s.station, func(n string) bool {
			b := r.backendByName(n)
			return b != nil && b.available()
		})
		if !ok {
			return &server.ServerError{
				Code:       server.ErrCodeOverload,
				RetryAfter: r.cfg.ProbeInterval,
				Reason:     "no healthy backend for station",
			}
		}
		b := r.backendByName(name)
		if b == nil {
			continue // raced a removal
		}
		se, retry := s.connectUpstream(b)
		if se == nil {
			return nil
		}
		if !retry {
			return se
		}
		lastReason = se.Reason
		if attempt+1 >= maxAttempts {
			return &server.ServerError{
				Code:       server.ErrCodeOverload,
				RetryAfter: r.cfg.ProbeInterval,
				Reason:     "no backend accepted the session: " + lastReason,
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// connectUpstream dials one backend, runs the RESUME handshake and
// replays the retained stream from the backend's offset. retry reports
// whether the failure is transport-level (try another shard) as opposed
// to a verdict to propagate (an overload shed, a structured rejection).
func (s *session) connectUpstream(b *backend) (se *server.ServerError, retry bool) {
	r := s.r
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.DialTimeout)
	conn, err := r.dial(ctx, b.spec.Addr)
	cancel()
	if err != nil {
		b.noteFailure(r.cfg.BreakerBase, r.cfg.BreakerMax)
		return &server.ServerError{Reason: err.Error()}, true
	}
	if r.cfg.WrapUpstream != nil {
		conn = r.cfg.WrapUpstream(conn)
	}
	hb, err := server.EncodeHello(s.hello)
	if err != nil {
		conn.Close()
		return &server.ServerError{Reason: err.Error()}, false
	}
	u := &upstream{
		b:    b,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
		done: make(chan struct{}),
		okCh: make(chan struct{}, 1),
	}
	fail := func(err error) (*server.ServerError, bool) {
		conn.Close()
		b.noteFailure(r.cfg.BreakerBase, r.cfg.BreakerMax)
		return &server.ServerError{Reason: err.Error()}, true
	}
	_ = conn.SetDeadline(time.Now().Add(r.cfg.DialTimeout))
	if err := server.WriteFrame(u.bw, server.FrameResume, hb); err != nil {
		return fail(err)
	}
	if err := u.bw.Flush(); err != nil {
		return fail(err)
	}
	typ, body, err := server.ReadFrame(u.br)
	if err != nil {
		return fail(err)
	}
	switch typ {
	case server.FrameOK:
	case server.FrameError:
		conn.Close()
		se, perr := server.ParseErrorBody(body)
		if perr != nil {
			return &server.ServerError{Reason: perr.Error()}, false
		}
		if se.Code == server.ErrCodeOverload {
			// The shard is shedding. Honor it — spilling the station onto
			// a shard that does not own it would split its stream.
			r.m.Sheds.With(b.spec.Name).Inc()
			r.warn("backend shed session",
				"cid", s.cid, "station", s.station, "backend", b.spec.Name,
				"retry_after", se.RetryAfter)
		}
		return se, false
	default:
		return fail(fmt.Errorf("handshake reply frame type 0x%02x", typ))
	}
	off, err := server.ParseOffset(body)
	if err != nil {
		return fail(err)
	}
	_ = conn.SetDeadline(time.Time{})
	b.noteSuccess()
	if err := s.replay(u, off); err != nil {
		return fail(fmt.Errorf("replay: %w", err))
	}
	go u.readLoop()
	s.up = u
	b.addSession()
	s.bname.Store(b.spec.Name)
	s.lastBackend = b.spec.Name
	r.info("session routed",
		"cid", s.cid, "station", s.station, "backend", b.spec.Name,
		"resume_offset", off, "ingested", s.ingested)
	return nil, false
}

// replay rewrites the retained stream onto a fresh upstream from the
// backend's resume offset, preserving the original frame boundaries.
func (s *session) replay(u *upstream, off int64) error {
	from := off
	if from < s.retainStart {
		// The retention cap trimmed samples this shard needs: replay what
		// survives. The shard's sample indexing shifts by the gap, so
		// failover is no longer byte-identical — counted on
		// cluster_retain_trimmed at trim time.
		s.r.warn("replay truncated by retention cap",
			"cid", s.cid, "station", s.station, "missing", s.retainStart-from)
		from = s.retainStart
	}
	if from >= s.ingested {
		return nil
	}
	var replayed int64
	for i, start := range s.chunkStarts {
		chunk := s.chunks[i]
		if start+int64(len(chunk)/8) <= from {
			continue
		}
		body := chunk
		if start < from {
			body = chunk[(from-start)*8:]
		}
		if err := server.WriteFrame(u.bw, server.FrameIQ, body); err != nil {
			return err
		}
		replayed += int64(len(body) / 8)
	}
	if err := u.bw.Flush(); err != nil {
		return err
	}
	if replayed > 0 {
		s.r.m.ReplayedSamples.Add(replayed)
		s.r.info("session replayed",
			"cid", s.cid, "station", s.station, "backend", u.b.spec.Name,
			"from", from, "samples", replayed)
	}
	return nil
}

// teardownUpstream closes the upstream transport, waits the read loop
// out and releases the backend's session slot.
func (s *session) teardownUpstream() {
	u := s.up
	if u == nil {
		return
	}
	s.up = nil
	u.conn.Close()
	select {
	case <-u.done:
	default:
		// The read loop only runs once the connect handshake finished;
		// conn.Close above forces its exit.
		<-u.done
	}
	u.b.dropSession()
}

// drainUpstream runs the CLOSE handshake so the shard decodes and
// publishes everything it buffered — failing over (replay, CLOSE again)
// if the shard dies mid-drain, bounded by CloseTimeout.
func (s *session) drainUpstream() error {
	r := s.r
	deadline := time.Now().Add(r.cfg.CloseTimeout)
	for {
		if se := s.ensureUpstream(); se != nil {
			// A retryable fleet-wide outage (a breaker flap, every shard
			// mid-probe) must not abort the drain: the samples are
			// retained, so keep trying until the drain deadline.
			if se.Temporary() && time.Now().Before(deadline) {
				wait := se.RetryAfter
				if wait <= 0 {
					wait = 50 * time.Millisecond
				}
				if wait > time.Second {
					wait = time.Second
				}
				time.Sleep(wait)
				continue
			}
			return se
		}
		u := s.up
		err := server.WriteFrame(u.bw, server.FrameClose, nil)
		if err == nil {
			err = u.bw.Flush()
		}
		if err == nil {
			timer := time.NewTimer(time.Until(deadline))
			select {
			case <-u.okCh:
				timer.Stop()
				s.teardownUpstream()
				return nil
			case <-u.done:
				timer.Stop()
				// The backend may have delivered the OK and then closed on
				// us; prefer the OK.
				select {
				case <-u.okCh:
					s.teardownUpstream()
					return nil
				default:
				}
				if se := u.terminalErr(); se != nil && !se.Temporary() {
					s.teardownUpstream()
					return se
				}
			case <-timer.C:
				s.teardownUpstream()
				return fmt.Errorf("drain timed out after %v", r.cfg.CloseTimeout)
			}
		}
		// Transport died before the OK: fail over and drain again (the
		// replay reconstructs the stream on the replacement shard).
		s.teardownUpstream()
		if !time.Now().Before(deadline) {
			return fmt.Errorf("drain timed out after %v", r.cfg.CloseTimeout)
		}
	}
}

// maybeMigrate moves the session onto its new ring owner after a
// membership change. The old upstream is abandoned, not CLOSEd: a CLOSE
// mid-stream would make the old shard decode a truncated trailing
// packet and emit a record the fault-free run never produces. Abandoned,
// the old shard parks the (resumable) upstream session and drains it
// when its park window expires — by then the replacement has republished
// those records and the dedup watermark suppresses the stragglers.
func (s *session) maybeMigrate() {
	if s.up == nil || s.up.dead.Load() {
		return
	}
	cur := s.up.b
	owner := s.r.currentRing().owner(s.station)
	if owner == "" || owner == cur.spec.Name {
		return
	}
	nb := s.r.backendByName(owner)
	if nb == nil || !nb.available() {
		return
	}
	s.teardownUpstream()
	s.r.m.Migrations.Inc()
	s.r.info("session migrating",
		"cid", s.cid, "station", s.station, "from", cur.spec.Name, "to", owner)
}

// ---- Router-side session lifecycle -------------------------------------

// reject answers a handshake with a structured ERROR frame.
func (r *Router) reject(conn net.Conn, se *server.ServerError) {
	r.m.Rejected.Inc()
	_ = server.WriteFrame(conn, server.FrameError,
		server.EncodeErrorBody(se.Code, se.RetryAfter, se.Reason))
	conn.Close()
}

// admitSession creates and tracks a fresh routed session. The router
// enforces one routed session per station — the dedup watermark is
// per-station state, so two concurrent streams for one station would
// corrupt each other's output (a documented cluster-mode constraint).
func (r *Router) admitSession(h server.Hello, resumable bool) (*session, *server.ServerError) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, &server.ServerError{Reason: "router draining"}
	}
	if r.byStation[h.Station] != nil {
		r.mu.Unlock()
		return nil, &server.ServerError{
			Reason: fmt.Sprintf("station %q already has a routed session", h.Station)}
	}
	if r.cfg.MaxSessions > 0 && len(r.sessions)+len(r.parked) >= r.cfg.MaxSessions {
		limit := r.cfg.MaxSessions
		r.mu.Unlock()
		return nil, &server.ServerError{
			Code:       server.ErrCodeOverload,
			RetryAfter: r.retryAfter(),
			Reason:     fmt.Sprintf("router session limit reached (%d)", limit),
		}
	}
	r.nextID++
	s := &session{
		r:         r,
		id:        r.nextID,
		cid:       server.MintCID(),
		hello:     h,
		station:   h.Station,
		resumable: resumable,
	}
	s.ringVer = r.ringVersion.Load()
	r.sessions[s.id] = s
	r.byStation[h.Station] = s
	active := len(r.sessions)
	r.mu.Unlock()
	r.m.SessionsActive.Set(int64(active))
	r.m.SessionsTotal.Inc()
	r.resetWatermark(s)
	return s, nil
}

// handleConn terminates one client connection: v2 handshake, then the
// proxy frame loop.
func (r *Router) handleConn(conn net.Conn) {
	if r.cfg.WrapConn != nil {
		conn = r.cfg.WrapConn(conn)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	idle := r.cfg.IdleTimeout
	if idle > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
	}
	typ, body, err := server.ReadFrame(br)
	if err != nil || (typ != server.FrameHello && typ != server.FrameResume) {
		if err == nil {
			err = fmt.Errorf("first frame type 0x%02x, want HELLO or RESUME", typ)
		}
		r.reject(conn, &server.ServerError{Reason: fmt.Sprintf("bad handshake: %v", err)})
		return
	}
	h, err := server.ParseHello(body)
	if err != nil {
		r.reject(conn, &server.ServerError{Reason: err.Error()})
		return
	}
	resumable := typ == server.FrameResume

	if resumable {
		if s := r.awaitParked(h); s != nil {
			s.setConn(conn)
			off := s.ingested
			if err := server.WriteFrame(conn, server.FrameOK, server.EncodeOffset(off)); err != nil {
				r.parkOrFinish(s, conn, true)
				return
			}
			r.m.ResumesTotal.Inc()
			r.info("session resumed",
				"cid", s.cid, "station", s.station,
				"remote", conn.RemoteAddr().String(), "offset", off)
			r.serveSession(s, conn, br)
			return
		}
	}
	if err := h.Config().Validate(); err != nil {
		r.reject(conn, &server.ServerError{Reason: err.Error()})
		return
	}
	s, se := r.admitSession(h, resumable)
	if se != nil {
		r.warn("session rejected", "station", h.Station,
			"remote", conn.RemoteAddr().String(), "reason", se.Reason)
		r.reject(conn, se)
		return
	}
	s.setConn(conn)
	// Route upstream before the OK so a backend's handshake verdict (an
	// overload shed in particular) propagates into the client handshake.
	if se := s.ensureUpstream(); se != nil {
		r.warn("session rejected by fleet", "cid", s.cid, "station", h.Station,
			"reason", se.Reason)
		r.reject(conn, se)
		r.finishSession(s)
		return
	}
	var okBody []byte
	if resumable {
		okBody = server.EncodeOffset(0)
	}
	if err := server.WriteFrame(conn, server.FrameOK, okBody); err != nil {
		r.parkOrFinish(s, conn, resumable)
		return
	}
	r.info("session accepted",
		"cid", s.cid, "station", h.Station, "remote", conn.RemoteAddr().String(),
		"backend", s.backendName(), "resumable", resumable)
	r.serveSession(s, conn, br)
}

// serveSession runs the proxy frame loop for an attached session and
// tears it down: parked when a resumable connection dies abnormally (or
// its fleet verdict is retryable), drained otherwise.
func (r *Router) serveSession(s *session, conn net.Conn, br *bufio.Reader) {
	idle := r.cfg.IdleTimeout
	park := false
	defer func() {
		if v := recover(); v != nil {
			r.warn("cluster session handler panic",
				"cid", s.cid, "station", s.station, "panic", fmt.Sprint(v))
			park = false
		}
		r.parkOrFinish(s, conn, park)
	}()
	for {
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		typ, body, err := server.ReadFrame(br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				r.info("session idle timeout", "cid", s.cid, "station", s.station)
			} else {
				r.info("session disconnected",
					"cid", s.cid, "station", s.station, "err", err.Error())
				park = s.resumable
			}
			return
		}
		switch typ {
		case server.FrameIQ:
			if len(body) == 0 || len(body)%8 != 0 {
				_ = server.WriteFrame(conn, server.FrameError,
					server.EncodeErrorBody(server.ErrCodeGeneric, 0,
						fmt.Sprintf("IQ body length %d not a positive multiple of 8", len(body))))
				return
			}
			if v := r.ringVersion.Load(); v != s.ringVer {
				s.ringVer = v
				s.maybeMigrate()
			}
			s.retain(body)
			if se := s.forward(body); se != nil {
				_ = server.WriteFrame(conn, server.FrameError,
					server.EncodeErrorBody(se.Code, se.RetryAfter, se.Reason))
				// A retryable fleet verdict (overload, no shard available)
				// parks the session: retention survives, so the client's
				// RESUME continues with nothing lost. A terminal backend
				// error does not — replay would reproduce it.
				park = s.resumable && se.Temporary()
				return
			}
			if s.resumable {
				if err := server.WriteFrame(conn, server.FrameAck, server.EncodeOffset(s.ingested)); err != nil {
					r.info("session ack write failed",
						"cid", s.cid, "station", s.station, "err", err.Error())
					park = true
					return
				}
			}
		case server.FrameClose:
			_ = conn.SetReadDeadline(time.Time{})
			if err := s.drainUpstream(); err != nil {
				// Never OK a failed drain — the client would believe its
				// records were published. A retryable failure parks the
				// session (retention intact) so the client's reconnect
				// resumes and re-runs the CLOSE once the fleet recovers.
				r.warn("session drain failed",
					"cid", s.cid, "station", s.station, "err", err.Error())
				var se *server.ServerError
				if !errors.As(err, &se) {
					se = &server.ServerError{Reason: err.Error()}
				}
				_ = server.WriteFrame(conn, server.FrameError,
					server.EncodeErrorBody(se.Code, se.RetryAfter, se.Reason))
				park = s.resumable && se.Temporary()
				return
			}
			_ = server.WriteFrame(conn, server.FrameOK, nil)
			r.info("session closed", "cid", s.cid, "station", s.station)
			return
		default:
			_ = server.WriteFrame(conn, server.FrameError,
				server.EncodeErrorBody(server.ErrCodeGeneric, 0,
					fmt.Sprintf("unexpected frame type 0x%02x", typ)))
			return
		}
	}
}

// awaitParked reclaims the station's parked session, briefly waiting
// out an in-flight park when the previous connection is still tearing
// down (mirrors the daemon's resume grace).
func (r *Router) awaitParked(h server.Hello) *session {
	if s := r.resumeParked(h); s != nil {
		return s
	}
	deadline := time.Now().Add(3 * time.Second)
	for r.hasActiveStation(h) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		if s := r.resumeParked(h); s != nil {
			return s
		}
	}
	return nil
}

// hasActiveStation reports whether a resumable routed session for the
// station is still attached to a client connection.
func (r *Router) hasActiveStation(h server.Hello) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.byStation[h.Station]
	return s != nil && s.resumable && r.sessions[s.id] == s
}

// resumeParked reclaims the station's parked session, nil when there is
// nothing to reclaim (no parked session, a different stream config, the
// park timer already fired, or the router is draining). Timer.Stop is
// the arbiter against a concurrently firing expiry.
func (r *Router) resumeParked(h server.Hello) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	p := r.parked[h.Station]
	if p == nil || p.s.hello != h {
		return nil
	}
	if !p.timer.Stop() {
		return nil
	}
	delete(r.parked, h.Station)
	r.sessions[p.s.id] = p.s
	r.m.SessionsParked.Set(int64(len(r.parked)))
	r.m.SessionsActive.Set(int64(len(r.sessions)))
	return p.s
}

// parkOrFinish tears a session down after its client connection ends:
// a resumable session parks for the resume window; anything else drains
// the upstream gracefully (so the shard publishes its buffered packets)
// and finishes.
func (r *Router) parkOrFinish(s *session, conn net.Conn, park bool) {
	if park && r.parkSession(s) {
		conn.Close()
		r.info("session parked",
			"cid", s.cid, "station", s.station, "resume_window", r.cfg.ParkTimeout)
		return
	}
	if s.up != nil {
		if err := s.drainUpstream(); err != nil {
			r.warn("session final drain failed",
				"cid", s.cid, "station", s.station, "err", err.Error())
		}
	}
	conn.Close()
	r.finishSession(s)
}

// parkSession moves an attached session into the parked map and starts
// its expiry timer. The upstream connection stays live so a prompt
// RESUME continues with zero replay.
func (r *Router) parkSession(s *session) bool {
	if r.cfg.ParkTimeout <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	if _, dup := r.parked[s.station]; dup {
		return false
	}
	delete(r.sessions, s.id)
	p := &parkedEntry{s: s}
	p.timer = time.AfterFunc(r.cfg.ParkTimeout, func() { r.expirePark(s.station, p) })
	r.parked[s.station] = p
	r.m.SessionsActive.Set(int64(len(r.sessions)))
	r.m.SessionsParked.Set(int64(len(r.parked)))
	return true
}

// expirePark drains a parked session whose resume window elapsed.
func (r *Router) expirePark(station string, p *parkedEntry) {
	r.mu.Lock()
	if r.parked[station] != p {
		r.mu.Unlock()
		return
	}
	delete(r.parked, station)
	parked := len(r.parked)
	r.mu.Unlock()
	r.m.SessionsParked.Set(int64(parked))
	r.info("session resume window expired", "cid", p.s.cid, "station", station)
	if p.s.up != nil {
		if err := p.s.drainUpstream(); err != nil {
			r.warn("session expiry drain failed",
				"cid", p.s.cid, "station", station, "err", err.Error())
		}
	}
	r.finishSession(p.s)
}

// finishSession unlinks a session and releases its retention. The
// upstream, if still attached, is abandoned abruptly — callers drain
// first when the shard should publish.
func (r *Router) finishSession(s *session) {
	if s.up != nil {
		s.teardownUpstream()
	}
	r.mu.Lock()
	delete(r.sessions, s.id)
	if r.byStation[s.station] == s {
		delete(r.byStation, s.station)
	}
	active := len(r.sessions)
	r.mu.Unlock()
	r.m.SessionsActive.Set(int64(active))
	if s.retained > 0 {
		r.m.RetainSamples.Add(-s.retained)
	}
	s.chunks, s.chunkStarts, s.retained = nil, nil, 0
	r.retireWatermark(s)
}
