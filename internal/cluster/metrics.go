package cluster

import "cic/internal/obs"

// Canonical metric names for the routing frontend, registered on the
// same registry as the decode and server metrics so one
// cic.DebugHandler serves everything. docs/OBSERVABILITY.md documents
// each.
const (
	// Fleet topology and health.
	MetricBackends        = "cluster_backends"             // gauge
	MetricBackendHealthy  = "cluster_backend_healthy"      // gauge {backend}
	MetricBreakerOpen     = "cluster_backend_breaker_open" // gauge {backend}
	MetricBackendSessions = "cluster_backend_sessions"     // gauge {backend}
	MetricBackendProbes   = "cluster_backend_probes"       // counter {backend, result}
	MetricBackendFailures = "cluster_backend_failures"     // counter {backend}

	// Session routing lifecycle.
	MetricSessionsActive = "cluster_sessions_active" // gauge
	MetricSessionsTotal  = "cluster_sessions_total"  // counter
	MetricSessionsParked = "cluster_sessions_parked" // gauge
	MetricResumesTotal   = "cluster_resumes_total"   // counter
	MetricRejected       = "cluster_rejected_total"  // counter
	MetricSheds          = "cluster_sheds_total"     // counter {backend}

	// Self-healing: failover, rebalance and replay.
	MetricFailovers       = "cluster_failovers_total"  // counter {backend}
	MetricMigrations      = "cluster_migrations_total" // counter
	MetricReplayedSamples = "cluster_replayed_samples" // counter
	MetricRetainSamples   = "cluster_retain_samples"   // gauge
	MetricRetainTrimmed   = "cluster_retain_trimmed"   // counter

	// Record fan-in (backend NDJSON streams merged behind the dedup
	// watermark).
	MetricRecordsRelayed   = "cluster_records_relayed"   // counter
	MetricRecordsDeduped   = "cluster_records_deduped"   // counter
	MetricIntakeErrors     = "cluster_intake_errors"     // counter
	MetricIntakeReconnects = "cluster_intake_reconnects" // counter
)

// clusterMetrics is the pre-resolved handle set for the router,
// mirroring internal/server's serverMetrics: built from a nil registry
// every handle is nil and every operation a no-op.
type clusterMetrics struct {
	Backends        *obs.Gauge
	BackendHealthy  *obs.GaugeVec
	BreakerOpen     *obs.GaugeVec
	BackendSessions *obs.GaugeVec
	BackendProbes   *obs.CounterVec
	BackendFailures *obs.CounterVec

	SessionsActive *obs.Gauge
	SessionsTotal  *obs.Counter
	SessionsParked *obs.Gauge
	ResumesTotal   *obs.Counter
	Rejected       *obs.Counter
	Sheds          *obs.CounterVec

	Failovers       *obs.CounterVec
	Migrations      *obs.Counter
	ReplayedSamples *obs.Counter
	RetainSamples   *obs.Gauge
	RetainTrimmed   *obs.Counter

	RecordsRelayed   *obs.Counter
	RecordsDeduped   *obs.Counter
	IntakeErrors     *obs.Counter
	IntakeReconnects *obs.Counter
}

// newClusterMetrics registers the router's metrics on r (nil-safe).
// Backend-label cardinality is the configured fleet size, so the vec
// families use the registry default cap.
func newClusterMetrics(r *obs.Registry) *clusterMetrics {
	backend := []string{"backend"}
	return &clusterMetrics{
		Backends:        r.Gauge(MetricBackends),
		BackendHealthy:  r.GaugeVec(MetricBackendHealthy, backend, 0),
		BreakerOpen:     r.GaugeVec(MetricBreakerOpen, backend, 0),
		BackendSessions: r.GaugeVec(MetricBackendSessions, backend, 0),
		BackendProbes:   r.CounterVec(MetricBackendProbes, []string{"backend", "result"}, 0),
		BackendFailures: r.CounterVec(MetricBackendFailures, backend, 0),

		SessionsActive: r.Gauge(MetricSessionsActive),
		SessionsTotal:  r.Counter(MetricSessionsTotal),
		SessionsParked: r.Gauge(MetricSessionsParked),
		ResumesTotal:   r.Counter(MetricResumesTotal),
		Rejected:       r.Counter(MetricRejected),
		Sheds:          r.CounterVec(MetricSheds, backend, 0),

		Failovers:       r.CounterVec(MetricFailovers, backend, 0),
		Migrations:      r.Counter(MetricMigrations),
		ReplayedSamples: r.Counter(MetricReplayedSamples),
		RetainSamples:   r.Gauge(MetricRetainSamples),
		RetainTrimmed:   r.Counter(MetricRetainTrimmed),

		RecordsRelayed:   r.Counter(MetricRecordsRelayed),
		RecordsDeduped:   r.Counter(MetricRecordsDeduped),
		IntakeErrors:     r.Counter(MetricIntakeErrors),
		IntakeReconnects: r.Counter(MetricIntakeReconnects),
	}
}
