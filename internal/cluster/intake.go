package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"time"

	"cic/internal/server"
)

// The record fan-in: each backend's NDJSON stream is merged into the
// router's own sink behind a per-station dedup watermark, so failover
// replay (which makes the replacement shard re-decode and re-publish
// the whole stream) is invisible in the merged output.
//
// Correctness rests on two invariants. First, every backend session for
// a station decodes the same deterministic stream from sample 0 (full
// replay), so its records are byte-identical to the fault-free run's —
// record k of any shard equals record k of any other. Second, one
// router session is the only writer for its station (admitSession
// enforces it), so "number of records already emitted" is a complete
// dedup state: emit record k iff k equals the watermark.

// relay merges one backend record into the router's sink. The watermark
// lock is held across Publish to keep the per-station record order —
// Publish is bounded (serialised writers plus non-blocking subscriber
// queues), so the critical section cannot stall on a slow consumer.
func (r *Router) relay(rec server.Record) {
	r.wmMu.Lock()
	st := r.wms[rec.Station]
	if st == nil {
		// No routed session ever (or the watermark was evicted): not ours
		// to police, pass it through.
		r.wmMu.Unlock()
		r.sink.Publish(rec)
		r.m.RecordsRelayed.Inc()
		return
	}
	if int64(rec.Seq) < st.next {
		r.wmMu.Unlock()
		r.m.RecordsDeduped.Inc()
		return
	}
	// rec.Seq == st.next in the normal interleave; a gap past the
	// watermark cannot happen under per-shard ordered delivery, so
	// emitting is always right. Records carry the router session id:
	// downstream sees one session per station, whatever the fleet did.
	st.next = int64(rec.Seq) + 1
	rec.Session = st.sessID
	r.sink.Publish(rec) //cic:lock-ok: Publish under wmMu preserves per-station record order by design; Fanout serialises writers and never blocks on a slow subscriber (dead-writer marking + bounded queues), so the hold is bounded
	r.wmMu.Unlock()
	r.m.RecordsRelayed.Inc()
}

// resetWatermark starts a fresh dedup state for a station's new routed
// session.
func (r *Router) resetWatermark(s *session) {
	r.wmMu.Lock()
	r.wms[s.station] = &wmState{sessID: s.id}
	r.wmMu.Unlock()
}

// retireWatermark marks a closed session's watermark as retired. It is
// kept — a drained-late shard (park expiry on an abandoned upstream)
// can still emit stragglers that must stay suppressed — but retired
// entries are evicted arbitrarily past maxWatermarks so the map stays
// bounded.
func (r *Router) retireWatermark(s *session) {
	r.wmMu.Lock()
	defer r.wmMu.Unlock()
	st := r.wms[s.station]
	if st == nil || st.sessID != s.id {
		return
	}
	st.retired = true
	if len(r.wms) <= maxWatermarks {
		return
	}
	for k, v := range r.wms {
		if len(r.wms) <= maxWatermarks {
			return
		}
		if v.retired && v != st {
			delete(r.wms, k)
		}
	}
}

// ingestLine parses one NDJSON line from a backend and relays it.
func (r *Router) ingestLine(line []byte) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return
	}
	var rec server.Record
	if err := json.Unmarshal(line, &rec); err != nil {
		r.m.IntakeErrors.Inc()
		r.warn("intake: bad record line", "err", err.Error())
		return
	}
	r.relay(rec)
}

// recordWriter adapts the fan-in to io.Writer for in-process backends
// and file-fed deployments: bytes are buffered until a newline
// completes a record line.
type recordWriter struct {
	r   *Router
	buf []byte
}

// RecordWriter returns a Writer that feeds backend NDJSON output into
// the router's dedup fan-in (the transport-free alternative to a
// PubAddr subscription). Each call returns an independent line buffer;
// a writer is not safe for concurrent use.
func (r *Router) RecordWriter() *recordWriter {
	return &recordWriter{r: r}
}

func (w *recordWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		w.r.ingestLine(w.buf[:i])
		w.buf = append(w.buf[:0], w.buf[i+1:]...)
	}
}

// Intake reconnect backoff bounds.
const (
	intakeBackoffBase = 100 * time.Millisecond
	intakeBackoffMax  = time.Second
)

// runIntake subscribes to one backend's NDJSON stream and relays every
// record, reconnecting with bounded backoff until the router shuts
// down. A dead backend keeps the loop dialing — when the shard comes
// back (or its replacement reuses the address), the fan-in resumes by
// itself.
func (r *Router) runIntake(b *backend) {
	defer r.intakeWG.Done()
	backoff := intakeBackoffBase
	for attempt := 0; ; attempt++ {
		select {
		case <-r.done:
			return
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.DialTimeout)
		conn, err := r.dial(ctx, b.spec.PubAddr)
		cancel()
		if err == nil {
			if attempt > 0 {
				r.m.IntakeReconnects.Inc()
			}
			r.intakeMu.Lock()
			r.intakeConns[conn] = struct{}{}
			r.intakeMu.Unlock()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
			for sc.Scan() {
				r.ingestLine(sc.Bytes())
			}
			r.intakeMu.Lock()
			delete(r.intakeConns, conn)
			r.intakeMu.Unlock()
			conn.Close()
			backoff = intakeBackoffBase
		}
		select {
		case <-r.done:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > intakeBackoffMax {
			backoff = intakeBackoffMax
		}
	}
}
