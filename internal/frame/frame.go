// Package frame assembles complete LoRa packets as complex-baseband IQ
// waveforms: the 8-up-chirp preamble, two SYNC symbols, 2.25 down-chirps
// and the PHY-encoded data symbols (paper Fig 5). It replaces the COTS
// transmitter (Adafruit RFM95) in the paper's deployments.
package frame

import (
	"fmt"

	"cic/internal/chirp"
	"cic/internal/phy"
)

// Preamble structure constants (paper §3, Fig 5).
const (
	PreambleUpchirps  = 8    // repeated C0 symbols opening every packet
	SyncSymbols       = 2    // two SYNC-word symbols
	DownchirpsWhole   = 2    // whole down-chirps after the SYNC word
	DownchirpFraction = 0.25 // plus a quarter down-chirp
)

// PreambleSymbols is the preamble length in symbol durations (12.25).
const PreambleSymbols = PreambleUpchirps + SyncSymbols + DownchirpsWhole + DownchirpFraction

// Config describes one transmitter's full PHY configuration.
type Config struct {
	Chirp    chirp.Params
	PHY      phy.Config
	SyncWord byte // network sync word; maps to the two SYNC symbols
}

// Validate checks both layers and their agreement on SF.
func (c Config) Validate() error {
	if err := c.Chirp.Validate(); err != nil {
		return err
	}
	if err := c.PHY.Validate(); err != nil {
		return err
	}
	if c.Chirp.SF != c.PHY.SF {
		return fmt.Errorf("frame: chirp SF %d != PHY SF %d", c.Chirp.SF, c.PHY.SF)
	}
	return nil
}

// SyncSymbolValues derives the two SYNC symbol values from the sync word:
// x = 8·hi-nibble, y = x + 8 per the paper (§3: "two SYNC symbols Cx, Cy
// (x ≠ 0, y = x+8)"). A zero hi-nibble is bumped to 1 to honour x ≠ 0.
func (c Config) SyncSymbolValues() (x, y int) {
	hi := int(c.SyncWord >> 4)
	if hi == 0 {
		hi = 1
	}
	x = 8 * hi
	n := c.Chirp.ChipCount()
	y = (x + 8) % n
	x %= n
	return
}

// Info reports the sample-domain geometry of a modulated packet.
type Info struct {
	DataSymbols     int // number of PHY data symbols (header block included)
	PreambleSamples int // samples before the first data symbol
	TotalSamples    int // full packet length in samples
}

// PreambleSampleCount returns the number of samples occupied by the
// preamble (8 up-chirps + 2 SYNC + 2.25 down-chirps).
func (c Config) PreambleSampleCount() int {
	m := c.Chirp.SamplesPerSymbol()
	return (PreambleUpchirps+SyncSymbols+DownchirpsWhole)*m + m/4
}

// PacketSampleCount returns the total number of samples for a payload of
// the given length.
func (c Config) PacketSampleCount(payloadLen int) int {
	return c.PreambleSampleCount() + phy.SymbolCount(c.PHY, payloadLen)*c.Chirp.SamplesPerSymbol()
}

// Modulator turns payloads into IQ waveforms for one Config.
type Modulator struct {
	cfg Config
	gen *chirp.Generator
}

// NewModulator builds a Modulator.
func NewModulator(cfg Config) (*Modulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := chirp.NewGenerator(cfg.Chirp)
	if err != nil {
		return nil, err
	}
	return &Modulator{cfg: cfg, gen: g}, nil
}

// Config returns the modulator's configuration.
func (m *Modulator) Config() Config { return m.cfg }

// Generator exposes the underlying chirp generator (shared, read-only).
func (m *Modulator) Generator() *chirp.Generator { return m.gen }

// Modulate encodes payload and synthesises the packet waveform at unit
// amplitude.
func (m *Modulator) Modulate(payload []byte) ([]complex128, Info, error) {
	symbols, err := phy.Encode(payload, m.cfg.PHY)
	if err != nil {
		return nil, Info{}, err
	}
	wave, err := m.ModulateSymbols(symbols)
	if err != nil {
		return nil, Info{}, err
	}
	info := Info{
		DataSymbols:     len(symbols),
		PreambleSamples: m.cfg.PreambleSampleCount(),
		TotalSamples:    len(wave),
	}
	return wave, info, nil
}

// ModulateSymbols synthesises preamble plus the given raw data symbols.
// A symbol value outside the chip range [0, 2^SF) is an error: raw
// symbols arrive here from arbitrary user input, so they must not be
// able to panic the modulator.
func (m *Modulator) ModulateSymbols(symbols []uint16) ([]complex128, error) {
	sps := m.cfg.Chirp.SamplesPerSymbol()
	buf := make([]complex128, 0, m.cfg.PreambleSampleCount()+len(symbols)*sps)
	for i := 0; i < PreambleUpchirps; i++ {
		buf = append(buf, m.gen.Upchirp()...)
	}
	x, y := m.cfg.SyncSymbolValues()
	var err error
	if buf, err = m.gen.AppendSymbol(buf, x); err != nil {
		return nil, err
	}
	if buf, err = m.gen.AppendSymbol(buf, y); err != nil {
		return nil, err
	}
	buf = m.gen.AppendDownchirps(buf, DownchirpsWhole, DownchirpFraction)
	for _, s := range symbols {
		if buf, err = m.gen.AppendSymbol(buf, int(s)); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
