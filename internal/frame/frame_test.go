package frame

import (
	"math"
	"testing"

	"cic/internal/chirp"
	"cic/internal/dsp"
	"cic/internal/phy"
)

func testConfig() Config {
	return Config{
		Chirp:    chirp.Params{SF: 8, Bandwidth: 250e3, OSR: 2},
		PHY:      phy.Config{SF: 8, CR: phy.CR45, HasCRC: true},
		SyncWord: 0x34,
	}
}

func TestConfigValidate(t *testing.T) {
	c := testConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.PHY.SF = 9
	if err := c.Validate(); err == nil {
		t.Error("SF mismatch accepted")
	}
}

func TestSyncSymbolValues(t *testing.T) {
	c := testConfig() // sync 0x34 → hi=3 → x=24, y=32
	x, y := c.SyncSymbolValues()
	if x != 24 || y != 32 {
		t.Errorf("sync symbols = %d,%d want 24,32", x, y)
	}
	c.SyncWord = 0x04 // hi=0 → bumped to 1 → x=8
	x, y = c.SyncSymbolValues()
	if x != 8 || y != 16 {
		t.Errorf("zero-hi sync symbols = %d,%d want 8,16", x, y)
	}
}

func TestPreambleSampleCount(t *testing.T) {
	c := testConfig()
	m := c.Chirp.SamplesPerSymbol()
	want := 12*m + m/4
	if got := c.PreambleSampleCount(); got != want {
		t.Errorf("PreambleSampleCount = %d, want %d", got, want)
	}
}

func TestModulateGeometry(t *testing.T) {
	c := testConfig()
	mod, err := NewModulator(c)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("28-byte payload for the test")
	wave, info, err := mod.Modulate(payload)
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalSamples != len(wave) {
		t.Error("TotalSamples mismatch")
	}
	if info.TotalSamples != c.PacketSampleCount(len(payload)) {
		t.Errorf("PacketSampleCount = %d, Modulate produced %d",
			c.PacketSampleCount(len(payload)), info.TotalSamples)
	}
	if info.DataSymbols != phy.SymbolCount(c.PHY, len(payload)) {
		t.Error("DataSymbols mismatch")
	}
	// Unit amplitude everywhere.
	for i, v := range wave {
		if mag := real(v)*real(v) + imag(v)*imag(v); math.Abs(mag-1) > 1e-9 {
			t.Fatalf("sample %d |v|² = %g", i, mag)
		}
	}
}

// TestModulatedPacketDecodesSymbolBySymbol: de-chirping each data symbol
// window of the clean waveform must reproduce the encoded symbol values,
// and the PHY decode must return the payload.
func TestModulatedPacketDecodesSymbolBySymbol(t *testing.T) {
	c := testConfig()
	mod, _ := NewModulator(c)
	payload := []byte("loopback through the ether")
	syms, err := phy.Encode(payload, c.PHY)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := mod.ModulateSymbols(syms)
	if err != nil {
		t.Fatal(err)
	}

	g := mod.Generator()
	sps := c.Chirp.SamplesPerSymbol()
	n := c.Chirp.ChipCount()
	fft := dsp.MustPlan(sps)
	buf := make([]complex128, sps)
	start := c.PreambleSampleCount()
	got := make([]uint16, len(syms))
	for i := range syms {
		win := wave[start+i*sps : start+(i+1)*sps]
		g.Dechirp(buf, win)
		fft.Forward(buf)
		spec := dsp.FoldMagnitude(nil, buf, n, c.Chirp.OSR)
		_, at := spec.Max()
		got[i] = uint16(at)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: demodulated %d, want %d", i, got[i], syms[i])
		}
	}
	res, err := phy.Decode(got, c.PHY)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Payload) != string(payload) || !res.CRCOK {
		t.Error("full loopback decode failed")
	}
}

// TestPreambleStructure: the first 8 symbol windows de-chirp to bin 0, the
// next two to the SYNC values, and the down-chirp region de-chirps to a
// clean tone under DechirpDown.
func TestPreambleStructure(t *testing.T) {
	c := testConfig()
	mod, _ := NewModulator(c)
	wave, err := mod.ModulateSymbols(nil)
	if err != nil {
		t.Fatal(err)
	}
	g := mod.Generator()
	sps := c.Chirp.SamplesPerSymbol()
	n := c.Chirp.ChipCount()
	fft := dsp.MustPlan(sps)
	buf := make([]complex128, sps)
	demod := func(off int) int {
		g.Dechirp(buf, wave[off:off+sps])
		fft.Forward(buf)
		_, at := dsp.FoldMagnitude(nil, buf, n, c.Chirp.OSR).Max()
		return at
	}
	for i := 0; i < PreambleUpchirps; i++ {
		if got := demod(i * sps); got != 0 {
			t.Errorf("preamble up-chirp %d demodulates to %d", i, got)
		}
	}
	x, y := c.SyncSymbolValues()
	if got := demod(8 * sps); got != x {
		t.Errorf("SYNC1 = %d, want %d", got, x)
	}
	if got := demod(9 * sps); got != y {
		t.Errorf("SYNC2 = %d, want %d", got, y)
	}
	// Down-chirp window: DechirpDown concentrates on M-bin 0.
	off := 10 * sps
	g.DechirpDown(buf, wave[off:off+sps])
	fft.Forward(buf)
	mag := make(dsp.Spectrum, sps)
	for i, v := range buf {
		mag[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	peak, at := mag.Max()
	if at != 0 {
		t.Errorf("down-chirp tone at M-bin %d, want 0", at)
	}
	if frac := peak / mag.Energy(); frac < 0.9 {
		t.Errorf("down-chirp tone share %.2f, want >= 0.9", frac)
	}
}
