package frame

import (
	"testing"

	"cic/internal/chirp"
	"cic/internal/phy"
)

func TestPacketSampleCountScalesWithPayload(t *testing.T) {
	c := testConfig()
	prev := 0
	for _, l := range []int{0, 1, 10, 100, 255} {
		n := c.PacketSampleCount(l)
		// Non-decreasing: tiny payloads can share a block count.
		if n < prev {
			t.Fatalf("PacketSampleCount(%d) = %d decreased", l, n)
		}
		prev = n
	}
	if c.PacketSampleCount(255) <= c.PacketSampleCount(0) {
		t.Error("large payloads must occupy more samples")
	}
}

func TestPreambleSymbolsConstant(t *testing.T) {
	// The preamble is 12.25 symbols by construction.
	if PreambleSymbols != 12.25 {
		t.Errorf("PreambleSymbols = %v", PreambleSymbols)
	}
}

func TestModulateSymbolsLengths(t *testing.T) {
	c := testConfig()
	mod, err := NewModulator(c)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Chirp.SamplesPerSymbol()
	for _, nsym := range []int{0, 1, 5} {
		syms := make([]uint16, nsym)
		wave, err := mod.ModulateSymbols(syms)
		if err != nil {
			t.Fatal(err)
		}
		want := c.PreambleSampleCount() + nsym*m
		if len(wave) != want {
			t.Errorf("%d symbols: %d samples, want %d", nsym, len(wave), want)
		}
	}
}

// TestModulateSymbolsRejectsOutOfRange: raw symbol values come from
// arbitrary user input, so a value outside [0, 2^SF) must surface as an
// error rather than a panic.
func TestModulateSymbolsRejectsOutOfRange(t *testing.T) {
	c := testConfig()
	mod, err := NewModulator(c)
	if err != nil {
		t.Fatal(err)
	}
	bad := uint16(c.Chirp.ChipCount())
	if _, err := mod.ModulateSymbols([]uint16{0, bad}); err == nil {
		t.Error("out-of-range symbol accepted")
	}
	if _, err := mod.ModulateSymbols([]uint16{0, bad - 1}); err != nil {
		t.Errorf("in-range symbols rejected: %v", err)
	}
}

func TestNewModulatorRejectsBadConfig(t *testing.T) {
	c := testConfig()
	c.Chirp.OSR = 3
	if _, err := NewModulator(c); err == nil {
		t.Error("bad OSR accepted")
	}
	c = testConfig()
	c.PHY.CR = phy.CodingRate(9)
	if _, err := NewModulator(c); err == nil {
		t.Error("bad CR accepted")
	}
}

func TestModulateAllSpreadingFactors(t *testing.T) {
	for sf := 7; sf <= 12; sf++ {
		c := Config{
			Chirp:    chirp.Params{SF: sf, Bandwidth: 125e3, OSR: 1},
			PHY:      phy.Config{SF: sf, CR: phy.CR45, HasCRC: true},
			SyncWord: 0x12,
		}
		mod, err := NewModulator(c)
		if err != nil {
			t.Fatalf("SF%d: %v", sf, err)
		}
		wave, info, err := mod.Modulate([]byte("sf sweep"))
		if err != nil {
			t.Fatalf("SF%d: %v", sf, err)
		}
		if len(wave) != info.TotalSamples || info.DataSymbols <= 0 {
			t.Errorf("SF%d geometry: %+v", sf, info)
		}
	}
}

func TestModulateOversizePayload(t *testing.T) {
	mod, _ := NewModulator(testConfig())
	if _, _, err := mod.Modulate(make([]byte, 256)); err == nil {
		t.Error("256-byte payload accepted")
	}
}
