package eval

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteSVG renders the figure as a simple self-contained SVG line chart:
// one polyline per series, axes with tick labels, and a legend. It is
// deliberately dependency-free so `cic-experiments -outdir x -svg` can
// produce viewable figures anywhere.
func (f Figure) WriteSVG(w io.Writer) error {
	const (
		width   = 760.0
		height  = 480.0
		left    = 70.0
		right   = 20.0
		top     = 48.0
		bottom  = 56.0
		legendY = 16.0
	)
	plotW := width - left - right
	plotH := height - top - bottom

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
			if i < len(s.YErr) {
				maxY = math.Max(maxY, s.Y[i]+s.YErr[i])
			}
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		minX, maxX = 0, 1
	}
	if math.IsInf(maxY, -1) || maxY <= minY {
		maxY = 1
	}
	maxY *= 1.05 // headroom

	xPos := func(x float64) float64 { return left + (x-minX)/(maxX-minX)*plotW }
	yPos := func(y float64) float64 { return top + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s — %s</text>`+"\n",
		left, escape(strings.ToUpper(f.ID)), escape(f.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", left, top, left, top+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", left, top+plotH, left+plotW, top+plotH)
	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		fx := minX + (maxX-minX)*float64(i)/5
		fy := minY + (maxY-minY)*float64(i)/5
		x := xPos(fx)
		y := yPos(fy)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", x, top+plotH, x, top+plotH+5)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, top+plotH+18, trimNum(fx))
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", left-5, y, left, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			left-8, y+4, trimNum(fy))
	}
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		left+plotW/2, height-12, escape(f.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		top+plotH/2, top+plotH/2, escape(f.YLabel))

	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf", "#7f7f7f"}
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPos(s.X[i]), yPos(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range pts {
			var px, py float64
			fmt.Sscanf(p, "%f,%f", &px, &py)
			fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="2.5" fill="%s"/>`+"\n", px, py, color)
		}
		// Error bars (95% CI) when the series carries per-point half-widths.
		for i := range s.X {
			if i >= len(s.YErr) || s.YErr[i] <= 0 {
				continue
			}
			x := xPos(s.X[i])
			lo := yPos(s.Y[i] - s.YErr[i])
			hi := yPos(s.Y[i] + s.YErr[i])
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n", x, lo, x, hi, color)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n", x-3, lo, x+3, lo, color)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n", x-3, hi, x+3, hi, color)
		}
		// Legend entry.
		lx := left + 10 + float64(si%2)*(plotW/2)
		ly := top + legendY*float64(si/2) + 4
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n", lx, ly, lx+22, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n", lx+28, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// escape performs minimal XML escaping for labels.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// trimNum formats an axis tick without trailing noise.
func trimNum(x float64) string {
	if math.Abs(x) >= 100 || x == math.Trunc(x) {
		return fmt.Sprintf("%.0f", x)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", x), "0"), ".")
}
