package eval

import (
	"fmt"
	"math"
	"math/rand"

	"cic/internal/channel"
	"cic/internal/chirp"
	"cic/internal/core"
	"cic/internal/dsp"
	"cic/internal/frame"
	"cic/internal/obs"
	"cic/internal/phy"
	"cic/internal/rx"
	"cic/internal/sim"
)

// Config carries the experiment-wide knobs. DefaultConfig mirrors the
// paper's deployment configuration (SF8, BW 250 kHz, CR 4/5, 28-byte
// payloads, 20 nodes) with a simulation duration short enough for
// laptop-scale regeneration; raise Duration (the paper used 60 s per rate
// point) for tighter statistics.
type Config struct {
	Frame      frame.Config
	Rates      []float64 // aggregate offered loads, packets/second
	Duration   float64   // seconds per rate point
	PayloadLen int
	Seed       int64
	Workers    int

	// Metrics, when non-nil, collects decode-pipeline metrics from the CIC
	// receiver across every experiment run (the baselines are not
	// instrumented). cmd/cic-experiments serves it behind -debug-addr and
	// prints the decode-latency summary from it.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper-matching configuration.
func DefaultConfig() Config {
	return Config{
		Frame: frame.Config{
			Chirp:    chirp.Params{SF: 8, Bandwidth: 250e3, OSR: 4},
			PHY:      phy.Config{SF: 8, CR: phy.CR45, HasCRC: true},
			SyncWord: 0x34,
		},
		Rates:      []float64{5, 10, 20, 40, 60, 80, 100},
		Duration:   2.0,
		PayloadLen: 28,
		Seed:       1,
		Workers:    0,
	}
}

// figNumbers maps a deployment to its throughput/detection figure ids.
var throughputFig = map[string]string{"D1": "fig28", "D2": "fig29", "D3": "fig30", "D4": "fig31"}
var detectionFig = map[string]string{"D1": "fig32", "D2": "fig33", "D3": "fig34", "D4": "fig35"}

// Throughput regenerates Figs 28–31: decoded packets/second vs offered
// load for CIC, FTrack, Choir and standard LoRa in one deployment.
func Throughput(cfg Config, dep sim.Deployment) (Figure, error) {
	receivers, err := DefaultReceiversObserved(cfg.Frame, cfg.Workers, obs.NewDecodeMetrics(cfg.Metrics))
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     throughputFig[dep.Name],
		Title:  fmt.Sprintf("Network Capacity for %s (%s)", dep.Name, dep.Label),
		XLabel: "offered pkts/s",
		YLabel: "decoded pkts/s",
	}
	series := make([]Series, len(receivers))
	for i, r := range receivers {
		series[i].Name = r.Name()
	}
	nw, err := sim.NewNetwork(cfg.Frame, dep, cfg.Seed)
	if err != nil {
		return Figure{}, err
	}
	for ri, rate := range cfg.Rates {
		run, err := nw.BuildRun(rate, cfg.Duration, cfg.PayloadLen, cfg.Seed+int64(ri)*101)
		if err != nil {
			return Figure{}, err
		}
		for i, r := range receivers {
			results, err := r.Receive(run.Source)
			if err != nil {
				return Figure{}, err
			}
			score := sim.ScoreDecodes(run, results, cfg.Duration)
			series[i].X = append(series[i].X, rate)
			series[i].Y = append(series[i].Y, score.Throughput())
		}
	}
	fig.Series = series
	return fig, nil
}

// Detection regenerates Figs 32–35: the fraction of transmitted packets
// whose preamble is found, comparing CIC's down-chirp scan with the
// conventional up-chirp scan (FTrack) and the locked single receiver
// (standard LoRa).
func Detection(cfg Config, dep sim.Deployment) (Figure, error) {
	det, err := rx.NewDetector(cfg.Frame, rx.DetectorOptions{Metrics: obs.NewDecodeMetrics(cfg.Metrics)})
	if err != nil {
		return Figure{}, err
	}
	// FTrack's preamble search keeps multiple candidate peaks per window.
	detFT, err := rx.NewDetector(cfg.Frame, rx.DetectorOptions{UpchirpTopK: 3})
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     detectionFig[dep.Name],
		Title:  fmt.Sprintf("Packet Detection for %s (%s)", dep.Name, dep.Label),
		XLabel: "offered pkts/s",
		YLabel: "detection rate",
	}
	series := []Series{{Name: "CIC"}, {Name: "FTrack"}, {Name: "LoRa"}}
	nw, err := sim.NewNetwork(cfg.Frame, dep, cfg.Seed)
	if err != nil {
		return Figure{}, err
	}
	for ri, rate := range cfg.Rates {
		run, err := nw.BuildRun(rate, cfg.Duration, cfg.PayloadLen, cfg.Seed+int64(ri)*101)
		if err != nil {
			return Figure{}, err
		}
		down := det.ScanDownchirp(run.Source)
		upFT := detFT.ScanUpchirp(run.Source)
		up := det.ScanUpchirp(run.Source)
		// Standard LoRa detects with up-chirps but holds a single-packet
		// lock, so overlapped packets are never even received.
		upForLock := clonePackets(up)
		setLengths(cfg.Frame, cfg.PayloadLen, upForLock)
		locked := captureFilterForEval(cfg.Frame, upForLock)

		for i, pkts := range [][]*rx.Packet{down, upFT, locked} {
			score := sim.ScoreDetections(run, pkts, cfg.Duration)
			series[i].X = append(series[i].X, rate)
			series[i].Y = append(series[i].Y, score.DetectionRate())
		}
	}
	fig.Series = series
	return fig, nil
}

// clonePackets copies tracked packets so filters can mutate lengths.
func clonePackets(pkts []*rx.Packet) []*rx.Packet {
	out := make([]*rx.Packet, len(pkts))
	for i, p := range pkts {
		c := *p
		out[i] = &c
	}
	return out
}

// setLengths fixes NSymbols from the experiment's known payload length.
func setLengths(cfg frame.Config, payloadLen int, pkts []*rx.Packet) {
	n := phy.SymbolCount(cfg.PHY, payloadLen)
	for _, p := range pkts {
		p.NSymbols = n
	}
}

// captureFilterForEval mirrors stdlora.CaptureFilter without importing it
// (avoiding an eval→baseline→eval cycle risk); kept in sync by a test.
func captureFilterForEval(cfg frame.Config, pkts []*rx.Packet) []*rx.Packet {
	margin := dsp.AmplitudeFromDB(6)
	var out []*rx.Packet
	var cur *rx.Packet
	for _, p := range pkts {
		if cur == nil || p.Start >= cur.End(cfg) {
			if cur != nil {
				out = append(out, cur)
			}
			cur = p
			continue
		}
		if p.PeakAmp > cur.PeakAmp*margin {
			cur = p
		}
	}
	if cur != nil {
		out = append(out, cur)
	}
	return out
}

// Ablation regenerates Figs 36–37: throughput for the four CIC feature
// variants in one deployment (the paper shows D1 and D4).
func Ablation(cfg Config, dep sim.Deployment) (Figure, error) {
	variants, err := CICVariants(cfg.Frame, cfg.Workers)
	if err != nil {
		return Figure{}, err
	}
	order := []string{"CIC", "CIC-(CFO)", "CIC-(Power)", "CIC-(Power,CFO)"}
	id := "fig36"
	if dep.Name == "D4" {
		id = "fig37"
	}
	fig := Figure{
		ID:     id,
		Title:  fmt.Sprintf("Effect of Removing CIC Features for %s", dep.Name),
		XLabel: "offered pkts/s",
		YLabel: "decoded pkts/s",
	}
	series := make([]Series, len(order))
	for i, name := range order {
		series[i].Name = name
	}
	nw, err := sim.NewNetwork(cfg.Frame, dep, cfg.Seed)
	if err != nil {
		return Figure{}, err
	}
	for ri, rate := range cfg.Rates {
		run, err := nw.BuildRun(rate, cfg.Duration, cfg.PayloadLen, cfg.Seed+int64(ri)*101)
		if err != nil {
			return Figure{}, err
		}
		for i, name := range order {
			results, err := variants[name].Receive(run.Source)
			if err != nil {
				return Figure{}, err
			}
			score := sim.ScoreDecodes(run, results, cfg.Duration)
			series[i].X = append(series[i].X, rate)
			series[i].Y = append(series[i].Y, score.Throughput())
		}
	}
	fig.Series = series
	return fig, nil
}

// TemporalProximity regenerates Fig 38: symbol error rate of CIC as two
// packets collide with sub-symbol boundary offsets, at 30 dB SNR (the
// paper's simulation study; COTS devices cannot be synchronised this
// tightly).
func TemporalProximity(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig38",
		Title:  "SER vs sub-symbol collision offset (two packets, 30 dB)",
		XLabel: "dTau/Ts",
		YLabel: "symbol error rate",
	}
	mod, err := frame.NewModulator(cfg.Frame)
	if err != nil {
		return Figure{}, err
	}
	m := cfg.Frame.Chirp.SamplesPerSymbol()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ser := Series{Name: "CIC"}
	for frac := 0.0; frac < 0.999; frac += 0.1 {
		offset := int64(frac * float64(m))
		errs, total, err := temporalSERPoint(cfg, mod, offset, rng)
		if err != nil {
			return Figure{}, err
		}
		ser.X = append(ser.X, frac)
		ser.Y = append(ser.Y, float64(errs)/float64(total))
	}
	fig.Series = []Series{ser}
	return fig, nil
}

// temporalSERPoint measures CIC symbol errors for one sub-symbol offset.
func temporalSERPoint(cfg Config, mod *frame.Modulator, offset int64, rng *rand.Rand) (errs, total int, err error) {
	fcfg := cfg.Frame
	payA := make([]byte, cfg.PayloadLen)
	payB := make([]byte, cfg.PayloadLen)
	rng.Read(payA)
	rng.Read(payB)
	symsA, err := phy.Encode(payA, fcfg.PHY)
	if err != nil {
		return 0, 0, err
	}
	symsB, err := phy.Encode(payB, fcfg.PHY)
	if err != nil {
		return 0, 0, err
	}
	waveA, _, err := mod.Modulate(payA)
	if err != nil {
		return 0, 0, err
	}
	waveB, _, err := mod.Modulate(payB)
	if err != nil {
		return 0, 0, err
	}
	const snr = 30.0
	cfoA := channel.RandomCFO(rng, sim.CrystalPPM, sim.CarrierHz)
	cfoB := channel.RandomCFO(rng, sim.CrystalPPM, sim.CarrierHz)
	base := int64(4 * fcfg.Chirp.SamplesPerSymbol())
	ems := []channel.Emission{
		{Start: base, Samples: channel.Apply(waveA, channel.Impairments{
			Amplitude: channel.AmplitudeForSNR(snr), CFOHz: cfoA, SampleRate: fcfg.Chirp.SampleRate()})},
		{Start: base + offset, Samples: channel.Apply(waveB, channel.Impairments{
			Amplitude: channel.AmplitudeForSNR(snr), CFOHz: cfoB, SampleRate: fcfg.Chirp.SampleRate(),
			InitialPhase: 1.7})},
	}
	src := rx.SourceFromRenderer(channel.NewRenderer(ems, fcfg.Chirp.OSR, cfg.Seed^offset))

	// Truth-aligned tracking: the packets start (near-)simultaneously, so
	// their overlapping preambles cannot be separated by detection; the
	// paper's simulation likewise measures pure demodulation.
	pkts := []*rx.Packet{
		{ID: 0, Start: base, CFOHz: cfoA, NSymbols: len(symsA)},
		{ID: 1, Start: base + offset, CFOHz: cfoB, NSymbols: len(symsB)},
	}
	d, err := rx.NewDemod(fcfg)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range pkts {
		d.LoadWindow(src, p.Start+int64(2*fcfg.Chirp.SamplesPerSymbol()), p.CFOHz)
		peak, _ := d.FoldedSpectrum().Max()
		p.PeakAmp = math.Sqrt(peak)
	}
	dm, err := core.NewDemodulator(fcfg, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	truth := [][]uint16{symsA, symsB}
	for pi, p := range pkts {
		other := []*rx.Packet{pkts[1-pi]}
		for s := 0; s < p.NSymbols; s++ {
			got := dm.DemodulateSymbol(src, p, s, other)
			total++
			if got != truth[pi][s] {
				errs++
			}
		}
	}
	return errs, total, nil
}

// Cancellation regenerates Fig 17: the cancellation depth (dB) CIC achieves
// on a single interfering symbol as a function of its boundary proximity
// Δτ/Ts and frequency proximity Δf/B, at SF8, noise-free.
func Cancellation(cfg Config) (Figure, error) {
	fcfg := cfg.Frame
	gen, err := chirp.NewGenerator(fcfg.Chirp)
	if err != nil {
		return Figure{}, err
	}
	m := fcfg.Chirp.SamplesPerSymbol()
	n := fcfg.Chirp.ChipCount()
	fig := Figure{
		ID:     "fig17",
		Title:  "Cancellation (dB) of one interfering symbol vs dTau and dF (SF8)",
		XLabel: "dTau/Ts",
		YLabel: "cancellation dB",
	}
	// Our symbol sits at bin 0. Δf is the *apparent* (post-de-chirp)
	// frequency separation between the interferer's peak and ours, which is
	// the quantity cancellation physically depends on; the interferer's
	// chirp-start bin is back-computed from Δf and the boundary-induced
	// shift Δf_i = τ·B/2^SF (Eqn 10).
	k1 := 0
	taus := []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	dfs := []float64{0.02, 0.1, 0.25, 0.5}
	demod, err := rx.NewDemod(fcfg)
	if err != nil {
		return Figure{}, err
	}
	for _, df := range dfs {
		s := Series{Name: fmt.Sprintf("dF/B=%.2f", df)}
		for _, tf := range taus {
			tau := int(tf * float64(m))
			// Apparent bin of C_next = kNext − τ/OSR (it starts τ into the
			// window); place it Δf·N bins away from our bin.
			kNext := (k1 + int(df*float64(n)) + tau/fcfg.Chirp.OSR) % n
			kPrev := (kNext + n/2 + 13) % n // far away: only kNext is under test
			// Build r(t): our full symbol + interferer C_prev until τ, then
			// C_next (Eqn 5/6 with N=2).
			win := make([]complex128, m)
			tmp := make([]complex128, m)
			gen.Symbol(win, k1)
			gen.Symbol(tmp, kPrev)
			// C_prev occupies [0,τ): it is the tail of a symbol that began
			// τ−M samples before the window.
			for i := 0; i < tau; i++ {
				win[i] += tmp[(i+m-tau)%m]
			}
			gen.Symbol(tmp, kNext)
			for i := tau; i < m; i++ {
				win[i] += tmp[i-tau]
			}
			src := &rx.MemorySource{Samples: win}
			demod.LoadWindow(src, 0, 0)
			full := append(dsp.Spectrum(nil), demod.FoldedSpectrum()...)
			full.Normalize()

			dmLocal, err := core.NewDemodulator(fcfg, core.Options{})
			if err != nil {
				return Figure{}, err
			}
			// Measure the residual at the interferer's apparent bin in both
			// spectra. Apparent bin of C_next in our window: kNext − τ/OSR.
			app := ((kNext-tau/fcfg.Chirp.OSR)%n + n) % n
			interSpec := intersectOnce(dmLocal, src, fcfg, tau)
			before := full[app]
			after := interSpec[app]
			canc := 0.0
			if after > 0 && before > 0 {
				canc = dsp.DB(before / after)
			}
			if canc < 0 {
				canc = 0
			}
			s.X = append(s.X, tf)
			s.Y = append(s.Y, canc)
		}
		fig.Series = append(fig.Series, s)
	}
	// Closed-form counterpart (the analysis the paper omits for space,
	// derived in core/analytic.go) for the largest Δf, for comparison.
	an := Series{Name: "analytic dF/B=0.50"}
	for _, tf := range taus {
		an.X = append(an.X, tf)
		an.Y = append(an.Y, core.AnalyticCancellation(fcfg.Chirp.SF, tf, 0.5))
	}
	fig.Series = append(fig.Series, an)
	return fig, nil
}

// intersectOnce runs the CIC intersection for a bare window with one
// boundary at τ, returning the normalised intersected spectrum.
func intersectOnce(dm *core.Demodulator, src rx.SampleSource, cfg frame.Config, tau int) dsp.Spectrum {
	// Craft a packet whose symbol 0 is the window at sample 0 and an
	// interferer with a data boundary exactly at τ.
	pre := int64(cfg.PreambleSampleCount())
	pkt := &rx.Packet{Start: -pre, NSymbols: 1}
	m := int64(cfg.Chirp.SamplesPerSymbol())
	q := &rx.Packet{Start: int64(tau) - pre - 20*m, NSymbols: 1000}
	spec := dm.IntersectedSpectrum(src, pkt, 0, []*rx.Packet{q})
	return spec.Normalize()
}

// Heisenberg regenerates Fig 15: the de-chirped spectrum of five
// interfering symbols estimated over progressively shorter windows.
func Heisenberg(cfg Config) (Figure, error) {
	fcfg := cfg.Frame
	gen, err := chirp.NewGenerator(fcfg.Chirp)
	if err != nil {
		return Figure{}, err
	}
	m := fcfg.Chirp.SamplesPerSymbol()
	bins := []int{40, 50, 58, 70, 84}
	win := make([]complex128, m)
	tmp := make([]complex128, m)
	for _, k := range bins {
		gen.Symbol(tmp, k)
		for i := range win {
			win[i] += tmp[i]
		}
	}
	src := &rx.MemorySource{Samples: win}
	d, err := rx.NewDemod(fcfg)
	if err != nil {
		return Figure{}, err
	}
	d.LoadWindow(src, 0, 0)
	fig := Figure{
		ID:     "fig15",
		Title:  "Heisenberg: spectral resolution vs window span (5 symbols)",
		XLabel: "LoRa bin",
		YLabel: "normalised power",
	}
	for _, div := range []int{1, 2, 4, 8} {
		spec := d.SubSymbolSpectrum(nil, 0, m/div).Normalize()
		s := Series{Name: fmt.Sprintf("tau=Ts/%d", div)}
		for b, v := range spec {
			s.X = append(s.X, float64(b))
			s.Y = append(s.Y, v)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ResolvablePeaks counts distinct peaks above a fraction of the maximum in
// a spectrum — the quantitative side of Fig 15.
func ResolvablePeaks(spec dsp.Spectrum, frac float64) int {
	return len(dsp.TopPeaks(spec, frac, 0))
}

// PreambleClutter regenerates Figs 19–20: the number of spectral peaks a
// detector must consider per scan window when a new preamble arrives amid
// five ongoing transmissions, for up-chirp vs down-chirp correlation.
func PreambleClutter(cfg Config) (Figure, error) {
	fcfg := cfg.Frame
	mod, err := frame.NewModulator(fcfg)
	if err != nil {
		return Figure{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := fcfg.Chirp.SamplesPerSymbol()
	var ems []channel.Emission
	// Five ongoing transmissions, started early enough that their preambles
	// and SFDs precede the scan region: the scan sees only their data
	// symbols, as in Figs 19–20.
	for i := 0; i < 5; i++ {
		pay := make([]byte, cfg.PayloadLen)
		rng.Read(pay)
		wave, _, err := mod.Modulate(pay)
		if err != nil {
			return Figure{}, err
		}
		ems = append(ems, channel.Emission{
			Start: int64(i*3*m) - int64(14*m),
			Samples: channel.Apply(wave, channel.Impairments{
				Amplitude:  channel.AmplitudeForSNR(25),
				CFOHz:      channel.RandomCFO(rng, sim.CrystalPPM, sim.CarrierHz),
				SampleRate: fcfg.Chirp.SampleRate(),
			}),
		})
	}
	// ...plus one new packet whose preamble we watch arriving.
	newStart := int64(20 * m)
	pay := make([]byte, cfg.PayloadLen)
	rng.Read(pay)
	wave, _, err := mod.Modulate(pay)
	if err != nil {
		return Figure{}, err
	}
	ems = append(ems, channel.Emission{Start: newStart, Samples: channel.Apply(wave, channel.Impairments{
		Amplitude:  channel.AmplitudeForSNR(25),
		CFOHz:      channel.RandomCFO(rng, sim.CrystalPPM, sim.CarrierHz),
		SampleRate: fcfg.Chirp.SampleRate(),
	})})
	src := rx.SourceFromRenderer(channel.NewRenderer(ems, fcfg.Chirp.OSR, cfg.Seed))

	gen, err := chirp.NewGenerator(fcfg.Chirp)
	if err != nil {
		return Figure{}, err
	}
	fft := dsp.MustPlan(m)
	win := make([]complex128, m)
	dd := make([]complex128, m)
	mag := make(dsp.Spectrum, m)
	up := Series{Name: "up-chirp detection (Fig 19)"}
	down := Series{Name: "down-chirp detection (Fig 20)"}
	// Scan across the whole new preamble including the SFD down-chirps.
	for w := 0; w < 26; w++ {
		p := newStart + int64(w*m/2)
		src.Read(win, p)
		count := func(dechirpDown bool) int {
			if dechirpDown {
				gen.DechirpDown(dd, win)
			} else {
				gen.Dechirp(dd, win)
			}
			fft.ForwardInto(dd, dd[:m])
			for i, v := range dd {
				mag[i] = real(v)*real(v) + imag(v)*imag(v)
			}
			meanPow := mag.Energy() / float64(len(mag))
			if meanPow <= 0 {
				return 0
			}
			// Count candidates by the detector's own criterion: coherent
			// tones stand ~2^SF above the mean bin power, while the
			// Fresnel-rippled smear of a mismatched chirp stays within
			// ~13 dB of it.
			return len(dsp.FindPeaks(mag, 32*meanPow, 0))
		}
		up.X = append(up.X, float64(w))
		up.Y = append(up.Y, float64(count(false)))
		down.X = append(down.X, float64(w))
		down.Y = append(down.Y, float64(count(true)))
	}
	return Figure{
		ID:     "fig19_20",
		Title:  "Detection clutter: spectral peaks per scan window (5 ongoing tx)",
		XLabel: "half-symbol window index",
		YLabel: "candidate peaks per window",
		Series: []Series{up, down},
	}, nil
}

// SNRDistribution regenerates Fig 27: the CDF of per-node SNR for each
// deployment.
func SNRDistribution(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig27",
		Title:  "SNR distribution for each deployment",
		XLabel: "SNR dB",
		YLabel: "CDF",
	}
	grid := make([]float64, 0, 56)
	for x := -10.0; x <= 45; x++ {
		grid = append(grid, x)
	}
	for _, dep := range sim.Deployments() {
		nw, err := sim.NewNetwork(cfg.Frame, dep, cfg.Seed)
		if err != nil {
			return Figure{}, err
		}
		s := Series{Name: dep.Name}
		for _, x := range grid {
			c := 0
			for _, node := range nw.Nodes {
				if node.SNRdB <= x {
					c++
				}
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, float64(c)/float64(len(nw.Nodes)))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// DeploymentMaps regenerates the geometry of Figs 22–26: node positions
// per deployment (gateway at the origin).
func DeploymentMaps(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig22_26",
		Title:  "Deployment maps (node positions, meters; gateway at origin)",
		XLabel: "x (m)",
		YLabel: "y (m)",
	}
	for _, dep := range sim.Deployments() {
		nw, err := sim.NewNetwork(cfg.Frame, dep, cfg.Seed)
		if err != nil {
			return Figure{}, err
		}
		s := Series{Name: dep.Name}
		for _, node := range nw.Nodes {
			s.X = append(s.X, node.X)
			s.Y = append(s.Y, node.Y)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// SpectraDemo regenerates Figs 12–14: the de-chirped spectrum of one
// symbol during a six-packet collision under standard LoRa (full window),
// Strawman-CIC, and full CIC.
func SpectraDemo(cfg Config) (Figure, error) {
	fcfg := cfg.Frame
	mod, err := frame.NewModulator(fcfg)
	if err != nil {
		return Figure{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := fcfg.Chirp.SamplesPerSymbol()
	var ems []channel.Emission
	var pkts []*rx.Packet
	var targets [][]uint16
	for i := 0; i < 6; i++ {
		pay := make([]byte, cfg.PayloadLen)
		rng.Read(pay)
		syms, err := phy.Encode(pay, fcfg.PHY)
		if err != nil {
			return Figure{}, err
		}
		wave, _, err := mod.Modulate(pay)
		if err != nil {
			return Figure{}, err
		}
		start := int64(i*2*m) + int64(rng.Intn(m))
		cfo := channel.RandomCFO(rng, sim.CrystalPPM, sim.CarrierHz)
		ems = append(ems, channel.Emission{Start: start, Samples: channel.Apply(wave, channel.Impairments{
			Amplitude:  channel.AmplitudeForSNR(20 + rng.Float64()*10),
			CFOHz:      cfo,
			SampleRate: fcfg.Chirp.SampleRate(),
		})})
		pkts = append(pkts, &rx.Packet{ID: i, Start: start, CFOHz: cfo, NSymbols: len(syms)})
		targets = append(targets, syms)
	}
	src := rx.SourceFromRenderer(channel.NewRenderer(ems, fcfg.Chirp.OSR, cfg.Seed))
	pkt := pkts[0]
	others := pkts[1:]

	d, err := rx.NewDemod(fcfg)
	if err != nil {
		return Figure{}, err
	}
	straw, err := core.NewDemodulator(fcfg, core.Options{Strawman: true})
	if err != nil {
		return Figure{}, err
	}
	full, err := core.NewDemodulator(fcfg, core.Options{})
	if err != nil {
		return Figure{}, err
	}
	// Pick the pedagogical window the paper's Figs 12–14 show: standard
	// LoRa's strongest peak belongs to an interferer, while CIC's
	// intersected spectrum peaks at the true symbol. Fall back to the last
	// candidate window if no symbol exhibits the contrast.
	symIdx := 8
	var std, strawSpec, fullSpec dsp.Spectrum
	for idx := 8; idx < pkt.NSymbols-2; idx++ {
		d.LoadWindow(src, pkt.SymbolStart(fcfg, idx), pkt.CFOHz)
		stdTry := append(dsp.Spectrum(nil), d.FoldedSpectrum()...)
		stdTry.Normalize()
		strawTry := straw.IntersectedSpectrum(src, pkt, idx, others).Normalize()
		fullTry := full.IntersectedSpectrum(src, pkt, idx, others).Normalize()
		symIdx, std, strawSpec, fullSpec = idx, stdTry, strawTry, fullTry
		truth := int(targets[0][idx])
		_, stdAt := stdTry.Max()
		_, cicAt := fullTry.Max()
		if stdAt != truth && cicAt == truth {
			break
		}
	}

	fig := Figure{
		ID:     "fig12_14",
		Title:  fmt.Sprintf("Collision spectra (symbol %d, true bin %d)", symIdx, targets[0][symIdx]),
		XLabel: "LoRa bin",
		YLabel: "normalised power",
	}
	for _, sp := range []struct {
		name string
		s    dsp.Spectrum
	}{
		{"standard LoRa (Fig 12)", std},
		{"Strawman-CIC (Fig 13)", strawSpec},
		{"CIC (Fig 14)", fullSpec},
	} {
		ser := Series{Name: sp.name}
		for b, v := range sp.s {
			ser.X = append(ser.X, float64(b))
			ser.Y = append(ser.Y, v)
		}
		fig.Series = append(fig.Series, ser)
	}
	return fig, nil
}

// ICSSComparison is an extension figure implied by the paper's Figs 13–14:
// network throughput of full CIC vs Strawman-CIC (the two-sub-symbol ICSS)
// under the same traffic, quantifying what the optimal ICSS choice of §5.4
// is worth end to end.
func ICSSComparison(cfg Config, dep sim.Deployment) (Figure, error) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"CIC (optimal ICSS)", core.Options{}},
		{"Strawman-CIC", core.Options{Strawman: true}},
	}
	fig := Figure{
		ID:     "icss",
		Title:  fmt.Sprintf("Optimal ICSS vs Strawman for %s", dep.Name),
		XLabel: "offered pkts/s",
		YLabel: "decoded pkts/s",
	}
	nw, err := sim.NewNetwork(cfg.Frame, dep, cfg.Seed)
	if err != nil {
		return Figure{}, err
	}
	series := make([]Series, len(variants))
	for i, v := range variants {
		series[i].Name = v.name
	}
	for ri, rate := range cfg.Rates {
		run, err := nw.BuildRun(rate, cfg.Duration, cfg.PayloadLen, cfg.Seed+int64(ri)*101)
		if err != nil {
			return Figure{}, err
		}
		for i, v := range variants {
			recv, err := core.NewReceiver(cfg.Frame, v.opts, rx.DetectorOptions{}, cfg.Workers)
			if err != nil {
				return Figure{}, err
			}
			results, err := recv.Receive(run.Source)
			if err != nil {
				return Figure{}, err
			}
			score := sim.ScoreDecodes(run, results, cfg.Duration)
			series[i].X = append(series[i].X, rate)
			series[i].Y = append(series[i].Y, score.Throughput())
		}
	}
	fig.Series = series
	return fig, nil
}

// Summary computes the paper's headline ratios from throughput figures:
// CIC÷LoRa and CIC÷FTrack at each offered load, for one deployment. It is
// a post-processing view, so callers typically reuse a Figure produced by
// Throughput.
func Summary(throughput Figure) (Figure, error) {
	var cic, ftrack, lora *Series
	for i := range throughput.Series {
		switch throughput.Series[i].Name {
		case "CIC":
			cic = &throughput.Series[i]
		case "FTrack":
			ftrack = &throughput.Series[i]
		case "LoRa":
			lora = &throughput.Series[i]
		}
	}
	if cic == nil || ftrack == nil || lora == nil {
		return Figure{}, fmt.Errorf("eval: summary needs CIC, FTrack and LoRa series")
	}
	ratio := func(name string, den *Series) Series {
		s := Series{Name: name}
		for i := range cic.X {
			s.X = append(s.X, cic.X[i])
			if i < len(den.Y) && den.Y[i] > 0 {
				s.Y = append(s.Y, cic.Y[i]/den.Y[i])
			} else {
				s.Y = append(s.Y, 0)
			}
		}
		return s
	}
	return Figure{
		ID:     "summary_" + throughput.ID,
		Title:  "Headline ratios — " + throughput.Title,
		XLabel: throughput.XLabel,
		YLabel: "CIC ÷ baseline",
		Series: []Series{ratio("CIC/LoRa", lora), ratio("CIC/FTrack", ftrack)},
	}, nil
}
