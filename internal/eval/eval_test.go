package eval

import (
	"bytes"
	"strings"
	"testing"

	"cic/internal/sim"
)

// quickConfig shrinks the experiment for test runtime.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Rates = []float64{10, 60}
	cfg.Duration = 1.0
	cfg.PayloadLen = 16
	cfg.Workers = 0
	return cfg
}

func TestFigureCSVAndTable(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	var csv bytes.Buffer
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.Contains(out, "x,a,b") || !strings.Contains(out, "1,10,30") {
		t.Errorf("CSV output wrong:\n%s", out)
	}
	var tbl bytes.Buffer
	if err := f.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "FIGX") {
		t.Error("table missing header")
	}
	empty := Figure{ID: "e"}
	if err := empty.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
}

func TestFigureCIColumns(t *testing.T) {
	f := Figure{
		ID: "figE", Title: "ci demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}, YErr: []float64{0.5, 0.25}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	var csv bytes.Buffer
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.Contains(out, "x,a,a ci95,b") {
		t.Errorf("CSV header missing ci95 column:\n%s", out)
	}
	if !strings.Contains(out, "1,10,0.5,30") {
		t.Errorf("CSV row missing ci95 value:\n%s", out)
	}
	var tbl bytes.Buffer
	if err := f.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "10.000±0.500") {
		t.Errorf("table missing ± interval:\n%s", tbl.String())
	}
	var svg bytes.Buffer
	if err := f.WriteSVG(&svg); err != nil {
		t.Fatal(err)
	}
	// Nil-YErr figures must render byte-identically to the pre-YErr code:
	// strip the error widths and check no extra columns or marks appear.
	f.Series[0].YErr = nil
	csv.Reset()
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csv.String(), "ci95") {
		t.Error("nil YErr still emitted a ci95 column")
	}
}

func TestReceiverByName(t *testing.T) {
	cfg := quickConfig()
	for _, name := range append(ReceiverNames(), "CIC-(CFO)", "CIC-(Power)", "CIC-(Power,CFO)") {
		r, err := ReceiverByName(cfg.Frame, 1, name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("ReceiverByName(%q).Name() = %q", name, r.Name())
		}
	}
	if _, err := ReceiverByName(cfg.Frame, 1, "nonesuch", nil); err == nil {
		t.Error("unknown receiver accepted")
	}
}

func TestDetectionScanners(t *testing.T) {
	cfg := quickConfig()
	scanners, err := DetectionScanners(cfg.Frame, cfg.PayloadLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanners) != 3 {
		t.Fatalf("%d scanners", len(scanners))
	}
	nw, err := sim.NewNetwork(cfg.Frame, sim.D1, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := nw.BuildRun(20, cfg.Duration, cfg.PayloadLen, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scanners {
		pkts := sc.Scan(run.Source)
		score := sim.ScoreDetections(run, pkts, cfg.Duration)
		if score.Detected == 0 {
			t.Errorf("scanner %s detected nothing", sc.Name)
		}
	}
}

func TestDefaultReceiversAndVariants(t *testing.T) {
	cfg := quickConfig()
	rs, err := DefaultReceivers(cfg.Frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range rs {
		names[r.Name()] = true
	}
	for _, want := range []string{"CIC", "FTrack", "Choir", "LoRa"} {
		if !names[want] {
			t.Errorf("missing receiver %s", want)
		}
	}
	vs, err := CICVariants(cfg.Frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Errorf("%d variants", len(vs))
	}
	for name, v := range vs {
		if v.Name() != name {
			t.Errorf("variant %s reports name %s", name, v.Name())
		}
	}
}

func TestHeisenbergFigure(t *testing.T) {
	fig, err := Heisenberg(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig15" || len(fig.Series) != 4 {
		t.Fatalf("fig15 shape: %s %d series", fig.ID, len(fig.Series))
	}
	// The full-window spectrum must resolve all five symbols; the Ts/8
	// window must resolve fewer distinct peaks (Heisenberg).
	specFull := seriesToSpectrum(fig.Series[0])
	spec8 := seriesToSpectrum(fig.Series[3])
	full := ResolvablePeaks(specFull, 0.3)
	short := ResolvablePeaks(spec8, 0.3)
	if full < 5 {
		t.Errorf("full window resolves %d peaks, want >= 5", full)
	}
	if short >= full {
		t.Errorf("Ts/8 window resolves %d peaks, full window %d: no resolution loss?", short, full)
	}
}

func seriesToSpectrum(s Series) []float64 {
	out := make([]float64, len(s.Y))
	copy(out, s.Y)
	return out
}

func TestCancellationFigure(t *testing.T) {
	fig, err := Cancellation(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig17" || len(fig.Series) == 0 {
		t.Fatal("fig17 empty")
	}
	// Far-in-time, far-in-frequency interferers must cancel much better
	// than near ones (the Fig 17 gradient).
	farSeries := fig.Series[len(fig.Series)-1] // largest Δf
	nearSeries := fig.Series[0]                // smallest Δf
	farCanc := farSeries.Y[len(farSeries.Y)-1] // largest Δτ
	nearCanc := nearSeries.Y[0]                // smallest Δτ
	if farCanc < 10 {
		t.Errorf("cancellation at (0.5,0.5) = %.1f dB, want >= 10", farCanc)
	}
	if nearCanc > farCanc/2 {
		t.Errorf("cancellation at (0.02,0.02) = %.1f dB vs far %.1f dB: no gradient", nearCanc, farCanc)
	}
}

func TestPreambleClutterFigure(t *testing.T) {
	fig, err := PreambleClutter(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatal("want 2 series")
	}
	upMean := mean(fig.Series[0].Y)
	downMean := mean(fig.Series[1].Y)
	if downMean >= upMean {
		t.Errorf("down-chirp clutter %.2f >= up-chirp clutter %.2f", downMean, upMean)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

func TestSNRDistributionFigure(t *testing.T) {
	fig, err := SNRDistribution(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatal("want 4 deployments")
	}
	for _, s := range fig.Series {
		// CDF must be monotone from 0 to 1.
		prev := -1.0
		for _, y := range s.Y {
			if y < prev {
				t.Fatalf("%s CDF not monotone", s.Name)
			}
			prev = y
		}
		if s.Y[len(s.Y)-1] != 1 {
			t.Errorf("%s CDF does not reach 1", s.Name)
		}
	}
}

func TestDeploymentMapsFigure(t *testing.T) {
	fig, err := DeploymentMaps(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig22_26" || len(fig.Series) != 4 {
		t.Fatal("maps shape wrong")
	}
	for _, s := range fig.Series {
		if len(s.X) != 20 {
			t.Errorf("%s has %d nodes", s.Name, len(s.X))
		}
	}
}

func TestSpectraDemoFigure(t *testing.T) {
	fig, err := SpectraDemo(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatal("want 3 spectra")
	}
	// CIC's spectrum must be the most concentrated: its peak-to-total
	// ratio should beat standard LoRa's.
	stdPeak := maxOf(fig.Series[0].Y)
	cicPeak := maxOf(fig.Series[2].Y)
	if cicPeak <= stdPeak {
		t.Errorf("CIC peak share %.3f <= std %.3f (no interference removed)", cicPeak, stdPeak)
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestTemporalProximityFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := quickConfig()
	cfg.PayloadLen = 12
	fig, err := TemporalProximity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.X) != 10 {
		t.Fatalf("%d offsets", len(s.X))
	}
	// SER must be low once Δτ/Ts >= 0.2 and high at 0 (indistinguishable
	// boundaries), matching Fig 38's shape.
	if s.Y[0] < s.Y[5] {
		t.Errorf("SER at offset 0 (%.3f) below SER at 0.5 (%.3f)", s.Y[0], s.Y[5])
	}
	var tail float64
	for _, y := range s.Y[2:] {
		tail += y
	}
	tail /= float64(len(s.Y) - 2)
	if tail > 0.1 {
		t.Errorf("mean SER beyond 0.2 Ts = %.3f, want <= 0.1", tail)
	}
}

// TestThroughputComparative is the headline regression: in D1 at high load,
// CIC must beat FTrack and standard LoRa (Figs 28).
func TestThroughputComparative(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := quickConfig()
	cfg.Rates = []float64{40}
	cfg.Duration = 1.5
	fig, err := Throughput(cfg, sim.D1)
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range fig.Series {
		y[s.Name] = s.Y[0]
	}
	if y["CIC"] <= y["LoRa"] {
		t.Errorf("CIC %.1f <= LoRa %.1f at 40 pkts/s", y["CIC"], y["LoRa"])
	}
	if y["CIC"] <= y["FTrack"] {
		t.Errorf("CIC %.1f <= FTrack %.1f at 40 pkts/s", y["CIC"], y["FTrack"])
	}
	if y["CIC"] <= 0 {
		t.Error("CIC decoded nothing")
	}
}

func TestDetectionComparative(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := quickConfig()
	cfg.Rates = []float64{60}
	fig, err := Detection(cfg, sim.D1)
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range fig.Series {
		y[s.Name] = s.Y[0]
	}
	if y["CIC"] < y["LoRa"] {
		t.Errorf("CIC detection %.2f < locked LoRa %.2f", y["CIC"], y["LoRa"])
	}
}

func TestICSSComparisonFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := quickConfig()
	cfg.Rates = []float64{40}
	fig, err := ICSSComparison(cfg, sim.D1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("%d series", len(fig.Series))
	}
	full := fig.Series[0].Y[0]
	straw := fig.Series[1].Y[0]
	if straw > full {
		t.Errorf("strawman throughput %.1f > full CIC %.1f", straw, full)
	}
}

func TestSummaryRatios(t *testing.T) {
	fig := Figure{
		ID: "fig28", Title: "t", XLabel: "x",
		Series: []Series{
			{Name: "CIC", X: []float64{10, 20}, Y: []float64{10, 20}},
			{Name: "FTrack", X: []float64{10, 20}, Y: []float64{5, 5}},
			{Name: "Choir", X: []float64{10, 20}, Y: []float64{1, 1}},
			{Name: "LoRa", X: []float64{10, 20}, Y: []float64{2, 0}},
		},
	}
	sum, err := Summary(fig)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Series[0].Y[0] != 5 || sum.Series[1].Y[1] != 4 {
		t.Errorf("ratios wrong: %+v", sum.Series)
	}
	if sum.Series[0].Y[1] != 0 {
		t.Error("division by zero not guarded")
	}
	if _, err := Summary(Figure{}); err == nil {
		t.Error("summary of empty figure accepted")
	}
}

// TestAblationFigureOrdering (lightweight): removing both filters must not
// beat full CIC.
func TestAblationFigureOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := quickConfig()
	cfg.Rates = []float64{40}
	fig, err := Ablation(cfg, sim.D1)
	if err != nil {
		t.Fatal(err)
	}
	y := map[string]float64{}
	for _, s := range fig.Series {
		y[s.Name] = s.Y[0]
	}
	if y["CIC-(Power,CFO)"] > y["CIC"] {
		t.Errorf("filters hurt: without %.1f > with %.1f", y["CIC-(Power,CFO)"], y["CIC"])
	}
}

func TestWriteSVG(t *testing.T) {
	fig := Figure{
		ID: "figS", Title: "svg <test> & escape", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 3, 1}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 2, 2}},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "&lt;test&gt;", "&amp;"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Degenerate figures must not divide by zero.
	var empty bytes.Buffer
	if err := (Figure{ID: "e"}).WriteSVG(&empty); err != nil {
		t.Fatal(err)
	}
	flat := Figure{ID: "f", Series: []Series{{Name: "z", X: []float64{5}, Y: []float64{0}}}}
	if err := flat.WriteSVG(&empty); err != nil {
		t.Fatal(err)
	}
}
