// Package eval regenerates every figure of the paper's evaluation (§7):
// network throughput (Figs 28–31), packet detection (Figs 32–35), the CIC
// feature ablation (Figs 36–37), temporal-proximity SER (Fig 38), the
// cancellation-extent map (Fig 17), the Heisenberg illustration (Fig 15),
// preamble-detection clutter (Figs 19–20), deployment SNR distributions
// (Fig 27), the deployment maps (Figs 22–26), and the collision spectra
// demonstration (Figs 12–14).
package eval

import (
	"fmt"
	"io"
	"strings"
)

// Series is one line of a figure. YErr, when non-nil, carries a symmetric
// error half-width per point (the experiment harness emits 95% confidence
// intervals across seeds); nil YErr keeps every writer's output exactly as
// it was before error bars existed.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	YErr []float64
}

// Figure is a regenerated paper figure as raw data.
type Figure struct {
	ID     string // e.g. "fig28"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteCSV emits the figure as CSV: one row per X value, one column per
// series. Series are aligned by index (all experiment drivers emit series
// on a shared X grid). A series with YErr set gets a second
// "<name> ci95" column holding the interval half-width.
func (f Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
		if s.YErr != nil {
			cols = append(cols, s.Name+" ci95")
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].X {
		row := []string{fmt.Sprintf("%g", f.Series[0].X[i])}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4g", s.Y[i]))
			} else {
				row = append(row, "")
			}
			if s.YErr != nil {
				if i < len(s.YErr) {
					row = append(row, fmt.Sprintf("%.4g", s.YErr[i]))
				} else {
					row = append(row, "")
				}
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable emits a human-readable aligned table of the figure.
func (f Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	xw := len(f.XLabel) + 2
	if xw < 14 {
		xw = 14
	}
	cw := 14
	for _, s := range f.Series {
		if len(s.Name)+2 > cw {
			cw = len(s.Name) + 2
		}
	}
	header := fmt.Sprintf("%-*s", xw, f.XLabel)
	for _, s := range f.Series {
		header += fmt.Sprintf("%*s", cw, s.Name)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i := range f.Series[0].X {
		row := fmt.Sprintf("%-*g", xw, f.Series[0].X[i])
		for _, s := range f.Series {
			switch {
			case i < len(s.Y) && i < len(s.YErr):
				row += fmt.Sprintf("%*s", cw, fmt.Sprintf("%.3f±%.3f", s.Y[i], s.YErr[i]))
			case i < len(s.Y):
				row += fmt.Sprintf("%*.3f", cw, s.Y[i])
			default:
				row += fmt.Sprintf("%*s", cw, "-")
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "(y axis: %s)\n\n", f.YLabel)
	return err
}
