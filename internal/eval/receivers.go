package eval

import (
	"fmt"

	"cic/internal/baseline/choir"
	"cic/internal/baseline/ftrack"
	"cic/internal/baseline/stdlora"
	"cic/internal/core"
	"cic/internal/frame"
	"cic/internal/obs"
	"cic/internal/rx"
)

// Receiver is the common surface every evaluated gateway implements.
type Receiver interface {
	Name() string
	Receive(src rx.SampleSource) ([]rx.Decoded, error)
}

// DefaultReceivers builds the four receivers the paper compares:
// CIC, FTrack, Choir, and standard LoRa.
func DefaultReceivers(cfg frame.Config, workers int) ([]Receiver, error) {
	return DefaultReceiversObserved(cfg, workers, nil)
}

// DefaultReceiversObserved is DefaultReceivers with the CIC receiver's
// decode stages instrumented on m (nil m disables instrumentation). Only
// the CIC receiver is instrumented — it is the receiver under study; the
// baselines exist for comparison curves.
func DefaultReceiversObserved(cfg frame.Config, workers int, m *obs.DecodeMetrics) ([]Receiver, error) {
	cic, err := core.NewReceiver(cfg, core.Options{Metrics: m}, rx.DetectorOptions{Metrics: m}, workers)
	if err != nil {
		return nil, fmt.Errorf("eval: CIC receiver: %w", err)
	}
	ft, err := ftrack.New(cfg, ftrack.Options{}, rx.DetectorOptions{}, workers)
	if err != nil {
		return nil, fmt.Errorf("eval: FTrack receiver: %w", err)
	}
	ch, err := choir.New(cfg, choir.Options{}, rx.DetectorOptions{}, workers)
	if err != nil {
		return nil, fmt.Errorf("eval: Choir receiver: %w", err)
	}
	std, err := stdlora.New(cfg, rx.DetectorOptions{}, workers)
	if err != nil {
		return nil, fmt.Errorf("eval: LoRa receiver: %w", err)
	}
	return []Receiver{cic, ft, ch, std}, nil
}

// CICVariants builds the four ablation variants of Figs 36–37.
func CICVariants(cfg frame.Config, workers int) (map[string]Receiver, error) {
	variants := map[string]core.Options{
		"CIC":             {},
		"CIC-(CFO)":       {DisableCFOFilter: true},
		"CIC-(Power)":     {DisablePowerFilter: true},
		"CIC-(Power,CFO)": {DisableCFOFilter: true, DisablePowerFilter: true},
	}
	out := make(map[string]Receiver, len(variants))
	for name, opts := range variants {
		r, err := core.NewReceiver(cfg, opts, rx.DetectorOptions{}, workers)
		if err != nil {
			return nil, err
		}
		out[name] = namedReceiver{name: name, Receiver: r}
	}
	return out, nil
}

// namedReceiver overrides the display name of a wrapped receiver.
type namedReceiver struct {
	Receiver
	name string
}

func (n namedReceiver) Name() string { return n.name }
