package eval

import (
	"fmt"

	"cic/internal/baseline/choir"
	"cic/internal/baseline/ftrack"
	"cic/internal/baseline/stdlora"
	"cic/internal/core"
	"cic/internal/frame"
	"cic/internal/obs"
	"cic/internal/rx"
)

// Receiver is the common surface every evaluated gateway implements.
type Receiver interface {
	Name() string
	Receive(src rx.SampleSource) ([]rx.Decoded, error)
}

// DefaultReceivers builds the four receivers the paper compares:
// CIC, FTrack, Choir, and standard LoRa.
func DefaultReceivers(cfg frame.Config, workers int) ([]Receiver, error) {
	return DefaultReceiversObserved(cfg, workers, nil)
}

// DefaultReceiversObserved is DefaultReceivers with the CIC receiver's
// decode stages instrumented on m (nil m disables instrumentation). Only
// the CIC receiver is instrumented — it is the receiver under study; the
// baselines exist for comparison curves.
func DefaultReceiversObserved(cfg frame.Config, workers int, m *obs.DecodeMetrics) ([]Receiver, error) {
	cic, err := core.NewReceiver(cfg, core.Options{Metrics: m}, rx.DetectorOptions{Metrics: m}, workers)
	if err != nil {
		return nil, fmt.Errorf("eval: CIC receiver: %w", err)
	}
	ft, err := ftrack.New(cfg, ftrack.Options{}, rx.DetectorOptions{}, workers)
	if err != nil {
		return nil, fmt.Errorf("eval: FTrack receiver: %w", err)
	}
	ch, err := choir.New(cfg, choir.Options{}, rx.DetectorOptions{}, workers)
	if err != nil {
		return nil, fmt.Errorf("eval: Choir receiver: %w", err)
	}
	std, err := stdlora.New(cfg, rx.DetectorOptions{}, workers)
	if err != nil {
		return nil, fmt.Errorf("eval: LoRa receiver: %w", err)
	}
	return []Receiver{cic, ft, ch, std}, nil
}

// CICVariants builds the four ablation variants of Figs 36–37.
func CICVariants(cfg frame.Config, workers int) (map[string]Receiver, error) {
	variants := map[string]core.Options{
		"CIC":             {},
		"CIC-(CFO)":       {DisableCFOFilter: true},
		"CIC-(Power)":     {DisablePowerFilter: true},
		"CIC-(Power,CFO)": {DisableCFOFilter: true, DisablePowerFilter: true},
	}
	out := make(map[string]Receiver, len(variants))
	for name, opts := range variants {
		r, err := core.NewReceiver(cfg, opts, rx.DetectorOptions{}, workers)
		if err != nil {
			return nil, err
		}
		out[name] = namedReceiver{name: name, Receiver: r}
	}
	return out, nil
}

// namedReceiver overrides the display name of a wrapped receiver.
type namedReceiver struct {
	Receiver
	name string
}

func (n namedReceiver) Name() string { return n.name }

// ReceiverNames lists the receivers ReceiverByName can build, in the
// paper's comparison order.
func ReceiverNames() []string { return []string{"CIC", "FTrack", "Choir", "LoRa"} }

// ReceiverByName builds a single named receiver from the paper's
// comparison set ("CIC", "FTrack", "Choir", "LoRa") or the CIC ablation
// variants of Figs 36–37 ("CIC-(CFO)", "CIC-(Power)", "CIC-(Power,CFO)").
// The experiment harness uses this so a config can declare any subset.
func ReceiverByName(cfg frame.Config, workers int, name string, m *obs.DecodeMetrics) (Receiver, error) {
	switch name {
	case "CIC":
		return core.NewReceiver(cfg, core.Options{Metrics: m}, rx.DetectorOptions{Metrics: m}, workers)
	case "CIC-(CFO)":
		r, err := core.NewReceiver(cfg, core.Options{DisableCFOFilter: true}, rx.DetectorOptions{}, workers)
		if err != nil {
			return nil, err
		}
		return namedReceiver{Receiver: r, name: name}, nil
	case "CIC-(Power)":
		r, err := core.NewReceiver(cfg, core.Options{DisablePowerFilter: true}, rx.DetectorOptions{}, workers)
		if err != nil {
			return nil, err
		}
		return namedReceiver{Receiver: r, name: name}, nil
	case "CIC-(Power,CFO)":
		r, err := core.NewReceiver(cfg, core.Options{DisableCFOFilter: true, DisablePowerFilter: true}, rx.DetectorOptions{}, workers)
		if err != nil {
			return nil, err
		}
		return namedReceiver{Receiver: r, name: name}, nil
	case "FTrack":
		return ftrack.New(cfg, ftrack.Options{}, rx.DetectorOptions{}, workers)
	case "Choir":
		return choir.New(cfg, choir.Options{}, rx.DetectorOptions{}, workers)
	case "LoRa":
		return stdlora.New(cfg, rx.DetectorOptions{}, workers)
	default:
		return nil, fmt.Errorf("eval: unknown receiver %q (want one of CIC, FTrack, Choir, LoRa, or a CIC ablation variant)", name)
	}
}

// DetectionScanner is a named preamble-detection strategy: the unit the
// detection figures (Figs 32–35) compare. Scan returns the detected
// packets for a rendered run.
type DetectionScanner struct {
	Name string
	Scan func(src rx.SampleSource) []*rx.Packet
}

// DetectionScanners builds the three detection strategies of Figs 32–35:
// CIC's down-chirp scan, FTrack's multi-peak up-chirp scan, and standard
// LoRa's locked single-packet up-chirp receive. payloadLen fixes the
// packet lengths the LoRa capture filter needs.
func DetectionScanners(cfg frame.Config, payloadLen int) ([]DetectionScanner, error) {
	det, err := rx.NewDetector(cfg, rx.DetectorOptions{})
	if err != nil {
		return nil, fmt.Errorf("eval: detector: %w", err)
	}
	detFT, err := rx.NewDetector(cfg, rx.DetectorOptions{UpchirpTopK: 3})
	if err != nil {
		return nil, fmt.Errorf("eval: FTrack detector: %w", err)
	}
	return []DetectionScanner{
		{Name: "CIC", Scan: det.ScanDownchirp},
		{Name: "FTrack", Scan: detFT.ScanUpchirp},
		{Name: "LoRa", Scan: func(src rx.SampleSource) []*rx.Packet {
			up := clonePackets(det.ScanUpchirp(src))
			setLengths(cfg, payloadLen, up)
			return captureFilterForEval(cfg, up)
		}},
	}, nil
}
