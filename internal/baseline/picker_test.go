package baseline_test

import (
	"testing"

	"cic/internal/baseline/choir"
	"cic/internal/baseline/ftrack"
	"cic/internal/baseline/stdlora"
	"cic/internal/channel"
	"cic/internal/chirp"
	"cic/internal/frame"
	"cic/internal/rx"
)

// symbolAir builds an air holding a single aligned data symbol at window
// [0, M) (packet geometry faked via a negative start).
func symbolAir(t *testing.T, cfg frame.Config, k int, cfoHz float64) (rx.SampleSource, *rx.Packet) {
	t.Helper()
	gen, err := chirp.NewGenerator(cfg.Chirp)
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Chirp.SamplesPerSymbol()
	sym := make([]complex128, m)
	gen.Symbol(sym, k)
	wave := channel.Apply(sym, channel.Impairments{
		Amplitude: 1, CFOHz: cfoHz, SampleRate: cfg.Chirp.SampleRate(),
	})
	src := &rx.MemorySource{Samples: wave}
	pkt := &rx.Packet{
		Start:    -int64(cfg.PreambleSampleCount()),
		CFOHz:    cfoHz,
		NSymbols: 1,
		PeakAmp:  float64(m),
	}
	return src, pkt
}

func TestStdloraPickerAlignedSymbol(t *testing.T) {
	cfg := testCfg()
	p, err := stdlora.NewPicker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 5, 128, 255} {
		src, pkt := symbolAir(t, cfg, k, 1300)
		if got := p.PickSymbol(src, pkt, 0, nil); got != uint16(k) {
			t.Errorf("stdlora picked %d, want %d", got, k)
		}
	}
}

func TestChoirPickerAlignedSymbol(t *testing.T) {
	cfg := testCfg()
	p, err := choir.NewPicker(cfg, choir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{3, 77, 201} {
		src, pkt := symbolAir(t, cfg, k, -2100)
		if got := p.PickSymbol(src, pkt, 0, nil); got != uint16(k) {
			t.Errorf("choir picked %d, want %d", got, k)
		}
	}
}

// TestChoirPickerPrefersOnGridPeak: with one on-grid tone (ours) and one
// half-bin-offset stronger tone (an interferer with mismatched CFO), Choir
// must choose the on-grid one.
func TestChoirPickerPrefersOnGridPeak(t *testing.T) {
	cfg := testCfg()
	gen, _ := chirp.NewGenerator(cfg.Chirp)
	m := cfg.Chirp.SamplesPerSymbol()
	ours := make([]complex128, m)
	gen.Symbol(ours, 40)
	inter := make([]complex128, m)
	gen.Symbol(inter, 170)
	mixed := channel.Apply(inter, channel.Impairments{
		Amplitude:  1.6, // stronger
		CFOHz:      0.5 * cfg.Chirp.BinWidth(),
		SampleRate: cfg.Chirp.SampleRate(),
	})
	for i := range mixed {
		mixed[i] += ours[i]
	}
	src := &rx.MemorySource{Samples: mixed}
	pkt := &rx.Packet{Start: -int64(cfg.PreambleSampleCount()), NSymbols: 1}
	p, _ := choir.NewPicker(cfg, choir.Options{})
	if got := p.PickSymbol(src, pkt, 0, nil); got != 40 {
		t.Errorf("choir picked %d (the off-grid interferer?), want 40", got)
	}
}

func TestFTrackPickerAlignedSymbol(t *testing.T) {
	cfg := testCfg()
	p, err := ftrack.NewPicker(cfg, ftrack.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, pkt := symbolAir(t, cfg, 99, 800)
	if got := p.PickSymbol(src, pkt, 0, nil); got != 99 {
		t.Errorf("ftrack picked %d, want 99", got)
	}
}

// TestFTrackPickerPrefersFullTrack: a full-duration tone must beat a
// stronger tone that exists only in the second half of the window.
func TestFTrackPickerPrefersFullTrack(t *testing.T) {
	cfg := testCfg()
	gen, _ := chirp.NewGenerator(cfg.Chirp)
	m := cfg.Chirp.SamplesPerSymbol()
	ours := make([]complex128, m)
	gen.Symbol(ours, 60)
	inter := make([]complex128, m)
	gen.Symbol(inter, 190)
	mixed := make([]complex128, m)
	copy(mixed, ours)
	for i := m / 2; i < m; i++ {
		mixed[i] += 2 * inter[i-m/2] // half-window, double amplitude
	}
	src := &rx.MemorySource{Samples: mixed}
	pkt := &rx.Packet{Start: -int64(cfg.PreambleSampleCount()), NSymbols: 1}
	p, _ := ftrack.NewPicker(cfg, ftrack.Options{})
	if got := p.PickSymbol(src, pkt, 0, nil); got != 60 {
		t.Errorf("ftrack picked %d, want the full-span track at 60", got)
	}
}

func TestBaselineOptionDefaults(t *testing.T) {
	var fo ftrack.Options
	if _, err := ftrack.NewPicker(testCfg(), fo); err != nil {
		t.Fatal(err)
	}
	var co choir.Options
	if _, err := choir.NewPicker(testCfg(), co); err != nil {
		t.Fatal(err)
	}
}
