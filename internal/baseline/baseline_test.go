// Package baseline_test exercises the three prior-work receivers against
// the same synthetic airs used for CIC, checking both their success cases
// (clean packets) and the comparative failure behaviours the paper reports.
package baseline_test

import (
	"bytes"
	"math/rand"
	"testing"

	"cic/internal/baseline/choir"
	"cic/internal/baseline/ftrack"
	"cic/internal/baseline/stdlora"
	"cic/internal/channel"
	"cic/internal/chirp"
	"cic/internal/core"
	"cic/internal/frame"
	"cic/internal/phy"
	"cic/internal/rx"
)

func testCfg() frame.Config {
	return frame.Config{
		Chirp:    chirp.Params{SF: 8, Bandwidth: 250e3, OSR: 4},
		PHY:      phy.Config{SF: 8, CR: phy.CR45, HasCRC: true},
		SyncWord: 0x34,
	}
}

func air(t *testing.T, cfg frame.Config, offsets []int64, snrs, cfos []float64, payloads [][]byte, seed int64) rx.SampleSource {
	t.Helper()
	mod, err := frame.NewModulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ems []channel.Emission
	for i, off := range offsets {
		wave, _, err := mod.Modulate(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		ems = append(ems, channel.Emission{
			Start: 4096 + off,
			Samples: channel.Apply(wave, channel.Impairments{
				Amplitude:  channel.AmplitudeForSNR(snrs[i]),
				CFOHz:      cfos[i],
				SampleRate: cfg.Chirp.SampleRate(),
			}),
		})
	}
	return rx.SourceFromRenderer(channel.NewRenderer(ems, cfg.Chirp.OSR, seed))
}

type receiver interface {
	Name() string
	Receive(rx.SampleSource) ([]rx.Decoded, error)
}

func receivers(t *testing.T, cfg frame.Config) []receiver {
	t.Helper()
	std, err := stdlora.New(cfg, rx.DetectorOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := choir.New(cfg, choir.Options{}, rx.DetectorOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := ftrack.New(cfg, ftrack.Options{}, rx.DetectorOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []receiver{std, ch, ft}
}

func TestNames(t *testing.T) {
	for _, r := range receivers(t, testCfg()) {
		if r.Name() == "" {
			t.Error("empty receiver name")
		}
	}
}

// TestAllReceiversDecodeCleanPacket: with a single clean packet, every
// baseline must succeed.
func TestAllReceiversDecodeCleanPacket(t *testing.T) {
	cfg := testCfg()
	payload := []byte("a clean, collision-free packet")
	src := air(t, cfg, []int64{0}, []float64{25}, []float64{1800}, [][]byte{payload}, 1)
	for _, r := range receivers(t, cfg) {
		results, err := r.Receive(src)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if len(results) != 1 || !results[0].OK() || !bytes.Equal(results[0].Payload, payload) {
			t.Errorf("%s failed on a clean packet (%d results)", r.Name(), len(results))
		}
	}
}

// TestCaptureFilter: the stdlora lock keeps non-overlapping packets, drops
// weaker overlapping ones, and lets a much stronger packet capture.
func TestCaptureFilter(t *testing.T) {
	cfg := testCfg()
	mkPkt := func(start int64, amp float64) *rx.Packet {
		return &rx.Packet{Start: start, PeakAmp: amp, NSymbols: 10}
	}
	span := int64(cfg.PreambleSampleCount() + 10*cfg.Chirp.SamplesPerSymbol())

	// Non-overlapping: both kept.
	got := stdlora.CaptureFilter(cfg, []*rx.Packet{mkPkt(0, 1), mkPkt(span+10, 1)})
	if len(got) != 2 {
		t.Errorf("non-overlapping: kept %d, want 2", len(got))
	}
	// Overlapping, second weaker: dropped.
	got = stdlora.CaptureFilter(cfg, []*rx.Packet{mkPkt(0, 1), mkPkt(span/2, 1)})
	if len(got) != 1 || got[0].Start != 0 {
		t.Errorf("weak overlap: %v", got)
	}
	// Overlapping, second 12 dB stronger: captures.
	got = stdlora.CaptureFilter(cfg, []*rx.Packet{mkPkt(0, 1), mkPkt(span/2, 4)})
	if len(got) != 1 || got[0].Start != span/2 {
		t.Errorf("capture: %v", got)
	}
}

// TestCollisionComparison: on a two-packet collision, CIC must decode at
// least as many packets as every baseline, and standard LoRa must lose at
// least one packet (its single demodulator cannot decode both).
func TestCollisionComparison(t *testing.T) {
	cfg := testCfg()
	m := int64(cfg.Chirp.SamplesPerSymbol())
	p1 := []byte("colliding payload number1")
	p2 := []byte("colliding payload number2")
	build := func() rx.SampleSource {
		return air(t, cfg,
			[]int64{0, 17*m + 431},
			[]float64{25, 23},
			[]float64{2100, -3300},
			[][]byte{p1, p2}, 3)
	}
	okCount := func(results []rx.Decoded) int {
		n := 0
		for _, res := range results {
			if res.OK() && (bytes.Equal(res.Payload, p1) || bytes.Equal(res.Payload, p2)) {
				n++
			}
		}
		return n
	}

	cicRecv, err := core.NewReceiver(cfg, core.Options{}, rx.DetectorOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cicResults, err := cicRecv.Receive(build())
	if err != nil {
		t.Fatal(err)
	}
	cicOK := okCount(cicResults)
	if cicOK != 2 {
		t.Errorf("CIC decoded %d of 2", cicOK)
	}

	for _, r := range receivers(t, cfg) {
		results, err := r.Receive(build())
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		n := okCount(results)
		if n > cicOK {
			t.Errorf("%s decoded %d > CIC's %d", r.Name(), n, cicOK)
		}
		if r.Name() == "LoRa" && n > 1 {
			t.Errorf("standard LoRa decoded %d packets of an overlapping pair", n)
		}
	}
}

// TestFTrackLowSNRDegrades: FTrack's hard track threshold makes it lose
// symbols at low SNR where CIC still decodes (the D3/D4 regime).
func TestFTrackLowSNRDegrades(t *testing.T) {
	cfg := testCfg()
	m := int64(cfg.Chirp.SamplesPerSymbol())
	rng := rand.New(rand.NewSource(9))
	p1 := make([]byte, 20)
	p2 := make([]byte, 20)
	rng.Read(p1)
	rng.Read(p2)

	run := func(snr float64, seed int64) (ftOK, cicOK int) {
		build := func() rx.SampleSource {
			return air(t, cfg,
				[]int64{0, 13*m + 277},
				[]float64{snr, snr - 2},
				[]float64{1500, -2500},
				[][]byte{p1, p2}, seed)
		}
		ft, _ := ftrack.New(cfg, ftrack.Options{}, rx.DetectorOptions{}, 2)
		ftRes, err := ft.Receive(build())
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range ftRes {
			if res.OK() {
				ftOK++
			}
		}
		cic, _ := core.NewReceiver(cfg, core.Options{}, rx.DetectorOptions{}, 2)
		cicRes, err := cic.Receive(build())
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range cicRes {
			if res.OK() {
				cicOK++
			}
		}
		return
	}

	// Aggregate over several noise realisations: the comparison is
	// statistical (single instances can swing either way near threshold).
	var ftTotal, cicTotal int
	for seed := int64(1); seed <= 5; seed++ {
		ft, cic := run(0, seed)
		ftTotal += ft
		cicTotal += cic
	}
	// Allow a one-packet statistical wobble; the figure-level experiments
	// (Figs 30–31) carry the full low-SNR comparison.
	if ftTotal > cicTotal+1 {
		t.Errorf("at 0 dB SNR FTrack decoded %d > CIC %d over 5 runs", ftTotal, cicTotal)
	}
}
