// Package choir is a clean-room implementation of Choir (Eletreby et al.,
// SIGCOMM 2017), the first significant LoRa collision decoder: it detects
// packets with the conventional up-chirp method and disentangles collided
// symbols by matching each spectral peak's *fractional* frequency offset to
// the transmitter's hardware-induced CFO, which is unique per device and
// stable across a packet.
package choir

import (
	"math"
	"sort"

	"cic/internal/dsp"
	"cic/internal/frame"
	"cic/internal/rx"
)

// Options tunes the Choir demodulator.
type Options struct {
	// TopK peaks per symbol window considered for CFO matching. Default 6.
	TopK int
	// Zoom factor for fractional peak refinement (Choir interpolates the
	// FFT; we use the equivalent zoom DTFT). Default 16.
	Zoom int
}

func (o *Options) setDefaults() {
	if o.TopK == 0 {
		o.TopK = 6
	}
	if o.Zoom == 0 {
		o.Zoom = 16
	}
}

// Receiver is the Choir baseline.
type Receiver struct {
	cfg     frame.Config
	detOpts rx.DetectorOptions
	pl      *rx.Pipeline
}

// New builds the Choir receiver. workers <= 0 selects GOMAXPROCS.
func New(cfg frame.Config, opts Options, detOpts rx.DetectorOptions, workers int) (*Receiver, error) {
	opts.setDefaults()
	pl, err := rx.NewPipeline(cfg, func() (rx.SymbolPicker, error) {
		return NewPicker(cfg, opts)
	}, workers)
	if err != nil {
		return nil, err
	}
	return &Receiver{cfg: cfg, detOpts: detOpts, pl: pl}, nil
}

// Name identifies the receiver in evaluation output.
func (r *Receiver) Name() string { return "Choir" }

// Receive detects packets with the conventional up-chirp scan (the paper
// notes Choir does not describe its own detection, so standard detection is
// assumed) and decodes all of them concurrently by CFO matching.
func (r *Receiver) Receive(src rx.SampleSource) ([]rx.Decoded, error) {
	det, err := rx.NewDetector(r.cfg, r.detOpts)
	if err != nil {
		return nil, err
	}
	pkts := det.ScanUpchirp(src)
	return r.DecodeAll(src, pkts)
}

// DecodeAll decodes an existing detection set.
func (r *Receiver) DecodeAll(src rx.SampleSource, pkts []*rx.Packet) ([]rx.Decoded, error) {
	return r.pl.DecodeAll(src, pkts)
}

// Picker assigns each symbol the candidate peak whose fractional frequency
// offset best matches the packet's CFO. After the de-chirp removes the
// packet's own CFO, the wanted peak sits on (or nearest to) the integer bin
// grid; interfering symbols carry other CFOs plus the Δf of their partial
// overlap (Eqn 10) and land off-grid.
type Picker struct {
	opts Options
	d    *rx.Demod
}

// NewPicker builds the Choir symbol picker.
func NewPicker(cfg frame.Config, opts Options) (*Picker, error) {
	opts.setDefaults()
	d, err := rx.NewDemod(cfg)
	if err != nil {
		return nil, err
	}
	return &Picker{opts: opts, d: d}, nil
}

// PickSymbol implements rx.SymbolPicker.
func (p *Picker) PickSymbol(src rx.SampleSource, pkt *rx.Packet, symIdx int, others []*rx.Packet) uint16 {
	return p.PickSymbolAlternates(src, pkt, symIdx, others)[0]
}

// PickSymbolAlternates implements rx.AlternatePicker: candidate values
// ordered by fractional-CFO match quality (Choir's own criterion), giving
// the baseline the same CRC-driven chase machinery as CIC.
func (p *Picker) PickSymbolAlternates(src rx.SampleSource, pkt *rx.Packet, symIdx int, _ []*rx.Packet) []uint16 {
	cfg := p.d.Config()
	n := cfg.Chirp.ChipCount()
	m := cfg.Chirp.SamplesPerSymbol()
	osr := cfg.Chirp.OSR
	p.d.LoadWindow(src, pkt.SymbolStart(cfg, symIdx), pkt.CFOHz)
	spec := p.d.FoldedSpectrum()
	peaks := dsp.TopPeaks(spec, 0.05, p.opts.TopK)
	if len(peaks) == 0 {
		return []uint16{0}
	}
	dech := p.d.Dechirped()
	type scored struct {
		bin  int
		frac float64
	}
	var cands []scored
	for _, pk := range peaks {
		// Refine on the stronger M-grid image.
		hiImage := pk.Bin + (osr-1)*n
		lo := dsp.DFTBin(dech, m, float64(pk.Bin))
		hi := dsp.DFTBin(dech, m, float64(hiImage))
		img := pk.Bin
		if real(hi)*real(hi)+imag(hi)*imag(hi) > real(lo)*real(lo)+imag(lo)*imag(lo) {
			img = hiImage
		}
		pos, _ := dsp.RefinePeak(dech, m, img, p.opts.Zoom)
		v := int(math.Round(pos)) % n
		if v < 0 {
			v += n
		}
		cands = append(cands, scored{bin: v, frac: math.Abs(pos - math.Round(pos))})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].frac < cands[b].frac })
	out := make([]uint16, 0, len(cands))
	for _, c := range cands {
		v := uint16(c.bin)
		dup := false
		for _, prev := range out {
			if prev == v {
				dup = true
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}
