// Package stdlora implements the standard single-packet LoRa receiver used
// as the paper's baseline: conventional up-chirp preamble detection, a
// one-packet-at-a-time lock with capture behaviour, and plain
// argmax-of-the-folded-spectrum demodulation. Under collisions it decodes
// whichever transmission captures the radio and loses the rest — the
// behaviour Figs 28–31 quantify.
package stdlora

import (
	"cic/internal/dsp"
	"cic/internal/frame"
	"cic/internal/rx"
)

// CaptureMarginDB is how much stronger a later preamble must be to steal
// the lock from the packet currently being received, mimicking the capture
// effect of commercial transceivers.
const CaptureMarginDB = 6

// Receiver is the standard LoRa gateway baseline.
type Receiver struct {
	cfg     frame.Config
	detOpts rx.DetectorOptions
	pl      *rx.Pipeline
}

// New builds the baseline receiver. workers <= 0 selects GOMAXPROCS.
func New(cfg frame.Config, detOpts rx.DetectorOptions, workers int) (*Receiver, error) {
	pl, err := rx.NewPipeline(cfg, func() (rx.SymbolPicker, error) {
		return NewPicker(cfg)
	}, workers)
	if err != nil {
		return nil, err
	}
	return &Receiver{cfg: cfg, detOpts: detOpts, pl: pl}, nil
}

// Name identifies the receiver in evaluation output.
func (r *Receiver) Name() string { return "LoRa" }

// Receive detects packets with the conventional up-chirp scan, applies the
// single-receiver lock with capture, and decodes the survivors.
func (r *Receiver) Receive(src rx.SampleSource) ([]rx.Decoded, error) {
	det, err := rx.NewDetector(r.cfg, r.detOpts)
	if err != nil {
		return nil, err
	}
	pkts := det.ScanUpchirp(src)
	return r.DecodeAll(src, pkts)
}

// DecodeAll decodes the detection set, then applies the capture lock using
// the header-derived packet lengths (a real gateway knows a packet's
// airtime once its header arrives, and holds the lock that long). The
// argmax picker is interference-blind, so decoding before filtering yields
// the same per-packet symbols a locked receiver would see.
func (r *Receiver) DecodeAll(src rx.SampleSource, pkts []*rx.Packet) ([]rx.Decoded, error) {
	results, err := r.pl.DecodeAll(src, pkts)
	if err != nil {
		return nil, err
	}
	locked := CaptureFilter(r.cfg, pkts)
	keep := make(map[*rx.Packet]bool, len(locked))
	for _, p := range locked {
		keep[p] = true
	}
	out := results[:0]
	for _, res := range results {
		if keep[res.Packet] {
			out = append(out, res)
		}
	}
	return out, nil
}

// CaptureFilter models the standard gateway's single demodulator: packets
// are taken in arrival order; a packet arriving while another is being
// received is dropped unless its preamble is at least CaptureMarginDB
// stronger, in which case it steals the lock (the current packet is lost).
func CaptureFilter(cfg frame.Config, pkts []*rx.Packet) []*rx.Packet {
	margin := dsp.AmplitudeFromDB(CaptureMarginDB)
	var out []*rx.Packet
	var cur *rx.Packet
	for _, p := range pkts {
		if cur == nil || p.Start >= cur.End(cfg) {
			if cur != nil {
				out = append(out, cur)
			}
			cur = p
			continue
		}
		// p arrives during cur's reception.
		if p.PeakAmp > cur.PeakAmp*margin {
			cur = p // capture: the stronger packet steals the lock
		}
		// else: p is lost (receiver busy).
	}
	if cur != nil {
		out = append(out, cur)
	}
	return out
}

// Picker demodulates by taking the strongest folded bin — correct for a
// lone transmission, and exactly what goes wrong during collisions.
type Picker struct {
	d *rx.Demod
}

// NewPicker builds the argmax symbol picker.
func NewPicker(cfg frame.Config) (*Picker, error) {
	d, err := rx.NewDemod(cfg)
	if err != nil {
		return nil, err
	}
	return &Picker{d: d}, nil
}

// PickSymbol implements rx.SymbolPicker.
func (p *Picker) PickSymbol(src rx.SampleSource, pkt *rx.Packet, symIdx int, _ []*rx.Packet) uint16 {
	p.d.LoadWindow(src, pkt.SymbolStart(p.d.Config(), symIdx), pkt.CFOHz)
	_, at := p.d.FoldedSpectrum().Max()
	if at < 0 {
		return 0
	}
	return uint16(at)
}

// PickSymbolAlternates implements rx.AlternatePicker: the strongest folded
// peaks in descending power order, so the pipeline's CRC-driven chase pass
// treats the baseline with the same decoder-side machinery as CIC.
func (p *Picker) PickSymbolAlternates(src rx.SampleSource, pkt *rx.Packet, symIdx int, _ []*rx.Packet) []uint16 {
	p.d.LoadWindow(src, pkt.SymbolStart(p.d.Config(), symIdx), pkt.CFOHz)
	peaks := dsp.TopPeaks(p.d.FoldedSpectrum(), 0.05, 3)
	if len(peaks) == 0 {
		return []uint16{0}
	}
	out := make([]uint16, 0, len(peaks))
	for _, pk := range peaks {
		out = append(out, uint16(pk.Bin))
	}
	return out
}
