// Package ftrack is a clean-room implementation of FTrack (Xia, Zheng, Gu —
// SenSys 2019), the strongest prior collision decoder the paper compares
// against. FTrack slides a symbol-length window over the de-chirped signal
// and builds time–frequency *tracks*: the wanted symbol's frequency spans
// the entire symbol window, while an interferer's C_prev/C_next track
// terminates or begins at the interferer's symbol boundary.
//
// This implementation captures FTrack's decision structure and its two
// documented failure modes: (1) track extraction thresholds operate on
// sub-window spectra whose SNR is reduced, so low-SNR tracks vanish
// (FTrack "fails to detect packets with low SNR, especially in the
// presence of stronger transmitters"); (2) the sub-window spectra trade
// frequency resolution for time resolution, so heavily-overlapped
// collisions merge tracks and confuse the matcher.
package ftrack

import (
	"sort"

	"cic/internal/dsp"
	"cic/internal/frame"
	"cic/internal/rx"
)

// Options tunes the FTrack demodulator.
type Options struct {
	// SubWindows is the number of overlapping sub-windows per symbol used
	// to build the time profile of each track. Default 8.
	SubWindows int
	// SubSpan is the sub-window length as a fraction of the symbol.
	// Default 0.5 (half-symbol windows: FTrack's compromise between time
	// and frequency resolution).
	SubSpan float64
	// TrackThreshold: a track is "present" in a sub-window when its bin
	// power exceeds this multiple of the sub-window's noise floor.
	// Default 6 — a hard threshold, the source of FTrack's low-SNR
	// collapse.
	TrackThreshold float64
	// TopK candidate peaks per symbol. Default 6.
	TopK int
}

func (o *Options) setDefaults() {
	if o.SubWindows == 0 {
		o.SubWindows = 8
	}
	if o.SubSpan == 0 {
		o.SubSpan = 0.5
	}
	if o.TrackThreshold == 0 {
		o.TrackThreshold = 6
	}
	if o.TopK == 0 {
		o.TopK = 6
	}
}

// Receiver is the FTrack baseline.
type Receiver struct {
	cfg     frame.Config
	detOpts rx.DetectorOptions
	pl      *rx.Pipeline
}

// New builds the FTrack receiver. workers <= 0 selects GOMAXPROCS.
func New(cfg frame.Config, opts Options, detOpts rx.DetectorOptions, workers int) (*Receiver, error) {
	opts.setDefaults()
	if detOpts.UpchirpTopK == 0 {
		// FTrack extracts multiple frequency tracks per window, so its
		// preamble search tolerates a stronger concurrent peak.
		detOpts.UpchirpTopK = 3
	}
	pl, err := rx.NewPipeline(cfg, func() (rx.SymbolPicker, error) {
		return NewPicker(cfg, opts)
	}, workers)
	if err != nil {
		return nil, err
	}
	return &Receiver{cfg: cfg, detOpts: detOpts, pl: pl}, nil
}

// Name identifies the receiver in evaluation output.
func (r *Receiver) Name() string { return "FTrack" }

// Receive detects packets with the conventional up-chirp scan and decodes
// all of them concurrently by track matching.
func (r *Receiver) Receive(src rx.SampleSource) ([]rx.Decoded, error) {
	det, err := rx.NewDetector(r.cfg, r.detOpts)
	if err != nil {
		return nil, err
	}
	pkts := det.ScanUpchirp(src)
	return r.DecodeAll(src, pkts)
}

// DecodeAll decodes an existing detection set.
func (r *Receiver) DecodeAll(src rx.SampleSource, pkts []*rx.Packet) ([]rx.Decoded, error) {
	return r.pl.DecodeAll(src, pkts)
}

// Picker selects, among the full-window spectral peaks, the one whose
// track spans every sub-window of the symbol.
type Picker struct {
	opts Options
	d    *rx.Demod
	subs []dsp.Spectrum
}

// NewPicker builds the FTrack symbol picker.
func NewPicker(cfg frame.Config, opts Options) (*Picker, error) {
	opts.setDefaults()
	d, err := rx.NewDemod(cfg)
	if err != nil {
		return nil, err
	}
	subs := make([]dsp.Spectrum, opts.SubWindows)
	for i := range subs {
		subs[i] = make(dsp.Spectrum, cfg.Chirp.ChipCount())
	}
	return &Picker{opts: opts, d: d, subs: subs}, nil
}

// PickSymbol implements rx.SymbolPicker.
func (p *Picker) PickSymbol(src rx.SampleSource, pkt *rx.Packet, symIdx int, others []*rx.Packet) uint16 {
	return p.PickSymbolAlternates(src, pkt, symIdx, others)[0]
}

// PickSymbolAlternates implements rx.AlternatePicker: candidate values
// ordered by track span then power (FTrack's own criterion), giving the
// baseline the same CRC-driven chase machinery as CIC.
func (p *Picker) PickSymbolAlternates(src rx.SampleSource, pkt *rx.Packet, symIdx int, _ []*rx.Packet) []uint16 {
	cfg := p.d.Config()
	m := cfg.Chirp.SamplesPerSymbol()
	p.d.LoadWindow(src, pkt.SymbolStart(cfg, symIdx), pkt.CFOHz)
	full := p.d.FoldedSpectrum()
	peaks := dsp.TopPeaks(full, 0.05, p.opts.TopK)
	if len(peaks) == 0 {
		return []uint16{0}
	}
	if len(peaks) == 1 {
		return []uint16{uint16(peaks[0].Bin)}
	}

	// Build the track presence profile from overlapping sub-windows.
	span := int(p.opts.SubSpan * float64(m))
	if span < 1 {
		span = 1
	}
	step := (m - span) / (p.opts.SubWindows - 1)
	if step < 1 {
		step = 1
	}
	floors := make([]float64, p.opts.SubWindows)
	for i := 0; i < p.opts.SubWindows; i++ {
		from := i * step
		p.subs[i] = p.d.SubSymbolSpectrum(p.subs[i], from, from+span)
		floors[i] = dsp.NoiseFloor(p.subs[i])
	}

	// The wanted symbol's track must span every sub-window; when no track
	// does (low SNR or merged tracks), FTrack is left matching whatever
	// track fragments its thresholds produced, so the candidate with the
	// longest observed span wins — at sub-noise SNR the spans are
	// noise-driven and the choice degrades accordingly, which is exactly
	// the low-SNR collapse the CIC paper reports for FTrack.
	type scored struct {
		bin, span int
		pow       float64
	}
	cands := make([]scored, 0, len(peaks))
	for _, pk := range peaks {
		span := 0
		for i := range p.subs {
			if floors[i] > 0 && p.subs[i][pk.Bin] >= p.opts.TrackThreshold*floors[i] {
				span++
			}
		}
		cands = append(cands, scored{bin: pk.Bin, span: span, pow: pk.Power})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].span != cands[b].span {
			return cands[a].span > cands[b].span
		}
		return cands[a].pow > cands[b].pow
	})
	out := make([]uint16, 0, len(cands))
	for _, c := range cands {
		out = append(out, uint16(c.bin))
	}
	return out
}
