package rx

import (
	"bytes"
	"sync/atomic"
	"testing"

	"cic/internal/chirp"
	"cic/internal/frame"
	"cic/internal/phy"
)

// oraclePicker returns pre-arranged symbols regardless of the samples — it
// exercises the pipeline plumbing in isolation from DSP.
type oraclePicker struct {
	syms  map[int][]uint16 // packet ID -> symbol stream
	calls *atomic.Int64
}

func (o oraclePicker) PickSymbol(_ SampleSource, pkt *Packet, symIdx int, _ []*Packet) uint16 {
	o.calls.Add(1)
	s := o.syms[pkt.ID]
	if symIdx < len(s) {
		return s[symIdx]
	}
	return 0
}

func pipelineCfg() frame.Config {
	return frame.Config{
		Chirp:    chirp.Params{SF: 8, Bandwidth: 250e3, OSR: 2},
		PHY:      phy.Config{SF: 8, CR: phy.CR45, HasCRC: true},
		SyncWord: 0x34,
	}
}

func TestPipelineDecodesViaPicker(t *testing.T) {
	cfg := pipelineCfg()
	payloadA := []byte("pipeline packet A")
	payloadB := []byte("pipeline packet B, longer")
	symsA, err := phy.Encode(payloadA, cfg.PHY)
	if err != nil {
		t.Fatal(err)
	}
	symsB, err := phy.Encode(payloadB, cfg.PHY)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	picker := oraclePicker{syms: map[int][]uint16{1: symsA, 2: symsB}, calls: &calls}
	pl, err := NewPipeline(cfg, func() (SymbolPicker, error) { return picker, nil }, 2)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []*Packet{
		{ID: 1, Start: 0},
		{ID: 2, Start: 100000},
	}
	src := &MemorySource{Samples: make([]complex128, 1)}
	results, err := pl.DecodeAll(src, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if !results[0].OK() || !bytes.Equal(results[0].Payload, payloadA) {
		t.Errorf("packet A: %+v", results[0])
	}
	if !results[1].OK() || !bytes.Equal(results[1].Payload, payloadB) {
		t.Errorf("packet B: %+v", results[1])
	}
	// NSymbols must have been tightened from the header.
	if pkts[0].NSymbols != len(symsA) || pkts[1].NSymbols != len(symsB) {
		t.Errorf("NSymbols not set from header: %d, %d", pkts[0].NSymbols, pkts[1].NSymbols)
	}
	// The pipeline must not demodulate beyond the header-declared length.
	want := int64(len(symsA) + len(symsB))
	if calls.Load() != want {
		t.Errorf("picker called %d times, want %d", calls.Load(), want)
	}
}

func TestPipelineHeaderFailure(t *testing.T) {
	cfg := pipelineCfg()
	var calls atomic.Int64
	// Garbage symbols: header checksum fails.
	garbage := make([]uint16, phy.MaxSymbolCount(cfg.PHY))
	for i := range garbage {
		garbage[i] = uint16(i*37+11) % 256
	}
	picker := oraclePicker{syms: map[int][]uint16{7: garbage}, calls: &calls}
	pl, _ := NewPipeline(cfg, func() (SymbolPicker, error) { return picker, nil }, 1)
	src := &MemorySource{Samples: make([]complex128, 1)}
	results, err := pl.DecodeAll(src, []*Packet{{ID: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].OK() {
		t.Fatalf("garbage decoded: %+v", results)
	}
	// Only the header block may have been demodulated.
	if calls.Load() != int64(phy.HeaderSymbolCount) {
		t.Errorf("picker called %d times after header failure, want %d", calls.Load(), phy.HeaderSymbolCount)
	}
}

func TestPipelineEmptyInput(t *testing.T) {
	cfg := pipelineCfg()
	pl, _ := NewPipeline(cfg, func() (SymbolPicker, error) {
		return oraclePicker{syms: nil, calls: new(atomic.Int64)}, nil
	}, 4)
	src := &MemorySource{}
	results, err := pl.DecodeAll(src, nil)
	if err != nil || len(results) != 0 {
		t.Errorf("empty input: %v, %d results", err, len(results))
	}
}

func TestPipelineSortsByStart(t *testing.T) {
	cfg := pipelineCfg()
	payload := []byte("x")
	syms, _ := phy.Encode(payload, cfg.PHY)
	var calls atomic.Int64
	picker := oraclePicker{syms: map[int][]uint16{1: syms, 2: syms, 3: syms}, calls: &calls}
	pl, _ := NewPipeline(cfg, func() (SymbolPicker, error) { return picker, nil }, 3)
	pkts := []*Packet{
		{ID: 1, Start: 50000},
		{ID: 2, Start: 10},
		{ID: 3, Start: 999999},
	}
	src := &MemorySource{}
	results, err := pl.DecodeAll(src, pkts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Packet.Start < results[i-1].Packet.Start {
			t.Fatal("results not sorted by start")
		}
	}
}

func TestHeaderFromSymbols(t *testing.T) {
	cfg := pipelineCfg()
	payload := []byte("header probe payload")
	syms, _ := phy.Encode(payload, cfg.PHY)
	hdr, ok := HeaderFromSymbols(syms[:phy.HeaderSymbolCount], cfg.PHY)
	if !ok {
		t.Fatal("header not recovered")
	}
	if int(hdr.Length) != len(payload) || !hdr.HasCRC {
		t.Errorf("header: %+v", hdr)
	}
	if _, ok := HeaderFromSymbols(make([]uint16, phy.HeaderSymbolCount), cfg.PHY); ok {
		t.Error("all-zero block produced a valid header")
	}
}

// alternatesOracle wraps oraclePicker with ranked alternates: the first
// choice is corrupted for chosen symbols, with the truth as runner-up.
type alternatesOracle struct {
	oraclePicker
	corrupt map[int]bool // payload-symbol indices to corrupt
}

func (o alternatesOracle) PickSymbolAlternates(src SampleSource, pkt *Packet, symIdx int, others []*Packet) []uint16 {
	truth := o.oraclePicker.PickSymbol(src, pkt, symIdx, others)
	if symIdx >= phy.HeaderSymbolCount && o.corrupt[symIdx-phy.HeaderSymbolCount] {
		return []uint16{(truth + 7) % 256, truth}
	}
	return []uint16{truth}
}

// TestChaseDecodeRecoversMarginalSymbols: one and two corrupted-first-choice
// symbols are repaired by the CRC-driven chase pass; three are not (the
// pair search only covers two substitutions).
func TestChaseDecodeRecoversMarginalSymbols(t *testing.T) {
	cfg := pipelineCfg()
	payload := []byte("chase decoding target")
	syms, err := phy.Encode(payload, cfg.PHY)
	if err != nil {
		t.Fatal(err)
	}
	for _, nCorrupt := range []int{1, 2, 3} {
		corrupt := map[int]bool{}
		for i := 0; i < nCorrupt; i++ {
			corrupt[3+2*i] = true
		}
		var calls atomic.Int64
		picker := alternatesOracle{
			oraclePicker: oraclePicker{syms: map[int][]uint16{1: syms}, calls: &calls},
			corrupt:      corrupt,
		}
		pl, err := NewPipeline(cfg, func() (SymbolPicker, error) { return picker, nil }, 1)
		if err != nil {
			t.Fatal(err)
		}
		src := &MemorySource{Samples: make([]complex128, 1)}
		results, err := pl.DecodeAll(src, []*Packet{{ID: 1}})
		if err != nil {
			t.Fatal(err)
		}
		got := results[0].OK() && bytes.Equal(results[0].Payload, payload)
		want := nCorrupt <= 2
		if got != want {
			t.Errorf("nCorrupt=%d: recovered=%v, want %v", nCorrupt, got, want)
		}
	}
}

func TestChaseDecodeDirect(t *testing.T) {
	cfg := pipelineCfg()
	payload := []byte("direct chase")
	syms, _ := phy.Encode(payload, cfg.PHY)
	bad := append([]uint16(nil), syms...)
	victim := phy.HeaderSymbolCount + 2
	truth := bad[victim]
	bad[victim] = (truth + 9) % 256
	alternates := make([][]uint16, len(syms)-phy.HeaderSymbolCount)
	for i := range alternates {
		alternates[i] = []uint16{bad[phy.HeaderSymbolCount+i]}
	}
	// Without the truth in the alternates: unrecoverable.
	if _, ok := ChaseDecode(bad, alternates, cfg.PHY); ok {
		t.Error("chase succeeded without the true candidate")
	}
	// With it: recovered.
	alternates[2] = []uint16{bad[victim], truth}
	dec, ok := ChaseDecode(bad, alternates, cfg.PHY)
	if !ok || !dec.CRCOK || !bytes.Equal(dec.Payload, payload) {
		t.Error("chase failed to repair a single marginal symbol")
	}
}
