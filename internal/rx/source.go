// Package rx provides the gateway-side receiver substrate shared by every
// decoder in this repository: random-access sample sources, preamble
// detection by the conventional up-chirp method and by CIC's down-chirp
// method (paper §5.8), fine time/CFO synchronisation, per-packet tracking,
// and the common demodulation harness that turns tracked packets into PHY
// symbol streams via a pluggable symbol picker.
package rx

// SampleSource exposes random access to a window of complex baseband
// samples. Implementations must tolerate windows that extend beyond the
// available span by zero-filling, and must be safe for concurrent readers.
type SampleSource interface {
	// Read fills dst with samples for the absolute window
	// [start, start+len(dst)).
	Read(dst []complex128, start int64)
	// Span returns the half-open range of sample indices that carry signal.
	Span() (start, end int64)
}

// MemorySource serves samples from an in-memory buffer whose first element
// sits at absolute index Base.
type MemorySource struct {
	Base    int64
	Samples []complex128
}

// Read implements SampleSource, zero-filling outside the buffer. The
// in-range portion is a single bulk copy — this is the decode hot path
// (every demodulated window passes through here).
func (m *MemorySource) Read(dst []complex128, start int64) {
	n := int64(len(m.Samples))
	lo := start - m.Base
	hi := lo + int64(len(dst))
	from, to := lo, hi
	if from < 0 {
		from = 0
	}
	if to > n {
		to = n
	}
	if to <= from {
		clear(dst)
		return
	}
	clear(dst[:from-lo])
	clear(dst[to-lo:])
	copy(dst[from-lo:to-lo], m.Samples[from:to])
}

// Span implements SampleSource.
func (m *MemorySource) Span() (int64, int64) {
	return m.Base, m.Base + int64(len(m.Samples))
}

// rendererSource adapts anything with Render+TotalSpan (channel.Renderer)
// to SampleSource.
type rendererSource struct {
	r interface {
		Render(dst []complex128, start int64)
		TotalSpan() (int64, int64)
	}
}

// SourceFromRenderer wraps a channel.Renderer-style object as a
// SampleSource.
func SourceFromRenderer(r interface {
	Render(dst []complex128, start int64)
	TotalSpan() (int64, int64)
}) SampleSource {
	return rendererSource{r: r}
}

func (s rendererSource) Read(dst []complex128, start int64) { s.r.Render(dst, start) }
func (s rendererSource) Span() (int64, int64)               { return s.r.TotalSpan() }
