package rx

import (
	"math"
	"testing"

	"cic/internal/channel"
	"cic/internal/frame"
)

// TestSynchronizeAccuracyGrid sweeps sample offsets × CFOs and requires
// sample-exact timing (±2) and quarter-bin CFO accuracy everywhere.
func TestSynchronizeAccuracyGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	cfg := testCfg()
	m := cfg.Chirp.SamplesPerSymbol()
	det, err := NewDetector(cfg, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bw := cfg.Chirp.BinWidth()
	for _, startOff := range []int64{0, 1, 3, 513, 1021} {
		for _, cfo := range []float64{0, 0.4 * bw, -2.7 * bw, 8 * bw, -12.3 * bw} {
			start := int64(6000) + startOff
			src, _ := buildAir(t, cfg, []byte("grid"), start, 25, cfo, true, start+int64(cfo))
			pkt, ok := det.Synchronize(src, start+int64(10*m))
			if !ok {
				t.Errorf("off=%d cfo=%.0f: sync failed", startOff, cfo)
				continue
			}
			if d := abs64(pkt.Start - start); d > 2 {
				t.Errorf("off=%d cfo=%.0f: start error %d", startOff, cfo, d)
			}
			// The effective CFO may absorb up to one sample of timing
			// (±binWidth/OSR); allow that plus a quarter bin.
			tol := bw/float64(cfg.Chirp.OSR) + bw/4
			if d := math.Abs(pkt.CFOHz - cfo); d > tol {
				t.Errorf("off=%d cfo=%.0f: cfo error %.1f Hz (tol %.1f)", startOff, cfo, d, tol)
			}
		}
	}
}

// TestSynchronizeRejectsExcessCFO: hypotheses beyond MaxCFOBins are
// interferer tones and must not produce a packet.
func TestSynchronizeRejectsExcessCFO(t *testing.T) {
	cfg := testCfg()
	m := cfg.Chirp.SamplesPerSymbol()
	det, err := NewDetector(cfg, DetectorOptions{MaxCFOBins: 4})
	if err != nil {
		t.Fatal(err)
	}
	// CFO of 8 bins exceeds the 4-bin budget.
	start := int64(6000)
	src, _ := buildAir(t, cfg, []byte("toofar"), start, 25, 8*cfg.Chirp.BinWidth(), false, 1)
	if pkt, ok := det.Synchronize(src, start+int64(10*m)); ok {
		t.Errorf("accepted packet with out-of-budget CFO: %v", pkt)
	}
}

// TestDetectorOptionDefaults documents the default knob values.
func TestDetectorOptionDefaults(t *testing.T) {
	var o DetectorOptions
	o.setDefaults()
	if o.DownchirpThreshold != 40 || o.UpchirpThreshold != 8 ||
		o.UpchirpRun != 6 || o.UpchirpTopK != 1 ||
		o.VerifyMinScore != 8 || o.VerifyPeakFactor != 12 || o.MaxCFOBins != 24 {
		t.Errorf("defaults changed: %+v", o)
	}
}

// TestMaxPacketsBound: the scan stops tracking after MaxPackets.
func TestMaxPacketsBound(t *testing.T) {
	cfg := testCfg()
	mod, err := frame.NewModulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ems []channel.Emission
	gap := int64(cfg.PacketSampleCount(8) + 2*cfg.Chirp.SamplesPerSymbol())
	for i := 0; i < 4; i++ {
		wave, _, err := mod.Modulate([]byte("maxpkts"))
		if err != nil {
			t.Fatal(err)
		}
		ems = append(ems, channel.Emission{
			Start: 4096 + int64(i)*gap,
			Samples: channel.Apply(wave, channel.Impairments{
				Amplitude: channel.AmplitudeForSNR(25), SampleRate: cfg.Chirp.SampleRate(),
			}),
		})
	}
	src := SourceFromRenderer(channel.NewRenderer(ems, cfg.Chirp.OSR, 4))
	det, err := NewDetector(cfg, DetectorOptions{MaxPackets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pkts := det.ScanDownchirp(src); len(pkts) != 2 {
		t.Errorf("MaxPackets=2 returned %d packets", len(pkts))
	}
}

// TestScanRangeEquivalence: scanning the span in two halves finds the same
// packets as one pass (the streaming gateway depends on this).
func TestScanRangeEquivalence(t *testing.T) {
	cfg := testCfg()
	src, start := buildAir(t, cfg, []byte("range equivalence"), 30000, 25, -1900, true, 11)
	det, err := NewDetector(cfg, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	whole := det.ScanDownchirp(src)
	s, e := src.Span()
	mid := (s + e) / 2
	firstHalf := det.ScanDownchirpRange(src, s, mid)
	secondHalf := det.ScanDownchirpRange(src, mid, e)
	combined := append(firstHalf, secondHalf...)
	if len(whole) != 1 {
		t.Fatalf("whole scan found %d packets", len(whole))
	}
	found := false
	for _, p := range combined {
		if abs64(p.Start-start) <= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("split scan missed the packet (found %d candidates)", len(combined))
	}
}

// TestVerifyScoreReflectsQuality: a clean high-SNR packet scores the full
// 10; degrading SNR may lower the score but never below the acceptance
// threshold for a detectable packet.
func TestVerifyScoreReflectsQuality(t *testing.T) {
	cfg := testCfg()
	m := cfg.Chirp.SamplesPerSymbol()
	det, err := NewDetector(cfg, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src, start := buildAir(t, cfg, []byte("clean"), 9000, 30, 500, true, 12)
	pkt, ok := det.Synchronize(src, start+int64(10*m))
	if !ok || pkt.Score != 10 {
		t.Errorf("clean packet score %d, want 10", pkt.Score)
	}
}

// TestDownchirpBeatsUpchirpUnderCollision: with several overlapping
// packets, the down-chirp scan must find at least as many as the
// conventional (TopK=1) up-chirp scan — the paper's §5.8 claim behind
// Figs 32–35.
func TestDownchirpBeatsUpchirpUnderCollision(t *testing.T) {
	cfg := testCfg()
	mod, err := frame.NewModulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := int64(cfg.Chirp.SamplesPerSymbol())
	var ems []channel.Emission
	starts := []int64{4096, 4096 + 9*m + 301, 4096 + 19*m + 77, 4096 + 30*m + 512}
	for i, start := range starts {
		wave, _, err := mod.Modulate([]byte("collision detect test!"))
		if err != nil {
			t.Fatal(err)
		}
		ems = append(ems, channel.Emission{Start: start, Samples: channel.Apply(wave, channel.Impairments{
			Amplitude:  channel.AmplitudeForSNR(20 + 4*float64(i)),
			CFOHz:      float64(i*2000 - 3000),
			SampleRate: cfg.Chirp.SampleRate(),
		})})
	}
	src := SourceFromRenderer(channel.NewRenderer(ems, cfg.Chirp.OSR, 21))
	det, err := NewDetector(cfg, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	match := func(pkts []*Packet) int {
		n := 0
		for _, want := range starts {
			for _, p := range pkts {
				if abs64(p.Start-want) <= 2 {
					n++
					break
				}
			}
		}
		return n
	}
	down := match(det.ScanDownchirp(src))
	up := match(det.ScanUpchirp(src))
	if down < up {
		t.Errorf("down-chirp found %d, up-chirp %d", down, up)
	}
	if down < 3 {
		t.Errorf("down-chirp scan found only %d of 4 overlapping packets", down)
	}
}
