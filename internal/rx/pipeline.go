package rx

import (
	"errors"
	"runtime"
	"sort"
	"sync"

	"cic/internal/frame"
	"cic/internal/obs"
	"cic/internal/phy"
)

// SymbolPicker chooses a symbol value for one window of one tracked packet.
// Implementations embody a receiver's demodulation strategy: plain argmax
// (standard LoRa), CFO matching (Choir), time-frequency tracks (FTrack) or
// concurrent interference cancellation (CIC). A picker is used by a single
// goroutine at a time.
type SymbolPicker interface {
	PickSymbol(src SampleSource, pkt *Packet, symIdx int, others []*Packet) uint16
}

// AlternatePicker is an optional extension of SymbolPicker: it returns the
// plausible symbol values for a window ranked best-first. When a picker
// implements it, the pipeline runs a CRC-driven chase pass — on a failed
// payload CRC it retries the runner-up value on the marginal symbols, a
// standard receiver trick that converts packets with one or two borderline
// symbols from losses into successes.
//
// The returned slice is the picker's scratch, valid only until the next
// PickSymbolAlternates call on the same picker: callers that keep
// alternates across symbols (the chase pass does) must copy the values
// out. The contract keeps the per-symbol hot path allocation-free.
type AlternatePicker interface {
	SymbolPicker
	PickSymbolAlternates(src SampleSource, pkt *Packet, symIdx int, others []*Packet) []uint16
}

// PickerFactory creates one SymbolPicker per pipeline worker.
type PickerFactory func() (SymbolPicker, error)

// Decoded is one packet's end-to-end decode outcome.
type Decoded struct {
	Packet       *Packet
	Header       phy.Header
	HeaderOK     bool
	Payload      []byte
	CRCOK        bool
	FECCorrected int
	Symbols      []uint16 // raw demodulated symbol values
}

// OK reports whether the packet decoded fully (header and payload CRC).
func (d Decoded) OK() bool { return d.HeaderOK && d.CRCOK }

// Pipeline turns tracked packets into decoded payloads: it first decodes
// every packet's header block (fixing the packet lengths the boundary
// bookkeeping depends on), then decodes payloads, fanning packets out over
// a worker pool with one SymbolPicker per worker.
type Pipeline struct {
	cfg     frame.Config
	factory PickerFactory
	workers int

	// Metrics receives the pipeline's stage counters and per-packet
	// decode-latency histogram; Tracer receives structured per-packet
	// events. Both may be set between NewPipeline and the first DecodeAll;
	// nil disables them.
	Metrics *obs.DecodeMetrics
	Tracer  obs.Tracer
}

// GateTallier is implemented by pickers (the CIC demodulator) that
// accumulate per-packet gate verdicts; the pipeline drains the tally after
// each packet to attribute gate activity in trace events.
type GateTallier interface {
	TakeGateTally() obs.GateCounts
}

// NewPipeline builds a Pipeline. workers <= 0 selects GOMAXPROCS.
func NewPipeline(cfg frame.Config, factory PickerFactory, workers int) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pipeline{cfg: cfg, factory: factory, workers: workers}, nil
}

// DecodeAll decodes every tracked packet, sorted by start time.
func (pl *Pipeline) DecodeAll(src SampleSource, pkts []*Packet) ([]Decoded, error) {
	m := pl.Metrics
	if m == nil {
		m = obs.Nop()
	}
	maxSyms := phy.MaxSymbolCount(pl.cfg.PHY)
	for _, p := range pkts {
		if p.NSymbols == 0 {
			p.NSymbols = maxSyms
		}
	}

	// Phase 1 — headers.
	type headerOut struct {
		syms []uint16
		hdr  phy.Header
		ok   bool
	}
	headers := make([]headerOut, len(pkts))
	err := pl.parallel(len(pkts), func(picker SymbolPicker, i int) {
		pkt := pkts[i]
		syms := make([]uint16, phy.HeaderSymbolCount)
		for s := range syms {
			syms[s] = picker.PickSymbol(src, pkt, s, othersOf(pkts, i))
		}
		hdr, ok := HeaderFromSymbols(syms, pl.cfg.PHY)
		headers[i] = headerOut{syms: syms, hdr: hdr, ok: ok}
		if ok {
			m.HeadersDecoded.Inc()
		} else {
			m.HeaderFailures.Inc()
		}
	})
	if err != nil {
		return nil, err
	}
	for i, h := range headers {
		if h.ok {
			pcfg := pl.cfg.PHY
			pcfg.CR = h.hdr.CR
			pcfg.HasCRC = h.hdr.HasCRC
			pkts[i].NSymbols = phy.SymbolCount(pcfg, int(h.hdr.Length))
		}
		if pl.Tracer != nil {
			pl.Tracer(obs.Event{
				Kind:     obs.EventHeader,
				PacketID: pkts[i].ID,
				Start:    pkts[i].Start,
				SNRdB:    pkts[i].SNRdB,
				CFOHz:    pkts[i].CFOHz,
				HeaderOK: h.ok,
				NSymbols: pkts[i].NSymbols,
			})
		}
	}

	// Phase 2 — payloads (with a CRC-driven chase pass when the picker
	// offers ranked alternates).
	results := make([]Decoded, len(pkts))
	err = pl.parallel(len(pkts), func(picker SymbolPicker, i int) {
		pkt := pkts[i]
		res := Decoded{Packet: pkt, Header: headers[i].hdr, HeaderOK: headers[i].ok}
		syms := headers[i].syms
		if gt, ok := picker.(GateTallier); ok {
			gt.TakeGateTally() // drop gate verdicts left over from the header phase
		}
		t0 := m.DemodTime.Start()
		if res.HeaderOK {
			alt, hasAlt := picker.(AlternatePicker)
			others := othersOf(pkts, i)
			var alternates [][]uint16
			for s := phy.HeaderSymbolCount; s < pkt.NSymbols; s++ {
				if hasAlt {
					ranked := alt.PickSymbolAlternates(src, pkt, s, others)
					syms = append(syms, ranked[0])
					// ranked is picker scratch — copy before the next call.
					alternates = append(alternates, append([]uint16(nil), ranked...))
				} else {
					syms = append(syms, picker.PickSymbol(src, pkt, s, others))
				}
			}
			dec, derr := phy.Decode(syms, pl.cfg.PHY)
			if derr == nil && !dec.CRCOK && hasAlt {
				if fixed, ok := ChaseDecode(syms, alternates, pl.cfg.PHY); ok {
					dec, derr = fixed, nil
					m.ChaseRecovered.Inc()
				}
			}
			if derr == nil {
				res.Payload = dec.Payload
				res.CRCOK = dec.CRCOK
				res.FECCorrected = dec.FECCorrected
			} else {
				res.HeaderOK = false
			}
			if res.CRCOK {
				m.CRCPass.Inc()
			} else {
				m.CRCFail.Inc()
			}
		}
		res.Symbols = syms
		results[i] = res
		m.DemodTime.Since(t0)
		// Batch mode has no wall-clock detection instant, so the
		// per-packet decode latency is the demodulation span itself.
		m.DecodeLatency.Since(t0)
		m.PacketsEmitted.Inc()
		if pl.Tracer != nil {
			ev := obs.Event{
				Kind:         obs.EventEmit,
				PacketID:     pkt.ID,
				Start:        pkt.Start,
				SNRdB:        pkt.SNRdB,
				CFOHz:        pkt.CFOHz,
				HeaderOK:     res.HeaderOK,
				NSymbols:     pkt.NSymbols,
				CRCOK:        res.CRCOK,
				PayloadLen:   len(res.Payload),
				FECCorrected: res.FECCorrected,
			}
			if gt, ok := picker.(GateTallier); ok {
				ev.Gates = gt.TakeGateTally()
			}
			pl.Tracer(ev)
		}
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(results, func(a, b int) bool { return results[a].Packet.Start < results[b].Packet.Start })
	return results, nil
}

// parallel runs fn(picker, i) for i in [0, n) over the worker pool.
func (pl *Pipeline) parallel(n int, fn func(SymbolPicker, int)) error {
	if n == 0 {
		return nil
	}
	workers := pl.workers
	if workers > n {
		workers = n
	}
	pickers := make([]SymbolPicker, workers)
	for w := range pickers {
		p, err := pl.factory()
		if err != nil {
			return err
		}
		pickers[w] = p
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(p SymbolPicker) {
			defer wg.Done()
			for i := range jobs {
				fn(p, i)
			}
		}(pickers[w])
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return nil
}

// othersOf returns all packets except index i.
func othersOf(pkts []*Packet, i int) []*Packet {
	out := make([]*Packet, 0, len(pkts)-1)
	for j, p := range pkts {
		if j != i {
			out = append(out, p)
		}
	}
	return out
}

// ChaseDecode retries a failed payload CRC by substituting runner-up
// candidates on the ambiguous symbols: first every single substitution,
// then pairs over the first few ambiguous symbols. Symbol index s in
// alternates corresponds to syms[HeaderSymbolCount+s]. It returns the
// first substitution whose payload CRC verifies.
func ChaseDecode(syms []uint16, alternates [][]uint16, cfg phy.Config) (*phy.DecodeResult, bool) {
	var ambiguous []int // payload-symbol indices with a second candidate
	for s, ranked := range alternates {
		if len(ranked) > 1 {
			ambiguous = append(ambiguous, s)
		}
	}
	const maxSingles = 24
	if len(ambiguous) > maxSingles {
		ambiguous = ambiguous[:maxSingles]
	}
	try := func(trial []uint16) (*phy.DecodeResult, bool) {
		dec, err := phy.Decode(trial, cfg)
		if err == nil && dec.CRCOK {
			return dec, true
		}
		return nil, false
	}
	trial := make([]uint16, len(syms))
	// Single substitutions.
	for _, s := range ambiguous {
		copy(trial, syms)
		trial[phy.HeaderSymbolCount+s] = alternates[s][1]
		if dec, ok := try(trial); ok {
			return dec, true
		}
	}
	// Pair substitutions over the first few ambiguous symbols.
	const maxPairBase = 10
	limit := len(ambiguous)
	if limit > maxPairBase {
		limit = maxPairBase
	}
	for a := 0; a < limit; a++ {
		for b := a + 1; b < limit; b++ {
			copy(trial, syms)
			trial[phy.HeaderSymbolCount+ambiguous[a]] = alternates[ambiguous[a]][1]
			trial[phy.HeaderSymbolCount+ambiguous[b]] = alternates[ambiguous[b]][1]
			if dec, ok := try(trial); ok {
				return dec, true
			}
		}
	}
	return nil, false
}

// HeaderFromSymbols decodes the explicit header from the first block of
// symbols; ok is false when the header checksum fails.
func HeaderFromSymbols(syms []uint16, cfg phy.Config) (phy.Header, bool) {
	res, err := phy.Decode(syms, cfg)
	if err != nil && !errors.Is(err, phy.ErrTooFewSymbols) {
		return phy.Header{}, false
	}
	if res == nil {
		return phy.Header{}, false
	}
	return res.Header, true
}
