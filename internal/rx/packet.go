package rx

import (
	"fmt"
	"math"

	"cic/internal/chirp"
	"cic/internal/dsp"
	"cic/internal/frame"
)

// Packet is one tracked transmission: the receiver-side view of a detected
// preamble with its estimated geometry and per-transmitter features.
type Packet struct {
	ID       int     // tracker-assigned identifier
	Start    int64   // estimated first sample of the preamble
	CFOHz    float64 // estimated carrier frequency offset
	PeakAmp  float64 // reference de-chirped peak amplitude from the preamble
	SNRdB    float64 // estimated SNR (peak vs spectrum noise floor)
	Score    int     // preamble verification score (matched symbols)
	NSymbols int     // data symbols to demodulate (set from header or max)
}

// DataStart returns the absolute sample index of the first data symbol for
// the given config.
func (p *Packet) DataStart(cfg frame.Config) int64 {
	return p.Start + int64(cfg.PreambleSampleCount())
}

// SymbolStart returns the absolute sample index of data symbol i.
func (p *Packet) SymbolStart(cfg frame.Config, i int) int64 {
	return p.DataStart(cfg) + int64(i*cfg.Chirp.SamplesPerSymbol())
}

// End returns the absolute sample index just past the last data symbol.
func (p *Packet) End(cfg frame.Config) int64 {
	return p.SymbolStart(cfg, p.NSymbols)
}

// String implements fmt.Stringer.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d@%d cfo=%.0fHz snr=%.1fdB syms=%d", p.ID, p.Start, p.CFOHz, p.SNRdB, p.NSymbols)
}

// Demod bundles the scratch state for de-chirping windows of one stream
// with per-packet CFO correction. It is not safe for concurrent use; create
// one per goroutine (allocation-free per symbol thereafter).
type Demod struct {
	cfg  frame.Config
	gen  *chirp.Generator
	fft  *dsp.FFT
	win  []complex128 // raw window samples
	dech []complex128 // de-chirped, CFO-corrected window
	tmp  []complex128 // FFT scratch
	spec dsp.Spectrum // folded spectrum scratch

	// CFO rotation cache: exp(−2πi·cfo·n/fs) for one symbol. A packet's
	// CFO estimate is constant across its symbols, so the table is rebuilt
	// only when the corrected CFO changes (≈ once per packet), replacing a
	// per-sample Sincos in every window load.
	rot   []complex128
	rotHz float64
}

// NewDemod builds a Demod for the configuration.
func NewDemod(cfg frame.Config) (*Demod, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := chirp.NewGenerator(cfg.Chirp)
	if err != nil {
		return nil, err
	}
	m := cfg.Chirp.SamplesPerSymbol()
	return &Demod{
		cfg:  cfg,
		gen:  gen,
		fft:  dsp.MustPlan(m),
		win:  make([]complex128, m),
		dech: make([]complex128, m),
		tmp:  make([]complex128, m),
		spec: make(dsp.Spectrum, cfg.Chirp.ChipCount()),
		// Preallocated so the hot path never allocates; NaN forces the
		// first cfoRotation call to build the table.
		rot:   make([]complex128, m),
		rotHz: math.NaN(),
	}, nil
}

// Config returns the demod's configuration.
func (d *Demod) Config() frame.Config { return d.cfg }

// Generator returns the shared chirp generator.
func (d *Demod) Generator() *chirp.Generator { return d.gen }

// FFT returns the symbol-length FFT plan.
func (d *Demod) FFT() *dsp.FFT { return d.fft }

// LoadWindow reads one symbol-length window starting at the absolute index
// and de-chirps it with CFO correction, leaving the result in Dechirped().
//
//cic:hotpath
func (d *Demod) LoadWindow(src SampleSource, start int64, cfoHz float64) {
	src.Read(d.win, start)
	d.DechirpCFO(d.dech, d.win, cfoHz)
}

// Window returns the raw samples loaded by LoadWindow (valid until the next
// call).
func (d *Demod) Window() []complex128 { return d.win }

// Dechirped returns the de-chirped CFO-corrected window (valid until the
// next LoadWindow).
func (d *Demod) Dechirped() []complex128 { return d.dech }

// DechirpCFO de-chirps r into dst while removing a carrier frequency
// offset: dst[n] = r[n]·conj(C0[n])·exp(−2πi·cfo·n/fs).
//
//cic:hotpath
func (d *Demod) DechirpCFO(dst, r []complex128, cfoHz float64) {
	d.gen.Dechirp(dst, r)
	d.ApplyCFO(dst[:min(len(dst), len(r))], cfoHz)
}

// ApplyCFO rotates x in place by exp(−2πi·cfo·n/fs), the de-rotation that
// removes a carrier frequency offset. The per-symbol rotation table is
// cached on the Demod and rebuilt only when cfoHz changes, so the steady
// state of a packet (constant CFO estimate) never calls Sincos.
//
//cic:hotpath
func (d *Demod) ApplyCFO(x []complex128, cfoHz float64) {
	if cfoHz == 0 {
		return
	}
	rot := d.cfoRotation(cfoHz)
	if len(x) > len(rot) {
		x = x[:len(rot)]
	}
	for i := range x {
		x[i] *= rot[i]
	}
}

// cfoRotation returns the cached one-symbol rotation table for cfoHz,
// rebuilding it when the offset differs from the cached one.
func (d *Demod) cfoRotation(cfoHz float64) []complex128 {
	if d.rotHz == cfoHz {
		return d.rot
	}
	step := -2 * math.Pi * cfoHz / d.cfg.Chirp.SampleRate()
	phase := 0.0
	for i := range d.rot {
		s, c := math.Sincos(phase)
		d.rot[i] = complex(c, s)
		phase += step
	}
	d.rotHz = cfoHz
	return d.rot
}

// FoldedSpectrum computes the folded power spectrum of the de-chirped
// window (full symbol). The returned slice is scratch, valid until the next
// call.
//
//cic:hotpath
func (d *Demod) FoldedSpectrum() dsp.Spectrum {
	d.fft.ForwardInto(d.tmp, d.dech)
	return dsp.FoldMagnitude(d.spec, d.tmp, d.cfg.Chirp.ChipCount(), d.cfg.Chirp.OSR)
}

// SubSymbolSpectrum computes the folded power spectrum of the de-chirped
// sub-window [from, to) (sample offsets within the symbol), zero-padded to
// the full FFT grid so bins align across sub-symbols, written into dst
// (allocated if nil). This is the Φ(r_{i→j}) operation of the paper.
//
//cic:hotpath
func (d *Demod) SubSymbolSpectrum(dst dsp.Spectrum, from, to int) dsp.Spectrum {
	d.fft.ForwardWindowed(d.tmp, d.dech, from, to)
	return dsp.FoldMagnitude(dst, d.tmp, d.cfg.Chirp.ChipCount(), d.cfg.Chirp.OSR)
}
