package rx

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cic/internal/channel"
	"cic/internal/chirp"
	"cic/internal/dsp"
	"cic/internal/frame"
	"cic/internal/phy"
)

func testCfg() frame.Config {
	return frame.Config{
		Chirp:    chirp.Params{SF: 8, Bandwidth: 250e3, OSR: 4},
		PHY:      phy.Config{SF: 8, CR: phy.CR45, HasCRC: true},
		SyncWord: 0x34,
	}
}

// buildAir modulates one packet with the given impairments and returns a
// SampleSource plus the packet's true start.
func buildAir(t *testing.T, cfg frame.Config, payload []byte, startSample int64, snrDB, cfoHz float64, noisy bool, seed int64) (SampleSource, int64) {
	t.Helper()
	mod, err := frame.NewModulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wave, _, err := mod.Modulate(payload)
	if err != nil {
		t.Fatal(err)
	}
	imp := channel.Impairments{
		Amplitude:    channel.AmplitudeForSNR(snrDB),
		CFOHz:        cfoHz,
		SampleRate:   cfg.Chirp.SampleRate(),
		InitialPhase: 1.234,
	}
	em := channel.Emission{Start: startSample, Samples: channel.Apply(wave, imp)}
	osr := 0
	if noisy {
		osr = cfg.Chirp.OSR
	}
	r := channel.NewRenderer([]channel.Emission{em}, osr, seed)
	return SourceFromRenderer(r), startSample
}

func TestMemorySourceZeroFill(t *testing.T) {
	src := &MemorySource{Base: 10, Samples: []complex128{1, 2, 3}}
	buf := make([]complex128, 6)
	src.Read(buf, 8)
	want := []complex128{0, 0, 1, 2, 3, 0}
	for i := range want {
		if buf[i] != want[i] {
			t.Errorf("sample %d = %v want %v", i, buf[i], want[i])
		}
	}
	s, e := src.Span()
	if s != 10 || e != 13 {
		t.Errorf("span [%d,%d)", s, e)
	}
}

func TestSynchronizeRecoversTimingAndCFO(t *testing.T) {
	cfg := testCfg()
	m := cfg.Chirp.SamplesPerSymbol()
	for _, tc := range []struct {
		name   string
		start  int64
		cfoHz  float64
		anchor int64 // offset of the coarse anchor from the true dc start
	}{
		{"aligned", 5000, 0, 0},
		{"late anchor", 5000, 0, 300},
		{"early anchor", 5000, 0, -300},
		{"positive CFO", 7777, 2500, 150},
		{"negative CFO", 7777, -2500, -150},
		{"second downchirp anchor", 5000, 1000, int64(m)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src, start := buildAir(t, cfg, []byte("sync test"), tc.start, 30, tc.cfoHz, false, 1)
			det, err := NewDetector(cfg, DetectorOptions{})
			if err != nil {
				t.Fatal(err)
			}
			trueDC := start + int64(dcRegionOffset*m)
			pkt, ok := det.Synchronize(src, trueDC+tc.anchor)
			if !ok {
				t.Fatal("synchronize failed")
			}
			if d := abs64(pkt.Start - start); d > 2 {
				t.Errorf("start %d, want %d (err %d samples)", pkt.Start, start, d)
			}
			if d := math.Abs(pkt.CFOHz - tc.cfoHz); d > cfg.Chirp.BinWidth()/4 {
				t.Errorf("CFO %g, want %g", pkt.CFOHz, tc.cfoHz)
			}
		})
	}
}

func TestScanDownchirpFindsPacket(t *testing.T) {
	cfg := testCfg()
	for _, snr := range []float64{30, 10, 0} {
		src, start := buildAir(t, cfg, []byte("detect me"), 12345, snr, 1800, true, 2)
		det, _ := NewDetector(cfg, DetectorOptions{})
		pkts := det.ScanDownchirp(src)
		if len(pkts) != 1 {
			t.Fatalf("SNR %g: %d detections, want 1", snr, len(pkts))
		}
		if d := abs64(pkts[0].Start - start); d > 2 {
			t.Errorf("SNR %g: start error %d samples", snr, d)
		}
		if pkts[0].SNRdB < 5 {
			t.Errorf("SNR %g: estimated SNR %g suspiciously low", snr, pkts[0].SNRdB)
		}
	}
}

func TestScanUpchirpFindsPacket(t *testing.T) {
	cfg := testCfg()
	src, start := buildAir(t, cfg, []byte("detect me too"), 23456, 25, -1500, true, 3)
	det, _ := NewDetector(cfg, DetectorOptions{})
	pkts := det.ScanUpchirp(src)
	if len(pkts) != 1 {
		t.Fatalf("%d detections, want 1", len(pkts))
	}
	if d := abs64(pkts[0].Start - start); d > 2 {
		t.Errorf("start error %d samples", d)
	}
}

func TestScanNoFalsePositivesOnNoise(t *testing.T) {
	cfg := testCfg()
	r := channel.NewRenderer(nil, cfg.Chirp.OSR, 99)
	src := &boundedSource{rendererSource{r}, 0, 400 * int64(cfg.Chirp.SamplesPerSymbol())}
	det, _ := NewDetector(cfg, DetectorOptions{})
	if pkts := det.ScanDownchirp(src); len(pkts) != 0 {
		t.Errorf("down-chirp scan found %d packets in pure noise", len(pkts))
	}
	if pkts := det.ScanUpchirp(src); len(pkts) != 0 {
		t.Errorf("up-chirp scan found %d packets in pure noise", len(pkts))
	}
}

// boundedSource gives a noise-only renderer a finite span.
type boundedSource struct {
	rendererSource
	start, end int64
}

func (b *boundedSource) Span() (int64, int64) { return b.start, b.end }

func TestScanMultiplePackets(t *testing.T) {
	cfg := testCfg()
	mod, _ := frame.NewModulator(cfg)
	rng := rand.New(rand.NewSource(4))
	var ems []channel.Emission
	var starts []int64
	gap := int64(cfg.PacketSampleCount(12) + 3*cfg.Chirp.SamplesPerSymbol())
	for i := 0; i < 3; i++ {
		payload := make([]byte, 12)
		rng.Read(payload)
		wave, _, err := mod.Modulate(payload)
		if err != nil {
			t.Fatal(err)
		}
		start := int64(5000) + int64(i)*gap
		starts = append(starts, start)
		ems = append(ems, channel.Emission{Start: start, Samples: channel.Apply(wave, channel.Impairments{
			Amplitude:  channel.AmplitudeForSNR(20),
			CFOHz:      channel.RandomCFO(rng, 10, 915e6),
			SampleRate: cfg.Chirp.SampleRate(),
		})})
	}
	src := SourceFromRenderer(channel.NewRenderer(ems, cfg.Chirp.OSR, 5))
	det, _ := NewDetector(cfg, DetectorOptions{})
	pkts := det.ScanDownchirp(src)
	if len(pkts) != 3 {
		t.Fatalf("%d detections, want 3", len(pkts))
	}
	for i, p := range pkts {
		if abs64(p.Start-starts[i]) > 2 {
			t.Errorf("packet %d start %d, want %d", i, p.Start, starts[i])
		}
	}
}

// TestEndToEndSinglePacketDecode: detect, then demodulate every data symbol
// by plain argmax and run the PHY decode — the whole receive chain on a
// clean channel.
func TestEndToEndSinglePacketDecode(t *testing.T) {
	cfg := testCfg()
	payload := []byte("the full pipeline works")
	src, _ := buildAir(t, cfg, payload, 9999, 25, 2100, true, 6)
	det, _ := NewDetector(cfg, DetectorOptions{})
	pkts := det.ScanDownchirp(src)
	if len(pkts) != 1 {
		t.Fatalf("%d detections", len(pkts))
	}
	pkt := pkts[0]
	pkt.NSymbols = phy.MaxSymbolCount(cfg.PHY)

	d, _ := NewDemod(cfg)
	var syms []uint16
	for i := 0; i < pkt.NSymbols; i++ {
		d.LoadWindow(src, pkt.SymbolStart(cfg, i), pkt.CFOHz)
		_, at := d.FoldedSpectrum().Max()
		syms = append(syms, uint16(at))
	}
	res, err := phy.Decode(syms, cfg.PHY)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) || !res.CRCOK {
		t.Errorf("payload mismatch: %q crc=%v", res.Payload, res.CRCOK)
	}
}

func TestDemodSubSymbolSpectrum(t *testing.T) {
	cfg := testCfg()
	m := cfg.Chirp.SamplesPerSymbol()
	gen, _ := chirp.NewGenerator(cfg.Chirp)
	sym := make([]complex128, m)
	gen.Symbol(sym, 42)
	src := &MemorySource{Base: 0, Samples: sym}
	d, _ := NewDemod(cfg)
	d.LoadWindow(src, 0, 0)
	full := append(dsp.Spectrum(nil), d.FoldedSpectrum()...)
	_, atFull := full.Max()
	if atFull != 42 {
		t.Fatalf("full-symbol peak at %d", atFull)
	}
	// A half-symbol window still peaks at 42, with a wider lobe.
	half := d.SubSymbolSpectrum(nil, 0, m/2)
	_, atHalf := half.Max()
	if d := (atHalf - 42 + 256) % 256; d > 1 && d < 255 {
		t.Errorf("half-symbol peak at %d", atHalf)
	}
	// Out-of-range windows clamp; an empty window gives a zero spectrum.
	zero := d.SubSymbolSpectrum(nil, m, 2*m)
	if e := zero.Energy(); e != 0 {
		t.Errorf("empty window spectrum energy %g", e)
	}
}

func TestPacketGeometry(t *testing.T) {
	cfg := testCfg()
	p := &Packet{Start: 1000, NSymbols: 5}
	m := int64(cfg.Chirp.SamplesPerSymbol())
	pre := int64(cfg.PreambleSampleCount())
	if p.DataStart(cfg) != 1000+pre {
		t.Error("DataStart")
	}
	if p.SymbolStart(cfg, 2) != 1000+pre+2*m {
		t.Error("SymbolStart")
	}
	if p.End(cfg) != 1000+pre+5*m {
		t.Error("End")
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestDechirpCFORemovesOffset(t *testing.T) {
	cfg := testCfg()
	gen, _ := chirp.NewGenerator(cfg.Chirp)
	m := cfg.Chirp.SamplesPerSymbol()
	sym := make([]complex128, m)
	gen.Symbol(sym, 10)
	cfo := 3 * cfg.Chirp.BinWidth() // 3 bins of CFO
	shifted := channel.Apply(sym, channel.Impairments{Amplitude: 1, CFOHz: cfo, SampleRate: cfg.Chirp.SampleRate()})

	d, _ := NewDemod(cfg)
	src := &MemorySource{Samples: shifted}
	// Without correction the peak lands 3 bins high.
	d.LoadWindow(src, 0, 0)
	_, atRaw := d.FoldedSpectrum().Max()
	if atRaw != 13 {
		t.Errorf("uncorrected peak at %d, want 13", atRaw)
	}
	// With correction it returns to 10.
	d.LoadWindow(src, 0, cfo)
	_, atFix := d.FoldedSpectrum().Max()
	if atFix != 10 {
		t.Errorf("corrected peak at %d, want 10", atFix)
	}
}
