package rx

import (
	"math"
	"slices"

	"cic/internal/dsp"
	"cic/internal/frame"
	"cic/internal/obs"
)

// DetectorOptions tunes preamble detection.
type DetectorOptions struct {
	// DownchirpThreshold: a down-chirp candidate needs a de-chirped peak at
	// least this many times the spectrum's MEAN bin power. A genuine
	// down-chirp concentrates coherently (peak/mean ≈ 2^SF at high SNR)
	// while mismatched data chirps smear into speckle with peak/mean ≈ 10–20,
	// so the mean — unlike the median — is robust to how much of the band
	// the interference occupies. Default 40.
	DownchirpThreshold float64
	// UpchirpThreshold: minimum peak-to-floor ratio for a window to
	// contribute peaks to the up-chirp run matcher. Default 8.
	UpchirpThreshold float64
	// UpchirpRun: number of consecutive symbol windows whose top peaks must
	// agree (±1 bin) for the conventional up-chirp detector. Default 6.
	UpchirpRun int
	// UpchirpTopK: how many peaks per window participate in up-chirp run
	// matching. Default 1 — the conventional receiver searches for "8
	// consecutive peaks with the same frequency" (paper §3), i.e. the
	// global maximum only, which is what collisions and sub-noise SNR
	// defeat (Figs 32–35). Track-based receivers (FTrack) raise this.
	UpchirpTopK int
	// VerifyMinScore: minimum number of preamble/SYNC symbols (of 10) that
	// must demodulate correctly to accept a detection. Default 8: a
	// ±1-symbol misalignment matches at most 7 of 10, so 8 rejects the
	// shifted aliases of a real preamble while tolerating two noise-lost
	// symbols.
	VerifyMinScore int
	// VerifyPeakFactor: a preamble/SYNC symbol counts as matched when the
	// folded power at the expected bin (±1) is at least this many times the
	// spectrum's noise floor. The check is deliberately not max-peak based:
	// under collisions a stronger concurrent transmission legitimately owns
	// the global maximum. Default 12 (≈10.8 dB).
	VerifyPeakFactor float64
	// MaxCFOBins bounds the absolute carrier-frequency-offset hypothesis in
	// LoRa bins during synchronisation; hypotheses beyond it are interferer
	// tones, not our packet. Default 24 (≈23 kHz at SF8/250 kHz).
	MaxCFOBins float64
	// MaxPackets bounds the number of detections per scan (0 = unlimited).
	MaxPackets int
	// Metrics receives the detector's stage counters (scan windows,
	// candidate anchors, verification rejects). Nil disables them.
	Metrics *obs.DecodeMetrics
}

func (o *DetectorOptions) setDefaults() {
	if o.DownchirpThreshold == 0 {
		o.DownchirpThreshold = 40
	}
	if o.UpchirpThreshold == 0 {
		o.UpchirpThreshold = 8
	}
	if o.UpchirpRun == 0 {
		o.UpchirpRun = 6
	}
	if o.UpchirpTopK == 0 {
		o.UpchirpTopK = 1
	}
	if o.VerifyMinScore == 0 {
		o.VerifyMinScore = 8
	}
	if o.VerifyPeakFactor == 0 {
		o.VerifyPeakFactor = 12
	}
	if o.MaxCFOBins == 0 {
		o.MaxCFOBins = 24
	}
	if o.Metrics == nil {
		o.Metrics = obs.Nop()
	}
}

// Detector finds LoRa preambles in a sample stream. It supports both the
// conventional up-chirp search (8 consecutive C0 peaks — used by standard
// LoRa, Choir and FTrack) and CIC's down-chirp search (§5.8), which stays
// clean under collisions because concurrent data symbols do not correlate
// against an up-chirp multiplier.
//
// A Detector is not safe for concurrent use: every scan and refinement
// method works in the struct's scratch arenas (allocation-free per window
// after warm-up); create one Detector per goroutine.
type Detector struct {
	cfg  frame.Config
	opts DetectorOptions
	d    *Demod

	// Scratch arenas, sized at construction (m = samples/symbol, n =
	// chips/symbol) and reused by every scan window so the streaming scan
	// path performs no steady-state allocation. Lifetimes never overlap:
	// each mgrid/fold result is fully consumed before the next window
	// overwrites it.
	win      []complex128 // raw window samples
	dd       []complex128 // de-chirped window
	fftTmp   []complex128 // mgrid FFT destination
	mag      dsp.Spectrum // M-grid power spectrum (len m)
	spec     dsp.Spectrum // N-grid folded spectrum (len n)
	nfTmp    []float64    // NoiseFloorInto workspace
	peaksBuf []dsp.Peak
	candsBuf []int64 // raw down-chirp anchors per scan
	counts   []int   // up-chirp bin vote histogram (len n), cleared per use
	hyposBuf []int
	bUpsBuf  []float64
	fracsBuf []float64
	ampsBuf  []float64
	snrsBuf  []float64
	want     []int // expected preamble+SYNC symbol values (constant per cfg)
}

// NewDetector builds a Detector.
func NewDetector(cfg frame.Config, opts DetectorOptions) (*Detector, error) {
	opts.setDefaults()
	d, err := NewDemod(cfg)
	if err != nil {
		return nil, err
	}
	m := cfg.Chirp.SamplesPerSymbol()
	n := cfg.Chirp.ChipCount()
	x, y := cfg.SyncSymbolValues()
	want := make([]int, 0, frame.PreambleUpchirps+frame.SyncSymbols)
	for i := 0; i < frame.PreambleUpchirps; i++ {
		want = append(want, 0)
	}
	want = append(want, x, y)
	return &Detector{
		cfg:      cfg,
		opts:     opts,
		d:        d,
		win:      make([]complex128, m),
		dd:       make([]complex128, m),
		fftTmp:   make([]complex128, m),
		mag:      make(dsp.Spectrum, m),
		spec:     make(dsp.Spectrum, n),
		nfTmp:    make([]float64, n),
		counts:   make([]int, n),
		peaksBuf: make([]dsp.Peak, 0, 8),
		candsBuf: make([]int64, 0, 32),
		hyposBuf: make([]int, 0, 16),
		bUpsBuf:  make([]float64, 0, 4),
		fracsBuf: make([]float64, 0, frame.PreambleUpchirps),
		ampsBuf:  make([]float64, 0, len(want)),
		snrsBuf:  make([]float64, 0, len(want)),
		want:     want,
	}, nil
}

// dcRegionOffset is the number of whole symbols between the packet start
// and the start of the down-chirp region (8 preamble + 2 SYNC).
const dcRegionOffset = frame.PreambleUpchirps + frame.SyncSymbols

// preStartOf returns the packet-start estimate implied by a down-chirp
// region starting at dcStart.
func preStartOf(dcStart int64, m int) int64 {
	return dcStart - int64(dcRegionOffset*m)
}

// mgrid FFTs the de-chirped window onto the M grid and squares it into the
// detector's scratch power spectrum (valid until the next mgrid call).
//
//cic:hotpath
func (det *Detector) mgrid(dd []complex128) dsp.Spectrum {
	det.d.FFT().ForwardInto(det.fftTmp, dd)
	return det.mgridFromTmp()
}

// mgridFromTmp squares det.fftTmp (already transformed) into the M-grid
// scratch spectrum — the tail half of mgrid for callers that ran the FFT
// themselves.
//
//cic:hotpath
func (det *Detector) mgridFromTmp() dsp.Spectrum {
	for i, v := range det.fftTmp {
		det.mag[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return det.mag
}

// ScanDownchirp searches the whole source with CIC's down-chirp method and
// returns verified, deduplicated packets sorted by start.
//
// Each half-symbol-stepped window is multiplied by the up-chirp C0; a
// window inside the preamble's 2.25 down-chirps collapses to a tone whose
// M-grid bin encodes the window/down-chirp misalignment (bin = e/OSR + δ
// for a down-chirp starting e samples after the window), while concurrent
// data up-chirps spread across the band. Candidates are refined and
// verified against the 8 up-chirps and SYNC word behind them.
func (det *Detector) ScanDownchirp(src SampleSource) []*Packet {
	start, end := src.Span()
	return det.ScanDownchirpRange(src, start, end)
}

// ScanDownchirpRange is ScanDownchirp restricted to scan-window positions
// in [start, end) — the incremental entry point used by the streaming
// gateway. Detected packets may begin before `start` (the preamble extends
// ~12 symbols before the down-chirps the scan keys on).
//
//cic:hotpath
func (det *Detector) ScanDownchirpRange(src SampleSource, start, end int64) []*Packet {
	m := det.cfg.Chirp.SamplesPerSymbol()
	osr := det.cfg.Chirp.OSR
	gen := det.d.Generator()
	cands := det.candsBuf[:0]
	// Align scan positions to the global half-symbol grid so incremental
	// range scans visit exactly the positions a whole-span scan would.
	first := start - int64(m)
	grid := int64(m / 2)
	if r := first % grid; r != 0 {
		first -= r
	}
	for p := first; p < end; p += grid {
		det.opts.Metrics.DetectWindows.Inc()
		src.Read(det.win, p)
		gen.DechirpDown(det.dd, det.win)
		mag := det.mgrid(det.dd)
		meanPow := 0.0
		for _, v := range mag {
			meanPow += v
		}
		meanPow /= float64(m)
		peak, bin := mag.Max()
		if meanPow <= 0 || peak < det.opts.DownchirpThreshold*meanPow {
			continue
		}
		// bin = (e/OSR + δ) mod M where e is the down-chirp start relative
		// to the window. Interpret the circle as signed and neglect δ
		// (≤ a few bins, removed during refinement).
		e := bin * osr
		if bin > m/2 {
			e = (bin - m) * osr
		}
		cands = append(cands, p+int64(e))
	}
	det.candsBuf = cands
	return det.resolveCandidates(src, cands)
}

// upWindow is one symbol-length window's peak set in the up-chirp scan.
type upWindow struct {
	pos   int64
	peaks []dsp.Peak
}

// ScanUpchirp searches with the conventional method: a run of consecutive
// full-symbol windows whose de-chirped top peaks agree on one bin (the
// repeated C0 preamble de-chirps to a constant bin when the window grid is
// fixed). Under collisions, data symbols from concurrent packets clutter
// the per-window peaks (Fig 19) — the failure mode Figs 32–35 measure.
func (det *Detector) ScanUpchirp(src SampleSource) []*Packet {
	start, end := src.Span()
	return det.ScanUpchirpRange(src, start, end)
}

// ScanUpchirpRange is ScanUpchirp restricted to window positions in
// [start, end).
func (det *Detector) ScanUpchirpRange(src SampleSource, start, end int64) []*Packet {
	m := det.cfg.Chirp.SamplesPerSymbol()
	n := det.cfg.Chirp.ChipCount()
	fft := det.d.FFT()
	gen := det.d.Generator()

	var history []upWindow
	cands := det.candsBuf[:0]
	run := det.opts.UpchirpRun

	for p := start - int64(m); p < end; p += int64(m) {
		det.opts.Metrics.DetectWindows.Inc()
		src.Read(det.win, p)
		gen.Dechirp(det.dd, det.win)
		fft.ForwardInto(det.fftTmp, det.dd)
		dsp.FoldMagnitude(det.spec, det.fftTmp, n, det.cfg.Chirp.OSR)
		floor := dsp.NoiseFloorInto(det.nfTmp, det.spec)
		peaks := dsp.AppendTopPeaks(det.peaksBuf[:0], det.spec, 0.2, det.opts.UpchirpTopK)
		det.peaksBuf = peaks
		// Keep only peaks meaningfully above the floor.
		kept := peaks[:0]
		for _, pk := range peaks {
			if floor <= 0 || pk.Power >= det.opts.UpchirpThreshold*floor {
				kept = append(kept, pk)
			}
		}
		// The per-window history copy allocates; the conventional scan is
		// a comparison baseline, not the streaming hot path.
		history = append(history, upWindow{pos: p, peaks: append([]dsp.Peak(nil), kept...)})
		if len(history) < run {
			continue
		}
		tail := history[len(history)-run:]
		if _, ok := consistentBin(tail, n); ok {
			// The run's final window sits inside the preamble; the
			// down-chirp region follows within the next few symbols.
			// Localise it with a bounded down-chirp search, as a real
			// receiver uses the SFD for fine sync.
			if anchor, ok := det.localDownchirp(src, p, 6); ok {
				cands = append(cands, anchor)
				history = history[:0] // avoid re-triggering on this run
			}
		}
	}
	det.candsBuf = cands
	return det.resolveCandidates(src, cands)
}

// consistentBin reports whether every window in the run shares a peak bin
// within ±1 (circular) and returns that bin.
func consistentBin(run []upWindow, n int) (int, bool) {
	if len(run) == 0 || len(run[0].peaks) == 0 {
		return 0, false
	}
	for _, cand := range run[0].peaks {
		ok := true
		for _, w := range run[1:] {
			found := false
			for _, pk := range w.peaks {
				d := pk.Bin - cand.Bin
				if d < 0 {
					d = -d
				}
				if d <= 1 || d >= n-1 {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return cand.Bin, true
		}
	}
	return 0, false
}

// localDownchirp searches [from, from+symbols·M) in half-symbol steps for
// the strongest down-chirp tone and returns its estimated chirp start.
func (det *Detector) localDownchirp(src SampleSource, from int64, symbols int) (int64, bool) {
	m := det.cfg.Chirp.SamplesPerSymbol()
	osr := det.cfg.Chirp.OSR
	gen := det.d.Generator()
	bestPower := 0.0
	var bestAnchor int64
	found := false
	for p := from; p < from+int64(symbols*m); p += int64(m / 2) {
		src.Read(det.win, p)
		gen.DechirpDown(det.dd, det.win)
		mag := det.mgrid(det.dd)
		meanPow := 0.0
		for _, v := range mag {
			meanPow += v
		}
		meanPow /= float64(m)
		peak, bin := mag.Max()
		if meanPow <= 0 || peak < det.opts.DownchirpThreshold*meanPow {
			continue
		}
		if peak > bestPower {
			e := bin * osr
			if bin > m/2 {
				e = (bin - m) * osr
			}
			bestPower = peak
			bestAnchor = p + int64(e)
			found = true
		}
	}
	return bestAnchor, found
}

// resolveCandidates refines, verifies and deduplicates raw candidate
// down-chirp anchors, producing tracked packets sorted by start. The
// anchors slice is sorted in place (it is the detector's scratch).
//
//cic:hotpath
func (det *Detector) resolveCandidates(src SampleSource, dcAnchors []int64) []*Packet {
	m := int64(det.cfg.Chirp.SamplesPerSymbol())
	var pkts []*Packet
	det.opts.Metrics.DetectCandidates.Add(int64(len(dcAnchors)))
	slices.Sort(dcAnchors)
	for _, anchor := range dcAnchors {
		// Skip anchors that obviously duplicate an accepted packet before
		// paying for refinement.
		dupEarly := false
		for _, prev := range pkts {
			dc := prev.Start + int64(dcRegionOffset)*m
			if abs64(anchor-dc) < m/2 || abs64(anchor-dc-m) < m/2 {
				dupEarly = true
				break
			}
		}
		if dupEarly {
			continue
		}
		pkt, ok := det.Synchronize(src, anchor)
		if !ok {
			det.opts.Metrics.DetectRejects.Inc()
			continue
		}
		dup := false
		for i, prev := range pkts {
			if abs64(pkt.Start-prev.Start) < m/2 {
				dup = true
				if pkt.Score > prev.Score {
					pkts[i] = pkt
				}
				break
			}
		}
		if !dup {
			pkts = append(pkts, pkt) //cic:alloc-ok — accepted detections escape to the caller
			if det.opts.MaxPackets > 0 && len(pkts) >= det.opts.MaxPackets {
				break
			}
		}
	}
	slices.SortFunc(pkts, func(a, b *Packet) int {
		switch {
		case a.Start < b.Start:
			return -1
		case a.Start > b.Start:
			return 1
		}
		return 0
	})
	for i, p := range pkts {
		p.ID = i
	}
	return pkts
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Synchronize refines a coarse down-chirp anchor into an exact packet start
// and CFO estimate, then verifies the preamble. The returned Packet has
// NSymbols unset (0).
//
// Estimation algebra, in LoRa-bin units (one bin = B/2^SF Hz; one chip =
// OSR samples), with e = signal start − window start:
//
//	up-chirp window:   peak at  δ − e/OSR  (mod N)
//	down-chirp window: peak at  δ + e/OSR  (mod M)
//
// so δ = (b_up + b_down)/2 and e = OSR·(b_down − b_up)/2. Because the
// coarse anchor may lock onto the second down-chirp, the final verification
// tries the ±1-symbol shifts and keeps the best-scoring alignment.
//
//cic:hotpath
func (det *Detector) Synchronize(src SampleSource, dcAnchor int64) (*Packet, bool) {
	cfg := det.cfg
	m := cfg.Chirp.SamplesPerSymbol()
	n := cfg.Chirp.ChipCount()
	gen := det.d.Generator()
	fft := det.d.FFT()

	// Measure the down-chirp tone once at the anchor — concurrent data
	// up-chirps spread under DechirpDown, so its global peak is ours.
	src.Read(det.win, dcAnchor)
	gen.DechirpDown(det.dd, det.win)
	mag := det.mgrid(det.dd)
	_, at := mag.Max()
	if at < 0 {
		return nil, false
	}

	// Gather up-chirp peak hypotheses from mid-preamble windows. Under
	// collisions the preamble windows contain tones from concurrent
	// transmissions too, each appearing consistently; every recurring bin
	// is a hypothesis, and the CFO budget plus preamble verification pick
	// the right one. The vote histogram is a fixed length-N slice rather
	// than a map, so hypothesis gathering never allocates.
	counts := det.counts
	clear(counts)
	preStart := preStartOf(dcAnchor, m)
	for _, sym := range []int{2, 3, 4, 5} {
		src.Read(det.win, preStart+int64(sym*m))
		gen.Dechirp(det.dd, det.win)
		fft.ForwardInto(det.fftTmp, det.dd)
		dsp.FoldMagnitude(det.spec, det.fftTmp, n, det.cfg.Chirp.OSR)
		// The folded spectrum combines each tone's OSR images into one bin,
		// so a handful of strong interferers cannot crowd a weak packet's
		// tone out of the peak list.
		det.peaksBuf = dsp.AppendTopPeaks(det.peaksBuf[:0], det.spec, 0.05, 6)
		for _, pk := range det.peaksBuf {
			// Collapse the OSR images onto the N circle and tolerate ±1 bin
			// of drift between windows (fractional peaks near a bin edge
			// flip sides from window to window).
			b := pk.Bin % n
			counts[(b-1+n)%n]++
			counts[b]++
			counts[(b+1)%n]++
		}
	}
	hypos := det.hyposBuf[:0]
	for bin, c := range counts {
		if c < 3 {
			continue
		}
		// Keep only local maxima of the count histogram so a single tone
		// does not spawn three near-identical hypotheses.
		if counts[(bin-1+n)%n] > c || counts[(bin+1)%n] > c {
			continue
		}
		if counts[(bin+1)%n] == c && counts[(bin-1+n)%n] < c {
			continue // the plateau's other end will represent this tone
		}
		hypos = append(hypos, bin)
	}
	slices.SortFunc(hypos, func(a, b int) int {
		if counts[a] != counts[b] {
			return counts[b] - counts[a]
		}
		return a - b
	})
	det.hyposBuf = hypos
	if len(hypos) > 4 {
		hypos = hypos[:4]
	}

	var best *Packet
	for _, h := range hypos {
		bUp0 := dsp.WrapToHalf(float64(h), float64(n)/2)
		if pkt, ok := det.refineHypothesis(src, dcAnchor, bUp0); ok {
			if best == nil || pkt.Score > best.Score {
				best = pkt
			}
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// refineHypothesis iterates the (δ, ε) solution for one up-chirp bin
// hypothesis, then verifies the resulting alignment (including the ±1
// symbol down-chirp ambiguity).
//
//cic:hotpath
func (det *Detector) refineHypothesis(src SampleSource, dcAnchor int64, bUpHypo float64) (*Packet, bool) {
	cfg := det.cfg
	m := cfg.Chirp.SamplesPerSymbol()
	n := cfg.Chirp.ChipCount()
	osr := cfg.Chirp.OSR
	gen := det.d.Generator()

	dcStart := dcAnchor
	var cfoBins float64
	expectUp := bUpHypo
	for iter := 0; iter < 3; iter++ {
		src.Read(det.win, dcStart)
		gen.DechirpDown(det.dd, det.win)
		mag := det.mgrid(det.dd)
		var bDown float64
		var pDown float64
		if iter == 0 {
			_, at := mag.Max()
			off, h := dsp.QuadInterp(mag, at)
			bDown, pDown = float64(at)+off, h
		} else {
			// After the previous shift ε ≈ 0, so the tone sits near δ.
			bDown, pDown = nearestPeak(mag, cfoBins, 4)
		}
		if pDown <= 0 {
			return nil, false
		}
		bDownW := dsp.WrapToHalf(bDown, float64(m)/2)

		preStart := preStartOf(dcStart, m)
		bUps := det.bUpsBuf[:0]
		for _, sym := range []int{2, 3, 4, 5} {
			src.Read(det.win, preStart+int64(sym*m))
			gen.Dechirp(det.dd, det.win)
			umag := det.mgrid(det.dd)
			// Search near the expected bin on both OSR images.
			b1, p1 := nearestPeak(umag, expectUp, 3)
			b2, p2 := nearestPeak(umag, expectUp+float64((osr-1)*n), 3)
			if p2 > p1 {
				b1 = b2 - float64((osr-1)*n)
			}
			bUps = append(bUps, dsp.WrapToHalf(b1, float64(n)/2))
		}
		det.bUpsBuf = bUps
		slices.Sort(bUps)
		bUp := 0.5 * (bUps[1] + bUps[2]) // median of 4
		cfoBins = (bUp + bDownW) / 2
		if math.Abs(cfoBins) > det.opts.MaxCFOBins {
			return nil, false
		}
		epsChips := (bDownW - bUp) / 2
		shift := int64(math.Round(epsChips * float64(osr)))
		dcStart += shift
		// After shifting, ε ≈ 0 and the up-chirp tone is expected at δ.
		expectUp = dsp.WrapToHalf(cfoBins, float64(n)/2)
		if shift == 0 && iter > 0 {
			break
		}
	}

	cfoHz := cfoBins * cfg.Chirp.BinWidth()
	base := preStartOf(dcStart, m)

	// Resolve the which-down-chirp ambiguity: try start shifts of 0, ±1
	// symbol and keep the best verification score. The trial Packet stays
	// on the stack; only an accepted alignment is promoted to the heap, so
	// rejected hypotheses (the common case while scanning) cost nothing.
	var best *Packet
	for _, shift := range []int64{0, -int64(m), int64(m)} {
		trial := Packet{Start: base + shift, CFOHz: cfoHz}
		if det.verify(src, &trial) && (best == nil || trial.Score > best.Score) {
			if best == nil {
				best = new(Packet) //cic:alloc-ok — the accepted detection escapes
			}
			*best = trial
		}
	}
	if best == nil {
		return nil, false
	}
	det.refineEffectiveCFO(src, best)
	return best, true
}

// refineEffectiveCFO measures the residual fractional peak offset over the
// preamble up-chirps at the final alignment and folds it into the packet's
// CFO estimate. Sub-sample timing error and CFO error are observationally
// equivalent for symbol demodulation (both shift every window's tone by a
// constant), so absorbing the residual here makes the packet's own data
// peaks land within a small fraction of a bin — the margin the §5.7
// fractional-CFO candidate filter depends on.
//
//cic:hotpath
func (det *Detector) refineEffectiveCFO(src SampleSource, pkt *Packet) {
	cfg := det.cfg
	m := cfg.Chirp.SamplesPerSymbol()
	d := det.d
	fracs := det.fracsBuf[:0]
	for i := 0; i < frame.PreambleUpchirps; i++ {
		d.LoadWindow(src, pkt.Start+int64(i*m), pkt.CFOHz)
		mag := det.mgrid(d.Dechirped())
		// The preamble tone (k=0) should sit at M-grid bin ~0; search ±2
		// bins then zoom.
		pos, pow := nearestPeak(mag, 0, 2)
		if pow <= 0 {
			continue
		}
		ipos := int(math.Round(pos))
		zpos, _ := dsp.RefinePeak(d.Dechirped(), m, ipos, 16)
		fracs = append(fracs, dsp.WrapToHalf(zpos, float64(m)/2))
	}
	det.fracsBuf = fracs
	if len(fracs) < 3 {
		return
	}
	slices.Sort(fracs)
	med := fracs[len(fracs)/2]
	if math.Abs(med) < 1.5 {
		pkt.CFOHz += med * cfg.Chirp.BinWidth()
	}
}

// nearestPeak finds the strongest bin within ±radius (circular) of the
// expected fractional position and refines it, returning position and
// power.
//
//cic:hotpath
func nearestPeak(mag dsp.Spectrum, expect float64, radius int) (float64, float64) {
	m := len(mag)
	center := int(math.Round(expect))
	bestBin, bestPow := -1, 0.0
	for d := -radius; d <= radius; d++ {
		b := ((center+d)%m + m) % m
		if mag[b] > bestPow {
			bestPow, bestBin = mag[b], b
		}
	}
	if bestBin < 0 {
		return expect, 0
	}
	off, h := dsp.QuadInterp(mag, bestBin)
	pos := float64(bestBin) + off
	// Report the position on the same unwrapped sheet as the expectation.
	if diff := pos - expect; diff > float64(m)/2 {
		pos -= float64(m)
	} else if diff < -float64(m)/2 {
		pos += float64(m)
	}
	return pos, h
}

// verify demodulates the 8 preamble up-chirps and 2 SYNC symbols with the
// packet's timing and CFO; it scores matches, estimates the reference peak
// amplitude and SNR, and accepts when the score reaches VerifyMinScore.
//
//cic:hotpath
func (det *Detector) verify(src SampleSource, pkt *Packet) bool {
	cfg := det.cfg
	m := cfg.Chirp.SamplesPerSymbol()
	n := cfg.Chirp.ChipCount()
	d := det.d

	score := 0
	amps := det.ampsBuf[:0]
	snrs := det.snrsBuf[:0]
	for i, w := range det.want {
		d.LoadWindow(src, pkt.Start+int64(i*m), pkt.CFOHz)
		spec := d.FoldedSpectrum()
		// Check the expected bin (±1) against the noise floor instead of
		// requiring the global maximum: under collisions a stronger
		// concurrent transmission legitimately owns the global peak.
		peak := spec[w]
		if up := spec[(w+1)%n]; up > peak {
			peak = up
		}
		if dn := spec[(w-1+n)%n]; dn > peak {
			peak = dn
		}
		nf := dsp.NoiseFloorInto(det.nfTmp, spec)
		if nf > 0 && peak >= det.opts.VerifyPeakFactor*nf {
			score++
			amps = append(amps, math.Sqrt(peak))
			snrs = append(snrs, dsp.DB(peak/nf))
		}
	}
	det.ampsBuf, det.snrsBuf = amps, snrs
	pkt.Score = score
	if score < det.opts.VerifyMinScore {
		return false
	}
	// Mandatory down-chirp gate: up-chirp windows cannot distinguish the
	// degenerate alias family (δ + k·binWidth, ε − k·OSR samples), which
	// produces identical up-chirp peaks for any integer k. The down-chirp
	// tone moves the *other* way (δ + ε/OSR), so a genuine, aligned packet
	// must show it within ±2 bins of zero after CFO correction.
	if !det.downchirpAligned(src, pkt) {
		return false
	}
	pkt.PeakAmp = dsp.Mean(amps)
	pkt.SNRdB = dsp.Mean(snrs)
	return true
}

// downchirpAligned checks that BOTH whole down-chirps of the preamble
// de-chirp (against C0, with CFO removed) to a strong tone at M-grid bin
// 0±2. Checking both defeats aliases that place only one window over
// genuinely down-chirping samples.
//
//cic:hotpath
func (det *Detector) downchirpAligned(src SampleSource, pkt *Packet) bool {
	cfg := det.cfg
	m := cfg.Chirp.SamplesPerSymbol()
	gen := det.d.Generator()
	var peaks [frame.DownchirpsWhole]float64
	for dc := 0; dc < frame.DownchirpsWhole; dc++ {
		src.Read(det.win, pkt.Start+int64((dcRegionOffset+dc)*m))
		gen.DechirpDown(det.dd, det.win)
		// The demodulator's cached per-packet rotation table removes the
		// CFO (identical math to a per-sample Sincos loop, but the table
		// is rebuilt only when the packet's estimate changes).
		det.d.ApplyCFO(det.dd, pkt.CFOHz)
		mag := det.mgrid(det.dd)
		meanPow := 0.0
		for _, v := range mag {
			meanPow += v
		}
		meanPow /= float64(m)
		peak, at := mag.Max()
		if meanPow > 0 && peak < 10*meanPow {
			return false
		}
		if at > 2 && at < m-2 {
			return false
		}
		peaks[dc] = peak
	}
	// Both down-chirps must carry comparable tone power: a ±1-symbol alias
	// places one window over a full down-chirp but the other over only the
	// 0.25 fraction (1/16 of the power).
	if peaks[1] < peaks[0]/4 || peaks[0] < peaks[1]/4 {
		return false
	}
	return true
}
