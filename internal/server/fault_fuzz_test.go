package server

import (
	"bufio"
	"bytes"
	"testing"
	"time"

	"cic/internal/fault"
)

// FuzzFaultConnFraming feeds a valid frame stream through an arbitrary
// fault schedule derived from the fuzz input and asserts the framing
// layer either decodes cleanly or fails with a typed protocol error —
// never a panic, and never an allocation beyond the per-frame body cap.
func FuzzFaultConnFraming(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10})                // drop near the start
	f.Add([]byte{2, 5, 2, 200})         // two corruptions
	f.Add([]byte{3, 16, 1, 64, 0, 255}) // partial, stall, drop
	f.Add([]byte{2, 0, 2, 1, 2, 2, 2, 3, 2, 4} /* corrupt the length header */)

	stream := validFrameStream(f)

	f.Fuzz(func(t *testing.T, spec []byte) {
		events := eventsFromSpec(spec)
		r := bufio.NewReader(fault.NewReader(bytes.NewReader(stream), events))
		for i := 0; i < 64; i++ {
			typ, body, err := ReadFrame(r)
			if err != nil {
				// Injected faults surface as io errors or typed protocol
				// errors; either is a clean failure. Done.
				return
			}
			if max := MaxBody(typ); max >= 0 && len(body) > max {
				t.Fatalf("frame 0x%02x body %d bytes exceeds cap %d", typ, len(body), max)
			}
		}
	})
}

// validFrameStream encodes one exemplar of every frame type.
func validFrameStream(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	hello, err := EncodeHello(Hello{Station: "fuzz", SF: 8, CR: 3, OSR: 8})
	if err != nil {
		f.Fatalf("EncodeHello: %v", err)
	}
	iq := make([]byte, 256*8)
	for i := range iq {
		iq[i] = byte(i)
	}
	frames := []struct {
		typ  byte
		body []byte
	}{
		{FrameHello, hello},
		{FrameResume, hello},
		{FrameOK, EncodeOffset(0)},
		{FrameIQ, iq},
		{FrameAck, EncodeOffset(256)},
		{FrameError, EncodeErrorBody(ErrCodeOverload, time.Second, "try later")},
		{FrameClose, nil},
	}
	for _, fr := range frames {
		if err := WriteFrame(&buf, fr.typ, fr.body); err != nil {
			f.Fatalf("WriteFrame(0x%02x): %v", fr.typ, err)
		}
	}
	return buf.Bytes()
}

// eventsFromSpec decodes up to 16 fault events from pairs of fuzz
// bytes: spec[i] selects the kind and doubles as the corruption mask,
// spec[i+1] scales to a byte offset inside (or just past) the stream.
func eventsFromSpec(spec []byte) []fault.Event {
	var events []fault.Event
	for i := 0; i+1 < len(spec) && len(events) < 16; i += 2 {
		e := fault.Event{Offset: int64(spec[i+1]) * 17}
		switch spec[i] % 4 {
		case 0:
			e.Kind = fault.KindDrop
		case 1:
			e.Kind = fault.KindStall // zero Delay keeps the fuzz loop fast
		case 2:
			e.Kind = fault.KindCorrupt
			e.Mask = spec[i]
		case 3:
			e.Kind = fault.KindPartial
		}
		events = append(events, e)
	}
	return events
}
