package server

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"cic"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		typ  byte
		body []byte
	}{
		{FrameHello, []byte("hello body")},
		{FrameIQ, make([]byte, 8*100)},
		{FrameClose, nil},
		{FrameOK, nil},
		{FrameError, []byte("reason")},
	}
	var buf bytes.Buffer
	for _, c := range cases {
		if err := WriteFrame(&buf, c.typ, c.body); err != nil {
			t.Fatalf("WriteFrame(0x%02x): %v", c.typ, err)
		}
	}
	for _, c := range cases {
		typ, body, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if typ != c.typ || !bytes.Equal(body, c.body) {
			t.Fatalf("round trip: got (0x%02x, %d bytes), want (0x%02x, %d bytes)",
				typ, len(body), c.typ, len(c.body))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	// An IQ frame claiming 100 MiB must be rejected from the 5-byte
	// header alone — no allocation, no body read.
	hdr := []byte{FrameIQ, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(hdr[1:], 100<<20)
	_, _, err := ReadFrame(bytes.NewReader(hdr))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame: got %v", err)
	}
}

func TestReadFrameRejectsUnknownType(t *testing.T) {
	hdr := []byte{0x7f, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("unknown frame type accepted")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameError, []byte("cut off")); err != nil {
		t.Fatal(err)
	}
	for n := 1; n < buf.Len(); n++ {
		if _, _, err := ReadFrame(bytes.NewReader(buf.Bytes()[:n])); err != io.ErrUnexpectedEOF {
			t.Fatalf("truncated at %d bytes: got %v, want io.ErrUnexpectedEOF", n, err)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	cfg := cic.DefaultConfig()
	cfg.SpreadingFactor = 9
	cfg.CodingRate = 3
	cfg.Oversampling = 8
	cfg.Bandwidth = 125e3
	h := HelloFor("roof-antenna-2", cfg)
	body, err := EncodeHello(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
	back := got.Config()
	if back.SpreadingFactor != 9 || back.CodingRate != 3 || back.Oversampling != 8 || back.Bandwidth != 125e3 {
		t.Fatalf("Config(): %+v", back)
	}
	if back.PayloadCRC != cic.DefaultConfig().PayloadCRC {
		t.Fatal("non-wire fields must keep defaults")
	}
}

func TestParseHelloRejects(t *testing.T) {
	ok, _ := EncodeHello(HelloFor("s", cic.DefaultConfig()))
	bad := map[string][]byte{
		"short":       ok[:helloFixedSize-1],
		"magic":       append([]byte("XXXX"), ok[4:]...),
		"version":     append(append(append([]byte{}, ok[:4]...), 99), ok[5:]...),
		"station-len": append(append([]byte{}, ok...), 'x'), // length field no longer matches
	}
	for name, body := range bad {
		if _, err := ParseHello(body); err == nil {
			t.Errorf("%s hello accepted", name)
		}
	}
}

func TestIQBodyRoundTrip(t *testing.T) {
	iq := []complex128{1 + 2i, -0.5 - 0.25i, 0, complex(math.Pi, -math.E)}
	body := AppendIQBody(nil, iq)
	if len(body) != 8*len(iq) {
		t.Fatalf("body %d bytes, want %d", len(body), 8*len(iq))
	}
	got, err := DecodeIQBody(nil, body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range iq {
		want := complex(float64(float32(real(iq[i]))), float64(float32(imag(iq[i]))))
		if got[i] != want {
			t.Fatalf("sample %d: got %v, want %v", i, got[i], want)
		}
	}
	if _, err := DecodeIQBody(nil, body[:len(body)-3]); err == nil {
		t.Fatal("ragged IQ body accepted")
	}
}

func TestEstimateMemoryBytes(t *testing.T) {
	cfg := cic.DefaultConfig()
	est, err := EstimateMemoryBytes(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := cic.NewGateway(cfg, cic.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	go func() {
		for range gw.Packets() {
		}
	}()
	want := gw.MaxPacketSamples() * 16 * (3 + 2*2)
	if est != want {
		t.Fatalf("estimate %d, gateway-derived %d", est, want)
	}
}
