package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cic"
	"cic/internal/fault"
	"cic/internal/obs"
	"cic/internal/server"
)

// chaosChunk is the IQ chunk size the chaos clients stream with; one
// frame is chaosChunk*8+5 bytes on the wire, so the fault offsets below
// land mid-stream.
const chaosChunk = 8192

// runStations streams each station's collision trace through clients
// built by mkClient (nil on construction failure). Every station must
// close cleanly.
func runStations(t *testing.T, traces map[string][]complex128,
	mkClient func(station string) chaosClient) {
	t.Helper()
	var wg sync.WaitGroup
	errc := make(chan error, len(traces))
	for station, iq := range traces {
		wg.Add(1)
		go func(station string, iq []complex128) {
			defer wg.Done()
			c := mkClient(station)
			if c == nil {
				errc <- fmt.Errorf("%s: client construction failed", station)
				return
			}
			for off := 0; off < len(iq); off += chaosChunk {
				end := off + chaosChunk
				if end > len(iq) {
					end = len(iq)
				}
				if err := c.WriteIQ(iq[off:end]); err != nil {
					errc <- fmt.Errorf("%s write: %w", station, err)
					return
				}
			}
			if err := c.Close(); err != nil {
				errc <- fmt.Errorf("%s close: %w", station, err)
			}
		}(station, iq)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// chaosClient is the common surface of Client and ReconnectingClient
// used by runStations.
type chaosClient interface {
	WriteIQ([]complex128) error
	Close() error
}

// helloClient dials and handshakes a plain v1 client, nil on failure.
func helloClient(t *testing.T, addr, station string, cfg cic.Config) chaosClient {
	c, err := server.Dial(addr)
	if err != nil {
		t.Errorf("%s dial: %v", station, err)
		return nil
	}
	if err := c.Hello(station, cfg); err != nil {
		t.Errorf("%s hello: %v", station, err)
		return nil
	}
	return c
}

// groupByStation splits sink records per station, preserving order.
func groupByStation(recs []server.Record) map[string][]server.Record {
	out := map[string][]server.Record{}
	for _, r := range recs {
		out[r.Station] = append(out[r.Station], r)
	}
	return out
}

// assertIdentical compares two runs' per-station record sequences
// field-by-field, ignoring only the server-assigned session id.
func assertIdentical(t *testing.T, want, got map[string][]server.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("records from %d stations, want %d", len(got), len(want))
	}
	for station, w := range want {
		g := got[station]
		if len(g) != len(w) {
			t.Fatalf("%s: %d records, want %d\n got: %+v\nwant: %+v", station, len(g), len(w), g, w)
		}
		for i := range w {
			a, b := g[i], w[i]
			a.Session, b.Session = 0, 0
			if a != b {
				t.Errorf("%s: record %d differs under faults:\n got %+v\nwant %+v", station, i, a, b)
			}
		}
	}
}

// chaosServer starts a server publishing into a fresh memSink.
func chaosServer(t *testing.T, cfg server.Config) (*server.Server, string, *memSink, *cic.Metrics) {
	t.Helper()
	sink := &memSink{}
	reg := cic.NewMetrics()
	cfg.Workers = 1
	cfg.Metrics = reg
	cfg.Sink = server.NewFanout(sink)
	srv, addr := startServer(t, cfg)
	return srv, addr, sink, reg
}

// shutdownAndCollect drains the server and returns the per-station
// record groups.
func shutdownAndCollect(t *testing.T, srv *server.Server, sink *memSink) map[string][]server.Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	return groupByStation(sink.Records(t))
}

// TestChaosResumeByteIdentical is the chaos acceptance test: eight
// concurrent resumable sessions stream under a seeded fault schedule
// that forcibly drops every session's connection at least once
// (plus stalls and partial writes); after reconnect + resume the
// published NDJSON must be identical, record for record, to a
// fault-free baseline — no gaps, no duplicates, air-time order intact.
func TestChaosResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e in -short mode")
	}
	cfg := testConfig()
	const sessions = 8
	for _, seed := range []int64{3, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			traces := make(map[string][]complex128, sessions)
			for i := 0; i < sessions; i++ {
				station := fmt.Sprintf("chaos-%d-%d", seed, i)
				iq, _ := collisionTrace(t, cfg, seed*100+int64(i), station)
				traces[station] = iq
			}

			// Fault-free baseline over the plain v1 protocol.
			baseSrv, baseAddr, baseSink, _ := chaosServer(t, server.Config{})
			runStations(t, traces, func(station string) chaosClient {
				return helloClient(t, baseAddr, station, cfg)
			})
			baseline := shutdownAndCollect(t, baseSrv, baseSink)
			for station := range traces {
				if len(baseline[station]) == 0 {
					t.Fatalf("baseline: no records for %s", station)
				}
			}

			// Faulted run: the first two connections of every station die
			// at fixed byte offsets (after a stall and a partial write);
			// later attempts are clean so the run terminates.
			srv, addr, sink, reg := chaosServer(t, server.Config{
				ParkTimeout: 30 * time.Second,
			})
			clients := make(map[string]*server.ReconnectingClient, sessions)
			var mu sync.Mutex
			runStations(t, traces, func(station string) chaosClient {
				var attempts atomic.Int64
				rc := server.NewReconnectingClient(server.ReconnectOptions{
					Station:     station,
					Config:      cfg,
					Seed:        seed,
					MaxAttempts: 20,
					BaseBackoff: 10 * time.Millisecond,
					Dial: func() (net.Conn, error) {
						conn, err := net.Dial("tcp", addr)
						if err != nil {
							return nil, err
						}
						var sched fault.Schedule
						switch attempts.Add(1) - 1 {
						case 0:
							sched.Write = []fault.Event{
								{Kind: fault.KindPartial, Offset: 8 << 10},
								{Kind: fault.KindStall, Offset: 16 << 10, Delay: 10 * time.Millisecond},
								{Kind: fault.KindDrop, Offset: 64 << 10},
							}
						case 1:
							sched.Write = []fault.Event{{Kind: fault.KindDrop, Offset: 128 << 10}}
						default:
							return conn, nil
						}
						return fault.WrapConn(conn, sched, nil), nil
					},
				})
				mu.Lock()
				clients[station] = rc
				mu.Unlock()
				return rc
			})
			for station, rc := range clients {
				if rc.Reconnects() < 1 {
					t.Errorf("%s: %d reconnects, want ≥ 1 forced disconnect", station, rc.Reconnects())
				}
			}
			faulted := shutdownAndCollect(t, srv, sink)
			assertIdentical(t, baseline, faulted)

			snap := reg.Snapshot()
			if got := snap.Counters[server.MetricResumesTotal]; got < sessions {
				t.Errorf("%s = %d, want ≥ %d", server.MetricResumesTotal, got, sessions)
			}
			if got := snap.Counters[server.MetricResumeAcks]; got == 0 {
				t.Errorf("%s = 0, want > 0", server.MetricResumeAcks)
			}
			if got := snap.Gauges[server.MetricSessionsParked]; got != 0 {
				t.Errorf("%s = %d after shutdown, want 0", server.MetricSessionsParked, got)
			}
		})
	}
}

// TestChaosWorkerPanicIsolated injects a panic into one session's
// decode worker (via the interceptor hook) and asserts blast-radius
// containment: the poisoned session fails with an ERROR frame, the
// healthy concurrent session completes with full output, the recovery
// is counted, and the daemon still accepts new sessions.
func TestChaosWorkerPanicIsolated(t *testing.T) {
	cfg := testConfig()
	marker := []byte("poison-pkt")
	srv, addr, sink, reg := chaosServer(t, server.Config{
		GatewayOptions: []cic.Option{
			cic.WithDecodeInterceptor(func(p cic.Packet) cic.Packet {
				if bytes.Contains(p.Payload, marker) {
					panic("injected decode panic")
				}
				return p
			}),
		},
	})

	healthyIQ, healthyPayloads := collisionTrace(t, cfg, 41, "healthy")
	// The trace's payloads are "<tag>-pkt-…", so tag "poison" embeds the
	// marker in every packet of this session.
	poisonIQ, _ := collisionTrace(t, cfg, 42, "poison")

	var wg sync.WaitGroup
	wg.Add(1)
	healthyErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		c, err := server.Dial(addr)
		if err == nil {
			err = c.Hello("healthy", cfg)
		}
		if err == nil {
			err = c.WriteIQ(healthyIQ)
		}
		if err == nil {
			err = c.Close()
		}
		healthyErr <- err
	}()

	// The poisoned session: stream the trace, then keep pushing quiet
	// samples until the worker panic fails the session — the server must
	// answer with an ERROR frame (or kill the connection), never crash.
	pc, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Hello("poison", cfg); err != nil {
		t.Fatal(err)
	}
	// A detected packet dispatches to a decode worker only once the
	// maximum packet span is buffered past it, so keep the quiet stream
	// flowing well beyond that point.
	werr := pc.WriteIQ(poisonIQ)
	quiet := make([]complex128, chaosChunk)
	for i := 0; i < 1000 && werr == nil; i++ {
		werr = pc.WriteIQ(quiet)
		time.Sleep(time.Millisecond)
	}
	if werr == nil {
		t.Fatal("poisoned session never failed: worker panic not propagated")
	}
	t.Logf("poisoned session failed as expected: %v", werr)
	pc.Abort()

	wg.Wait()
	if err := <-healthyErr; err != nil {
		t.Fatalf("healthy session: %v", err)
	}

	// The daemon survived: panic counted, and a fresh session still works.
	snap := reg.Snapshot()
	if got := snap.Counters[server.MetricPanicsRecovered]; got < 1 {
		t.Errorf("%s = %d, want ≥ 1", server.MetricPanicsRecovered, got)
	}
	if got := snap.Counters[obs.MetricWorkerPanics]; got < 1 {
		t.Errorf("%s = %d, want ≥ 1", obs.MetricWorkerPanics, got)
	}
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatalf("daemon unreachable after panic: %v", err)
	}
	if err := c.Hello("aftermath", cfg); err != nil {
		t.Fatalf("daemon rejects sessions after panic: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("aftermath close: %v", err)
	}

	recs := shutdownAndCollect(t, srv, sink)["healthy"]
	var ok int
	for _, r := range recs {
		if r.OK {
			ok++
		}
	}
	if ok != len(healthyPayloads) {
		t.Errorf("healthy session published %d verified packets, want %d", ok, len(healthyPayloads))
	}
}

// TestChaosProcessRestartResume models a front-end process restart (the
// scripts/smoke.sh scenario): the first client streams half the capture
// and dies abruptly; a brand-new client resumes the same station within
// the park window, learns the server's ingestion offset from Connect,
// skips that prefix, and streams the rest. The output must match an
// uninterrupted baseline.
func TestChaosProcessRestartResume(t *testing.T) {
	cfg := testConfig()
	iq, _ := collisionTrace(t, cfg, 77, "restart")
	traces := map[string][]complex128{"restart": iq}

	baseSrv, baseAddr, baseSink, _ := chaosServer(t, server.Config{})
	runStations(t, traces, func(station string) chaosClient {
		return helloClient(t, baseAddr, station, cfg)
	})
	baseline := shutdownAndCollect(t, baseSrv, baseSink)

	srv, addr, sink, reg := chaosServer(t, server.Config{ParkTimeout: 30 * time.Second})

	// First incarnation: half the capture, then an abrupt death.
	first := server.NewReconnectingClient(server.ReconnectOptions{
		Station: "restart", Config: cfg, Addr: addr,
	})
	if _, err := first.Connect(); err != nil {
		t.Fatal(err)
	}
	half := len(iq) / 2
	for off := 0; off < half; off += chaosChunk {
		end := off + chaosChunk
		if end > half {
			end = half
		}
		if err := first.WriteIQ(iq[off:end]); err != nil {
			t.Fatalf("first half write: %v", err)
		}
	}
	// Abrupt death: the server must park the session with everything it
	// ingested. ACKs lag writes, so wait until the server has
	// acknowledged the full half before killing the process — the test
	// then knows exactly which resume offset to expect.
	waitFor(t, "first half acked", func() bool { return first.Acked() == int64(half) })
	first.Abort()
	waitFor(t, "session parked", func() bool { return srv.ParkedCount() == 1 })

	// Second incarnation: a fresh client process resumes the station.
	second := server.NewReconnectingClient(server.ReconnectOptions{
		Station: "restart", Config: cfg, Addr: addr,
	})
	off, err := second.Connect()
	if err != nil {
		t.Fatal(err)
	}
	if off != int64(half) {
		t.Fatalf("resume offset %d, want %d", off, half)
	}
	for pos := int(off); pos < len(iq); pos += chaosChunk {
		end := pos + chaosChunk
		if end > len(iq) {
			end = len(iq)
		}
		if err := second.WriteIQ(iq[pos:end]); err != nil {
			t.Fatalf("second half write: %v", err)
		}
	}
	if err := second.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	faulted := shutdownAndCollect(t, srv, sink)
	assertIdentical(t, baseline, faulted)
	snap := reg.Snapshot()
	if got := snap.Counters[server.MetricResumesTotal]; got != 1 {
		t.Errorf("%s = %d, want 1", server.MetricResumesTotal, got)
	}
	if got := snap.Counters[server.MetricSessionsTotal]; got != 1 {
		t.Errorf("%s = %d, want 1 (one session across two processes)", server.MetricSessionsTotal, got)
	}
}

// TestChaosOverloadRetryAfter asserts the structured overload
// rejection: with a full daemon the handshake error surfaces as a
// *ServerError with the overload code and a retry-after hint, and is
// counted on server_overload_rejected.
func TestChaosOverloadRetryAfter(t *testing.T) {
	cfg := testConfig()
	_, addr, _, reg := chaosServer(t, server.Config{MaxSessions: 1})

	hold, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Abort()
	if err := hold.Hello("holder", cfg); err != nil {
		t.Fatal(err)
	}

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	err = c.Hello("rejected", cfg)
	if err == nil {
		t.Fatal("second session admitted past MaxSessions=1")
	}
	var se *server.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("rejection not a structured *ServerError: %v", err)
	}
	if se.Code != server.ErrCodeOverload || !se.Temporary() {
		t.Errorf("rejection code 0x%02x, want overload", se.Code)
	}
	if se.RetryAfter <= 0 {
		t.Errorf("retry-after hint %v, want > 0", se.RetryAfter)
	}
	if !strings.Contains(se.Reason, "session limit") {
		t.Errorf("reason %q does not name the limit", se.Reason)
	}
	if got := reg.Snapshot().Counters[server.MetricOverloadRejected]; got != 1 {
		t.Errorf("%s = %d, want 1", server.MetricOverloadRejected, got)
	}
}
