package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cic"
	"cic/internal/obs"
	"cic/internal/server"
)

// syncBuf is a goroutine-safe log sink for asserting on slog output.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestFlightPostMortem is the observability chaos acceptance test: a
// panic injected into one session's decode worker must leave a usable
// post-mortem trail — the daemon's flight recorder holds the offending
// session's events under its correlation id, /debug/flight serves them
// over HTTP filtered by ?cid=, and the structured log carries a
// "session post-mortem" record with the same cid and the event trail.
func TestFlightPostMortem(t *testing.T) {
	cfg := testConfig()
	marker := []byte("poison-pkt")
	flight := obs.NewFlightRecorder(256)
	logBuf := &syncBuf{}
	logger := slog.New(slog.NewJSONHandler(logBuf, nil))
	srv, addr, sink, reg := chaosServer(t, server.Config{
		Flight: flight,
		Log:    logger,
		GatewayOptions: []cic.Option{
			cic.WithDecodeInterceptor(func(p cic.Packet) cic.Packet {
				if bytes.Contains(p.Payload, marker) {
					panic("injected decode panic")
				}
				return p
			}),
		},
	})
	defer shutdownAndCollect(t, srv, sink)

	poisonIQ, _ := collisionTrace(t, cfg, 42, "poison")
	pc, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Hello("poison", cfg); err != nil {
		t.Fatal(err)
	}
	werr := pc.WriteIQ(poisonIQ)
	quiet := make([]complex128, chaosChunk)
	for i := 0; i < 1000 && werr == nil; i++ {
		werr = pc.WriteIQ(quiet)
		time.Sleep(time.Millisecond)
	}
	if werr == nil {
		t.Fatal("poisoned session never failed: worker panic not propagated")
	}
	pc.Abort()

	// The flight ring must hold the panic with the session's cid.
	var cid string
	for _, ev := range flight.Snapshot() {
		if ev.Kind == "worker_panic" && ev.Station == "poison" {
			cid = ev.CID
		}
	}
	if cid == "" {
		t.Fatalf("no worker_panic flight event for station poison; ring: %+v", flight.Snapshot())
	}

	// The whole trail for that cid: accept → panic → session fate.
	kinds := map[string]bool{}
	for _, ev := range flight.SnapshotCID(cid) {
		kinds[ev.Kind] = true
		if ev.CID != cid {
			t.Errorf("SnapshotCID leaked event with cid %q", ev.CID)
		}
	}
	for _, want := range []string{"session_accept", "worker_panic", "session_failed"} {
		if !kinds[want] {
			t.Errorf("flight trail for cid %s missing %q event (got %v)", cid, want, kinds)
		}
	}

	// /debug/flight?cid= serves the same trail over HTTP.
	ts := httptest.NewServer(cic.DebugHandler(reg, flight))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/flight?cid=" + cid)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight: status %d", resp.StatusCode)
	}
	var dump struct {
		Events []obs.FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("/debug/flight body is not JSON: %v\n%s", err, body)
	}
	httpKinds := map[string]bool{}
	for _, ev := range dump.Events {
		httpKinds[ev.Kind] = true
	}
	if !httpKinds["worker_panic"] {
		t.Errorf("/debug/flight?cid=%s missing worker_panic (got %v)", cid, httpKinds)
	}

	// The post-mortem log snapshot: serveSession dumps the failed
	// session's trail on exit. The dump races with the client Abort, so
	// poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		logs := logBuf.String()
		if strings.Contains(logs, "session post-mortem") && strings.Contains(logs, cid) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("log snapshot missing post-mortem for cid %s; logs:\n%s", cid, logs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The post-mortem line itself must carry the trail, not just the cid.
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(line, "session post-mortem") {
			continue
		}
		if !strings.Contains(line, "worker_panic") {
			t.Errorf("post-mortem log line lacks the flight trail: %s", line)
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("post-mortem log line is not JSON: %v", err)
		} else if rec["cid"] != cid {
			t.Errorf("post-mortem log cid = %v, want %s", rec["cid"], cid)
		}
	}
}

// TestFlightShedTrail: an admission-rejected (shed) connection mints a
// cid, records a shed flight event, and bumps the per-station shed
// counter — overload is observable per station even though no session
// ever exists.
func TestFlightShedTrail(t *testing.T) {
	cfg := testConfig()
	flight := obs.NewFlightRecorder(64)
	logBuf := &syncBuf{}
	srv, addr, sink, reg := chaosServer(t, server.Config{
		MaxSessions: 1,
		Flight:      flight,
		Log:         slog.New(slog.NewJSONHandler(logBuf, nil)),
	})
	defer shutdownAndCollect(t, srv, sink)

	// First session occupies the only slot.
	c1, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Hello("holder", cfg); err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Second one must shed.
	c2, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Hello("shed-station", cfg); err == nil {
		c2.Close()
		t.Fatal("second session admitted past MaxSessions=1")
	}

	var shed *obs.FlightEvent
	for _, ev := range flight.Snapshot() {
		if ev.Kind == "shed" && ev.Station == "shed-station" {
			ev := ev
			shed = &ev
			break
		}
	}
	if shed == nil {
		t.Fatalf("no shed flight event; ring: %+v", flight.Snapshot())
	}
	if shed.CID == "" {
		t.Error("shed event has no cid")
	}
	snap := reg.Snapshot()
	found := false
	for _, s := range snap.CounterVecs[server.MetricStationSheds].Series {
		if len(s.Values) == 1 && s.Values[0] == "shed-station" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("%s has no series for shed-station: %+v",
			server.MetricStationSheds, snap.CounterVecs[server.MetricStationSheds])
	}
	if logs := logBuf.String(); !strings.Contains(logs, "session shed") || !strings.Contains(logs, shed.CID) {
		t.Errorf("log missing shed dump for cid %s:\n%s", shed.CID, logs)
	}
}
