package server

import "cic/internal/obs"

// Canonical metric names for the ingestion daemon, registered on the same
// registry as the decode-pipeline metrics so one cic.DebugHandler serves
// both. docs/OBSERVABILITY.md documents each.
const (
	MetricSessionsActive    = "server_sessions_active"
	MetricSessionsTotal     = "server_sessions_total"
	MetricSessionsRejected  = "server_sessions_rejected"
	MetricHelloErrors       = "server_hello_errors"
	MetricIdleTimeouts      = "server_idle_timeouts"
	MetricFramesIngested    = "server_frames_ingested"
	MetricBytesIngested     = "server_bytes_ingested"
	MetricPacketsPublished  = "server_packets_published"
	MetricSubscribers       = "server_subscribers"
	MetricSubscriberDropped = "server_subscriber_dropped"
	MetricMemoryInUse       = "server_memory_bytes"

	// Resilience metrics (PR 5): session resume, parking, fault
	// injection, panic recovery, decode deadlines and sink retries.
	MetricSessionsParked   = "server_sessions_parked"
	MetricResumesTotal     = "server_resumes_total"
	MetricResumesExpired   = "server_resumes_expired"
	MetricResumeAcks       = "server_resume_acks"
	MetricPanicsRecovered  = "server_panics_recovered"
	MetricDecodeDeadlines  = "server_decode_deadlines"
	MetricSinkRetries      = "server_sink_retries"
	MetricFaultsInjected   = "server_faults_injected"
	MetricOverloadRejected = "server_overload_rejected"

	// Labeled per-station / per-SF families (bounded cardinality: at
	// most Config.MaxStationSeries live stations per family, LRU-evicted
	// beyond that and counted on obs_labels_evicted).
	MetricStationSessions = "server_station_sessions"          // {station}
	MetricStationFrames   = "server_station_frames_ingested"   // {station}
	MetricStationBytes    = "server_station_bytes_ingested"    // {station}
	MetricStationPackets  = "server_station_packets_published" // {station, crc}
	MetricStationResumes  = "server_station_resumes"           // {station}
	MetricStationSheds    = "server_station_sheds"             // {station}
	MetricSFPackets       = "server_sf_packets_published"      // {sf, crc}
)

// serverMetrics is the pre-resolved handle set for the daemon, mirroring
// obs.DecodeMetrics: built from a nil registry every handle is nil and
// every operation a no-op, so the disabled path costs one nil test.
type serverMetrics struct {
	SessionsActive    *obs.Gauge
	SessionsTotal     *obs.Counter
	SessionsRejected  *obs.Counter
	HelloErrors       *obs.Counter
	IdleTimeouts      *obs.Counter
	FramesIngested    *obs.Counter
	BytesIngested     *obs.Counter
	PacketsPublished  *obs.Counter
	Subscribers       *obs.Gauge
	SubscriberDropped *obs.Counter
	MemoryInUse       *obs.Gauge

	SessionsParked   *obs.Gauge
	ResumesTotal     *obs.Counter
	ResumesExpired   *obs.Counter
	ResumeAcks       *obs.Counter
	PanicsRecovered  *obs.Counter
	DecodeDeadlines  *obs.Counter
	SinkRetries      *obs.Counter
	FaultsInjected   *obs.Counter
	OverloadRejected *obs.Counter

	// Labeled families. Sessions resolve their child handles once at
	// admission (Session.setMetrics), so the frame loop and publisher
	// never touch a family's lock.
	StationSessions *obs.CounterVec
	StationFrames   *obs.CounterVec
	StationBytes    *obs.CounterVec
	StationPackets  *obs.CounterVec
	StationResumes  *obs.CounterVec
	StationSheds    *obs.CounterVec
	SFPackets       *obs.CounterVec
}

// newServerMetrics registers the daemon's metrics on r (nil-safe).
// maxStationSeries caps each per-station family's live label sets
// (obs.DefaultMaxSeries when 0).
func newServerMetrics(r *obs.Registry, maxStationSeries int) *serverMetrics {
	return &serverMetrics{
		SessionsActive:    r.Gauge(MetricSessionsActive),
		SessionsTotal:     r.Counter(MetricSessionsTotal),
		SessionsRejected:  r.Counter(MetricSessionsRejected),
		HelloErrors:       r.Counter(MetricHelloErrors),
		IdleTimeouts:      r.Counter(MetricIdleTimeouts),
		FramesIngested:    r.Counter(MetricFramesIngested),
		BytesIngested:     r.Counter(MetricBytesIngested),
		PacketsPublished:  r.Counter(MetricPacketsPublished),
		Subscribers:       r.Gauge(MetricSubscribers),
		SubscriberDropped: r.Counter(MetricSubscriberDropped),
		MemoryInUse:       r.Gauge(MetricMemoryInUse),

		SessionsParked:   r.Gauge(MetricSessionsParked),
		ResumesTotal:     r.Counter(MetricResumesTotal),
		ResumesExpired:   r.Counter(MetricResumesExpired),
		ResumeAcks:       r.Counter(MetricResumeAcks),
		PanicsRecovered:  r.Counter(MetricPanicsRecovered),
		DecodeDeadlines:  r.Counter(MetricDecodeDeadlines),
		SinkRetries:      r.Counter(MetricSinkRetries),
		FaultsInjected:   r.Counter(MetricFaultsInjected),
		OverloadRejected: r.Counter(MetricOverloadRejected),

		StationSessions: r.CounterVec(MetricStationSessions, []string{"station"}, maxStationSeries),
		StationFrames:   r.CounterVec(MetricStationFrames, []string{"station"}, maxStationSeries),
		StationBytes:    r.CounterVec(MetricStationBytes, []string{"station"}, maxStationSeries),
		StationPackets:  r.CounterVec(MetricStationPackets, []string{"station", "crc"}, maxStationSeries),
		StationResumes:  r.CounterVec(MetricStationResumes, []string{"station"}, maxStationSeries),
		StationSheds:    r.CounterVec(MetricStationSheds, []string{"station"}, maxStationSeries),
		// SF cardinality is naturally tiny (SF7–SF12 × ok/fail).
		SFPackets: r.CounterVec(MetricSFPackets, []string{"sf", "crc"}, 0),
	}
}
