package server

import "cic/internal/obs"

// Canonical metric names for the ingestion daemon, registered on the same
// registry as the decode-pipeline metrics so one cic.DebugHandler serves
// both. docs/OBSERVABILITY.md documents each.
const (
	MetricSessionsActive    = "server_sessions_active"
	MetricSessionsTotal     = "server_sessions_total"
	MetricSessionsRejected  = "server_sessions_rejected"
	MetricHelloErrors       = "server_hello_errors"
	MetricIdleTimeouts      = "server_idle_timeouts"
	MetricFramesIngested    = "server_frames_ingested"
	MetricBytesIngested     = "server_bytes_ingested"
	MetricPacketsPublished  = "server_packets_published"
	MetricSubscribers       = "server_subscribers"
	MetricSubscriberDropped = "server_subscriber_dropped"
	MetricMemoryInUse       = "server_memory_bytes"
)

// serverMetrics is the pre-resolved handle set for the daemon, mirroring
// obs.DecodeMetrics: built from a nil registry every handle is nil and
// every operation a no-op, so the disabled path costs one nil test.
type serverMetrics struct {
	SessionsActive    *obs.Gauge
	SessionsTotal     *obs.Counter
	SessionsRejected  *obs.Counter
	HelloErrors       *obs.Counter
	IdleTimeouts      *obs.Counter
	FramesIngested    *obs.Counter
	BytesIngested     *obs.Counter
	PacketsPublished  *obs.Counter
	Subscribers       *obs.Gauge
	SubscriberDropped *obs.Counter
	MemoryInUse       *obs.Gauge
}

// newServerMetrics registers the daemon's metrics on r (nil-safe).
func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		SessionsActive:    r.Gauge(MetricSessionsActive),
		SessionsTotal:     r.Counter(MetricSessionsTotal),
		SessionsRejected:  r.Counter(MetricSessionsRejected),
		HelloErrors:       r.Counter(MetricHelloErrors),
		IdleTimeouts:      r.Counter(MetricIdleTimeouts),
		FramesIngested:    r.Counter(MetricFramesIngested),
		BytesIngested:     r.Counter(MetricBytesIngested),
		PacketsPublished:  r.Counter(MetricPacketsPublished),
		Subscribers:       r.Gauge(MetricSubscribers),
		SubscriberDropped: r.Counter(MetricSubscriberDropped),
		MemoryInUse:       r.Gauge(MetricMemoryInUse),
	}
}
