package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"cic"
)

// Client is the sending side of the ingestion protocol: an SDR front
// end (or cmd/cic-feed) dials the daemon, sends one HELLO, streams IQ
// frames, and Closes — which waits for the server's drain
// acknowledgement, so a returned nil means every fully-buffered packet
// of the session has been published.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	buf  []byte // reusable IQ frame body
}

// Dial connects to a cic-gatewayd ingestion address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful for tests and
// custom transports).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		br:   bufio.NewReaderSize(conn, 4<<10),
	}
}

// Hello performs the handshake and waits for the server's verdict. On
// an ERROR reply the returned error carries the server's reason.
func (c *Client) Hello(station string, cfg cic.Config) error {
	body, err := EncodeHello(HelloFor(station, cfg))
	if err != nil {
		return err
	}
	if err := WriteFrame(c.bw, FrameHello, body); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.awaitOK("hello")
}

// awaitOK reads one server reply frame, mapping ERROR to an error.
func (c *Client) awaitOK(stage string) error {
	typ, body, err := ReadFrame(c.br)
	if err != nil {
		return fmt.Errorf("server: %s: reading reply: %w", stage, err)
	}
	switch typ {
	case FrameOK:
		return nil
	case FrameError:
		return fmt.Errorf("server: %s rejected: %s", stage, body)
	default:
		return fmt.Errorf("server: %s: unexpected reply frame 0x%02x", stage, typ)
	}
}

// WriteIQ streams samples to the session, splitting into IQ frames of
// at most MaxIQSamples.
func (c *Client) WriteIQ(iq []complex128) error {
	for len(iq) > 0 {
		n := len(iq)
		if n > MaxIQSamples {
			n = MaxIQSamples
		}
		c.buf = AppendIQBody(c.buf[:0], iq[:n])
		if err := WriteFrame(c.bw, FrameIQ, c.buf); err != nil {
			return err
		}
		iq = iq[n:]
	}
	return c.bw.Flush()
}

// StreamCF32 reads a cf32 stream (a file, cic-gen output, stdin) and
// feeds it to the session in chunks of chunkSamples (default
// MaxIQSamples/4 when ≤ 0), with constant memory. Returns the sample
// count sent.
func (c *Client) StreamCF32(r io.Reader, chunkSamples int) (int64, error) {
	if chunkSamples <= 0 {
		chunkSamples = MaxIQSamples / 4
	}
	cr := cic.NewCF32Reader(r)
	buf := make([]complex128, chunkSamples)
	var total int64
	for {
		n, err := cr.Read(buf)
		if n > 0 {
			if werr := c.WriteIQ(buf[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
		}
		if errors.Is(err, io.EOF) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// SetDeadline bounds subsequent reads and writes (e.g. around Close's
// drain wait).
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Close ends the stream: it sends CLOSE, waits for the server's drain
// acknowledgement (every fully-buffered packet published), and closes
// the connection. A nil error therefore means the session flushed
// cleanly.
func (c *Client) Close() error {
	err := WriteFrame(c.bw, FrameClose, nil)
	if err == nil {
		err = c.bw.Flush()
	}
	if err == nil {
		err = c.awaitOK("close")
	}
	if cerr := c.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes the connection without the CLOSE handshake — an abrupt
// disconnect, as when a front end loses power. The server still flushes
// whatever the session had buffered.
func (c *Client) Abort() error { return c.conn.Close() }
