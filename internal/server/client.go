package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"cic"
)

// DefaultDialTimeout bounds Dial's TCP connect: a daemon that is down
// fails fast instead of hanging the front end on SYN retries.
const DefaultDialTimeout = 10 * time.Second

// Client is the sending side of the ingestion protocol: an SDR front
// end (or cmd/cic-feed) dials the daemon, sends one HELLO, streams IQ
// frames, and Closes — which waits for the server's drain
// acknowledgement, so a returned nil means every fully-buffered packet
// of the session has been published.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	buf  []byte // reusable IQ frame body
}

// Dial connects to a cic-gatewayd ingestion address, bounded by
// DefaultDialTimeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit connect timeout (≤ 0 means no
// bound).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return DialContext(ctx, addr)
}

// DialContext is Dial bounded by ctx (cancellation and deadline apply
// to the TCP connect only, not the session).
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful for tests and
// custom transports).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		br:   bufio.NewReaderSize(conn, 4<<10),
	}
}

// Hello performs the handshake and waits for the server's verdict. On
// an ERROR reply the returned error carries the server's reason.
func (c *Client) Hello(station string, cfg cic.Config) error {
	body, err := EncodeHello(HelloFor(station, cfg))
	if err != nil {
		return err
	}
	if err := WriteFrame(c.bw, FrameHello, body); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.awaitOK("hello")
}

// Resume performs the resumable handshake (protocol v2): the server
// either reclaims a parked session for the station or opens a fresh
// resumable one, and replies with the sample offset it has already
// ingested — the client must replay its stream from that offset. On a
// resumable session the server acknowledges every IQ frame with an ACK
// carrying the updated offset (see ReconnectingClient, which consumes
// them; a synchronous caller may ignore them — awaitOK skips ACKs).
func (c *Client) Resume(station string, cfg cic.Config) (int64, error) {
	body, err := EncodeHello(HelloFor(station, cfg))
	if err != nil {
		return 0, err
	}
	if err := WriteFrame(c.bw, FrameResume, body); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	reply, err := c.awaitReply("resume")
	if err != nil {
		return 0, err
	}
	return ParseOffset(reply)
}

// awaitOK reads server reply frames until an OK (skipping interleaved
// ACKs), mapping ERROR to an error.
func (c *Client) awaitOK(stage string) error {
	_, err := c.awaitReply(stage)
	return err
}

// awaitReply returns the next OK frame's body, skipping ACK frames (a
// resumable session acknowledges each IQ frame, so ACKs may be queued
// ahead of the reply a synchronous caller is waiting for). An ERROR
// frame maps to *ServerError when its body parses as the structured v2
// layout, the raw reason string otherwise.
func (c *Client) awaitReply(stage string) ([]byte, error) {
	for {
		typ, body, err := ReadFrame(c.br)
		if err != nil {
			return nil, fmt.Errorf("server: %s: reading reply: %w", stage, err)
		}
		switch typ {
		case FrameOK:
			return body, nil
		case FrameAck:
			continue
		case FrameError:
			if se, perr := ParseErrorBody(body); perr == nil {
				return nil, fmt.Errorf("server: %s rejected: %w", stage, se)
			}
			return nil, fmt.Errorf("server: %s rejected: %s", stage, body)
		default:
			return nil, fmt.Errorf("server: %s: unexpected reply frame 0x%02x", stage, typ)
		}
	}
}

// WriteIQ streams samples to the session, splitting into IQ frames of
// at most MaxIQSamples.
func (c *Client) WriteIQ(iq []complex128) error {
	for len(iq) > 0 {
		n := len(iq)
		if n > MaxIQSamples {
			n = MaxIQSamples
		}
		c.buf = AppendIQBody(c.buf[:0], iq[:n])
		if err := WriteFrame(c.bw, FrameIQ, c.buf); err != nil {
			return err
		}
		iq = iq[n:]
	}
	return c.bw.Flush()
}

// StreamCF32 reads a cf32 stream (a file, cic-gen output, stdin) and
// feeds it to the session in chunks of chunkSamples (default
// MaxIQSamples/4 when ≤ 0), with constant memory. Returns the sample
// count sent.
func (c *Client) StreamCF32(r io.Reader, chunkSamples int) (int64, error) {
	if chunkSamples <= 0 {
		chunkSamples = MaxIQSamples / 4
	}
	cr := cic.NewCF32Reader(r)
	buf := make([]complex128, chunkSamples)
	var total int64
	for {
		n, err := cr.Read(buf)
		if n > 0 {
			if werr := c.WriteIQ(buf[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
		}
		if errors.Is(err, io.EOF) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// SetDeadline bounds subsequent reads and writes (e.g. around Close's
// drain wait).
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Close ends the stream: it sends CLOSE, waits for the server's drain
// acknowledgement (every fully-buffered packet published), and closes
// the connection. A nil error therefore means the session flushed
// cleanly.
func (c *Client) Close() error {
	err := WriteFrame(c.bw, FrameClose, nil)
	if err == nil {
		err = c.bw.Flush()
	}
	if err == nil {
		err = c.awaitOK("close")
	}
	if cerr := c.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes the connection without the CLOSE handshake — an abrupt
// disconnect, as when a front end loses power. The server still flushes
// whatever the session had buffered.
func (c *Client) Abort() error { return c.conn.Close() }
