package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cic"
	"cic/internal/obs"
)

// Session is one ingestion stream: a dedicated cic.Gateway plus the
// publisher goroutine that forwards its decoded packets to the sink as
// Records. The daemon runs one per connection; a *resumable* session
// (opened with FrameResume) can outlive its connection — the server
// parks it on disconnect and a reconnecting client picks it up again.
// Tests construct Sessions directly.
type Session struct {
	// ID is the server-assigned session number (unique per Server).
	ID uint64
	// Station is the HELLO station identifier.
	Station string
	// Resumable records that the session was opened with FrameResume:
	// the server acks ingestion progress and parks it on disconnect.
	Resumable bool
	// CID is the session correlation id minted at HELLO; it survives
	// park/resume, stamping every log line and flight event of the
	// stream's whole life across reconnects.
	CID string

	gw   *cic.Gateway
	sink *Fanout
	m    *serverMetrics
	sf   string // SF label value, from the HELLO

	// log carries the session's structured logger (nil = silent) and
	// flight the recorder scope (nil = disabled); both are stamped with
	// cid/station and are safe to use from any session goroutine.
	log    *slog.Logger
	flight *obs.FlightScope

	// Per-station / per-SF child handles, resolved once at setMetrics so
	// the frame loop and publisher never take a vec lock. Nil (no-op)
	// when metrics are disabled.
	stFrames  *obs.Counter
	stBytes   *obs.Counter
	stPktOK   *obs.Counter
	stPktFail *obs.Counter
	sfPktOK   *obs.Counter
	sfPktFail *obs.Counter

	// MemoryBytes is the session's accounted footprint: the gateway ring
	// (3× the max packet) plus up to 2×workers in-flight sample
	// snapshots, at 16 bytes per complex128.
	MemoryBytes int64

	// ingested counts samples accepted into the Gateway — the resume
	// offset acked to resumable clients. writeTimeout bounds one Write's
	// decode admission (0 = unbounded).
	ingested     atomic.Int64
	writeTimeout time.Duration

	// failErr records the first unrecoverable session fault (a recovered
	// decode panic, a decode deadline); once set, Write refuses and the
	// connection handler fails the session with an ERROR frame.
	failMu  sync.Mutex
	failErr error

	drainOnce sync.Once
	pubDone   chan struct{}
}

// EstimateMemoryBytes predicts a session's accounted footprint for
// admission control without building the Gateway: the ring holds 3× the
// maximum packet and the dispatch path keeps up to 2×workers snapshots
// in flight, 16 bytes per sample.
func EstimateMemoryBytes(cfg cic.Config, workers int) (int64, error) {
	maxPkt, err := cfg.PacketSamples(255)
	if err != nil {
		return 0, err
	}
	return int64(maxPkt) * 16 * int64(3+2*workers), nil
}

// SessionOptions parameterises NewSession beyond the handshake.
type SessionOptions struct {
	// Workers is the decode pool size (≤ 0 selects the gateway default).
	Workers int
	// Metrics aggregates decode metrics across sessions (nil disables).
	Metrics *cic.Metrics
	// DecodeTimeout bounds one Write's decode admission; when exceeded the
	// session fails (and is drained) rather than wedging its connection
	// handler forever (0 = unbounded).
	DecodeTimeout time.Duration
	// Resumable marks the session resumable (see Session.Resumable).
	Resumable bool
	// GatewayOptions are appended to the per-session Gateway's options
	// (after the defaults, so they may override WithWorkers etc.).
	GatewayOptions []cic.Option
	// CID is the correlation id minted at HELLO ("" lets the session
	// mint its own, so direct test construction still gets one).
	CID string
	// Log receives the session's structured log events (nil = silent);
	// the session derives a child logger stamped with cid/station.
	Log *slog.Logger
	// Flight is the daemon's flight recorder (nil = disabled); the
	// session derives a scope stamped with cid/station and threads it
	// into the Gateway for emit/panic events.
	Flight *obs.FlightRecorder
}

// NewSession validates the handshake's configuration, builds its
// Gateway (decode metrics land on reg when non-nil, aggregating across
// sessions) and starts the publisher. workers ≤ 0 selects the gateway
// default (GOMAXPROCS).
func NewSession(id uint64, h Hello, workers int, reg *cic.Metrics, sink *Fanout) (*Session, error) {
	return NewSessionOpts(id, h, SessionOptions{Workers: workers, Metrics: reg}, sink)
}

// NewSessionOpts is NewSession with the full option set.
func NewSessionOpts(id uint64, h Hello, o SessionOptions, sink *Fanout) (*Session, error) {
	cfg := h.Config()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cid := o.CID
	if cid == "" {
		cid = MintCID()
	}
	s := &Session{
		ID:           id,
		Station:      h.Station,
		Resumable:    o.Resumable,
		CID:          cid,
		sink:         sink,
		m:            newServerMetrics(nil, 0),
		sf:           strconv.Itoa(h.SF),
		flight:       o.Flight.Scope(cid, h.Station),
		writeTimeout: o.DecodeTimeout,
		pubDone:      make(chan struct{}),
	}
	if o.Log != nil {
		s.log = o.Log.With("cid", cid, "station", h.Station, "session", id)
	}
	opts := []cic.Option{cic.WithWorkers(o.Workers)}
	if o.Metrics != nil {
		opts = append(opts, cic.WithMetrics(o.Metrics))
	}
	if s.flight != nil {
		opts = append(opts, cic.WithFlightScope(s.flight))
	}
	opts = append(opts, o.GatewayOptions...)
	// The panic hook is installed last so a worker panic always fails
	// exactly this session, even when GatewayOptions carries its own
	// experimental hooks.
	opts = append(opts, cic.WithPanicHook(s.onPanic))
	gw, err := cic.NewGateway(cfg, opts...)
	if err != nil {
		return nil, err
	}
	s.gw = gw
	workers := o.Workers
	if workers <= 0 {
		workers = gw.Workers()
	}
	s.MemoryBytes = gw.MaxPacketSamples() * 16 * int64(3+2*workers)
	go s.publish()
	return s, nil
}

// setMetrics attaches the daemon metric handles and resolves the
// session's per-station / per-SF children once, off the frame loop
// (Server wires this before the first Write; tests may leave the no-op
// set).
func (s *Session) setMetrics(m *serverMetrics) {
	s.m = m
	s.stFrames = m.StationFrames.With(s.Station)
	s.stBytes = m.StationBytes.With(s.Station)
	s.stPktOK = m.StationPackets.With(s.Station, "ok")
	s.stPktFail = m.StationPackets.With(s.Station, "fail")
	s.sfPktOK = m.SFPackets.With(s.sf, "ok")
	s.sfPktFail = m.SFPackets.With(s.sf, "fail")
}

// logError logs a session-scoped error event (silent without a logger).
func (s *Session) logError(msg string, args ...any) {
	if s.log != nil {
		s.log.Error(msg, args...)
	}
}

// onPanic is the Gateway's panic hook: a recovered decode-worker panic
// fails this session (and only this session) — the daemon keeps serving
// every other connection.
func (s *Session) onPanic(stage string, recovered any) {
	s.m.PanicsRecovered.Inc()
	// The gateway already put a worker_panic event in the flight ring
	// (same scope); here we add the session-fate consequence.
	s.flight.RecordErr("session_failed", "decode "+stage+" worker panic", fmt.Sprint(recovered))
	s.logError("decode worker panic", "stage", stage, "panic", fmt.Sprint(recovered))
	s.fail(fmt.Errorf("decode %s worker panic: %v", stage, recovered))
}

// fail records the session's first fault and drains it asynchronously
// (Drain cannot run on the faulting goroutine: a worker draining its own
// pool would deadlock). Subsequent Writes surface the fault.
func (s *Session) fail(err error) {
	s.failMu.Lock()
	if s.failErr == nil {
		s.failErr = err
	}
	s.failMu.Unlock()
	go func() { _ = s.Drain() }()
}

// Failed returns the session's recorded fault, nil while healthy.
func (s *Session) Failed() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failErr
}

// Write pushes IQ samples into the session's Gateway. After Drain it
// returns cic.ErrGatewayClosed. It may block under decode backpressure —
// that is the mechanism that propagates flow control to the TCP stream —
// but never past the session's write timeout: a decode pipeline that
// cannot admit one IQ frame within the deadline fails this session
// (counted in server_decode_deadlines) instead of wedging its handler.
// A panic escaping the ingest-side decode path (detection, header
// demodulation) is likewise contained to this session.
func (s *Session) Write(iq []complex128) (err error) {
	if ferr := s.Failed(); ferr != nil {
		return fmt.Errorf("session failed: %w", ferr)
	}
	defer func() {
		if v := recover(); v != nil {
			s.m.PanicsRecovered.Inc()
			s.flight.RecordErr("ingest_panic", "detection/header decode", fmt.Sprint(v))
			s.logError("decode ingest panic", "panic", fmt.Sprint(v))
			err = fmt.Errorf("decode ingest panic: %v", v)
			s.fail(err)
		}
	}()
	if s.writeTimeout > 0 {
		t := time.AfterFunc(s.writeTimeout, func() {
			s.m.DecodeDeadlines.Inc()
			s.flight.RecordErr("decode_deadline", "one IQ frame's decode admission", s.writeTimeout.String())
			s.logError("decode deadline exceeded", "timeout", s.writeTimeout)
			s.fail(fmt.Errorf("decode deadline exceeded (%v)", s.writeTimeout))
		})
		defer t.Stop()
	}
	if _, err := s.gw.Write(iq); err != nil {
		if ferr := s.Failed(); ferr != nil {
			return fmt.Errorf("session failed: %w", ferr)
		}
		return err
	}
	s.ingested.Add(int64(len(iq)))
	return nil
}

// Ingested reports the samples accepted into the Gateway so far — the
// offset acked to resumable clients and returned on RESUME.
func (s *Session) Ingested() int64 { return s.ingested.Load() }

// publish forwards every decoded packet to the sink in the Gateway's
// delivery (air-time) order.
func (s *Session) publish() {
	defer close(s.pubDone)
	seq := 0
	for pkt := range s.gw.Packets() {
		s.sink.Publish(Record{
			Station:      s.Station,
			Session:      s.ID,
			Seq:          seq,
			Start:        pkt.Start,
			OK:           pkt.OK,
			SNRdB:        pkt.SNR,
			CFOHz:        pkt.CFO,
			FECCorrected: pkt.FECCorrected,
			Payload:      hex.EncodeToString(pkt.Payload),
		})
		s.m.PacketsPublished.Inc()
		if pkt.OK {
			s.stPktOK.Inc()
			s.sfPktOK.Inc()
		} else {
			s.stPktFail.Inc()
			s.sfPktFail.Inc()
		}
		if s.log != nil {
			s.log.Debug("packet published",
				"seq", seq, "start", pkt.Start, "crc_ok", pkt.OK,
				"payload_len", len(pkt.Payload), "snr_db", pkt.SNR)
		}
		seq++
	}
}

// Drain flushes the Gateway — decoding every packet whose samples are
// fully buffered — and blocks until the publisher has delivered the
// resulting records to the sink. Idempotent and safe to call
// concurrently with Write.
func (s *Session) Drain() error {
	var err error
	s.drainOnce.Do(func() { err = s.gw.Close() })
	<-s.pubDone
	return err
}

// Stats exposes the shared registry snapshot (zero when detached).
func (s *Session) Stats() cic.Stats { return s.gw.Stats() }

// String identifies the session in logs.
func (s *Session) String() string {
	return fmt.Sprintf("session %d (station %q)", s.ID, s.Station)
}

// MintCID returns a fresh session correlation id (8 random bytes,
// hex): minted at HELLO, carried through accept → decode → publish →
// park → resume in every log line and flight event.
func MintCID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("cid-%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
