package server

import (
	"encoding/hex"
	"fmt"
	"sync"

	"cic"
)

// Session is one ingestion stream: a dedicated cic.Gateway plus the
// publisher goroutine that forwards its decoded packets to the sink as
// Records. The daemon runs one per connection; tests construct them
// directly.
type Session struct {
	// ID is the server-assigned session number (unique per Server).
	ID uint64
	// Station is the HELLO station identifier.
	Station string

	gw   *cic.Gateway
	sink *Fanout
	m    *serverMetrics

	// MemoryBytes is the session's accounted footprint: the gateway ring
	// (3× the max packet) plus up to 2×workers in-flight sample
	// snapshots, at 16 bytes per complex128.
	MemoryBytes int64

	drainOnce sync.Once
	pubDone   chan struct{}
}

// EstimateMemoryBytes predicts a session's accounted footprint for
// admission control without building the Gateway: the ring holds 3× the
// maximum packet and the dispatch path keeps up to 2×workers snapshots
// in flight, 16 bytes per sample.
func EstimateMemoryBytes(cfg cic.Config, workers int) (int64, error) {
	maxPkt, err := cfg.PacketSamples(255)
	if err != nil {
		return 0, err
	}
	return int64(maxPkt) * 16 * int64(3+2*workers), nil
}

// NewSession validates the handshake's configuration, builds its
// Gateway (decode metrics land on reg when non-nil, aggregating across
// sessions) and starts the publisher. workers ≤ 0 selects the gateway
// default (GOMAXPROCS).
func NewSession(id uint64, h Hello, workers int, reg *cic.Metrics, sink *Fanout) (*Session, error) {
	cfg := h.Config()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opts := []cic.Option{cic.WithWorkers(workers)}
	if reg != nil {
		opts = append(opts, cic.WithMetrics(reg))
	}
	gw, err := cic.NewGateway(cfg, opts...)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = gw.Workers()
	}
	s := &Session{
		ID:          id,
		Station:     h.Station,
		gw:          gw,
		sink:        sink,
		m:           newServerMetrics(nil),
		MemoryBytes: gw.MaxPacketSamples() * 16 * int64(3+2*workers),
		pubDone:     make(chan struct{}),
	}
	go s.publish()
	return s, nil
}

// setMetrics attaches the daemon metric handles (Server wires this
// before the first Write; tests may leave the no-op set).
func (s *Session) setMetrics(m *serverMetrics) { s.m = m }

// publish forwards every decoded packet to the sink in the Gateway's
// delivery (air-time) order.
func (s *Session) publish() {
	defer close(s.pubDone)
	seq := 0
	for pkt := range s.gw.Packets() {
		s.sink.Publish(Record{
			Station:      s.Station,
			Session:      s.ID,
			Seq:          seq,
			Start:        pkt.Start,
			OK:           pkt.OK,
			SNRdB:        pkt.SNR,
			CFOHz:        pkt.CFO,
			FECCorrected: pkt.FECCorrected,
			Payload:      hex.EncodeToString(pkt.Payload),
		})
		s.m.PacketsPublished.Inc()
		seq++
	}
}

// Write pushes IQ samples into the session's Gateway. After Drain it
// returns cic.ErrGatewayClosed. It may block under decode backpressure —
// that is the mechanism that propagates flow control to the TCP stream.
func (s *Session) Write(iq []complex128) error {
	_, err := s.gw.Write(iq)
	return err
}

// Drain flushes the Gateway — decoding every packet whose samples are
// fully buffered — and blocks until the publisher has delivered the
// resulting records to the sink. Idempotent and safe to call
// concurrently with Write.
func (s *Session) Drain() error {
	var err error
	s.drainOnce.Do(func() { err = s.gw.Close() })
	<-s.pubDone
	return err
}

// Stats exposes the shared registry snapshot (zero when detached).
func (s *Session) Stats() cic.Stats { return s.gw.Stats() }

// String identifies the session in logs.
func (s *Session) String() string {
	return fmt.Sprintf("session %d (station %q)", s.ID, s.Station)
}
