package server_test

import (
	"bufio"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cic"
	"cic/internal/obs"
	"cic/internal/server"
)

// TestServerLoopbackE2E is the acceptance loopback: 8 concurrent
// clients each feed a synthetic 3-packet collision capture into the
// daemon; a TCP subscriber must receive every ground-truth payload as
// NDJSON, in air-time order within each session, and after a graceful
// drain the metrics registry must agree with what the subscriber saw.
func TestServerLoopbackE2E(t *testing.T) {
	cfg := testConfig()
	reg := cic.NewMetrics()
	sink := server.NewFanout()
	srv := server.New(server.Config{
		Workers: 1, // eight sessions run concurrently; keep each pool small
		Metrics: reg,
		Sink:    sink,
	})

	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(dataLn)
	go srv.ServePub(pubLn)

	// Attach the subscriber before any session starts so it sees every
	// record; reading runs concurrently so TCP buffers never stall the
	// publishers.
	sub, err := net.Dial("tcp", pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, "subscriber attach", func() bool { return sink.Subscribers() == 1 })
	type subResult struct {
		records []server.Record
		err     error
	}
	subDone := make(chan subResult, 1)
	go func() {
		var res subResult
		sc := bufio.NewScanner(sub)
		sc.Buffer(make([]byte, 64<<10), 64<<10)
		for sc.Scan() {
			var r server.Record
			if res.err = json.Unmarshal(sc.Bytes(), &r); res.err != nil {
				break
			}
			res.records = append(res.records, r)
		}
		subDone <- res
	}()

	// Eight concurrent sessions, each a distinct 3-packet collision.
	const sessions = 8
	truth := make(map[string][][]byte, sessions)
	var truthMu sync.Mutex
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			station := fmt.Sprintf("station-%d", i)
			iq, payloads := collisionTrace(t, cfg, int64(100+i), station)
			truthMu.Lock()
			truth[station] = payloads
			truthMu.Unlock()

			c, err := server.Dial(dataLn.Addr().String())
			if err != nil {
				errc <- fmt.Errorf("%s dial: %w", station, err)
				return
			}
			if err := c.Hello(station, cfg); err != nil {
				errc <- fmt.Errorf("%s hello: %w", station, err)
				return
			}
			for off := 0; off < len(iq); off += 16384 {
				end := off + 16384
				if end > len(iq) {
					end = len(iq)
				}
				if err := c.WriteIQ(iq[off:end]); err != nil {
					errc <- fmt.Errorf("%s write: %w", station, err)
					return
				}
			}
			// Close waits for the server's drain acknowledgement: when it
			// returns, every packet of this session has been published.
			if err := c.Close(); err != nil {
				errc <- fmt.Errorf("%s close: %w", station, err)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Graceful drain, then close the sink: the subscriber connection ends,
	// so its reader returns the complete record set.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("sink close: %v", err)
	}
	sub.SetReadDeadline(time.Now().Add(30 * time.Second))
	res := <-subDone
	if res.err != nil {
		t.Fatalf("subscriber: %v", res.err)
	}

	// Every ground-truth payload arrives OK, in air-time order per session.
	perStation := map[string][]server.Record{}
	for _, r := range res.records {
		perStation[r.Station] = append(perStation[r.Station], r)
	}
	if len(perStation) != sessions {
		t.Fatalf("records from %d stations, want %d", len(perStation), sessions)
	}
	for station, payloads := range truth {
		recs := perStation[station]
		prevStart := int64(-1)
		prevSeq := -1
		var okPayloads []string
		for _, r := range recs {
			if r.Start < prevStart {
				t.Errorf("%s: record starts out of air-time order: %d after %d", station, r.Start, prevStart)
			}
			if r.Seq != prevSeq+1 {
				t.Errorf("%s: sequence gap: %d after %d", station, r.Seq, prevSeq)
			}
			prevStart, prevSeq = r.Start, r.Seq
			if r.OK {
				okPayloads = append(okPayloads, r.Payload)
			}
		}
		if len(okPayloads) != len(payloads) {
			t.Fatalf("%s: %d verified decodes, want %d (records %+v)", station, len(okPayloads), len(payloads), recs)
		}
		for j, want := range payloads {
			if okPayloads[j] != hex.EncodeToString(want) {
				t.Errorf("%s: packet %d payload %s, want %x", station, j, okPayloads[j], want)
			}
		}
	}

	// The registry must agree with the subscriber's view.
	snap := reg.Snapshot()
	if got := snap.Counters[server.MetricSessionsTotal]; got != sessions {
		t.Errorf("%s = %d, want %d", server.MetricSessionsTotal, got, sessions)
	}
	if got := snap.Gauges[server.MetricSessionsActive]; got != 0 {
		t.Errorf("%s = %d after drain, want 0", server.MetricSessionsActive, got)
	}
	if got := snap.Counters[server.MetricPacketsPublished]; got != int64(len(res.records)) {
		t.Errorf("%s = %d, subscriber saw %d", server.MetricPacketsPublished, got, len(res.records))
	}
	if got := snap.Counters[obs.MetricPacketsEmitted]; got != int64(len(res.records)) {
		t.Errorf("%s = %d, subscriber saw %d", obs.MetricPacketsEmitted, got, len(res.records))
	}
	if got := snap.Counters[server.MetricFramesIngested]; got == 0 {
		t.Error("no IQ frames counted")
	}
	if got := snap.Counters[server.MetricBytesIngested]; got == 0 {
		t.Error("no IQ bytes counted")
	}
}
