package server

import (
	"bytes"
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzPublishLineFraming hardens the NDJSON sink's framing invariant:
// whatever bytes end up in a Record (station ids arrive from the wire,
// payload hex comes from decoded packets), Publish must emit exactly one
// line — a single trailing newline, none embedded — and the line must
// unmarshal back to the same record. Consumers split the subscriber
// stream on '\n', so an embedded newline would silently corrupt every
// downstream parser.
func FuzzPublishLineFraming(f *testing.F) {
	f.Add("station-1", uint64(1), int64(0), "deadbeef", 2.5, -120.0)
	f.Add("st\nation", uint64(0), int64(-5), "", 0.0, 0.0)
	f.Add("", uint64(1<<63), int64(1<<40), "00ff", -3.25, 4.75e3)
	f.Add("utf8 é世", uint64(7), int64(9), "zz not hex", 1.0, 2.0)
	f.Fuzz(func(t *testing.T, station string, session uint64, start int64, payload string, snr, cfo float64) {
		rec := Record{
			Station: station,
			Session: session,
			Seq:     3,
			Start:   start,
			OK:      start%2 == 0,
			SNRdB:   snr,
			CFOHz:   cfo,
			Payload: payload,
		}
		var buf bytes.Buffer
		fan := NewFanout(&buf)
		fan.Publish(rec)
		if err := fan.Close(); err != nil {
			t.Fatal(err)
		}
		out := buf.Bytes()
		if len(out) == 0 {
			// NaN SNR/CFO cannot marshal; Publish drops the record whole
			// rather than emitting a broken line. No partial output allowed.
			if _, err := json.Marshal(rec); err == nil {
				t.Fatal("record dropped despite being marshalable")
			}
			return
		}
		if out[len(out)-1] != '\n' {
			t.Fatalf("output not newline-terminated: %q", out)
		}
		if bytes.IndexByte(out[:len(out)-1], '\n') != -1 {
			t.Fatalf("embedded newline breaks NDJSON framing: %q", out)
		}
		var got Record
		if err := json.Unmarshal(out[:len(out)-1], &got); err != nil {
			t.Fatalf("published line does not unmarshal: %v (%q)", err, out)
		}
		// json.Marshal coerces invalid UTF-8 to U+FFFD, so string fields
		// round-trip exactly only when valid; the numeric fields always must.
		if utf8.ValidString(rec.Station) && utf8.ValidString(rec.Payload) {
			if got != rec {
				t.Fatalf("round trip mismatch: got %+v want %+v", got, rec)
			}
		} else {
			got.Station, got.Payload = rec.Station, rec.Payload
			if got != rec {
				t.Fatalf("non-string fields mismatch: got %+v want %+v", got, rec)
			}
		}
	})
}
