package server

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestErrorBodyRoundTrip(t *testing.T) {
	cases := []struct {
		code       byte
		retryAfter time.Duration
		reason     string
	}{
		{ErrCodeGeneric, 0, "bad handshake"},
		{ErrCodeOverload, 1500 * time.Millisecond, "session limit reached (64 active)"},
		{ErrCodeOverload, time.Second, ""},
	}
	for _, c := range cases {
		body := EncodeErrorBody(c.code, c.retryAfter, c.reason)
		if len(body) > MaxErrorBody {
			t.Fatalf("encoded body %d bytes exceeds MaxErrorBody", len(body))
		}
		se, err := ParseErrorBody(body)
		if err != nil {
			t.Fatalf("ParseErrorBody(%v): %v", c, err)
		}
		if se.Code != c.code || se.RetryAfter != c.retryAfter || se.Reason != c.reason {
			t.Errorf("round trip %+v, want %+v", se, c)
		}
	}
}

func TestErrorBodyTruncatesReason(t *testing.T) {
	long := strings.Repeat("x", 2*MaxErrorBody)
	body := EncodeErrorBody(ErrCodeGeneric, 0, long)
	if len(body) != MaxErrorBody {
		t.Fatalf("truncated body %d bytes, want exactly MaxErrorBody (%d)", len(body), MaxErrorBody)
	}
	se, err := ParseErrorBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(long, se.Reason) || len(se.Reason) != MaxErrorBody-5 {
		t.Errorf("reason truncated wrong: %d bytes", len(se.Reason))
	}
}

func TestParseErrorBodyRejectsShort(t *testing.T) {
	for _, n := range []int{0, 1, 4} {
		if _, err := ParseErrorBody(make([]byte, n)); err == nil {
			t.Errorf("ParseErrorBody accepted %d-byte body", n)
		}
	}
}

func TestServerErrorSemantics(t *testing.T) {
	over := &ServerError{Code: ErrCodeOverload, RetryAfter: time.Second, Reason: "memory budget exceeded"}
	if !over.Temporary() {
		t.Error("overload not Temporary")
	}
	if !strings.Contains(over.Error(), "memory budget exceeded") || !strings.Contains(over.Error(), "retry after") {
		t.Errorf("Error() = %q, want reason + retry hint", over.Error())
	}
	term := &ServerError{Code: ErrCodeGeneric, Reason: "bad frame"}
	if term.Temporary() {
		t.Error("generic failure reported Temporary")
	}
	if term.Error() != "bad frame" {
		t.Errorf("Error() = %q, want bare reason", term.Error())
	}
	// errors.As must reach a wrapped ServerError (the client wraps with %w).
	wrapped := errWrap(over)
	var se *ServerError
	if !errors.As(wrapped, &se) || se != over {
		t.Error("errors.As failed to unwrap ServerError")
	}
}

func errWrap(err error) error { return &wrapErr{err} }

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }

func TestOffsetRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, 8192, 1 << 40} {
		got, err := ParseOffset(EncodeOffset(n))
		if err != nil {
			t.Fatalf("ParseOffset(EncodeOffset(%d)): %v", n, err)
		}
		if got != n {
			t.Errorf("offset %d round-tripped to %d", n, got)
		}
	}
	if got, err := ParseOffset(nil); err != nil || got != 0 {
		t.Errorf("empty body → (%d, %v), want (0, nil)", got, err)
	}
	for _, n := range []int{1, 7, 9} {
		if _, err := ParseOffset(make([]byte, n)); err == nil {
			t.Errorf("ParseOffset accepted %d-byte body", n)
		}
	}
	if _, err := ParseOffset([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("ParseOffset accepted an offset overflowing int64")
	}
}

func TestMaxBodyV2Frames(t *testing.T) {
	if got := MaxBody(FrameResume); got != MaxHelloBody {
		t.Errorf("MaxBody(RESUME) = %d, want %d", got, MaxHelloBody)
	}
	if got := MaxBody(FrameAck); got != AckBody {
		t.Errorf("MaxBody(ACK) = %d, want %d", got, AckBody)
	}
	if got := MaxBody(FrameOK); got != MaxOKBody {
		t.Errorf("MaxBody(OK) = %d, want %d", got, MaxOKBody)
	}
}
