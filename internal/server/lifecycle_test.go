package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cic"
	"cic/internal/server"
)

// testConfig is the PHY configuration used across the server tests:
// the paper's SF8/250k setup at CR 4/7, matching the gateway streaming
// tests' tolerance for marginal ±1-bin slips.
func testConfig() cic.Config {
	cfg := cic.DefaultConfig()
	cfg.CodingRate = 3
	return cfg
}

// collisionTrace synthesises a deterministic three-packet collision for
// one session, returning the IQ (with a quiet tail) and the ground-truth
// payloads in air-time order.
func collisionTrace(t testing.TB, cfg cic.Config, seed int64, tag string) ([]complex128, [][]byte) {
	t.Helper()
	sym := int64(cfg.SamplesPerSymbol())
	payloads := [][]byte{
		[]byte(tag + "-pkt-alpha"),
		[]byte(tag + "-pkt-bravo"),
		[]byte(tag + "-pkt-charl"),
	}
	src, err := cic.SimulateCollision(cfg, []cic.Emission{
		{Payload: payloads[0], StartSample: 4096, SNR: 27, CFO: 1500},
		{Payload: payloads[1], StartSample: 4096 + 13*sym + 211, SNR: 24, CFO: -2400},
		{Payload: payloads[2], StartSample: 4096 + 26*sym + 97, SNR: 25, CFO: 800},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	iq := cic.Samples(src)
	iq = append(iq, make([]complex128, 8*cfg.SamplesPerSymbol())...)
	return iq, payloads
}

// memSink is a concurrency-safe NDJSON capture for Fanout writers.
type memSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (m *memSink) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.Write(p)
}

func (m *memSink) Records(t testing.TB) []server.Record {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []server.Record
	for _, line := range bytes.Split(m.buf.Bytes(), []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var r server.Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, r)
	}
	return out
}

// startServer launches a server on a loopback listener and returns it
// with its ingestion address.
func startServer(t testing.TB, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionWriteAfterDrain: a drained session's Write must surface
// cic.ErrGatewayClosed, and Drain must be idempotent.
func TestSessionWriteAfterDrain(t *testing.T) {
	sink := server.NewFanout()
	sess, err := server.NewSession(1, server.HelloFor("wac", testConfig()), 1, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Write(make([]complex128, 1024)); err != nil {
		t.Fatalf("live Write: %v", err)
	}
	if err := sess.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := sess.Write(make([]complex128, 1024)); !errors.Is(err, cic.ErrGatewayClosed) {
		t.Fatalf("Write after Drain = %v, want cic.ErrGatewayClosed", err)
	}
	if err := sess.Drain(); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestServerAbruptDisconnect: a client vanishing mid-packet must not
// strand the session, and every fully-buffered packet must still be
// decoded and published.
func TestServerAbruptDisconnect(t *testing.T) {
	cfg := testConfig()
	sink := &memSink{}
	reg := cic.NewMetrics()
	srv, addr := startServer(t, server.Config{
		Workers: 1, Metrics: reg, Sink: server.NewFanout(sink),
	})

	iq, payloads := collisionTrace(t, cfg, 61, "abrupt")
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hello("abrupt", cfg); err != nil {
		t.Fatal(err)
	}
	// Stop four symbols short of the third packet's end: packets one and
	// two are fully buffered, the third is truncated mid-air.
	pktSamples, err := cfg.PacketSamples(len(payloads[2]))
	if err != nil {
		t.Fatal(err)
	}
	start3 := 4096 + 26*int64(cfg.SamplesPerSymbol()) + 97
	cut := int(start3) + pktSamples - 4*cfg.SamplesPerSymbol()
	if err := c.WriteIQ(iq[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "session teardown", func() bool { return srv.SessionCount() == 0 })

	var okPayloads []string
	for _, r := range sink.Records(t) {
		if r.OK {
			okPayloads = append(okPayloads, r.Payload)
		}
	}
	for _, want := range payloads[:2] {
		if !contains(okPayloads, fmt.Sprintf("%x", want)) {
			t.Errorf("fully-buffered payload %q not published after abrupt disconnect (got %v)", want, okPayloads)
		}
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestServerShutdownConcurrentWrites: SIGTERM-style Shutdown while
// clients are mid-write must drain cleanly — writers see an orderly
// session end, no goroutine leaks, sessions gone.
func TestServerShutdownConcurrentWrites(t *testing.T) {
	cfg := testConfig()
	srv, addr := startServer(t, server.Config{Workers: 1, Sink: server.NewFanout()})

	const clients = 3
	started := make(chan struct{}, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Abort()
			if err := c.Hello(fmt.Sprintf("shutdown-%d", i), cfg); err != nil {
				t.Error(err)
				return
			}
			started <- struct{}{}
			chunk := make([]complex128, 8192)
			for {
				if err := c.WriteIQ(chunk); err != nil {
					return // server drained underneath us — expected
				}
			}
		}(i)
	}
	for i := 0; i < clients; i++ {
		<-started
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survive shutdown", n)
	}
}

// TestServerAdmissionLimits: the session-count and memory-budget
// limiters must reject with the reason on the wire.
func TestServerAdmissionLimits(t *testing.T) {
	cfg := testConfig()
	reg := cic.NewMetrics()
	_, addr := startServer(t, server.Config{
		Workers: 1, MaxSessions: 1, Metrics: reg, Sink: server.NewFanout(),
	})

	first, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Abort()
	if err := first.Hello("first", cfg); err != nil {
		t.Fatal(err)
	}

	second, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Abort()
	if err := second.Hello("second", cfg); err == nil || !strings.Contains(err.Error(), "session limit") {
		t.Fatalf("second Hello = %v, want session-limit rejection", err)
	}
	if got := reg.Snapshot().Counters[server.MetricSessionsRejected]; got != 1 {
		t.Fatalf("%s = %d, want 1", server.MetricSessionsRejected, got)
	}

	// A one-byte memory budget rejects everyone.
	_, tinyAddr := startServer(t, server.Config{
		Workers: 1, MemoryBudget: 1, Sink: server.NewFanout(),
	})
	c, err := server.Dial(tinyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	if err := c.Hello("hungry", cfg); err == nil || !strings.Contains(err.Error(), "memory budget") {
		t.Fatalf("Hello under 1-byte budget = %v, want memory-budget rejection", err)
	}
}

// TestServerBadHello: a malformed handshake draws an ERROR frame and a
// hello_errors tick, not a hang or a panic.
func TestServerBadHello(t *testing.T) {
	reg := cic.NewMetrics()
	_, addr := startServer(t, server.Config{Workers: 1, Metrics: reg, Sink: server.NewFanout()})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := server.WriteFrame(conn, server.FrameHello, []byte("not a hello")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, body, err := server.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != server.FrameError {
		t.Fatalf("reply frame 0x%02x, want ERROR", typ)
	}
	if len(body) == 0 {
		t.Fatal("empty rejection reason")
	}
	if got := reg.Snapshot().Counters[server.MetricHelloErrors]; got != 1 {
		t.Fatalf("%s = %d, want 1", server.MetricHelloErrors, got)
	}
}

// TestServerIdleTimeout: a session that stops sending frames is closed
// after the idle timeout and counted.
func TestServerIdleTimeout(t *testing.T) {
	cfg := testConfig()
	reg := cic.NewMetrics()
	srv, addr := startServer(t, server.Config{
		Workers: 1, IdleTimeout: 200 * time.Millisecond, Metrics: reg, Sink: server.NewFanout(),
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body, err := server.EncodeHello(server.HelloFor("sleepy", cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := server.WriteFrame(conn, server.FrameHello, body); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if typ, _, err := server.ReadFrame(conn); err != nil || typ != server.FrameOK {
		t.Fatalf("handshake reply: type 0x%02x err %v", typ, err)
	}

	// Send nothing; the server must hang up on its own.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to close the idle connection")
	}
	waitFor(t, "idle teardown", func() bool { return srv.SessionCount() == 0 })
	if got := reg.Snapshot().Counters[server.MetricIdleTimeouts]; got != 1 {
		t.Fatalf("%s = %d, want 1", server.MetricIdleTimeouts, got)
	}
}

// TestFanoutSlowSubscriberEvicted: a subscriber that never reads is
// dropped once its queue overflows, without blocking Publish.
func TestFanoutSlowSubscriberEvicted(t *testing.T) {
	sink := server.NewFanout()
	defer sink.Close()
	client, srvSide := net.Pipe() // unbuffered: the writer goroutine blocks immediately
	defer client.Close()
	sink.AddSubscriber(srvSide)
	waitFor(t, "subscriber attach", func() bool { return sink.Subscribers() == 1 })

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3000; i++ { // > subscriberBuffer
			sink.Publish(server.Record{Seq: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	waitFor(t, "subscriber eviction", func() bool { return sink.Subscribers() == 0 })
}
