package server

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// Record is one decoded packet as published on the NDJSON sink: the
// session identity plus the cic.Packet fields, payload hex-encoded.
// Records of one session appear in air-time order (the Gateway's
// delivery order); records of different sessions interleave arbitrarily.
type Record struct {
	// Station is the HELLO station id of the originating session.
	Station string `json:"station"`
	// Session is the server-assigned session number.
	Session uint64 `json:"session"`
	// Seq is the record's position within its session, from 0.
	Seq int `json:"seq"`
	// Start is the packet's first preamble sample (session-stream index).
	Start int64 `json:"start"`
	// OK reports header checksum + payload CRC both verified.
	OK bool `json:"ok"`
	// SNRdB and CFOHz are the receiver's channel estimates.
	SNRdB float64 `json:"snr_db"`
	CFOHz float64 `json:"cfo_hz"`
	// FECCorrected counts Hamming-repaired bits.
	FECCorrected int `json:"fec_corrected"`
	// Payload is the decoded payload, hex-encoded ("" when the decode
	// failed).
	Payload string `json:"payload"`
}

// subscriberBuffer is the per-TCP-subscriber queue depth. A subscriber
// that falls further behind than this is dropped (slow-consumer
// eviction) rather than allowed to stall the decode pipeline.
const subscriberBuffer = 1024

// Subscriber write-retry policy: a write that times out (a transiently
// stalled peer) is retried with doubling backoff before the subscriber
// is evicted; a hard error (connection reset) evicts immediately.
// Retries are counted in server_sink_retries.
const (
	subscriberWriteTimeout = 2 * time.Second
	subscriberWriteRetries = 3
	subscriberRetryBase    = 50 * time.Millisecond
)

// Fanout publishes NDJSON records to a set of io.Writers (stdout, files)
// and to dynamically attached TCP subscribers. Writer output is
// serialised under a mutex; each subscriber has its own bounded queue
// and writer goroutine, so one slow subscriber never blocks Publish.
type Fanout struct {
	m *serverMetrics

	mu      sync.Mutex
	writers []io.Writer
	dead    []bool // writers[i] disabled after its first write error
	subs    map[*subscriber]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type subscriber struct {
	conn net.Conn
	ch   chan []byte
}

// NewFanout builds a sink publishing to the given writers (nil writers
// are skipped).
func NewFanout(writers ...io.Writer) *Fanout {
	f := &Fanout{subs: map[*subscriber]struct{}{}, m: newServerMetrics(nil, 0)}
	for _, w := range writers {
		if w != nil {
			f.writers = append(f.writers, w)
		}
	}
	f.dead = make([]bool, len(f.writers))
	return f
}

// setMetrics attaches the daemon metric handles (Server wires this).
func (f *Fanout) setMetrics(m *serverMetrics) { f.m = m }

// Publish encodes rec as one NDJSON line and delivers it to every
// writer and subscriber. Safe for concurrent use.
func (f *Fanout) Publish(rec Record) {
	line, err := json.Marshal(rec)
	if err != nil {
		return // Record contains no unmarshalable types; defensive only.
	}
	line = append(line, '\n')

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for i, w := range f.writers {
		if f.dead[i] {
			continue
		}
		if _, err := w.Write(line); err != nil { //cic:lock-ok: fan-out writers are serialised under mu by design; a slow writer is marked dead rather than retried, bounding the hold
			f.dead[i] = true
		}
	}
	for s := range f.subs {
		select {
		case s.ch <- line:
		default:
			// Queue full: evict rather than stall the pipeline.
			f.dropLocked(s)
			f.m.SubscriberDropped.Inc()
		}
	}
}

// AddSubscriber attaches a TCP subscriber: every subsequent record is
// streamed to conn as NDJSON until the connection errors, falls too far
// behind, or the sink closes.
func (f *Fanout) AddSubscriber(conn net.Conn) {
	s := &subscriber{conn: conn, ch: make(chan []byte, subscriberBuffer)}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		conn.Close()
		return
	}
	f.subs[s] = struct{}{}
	f.m.Subscribers.Set(int64(len(f.subs)))
	f.wg.Add(1)
	f.mu.Unlock()

	go func() {
		defer f.wg.Done()
		for line := range s.ch {
			if err := f.writeLine(s, line); err != nil {
				f.mu.Lock()
				f.dropLocked(s)
				f.mu.Unlock()
				// Drain the closed channel's remaining lines.
				for range s.ch {
				}
				return
			}
		}
		s.conn.Close()
	}()
}

// writeLine delivers one NDJSON line to a subscriber, retrying timed-out
// writes (subscriberWriteRetries attempts with doubling backoff) so a
// transiently stalled consumer is not evicted for one slow moment.
// Partial writes advance through the line, keeping the stream
// byte-exact across retries.
func (f *Fanout) writeLine(s *subscriber, line []byte) error {
	backoff := subscriberRetryBase
	for attempt := 0; ; attempt++ {
		_ = s.conn.SetWriteDeadline(time.Now().Add(subscriberWriteTimeout))
		n, err := s.conn.Write(line)
		line = line[n:]
		if err == nil && len(line) == 0 {
			return nil
		}
		if err != nil {
			var ne net.Error
			if attempt >= subscriberWriteRetries || !errors.As(err, &ne) || !ne.Timeout() {
				return err
			}
			f.m.SinkRetries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// dropLocked detaches a subscriber (caller holds mu). Closing the
// channel ends the writer goroutine, which closes the connection.
func (f *Fanout) dropLocked(s *subscriber) {
	if _, ok := f.subs[s]; !ok {
		return
	}
	delete(f.subs, s)
	close(s.ch)
	s.conn.Close()
	f.m.Subscribers.Set(int64(len(f.subs)))
}

// Subscribers reports the attached TCP subscriber count.
func (f *Fanout) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// Close detaches every subscriber (closing their connections once their
// queues drain) and stops accepting records. Writers are not closed;
// they belong to the caller.
func (f *Fanout) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	for s := range f.subs {
		f.dropLocked(s)
	}
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}
