package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"cic"
)

// Defaults for Config zero values.
const (
	DefaultMaxSessions  = 64
	DefaultMemoryBudget = int64(1) << 30 // 1 GiB of session footprint
	DefaultIdleTimeout  = 60 * time.Second
)

// DefaultWorkers is the per-session decode pool default: sessions run
// concurrently, so each gets a small pool rather than GOMAXPROCS.
func DefaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n < 2 {
		return n
	}
	return 2
}

// Config parameterises a Server. The zero value is usable: every field
// falls back to the package defaults and the sink defaults to a fanout
// with no outputs (TCP subscribers can still attach).
type Config struct {
	// MaxSessions caps concurrent ingestion sessions (DefaultMaxSessions
	// when 0; negative means unlimited).
	MaxSessions int
	// MemoryBudget caps the summed EstimateMemoryBytes of admitted
	// sessions (DefaultMemoryBudget when 0; negative means unlimited).
	MemoryBudget int64
	// IdleTimeout closes a session that sends no frame for this long
	// (DefaultIdleTimeout when 0; negative disables the timeout).
	IdleTimeout time.Duration
	// Workers is the per-session decode pool size (DefaultWorkers when
	// 0).
	Workers int
	// Metrics receives both the daemon's server_* metrics and every
	// session gateway's decode metrics; mount it on cic.DebugHandler.
	// Nil disables instrumentation.
	Metrics *cic.Metrics
	// Sink receives decoded-packet records (a silent fanout when nil).
	Sink *Fanout
	// Logf logs connection-level events (silent when nil).
	Logf func(format string, args ...any)
}

// Server accepts ingestion connections, runs one Session per connection
// with admission control (session count + memory budget), and publishes
// decoded packets through the sink. Create with New, feed it listeners
// via Serve/ServePub, stop it with Shutdown.
type Server struct {
	cfg  Config
	m    *serverMetrics
	sink *Fanout

	mu        sync.Mutex
	closed    bool
	nextID    uint64
	memInUse  int64
	sessions  map[uint64]*activeSession
	listeners map[net.Listener]struct{}
	connWG    sync.WaitGroup
}

// activeSession pairs a session with its connection so Shutdown can
// flush the gateway and then unblock the connection's reader.
type activeSession struct {
	sess *Session
	conn net.Conn
}

// New builds a Server from cfg (see Config for zero-value defaults).
func New(cfg Config) *Server {
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MemoryBudget == 0 {
		cfg.MemoryBudget = DefaultMemoryBudget
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.Workers == 0 {
		cfg.Workers = DefaultWorkers()
	}
	if cfg.Sink == nil {
		cfg.Sink = NewFanout()
	}
	s := &Server{
		cfg:       cfg,
		m:         newServerMetrics(cfg.Metrics),
		sink:      cfg.Sink,
		sessions:  map[uint64]*activeSession{},
		listeners: map[net.Listener]struct{}{},
	}
	s.sink.setMetrics(s.m)
	return s
}

// logf logs through Config.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Sink returns the server's fanout (for attaching subscribers directly).
func (s *Server) Sink() *Fanout { return s.sink }

// register adds a listener unless the server is shut down.
func (s *Server) register(ln net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners[ln] = struct{}{}
	return true
}

// Serve accepts ingestion connections on ln until Shutdown closes it
// (which makes Serve return nil) or Accept fails.
func (s *Server) Serve(ln net.Listener) error {
	if !s.register(ln) {
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
		}()
	}
}

// ServePub accepts subscriber connections on ln and attaches each to
// the sink; every record published after attachment is streamed to the
// subscriber as NDJSON. Returns nil once Shutdown closes ln.
func (s *Server) ServePub(ln net.Listener) error {
	if !s.register(ln) {
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.sink.AddSubscriber(conn)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// admit applies the session-count and memory-budget limits, reserving
// the estimate on success. Callers release via release().
func (s *Server) admit(est int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("server draining")
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		return fmt.Errorf("session limit reached (%d active)", len(s.sessions))
	}
	if s.cfg.MemoryBudget > 0 && s.memInUse+est > s.cfg.MemoryBudget {
		return fmt.Errorf("memory budget exceeded (%d in use + %d requested > %d)",
			s.memInUse, est, s.cfg.MemoryBudget)
	}
	s.memInUse += est
	s.m.MemoryInUse.Set(s.memInUse)
	return nil
}

func (s *Server) release(est int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memInUse -= est
	s.m.MemoryInUse.Set(s.memInUse)
}

// reject answers a handshake with an ERROR frame and closes the
// connection.
func (s *Server) reject(conn net.Conn, reason string) {
	s.m.SessionsRejected.Inc()
	if len(reason) > MaxErrorBody {
		reason = reason[:MaxErrorBody]
	}
	_ = WriteFrame(conn, FrameError, []byte(reason))
	conn.Close()
}

// handleConn runs one ingestion connection end to end: handshake,
// admission, the frame loop, and teardown (always draining the session
// so buffered packets are published even on abrupt disconnect).
func (s *Server) handleConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	idle := s.cfg.IdleTimeout

	// Handshake. The HELLO must arrive within the idle timeout.
	if idle > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
	}
	typ, body, err := ReadFrame(br)
	if err != nil || typ != FrameHello {
		s.m.HelloErrors.Inc()
		if err == nil {
			err = fmt.Errorf("first frame type 0x%02x, want HELLO", typ)
		}
		s.reject(conn, fmt.Sprintf("bad handshake: %v", err))
		return
	}
	h, err := ParseHello(body)
	if err != nil {
		s.m.HelloErrors.Inc()
		s.reject(conn, err.Error())
		return
	}
	cfg := h.Config()
	if err := cfg.Validate(); err != nil {
		s.m.HelloErrors.Inc()
		s.reject(conn, err.Error())
		return
	}
	est, err := EstimateMemoryBytes(cfg, s.cfg.Workers)
	if err != nil {
		s.m.HelloErrors.Inc()
		s.reject(conn, err.Error())
		return
	}
	if err := s.admit(est); err != nil {
		s.logf("reject %s from %s: %v", h.Station, conn.RemoteAddr(), err)
		s.reject(conn, err.Error())
		return
	}
	sess, err := s.newAdmittedSession(h, est, conn)
	if err != nil {
		s.release(est)
		s.reject(conn, err.Error())
		return
	}
	if err := WriteFrame(conn, FrameOK, nil); err != nil {
		s.finishSession(sess, est, conn)
		return
	}
	s.logf("%s connected from %s (≈%d MiB reserved)", sess, conn.RemoteAddr(), est>>20)

	// Frame loop.
	var iqBuf []complex128
	for {
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		typ, body, err := ReadFrame(br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.m.IdleTimeouts.Inc()
				s.logf("%s idle timeout", sess)
			} else {
				s.logf("%s disconnected: %v", sess, err)
			}
			break
		}
		switch typ {
		case FrameIQ:
			iqBuf, err = DecodeIQBody(iqBuf[:0], body)
			if err != nil {
				s.logf("%s: %v", sess, err)
			} else {
				err = sess.Write(iqBuf)
			}
			if err != nil {
				// ErrGatewayClosed means Shutdown drained us mid-stream;
				// either way the session is over.
				_ = WriteFrame(conn, FrameError, []byte(err.Error()))
				goto done
			}
			s.m.FramesIngested.Inc()
			s.m.BytesIngested.Add(int64(len(body)))
		case FrameClose:
			// Flush, publish everything, then acknowledge so the client
			// knows its packets are out.
			_ = conn.SetReadDeadline(time.Time{})
			if err := sess.Drain(); err != nil {
				s.logf("%s drain: %v", sess, err)
			}
			_ = WriteFrame(conn, FrameOK, nil)
			s.logf("%s closed cleanly", sess)
			goto done
		default:
			s.logf("%s sent unexpected frame type 0x%02x", sess, typ)
			_ = WriteFrame(conn, FrameError, []byte(fmt.Sprintf("unexpected frame type 0x%02x", typ)))
			goto done
		}
	}
done:
	s.finishSession(sess, est, conn)
}

// newAdmittedSession builds the session and tracks it.
func (s *Server) newAdmittedSession(h Hello, est int64, conn net.Conn) (*Session, error) {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	sess, err := NewSession(id, h, s.cfg.Workers, s.cfg.Metrics, s.sink)
	if err != nil {
		return nil, err
	}
	sess.setMetrics(s.m)
	s.mu.Lock()
	s.sessions[id] = &activeSession{sess: sess, conn: conn}
	active := len(s.sessions)
	s.mu.Unlock()
	s.m.SessionsTotal.Inc()
	s.m.SessionsActive.Set(int64(active))
	return sess, nil
}

// finishSession drains (idempotent — publishes any still-buffered
// packets), untracks and closes one session.
func (s *Server) finishSession(sess *Session, est int64, conn net.Conn) {
	_ = sess.Drain()
	conn.Close()
	s.mu.Lock()
	delete(s.sessions, sess.ID)
	active := len(s.sessions)
	s.mu.Unlock()
	s.m.SessionsActive.Set(int64(active))
	s.release(est)
}

// Shutdown drains the daemon gracefully: stop accepting, flush every
// session's Gateway (publishing all fully-buffered packets), close the
// connections, and wait for the handlers — bounded by ctx. The sink is
// left open; close it after Shutdown so late records are not lost.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	active := make([]*activeSession, 0, len(s.sessions))
	for _, a := range s.sessions {
		active = append(active, a)
	}
	s.mu.Unlock()

	// Flush sessions concurrently; closing each connection afterwards
	// unblocks its reader so the handler can finish.
	var wg sync.WaitGroup
	for _, a := range active {
		wg.Add(1)
		go func(a *activeSession) {
			defer wg.Done()
			if err := a.sess.Drain(); err != nil {
				s.logf("%s shutdown drain: %v", a.sess, err)
			}
			a.conn.Close()
		}(a)
	}
	flushed := make(chan struct{})
	go func() {
		wg.Wait()
		s.connWG.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SessionCount reports the number of live ingestion sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
