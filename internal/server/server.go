package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"time"

	"cic"
	"cic/internal/obs"
)

// Defaults for Config zero values.
const (
	DefaultMaxSessions  = 64
	DefaultMemoryBudget = int64(1) << 30 // 1 GiB of session footprint
	DefaultIdleTimeout  = 60 * time.Second
	// DefaultParkTimeout is how long a resumable session survives its
	// connection: a client that reconnects with RESUME within the window
	// continues where it left off; past it the session drains.
	DefaultParkTimeout = 15 * time.Second
	// DefaultDecodeTimeout bounds one IQ frame's decode admission (see
	// SessionOptions.DecodeTimeout).
	DefaultDecodeTimeout = 30 * time.Second
	// DefaultRetryAfter is the retry hint carried in overload ERROR
	// frames.
	DefaultRetryAfter = time.Second
)

// DefaultWorkers is the per-session decode pool default: sessions run
// concurrently, so each gets a small pool rather than GOMAXPROCS.
func DefaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n < 2 {
		return n
	}
	return 2
}

// Config parameterises a Server. The zero value is usable: every field
// falls back to the package defaults and the sink defaults to a fanout
// with no outputs (TCP subscribers can still attach).
type Config struct {
	// MaxSessions caps concurrent ingestion sessions, parked ones
	// included (DefaultMaxSessions when 0; negative means unlimited).
	MaxSessions int
	// MemoryBudget caps the summed EstimateMemoryBytes of admitted
	// sessions (DefaultMemoryBudget when 0; negative means unlimited).
	MemoryBudget int64
	// IdleTimeout closes a session that sends no frame for this long
	// (DefaultIdleTimeout when 0; negative disables the timeout).
	IdleTimeout time.Duration
	// ParkTimeout is the resume window: how long a resumable session
	// stays parked after its connection drops before it is drained
	// (DefaultParkTimeout when 0; negative disables parking, so even
	// RESUME sessions end with their connection).
	ParkTimeout time.Duration
	// DecodeTimeout bounds one IQ frame's decode admission; a session
	// that cannot accept a frame within it is failed rather than left
	// wedging its handler (DefaultDecodeTimeout when 0; negative
	// disables the deadline).
	DecodeTimeout time.Duration
	// RetryAfter is the retry hint carried in overload ERROR frames
	// (DefaultRetryAfter when 0; negative means no hint).
	RetryAfter time.Duration
	// Workers is the per-session decode pool size (DefaultWorkers when
	// 0).
	Workers int
	// Metrics receives both the daemon's server_* metrics and every
	// session gateway's decode metrics; mount it on cic.DebugHandler.
	// Nil disables instrumentation.
	Metrics *cic.Metrics
	// Sink receives decoded-packet records (a silent fanout when nil).
	Sink *Fanout
	// WrapConn, when set, wraps every accepted ingestion connection
	// before the handshake — the hook behind the daemon's -fault-spec
	// flag (internal/fault.WrapConn) and usable for any transport
	// middleware. Subscriber connections are not wrapped.
	WrapConn func(net.Conn) net.Conn
	// GatewayOptions are appended to every session Gateway's options —
	// a development hook (e.g. cic.WithDecodeInterceptor for chaos
	// tests); nil for production use.
	GatewayOptions []cic.Option
	// Logf logs connection-level events (silent when nil). Superseded by
	// Log: when both are set Log wins; when only Logf is set the daemon's
	// structured events are rendered to it as "msg key=value" lines.
	Logf func(format string, args ...any)
	// Log receives structured session-lifecycle events (accept, resume,
	// park, shed, panic post-mortems), each stamped with the session's
	// correlation id. Nil falls back to Logf (or silence).
	Log *slog.Logger
	// Flight, when set, records session transitions and decode incidents
	// into a lock-free ring for post-mortems: mount it at /debug/flight
	// via cic.DebugHandler, and on a handler panic or overload shed the
	// offending trail is also snapshotted into the log.
	Flight *obs.FlightRecorder
	// MaxStationSeries caps each per-station labeled metric family's
	// live label sets (obs.DefaultMaxSeries when 0): beyond the cap the
	// least-recently-active station's series is evicted and counted on
	// obs_labels_evicted, so unbounded station churn cannot OOM the
	// registry.
	MaxStationSeries int
}

// Server accepts ingestion connections, runs one Session per connection
// with admission control (session count + memory budget), and publishes
// decoded packets through the sink. Create with New, feed it listeners
// via Serve/ServePub, stop it with Shutdown.
//
// Resilience: a session opened with RESUME survives its connection —
// on abnormal disconnect it is parked for Config.ParkTimeout and a
// reconnecting client reclaims it, replaying from the acknowledged
// sample offset. A decode-worker panic or decode deadline fails only
// the offending session; the daemon keeps serving.
type Server struct {
	cfg  Config
	m    *serverMetrics
	sink *Fanout
	log  *slog.Logger // resolved from Config.Log / Config.Logf (nil = silent)

	mu        sync.Mutex
	closed    bool
	nextID    uint64
	memInUse  int64
	sessions  map[uint64]*activeSession
	parked    map[string]*parkedSession
	listeners map[net.Listener]struct{}
	connWG    sync.WaitGroup
}

// activeSession pairs a session with its connection so Shutdown can
// flush the gateway and then unblock the connection's reader.
type activeSession struct {
	sess *Session
	conn net.Conn
}

// parkedSession is a resumable session between connections: its gateway
// (and memory reservation) stays live until a RESUME reclaims it or the
// park timer drains it.
type parkedSession struct {
	sess  *Session
	est   int64
	hello Hello
	timer *time.Timer
}

// New builds a Server from cfg (see Config for zero-value defaults).
func New(cfg Config) *Server {
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MemoryBudget == 0 {
		cfg.MemoryBudget = DefaultMemoryBudget
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.ParkTimeout == 0 {
		cfg.ParkTimeout = DefaultParkTimeout
	}
	if cfg.DecodeTimeout == 0 {
		cfg.DecodeTimeout = DefaultDecodeTimeout
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Workers == 0 {
		cfg.Workers = DefaultWorkers()
	}
	if cfg.Sink == nil {
		cfg.Sink = NewFanout()
	}
	s := &Server{
		cfg:       cfg,
		m:         newServerMetrics(cfg.Metrics, cfg.MaxStationSeries),
		sink:      cfg.Sink,
		log:       cfg.Log,
		sessions:  map[uint64]*activeSession{},
		parked:    map[string]*parkedSession{},
		listeners: map[net.Listener]struct{}{},
	}
	if s.log == nil && cfg.Logf != nil {
		s.log = slog.New(logfHandler{logf: cfg.Logf})
	}
	s.sink.setMetrics(s.m)
	return s
}

// info/warn/logError emit structured events (silent without a logger).
func (s *Server) info(msg string, args ...any) {
	if s.log != nil {
		s.log.Info(msg, args...)
	}
}

func (s *Server) warn(msg string, args ...any) {
	if s.log != nil {
		s.log.Warn(msg, args...)
	}
}

func (s *Server) logError(msg string, args ...any) {
	if s.log != nil {
		s.log.Error(msg, args...)
	}
}

// sessAttrs is the common identity prefix for session-scoped log events.
func sessAttrs(sess *Session) []any {
	return []any{"cid", sess.CID, "station", sess.Station, "session", sess.ID}
}

// dumpFlight snapshots a session's flight-recorder trail into the log —
// the automatic post-mortem on handler panics and overload sheds.
func (s *Server) dumpFlight(msg, cid string, args ...any) {
	if s.log == nil || s.cfg.Flight == nil {
		return
	}
	trail := s.cfg.Flight.SnapshotCID(cid)
	args = append(args, "cid", cid, "trail_events", len(trail), "trail", trail)
	s.log.Error(msg, args...)
}

// Sink returns the server's fanout (for attaching subscribers directly).
func (s *Server) Sink() *Fanout { return s.sink }

// register adds a listener unless the server is shut down.
func (s *Server) register(ln net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners[ln] = struct{}{}
	return true
}

// Serve accepts ingestion connections on ln until Shutdown closes it
// (which makes Serve return nil) or Accept fails.
func (s *Server) Serve(ln net.Listener) error {
	if !s.register(ln) {
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
		}()
	}
}

// ServePub accepts subscriber connections on ln and attaches each to
// the sink; every record published after attachment is streamed to the
// subscriber as NDJSON. Returns nil once Shutdown closes ln.
func (s *Server) ServePub(ln net.Listener) error {
	if !s.register(ln) {
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.sink.AddSubscriber(conn)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// retryAfter is the hint for overload rejections (0 when disabled).
func (s *Server) retryAfter() time.Duration {
	if s.cfg.RetryAfter < 0 {
		return 0
	}
	return s.cfg.RetryAfter
}

// admit applies the session-count and memory-budget limits (parked
// sessions count against both — their gateways are still live),
// reserving the estimate on success. Callers release via release().
// A *ServerError return carries the overload code and retry hint for
// the rejection ERROR frame.
func (s *Server) admit(est int64) *ServerError {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return &ServerError{Code: ErrCodeGeneric, Reason: "server draining"}
	}
	inUse := len(s.sessions) + len(s.parked)
	if s.cfg.MaxSessions > 0 && inUse >= s.cfg.MaxSessions {
		return &ServerError{
			Code:       ErrCodeOverload,
			RetryAfter: s.retryAfter(),
			Reason:     fmt.Sprintf("session limit reached (%d active)", inUse),
		}
	}
	if s.cfg.MemoryBudget > 0 && s.memInUse+est > s.cfg.MemoryBudget {
		return &ServerError{
			Code:       ErrCodeOverload,
			RetryAfter: s.retryAfter(),
			Reason: fmt.Sprintf("memory budget exceeded (%d in use + %d requested > %d)",
				s.memInUse, est, s.cfg.MemoryBudget),
		}
	}
	s.memInUse += est
	s.m.MemoryInUse.Set(s.memInUse)
	return nil
}

func (s *Server) release(est int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memInUse -= est
	s.m.MemoryInUse.Set(s.memInUse)
}

// reject answers a handshake with a structured ERROR frame and closes
// the connection.
func (s *Server) reject(conn net.Conn, e *ServerError) {
	s.m.SessionsRejected.Inc()
	if e.Code == ErrCodeOverload {
		s.m.OverloadRejected.Inc()
	}
	_ = WriteFrame(conn, FrameError, EncodeErrorBody(e.Code, e.RetryAfter, e.Reason))
	conn.Close()
}

// handleConn runs one ingestion connection end to end: handshake
// (HELLO or RESUME), admission or reclaim, then the frame loop.
func (s *Server) handleConn(conn net.Conn) {
	if s.cfg.WrapConn != nil {
		conn = s.cfg.WrapConn(conn)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	idle := s.cfg.IdleTimeout

	// Handshake. The HELLO must arrive within the idle timeout.
	if idle > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
	}
	typ, body, err := ReadFrame(br)
	if err != nil || (typ != FrameHello && typ != FrameResume) {
		s.m.HelloErrors.Inc()
		if err == nil {
			err = fmt.Errorf("first frame type 0x%02x, want HELLO or RESUME", typ)
		}
		s.reject(conn, &ServerError{Reason: fmt.Sprintf("bad handshake: %v", err)})
		return
	}
	h, err := ParseHello(body)
	if err != nil {
		s.m.HelloErrors.Inc()
		s.reject(conn, &ServerError{Reason: err.Error()})
		return
	}
	resumable := typ == FrameResume

	// RESUME first tries to reclaim a parked session for the station;
	// if none matches it falls through to a fresh resumable session
	// starting at offset 0.
	if resumable {
		if p := s.awaitParked(h, conn); p != nil {
			off := p.sess.Ingested()
			if err := WriteFrame(conn, FrameOK, EncodeOffset(off)); err != nil {
				s.parkOrFinish(p.sess, p.est, h, conn, true)
				return
			}
			s.m.ResumesTotal.Inc()
			s.m.StationResumes.With(h.Station).Inc()
			p.sess.flight.Record("session_resume",
				fmt.Sprintf("reclaimed at sample offset %d", off))
			s.info("session resumed", append(sessAttrs(p.sess),
				"remote", conn.RemoteAddr().String(), "offset", off)...)
			s.serveSession(p.sess, p.est, h, conn, br)
			return
		}
	}

	cfg := h.Config()
	if err := cfg.Validate(); err != nil {
		s.m.HelloErrors.Inc()
		s.reject(conn, &ServerError{Reason: err.Error()})
		return
	}
	est, err := EstimateMemoryBytes(cfg, s.cfg.Workers)
	if err != nil {
		s.m.HelloErrors.Inc()
		s.reject(conn, &ServerError{Reason: err.Error()})
		return
	}
	if aerr := s.admit(est); aerr != nil {
		if aerr.Code == ErrCodeOverload {
			s.m.StationSheds.With(h.Station).Inc()
			cid := MintCID()
			s.cfg.Flight.Scope(cid, h.Station).RecordErr("shed",
				"admission rejected under overload", aerr.Reason)
			s.dumpFlight("session shed", cid,
				"station", h.Station, "remote", conn.RemoteAddr().String(),
				"reason", aerr.Reason)
		}
		s.warn("session rejected", "station", h.Station,
			"remote", conn.RemoteAddr().String(), "reason", aerr.Reason)
		s.reject(conn, aerr)
		return
	}
	sess, err := s.newAdmittedSession(h, est, conn, resumable)
	if err != nil {
		s.release(est)
		s.reject(conn, &ServerError{Reason: err.Error()})
		return
	}
	// A plain HELLO gets the empty OK of protocol v1; RESUME gets the
	// starting offset (0 for a fresh session) so the client knows where
	// replay would begin.
	var okBody []byte
	if resumable {
		okBody = EncodeOffset(0)
	}
	if err := WriteFrame(conn, FrameOK, okBody); err != nil {
		s.finishSession(sess, est, conn)
		return
	}
	sess.flight.Record("session_accept",
		fmt.Sprintf("sf%d from %s", h.SF, conn.RemoteAddr()))
	s.info("session accepted", append(sessAttrs(sess),
		"remote", conn.RemoteAddr().String(), "sf", h.SF,
		"resumable", resumable, "reserved_bytes", est)...)
	s.serveSession(sess, est, h, conn, br)
}

// serveSession runs the frame loop for an established session and
// tears it down: parking it when a resumable connection dies abnormally
// (so RESUME can reclaim it), draining it otherwise. A panic anywhere
// in the loop is contained to this session.
func (s *Server) serveSession(sess *Session, est int64, h Hello, conn net.Conn, br *bufio.Reader) {
	idle := s.cfg.IdleTimeout
	park := false
	defer func() {
		if v := recover(); v != nil {
			s.m.PanicsRecovered.Inc()
			sess.flight.RecordErr("handler_panic", "connection handler", fmt.Sprint(v))
			s.logError("session handler panic", append(sessAttrs(sess), "panic", fmt.Sprint(v))...)
			s.dumpFlight("session post-mortem", sess.CID, "trigger", "handler panic")
			park = false
		} else if ferr := sess.Failed(); ferr != nil {
			// The session died of a decode incident (worker panic, decode
			// deadline): snapshot its flight trail while the ring still
			// holds it.
			s.dumpFlight("session post-mortem", sess.CID, "trigger", ferr.Error())
		}
		s.parkOrFinish(sess, est, h, conn, park)
	}()

	var iqBuf []complex128
	for {
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		typ, body, err := ReadFrame(br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.m.IdleTimeouts.Inc()
				sess.flight.Record("idle_timeout", "")
				s.info("session idle timeout", sessAttrs(sess)...)
			} else {
				sess.flight.RecordErr("disconnect", "", err.Error())
				s.info("session disconnected", append(sessAttrs(sess), "err", err.Error())...)
				// Only an abnormal disconnect parks; an idle station has
				// stopped on purpose and re-handshakes when it returns.
				park = sess.Resumable
			}
			return
		}
		switch typ {
		case FrameIQ:
			iqBuf, err = DecodeIQBody(iqBuf[:0], body)
			if err != nil {
				s.warn("bad IQ frame", append(sessAttrs(sess), "err", err.Error())...)
			} else {
				err = sess.Write(iqBuf)
			}
			if err != nil {
				// ErrGatewayClosed means Shutdown drained us mid-stream; a
				// failed session carries its fault. Either way the session
				// is over — a failed session is never parked.
				_ = WriteFrame(conn, FrameError, EncodeErrorBody(ErrCodeGeneric, 0, err.Error()))
				return
			}
			s.m.FramesIngested.Inc()
			s.m.BytesIngested.Add(int64(len(body)))
			sess.stFrames.Inc()
			sess.stBytes.Add(int64(len(body)))
			if sess.Resumable {
				if err := WriteFrame(conn, FrameAck, EncodeOffset(sess.Ingested())); err != nil {
					s.info("session ack write failed", append(sessAttrs(sess), "err", err.Error())...)
					park = true
					return
				}
				s.m.ResumeAcks.Inc()
			}
		case FrameClose:
			// Flush, publish everything, then acknowledge so the client
			// knows its packets are out.
			_ = conn.SetReadDeadline(time.Time{})
			if err := sess.Drain(); err != nil {
				s.warn("session drain failed", append(sessAttrs(sess), "err", err.Error())...)
			}
			_ = WriteFrame(conn, FrameOK, nil)
			sess.flight.Record("session_close", "clean CLOSE")
			s.info("session closed", sessAttrs(sess)...)
			return
		default:
			s.warn("unexpected frame type", append(sessAttrs(sess), "type", fmt.Sprintf("0x%02x", typ))...)
			_ = WriteFrame(conn, FrameError,
				EncodeErrorBody(ErrCodeGeneric, 0, fmt.Sprintf("unexpected frame type 0x%02x", typ)))
			return
		}
	}
}

// newAdmittedSession builds the session and tracks it.
func (s *Server) newAdmittedSession(h Hello, est int64, conn net.Conn, resumable bool) (*Session, error) {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	decodeTimeout := s.cfg.DecodeTimeout
	if decodeTimeout < 0 {
		decodeTimeout = 0
	}
	sess, err := NewSessionOpts(id, h, SessionOptions{
		Workers:        s.cfg.Workers,
		Metrics:        s.cfg.Metrics,
		DecodeTimeout:  decodeTimeout,
		Resumable:      resumable,
		GatewayOptions: s.cfg.GatewayOptions,
		Log:            s.log,
		Flight:         s.cfg.Flight,
	}, s.sink)
	if err != nil {
		return nil, err
	}
	sess.setMetrics(s.m)
	s.mu.Lock()
	s.sessions[id] = &activeSession{sess: sess, conn: conn}
	active := len(s.sessions)
	s.mu.Unlock()
	s.m.SessionsTotal.Inc()
	s.m.SessionsActive.Set(int64(active))
	s.m.StationSessions.With(h.Station).Inc()
	return sess, nil
}

// resumeGrace bounds how long a RESUME waits for the station's dying
// connection to park its session: a client that detected the failure
// first can reconnect before the server's reader has seen the
// disconnect, and reclaiming must win that race or the client would be
// handed a fresh session at offset 0 while the old one still holds the
// ingested stream.
const resumeGrace = 3 * time.Second

// awaitParked reclaims the station's parked session, briefly waiting
// out an in-flight park when the previous connection is still tearing
// down (see resumeGrace).
func (s *Server) awaitParked(h Hello, conn net.Conn) *parkedSession {
	if p := s.resumeParked(h, conn); p != nil {
		return p
	}
	deadline := time.Now().Add(resumeGrace)
	for s.hasActiveStation(h) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		if p := s.resumeParked(h, conn); p != nil {
			return p
		}
	}
	return nil
}

// hasActiveStation reports whether a resumable session for the station
// is still attached to a connection.
func (s *Server) hasActiveStation(h Hello) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.sessions {
		if a.sess.Resumable && a.sess.Station == h.Station {
			return true
		}
	}
	return false
}

// resumeParked reclaims the station's parked session for a new
// connection, returning nil when there is nothing to reclaim (no parked
// session, a different stream configuration, the park timer already
// fired, or the server is draining).
func (s *Server) resumeParked(h Hello, conn net.Conn) *parkedSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	p := s.parked[h.Station]
	if p == nil || p.hello != h {
		return nil
	}
	if !p.timer.Stop() {
		// The expiry fired and is waiting on the lock; let it drain.
		return nil
	}
	delete(s.parked, h.Station)
	s.sessions[p.sess.ID] = &activeSession{sess: p.sess, conn: conn}
	s.m.SessionsParked.Set(int64(len(s.parked)))
	s.m.SessionsActive.Set(int64(len(s.sessions)))
	return p
}

// parkOrFinish tears a session down after its connection ends: a
// healthy resumable session is parked for the resume window (when park
// is set and parking is enabled); anything else drains immediately.
func (s *Server) parkOrFinish(sess *Session, est int64, h Hello, conn net.Conn, park bool) {
	if park && sess.Failed() == nil && s.parkSession(sess, est, h) {
		conn.Close()
		sess.flight.Record("session_park",
			fmt.Sprintf("resume window %v", s.cfg.ParkTimeout))
		s.info("session parked", append(sessAttrs(sess),
			"resume_window", s.cfg.ParkTimeout)...)
		return
	}
	s.finishSession(sess, est, conn)
}

// parkSession moves a session from the active set to the parked map,
// starting its expiry timer. Fails (→ caller drains) when parking is
// disabled, the server is draining, or the station already has a parked
// session.
func (s *Server) parkSession(sess *Session, est int64, h Hello) bool {
	if s.cfg.ParkTimeout <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if _, dup := s.parked[sess.Station]; dup {
		return false
	}
	delete(s.sessions, sess.ID)
	p := &parkedSession{sess: sess, est: est, hello: h}
	p.timer = time.AfterFunc(s.cfg.ParkTimeout, func() { s.expirePark(sess.Station, p) })
	s.parked[sess.Station] = p
	s.m.SessionsActive.Set(int64(len(s.sessions)))
	s.m.SessionsParked.Set(int64(len(s.parked)))
	return true
}

// expirePark drains a parked session whose resume window elapsed.
func (s *Server) expirePark(station string, p *parkedSession) {
	s.mu.Lock()
	if s.parked[station] != p {
		s.mu.Unlock()
		return
	}
	delete(s.parked, station)
	parked := len(s.parked)
	s.mu.Unlock()
	s.m.SessionsParked.Set(int64(parked))
	s.m.ResumesExpired.Inc()
	p.sess.flight.Record("park_expire", "resume window elapsed, draining")
	s.info("session resume window expired", sessAttrs(p.sess)...)
	if err := p.sess.Drain(); err != nil {
		s.warn("session expiry drain failed", append(sessAttrs(p.sess), "err", err.Error())...)
	}
	s.release(p.est)
}

// finishSession drains (idempotent — publishes any still-buffered
// packets), untracks and closes one session.
func (s *Server) finishSession(sess *Session, est int64, conn net.Conn) {
	_ = sess.Drain()
	conn.Close()
	s.mu.Lock()
	delete(s.sessions, sess.ID)
	active := len(s.sessions)
	s.mu.Unlock()
	s.m.SessionsActive.Set(int64(active))
	s.release(est)
}

// Shutdown drains the daemon gracefully: stop accepting, flush every
// session's Gateway (parked sessions included, publishing all
// fully-buffered packets), close the connections, and wait for the
// handlers — bounded by ctx. The sink is left open; close it after
// Shutdown so late records are not lost.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	active := make([]*activeSession, 0, len(s.sessions))
	for _, a := range s.sessions {
		active = append(active, a)
	}
	idle := make([]*parkedSession, 0, len(s.parked))
	for _, p := range s.parked {
		p.timer.Stop()
		idle = append(idle, p)
	}
	s.parked = map[string]*parkedSession{}
	s.mu.Unlock()
	s.m.SessionsParked.Set(0)

	// Flush sessions concurrently; closing each connection afterwards
	// unblocks its reader so the handler can finish.
	var wg sync.WaitGroup
	for _, a := range active {
		wg.Add(1)
		go func(a *activeSession) {
			defer wg.Done()
			if err := a.sess.Drain(); err != nil {
				s.warn("session shutdown drain failed", append(sessAttrs(a.sess), "err", err.Error())...)
			}
			a.conn.Close()
		}(a)
	}
	for _, p := range idle {
		wg.Add(1)
		go func(p *parkedSession) {
			defer wg.Done()
			if err := p.sess.Drain(); err != nil {
				s.warn("session shutdown drain failed", append(sessAttrs(p.sess), "err", err.Error())...)
			}
			s.release(p.est)
		}(p)
	}
	flushed := make(chan struct{})
	go func() {
		wg.Wait()
		s.connWG.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Ready reports whether admission control would currently accept a new
// session: nil while the daemon is accepting, an error describing the
// overload (session limit, memory budget) or drain otherwise — the
// /readyz probe's truth source, so load balancers stop routing to a
// shedding instance.
func (s *Server) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("draining")
	}
	inUse := len(s.sessions) + len(s.parked)
	if s.cfg.MaxSessions > 0 && inUse >= s.cfg.MaxSessions {
		return fmt.Errorf("shedding: session limit reached (%d/%d)", inUse, s.cfg.MaxSessions)
	}
	if s.cfg.MemoryBudget > 0 && s.memInUse >= s.cfg.MemoryBudget {
		return fmt.Errorf("shedding: memory budget exhausted (%d/%d bytes)",
			s.memInUse, s.cfg.MemoryBudget)
	}
	return nil
}

// SessionCount reports the number of live ingestion sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// ParkedCount reports the number of parked (resumable, disconnected)
// sessions.
func (s *Server) ParkedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.parked)
}
