package server_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"cic/internal/server"
)

// TestReconnectContextCancelBound pins the cancellation latency of the
// reconnect machinery: with a 5s base backoff and a dialer that always
// fails, cancelling the context must abort Connect immediately — the
// backoff sleep is interrupted, not waited out.
func TestReconnectContextCancelBound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rc := server.NewReconnectingClient(server.ReconnectOptions{
		Station:     "ctx-bound",
		Config:      testConfig(),
		Context:     ctx,
		BaseBackoff: 5 * time.Second,
		MaxAttempts: -1,
		Dial:        func() (net.Conn, error) { return nil, errors.New("induced dial failure") },
	})
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := rc.Connect()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Connect succeeded with an always-failing dialer")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Connect error = %v, want to wrap context.Canceled", err)
	}
	// The regression bound: well under one backoff interval. Generous
	// slack for loaded CI, still an order of magnitude below 5s.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; the 5s backoff sleep was not interrupted", elapsed)
	}
}

// TestReconnectContextPreCancelled: an already-cancelled context fails
// Connect before any dial or sleep.
func TestReconnectContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dialled := false
	rc := server.NewReconnectingClient(server.ReconnectOptions{
		Station: "ctx-dead",
		Config:  testConfig(),
		Context: ctx,
		Dial: func() (net.Conn, error) {
			dialled = true
			return nil, errors.New("unreachable")
		},
	})
	if _, err := rc.Connect(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Connect error = %v, want context.Canceled", err)
	}
	if dialled {
		t.Error("Connect dialled despite a cancelled context")
	}
}

// TestReconnectContextCancelMidStream: cancellation also interrupts the
// redial loop entered from WriteIQ after a connection loss.
func TestReconnectContextCancelMidStream(t *testing.T) {
	cfg := testConfig()
	srv, addr, _, _ := chaosServer(t, server.Config{ParkTimeout: 30 * time.Second})
	_ = srv

	ctx, cancel := context.WithCancel(context.Background())
	var conns []net.Conn
	rc := server.NewReconnectingClient(server.ReconnectOptions{
		Station:     "ctx-mid",
		Config:      cfg,
		Context:     ctx,
		BaseBackoff: 5 * time.Second,
		MaxAttempts: -1,
		Dial: func() (net.Conn, error) {
			if len(conns) > 0 {
				// After the first kill every redial fails, forcing the
				// backoff sleep that cancellation must interrupt.
				return nil, errors.New("induced redial failure")
			}
			c, err := net.Dial("tcp", addr)
			if err == nil {
				conns = append(conns, c)
			}
			return c, err
		},
	})
	if _, err := rc.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := rc.WriteIQ(make([]complex128, chaosChunk)); err != nil {
		t.Fatalf("first write: %v", err)
	}
	conns[0].Close() // sever the live connection
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = rc.WriteIQ(make([]complex128, chaosChunk))
	}
	if err == nil {
		t.Fatal("WriteIQ kept succeeding on a severed connection with failing redials")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteIQ error = %v, want to wrap context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("mid-stream cancellation took %v; backoff not interrupted", elapsed)
	}
}
