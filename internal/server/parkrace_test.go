package server_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cic"
	"cic/internal/server"
)

// resumeRetry dials and RESUMEs, retrying temporary (overload)
// rejections — exactly what a well-behaved client does while the
// server is still draining the previous incarnation of the session.
func resumeRetry(t *testing.T, addr, station string, cfg cic.Config) (*server.Client, int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		off, err := c.Resume(station, cfg)
		if err == nil {
			return c, off
		}
		c.Abort()
		var se *server.ServerError
		if errors.As(err, &se) && se.Temporary() && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.Fatalf("resume %s: %v", station, err)
	}
}

// TestParkResumeWithinGrace pins the deterministic half of the
// park/resume race: a RESUME that lands while the previous connection
// is still dying (before parkSession has run) must be held by the
// resume grace window, reclaim the parked state, and continue at the
// acknowledged offset. MaxSessions=1 makes any admission-slot
// double-count fail loudly: the handover must not need a second slot.
func TestParkResumeWithinGrace(t *testing.T) {
	cfg := testConfig()
	const station = "grace"
	iq, _ := collisionTrace(t, cfg, 41, station)
	traces := map[string][]complex128{station: iq}

	baseSrv, baseAddr, baseSink, _ := chaosServer(t, server.Config{})
	runStations(t, traces, func(st string) chaosClient {
		return helloClient(t, baseAddr, st, cfg)
	})
	baseline := shutdownAndCollect(t, baseSrv, baseSink)
	if len(baseline[station]) == 0 {
		t.Fatal("baseline produced no records")
	}

	srv, addr, sink, reg := chaosServer(t, server.Config{
		ParkTimeout: 30 * time.Second,
		MaxSessions: 1,
	})
	first := server.NewReconnectingClient(server.ReconnectOptions{
		Station:     station,
		Config:      cfg,
		Addr:        addr,
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
	})
	if _, err := first.Connect(); err != nil {
		t.Fatal(err)
	}
	half := (len(iq) / 2 / chaosChunk) * chaosChunk
	for off := 0; off < half; off += chaosChunk {
		end := off + chaosChunk
		if end > half {
			end = half
		}
		if err := first.WriteIQ(iq[off:end]); err != nil {
			t.Fatalf("first leg write: %v", err)
		}
	}
	waitFor(t, "first leg acknowledged", func() bool {
		return first.Acked() == int64(half)
	})
	first.Abort()

	// No settling sleep: this RESUME races the park itself. The grace
	// window must absorb the race; a lost race would surface as a
	// station conflict, an overload (slot counted twice), or offset 0.
	c2, off := resumeRetry(t, addr, station, cfg)
	if off != int64(half) {
		t.Fatalf("resume offset = %d, want %d", off, half)
	}
	for o := half; o < len(iq); o += chaosChunk {
		end := o + chaosChunk
		if end > len(iq) {
			end = len(iq)
		}
		if err := c2.WriteIQ(iq[o:end]); err != nil {
			t.Fatalf("second leg write: %v", err)
		}
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("second leg close: %v", err)
	}

	got := shutdownAndCollect(t, srv, sink)
	assertIdentical(t, baseline, got)
	snap := reg.Snapshot()
	if n := snap.Counters[server.MetricResumesTotal]; n != 1 {
		t.Errorf("%s = %d, want 1", server.MetricResumesTotal, n)
	}
	if n := snap.Counters[server.MetricResumesExpired]; n != 0 {
		t.Errorf("%s = %d, want 0", server.MetricResumesExpired, n)
	}
	if g := snap.Gauges[server.MetricSessionsParked]; g != 0 {
		t.Errorf("%s = %d, want 0", server.MetricSessionsParked, g)
	}
	if g := snap.Gauges[server.MetricMemoryInUse]; g != 0 {
		t.Errorf("%s = %d after shutdown, want 0 (admission budget leaked or double-released)",
			server.MetricMemoryInUse, g)
	}
}

// TestParkExpiryResumeRace races a RESUME against park expiry: with a
// tiny -park-timeout, each iteration aborts a resumable session and
// schedules the RESUME to land exactly at the expiry deadline. Either
// side may win — the invariant is the bookkeeping: the admission
// budget is released exactly once (the memory gauge never goes
// negative and returns to zero), no session leaks parked, and with
// MaxSessions=1 the fleet keeps admitting, which fails if a slot is
// ever double-counted or leaked.
func TestParkExpiryResumeRace(t *testing.T) {
	cfg := testConfig()
	const parkTimeout = 50 * time.Millisecond
	_, addr, _, reg := chaosServer(t, server.Config{
		ParkTimeout: parkTimeout,
		MaxSessions: 1,
	})
	iq := make([]complex128, 2*chaosChunk)
	const iters = 15
	resumed, expired := 0, 0
	for i := 0; i < iters; i++ {
		station := fmt.Sprintf("race-%d", i)
		c, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Resume(station, cfg); err != nil {
			t.Fatalf("iteration %d: resume: %v", i, err)
		}
		if err := c.WriteIQ(iq); err != nil {
			t.Fatalf("iteration %d: write: %v", i, err)
		}
		c.Abort()
		time.Sleep(parkTimeout) // land the RESUME on the expiry deadline

		before := reg.Snapshot().Counters[server.MetricResumesTotal]
		c2, _ := resumeRetry(t, addr, station, cfg)
		if reg.Snapshot().Counters[server.MetricResumesTotal] > before {
			resumed++
		} else {
			expired++
		}
		if err := c2.Close(); err != nil {
			t.Fatalf("iteration %d: close: %v", i, err)
		}
		if g := reg.Snapshot().Gauges[server.MetricMemoryInUse]; g < 0 {
			t.Fatalf("iteration %d: %s = %d — admission budget double-released",
				i, server.MetricMemoryInUse, g)
		}
		waitFor(t, "session teardown", func() bool {
			snap := reg.Snapshot()
			return snap.Gauges[server.MetricSessionsActive] == 0 &&
				snap.Gauges[server.MetricSessionsParked] == 0 &&
				snap.Gauges[server.MetricMemoryInUse] == 0
		})
	}
	t.Logf("expiry races over %d iterations: %d resumed, %d expired to fresh sessions",
		iters, resumed, expired)
	if resumed+expired != iters {
		t.Fatalf("accounted %d outcomes, want %d", resumed+expired, iters)
	}
	snap := reg.Snapshot()
	if n := snap.Counters[server.MetricResumesExpired]; int(n) < expired {
		t.Errorf("%s = %d, want at least %d", server.MetricResumesExpired, n, expired)
	}
}
