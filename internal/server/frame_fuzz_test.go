package server

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"cic"
)

// FuzzReadFrame: arbitrary byte streams must parse into a valid frame,
// return an error, or hit a clean io.EOF — never panic, and never cause
// an allocation beyond the per-type body cap (malformed length fields
// are rejected from the header alone).
func FuzzReadFrame(f *testing.F) {
	hello, _ := EncodeHello(HelloFor("fuzz", cic.DefaultConfig()))
	var seed bytes.Buffer
	_ = WriteFrame(&seed, FrameHello, hello)
	_ = WriteFrame(&seed, FrameIQ, AppendIQBody(nil, []complex128{1, 2i, -3}))
	_ = WriteFrame(&seed, FrameClose, nil)
	f.Add(seed.Bytes())
	f.Add([]byte{FrameIQ, 0xff, 0xff, 0xff, 0xff}) // 4 GiB length claim
	f.Add([]byte{FrameHello, 0, 0, 0, 3, 'a'})     // truncated body
	f.Add([]byte{0x99, 0, 0, 0, 0})                // unknown type

	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		for {
			typ, body, err := ReadFrame(r)
			if err != nil {
				if err == io.EOF && r.Len() != 0 {
					t.Fatalf("io.EOF with %d bytes unread", r.Len())
				}
				return
			}
			max := MaxBody(typ)
			if max < 0 {
				t.Fatalf("ReadFrame returned unknown type 0x%02x without error", typ)
			}
			if len(body) > max {
				t.Fatalf("frame type 0x%02x body %d bytes exceeds cap %d", typ, len(body), max)
			}
			if typ == FrameIQ {
				if _, err := DecodeIQBody(nil, body); err != nil && len(body)%8 == 0 {
					t.Fatalf("aligned IQ body rejected: %v", err)
				}
			}
			// A parsed frame must re-encode to a stream ReadFrame accepts.
			var rt bytes.Buffer
			if err := WriteFrame(&rt, typ, body); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			typ2, body2, err := ReadFrame(&rt)
			if err != nil || typ2 != typ || !bytes.Equal(body2, body) {
				t.Fatalf("round trip mismatch: %v", err)
			}
		}
	})
}

// FuzzParseHello: arbitrary HELLO bodies must parse or error, never
// panic, and a parsed Hello must re-encode byte-identically.
func FuzzParseHello(f *testing.F) {
	ok, _ := EncodeHello(HelloFor("station-a", cic.DefaultConfig()))
	f.Add(ok)
	f.Add(ok[:len(ok)-1])
	f.Add(bytes.Repeat([]byte{0xff}, helloFixedSize))
	long := append([]byte{}, ok...)
	binary.BigEndian.PutUint16(long[19:21], 60000)
	f.Add(long)

	f.Fuzz(func(t *testing.T, raw []byte) {
		h, err := ParseHello(raw)
		if err != nil {
			return
		}
		if len(h.Station) > MaxStationLen {
			t.Fatalf("parsed station %d bytes exceeds cap", len(h.Station))
		}
		re, err := EncodeHello(h)
		if err != nil {
			t.Fatalf("re-encode of parsed hello failed: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("hello round trip mismatch:\n got %x\nwant %x", re, raw)
		}
	})
}
