package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"cic"
)

// Reconnect defaults.
const (
	DefaultMaxAttempts  = 8
	DefaultBaseBackoff  = 100 * time.Millisecond
	DefaultMaxBackoff   = 5 * time.Second
	DefaultCloseTimeout = 60 * time.Second
)

// ErrResumeGap reports that the server's resume offset fell behind the
// client's retain window: samples the server never ingested were
// already discarded locally, so a gap-free resume is impossible (the
// parked session expired, or the server restarted). The stream must be
// restarted from scratch.
var ErrResumeGap = errors.New("server: resume offset behind retained data")

// ReconnectOptions parameterises a ReconnectingClient. Station, Config
// and either Addr or Dial are required.
type ReconnectOptions struct {
	// Station and Config form the RESUME handshake (must be identical
	// across reconnects — the server matches parked sessions on both).
	Station string
	Config  cic.Config
	// Addr is the daemon's ingestion address, dialled with DialTimeout.
	Addr string
	// Context cancels the client: default dials abort with it, and a
	// cancellation lands *immediately* — a reconnect backoff sleep in
	// flight is interrupted rather than run to completion (nil =
	// context.Background()). Custom Dial hooks should honour it too.
	Context context.Context
	// DialTimeout bounds each TCP connect (DefaultDialTimeout when 0).
	DialTimeout time.Duration
	// Dial overrides the transport — the fault-injection hook for
	// tests (wrap the returned conn with internal/fault.WrapConn).
	Dial func() (net.Conn, error)
	// MaxAttempts caps *consecutive* failed reconnect attempts before
	// the client gives up (DefaultMaxAttempts when 0; negative means
	// retry forever). The counter resets on every successful handshake.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// reconnect attempts; each sleep is uniformly jittered over
	// [d/2, d). Defaults: DefaultBaseBackoff, DefaultMaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// CloseTimeout bounds Close's drain-acknowledgement wait
	// (DefaultCloseTimeout when 0).
	CloseTimeout time.Duration
	// Seed makes the backoff jitter deterministic (tests); 0 selects a
	// fixed default seed — the client is deterministic by design.
	Seed int64
	// Logf logs reconnect events (silent when nil).
	Logf func(format string, args ...any)
}

// ReconnectingClient is a Client that survives connection loss: it
// opens a resumable session (RESUME handshake), retains every sample
// the server has not yet acknowledged, and on any transport error
// redials with exponential backoff, resumes the parked session, and
// replays exactly the unacknowledged tail — the server-side stream has
// no gaps and no duplicates.
//
// The write path (WriteIQ, StreamCF32, Close) must be driven by one
// goroutine; a background reader consumes the server's ACK frames
// concurrently.
type ReconnectingClient struct {
	o   ReconnectOptions
	rng *rand.Rand

	cur *rcConn // nil when disconnected

	mu          sync.Mutex
	retain      []complex128 // samples in [retainStart, sent), oldest first
	retainStart int64        // absolute sample offset of retain[0]
	sent        int64        // absolute samples handed to WriteIQ (+ fast-forward)
	acked       int64        // highest server-acknowledged offset
	reconnects  int64        // successful RESUME handshakes after the first
	closed      bool
}

// rcConn is one live connection: the Client plus its reader goroutine.
type rcConn struct {
	cli  *Client
	raw  net.Conn
	done chan struct{} // closed when the reader exits
	okCh chan struct{} // one token per OK frame (the CLOSE drain ack)
	err  error         // reader's terminal error; read only after done
}

// NewReconnectingClient builds the client; no connection is made until
// Connect or the first write.
func NewReconnectingClient(o ReconnectOptions) *ReconnectingClient {
	if o.DialTimeout == 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BaseBackoff == 0 {
		o.BaseBackoff = DefaultBaseBackoff
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.CloseTimeout == 0 {
		o.CloseTimeout = DefaultCloseTimeout
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	return &ReconnectingClient{o: o, rng: rand.New(rand.NewSource(seed))}
}

func (r *ReconnectingClient) logf(format string, args ...any) {
	if r.o.Logf != nil {
		r.o.Logf(format, args...)
	}
}

// ctx resolves the options context.
func (r *ReconnectingClient) ctx() context.Context {
	if r.o.Context != nil {
		return r.o.Context
	}
	return context.Background()
}

// dial opens the transport (options hook, else TCP to Addr bounded by
// DialTimeout and the options context).
func (r *ReconnectingClient) dial() (net.Conn, error) {
	if r.o.Dial != nil {
		return r.o.Dial()
	}
	ctx, cancel := context.WithTimeout(r.ctx(), r.o.DialTimeout)
	defer cancel()
	var d net.Dialer
	return d.DialContext(ctx, "tcp", r.o.Addr)
}

// Connect establishes (or re-establishes) the session and returns the
// server's resume offset — the number of samples it has already
// ingested for this station. A caller recovering from a process
// restart should skip that many samples of its input before streaming.
func (r *ReconnectingClient) Connect() (int64, error) {
	if err := r.connect(); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retainStart, nil
}

// ResumeOffset reports the absolute sample offset the next written
// sample continues from (== the last RESUME reply after Connect, before
// anything was written).
func (r *ReconnectingClient) ResumeOffset() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sent
}

// Reconnects counts successful RESUME handshakes after the initial
// connect — the number of recoveries.
func (r *ReconnectingClient) Reconnects() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reconnects
}

// Acked reports the highest sample offset the server has acknowledged
// as ingested.
func (r *ReconnectingClient) Acked() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked
}

// Abort kills the connection without the CLOSE handshake and disables
// the client — an abrupt front-end death. A parked server session (and
// a later RESUME by a new client) can still pick the stream up.
func (r *ReconnectingClient) Abort() error {
	r.markClosed()
	if c := r.cur; c != nil {
		c.raw.Close()
		<-c.done
		r.cur = nil
	}
	return nil
}

// connect dials until a RESUME handshake succeeds (bounded by
// MaxAttempts consecutive failures), replays the unacknowledged tail,
// and starts the ACK reader. A non-temporary server rejection (bad
// configuration) fails immediately; overload rejections honour the
// server's retry-after hint.
func (r *ReconnectingClient) connect() error {
	if r.cur != nil {
		return nil
	}
	backoff := r.o.BaseBackoff
	for attempt := 0; ; attempt++ {
		r.mu.Lock()
		closed := r.closed
		first := r.sent == 0 && r.reconnects == 0
		r.mu.Unlock()
		if closed {
			return net.ErrClosed
		}
		if err := r.ctx().Err(); err != nil {
			return fmt.Errorf("server: reconnect aborted: %w", err)
		}
		err := r.tryConnect(first)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrResumeGap) {
			return err
		}
		var se *ServerError
		if errors.As(err, &se) && !se.Temporary() {
			return err
		}
		if r.o.MaxAttempts > 0 && attempt+1 >= r.o.MaxAttempts {
			return fmt.Errorf("server: reconnect: giving up after %d attempts: %w", attempt+1, err)
		}
		sleep := backoff/2 + time.Duration(r.rng.Int63n(int64(backoff/2)+1))
		if se != nil && se.RetryAfter > sleep {
			sleep = se.RetryAfter
		}
		r.logf("reconnect attempt %d failed (%v); retrying in %v", attempt+1, err, sleep)
		// The backoff sleep is context-cancellable: a canceled dial
		// context aborts the wait immediately, not after the interval.
		timer := time.NewTimer(sleep)
		select {
		case <-timer.C:
		case <-r.ctx().Done():
			timer.Stop()
			return fmt.Errorf("server: reconnect aborted: %w", r.ctx().Err())
		}
		if backoff *= 2; backoff > r.o.MaxBackoff {
			backoff = r.o.MaxBackoff
		}
	}
}

// tryConnect performs one dial + RESUME + replay cycle.
func (r *ReconnectingClient) tryConnect(first bool) error {
	conn, err := r.dial()
	if err != nil {
		return err
	}
	cli := NewClient(conn)
	off, err := cli.Resume(r.o.Station, r.o.Config)
	if err != nil {
		conn.Close()
		return err
	}

	r.mu.Lock()
	switch {
	case off < r.retainStart:
		r.mu.Unlock()
		conn.Close()
		return fmt.Errorf("%w (server at %d, retained from %d)", ErrResumeGap, off, r.retainStart)
	case off > r.sent:
		// The server is ahead of this process's stream position — a
		// restarted client resuming a parked session. Fast-forward; the
		// caller skips the input via Connect's offset.
		r.retain = r.retain[:0]
		r.retainStart, r.sent, r.acked = off, off, off
	default:
		r.retain = r.retain[off-r.retainStart:]
		r.retainStart = off
		if off > r.acked {
			r.acked = off
		}
	}
	replay := append([]complex128(nil), r.retain...)
	if !first {
		r.reconnects++
	}
	r.mu.Unlock()

	c := &rcConn{
		cli:  cli,
		raw:  conn,
		done: make(chan struct{}),
		okCh: make(chan struct{}, 1),
	}
	go r.readLoop(c)
	if len(replay) > 0 {
		r.logf("resumed at offset %d, replaying %d samples", off, len(replay))
		if err := cli.WriteIQ(replay); err != nil {
			r.dropConn(c)
			return fmt.Errorf("server: replay after resume: %w", err)
		}
	} else if !first {
		r.logf("resumed at offset %d (nothing to replay)", off)
	}
	r.cur = c
	return nil
}

// readLoop consumes server frames on one connection: ACKs trim the
// retain buffer, OK signals the CLOSE drain acknowledgement, ERROR or
// a transport error ends the loop.
func (r *ReconnectingClient) readLoop(c *rcConn) {
	defer close(c.done)
	for {
		typ, body, err := ReadFrame(c.cli.br)
		if err != nil {
			c.err = err
			return
		}
		switch typ {
		case FrameAck:
			off, err := ParseOffset(body)
			if err != nil {
				c.err = err
				return
			}
			r.noteAck(off)
		case FrameOK:
			select {
			case c.okCh <- struct{}{}:
			default:
			}
		case FrameError:
			if se, perr := ParseErrorBody(body); perr == nil {
				c.err = se
			} else {
				c.err = fmt.Errorf("server error: %s", body)
			}
			return
		default:
			c.err = fmt.Errorf("unexpected server frame 0x%02x", typ)
			return
		}
	}
}

// noteAck advances the acknowledged offset, releasing retained samples
// the server has durably ingested.
func (r *ReconnectingClient) noteAck(off int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off <= r.acked {
		return
	}
	r.acked = off
	if drop := off - r.retainStart; drop > 0 && drop <= int64(len(r.retain)) {
		r.retain = r.retain[drop:]
		r.retainStart = off
	}
}

// dropConn closes a dead connection and waits for its reader.
func (r *ReconnectingClient) dropConn(c *rcConn) {
	c.raw.Close()
	<-c.done
	if r.cur == c {
		r.cur = nil
	}
}

// WriteIQ streams samples, transparently reconnecting and replaying the
// unacknowledged tail on any transport failure.
func (r *ReconnectingClient) WriteIQ(iq []complex128) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return net.ErrClosed
	}
	r.retain = append(r.retain, iq...)
	r.sent += int64(len(iq))
	r.mu.Unlock()
	for {
		if r.cur == nil {
			// connect replays the whole retained tail, which includes iq.
			if err := r.connect(); err != nil {
				return err
			}
			return nil
		}
		if err := r.cur.cli.WriteIQ(iq); err == nil {
			return nil
		}
		r.dropConn(r.cur)
	}
}

// Close ends the stream: CLOSE, drain acknowledgement, disconnect —
// reconnecting and retrying if the connection dies during the drain
// wait. A nil return means every sample reached a published state.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	deadline := time.NewTimer(r.o.CloseTimeout)
	defer deadline.Stop()
	for {
		if r.cur == nil {
			if err := r.connect(); err != nil {
				r.markClosed()
				return err
			}
		}
		c := r.cur
		err := WriteFrame(c.cli.bw, FrameClose, nil)
		if err == nil {
			err = c.cli.bw.Flush()
		}
		if err != nil {
			r.dropConn(c)
			continue
		}
		select {
		case <-c.okCh:
			r.markClosed()
			c.raw.Close()
			<-c.done
			r.cur = nil
			return nil
		case <-c.done:
			// Connection died before the drain ack; resume and retry.
			r.logf("close interrupted (%v); retrying", c.err)
			r.dropConn(c)
		case <-deadline.C:
			r.markClosed()
			r.dropConn(c)
			return fmt.Errorf("server: close: no drain acknowledgement within %v", r.o.CloseTimeout)
		}
	}
}

func (r *ReconnectingClient) markClosed() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
}
