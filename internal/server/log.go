package server

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// logfHandler adapts the legacy printf-style Config.Logf sink to slog:
// each record renders as "msg key=value ..." on one line, so existing
// Logf consumers keep working while the daemon logs structured events.
// Level filtering and groups are intentionally not implemented — the
// legacy sink never had them.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	write := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	}
	for _, a := range h.attrs {
		write(a)
	}
	r.Attrs(write)
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return h
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }
