// Package server is the cic network ingestion subsystem: a TCP daemon
// (cmd/cic-gatewayd) that runs one streaming cic.Gateway per connection,
// fed IQ over a small length-prefixed framing protocol, plus the matching
// client side (Dial/Client, used by cmd/cic-feed). Decoded packets are
// published as NDJSON through a fan-out sink; docs/SERVER.md is the wire
// spec and operational walkthrough.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"cic"
)

// Frame types. A frame is a 5-byte header — one type byte followed by a
// big-endian uint32 body length — then the body. The length counts body
// bytes only and is capped per type (see MaxBody); a reader must reject
// an oversized length before allocating anything.
const (
	// FrameHello opens a session (client→server): station id plus the
	// PHY parameters the per-connection Gateway is built from.
	FrameHello byte = 0x01
	// FrameIQ carries a chunk of cf32 samples — interleaved little-endian
	// float32 (I, Q) pairs, the GNU Radio convention (client→server).
	FrameIQ byte = 0x02
	// FrameClose ends the stream (client→server): the server flushes the
	// session's Gateway, publishes every remaining packet, then answers
	// with FrameOK so the client knows the drain completed.
	FrameClose byte = 0x03
	// FrameOK acknowledges a HELLO (session admitted) or a CLOSE (session
	// drained); its body is empty (server→client).
	FrameOK byte = 0x04
	// FrameError ends the session with a structured reason (see
	// EncodeErrorBody: a code byte, a retry-after hint, and a UTF-8
	// reason); the server closes the connection after sending it
	// (server→client).
	FrameError byte = 0x05
	// FrameResume opens a *resumable* session (client→server): the body
	// is a HELLO body. If the server holds a parked session for the
	// station the stream continues where it left off; either way the OK
	// reply carries the server's ingested-sample offset, and the server
	// acknowledges progress with ACK frames so the client can trim its
	// replay buffer.
	FrameResume byte = 0x06
	// FrameAck reports the total samples the server has ingested into
	// the session's Gateway (server→client, resumable sessions only):
	// an 8-byte big-endian count. After a reconnect the client replays
	// from the last offset the server reported.
	FrameAck byte = 0x07
)

// Frame size limits, enforced by both ReadFrame and WriteFrame.
const (
	// MaxHelloBody bounds the HELLO and RESUME bodies.
	MaxHelloBody = 1 << 10
	// MaxIQBody bounds one IQ frame: 1 MiB = 128 Ki samples.
	MaxIQBody = 1 << 20
	// MaxIQSamples is the sample capacity of one IQ frame.
	MaxIQSamples = MaxIQBody / 8
	// MaxErrorBody bounds the ERROR body (header + reason).
	MaxErrorBody = 1 << 10
	// MaxOKBody bounds the OK body: empty for a plain acknowledgement,
	// 8 bytes (a resume offset) when answering RESUME.
	MaxOKBody = 8
	// AckBody is the exact ACK body size.
	AckBody = 8

	frameHeaderSize = 5
)

// MaxBody returns the body-size cap for a frame type, or -1 for an
// unknown type.
func MaxBody(typ byte) int {
	switch typ {
	case FrameHello, FrameResume:
		return MaxHelloBody
	case FrameIQ:
		return MaxIQBody
	case FrameClose:
		return 0
	case FrameOK:
		return MaxOKBody
	case FrameAck:
		return AckBody
	case FrameError:
		return MaxErrorBody
	}
	return -1
}

// ReadFrame reads one frame. It validates the type and the per-type body
// cap before allocating, so a malicious length field can never cause an
// oversized allocation. io.EOF is returned only on a clean boundary
// (no header bytes at all); a partial header or body is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		// io.EOF (clean boundary) and transport errors (e.g. a read
		// deadline) pass through unwrapped.
		return 0, nil, err
	}
	typ = hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:5])
	max := MaxBody(typ)
	if max < 0 {
		return 0, nil, fmt.Errorf("server: unknown frame type 0x%02x", typ)
	}
	if n > uint32(max) {
		return 0, nil, fmt.Errorf("server: frame type 0x%02x body %d bytes exceeds limit %d", typ, n, max)
	}
	if n == 0 {
		return typ, nil, nil
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, body, nil
}

// WriteFrame writes one frame, enforcing the same per-type body cap as
// ReadFrame.
func WriteFrame(w io.Writer, typ byte, body []byte) error {
	max := MaxBody(typ)
	if max < 0 {
		return fmt.Errorf("server: unknown frame type 0x%02x", typ)
	}
	if len(body) > max {
		return fmt.Errorf("server: frame type 0x%02x body %d bytes exceeds limit %d", typ, len(body), max)
	}
	var hdr [frameHeaderSize]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

// helloMagic identifies a cic-gatewayd HELLO body; helloVersion is the
// protocol revision.
var helloMagic = [4]byte{'C', 'I', 'C', 'g'}

// helloVersion 2 added the resilience extensions: RESUME/ACK frames,
// the OK resume-offset body, and the structured ERROR body. The HELLO
// body layout is unchanged from v1.
const helloVersion = 2

// helloFixedSize is the byte length of the fixed part of a HELLO body:
// magic(4) version(1) SF(1) CR(1) OSR(4) BW(8) stationLen(2).
const helloFixedSize = 4 + 1 + 1 + 1 + 4 + 8 + 2

// MaxStationLen bounds the station identifier.
const MaxStationLen = 255

// Hello is the session-opening handshake: a station identifier plus the
// cic.Config fields the per-session Gateway is built from. Everything
// not carried here keeps cic.DefaultConfig's value.
type Hello struct {
	// Station is a free-form front-end identifier, echoed into every
	// published Record (≤ MaxStationLen bytes).
	Station string
	// SF is the LoRa spreading factor.
	SF int
	// CR is the coding rate index 1..4 (4/5..4/8).
	CR int
	// OSR is the oversampling ratio of the IQ stream.
	OSR int
	// Bandwidth is the LoRa bandwidth in Hz.
	Bandwidth float64
}

// HelloFor captures the wire-carried fields of a cic.Config.
func HelloFor(station string, cfg cic.Config) Hello {
	return Hello{
		Station:   station,
		SF:        cfg.SpreadingFactor,
		CR:        cfg.CodingRate,
		OSR:       cfg.Oversampling,
		Bandwidth: cfg.Bandwidth,
	}
}

// Config expands the handshake into a full cic.Config (defaults for
// everything the wire does not carry).
func (h Hello) Config() cic.Config {
	cfg := cic.DefaultConfig()
	cfg.SpreadingFactor = h.SF
	cfg.CodingRate = h.CR
	cfg.Oversampling = h.OSR
	cfg.Bandwidth = h.Bandwidth
	return cfg
}

// EncodeHello serialises a HELLO body. Layout (big-endian):
//
//	magic "CICg" | version u8 | SF u8 | CR u8 | OSR u32 | BW f64 bits |
//	stationLen u16 | station bytes
func EncodeHello(h Hello) ([]byte, error) {
	if len(h.Station) > MaxStationLen {
		return nil, fmt.Errorf("server: station id %d bytes exceeds %d", len(h.Station), MaxStationLen)
	}
	if h.SF < 0 || h.SF > 255 || h.CR < 0 || h.CR > 255 || h.OSR < 0 {
		return nil, fmt.Errorf("server: hello fields out of wire range (sf=%d cr=%d osr=%d)", h.SF, h.CR, h.OSR)
	}
	body := make([]byte, 0, helloFixedSize+len(h.Station))
	body = append(body, helloMagic[:]...)
	body = append(body, helloVersion, byte(h.SF), byte(h.CR))
	body = binary.BigEndian.AppendUint32(body, uint32(h.OSR))
	body = binary.BigEndian.AppendUint64(body, math.Float64bits(h.Bandwidth))
	body = binary.BigEndian.AppendUint16(body, uint16(len(h.Station)))
	body = append(body, h.Station...)
	return body, nil
}

// ParseHello decodes a HELLO body. It performs structural validation
// only (magic, version, exact length); PHY-parameter validation happens
// when the session's cic.Config is validated.
func ParseHello(body []byte) (Hello, error) {
	if len(body) < helloFixedSize {
		return Hello{}, fmt.Errorf("server: hello body %d bytes, need at least %d", len(body), helloFixedSize)
	}
	if [4]byte(body[:4]) != helloMagic {
		return Hello{}, fmt.Errorf("server: bad hello magic %q", body[:4])
	}
	if v := body[4]; v != helloVersion {
		return Hello{}, fmt.Errorf("server: unsupported protocol version %d (want %d)", v, helloVersion)
	}
	h := Hello{
		SF:        int(body[5]),
		CR:        int(body[6]),
		OSR:       int(binary.BigEndian.Uint32(body[7:11])),
		Bandwidth: math.Float64frombits(binary.BigEndian.Uint64(body[11:19])),
	}
	stationLen := int(binary.BigEndian.Uint16(body[19:21]))
	if stationLen > MaxStationLen {
		return Hello{}, fmt.Errorf("server: station id %d bytes exceeds %d", stationLen, MaxStationLen)
	}
	if len(body) != helloFixedSize+stationLen {
		return Hello{}, fmt.Errorf("server: hello body %d bytes, station length says %d", len(body), helloFixedSize+stationLen)
	}
	h.Station = string(body[helloFixedSize:])
	if f := h.Bandwidth; math.IsNaN(f) || math.IsInf(f, 0) {
		return Hello{}, fmt.Errorf("server: non-finite bandwidth")
	}
	return h, nil
}

// AppendIQBody appends iq to buf in the IQ-frame encoding (cf32:
// interleaved little-endian float32 I, Q).
func AppendIQBody(buf []byte, iq []complex128) []byte {
	for _, v := range iq {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(real(v))))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(imag(v))))
	}
	return buf
}

// ERROR body codes. A structured ERROR body is one code byte, a
// big-endian uint32 retry-after hint in milliseconds, then the UTF-8
// reason.
const (
	// ErrCodeGeneric is a terminal failure; retrying immediately will
	// not help (bad handshake, protocol violation, decode failure).
	ErrCodeGeneric byte = 0x00
	// ErrCodeOverload is load shedding: the server is over its session
	// or memory budget. The retry-after field tells the client when the
	// admission is worth retrying.
	ErrCodeOverload byte = 0x01
)

// errorFixedSize is the structured ERROR body header: code u8 +
// retry-after-ms u32.
const errorFixedSize = 5

// ServerError is a decoded ERROR frame. Clients reach it through the
// error chain with errors.As to read the code and retry-after hint.
type ServerError struct {
	// Code classifies the failure (ErrCodeGeneric, ErrCodeOverload).
	Code byte
	// RetryAfter is the server's load-shedding hint: how long to wait
	// before retrying admission (0 = no hint).
	RetryAfter time.Duration
	// Reason is the human-readable explanation.
	Reason string
}

// Error renders the frame for logs; the reason text is preserved
// verbatim so callers can match on it.
func (e *ServerError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("%s (retry after %v)", e.Reason, e.RetryAfter)
	}
	return e.Reason
}

// Temporary reports whether the rejection is worth retrying (load
// shedding rather than a terminal protocol failure).
func (e *ServerError) Temporary() bool { return e.Code == ErrCodeOverload }

// EncodeErrorBody serialises a structured ERROR body, truncating the
// reason to fit MaxErrorBody.
func EncodeErrorBody(code byte, retryAfter time.Duration, reason string) []byte {
	if len(reason) > MaxErrorBody-errorFixedSize {
		reason = reason[:MaxErrorBody-errorFixedSize]
	}
	ms := retryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > math.MaxUint32 {
		ms = math.MaxUint32
	}
	body := make([]byte, 0, errorFixedSize+len(reason))
	body = append(body, code)
	body = binary.BigEndian.AppendUint32(body, uint32(ms))
	body = append(body, reason...)
	return body
}

// ParseErrorBody decodes a structured ERROR body.
func ParseErrorBody(body []byte) (*ServerError, error) {
	if len(body) < errorFixedSize {
		return nil, fmt.Errorf("server: error body %d bytes, need at least %d", len(body), errorFixedSize)
	}
	return &ServerError{
		Code:       body[0],
		RetryAfter: time.Duration(binary.BigEndian.Uint32(body[1:5])) * time.Millisecond,
		Reason:     string(body[errorFixedSize:]),
	}, nil
}

// EncodeOffset serialises a sample offset for an OK-with-offset reply
// or an ACK body.
func EncodeOffset(n int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(n))
	return b[:]
}

// ParseOffset decodes an OK or ACK body into a sample offset. An empty
// OK body (a plain acknowledgement) is offset 0.
func ParseOffset(body []byte) (int64, error) {
	switch len(body) {
	case 0:
		return 0, nil
	case 8:
		n := binary.BigEndian.Uint64(body)
		if n > math.MaxInt64 {
			return 0, fmt.Errorf("server: offset %d overflows int64", n)
		}
		return int64(n), nil
	}
	return 0, fmt.Errorf("server: offset body %d bytes, want 0 or 8", len(body))
}

// DecodeIQBody appends the samples encoded in an IQ frame body to dst.
// The body must be a whole number of 8-byte sample records.
func DecodeIQBody(dst []complex128, body []byte) ([]complex128, error) {
	if len(body)%8 != 0 {
		return dst, fmt.Errorf("server: IQ body %d bytes is not a whole number of cf32 samples", len(body))
	}
	for off := 0; off < len(body); off += 8 {
		i := math.Float32frombits(binary.LittleEndian.Uint32(body[off : off+4]))
		q := math.Float32frombits(binary.LittleEndian.Uint32(body[off+4 : off+8]))
		dst = append(dst, complex(float64(i), float64(q)))
	}
	return dst, nil
}
