package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsMethodAndCaching: non-GET/HEAD is rejected with 405 + an
// Allow header, and every response carries Cache-Control: no-store.
func TestMetricsMethodAndCaching(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	srv := httptest.NewServer(r)
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Errorf("Allow = %q", allow)
	}

	resp, err = srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q", cc)
	}

	head, err := srv.Client().Head(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	head.Body.Close()
	if head.StatusCode != 200 {
		t.Errorf("HEAD status = %d", head.StatusCode)
	}
}

// TestMetricsContentNegotiation: default stays JSON; Prometheus
// scrapers (Accept) and ?format= overrides get text exposition.
func TestMetricsContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total").Add(3)
	r.CounterVec("station_frames", []string{"station"}, 0).With("a").Inc()
	srv := httptest.NewServer(r)
	defer srv.Close()

	fetch := func(accept, query string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", srv.URL+query, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	// No Accept header (curl default sends */*, Go sends none): JSON.
	body, ct := fetch("", "")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("default body not JSON: %v", err)
	}
	if _, ct = fetch("*/*", ""); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("*/* Content-Type = %q", ct)
	}

	// Prometheus scraper Accept header: text exposition.
	promAccept := "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5,*/*;q=0.1"
	body, ct = fetch(promAccept, "")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("scraper Content-Type = %q", ct)
	}
	if !strings.Contains(body, "frames_total 3") ||
		!strings.Contains(body, `station_frames{station="a"} 1`) {
		t.Errorf("scraper body missing samples:\n%s", body)
	}

	// Query overrides beat headers both ways.
	if body, _ = fetch("", "?format=prometheus"); !strings.Contains(body, "# TYPE frames_total counter") {
		t.Errorf("?format=prometheus body:\n%s", body)
	}
	if body, _ = fetch(promAccept, "?format=json"); !strings.HasPrefix(body, "{") {
		t.Errorf("?format=json body:\n%s", body)
	}
}

// TestDebugMuxTwoRegistries: a second registry is published under its
// own expvar name instead of being silently shadowed by the first.
func TestDebugMuxTwoRegistries(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("first_only").Add(1)
	r2 := NewRegistry()
	r2.Counter("second_only").Add(2)

	name1, name2 := expvarName(r1), expvarName(r2)
	if name1 == name2 {
		t.Fatalf("two registries share expvar name %q", name1)
	}
	if again := expvarName(r1); again != name1 {
		t.Errorf("remount renamed registry: %q vs %q", again, name1)
	}

	srv := httptest.NewServer(DebugMux(r2))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars[name2]
	if !ok {
		t.Fatalf("/debug/vars missing %q (keys: %d)", name2, len(vars))
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["second_only"] != 2 {
		t.Errorf("second registry snapshot = %v", snap.Counters)
	}
}

// TestDebugMuxFlight: the flight recorder mounts at /debug/flight.
func TestDebugMuxFlight(t *testing.T) {
	r := NewRegistry()
	fr := NewFlightRecorder(8)
	fr.Scope("cid-1", "st").Record("accept", "")
	srv := httptest.NewServer(DebugMux(r, fr))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"cid-1"`) {
		t.Errorf("/debug/flight missing event: %s", body)
	}
}
