package obs

// Canonical metric names for the decode pipeline. docs/OBSERVABILITY.md
// maps each to its decode-stage meaning and paper section.
const (
	MetricSamplesIngested    = "samples_ingested"
	MetricSamplesDropped     = "samples_dropped"
	MetricDetectWindows      = "detect_windows"
	MetricDetectCandidates   = "detect_candidates"
	MetricDetectRejects      = "detect_rejects"
	MetricPreamblesDetected  = "preambles_detected"
	MetricHeadersDecoded     = "headers_decoded"
	MetricHeaderFailures     = "header_failures"
	MetricSymbolsDemodulated = "symbols_demodulated"
	MetricICSSSubSymbols     = "icss_subsymbols"
	MetricSEDAccept          = "sed_accept"
	MetricSEDReject          = "sed_reject"
	MetricCFOAccept          = "cfo_accept"
	MetricCFOReject          = "cfo_reject"
	MetricPowerAccept        = "power_accept"
	MetricPowerReject        = "power_reject"
	MetricCRCPass            = "crc_pass"
	MetricCRCFail            = "crc_fail"
	MetricChaseRecovered     = "crc_chase_recovered"
	MetricPacketsEmitted     = "packets_emitted"
	MetricCollisionSize      = "collision_set_size"
	MetricStageDetect        = "stage_detect_seconds"
	MetricStageDispatch      = "stage_dispatch_seconds"
	MetricStageDemod         = "stage_demod_seconds"
	MetricStageReorder       = "stage_reorder_seconds"
	MetricDecodeLatency      = "decode_latency_seconds"
	MetricQueueDepth         = "queue_depth"
	MetricReorderHeld        = "reorder_held"
	MetricWorkersBusy        = "workers_busy"
	MetricWorkerPanics       = "worker_panics_recovered"
)

// DecodeMetrics is the pre-resolved metric handle set for the decode
// pipeline: every stage holds one of these and operates on its fields
// directly, so the hot path never performs a name lookup. All fields are
// nil when built from a nil Registry, making every operation a no-op
// (see the nil-safety contract in the package comment).
type DecodeMetrics struct {
	SamplesIngested    *Counter
	SamplesDropped     *Counter
	DetectWindows      *Counter
	DetectCandidates   *Counter
	DetectRejects      *Counter
	PreamblesDetected  *Counter
	HeadersDecoded     *Counter
	HeaderFailures     *Counter
	SymbolsDemodulated *Counter
	ICSSSubSymbols     *Counter
	SEDAccept          *Counter
	SEDReject          *Counter
	CFOAccept          *Counter
	CFOReject          *Counter
	PowerAccept        *Counter
	PowerReject        *Counter
	CRCPass            *Counter
	CRCFail            *Counter
	ChaseRecovered     *Counter
	PacketsEmitted     *Counter
	WorkerPanics       *Counter

	CollisionSize *Histogram
	DetectTime    *Histogram
	DispatchTime  *Histogram
	DemodTime     *Histogram
	ReorderWait   *Histogram
	DecodeLatency *Histogram

	QueueDepth  *Gauge
	ReorderHeld *Gauge
	WorkersBusy *Gauge
}

// nop is the disabled metric set: non-nil so field access never panics,
// with all-nil handles so every operation is a no-op.
var nop = &DecodeMetrics{}

// Nop returns the shared disabled DecodeMetrics.
func Nop() *DecodeMetrics { return nop }

// NewDecodeMetrics registers the decode pipeline's metrics on r and
// returns their handles. A nil r yields the disabled (no-op) set.
func NewDecodeMetrics(r *Registry) *DecodeMetrics {
	if r == nil {
		return nop
	}
	return &DecodeMetrics{
		SamplesIngested:    r.Counter(MetricSamplesIngested),
		SamplesDropped:     r.Counter(MetricSamplesDropped),
		DetectWindows:      r.Counter(MetricDetectWindows),
		DetectCandidates:   r.Counter(MetricDetectCandidates),
		DetectRejects:      r.Counter(MetricDetectRejects),
		PreamblesDetected:  r.Counter(MetricPreamblesDetected),
		HeadersDecoded:     r.Counter(MetricHeadersDecoded),
		HeaderFailures:     r.Counter(MetricHeaderFailures),
		SymbolsDemodulated: r.Counter(MetricSymbolsDemodulated),
		ICSSSubSymbols:     r.Counter(MetricICSSSubSymbols),
		SEDAccept:          r.Counter(MetricSEDAccept),
		SEDReject:          r.Counter(MetricSEDReject),
		CFOAccept:          r.Counter(MetricCFOAccept),
		CFOReject:          r.Counter(MetricCFOReject),
		PowerAccept:        r.Counter(MetricPowerAccept),
		PowerReject:        r.Counter(MetricPowerReject),
		CRCPass:            r.Counter(MetricCRCPass),
		CRCFail:            r.Counter(MetricCRCFail),
		ChaseRecovered:     r.Counter(MetricChaseRecovered),
		PacketsEmitted:     r.Counter(MetricPacketsEmitted),
		WorkerPanics:       r.Counter(MetricWorkerPanics),

		CollisionSize: r.Histogram(MetricCollisionSize, SizeBuckets),
		DetectTime:    r.Histogram(MetricStageDetect, DurationBuckets),
		DispatchTime:  r.Histogram(MetricStageDispatch, DurationBuckets),
		DemodTime:     r.Histogram(MetricStageDemod, DurationBuckets),
		ReorderWait:   r.Histogram(MetricStageReorder, DurationBuckets),
		DecodeLatency: r.Histogram(MetricDecodeLatency, DurationBuckets),

		QueueDepth:  r.Gauge(MetricQueueDepth),
		ReorderHeld: r.Gauge(MetricReorderHeld),
		WorkersBusy: r.Gauge(MetricWorkersBusy),
	}
}
