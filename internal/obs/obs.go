// Package obs provides the decode pipeline's observability primitives:
// lock-free counters, gauges and fixed-bucket histograms behind a Registry
// with a deterministic JSON Snapshot, a structured decode-event tracer, and
// an HTTP debug surface (/metrics, /debug/vars, /debug/pprof).
//
// Every metric operation is nil-safe: a *Counter, *Gauge or *Histogram
// obtained from a nil *Registry is nil, and operations on it are no-ops
// that never touch the clock or allocate. Instrumented hot paths therefore
// resolve their metric handles once at construction and pay only a
// pointer-nil test per operation when observability is disabled.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Now returns the current wall-clock time. It is the sanctioned clock
// access point for decode-stage code: the clockinject analyzer forbids
// direct time.Now there, so timing flows through this package, where it
// can be correlated with the metrics it feeds.
func Now() time.Time { return time.Now() }

// Since returns the elapsed time from t, or 0 for a zero t (the Start of
// a disabled histogram), mirroring the package's nil-safe conventions.
func Since(t time.Time) time.Duration {
	if t.IsZero() {
		return 0
	}
	return time.Since(t)
}

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a lock-free instantaneous value (queue depth, buffer occupancy).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket lock-free histogram. Bucket i counts
// observations v <= bounds[i] (and above all prior bounds); one overflow
// bucket counts observations above the last bound. Durations are observed
// in seconds.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value. No-op on a nil receiver.
//
// Non-finite values are handled so a hostile observation can never
// poison the snapshot (NaN/Inf do not survive JSON encoding and would
// break every scrape thereafter): NaN observations are dropped
// entirely, and ±Inf observations are bucketed (overflow / first
// bucket) and counted but contribute nothing to the sum.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	if math.IsInf(v, 0) {
		return
	}
	for {
		old := h.sum.Load()
		next := floatBits(bitsFloat(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Start returns the current time for a later Since call, or the zero time
// on a nil receiver — so a disabled histogram never reads the clock.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since observes the elapsed seconds from t. No-op on a nil receiver or a
// zero t (the Start of a nil histogram).
func (h *Histogram) Since(t time.Time) {
	if h == nil || t.IsZero() {
		return
	}
	h.Observe(time.Since(t).Seconds())
}

// ObserveDuration records d in seconds. No-op on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// DurationBuckets are the default histogram bounds for stage wall times, in
// seconds: 1 µs to 10 s by decades, with a half-decade point per decade.
var DurationBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10,
}

// SizeBuckets are the default histogram bounds for small cardinalities
// (collision-set sizes, queue depths).
var SizeBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// Registry is a named collection of metrics. The zero Registry is not
// usable; create one with NewRegistry. All methods are safe for concurrent
// use, and every method on a nil *Registry is a no-op returning nil/zero
// values, which is the disabled fast path.
type Registry struct {
	start time.Time

	mu            sync.Mutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
}

// NewRegistry creates an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		start:         time.Now(),
		counters:      map[string]*Counter{},
		gauges:        map[string]*Gauge{},
		histograms:    map[string]*Histogram{},
		counterVecs:   map[string]*CounterVec{},
		gaugeVecs:     map[string]*GaugeVec{},
		histogramVecs: map[string]*HistogramVec{},
	}
}

// Counter returns the named counter, registering it on first use. Returns
// nil (the no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// bucket bounds on first use (bounds must be sorted ascending; later calls
// reuse the registered buckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// CounterVec returns the named labeled counter family, registering it
// on first use with the given label names and series cap (0 selects
// DefaultMaxSeries; later calls reuse the registered family). Returns
// nil (the no-op family) on a nil registry.
func (r *Registry) CounterVec(name string, labels []string, limit int) *CounterVec {
	if r == nil {
		return nil
	}
	evicted := r.Counter(MetricLabelsEvicted)
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{name: name, labels: append([]string(nil), labels...)}
		v.lru = newLRUSeries(limit, evicted)
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named labeled gauge family; see CounterVec.
func (r *Registry) GaugeVec(name string, labels []string, limit int) *GaugeVec {
	if r == nil {
		return nil
	}
	evicted := r.Counter(MetricLabelsEvicted)
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{name: name, labels: append([]string(nil), labels...)}
		v.lru = newLRUSeries(limit, evicted)
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named labeled histogram family (children
// share the given bucket bounds); see CounterVec.
func (r *Registry) HistogramVec(name string, labels []string, bounds []float64, limit int) *HistogramVec {
	if r == nil {
		return nil
	}
	evicted := r.Counter(MetricLabelsEvicted)
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histogramVecs[name]
	if !ok {
		v = &HistogramVec{
			name:   name,
			labels: append([]string(nil), labels...),
			bounds: append([]float64(nil), bounds...),
		}
		v.lru = newLRUSeries(limit, evicted)
		r.histogramVecs[name] = v
	}
	return v
}

// Snapshot is a point-in-time copy of every registered metric. Maps
// marshal with sorted keys and labeled series are sorted by label
// values, so the JSON encoding of equal snapshots is byte-identical.
type Snapshot struct {
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`

	// Labeled families (empty maps when none are registered).
	CounterVecs   map[string]VecSnapshot          `json:"counter_vecs"`
	GaugeVecs     map[string]VecSnapshot          `json:"gauge_vecs"`
	HistogramVecs map[string]HistogramVecSnapshot `json:"histogram_vecs"`
}

// VecSnapshot is one labeled counter or gauge family: label names plus
// every live series, sorted by label values.
type VecSnapshot struct {
	Labels []string      `json:"labels"`
	Series []SeriesInt64 `json:"series"`
}

// SeriesInt64 is one labeled int64 series value.
type SeriesInt64 struct {
	Values []string `json:"values"`
	Value  int64    `json:"value"`
}

// HistogramVecSnapshot is one labeled histogram family.
type HistogramVecSnapshot struct {
	Labels []string          `json:"labels"`
	Series []SeriesHistogram `json:"series"`
}

// SeriesHistogram is one labeled histogram series.
type SeriesHistogram struct {
	Values    []string          `json:"values"`
	Histogram HistogramSnapshot `json:"histogram"`
}

// HistogramSnapshot is one histogram's state: per-bucket (non-cumulative)
// counts aligned with the bucket upper bounds, plus totals.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`  // bucket upper bounds, ascending
	Buckets []int64   `json:"buckets"` // len(Bounds)+1; last is overflow
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0..1) from the bucket counts, via
// linear interpolation inside the owning bucket. Observations above the
// last bound report the last bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Buckets {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			frac := 1 - (float64(cum)-rank)/float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// snapshotHistogram copies one histogram's state.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Count:   h.n.Load(),
		Sum:     bitsFloat(h.sum.Load()),
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		hs.Buckets[i] = h.counts[i].Load()
	}
	return hs
}

// Snapshot captures every registered metric. On a nil registry it returns
// a zero Snapshot with non-nil empty maps (so callers can range/marshal it
// without nil checks).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:      map[string]int64{},
		Gauges:        map[string]int64{},
		Histograms:    map[string]HistogramSnapshot{},
		CounterVecs:   map[string]VecSnapshot{},
		GaugeVecs:     map[string]VecSnapshot{},
		HistogramVecs: map[string]HistogramVecSnapshot{},
	}
	if r == nil {
		return s
	}
	s.UptimeSeconds = time.Since(r.start).Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = snapshotHistogram(h)
	}
	for name, v := range r.counterVecs {
		v.mu.Lock()
		vs := VecSnapshot{Labels: append([]string(nil), v.labels...), Series: []SeriesInt64{}}
		for _, e := range v.lru.sortedEntries() {
			vs.Series = append(vs.Series, SeriesInt64{
				Values: append([]string(nil), e.values...),
				Value:  e.metric.(*Counter).Value(),
			})
		}
		v.mu.Unlock()
		s.CounterVecs[name] = vs
	}
	for name, v := range r.gaugeVecs {
		v.mu.Lock()
		vs := VecSnapshot{Labels: append([]string(nil), v.labels...), Series: []SeriesInt64{}}
		for _, e := range v.lru.sortedEntries() {
			vs.Series = append(vs.Series, SeriesInt64{
				Values: append([]string(nil), e.values...),
				Value:  e.metric.(*Gauge).Value(),
			})
		}
		v.mu.Unlock()
		s.GaugeVecs[name] = vs
	}
	for name, v := range r.histogramVecs {
		v.mu.Lock()
		vs := HistogramVecSnapshot{Labels: append([]string(nil), v.labels...), Series: []SeriesHistogram{}}
		for _, e := range v.lru.sortedEntries() {
			vs.Series = append(vs.Series, SeriesHistogram{
				Values:    append([]string(nil), e.values...),
				Histogram: snapshotHistogram(e.metric.(*Histogram)),
			})
		}
		v.mu.Unlock()
		s.HistogramVecs[name] = vs
	}
	return s
}
