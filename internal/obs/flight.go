package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultFlightSize is the event capacity of a flight recorder created
// with size <= 0.
const DefaultFlightSize = 1024

// FlightEvent is one entry in the decode flight recorder: a session
// transition, a decoded-packet verdict, or an incident (shed, panic,
// decode deadline). Events are tiny and structured so the ring can be
// dumped as JSON at /debug/flight or into the log on an incident.
type FlightEvent struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	CID     string    `json:"cid,omitempty"`     // session correlation id
	Station string    `json:"station,omitempty"` // station id from HELLO
	Detail  string    `json:"detail,omitempty"`  // human-oriented context
	Err     string    `json:"err,omitempty"`     // error text for incidents

	// Packet-verdict fields (emit events).
	Packet int         `json:"packet,omitempty"`
	CRCOK  bool        `json:"crc_ok,omitempty"`
	Gates  *GateCounts `json:"gates,omitempty"`
}

// FlightRecorder is a fixed-size lock-free ring of recent FlightEvents.
// Record is wait-free (one atomic add + one atomic pointer store) and
// safe from any goroutine, including panic-recovery paths; once the
// ring wraps, the oldest event is overwritten. A nil recorder drops
// every event, so instrumented code needs no enable checks.
type FlightRecorder struct {
	slots []atomic.Pointer[FlightEvent]
	seq   atomic.Uint64
}

// NewFlightRecorder returns a recorder holding the last `size` events
// (DefaultFlightSize when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightEvent], size)}
}

// Record stamps ev with the next sequence number (and the current time,
// unless the caller pre-filled one) and stores it in the ring.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	ev.Seq = f.seq.Add(1)
	if ev.Time.IsZero() {
		ev.Time = Now()
	}
	f.slots[ev.Seq%uint64(len(f.slots))].Store(&ev)
}

// Snapshot returns the retained events in sequence order. Because
// sequence assignment and the slot store are two separate atomics, a
// snapshot racing concurrent writers can miss an in-flight event; it
// never observes torn or duplicate entries.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if p := f.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// SnapshotCID returns the retained events for one correlation id, in
// sequence order — the post-mortem trail of a single session.
func (f *FlightRecorder) SnapshotCID(cid string) []FlightEvent {
	if f == nil {
		return nil
	}
	all := f.Snapshot()
	out := all[:0]
	for _, ev := range all {
		if ev.CID == cid {
			out = append(out, ev)
		}
	}
	return out
}

// Len reports how many events are currently retained. 0 on nil.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := 0
	for i := range f.slots {
		if f.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Cap reports the ring capacity. 0 on nil.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Scope returns a handle that stamps every recorded event with the
// given correlation id and station — one per session, shared by the
// server frame loop and the session's gateway callbacks. Nil-safe:
// a nil recorder yields a nil (no-op) scope.
func (f *FlightRecorder) Scope(cid, station string) *FlightScope {
	if f == nil {
		return nil
	}
	return &FlightScope{rec: f, cid: cid, station: station}
}

// FlightScope stamps flight events with a session's identity. All
// methods are nil-safe no-ops on a nil scope.
type FlightScope struct {
	rec     *FlightRecorder
	cid     string
	station string
}

// Record appends a kind+detail event under the scope's identity.
func (s *FlightScope) Record(kind, detail string) {
	if s == nil {
		return
	}
	s.rec.Record(FlightEvent{Kind: kind, CID: s.cid, Station: s.station, Detail: detail})
}

// RecordErr appends an incident event carrying an error string.
func (s *FlightScope) RecordErr(kind, detail, errText string) {
	if s == nil {
		return
	}
	s.rec.Record(FlightEvent{Kind: kind, CID: s.cid, Station: s.station, Detail: detail, Err: errText})
}

// RecordEvent appends a caller-built event (packet verdicts with gate
// tallies), overwriting its identity fields with the scope's.
func (s *FlightScope) RecordEvent(ev FlightEvent) {
	if s == nil {
		return
	}
	ev.CID = s.cid
	ev.Station = s.station
	s.rec.Record(ev)
}

// CID returns the scope's correlation id ("" on nil).
func (s *FlightScope) CID() string {
	if s == nil {
		return ""
	}
	return s.cid
}

// flightDump is the /debug/flight response body.
type flightDump struct {
	Len    int           `json:"len"`
	Cap    int           `json:"cap"`
	Events []FlightEvent `json:"events"`
}

// ServeHTTP dumps the ring as JSON (mounted at /debug/flight by
// DebugMux). `?cid=` filters to one session's trail.
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	events := f.Snapshot()
	if cid := req.URL.Query().Get("cid"); cid != "" {
		filtered := events[:0]
		for _, ev := range events {
			if ev.CID == cid {
				filtered = append(filtered, ev)
			}
		}
		events = filtered
	}
	if events == nil {
		events = []FlightEvent{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	if req.Method == http.MethodHead {
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(flightDump{Len: f.Len(), Cap: f.Cap(), Events: events})
}
