package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives every primitive from many goroutines at once
// (run under -race by `make ci`) and checks the final totals are exact —
// the lock-free paths must not lose updates.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("hits")
			gauge := r.Gauge("depth")
			h := r.Histogram("lat", DurationBuckets)
			for i := 0; i < perG; i++ {
				c.Inc()
				gauge.Add(1)
				gauge.Add(-1)
				h.Observe(0.25) // lands in a fixed bucket; sum stays exact
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("hits").Value(); got != goroutines*perG {
		t.Errorf("counter lost updates: got %d want %d", got, goroutines*perG)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Errorf("gauge drifted: got %d want 0", got)
	}
	h := r.Snapshot().Histograms["lat"]
	if h.Count != goroutines*perG {
		t.Errorf("histogram count: got %d want %d", h.Count, goroutines*perG)
	}
	if want := 0.25 * goroutines * perG; math.Abs(h.Sum-want) > 1e-6 {
		t.Errorf("histogram sum: got %g want %g", h.Sum, want)
	}
	// 0.25 s falls in the (0.1, 0.5] bucket of DurationBuckets.
	idx := 0
	for idx < len(DurationBuckets) && 0.25 > DurationBuckets[idx] {
		idx++
	}
	if got := h.Buckets[idx]; got != goroutines*perG {
		t.Errorf("bucket %d: got %d want %d", idx, got, goroutines*perG)
	}
}

// TestSnapshotDeterminism: two snapshots of the same state are deeply equal
// and marshal to byte-identical JSON (sorted map keys).
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(-3)
	r.Histogram("h", SizeBuckets).Observe(3)
	r.Histogram("h", SizeBuckets).Observe(40) // overflow bucket

	s1, s2 := r.Snapshot(), r.Snapshot()
	s1.UptimeSeconds, s2.UptimeSeconds = 0, 0 // the only field allowed to differ
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%#v\n%#v", s1, s2)
	}
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("JSON encodings differ:\n%s\n%s", j1, j2)
	}

	h := s1.Histograms["h"]
	if h.Count != 2 || h.Buckets[len(h.Buckets)-1] != 1 {
		t.Errorf("histogram snapshot wrong: %+v", h)
	}
}

// TestNilSafety: every operation on nil handles and a nil registry is a
// no-op, and Start on a nil histogram never reads the clock.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(2)
	g.Add(-1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if t0 := h.Start(); !t0.IsZero() {
		t.Error("nil Histogram.Start read the clock")
	}
	h.Since(time.Time{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles reported non-zero values")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", SizeBuckets) != nil {
		t.Error("nil registry returned non-nil handles")
	}
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Error("nil-registry snapshot has nil maps")
	}
	if Nop() == nil || Nop().CRCPass != nil {
		t.Error("Nop() must be a non-nil struct of nil handles")
	}
	if m := NewDecodeMetrics(nil); m != Nop() {
		t.Error("NewDecodeMetrics(nil) should return the shared no-op set")
	}
}

// TestQuantile sanity-checks the interpolated quantile estimator.
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all mass in the (1,2] bucket
	}
	snap := r.Snapshot().Histograms["q"]
	if q := snap.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 outside owning bucket: %g", q)
	}
	if q := snap.Quantile(1); q < 1 || q > 2 {
		t.Errorf("p100 outside owning bucket: %g", q)
	}
	h.Observe(100)
	snap = r.Snapshot().Histograms["q"]
	if q := snap.Quantile(1); q != 8 {
		t.Errorf("overflow quantile should clamp to last bound: %g", q)
	}
}

// TestDebugMux exercises /metrics, /debug/vars and /debug/pprof through the
// mux the cmd tools mount behind -debug-addr.
func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricPacketsEmitted).Add(7)
	mux := DebugMux(r)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if snap.Counters[MetricPacketsEmitted] != 7 {
		t.Errorf("/metrics counters = %v", snap.Counters)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Error("/debug/vars missing expvar content")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}
