package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestCounterVecBasics: label sets are independent series, re-With
// returns the same child, snapshot is sorted by label values.
func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("req_total", []string{"station", "sf"}, 0)
	vec.With("st-b", "7").Add(2)
	vec.With("st-a", "8").Inc()
	if c := vec.With("st-b", "7"); c.Value() != 2 {
		t.Errorf("re-With returned a different child: %d", c.Value())
	}
	if vec.Len() != 2 {
		t.Errorf("Len = %d, want 2", vec.Len())
	}
	if again := r.CounterVec("req_total", []string{"station", "sf"}, 0); again != vec {
		t.Error("re-registering the family returned a different vec")
	}

	vs := r.Snapshot().CounterVecs["req_total"]
	if len(vs.Labels) != 2 || vs.Labels[0] != "station" || vs.Labels[1] != "sf" {
		t.Errorf("labels = %v", vs.Labels)
	}
	if len(vs.Series) != 2 {
		t.Fatalf("series = %v", vs.Series)
	}
	if vs.Series[0].Values[0] != "st-a" || vs.Series[0].Value != 1 {
		t.Errorf("series[0] = %+v (want st-a first: sorted)", vs.Series[0])
	}
	if vs.Series[1].Values[0] != "st-b" || vs.Series[1].Value != 2 {
		t.Errorf("series[1] = %+v", vs.Series[1])
	}
}

// TestVecArityMismatch: a With call with the wrong number of values
// yields the nil no-op child instead of corrupting the index.
func TestVecArityMismatch(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", []string{"a", "b"}, 0)
	gv := r.GaugeVec("g", []string{"a"}, 0)
	hv := r.HistogramVec("h", []string{"a"}, SizeBuckets, 0)
	if cv.With("only-one") != nil {
		t.Error("CounterVec.With with wrong arity should return nil")
	}
	if gv.With("x", "y") != nil {
		t.Error("GaugeVec.With with wrong arity should return nil")
	}
	if hv.With() != nil {
		t.Error("HistogramVec.With with wrong arity should return nil")
	}
	if cv.Len() != 0 || gv.Len() != 0 || hv.Len() != 0 {
		t.Error("arity-mismatched With must not create series")
	}
}

// TestVecNilSafety: nil vecs hand out nil children and report empty.
func TestVecNilSafety(t *testing.T) {
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	cv.With("x").Inc()
	gv.With("x").Set(1)
	hv.With("x").Observe(1)
	if cv.Len() != 0 || gv.Len() != 0 || hv.Len() != 0 {
		t.Error("nil vec Len != 0")
	}
	var r *Registry
	if r.CounterVec("c", nil, 0) != nil || r.GaugeVec("g", nil, 0) != nil ||
		r.HistogramVec("h", nil, SizeBuckets, 0) != nil {
		t.Error("nil registry returned non-nil vecs")
	}
	var fr *FlightRecorder
	fr.Record(FlightEvent{Kind: "x"})
	if fr.Snapshot() != nil || fr.Len() != 0 || fr.Cap() != 0 {
		t.Error("nil recorder retained events")
	}
	scope := fr.Scope("cid", "st")
	if scope != nil {
		t.Error("nil recorder returned non-nil scope")
	}
	scope.Record("k", "d")
	scope.RecordErr("k", "d", "e")
	scope.RecordEvent(FlightEvent{})
	if scope.CID() != "" {
		t.Error("nil scope CID != \"\"")
	}
}

// TestVecCardinalityBound churns 10k stations through a capped family
// and proves the registry stays bounded: live series never exceed the
// cap, the overflow is counted on obs_labels_evicted, and the snapshot
// stays well-formed.
func TestVecCardinalityBound(t *testing.T) {
	const cap = 64
	const stations = 10000
	r := NewRegistry()
	vec := r.CounterVec("station_frames", []string{"station"}, cap)
	for i := 0; i < stations; i++ {
		vec.With(fmt.Sprintf("station-%05d", i)).Inc()
	}
	if got := vec.Len(); got != cap {
		t.Errorf("live series = %d, want cap %d", got, cap)
	}
	if got := r.Counter(MetricLabelsEvicted).Value(); got != stations-cap {
		t.Errorf("%s = %d, want %d", MetricLabelsEvicted, got, stations-cap)
	}
	vs := r.Snapshot().CounterVecs["station_frames"]
	if len(vs.Series) != cap {
		t.Errorf("snapshot series = %d, want %d", len(vs.Series), cap)
	}
	// The survivors are the most recently used stations.
	if first := vs.Series[0].Values[0]; first != fmt.Sprintf("station-%05d", stations-cap) {
		t.Errorf("oldest survivor = %q", first)
	}
}

// TestVecLRURecency: touching an old series protects it from eviction.
func TestVecLRURecency(t *testing.T) {
	r := NewRegistry()
	vec := r.GaugeVec("depth", []string{"station"}, 2)
	vec.With("a").Set(1)
	vec.With("b").Set(2)
	vec.With("a").Set(3) // bump a's recency: b is now LRU
	vec.With("c").Set(4) // evicts b
	vs := r.Snapshot().GaugeVecs["depth"]
	if len(vs.Series) != 2 || vs.Series[0].Values[0] != "a" || vs.Series[1].Values[0] != "c" {
		t.Errorf("survivors = %+v, want a and c", vs.Series)
	}
	if got := r.Counter(MetricLabelsEvicted).Value(); got != 1 {
		t.Errorf("evicted = %d, want 1", got)
	}
	// An evicted label set returning starts a fresh series at zero.
	if v := vec.With("b").Value(); v != 0 {
		t.Errorf("returning evicted series carried value %d", v)
	}
}

// TestHistogramVecChildren: children share the family bounds and show
// up in the labeled histogram snapshot.
func TestHistogramVecChildren(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("lat", []string{"sf"}, []float64{1, 10}, 0)
	vec.With("7").Observe(0.5)
	vec.With("7").Observe(100) // overflow
	vec.With("8").Observe(5)
	hs := r.Snapshot().HistogramVecs["lat"]
	if len(hs.Series) != 2 {
		t.Fatalf("series = %+v", hs.Series)
	}
	sf7 := hs.Series[0]
	if sf7.Values[0] != "7" || sf7.Histogram.Count != 2 {
		t.Errorf("sf7 = %+v", sf7)
	}
	if got := sf7.Histogram.Buckets; got[0] != 1 || got[2] != 1 {
		t.Errorf("sf7 buckets = %v", got)
	}
	if len(sf7.Histogram.Bounds) != 2 {
		t.Errorf("bounds not copied: %v", sf7.Histogram.Bounds)
	}
}

// TestVecConcurrentChurn hammers a small-capped family from many
// goroutines (run under -race by make ci): no lost counts on surviving
// series' handles, Len never exceeds the cap.
func TestVecConcurrentChurn(t *testing.T) {
	r := NewRegistry()
	const cap = 8
	vec := r.CounterVec("churn", []string{"station"}, cap)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				vec.With(fmt.Sprintf("st-%d", (g*500+i)%32)).Inc()
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := vec.Len(); got > cap {
		t.Errorf("Len = %d exceeded cap %d", got, cap)
	}
}
