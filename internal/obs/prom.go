package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format 0.0.4 (also accepted by OpenMetrics scrapers). Output is
// deterministic: families sorted by name, series sorted by label
// values, histogram buckets cumulative with a trailing +Inf. Labeled
// and unlabeled families never collide because the registry enforces
// unique names across kinds.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	writeFamily(bw, "cic_uptime_seconds", "gauge",
		"Seconds since the metrics registry was created.", func() {
			writeSample(bw, "cic_uptime_seconds", nil, nil, formatFloat(s.UptimeSeconds))
		})

	for _, name := range sortedKeys(s.Counters) {
		v := s.Counters[name]
		writeFamily(bw, promName(name), "counter", "", func() {
			writeSample(bw, promName(name), nil, nil, strconv.FormatInt(v, 10))
		})
	}
	for _, name := range sortedKeys(s.Gauges) {
		v := s.Gauges[name]
		writeFamily(bw, promName(name), "gauge", "", func() {
			writeSample(bw, promName(name), nil, nil, strconv.FormatInt(v, 10))
		})
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		writeFamily(bw, promName(name), "histogram", "", func() {
			writeHistogramSeries(bw, promName(name), nil, nil, h)
		})
	}
	for _, name := range sortedKeys(s.CounterVecs) {
		vec := s.CounterVecs[name]
		writeFamily(bw, promName(name), "counter", "", func() {
			for _, series := range vec.Series {
				writeSample(bw, promName(name), vec.Labels, series.Values,
					strconv.FormatInt(series.Value, 10))
			}
		})
	}
	for _, name := range sortedKeys(s.GaugeVecs) {
		vec := s.GaugeVecs[name]
		writeFamily(bw, promName(name), "gauge", "", func() {
			for _, series := range vec.Series {
				writeSample(bw, promName(name), vec.Labels, series.Values,
					strconv.FormatInt(series.Value, 10))
			}
		})
	}
	for _, name := range sortedKeys(s.HistogramVecs) {
		vec := s.HistogramVecs[name]
		writeFamily(bw, promName(name), "histogram", "", func() {
			for _, series := range vec.Series {
				writeHistogramSeries(bw, promName(name), vec.Labels, series.Values, series.Histogram)
			}
		})
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, name, kind, help string, body func()) {
	if help != "" {
		w.WriteString("# HELP ")
		w.WriteString(name)
		w.WriteByte(' ')
		w.WriteString(help)
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(kind)
	w.WriteByte('\n')
	body()
}

// writeSample emits one `name{labels} value` line. extra pairs (for
// histogram `le`) are appended by the caller via the labels slices.
func writeSample(w *bufio.Writer, name string, labelNames, labelValues []string, value string) {
	w.WriteString(name)
	writeLabels(w, labelNames, labelValues, "", "")
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// writeLabels renders `{a="x",b="y"}` (nothing when there are no
// labels). extraName/extraValue append one more pair when non-empty —
// used for histogram `le`.
func writeLabels(w *bufio.Writer, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			w.WriteByte(',')
		}
		first = false
		w.WriteString(promLabelName(n))
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(values[i]))
		w.WriteByte('"')
	}
	if extraName != "" {
		if !first {
			w.WriteByte(',')
		}
		w.WriteString(extraName)
		w.WriteString(`="`)
		w.WriteString(extraValue)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// writeHistogramSeries emits the cumulative `le` buckets, +Inf, _sum
// and _count lines for one histogram series.
func writeHistogramSeries(w *bufio.Writer, name string, labelNames, labelValues []string, h HistogramSnapshot) {
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Buckets[i]
		w.WriteString(name)
		w.WriteString("_bucket")
		writeLabels(w, labelNames, labelValues, "le", formatFloat(bound))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(cum, 10))
		w.WriteByte('\n')
	}
	if n := len(h.Buckets); n > 0 {
		cum += h.Buckets[n-1]
	}
	w.WriteString(name)
	w.WriteString("_bucket")
	writeLabels(w, labelNames, labelValues, "le", "+Inf")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(cum, 10))
	w.WriteByte('\n')

	w.WriteString(name)
	w.WriteString("_sum")
	writeLabels(w, labelNames, labelValues, "", "")
	w.WriteByte(' ')
	w.WriteString(formatFloat(h.Sum))
	w.WriteByte('\n')

	w.WriteString(name)
	w.WriteString("_count")
	writeLabels(w, labelNames, labelValues, "", "")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(h.Count, 10))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps a registry metric name onto the Prometheus identifier
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*; out-of-grammar bytes become '_'.
// Registry names are lowercase_snake constants so this is normally the
// identity.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	ok := true
	for i := 0; i < len(name); i++ {
		if !isPromNameByte(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		if isPromNameByte(name[i], i == 0) {
			b.WriteByte(name[i])
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelName is promName without ':' (label grammar is stricter).
func promLabelName(name string) string {
	return strings.ReplaceAll(promName(name), ":", "_")
}

func isPromNameByte(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// escapeLabelValue escapes backslash, double-quote and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
