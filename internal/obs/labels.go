package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricLabelsEvicted counts label sets dropped from labeled metric
// families (CounterVec/GaugeVec/HistogramVec) because the family hit its
// series cap. A non-zero value means per-station telemetry is being
// shed: raise the cap or shard the registry. Registered automatically on
// the first *Vec call.
const MetricLabelsEvicted = "obs_labels_evicted"

// DefaultMaxSeries is the per-family series cap applied when a labeled
// family is registered with limit 0. It bounds registry memory under
// unbounded label churn (a million stations cannot OOM the process):
// beyond the cap the least-recently-used series is evicted and counted
// on obs_labels_evicted.
const DefaultMaxSeries = 1024

// labelSep joins label values into the internal series key. Values
// containing the separator byte (ASCII unit separator, not printable)
// would alias; every external surface (snapshots, Prometheus exposition)
// uses the stored value slice, never the joined key.
const labelSep = "\x1f"

func seriesKey(values []string) string { return strings.Join(values, labelSep) }

// lruSeries is the shared bounded label index behind the three vec
// types: a map from series key to entry plus an intrusive doubly-linked
// recency list (head = most recently used). Callers hold the owning
// vec's mutex.
type lruSeries struct {
	limit   int
	entries map[string]*seriesEntry
	head    *seriesEntry
	tail    *seriesEntry
	evicted *Counter // the registry's obs_labels_evicted counter
}

// seriesEntry is one labeled child series.
type seriesEntry struct {
	key        string
	values     []string
	metric     any // *Counter, *Gauge or *Histogram
	prev, next *seriesEntry
}

func newLRUSeries(limit int, evicted *Counter) lruSeries {
	if limit <= 0 {
		limit = DefaultMaxSeries
	}
	return lruSeries{limit: limit, entries: map[string]*seriesEntry{}, evicted: evicted}
}

// get returns the entry for values, adopting the caller-constructed
// fresh metric on first use and bumping recency. The candidate is built
// before the family lock is taken (callers pass a ready value, not a
// constructor), keeping the critical section free of callback
// invocations; a candidate for an already-live series is simply
// garbage. When the family is at its cap the least-recently-used series
// is evicted first (counted on obs_labels_evicted). Handles resolved
// from an evicted series stay live — they simply no longer appear in
// snapshots; a returning label set starts a fresh series at zero.
func (l *lruSeries) get(values []string, fresh any) *seriesEntry {
	key := seriesKey(values)
	if e, ok := l.entries[key]; ok {
		l.moveToFront(e)
		return e
	}
	for len(l.entries) >= l.limit {
		l.evict()
	}
	e := &seriesEntry{
		key:    key,
		values: append([]string(nil), values...),
		metric: fresh,
	}
	l.entries[key] = e
	l.pushFront(e)
	return e
}

func (l *lruSeries) evict() {
	e := l.tail
	if e == nil {
		return
	}
	l.unlink(e)
	delete(l.entries, e.key)
	l.evicted.Inc()
}

func (l *lruSeries) pushFront(e *seriesEntry) {
	e.prev, e.next = nil, l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lruSeries) unlink(e *seriesEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lruSeries) moveToFront(e *seriesEntry) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}

// sortedEntries returns the live series sorted by label values, for
// deterministic snapshots.
func (l *lruSeries) sortedEntries() []*seriesEntry {
	out := make([]*seriesEntry, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// CounterVec is a labeled counter family with bounded cardinality: at
// most `limit` concurrently-tracked label sets, least-recently-used
// evicted beyond that (counted on obs_labels_evicted). Resolve child
// handles with With once per stream and operate on the returned *Counter
// so the hot path never touches the family's lock. All methods are
// nil-safe: a nil *CounterVec hands out nil (no-op) children.
type CounterVec struct {
	name   string
	labels []string

	mu  sync.Mutex
	lru lruSeries
}

// With returns the child counter for the given label values, creating
// (and possibly evicting) as needed. A values count that does not match
// the family's label names yields the nil no-op counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	fresh := &Counter{}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.lru.get(values, fresh).metric.(*Counter)
}

// Len reports the number of live label sets. 0 on a nil receiver.
func (v *CounterVec) Len() int {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.lru.entries)
}

// GaugeVec is the labeled gauge family; see CounterVec for the
// cardinality and nil-safety contract.
type GaugeVec struct {
	name   string
	labels []string

	mu  sync.Mutex
	lru lruSeries
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	fresh := &Gauge{}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.lru.get(values, fresh).metric.(*Gauge)
}

// Len reports the number of live label sets. 0 on a nil receiver.
func (v *GaugeVec) Len() int {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.lru.entries)
}

// HistogramVec is the labeled histogram family; see CounterVec for the
// cardinality and nil-safety contract. Every child shares the family's
// bucket bounds.
type HistogramVec struct {
	name   string
	labels []string
	bounds []float64

	mu  sync.Mutex
	lru lruSeries
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	fresh := &Histogram{
		bounds: v.bounds,
		counts: make([]atomic.Int64, len(v.bounds)+1),
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.lru.get(values, fresh).metric.(*Histogram)
}

// Len reports the number of live label sets. 0 on a nil receiver.
func (v *HistogramVec) Len() int {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.lru.entries)
}
