package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// checkExposition is a minimal Prometheus text-format validator shared
// with cmd/cic-promcheck's logic: every non-comment line must parse as
// `name{labels} value`, every samples run must be preceded by a # TYPE
// for its family, and histogram buckets must be cumulative and end in
// +Inf. Returns the per-family sample counts.
func checkExposition(t *testing.T, body string) map[string]int {
	t.Helper()
	families := map[string]int{}
	typed := map[string]string{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(strings.TrimPrefix(line[sp+1:], "+"), 64); err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, line[sp+1:], err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if _, ok := typed[strings.TrimSuffix(name, suffix)]; ok {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no # TYPE", ln+1, name)
		}
		families[base]++
	}
	return families
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total").Add(12)
	r.Gauge("sessions_active").Set(3)
	r.Histogram("decode_seconds", []float64{0.1, 1}).Observe(0.05)
	r.Histogram("decode_seconds", []float64{0.1, 1}).Observe(5) // overflow
	cv := r.CounterVec("station_frames", []string{"station", "sf"}, 0)
	cv.With(`we"ird\st`, "7").Add(9)
	cv.With("plain", "8").Add(1)
	hv := r.HistogramVec("station_lat", []string{"station"}, []float64{1}, 0)
	hv.With("a").Observe(0.5)
	hv.With("a").Observe(2)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	families := checkExposition(t, body)

	for _, want := range []string{
		"# TYPE frames_total counter",
		"frames_total 12",
		"# TYPE sessions_active gauge",
		"sessions_active 3",
		"# TYPE decode_seconds histogram",
		`decode_seconds_bucket{le="0.1"} 1`,
		`decode_seconds_bucket{le="+Inf"} 2`,
		"decode_seconds_count 2",
		"# TYPE station_frames counter",
		`station_frames{station="plain",sf="8"} 1`,
		`station_frames{station="we\"ird\\st",sf="7"} 9`,
		`station_lat_bucket{station="a",le="1"} 1`,
		`station_lat_bucket{station="a",le="+Inf"} 2`,
		`station_lat_sum{station="a"} 2.5`,
		`station_lat_count{station="a"} 2`,
		"# TYPE cic_uptime_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	if families["station_frames"] != 2 {
		t.Errorf("station_frames samples = %d, want 2", families["station_frames"])
	}

	// Cumulative-bucket invariant for the unlabeled histogram: the +Inf
	// bucket equals the count.
	if !strings.Contains(body, `decode_seconds_bucket{le="+Inf"} 2`) ||
		!strings.Contains(body, "decode_seconds_count 2") {
		t.Error("+Inf bucket must equal _count")
	}
}

// TestWritePrometheusDeterministic: equal state renders byte-identical.
func TestWritePrometheusDeterministic(t *testing.T) {
	mk := func() string {
		r := NewRegistry()
		for i := 9; i >= 0; i-- {
			r.Counter(fmt.Sprintf("c_%d", i)).Add(int64(i))
			r.CounterVec("v", []string{"s"}, 0).With(fmt.Sprintf("s%d", i)).Inc()
		}
		var buf bytes.Buffer
		s := r.Snapshot()
		s.UptimeSeconds = 0
		if err := s.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("non-deterministic exposition:\n%s\n---\n%s", a, b)
	}
}

func TestPromNameEscaping(t *testing.T) {
	if got := promName("server.weird-name"); got != "server_weird_name" {
		t.Errorf("promName = %q", got)
	}
	if got := promName("9lead"); got != "_lead" {
		t.Errorf("promName leading digit = %q", got)
	}
	if got := promName("ok_name:x9"); got != "ok_name:x9" {
		t.Errorf("promName mangled a valid name: %q", got)
	}
	if got := promLabelName("a:b"); got != "a_b" {
		t.Errorf("promLabelName = %q", got)
	}
	if got := escapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escapeLabelValue = %q", got)
	}
}
