package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// ServeHTTP serves the registry snapshot, making *Registry an
// http.Handler (mounted at /metrics by DebugMux). The encoding is
// content-negotiated:
//
//   - Prometheus text exposition (format 0.0.4) when the Accept header
//     asks for application/openmetrics-text or text/plain — i.e. any
//     standard Prometheus scraper;
//   - the bespoke JSON snapshot otherwise (curl with no Accept header,
//     browsers, and every pre-existing consumer);
//   - `?format=prometheus` / `?format=json` overrides the header.
//
// Non-GET/HEAD methods are rejected with 405, and responses are marked
// Cache-Control: no-store — a cached scrape is worse than none.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	prom := wantsPrometheus(req)
	if prom {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	if req.Method == http.MethodHead {
		return
	}
	s := r.Snapshot()
	if prom {
		_ = s.WritePrometheus(w)
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s)
}

// wantsPrometheus decides the /metrics encoding: explicit ?format=
// wins, then the Accept header; the default stays JSON for backward
// compatibility with the pre-exposition consumers.
func wantsPrometheus(req *http.Request) bool {
	switch strings.ToLower(req.URL.Query().Get("format")) {
	case "prometheus", "prom", "text", "openmetrics":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		switch strings.ToLower(mt) {
		case "application/openmetrics-text", "text/plain":
			return true
		case "application/json":
			return false
		}
	}
	return false
}

// expvar publication is process-global and expvar.Publish panics on a
// duplicate name, so DebugMux assigns each distinct registry a unique
// name: the first is "cic", later ones "cic_1", "cic_2", … Remounting
// the same registry reuses its existing name.
var (
	expvarMu    sync.Mutex
	expvarNames = map[*Registry]string{}
)

// expvarName publishes r (once) and returns its /debug/vars key.
func expvarName(r *Registry) string {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if name, ok := expvarNames[r]; ok {
		return name
	}
	name := "cic"
	if n := len(expvarNames); n > 0 {
		name = fmt.Sprintf("cic_%d", n)
	}
	expvarNames[r] = name
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return name
}

// DebugMux returns the ops endpoint for an instrumented process:
//
//	/metrics          registry snapshot (JSON or Prometheus text, see
//	                  Registry.ServeHTTP)
//	/debug/vars       expvar (includes the registry under "cic" — or
//	                  "cic_N" for additional registries in the same
//	                  process — plus memstats and cmdline)
//	/debug/flight     flight-recorder dump, when a recorder is passed
//	/debug/pprof/...  net/http/pprof profiles
//
// Mount it on a private port (the cmd tools' -debug-addr flag).
func DebugMux(r *Registry, flight ...*FlightRecorder) *http.ServeMux {
	expvarName(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", r)
	mux.Handle("/debug/vars", expvar.Handler())
	for _, f := range flight {
		if f != nil {
			mux.Handle("/debug/flight", f)
			break
		}
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
