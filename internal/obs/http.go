package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// ServeHTTP serves the registry's JSON snapshot, making *Registry an
// http.Handler (mounted at /metrics by DebugMux).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

// expvarOnce guards the process-wide expvar publication: expvar.Publish
// panics on duplicate names, so only the first registry mounted by
// DebugMux is exported under "cic" (one registry per process is the
// expected deployment shape).
var expvarOnce sync.Once

// DebugMux returns the ops endpoint for an instrumented process:
//
//	/metrics          JSON snapshot of the registry
//	/debug/vars       expvar (includes the registry under "cic", plus
//	                  memstats and cmdline)
//	/debug/pprof/...  net/http/pprof profiles
//
// Mount it on a private port (the cmd tools' -debug-addr flag).
func DebugMux(r *Registry) *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("cic", expvar.Func(func() any { return r.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", r)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
