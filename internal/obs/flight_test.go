package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	if fr.Cap() != 4 {
		t.Fatalf("Cap = %d", fr.Cap())
	}
	for i := 0; i < 6; i++ {
		fr.Record(FlightEvent{Kind: fmt.Sprintf("k%d", i)})
	}
	evs := fr.Snapshot()
	if len(evs) != 4 || fr.Len() != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// The oldest two wrapped away; order is by sequence.
	for i, ev := range evs {
		if want := fmt.Sprintf("k%d", i+2); ev.Kind != want {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, want)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("sequence not increasing: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
		if ev.Time.IsZero() {
			t.Error("event missing timestamp")
		}
	}
}

func TestFlightScopeStamping(t *testing.T) {
	fr := NewFlightRecorder(16)
	a := fr.Scope("cid-a", "st-1")
	b := fr.Scope("cid-b", "st-2")
	a.Record("accept", "hello")
	b.Record("accept", "hello")
	a.RecordErr("panic", "worker 3", "boom")
	a.RecordEvent(FlightEvent{Kind: "emit", CID: "overwritten", Packet: 7, CRCOK: true,
		Gates: &GateCounts{SEDAccept: 5}})

	trail := fr.SnapshotCID("cid-a")
	if len(trail) != 3 {
		t.Fatalf("cid-a trail = %+v", trail)
	}
	for _, ev := range trail {
		if ev.CID != "cid-a" || ev.Station != "st-1" {
			t.Errorf("bad stamp: %+v", ev)
		}
	}
	if trail[1].Err != "boom" || trail[2].Packet != 7 || !trail[2].CRCOK {
		t.Errorf("trail fields lost: %+v", trail)
	}
	if trail[2].Gates.SEDAccept != 5 {
		t.Errorf("gates lost: %+v", trail[2].Gates)
	}
	if a.CID() != "cid-a" {
		t.Errorf("CID() = %q", a.CID())
	}
}

// TestFlightConcurrent hammers Record against Snapshot under -race: no
// torn events, every snapshot sorted.
func TestFlightConcurrent(t *testing.T) {
	fr := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scope := fr.Scope(fmt.Sprintf("cid-%d", g), "st")
			for i := 0; i < 500; i++ {
				scope.Record("tick", "")
				if i%25 == 0 {
					for j, ev := range fr.Snapshot() {
						if j > 0 && ev.Seq == 0 {
							t.Error("zero seq in snapshot")
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if fr.Len() != 32 {
		t.Errorf("Len = %d, want full ring", fr.Len())
	}
}

func TestFlightHTTP(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Scope("cid-x", "st").Record("accept", "")
	fr.Scope("cid-y", "st").Record("accept", "")
	srv := httptest.NewServer(fr)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/?cid=cid-x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q", cc)
	}
	var dump struct {
		Len    int           `json:"len"`
		Cap    int           `json:"cap"`
		Events []FlightEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Cap != 8 || dump.Len != 2 {
		t.Errorf("dump len/cap = %d/%d", dump.Len, dump.Cap)
	}
	if len(dump.Events) != 1 || dump.Events[0].CID != "cid-x" {
		t.Errorf("cid filter failed: %+v", dump.Events)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}
