package obs

import "time"

// EventKind labels a decode-trace event.
type EventKind string

// The decode-trace event kinds, in per-packet lifecycle order.
const (
	// EventDetect: a preamble was detected and the packet entered tracking.
	EventDetect EventKind = "detect"
	// EventHeader: the packet's explicit header block was decoded (or
	// failed its checksum — see HeaderOK).
	EventHeader EventKind = "header"
	// EventEmit: the packet's decode completed and it was delivered to the
	// consumer. Emit events from a streaming Gateway are issued in
	// delivery (air-time) order.
	EventEmit EventKind = "emit"
)

// GateCounts tallies the §5.6–5.7 candidate-gate verdicts accumulated
// while demodulating one packet: how many candidate symbols each gate
// accepted or rejected.
type GateCounts struct {
	SEDAccept   int64 `json:"sed_accept"`
	SEDReject   int64 `json:"sed_reject"`
	CFOAccept   int64 `json:"cfo_accept"`
	CFOReject   int64 `json:"cfo_reject"`
	PowerAccept int64 `json:"power_accept"`
	PowerReject int64 `json:"power_reject"`
}

// Add accumulates other into g.
func (g *GateCounts) Add(other GateCounts) {
	g.SEDAccept += other.SEDAccept
	g.SEDReject += other.SEDReject
	g.CFOAccept += other.CFOAccept
	g.CFOReject += other.CFOReject
	g.PowerAccept += other.PowerAccept
	g.PowerReject += other.PowerReject
}

// Event is one structured decode-trace record. A tracer receives every
// event of every packet flowing through an instrumented receiver or
// gateway; fields beyond Kind/PacketID/Start are populated as the
// lifecycle reaches them. Tracers may be invoked from multiple goroutines
// concurrently (header and emit events of different packets can race);
// implementations must be safe for concurrent use.
type Event struct {
	Kind     EventKind `json:"kind"`
	PacketID int       `json:"packet_id"`
	Seq      int64     `json:"seq"`   // dispatch sequence (gateway only)
	Start    int64     `json:"start"` // first preamble sample (absolute)
	SNRdB    float64   `json:"snr_db"`
	CFOHz    float64   `json:"cfo_hz"`
	Score    int       `json:"score,omitempty"` // preamble verify score (detect)

	HeaderOK bool `json:"header_ok,omitempty"`
	NSymbols int  `json:"n_symbols,omitempty"` // symbols fixed by the header

	CRCOK        bool       `json:"crc_ok,omitempty"`
	PayloadLen   int        `json:"payload_len,omitempty"`
	FECCorrected int        `json:"fec_corrected,omitempty"`
	Gates        GateCounts `json:"gates,omitempty"` // per-packet gate verdicts (emit)

	// Elapsed is the duration of the stage that produced the event
	// (header decode or payload demodulation).
	Elapsed time.Duration `json:"elapsed,omitempty"`
	// Latency is preamble-detect to emit, for emit events from a
	// streaming gateway (zero in batch mode, where there is no wall-clock
	// detection instant per packet).
	Latency time.Duration `json:"latency,omitempty"`
}

// Tracer consumes decode-trace events. Must be safe for concurrent use.
type Tracer func(Event)
