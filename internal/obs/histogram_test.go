package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestHistogramEdgeObservations: NaN is dropped, ±Inf is bucketed but
// not summed, negatives land in the first bucket, values beyond the
// last bound land in the overflow bucket — and the snapshot always
// survives JSON encoding.
func TestHistogramEdgeObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge", []float64{0, 1, 10})

	h.Observe(math.NaN())
	snap := r.Snapshot().Histograms["edge"]
	if snap.Count != 0 {
		t.Errorf("NaN was counted: %+v", snap)
	}

	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	snap = r.Snapshot().Histograms["edge"]
	if snap.Count != 2 {
		t.Errorf("Inf count = %d, want 2", snap.Count)
	}
	if snap.Sum != 0 {
		t.Errorf("Inf poisoned the sum: %g", snap.Sum)
	}
	if snap.Buckets[0] != 1 { // -Inf: first bucket
		t.Errorf("-Inf bucket: %v", snap.Buckets)
	}
	if snap.Buckets[len(snap.Buckets)-1] != 1 { // +Inf: overflow
		t.Errorf("+Inf bucket: %v", snap.Buckets)
	}

	h.Observe(-5) // negative but finite: first bucket, summed
	h.Observe(11) // beyond last bound: overflow, summed
	h.Observe(10) // exactly the last bound: last bounded bucket (le semantics)
	snap = r.Snapshot().Histograms["edge"]
	if snap.Count != 5 {
		t.Errorf("count = %d", snap.Count)
	}
	if snap.Sum != -5+11+10 {
		t.Errorf("sum = %g", snap.Sum)
	}
	if snap.Buckets[0] != 2 || snap.Buckets[2] != 1 || snap.Buckets[3] != 2 {
		t.Errorf("buckets = %v", snap.Buckets)
	}

	// The whole point: a hostile stream can never make the snapshot
	// unencodable (NaN/Inf have no JSON representation).
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot not JSON-encodable after edge observations: %v", err)
	}

	var buf nullWriter
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatalf("exposition failed after edge observations: %v", err)
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestHistogramConcurrentObserveSnapshot: snapshots taken while
// observations race are monotonically consistent — Observe bumps the
// bucket before the count and Snapshot reads the count first, so a
// snapshot's bucket total can never be BELOW its count — and the final
// quiesced state is exact.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race", []float64{1, 2, 4})
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapErr := make(chan string, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot().Histograms["race"]
			var total int64
			for _, b := range s.Buckets {
				total += b
			}
			if total < s.Count {
				select {
				case snapErr <- fmt.Sprintf("bucket total %d < count %d", total, s.Count):
				default:
				}
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	close(stop)
	select {
	case msg := <-snapErr:
		t.Error(msg)
	default:
	}
	s := r.Snapshot().Histograms["race"]
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Errorf("quiesced bucket total %d != count %d", total, s.Count)
	}
	if want := 1.5 * goroutines * perG; math.Abs(s.Sum-want) > 1e-6 {
		t.Errorf("sum = %g, want %g", s.Sum, want)
	}
}
