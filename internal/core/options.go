// Package core implements the paper's contribution: Concurrent
// Interference Cancellation (CIC) demodulation of collided LoRa packets
// (paper §5).
//
// For each symbol of a tracked packet, the demodulator gathers the symbol
// boundaries of every interfering transmission inside the window, forms the
// optimal Interference-Cancelling Sub-Symbol Set — all pairs
// Φ(r_{1→i}), Φ(r_{i→N+1}) plus the whole symbol Φ(r) (Eqn 12) — and takes
// the spectral intersection (element-wise minimum of unit-energy spectra).
// Every interfering symbol is absent from at least one sub-symbol of the
// set, so the intersection suppresses it at the best frequency resolution
// Heisenberg's time–frequency uncertainty permits (§5.1–5.4). Residual
// candidates are resolved by the Spectral Edge Difference (§5.6) and by the
// per-transmitter CFO and received-power filters (§5.7).
package core

import "cic/internal/obs"

// Options tunes the CIC demodulator; the zero value enables the full
// paper configuration (SED + CFO filter + power filter, optimal ICSS).
type Options struct {
	// Strawman restricts the ICSS to {r_{1→2}, r_{N→N+1}} (§5 "A
	// Strawman-CIC"), reproducing Fig 13's loss of resolution.
	Strawman bool

	// DisableSED turns off Spectral Edge Difference candidate selection.
	DisableSED bool
	// SEDWindows is the number of sliding half-symbol windows per edge
	// (paper: 10).
	SEDWindows int
	// RelativeSED normalises each candidate's edge difference by its total
	// edge energy before comparing — an extension beyond the paper that
	// helps when candidate powers differ wildly; off by default.
	RelativeSED bool

	// DisableCFOFilter turns off the fractional-CFO candidate gate (§5.7).
	DisableCFOFilter bool
	// CFOToleranceBins is the fractional-CFO gate width in LoRa bins
	// (paper: a quarter bin, via a 16× zoom FFT).
	CFOToleranceBins float64
	// CFOZoom is the zoom factor for fractional peak refinement (paper: 16).
	CFOZoom int

	// DisablePowerFilter turns off the received-power candidate gate (§5.7).
	DisablePowerFilter bool
	// PowerToleranceDB is the allowed deviation from the preamble-estimated
	// peak amplitude (paper: 3 dB).
	PowerToleranceDB float64

	// MaxCandidates bounds how many intersected-spectrum peaks enter
	// candidate selection. Default 12.
	MaxCandidates int
	// CandidateFraction: peaks below this fraction of the intersected
	// spectrum's maximum are not considered. Default 0.02 — a packet
	// received 10 dB below a surviving interferer tone must still enter
	// candidacy, and the CFO/power/SED stages are what discriminate.
	CandidateFraction float64
	// MaxBoundaries caps the number of interferer boundaries per window
	// (nearest-boundary merging keeps the strongest structure). Default 16.
	MaxBoundaries int
	// MinSubSymbolFrac: sub-symbols shorter than this fraction of the
	// symbol are left out of the ICSS. Heisenberg makes their frequency
	// resolution useless (a 1/32-symbol window resolves only B/32 ≈ 8-bin
	// lobes at SF8) while their noise-dominated spectra poison the
	// min-intersection, especially at low SNR. Default 1/32.
	MinSubSymbolFrac float64

	// Metrics receives the demodulation-stage counters (symbols, ICSS
	// sub-symbol counts, SED/CFO/power gate verdicts). Nil disables them;
	// setDefaults substitutes the shared no-op set so the hot path is a
	// single nil-field test per operation.
	Metrics *obs.DecodeMetrics
	// Tracer receives structured per-packet decode events from the
	// pipeline driving this demodulator. Nil disables tracing.
	Tracer obs.Tracer
}

func (o *Options) setDefaults() {
	if o.SEDWindows == 0 {
		o.SEDWindows = 10
	}
	if o.CFOToleranceBins == 0 {
		o.CFOToleranceBins = 0.25
	}
	if o.CFOZoom == 0 {
		o.CFOZoom = 16
	}
	if o.PowerToleranceDB == 0 {
		o.PowerToleranceDB = 3
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 8
	}
	if o.CandidateFraction == 0 {
		o.CandidateFraction = 0.1
	}
	if o.MaxBoundaries == 0 {
		o.MaxBoundaries = 16
	}
	if o.MinSubSymbolFrac == 0 {
		o.MinSubSymbolFrac = 1.0 / 32
	}
	if o.Metrics == nil {
		o.Metrics = obs.Nop()
	}
}
