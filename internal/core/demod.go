package core

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"cic/internal/dsp"
	"cic/internal/frame"
	"cic/internal/obs"
	"cic/internal/rx"
)

// Demodulator decodes symbols of one packet amid collisions. It is not
// safe for concurrent use; create one per worker goroutine (demodulation is
// allocation-light after construction).
type Demodulator struct {
	cfg  frame.Config
	opts Options
	d    *rx.Demod

	// scratch — every per-symbol working set lives here so the steady
	// state of a worker allocates nothing (see docs/PERFORMANCE.md for
	// the arena ownership rules). The Candidate buffers are distinct
	// because their users overlap: filterCFO and filterPower both read
	// the same input set, and the intersection of their outputs must
	// survive while both are alive.
	acc      dsp.Spectrum
	sub      dsp.Spectrum
	full     dsp.Spectrum
	lh, rh   dsp.Spectrum
	sedTmp   dsp.Spectrum
	boundsB  []int
	peaksBuf []dsp.Peak
	candBuf  []Candidate
	cfoBuf   []Candidate
	powBuf   []Candidate
	gateBuf  []Candidate
	rankBuf  []Candidate
	tonesBuf []float64
	sigsBuf  []float64
	altBuf   []uint16
	refAmp   float64 // current packet's preamble amplitude (set per symbol)

	// tally accumulates the gate verdicts since the last TakeGateTally —
	// plain (non-atomic) fields, private to this demodulator's goroutine;
	// the global atomic counters live in opts.Metrics.
	tally obs.GateCounts
}

// NewDemodulator builds a CIC demodulator.
func NewDemodulator(cfg frame.Config, opts Options) (*Demodulator, error) {
	opts.setDefaults()
	d, err := rx.NewDemod(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Chirp.ChipCount()
	// Candidate scratch is pre-sized to the configured caps so a fresh
	// demodulator's first symbols don't pay warm-up growth on the hot path
	// (the caps bound every append below; growth remains possible but is
	// not expected).
	mc := opts.MaxCandidates
	return &Demodulator{
		cfg:      cfg,
		opts:     opts,
		d:        d,
		acc:      make(dsp.Spectrum, n),
		sub:      make(dsp.Spectrum, n),
		full:     make(dsp.Spectrum, n),
		lh:       make(dsp.Spectrum, n),
		rh:       make(dsp.Spectrum, n),
		sedTmp:   make(dsp.Spectrum, n),
		boundsB:  make([]int, 0, 4*opts.MaxBoundaries),
		peaksBuf: make([]dsp.Peak, 0, mc),
		candBuf:  make([]Candidate, 0, mc),
		cfoBuf:   make([]Candidate, 0, mc),
		powBuf:   make([]Candidate, 0, mc),
		gateBuf:  make([]Candidate, 0, mc),
		rankBuf:  make([]Candidate, 0, mc),
		tonesBuf: make([]float64, 0, 16),
		sigsBuf:  make([]float64, 0, 16),
		altBuf:   make([]uint16, 0, 8),
	}, nil
}

// Options returns the demodulator's options.
func (dm *Demodulator) Options() Options { return dm.opts }

// TakeGateTally returns the gate verdicts accumulated since the previous
// call and resets the tally. Callers decoding one packet per demodulator
// pass (the gateway workers, the batch pipeline) use it to attribute gate
// activity to individual packets.
func (dm *Demodulator) TakeGateTally() obs.GateCounts {
	t := dm.tally
	dm.tally = obs.GateCounts{}
	return t
}

// BoundariesIn returns the sample offsets (strictly inside (0, M)) at which
// interferer q has a symbol boundary within the window [winStart,
// winStart+M). The preamble up-chirps and SYNC symbols transition on the
// grid q.Start + k·M; the 2.25 down-chirps shift the data grid to
// q.Start + 12.25·M + j·M.
func BoundariesIn(cfg frame.Config, q *rx.Packet, winStart int64) []int {
	out := appendBoundariesIn(nil, cfg, q, winStart)
	if len(out) == 0 {
		return nil
	}
	sort.Ints(out)
	// Deduplicate (the junction may coincide with a grid point).
	uniq := out[:0]
	for i, v := range out {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// appendBoundariesIn is BoundariesIn appending into dst, unsorted and
// without per-interferer deduplication: CollectBoundaries sorts the merged
// set of all interferers anyway, and its one-chip coalescing subsumes the
// dedup, so the hot path skips both.
//
//cic:hotpath
func appendBoundariesIn(dst []int, cfg frame.Config, q *rx.Packet, winStart int64) []int {
	m := int64(cfg.Chirp.SamplesPerSymbol())
	end := winStart + m
	out := dst
	qEnd := q.End(cfg)
	if q.Start >= end || qEnd <= winStart {
		return out
	}
	add := func(t int64) {
		if t > winStart && t < end {
			out = append(out, int(t-winStart))
		}
	}
	// Preamble grid: boundaries at q.Start + k·M up to the data start.
	preEnd := q.DataStart(cfg)
	k0 := (winStart - q.Start) / m
	if k0 < 1 {
		k0 = 1
	}
	for k := k0 - 1; ; k++ {
		t := q.Start + k*m
		if t > preEnd || t >= end {
			break
		}
		add(t)
	}
	// The preamble/data junction itself (down-chirps end mid-grid).
	add(preEnd)
	// Data grid: boundaries at DataStart + j·M up to the packet end.
	j0 := (winStart - preEnd) / m
	if j0 < 1 {
		j0 = 1
	}
	for j := j0 - 1; ; j++ {
		t := preEnd + j*m
		if t > qEnd || t >= end {
			break
		}
		add(t)
	}
	return out
}

// CollectBoundaries merges the boundaries of all interferers inside the
// window, coalescing boundaries closer than one chip (they cancel at
// indistinguishable resolution anyway) and capping the count.
//
//cic:hotpath
func (dm *Demodulator) CollectBoundaries(winStart int64, others []*rx.Packet) []int {
	dm.boundsB = dm.boundsB[:0]
	for _, q := range others {
		dm.boundsB = appendBoundariesIn(dm.boundsB, dm.cfg, q, winStart)
	}
	sort.Ints(dm.boundsB)
	osr := dm.cfg.Chirp.OSR
	merged := dm.boundsB[:0]
	for i, b := range dm.boundsB {
		if i == 0 || b-merged[len(merged)-1] >= osr {
			merged = append(merged, b)
		}
	}
	if len(merged) > dm.opts.MaxBoundaries {
		merged = merged[:dm.opts.MaxBoundaries]
	}
	return merged
}

// Candidate is one surviving frequency-bin hypothesis for a symbol.
type Candidate struct {
	Bin      int     // local-maximum bin on the intersected spectrum
	Pos      float64 // refined full-spectrum peak position (folded bins)
	Power    float64 // intersected-spectrum power
	FullAmp  float64 // peak amplitude on the full-symbol spectrum
	FracBins float64 // distance of Pos from its nearest integer bin
	SED      float64 // spectral edge difference (set when SED runs)
}

// Value returns the symbol value this candidate decodes to: the nearest
// integer bin to the refined position, folded onto [0, 2^SF).
func (c Candidate) Value(n int) int {
	v := int(math.Round(c.Pos)) % n
	if v < 0 {
		v += n
	}
	return v
}

// PickSymbol implements rx.SymbolPicker.
func (dm *Demodulator) PickSymbol(src rx.SampleSource, pkt *rx.Packet, symIdx int, others []*rx.Packet) uint16 {
	return dm.DemodulateSymbol(src, pkt, symIdx, others)
}

// PickSymbolAlternates implements rx.AlternatePicker: it returns the
// surviving candidates' symbol values best-first, so the pipeline's
// CRC-driven chase pass can retry the runner-up on marginal symbols.
// The returned slice is demodulator scratch, valid only until the next
// PickSymbolAlternates call (per the rx.AlternatePicker contract);
// callers that accumulate alternates across symbols copy the values out.
//
//cic:hotpath
func (dm *Demodulator) PickSymbolAlternates(src rx.SampleSource, pkt *rx.Packet, symIdx int, others []*rx.Packet) []uint16 {
	dm.opts.Metrics.SymbolsDemodulated.Inc()
	winStart := pkt.SymbolStart(dm.cfg, symIdx)
	dm.refAmp = pkt.PeakAmp
	dm.d.LoadWindow(src, winStart, pkt.CFOHz)
	bounds := dm.CollectBoundaries(winStart, others)
	spec := dm.intersectICSS(bounds)
	cands := dm.candidates(spec)
	cands = dm.excludeKnownTones(cands, pkt, winStart, others)
	cands = dm.excludeInterfererSignatures(cands, pkt, winStart, others)
	// The primary value must match DemodulateSymbol exactly (including the
	// edge-window bin vote); the remaining candidates follow in rank order.
	primary := uint16(dm.refineBinVote(dm.selectCandidate(cands, pkt), bounds))
	ranked := dm.rankCandidates(cands, pkt)
	n := dm.cfg.Chirp.ChipCount()
	out := append(dm.altBuf[:0], primary)
	for _, c := range ranked {
		v := uint16(c.Value(n))
		dup := false
		for _, prev := range out {
			if prev == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	dm.altBuf = out
	return out
}

// DemodulateSymbol decodes data symbol symIdx of pkt, cancelling the
// interferers listed in others. It returns the chosen bin value.
//
//cic:hotpath
func (dm *Demodulator) DemodulateSymbol(src rx.SampleSource, pkt *rx.Packet, symIdx int, others []*rx.Packet) uint16 {
	dm.opts.Metrics.SymbolsDemodulated.Inc()
	winStart := pkt.SymbolStart(dm.cfg, symIdx)
	dm.refAmp = pkt.PeakAmp
	dm.d.LoadWindow(src, winStart, pkt.CFOHz)
	bounds := dm.CollectBoundaries(winStart, others)
	spec := dm.intersectICSS(bounds)
	cands := dm.candidates(spec)
	cands = dm.excludeKnownTones(cands, pkt, winStart, others)
	cands = dm.excludeInterfererSignatures(cands, pkt, winStart, others)
	best := dm.selectCandidate(cands, pkt)
	// A partially-cancelled interferer adjacent to the true tone biases any
	// single position estimate by up to a bin. Each interfering symbol is
	// absent from one edge sub-window, so a vote among the full-window
	// estimate and the two edge estimates recovers the true bin whenever at
	// least two estimates are uncontaminated.
	return uint16(dm.refineBinVote(best, bounds))
}

// refineBinVote refines the winning candidate's integer bin by majority
// vote over three DTFT position estimates: the full window and the two
// boundary-delimited edge sub-windows (which exclude C_next and C_prev
// interference respectively).
//
//cic:hotpath
func (dm *Demodulator) refineBinVote(best Candidate, bounds []int) int {
	n := dm.cfg.Chirp.ChipCount()
	m := dm.cfg.Chirp.SamplesPerSymbol()
	v := best.Value(n)
	if len(bounds) == 0 {
		return v
	}
	first, last := bounds[0], bounds[len(bounds)-1]
	minSpan := m / 4 // edge estimates need enough span to refine to ±½ bin
	var edges [2]int
	nEdges := 0
	dech := dm.d.Dechirped()
	for _, w := range [2]struct{ from, to int }{{0, first}, {last, m}} {
		if w.to-w.from < minSpan {
			continue
		}
		pos, _ := refineWindowed(dech[w.from:w.to], m, best.Pos, dm.cfg.Chirp.OSR, n)
		edges[nEdges] = pos
		nEdges++
	}
	// Majority over {v, edges…}: with at most three voters the only way a
	// bin outvotes the full-window estimate v is both edges agreeing on a
	// different bin; every other split leaves v with the (tie-preferred)
	// plurality.
	if nEdges == 2 && edges[0] == edges[1] {
		return edges[0]
	}
	return v
}

// refineWindowed estimates the integer bin of a tone near approxPos using
// only the samples of a sub-window. The DTFT magnitude is invariant to the
// sub-window's offset from the symbol start (the offset contributes a
// constant phase per probe position), so the probe uses the sub-window
// samples directly. Probing runs over a ±1.5-bin grid at 1/8-bin steps on
// both OSR images via the two-stage strided search.
//
//cic:hotpath
func refineWindowed(sub []complex128, m int, approxPos float64, osr, n int) (int, float64) {
	best := math.Inf(-1)
	bestBin := int(math.Round(approxPos))
	for img := 0; img < 2; img++ {
		base := approxPos
		if img == 1 {
			base += float64((osr - 1) * n)
		}
		pos, p := dsp.SearchFineGrid(sub, m, base, 12, 1.0/8)
		if p > best {
			best = p
			bb := int(math.Round(pos)) % n
			if bb < 0 {
				bb += n
			}
			bestBin = bb
		}
	}
	return bestBin, best
}

// KnownPreambleTone predicts the folded bin (fractional) at which
// interferer q's preamble or SYNC region appears inside the window starting
// at winStart, de-chirped with pkt's CFO correction. ok is false when q's
// preamble/SYNC does not overlap the window. A misaligned continuous
// up-chirp stream is a constant tone — it has no symbol transitions, so CIC
// cannot cancel it and SED reads it as uniform; but its position is fully
// determined by the tracker state, so it can simply be excluded from
// candidacy.
func KnownPreambleTone(cfg frame.Config, pkt, q *rx.Packet, winStart int64) (float64, bool) {
	m := int64(cfg.Chirp.SamplesPerSymbol())
	upEnd := q.Start + int64((frame.PreambleUpchirps+frame.SyncSymbols)*int(m))
	if q.Start >= winStart+m || upEnd <= winStart {
		return 0, false
	}
	n := cfg.Chirp.ChipCount()
	osr := cfg.Chirp.OSR
	e := ((q.Start-winStart)%m + m) % m
	delta := (q.CFOHz - pkt.CFOHz) / cfg.Chirp.BinWidth()
	base := -float64(e)/float64(osr) + delta
	// Which of q's symbols covers most of the window? If the overlap is the
	// SYNC region the tone shifts by the sync symbol value.
	mid := winStart + m/2
	symIdx := (mid - q.Start) / m
	shift := 0.0
	x, y := cfg.SyncSymbolValues()
	switch symIdx {
	case int64(frame.PreambleUpchirps):
		shift = float64(x)
	case int64(frame.PreambleUpchirps + 1):
		shift = float64(y)
	}
	bin := math.Mod(base+shift, float64(n))
	if bin < 0 {
		bin += float64(n)
	}
	return bin, true
}

// excludeKnownTones removes candidates that sit on a tracked interferer's
// preamble/SYNC tone (within 1.2 bins — covering both estimation error and
// the tone's own lobe), keeping at least one candidate.
//
//cic:hotpath
func (dm *Demodulator) excludeKnownTones(cands []Candidate, pkt *rx.Packet, winStart int64, others []*rx.Packet) []Candidate {
	if len(cands) <= 1 {
		return cands
	}
	n := float64(dm.cfg.Chirp.ChipCount())
	tones := dm.tonesBuf[:0]
	for _, q := range others {
		if t, ok := KnownPreambleTone(dm.cfg, pkt, q, winStart); ok {
			tones = append(tones, t)
		}
	}
	dm.tonesBuf = tones
	if len(tones) == 0 {
		return cands
	}
	// In-place filter: kept writes strictly behind the read cursor, and the
	// no-survivor fallback returns cands before anything was overwritten.
	kept := cands[:0]
	for _, c := range cands {
		hit := false
		for _, t := range tones {
			if math.Abs(dsp.WrapToHalf(c.Pos-t, n/2)) < 1.2 {
				hit = true
				break
			}
		}
		if !hit {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return cands
	}
	return kept
}

// InterfererSignature returns the fractional-bin offset at which every data
// tone of interferer q appears in pkt's de-chirped windows. Both C_prev and
// C_next of q share one signature: their apparent positions are
// k ± τ_q/OSR + δrel, and τ_q (mod OSR) plus the CFO difference fix the
// fractional part regardless of k. ok is false when q's data region does
// not overlap the window. This is the §5.7 CFO filter taken to its
// tracker-informed conclusion: the receiver knows each transmission's CFO
// and boundary phase from its preamble, so a candidate sitting on another
// transmission's fractional grid is an interfering symbol.
func InterfererSignature(cfg frame.Config, pkt, q *rx.Packet, winStart int64) (float64, bool) {
	m := int64(cfg.Chirp.SamplesPerSymbol())
	dataStart := q.DataStart(cfg)
	if q.End(cfg) <= winStart || dataStart >= winStart+m {
		return 0, false
	}
	osr := float64(cfg.Chirp.OSR)
	tau := float64(((dataStart-winStart)%m + m) % m)
	delta := (q.CFOHz - pkt.CFOHz) / cfg.Chirp.BinWidth()
	frac := math.Mod(-tau/osr+delta, 1)
	return dsp.WrapToHalf(frac, 0.5), true
}

// excludeInterfererSignatures drops candidates whose fractional offset
// matches a tracked interferer's data-tone signature while clearly not
// matching our own grid (fractional ≈ 0 after CFO correction). At least one
// candidate is always kept.
//
//cic:hotpath
func (dm *Demodulator) excludeInterfererSignatures(cands []Candidate, pkt *rx.Packet, winStart int64, others []*rx.Packet) []Candidate {
	if len(cands) <= 1 || dm.opts.DisableCFOFilter {
		return cands
	}
	sigs := dm.sigsBuf[:0]
	for _, q := range others {
		if s, ok := InterfererSignature(dm.cfg, pkt, q, winStart); ok {
			// Signatures indistinguishable from our own grid cannot be
			// used for exclusion.
			if math.Abs(s) > 2*dm.opts.CFOToleranceBins {
				sigs = append(sigs, s)
			}
		}
	}
	dm.sigsBuf = sigs
	if len(sigs) == 0 {
		return cands
	}
	// In-place filter, same aliasing contract as excludeKnownTones.
	kept := cands[:0]
	for _, c := range cands {
		hit := false
		if math.Abs(c.FracBins) > dm.opts.CFOToleranceBins {
			for _, s := range sigs {
				if math.Abs(dsp.WrapToHalf(c.FracBins-s, 0.5)) < dm.opts.CFOToleranceBins/2 {
					hit = true
					break
				}
			}
		}
		if !hit {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return cands
	}
	return kept
}

// IntersectedSpectrum exposes the post-cancellation spectrum for the loaded
// window (used by the figure harness). The caller owns the returned copy.
func (dm *Demodulator) IntersectedSpectrum(src rx.SampleSource, pkt *rx.Packet, symIdx int, others []*rx.Packet) dsp.Spectrum {
	winStart := pkt.SymbolStart(dm.cfg, symIdx)
	dm.d.LoadWindow(src, winStart, pkt.CFOHz)
	bounds := dm.CollectBoundaries(winStart, others)
	return append(dsp.Spectrum(nil), dm.intersectICSS(bounds)...)
}

// intersectICSS computes the spectral intersection over the ICSS for the
// currently loaded window (Eqn 12), leaving the result in dm.acc. It also
// fills dm.full with the full-symbol spectrum (un-normalised).
//
//cic:hotpath
func (dm *Demodulator) intersectICSS(bounds []int) dsp.Spectrum {
	m := dm.cfg.Chirp.SamplesPerSymbol()
	// Full symbol spectrum: keep an un-normalised copy for the power
	// filter, then seed the accumulator with its normalised form.
	fullRaw := dm.d.SubSymbolSpectrum(dm.full, 0, m)
	copy(dm.acc, fullRaw)
	dm.acc.Normalize()

	minSpan := int(dm.opts.MinSubSymbolFrac * float64(m))
	nSub := int64(0)
	if dm.opts.Strawman {
		// Strawman ICSS: {r_{1→2}, r_{N→N+1}} only.
		if len(bounds) > 0 {
			first, last := bounds[0], bounds[len(bounds)-1]
			if first >= minSpan {
				dsp.IntersectInto(dm.acc, dm.d.SubSymbolSpectrum(dm.sub, 0, first).Normalize())
				nSub++
			}
			if m-last >= minSpan {
				dsp.IntersectInto(dm.acc, dm.d.SubSymbolSpectrum(dm.sub, last, m).Normalize())
				nSub++
			}
		}
		dm.opts.Metrics.ICSSSubSymbols.Add(nSub)
		return dm.acc
	}
	for _, b := range bounds {
		// The pair r_{1→i}, r_{i→N+1} cancels the transmission whose
		// boundary sits at b, each at its best achievable resolution (§5.4).
		// Sub-symbols below the minimum span are skipped: they cannot
		// resolve the interferer they would cancel, and their
		// noise-dominated spectra degrade the intersection.
		if b >= minSpan {
			dsp.IntersectInto(dm.acc, dm.d.SubSymbolSpectrum(dm.sub, 0, b).Normalize())
			nSub++
		}
		if m-b >= minSpan {
			dsp.IntersectInto(dm.acc, dm.d.SubSymbolSpectrum(dm.sub, b, m).Normalize())
			nSub++
		}
	}
	dm.opts.Metrics.ICSSSubSymbols.Add(nSub)
	return dm.acc
}

// candidates extracts candidate bins from the intersected spectrum and
// annotates them with full-spectrum amplitude and fractional offset. The
// returned slice is the demodulator's candidate arena, valid until the
// next call.
//
//cic:hotpath
func (dm *Demodulator) candidates(spec dsp.Spectrum) []Candidate {
	dm.peaksBuf = dsp.AppendTopPeaks(dm.peaksBuf[:0], spec, dm.opts.CandidateFraction, dm.opts.MaxCandidates)
	peaks := dm.peaksBuf
	cands := dm.candBuf[:0]
	m := dm.cfg.Chirp.SamplesPerSymbol()
	n := dm.cfg.Chirp.ChipCount()
	osr := dm.cfg.Chirp.OSR
	for _, p := range peaks {
		c := Candidate{Bin: p.Bin, Power: p.Power}
		// Refine the position on both M-grid images of this folded bin over
		// ±1.2 bins (the genuine tone may sit a full bin away from the
		// intersected spectrum's local maximum when interference skews the
		// lobe) and keep the stronger refined peak. Selecting the image
		// *after* refinement matters: at an off-by-one bin the weak image's
		// wider lobe out-powers the strong image's narrow one, and refining
		// on the weak image would re-centre on blur instead of the tone.
		hiImage := p.Bin + (osr-1)*n
		dech := dm.d.Dechirped()
		loPos, loPow := dsp.RefinePeakRange(dech, m, p.Bin, dm.opts.CFOZoom, 1.2)
		hiPos, hiPow := dsp.RefinePeakRange(dech, m, hiImage, dm.opts.CFOZoom, 1.2)
		pos, pow, weak := loPos, loPow, hiPow
		if hiPow > loPow {
			pos, pow, weak = hiPos, hiPow, loPow
		}
		folded := math.Mod(pos, float64(n))
		if folded < 0 {
			folded += float64(n)
		}
		c.Pos = folded
		c.FracBins = pos - math.Round(pos)
		// Amplitude from the refined (de-scalloped) strong image plus the
		// weak image's refined peak, summed as amplitudes to match the
		// coherent folding convention used for the preamble reference.
		c.FullAmp = math.Sqrt(pow) + math.Sqrt(weak)
		cands = append(cands, c)
	}
	// Candidates whose refined positions round to the same value are
	// duplicates (adjacent local maxima of one broadened lobe): keep the
	// one with the strongest intersected power.
	dm.candBuf = cands
	dedup := cands[:0]
	for _, c := range cands {
		dup := false
		for j := range dedup {
			if dedup[j].Value(n) == c.Value(n) {
				dup = true
				if c.Power > dedup[j].Power {
					dedup[j] = c
				}
				break
			}
		}
		if !dup {
			dedup = append(dedup, c)
		}
	}
	return dedup
}

// selectCandidate applies the §5.6–§5.7 pipeline: CFO filter, power filter,
// then SED; falling back to the strongest intersected peak when a stage
// eliminates everything.
//
//cic:hotpath
func (dm *Demodulator) selectCandidate(cands []Candidate, pkt *rx.Packet) Candidate {
	if len(cands) == 0 {
		return Candidate{}
	}
	if len(cands) == 1 {
		return cands[0]
	}
	// Gate policy: prefer candidates passing both filters; when the gates
	// conflict, trust the power gate first (Fig 36: received power is the
	// stronger discriminator), then the CFO gate, then give up filtering.
	filtered := cands
	cfoSet := cands
	if !dm.opts.DisableCFOFilter {
		cfoSet = dm.filterCFO(cands)
		dm.countGate(&dm.tally.CFOAccept, &dm.tally.CFOReject,
			dm.opts.Metrics.CFOAccept, dm.opts.Metrics.CFOReject,
			len(cfoSet), len(cands))
	}
	powSet := cands
	if !dm.opts.DisablePowerFilter {
		powSet = dm.filterPower(cands, pkt)
		dm.countGate(&dm.tally.PowerAccept, &dm.tally.PowerReject,
			dm.opts.Metrics.PowerAccept, dm.opts.Metrics.PowerReject,
			len(powSet), len(cands))
	}
	switch both := dm.intersectCands(cfoSet, powSet); {
	case len(both) > 0:
		filtered = both
	case !dm.opts.DisablePowerFilter && len(powSet) > 0:
		filtered = powSet
	case !dm.opts.DisableCFOFilter && len(cfoSet) > 0:
		filtered = cfoSet
	}
	if len(filtered) == 1 {
		return filtered[0]
	}
	if !dm.opts.DisableSED {
		best := dm.selectBySED(filtered)
		dm.countGate(&dm.tally.SEDAccept, &dm.tally.SEDReject,
			dm.opts.Metrics.SEDAccept, dm.opts.Metrics.SEDReject,
			1, len(filtered))
		return best
	}
	// No SED: strongest surviving intersected peak.
	best := filtered[0]
	for _, c := range filtered[1:] {
		if c.Power > best.Power {
			best = c
		}
	}
	return best
}

// countGate records one gate's verdict over a candidate set: accepted of
// total examined pass, the rest are rejects. It feeds both the private
// per-packet tally and the shared atomic counters.
func (dm *Demodulator) countGate(tallyAcc, tallyRej *int64, acc, rej *obs.Counter, accepted, total int) {
	*tallyAcc += int64(accepted)
	*tallyRej += int64(total - accepted)
	acc.Add(int64(accepted))
	rej.Add(int64(total - accepted))
}

// rankCandidates returns the gate-surviving candidates ordered by the same
// criterion selectCandidate uses to pick the winner (composite score with
// SED, or intersected power without it).
//
//cic:hotpath
func (dm *Demodulator) rankCandidates(cands []Candidate, pkt *rx.Packet) []Candidate {
	if len(cands) <= 1 {
		return cands
	}
	filtered := cands
	cfoSet := cands
	if !dm.opts.DisableCFOFilter {
		cfoSet = dm.filterCFO(cands)
	}
	powSet := cands
	if !dm.opts.DisablePowerFilter {
		powSet = dm.filterPower(cands, pkt)
	}
	switch both := dm.intersectCands(cfoSet, powSet); {
	case len(both) > 0:
		filtered = both
	case !dm.opts.DisablePowerFilter && len(powSet) > 0:
		filtered = powSet
	case !dm.opts.DisableCFOFilter && len(cfoSet) > 0:
		filtered = cfoSet
	}
	out := append(dm.rankBuf[:0], filtered...)
	dm.rankBuf = out
	if !dm.opts.DisableSED {
		// selectBySED fills the SED fields; reuse its scoring.
		dm.selectBySED(out)
		slices.SortFunc(out, func(a, b Candidate) int {
			return cmp.Compare(dm.candidateScore(a), dm.candidateScore(b))
		})
	} else {
		slices.SortFunc(out, func(a, b Candidate) int {
			return cmp.Compare(b.Power, a.Power)
		})
	}
	return out
}

// intersectCands returns candidates present (by Bin) in both sets, in the
// demodulator's gate arena (valid until the next call).
//
//cic:hotpath
func (dm *Demodulator) intersectCands(a, b []Candidate) []Candidate {
	out := dm.gateBuf[:0]
	for _, x := range a {
		for _, y := range b {
			if x.Bin == y.Bin {
				out = append(out, x)
				break
			}
		}
	}
	dm.gateBuf = out
	return out
}

// filterCFO keeps candidates whose fractional peak offset (the residual
// CFO after correcting with the packet's own estimate) is within tolerance
// — interfering symbols carry other transmitters' CFOs plus the
// boundary-offset shift Δf (Eqn 10), which is generically off-grid.
//
//cic:hotpath
func (dm *Demodulator) filterCFO(cands []Candidate) []Candidate {
	// Writes dm.cfoBuf (not cands in place): filterPower reads the same
	// input set afterwards, so the input must survive this filter.
	out := dm.cfoBuf[:0]
	for _, c := range cands {
		if math.Abs(c.FracBins) <= dm.opts.CFOToleranceBins {
			out = append(out, c)
		}
	}
	dm.cfoBuf = out
	return out
}

// filterPower keeps candidates whose full-spectrum peak amplitude is within
// PowerToleranceDB of the packet's preamble-estimated amplitude.
//
//cic:hotpath
func (dm *Demodulator) filterPower(cands []Candidate, pkt *rx.Packet) []Candidate {
	if pkt.PeakAmp <= 0 {
		return cands
	}
	out := dm.powBuf[:0]
	for _, c := range cands {
		if c.FullAmp <= 0 {
			continue
		}
		dev := math.Abs(20 * math.Log10(c.FullAmp/pkt.PeakAmp))
		if dev <= dm.opts.PowerToleranceDB {
			out = append(out, c)
		}
	}
	dm.powBuf = out
	return out
}

// selectBySED computes the Spectral Edge Difference for each candidate and
// returns the bin with the smallest difference (§5.6): the true symbol's
// frequency is present uniformly across the symbol, so its edge spectra
// carry equal energy, while an interferer's C_prev/C_next is stronger at
// one edge.
//
//cic:hotpath
func (dm *Demodulator) selectBySED(cands []Candidate) Candidate {
	m := dm.cfg.Chirp.SamplesPerSymbol()
	n := dm.opts.SEDWindows
	half := m / 2
	// Slide over a quarter symbol per edge: left windows start in
	// [0, M/4], right windows end in [3M/4 … M]. Narrower sliding keeps
	// the two sets disjoint enough to expose edge asymmetry.
	step := (m / 4) / n
	if step < 1 {
		step = 1
	}
	for i := range dm.lh {
		dm.lh[i] = math.Inf(1)
		dm.rh[i] = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		from := i * step
		dsp.IntersectInto(dm.lh, dm.d.SubSymbolSpectrum(dm.sedTmp, from, from+half))
		to := m - i*step
		dsp.IntersectInto(dm.rh, dm.d.SubSymbolSpectrum(dm.sedTmp, to-half, to))
	}
	best := cands[0]
	bestScore := math.Inf(1)
	nBins := dm.cfg.Chirp.ChipCount()
	for i := range cands {
		b := cands[i].Value(nBins)
		sed := math.Abs(dm.rh[b] - dm.lh[b])
		if dm.opts.RelativeSED {
			if tot := dm.rh[b] + dm.lh[b]; tot > 0 {
				sed /= tot
			}
		}
		cands[i].SED = sed
		if score := dm.candidateScore(cands[i]); score < bestScore {
			bestScore = score
			best = cands[i]
		}
	}
	return best
}

// candidateScore combines the SED with the soft CFO and power residuals.
// SED (relative to the candidate's edge energy) is the primary
// discriminator per §5.6; the residuals break the near-ties that occur
// when an interferer repeats a symbol across its boundary and therefore
// also reads as edge-uniform.
//
//cic:hotpath
func (dm *Demodulator) candidateScore(c Candidate) float64 {
	b := c.Value(dm.cfg.Chirp.ChipCount())
	tot := dm.rh[b] + dm.lh[b]
	sedRel := 1.0
	if tot > 0 {
		sedRel = math.Abs(dm.rh[b]-dm.lh[b]) / tot
	}
	score := sedRel
	if !dm.opts.DisableCFOFilter {
		score += 0.5 * math.Abs(c.FracBins) / dm.opts.CFOToleranceBins
	}
	if !dm.opts.DisablePowerFilter && c.FullAmp > 0 && dm.refAmp > 0 {
		dev := math.Abs(20 * math.Log10(c.FullAmp/dm.refAmp))
		score += 0.5 * dev / dm.opts.PowerToleranceDB
	}
	return score
}

// CandidatesForTest exposes the candidate pipeline for diagnostics and
// white-box tests: it reloads the window and returns the candidate set
// after known-tone and signature exclusion.
func (dm *Demodulator) CandidatesForTest(src rx.SampleSource, pkt *rx.Packet, symIdx int, others []*rx.Packet) []Candidate {
	winStart := pkt.SymbolStart(dm.cfg, symIdx)
	dm.refAmp = pkt.PeakAmp
	dm.d.LoadWindow(src, winStart, pkt.CFOHz)
	bounds := dm.CollectBoundaries(winStart, others)
	spec := dm.intersectICSS(bounds)
	cands := dm.candidates(spec)
	cands = dm.excludeKnownTones(cands, pkt, winStart, others)
	return dm.excludeInterfererSignatures(cands, pkt, winStart, others)
}
