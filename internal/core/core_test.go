package core

import (
	"bytes"
	"math/rand"
	"testing"

	"cic/internal/channel"
	"cic/internal/chirp"
	"cic/internal/frame"
	"cic/internal/phy"
	"cic/internal/rx"
)

func testCfg() frame.Config {
	return frame.Config{
		Chirp:    chirp.Params{SF: 8, Bandwidth: 250e3, OSR: 4},
		PHY:      phy.Config{SF: 8, CR: phy.CR45, HasCRC: true},
		SyncWord: 0x34,
	}
}

// collision builds an air with len(offsets) packets, packet i starting at
// base+offsets[i], each with its own payload, SNR and CFO.
func collision(t testing.TB, cfg frame.Config, offsets []int64, snrs []float64, cfos []float64, payloads [][]byte, noiseSeed int64) rx.SampleSource {
	if t != nil {
		t.Helper()
	}
	mod, err := frame.NewModulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ems []channel.Emission
	for i, off := range offsets {
		wave, _, err := mod.Modulate(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		ems = append(ems, channel.Emission{
			Start: 4096 + off,
			Samples: channel.Apply(wave, channel.Impairments{
				Amplitude:    channel.AmplitudeForSNR(snrs[i]),
				CFOHz:        cfos[i],
				SampleRate:   cfg.Chirp.SampleRate(),
				InitialPhase: float64(i),
			}),
		})
	}
	return rx.SourceFromRenderer(channel.NewRenderer(ems, cfg.Chirp.OSR, noiseSeed))
}

func TestBoundariesInGeometry(t *testing.T) {
	cfg := testCfg()
	m := int64(cfg.Chirp.SamplesPerSymbol())
	q := &rx.Packet{Start: 1000, NSymbols: 4}
	pre := int64(cfg.PreambleSampleCount())

	// Window aligned inside q's preamble, shifted by 300 samples: exactly
	// one preamble boundary inside the window.
	bs := BoundariesIn(cfg, q, 1000+2*m-300)
	if len(bs) != 1 || bs[0] != 300 {
		t.Errorf("preamble window boundaries = %v, want [300]", bs)
	}

	// Window overlapping the preamble/data junction: the junction sits at
	// q.Start+pre; pre mod m = m/4 (the 0.25 down-chirp), so a window
	// starting at the last down-chirp grid point sees the junction at m/4.
	winStart := q.Start + pre - m/4
	bs = BoundariesIn(cfg, q, winStart)
	found := false
	for _, b := range bs {
		if b == int(m/4) {
			found = true
		}
	}
	if !found {
		t.Errorf("junction boundary missing: %v", bs)
	}

	// Window inside q's data region, offset 100 into symbol 1.
	bs = BoundariesIn(cfg, q, q.Start+pre+m+100)
	if len(bs) != 1 || bs[0] != int(m-100) {
		t.Errorf("data window boundaries = %v, want [%d]", bs, m-100)
	}

	// Window entirely after q ends: nothing.
	bs = BoundariesIn(cfg, q, q.End(cfg)+10)
	if len(bs) != 0 {
		t.Errorf("post-packet boundaries = %v", bs)
	}

	// Window perfectly aligned with q's data grid: boundary at the window
	// edge is NOT inside the window.
	bs = BoundariesIn(cfg, q, q.Start+pre+m)
	if len(bs) != 0 {
		t.Errorf("aligned window boundaries = %v, want none", bs)
	}
}

func TestCollectBoundariesMergesAndCaps(t *testing.T) {
	cfg := testCfg()
	dm, err := NewDemodulator(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := int64(cfg.Chirp.SamplesPerSymbol())
	pre := int64(cfg.PreambleSampleCount())
	// Two interferers with data-grid boundaries 1 sample apart: merged.
	q1 := &rx.Packet{Start: 0, NSymbols: 100}
	q2 := &rx.Packet{Start: 1, NSymbols: 100}
	win := pre + 20*m + 400 // inside both data regions
	bs := dm.CollectBoundaries(win, []*rx.Packet{q1, q2})
	if len(bs) != 1 {
		t.Errorf("boundaries %v, want 1 after merge", bs)
	}
}

func TestCICNoInterferersEqualsArgmax(t *testing.T) {
	cfg := testCfg()
	payload := []byte("solo packet, no interference")
	src := collision(t, cfg, []int64{0}, []float64{25}, []float64{1500}, [][]byte{payload}, 1)
	recv, err := NewReceiver(cfg, Options{}, rx.DetectorOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	results, err := recv.Receive(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].OK() {
		t.Fatalf("results: %+v", results)
	}
	if !bytes.Equal(results[0].Payload, payload) {
		t.Error("payload mismatch")
	}
}

func TestCICDecodesTwoPacketCollision(t *testing.T) {
	cfg := testCfg()
	m := int64(cfg.Chirp.SamplesPerSymbol())
	p1 := []byte("first colliding packet!!")
	p2 := []byte("second colliding packet!")
	// Offset: packet 2 starts mid-way through packet 1, boundaries offset
	// by 0.37 of a symbol.
	off := 20*m + 379
	src := collision(t, cfg,
		[]int64{0, off},
		[]float64{25, 22},
		[]float64{1500, -2300},
		[][]byte{p1, p2}, 2)
	recv, _ := NewReceiver(cfg, Options{}, rx.DetectorOptions{}, 2)
	results, err := recv.Receive(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d packets detected, want 2", len(results))
	}
	for i, want := range [][]byte{p1, p2} {
		if !results[i].OK() {
			t.Errorf("packet %d not decoded: headerOK=%v crcOK=%v", i, results[i].HeaderOK, results[i].CRCOK)
			continue
		}
		if !bytes.Equal(results[i].Payload, want) {
			t.Errorf("packet %d payload mismatch", i)
		}
	}
}

func TestCICDecodesSixPacketCollision(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := testCfg()
	// CR 4/8: the diagonal interleaver + Hamming(8,4) absorb the isolated
	// symbol errors that dense collisions leave behind, so this test
	// exercises the full CIC+FEC stack the way a robust deployment would.
	cfg.PHY.CR = phy.CR48
	m := int64(cfg.Chirp.SamplesPerSymbol())
	rng := rand.New(rand.NewSource(7))
	n := 6
	offsets := make([]int64, n)
	snrs := make([]float64, n)
	cfos := make([]float64, n)
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		// Stagger starts by ~12 symbols with random sub-symbol offsets so
		// every packet overlaps several others (the Fig 12 scenario:
		// partially-overlapping collisions, not a sustained 6-way pile-up).
		offsets[i] = int64(i)*12*m + int64(rng.Intn(int(m)))
		snrs[i] = 20 + 10*rng.Float64()
		cfos[i] = channel.RandomCFO(rng, 10, 915e6)
		payloads[i] = make([]byte, 16)
		rng.Read(payloads[i])
	}
	src := collision(t, cfg, offsets, snrs, cfos, payloads, 3)
	recv, _ := NewReceiver(cfg, Options{}, rx.DetectorOptions{}, 4)
	results, err := recv.Receive(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < n-1 {
		t.Fatalf("%d packets detected, want >= %d", len(results), n-1)
	}
	decoded := 0
	for _, res := range results {
		for i := range payloads {
			if res.OK() && bytes.Equal(res.Payload, payloads[i]) {
				decoded++
				break
			}
		}
	}
	if decoded < n/2 {
		t.Errorf("only %d of %d packets decoded under 6-way collision", decoded, n)
	}
}

// TestStrawmanWorseOrEqual: on a 4-packet collision, full CIC must decode
// at least as many packets as the strawman ICSS (Fig 13 vs Fig 14).
func TestStrawmanWorseOrEqual(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := testCfg()
	m := int64(cfg.Chirp.SamplesPerSymbol())
	rng := rand.New(rand.NewSource(11))
	n := 4
	offsets := make([]int64, n)
	snrs := make([]float64, n)
	cfos := make([]float64, n)
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		offsets[i] = int64(i)*7*m + int64(rng.Intn(int(m)))
		snrs[i] = 25
		cfos[i] = channel.RandomCFO(rng, 10, 915e6)
		payloads[i] = make([]byte, 20)
		rng.Read(payloads[i])
	}
	count := func(opts Options) int {
		src := collision(t, cfg, offsets, snrs, cfos, payloads, 4)
		recv, _ := NewReceiver(cfg, opts, rx.DetectorOptions{}, 4)
		results, err := recv.Receive(src)
		if err != nil {
			t.Fatal(err)
		}
		ok := 0
		for i := range results {
			if results[i].OK() {
				ok++
			}
		}
		return ok
	}
	full := count(Options{})
	straw := count(Options{Strawman: true})
	if straw > full {
		t.Errorf("strawman decoded %d > full CIC %d", straw, full)
	}
	if full < n/2 {
		t.Errorf("full CIC decoded only %d of %d", full, n)
	}
}

// TestSymbolDemodAcrossOffsets sweeps the boundary offset of a single
// interferer and requires high symbol accuracy for offsets >= 10% of the
// symbol (the Fig 38 regime where CIC cancels efficiently).
func TestSymbolDemodAcrossOffsets(t *testing.T) {
	cfg := testCfg()
	// CR 4/7: the occasional ±1-bin slip on a marginal symbol (one Gray
	// bit) is inside the FEC budget, so the test verifies the CIC pipeline
	// rather than demanding a zero-error symbol stream at CR 4/5.
	cfg.PHY.CR = phy.CR47
	m := int64(cfg.Chirp.SamplesPerSymbol())
	p1 := []byte("target packet payload 28B!!!")
	p2 := []byte("interference packet 28 B!!!!")
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		// +1 keeps interferer boundaries off the chip grid, as arbitrary
		// sampling alignment does in a real capture.
		off := 5*m + int64(frac*float64(m)) + 1
		src := collision(t, cfg,
			[]int64{0, off},
			[]float64{25, 21},
			[]float64{900, -1437},
			[][]byte{p1, p2}, 5)
		recv, _ := NewReceiver(cfg, Options{}, rx.DetectorOptions{}, 2)
		results, err := recv.Receive(src)
		if err != nil {
			t.Fatal(err)
		}
		okBoth := len(results) == 2 && results[0].OK() && results[1].OK()
		if !okBoth {
			t.Errorf("frac %.1f: collision not fully decoded (%d results)", frac, len(results))
		}
	}
}

func TestReceiverEmptyAir(t *testing.T) {
	cfg := testCfg()
	r := channel.NewRenderer(nil, cfg.Chirp.OSR, 12)
	src := &spanSource{rx.SourceFromRenderer(r), 0, 200 * int64(cfg.Chirp.SamplesPerSymbol())}
	recv, _ := NewReceiver(cfg, Options{}, rx.DetectorOptions{}, 2)
	results, err := recv.Receive(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("%d packets from pure noise", len(results))
	}
}

type spanSource struct {
	rx.SampleSource
	start, end int64
}

func (s *spanSource) Span() (int64, int64) { return s.start, s.end }

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.SEDWindows != 10 || o.CFOZoom != 16 || o.PowerToleranceDB != 3 ||
		o.CFOToleranceBins != 0.25 || o.MaxCandidates != 8 || o.MaxBoundaries != 16 {
		t.Errorf("defaults wrong: %+v", o)
	}
}
