package core

import (
	"cic/internal/frame"
	"cic/internal/obs"
	"cic/internal/rx"
)

// Result is one packet's decode outcome (alias of the pipeline's Decoded so
// all receivers in this repository share a result shape).
type Result = rx.Decoded

// Receiver is the complete CIC gateway pipeline: down-chirp packet
// detection, concurrent per-packet CIC demodulation, and PHY decoding.
// Each tracked packet demodulates independently (symbol-by-symbol), so the
// receiver fans packets out over a worker pool — the parallelism the paper
// highlights in §1.
type Receiver struct {
	cfg     frame.Config
	detOpts rx.DetectorOptions
	pl      *rx.Pipeline
	m       *obs.DecodeMetrics
	tracer  obs.Tracer
}

// NewReceiver builds a Receiver. workers <= 0 selects GOMAXPROCS.
func NewReceiver(cfg frame.Config, opts Options, detOpts rx.DetectorOptions, workers int) (*Receiver, error) {
	opts.setDefaults()
	pl, err := rx.NewPipeline(cfg, func() (rx.SymbolPicker, error) {
		return NewDemodulator(cfg, opts)
	}, workers)
	if err != nil {
		return nil, err
	}
	pl.Metrics = opts.Metrics
	pl.Tracer = opts.Tracer
	if detOpts.Metrics == nil {
		detOpts.Metrics = opts.Metrics
	}
	return &Receiver{cfg: cfg, detOpts: detOpts, pl: pl, m: opts.Metrics, tracer: opts.Tracer}, nil
}

// Config returns the receiver's frame configuration.
func (r *Receiver) Config() frame.Config { return r.cfg }

// Name identifies the receiver in evaluation output.
func (r *Receiver) Name() string { return "CIC" }

// Receive decodes every packet found in the source, sorted by start time.
func (r *Receiver) Receive(src rx.SampleSource) ([]Result, error) {
	det, err := rx.NewDetector(r.cfg, r.detOpts)
	if err != nil {
		return nil, err
	}
	t0 := r.m.DetectTime.Start()
	pkts := det.ScanDownchirp(src)
	r.m.DetectTime.Since(t0)
	r.m.PreamblesDetected.Add(int64(len(pkts)))
	if r.tracer != nil {
		for _, p := range pkts {
			r.tracer(obs.Event{
				Kind:     obs.EventDetect,
				PacketID: p.ID,
				Start:    p.Start,
				SNRdB:    p.SNRdB,
				CFOHz:    p.CFOHz,
				Score:    p.Score,
			})
		}
	}
	return r.DecodeAll(src, pkts)
}

// DecodeAll runs CIC demodulation for an already-detected packet set (the
// entry point used by the evaluation harness so detection and demodulation
// can be varied independently).
func (r *Receiver) DecodeAll(src rx.SampleSource, pkts []*rx.Packet) ([]Result, error) {
	return r.pl.DecodeAll(src, pkts)
}
