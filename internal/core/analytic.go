package core

import (
	"math"

	"cic/internal/dsp"
)

// The paper notes (§5.5) that "the extent of cancellation for CIC can be
// analytically computed" but omits the derivation for space. This file
// carries out that derivation for the two-transmission case so Fig 17's
// empirical map has a closed-form counterpart.
//
// Setup (noise-free, one interferer): our symbol occupies the whole window
// of M samples; the interfering symbol C_next occupies [τ, M) at an
// apparent (post-de-chirp) frequency Δf away from ours. The cancelling
// sub-symbol r_{1→i} spans [0, τ) and contains only our tone.
//
// Before cancellation, the interferer's bin in the unit-energy full-window
// spectrum holds
//
//	P_full(b_int) = (M−τ)² / E_full,  E_full = Σ_b |X_full(b)|²,
//
// (a rectangular tone of length L concentrates amplitude L on its bin).
// After the spectral intersection, the value at b_int is bounded by the
// unit-energy sub-window spectrum's value there, which is pure *leakage* of
// our tone through the length-τ rectangular window — the Dirichlet kernel:
//
//	L_sub(b_int) = |D_τ(Δf)|² / E_sub,  |D_τ(f)| = |sin(πfτ/fs_b)/sin(πf/fs_b)|
//
// with frequencies measured in bins of the common FFT grid. The predicted
// cancellation is their ratio in dB. Both energies are dominated by the
// respective main lobes (≈ L² each for the tones present), which this model
// approximates as E_full ≈ M² + (M−τ)² (our tone plus the interferer) and
// E_sub ≈ τ² (our tone alone).

// dirichlet evaluates |sin(πfL/N)/sin(πf/N)| — the magnitude of a length-L
// rectangular tone's spectrum at a bin distance f on an N-point grid —
// handling the f→0 limit.
func dirichlet(f, l, n float64) float64 {
	x := math.Pi * f / n
	if math.Abs(math.Sin(x)) < 1e-12 {
		return l
	}
	return math.Abs(math.Sin(x*l) / math.Sin(x))
}

// AnalyticCancellation predicts the cancellation in dB that the optimal
// ICSS achieves on a single interfering symbol whose boundary sits at
// fraction dtau ∈ (0,1] of the symbol and whose apparent frequency is
// df ∈ (0, 0.5] of the bandwidth away from ours, at the given spreading
// factor (noise-free, two transmissions, equal receive power).
func AnalyticCancellation(sf int, dtau, df float64) float64 {
	n := float64(int(1) << sf) // bins on the folded grid
	tau := dtau * n            // cancelling window length in chip units
	lInt := n - tau            // interferer tone length
	if tau < 1 {
		return 0
	}
	fBins := df * n // apparent separation in bins

	eFull := n*n + lInt*lInt
	pFull := lInt * lInt / eFull

	leak := dirichlet(fBins, tau, n)
	eSub := tau * tau
	pSub := leak * leak / eSub

	if pSub <= 0 {
		return 60 // leakage null: cap the prediction
	}
	c := dsp.DB(pFull / pSub)
	if c < 0 {
		return 0
	}
	if c > 60 {
		return 60
	}
	return c
}
