package core

import (
	"testing"
)

func TestAnalyticCancellationShape(t *testing.T) {
	// Near the origin: almost no cancellation (the paper's Fig 17 corner).
	if c := AnalyticCancellation(8, 0.02, 0.02); c > 6 {
		t.Errorf("cancellation at (0.02,0.02) = %.1f dB, want small", c)
	}
	// Far field: strong cancellation.
	if c := AnalyticCancellation(8, 0.5, 0.5); c < 15 {
		t.Errorf("cancellation at (0.5,0.5) = %.1f dB, want >= 15", c)
	}
	// Monotone-ish growth along the diagonal (allowing Dirichlet ripple).
	prev := -1.0
	for _, x := range []float64{0.05, 0.1, 0.2, 0.4} {
		c := AnalyticCancellation(8, x, x)
		if c < prev-6 {
			t.Errorf("cancellation dropped sharply along diagonal at %g: %.1f after %.1f", x, c, prev)
		}
		if c > prev {
			prev = c
		}
	}
	// Degenerate window.
	if c := AnalyticCancellation(8, 0.001, 0.3); c != 0 {
		t.Errorf("sub-chip window predicted %.1f dB", c)
	}
}

// TestAnalyticMatchesMeasuredTrend: the analytic model and the empirical
// Fig 17 measurement must agree on which regions cancel well. Exact values
// differ (the measurement includes folding and both interferer halves), so
// the test compares coarse categories.
func TestAnalyticMatchesMeasuredTrend(t *testing.T) {
	// From the measured fig17 at SF8 (see eval.Cancellation): near-origin
	// ≈ 0 dB, (0.1, 0.25) ≈ 20 dB, (0.5, 0.5) ≈ 30 dB.
	cases := []struct {
		dtau, df   float64
		minC, maxC float64
	}{
		{0.02, 0.02, 0, 6},
		{0.1, 0.25, 8, 45},
		{0.5, 0.5, 15, 60},
	}
	for _, c := range cases {
		got := AnalyticCancellation(8, c.dtau, c.df)
		if got < c.minC || got > c.maxC {
			t.Errorf("analytic(%g,%g) = %.1f dB, want in [%g,%g]", c.dtau, c.df, got, c.minC, c.maxC)
		}
	}
}
