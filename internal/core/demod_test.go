package core

import (
	"math"
	"testing"

	"cic/internal/channel"
	"cic/internal/chirp"
	"cic/internal/dsp"
	"cic/internal/frame"
	"cic/internal/rx"
)

// TestKnownPreambleTonePrediction: the predicted folded bin of an
// interferer's preamble must match the measured spectral peak.
func TestKnownPreambleTonePrediction(t *testing.T) {
	cfg := testCfg()
	m := int64(cfg.Chirp.SamplesPerSymbol())
	gen, err := chirp.NewGenerator(cfg.Chirp)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		qStart int64
		qCFO   float64
	}{
		{qStart: -3*m + 217, qCFO: 0},
		{qStart: -2*m + 800, qCFO: 2 * cfg.Chirp.BinWidth()},
		{qStart: -5*m + 64, qCFO: -3.5 * cfg.Chirp.BinWidth()},
	} {
		// Build an air containing only q's preamble region around window
		// [0, m). q.Start is negative so its up-chirps cover the window.
		mod, err := frame.NewModulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := mod.ModulateSymbols(nil) // preamble only
		if err != nil {
			t.Fatal(err)
		}
		em := channel.Emission{Start: tc.qStart, Samples: channel.Apply(wave, channel.Impairments{
			Amplitude: 1, CFOHz: tc.qCFO, SampleRate: cfg.Chirp.SampleRate(),
		})}
		src := rx.SourceFromRenderer(channel.NewRenderer([]channel.Emission{em}, 0, 0))

		pkt := &rx.Packet{Start: -int64(cfg.PreambleSampleCount()), CFOHz: 0, NSymbols: 1}
		q := &rx.Packet{Start: tc.qStart, CFOHz: tc.qCFO, NSymbols: 100}

		predicted, ok := KnownPreambleTone(cfg, pkt, q, 0)
		if !ok {
			t.Fatalf("prediction unavailable for qStart=%d", tc.qStart)
		}
		// Measure the actual peak.
		d, err := rx.NewDemod(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.LoadWindow(src, 0, 0)
		_, at := d.FoldedSpectrum().Max()
		n := float64(cfg.Chirp.ChipCount())
		diff := math.Abs(dsp.WrapToHalf(float64(at)-predicted, n/2))
		if diff > 1.0 {
			t.Errorf("qStart=%d cfo=%.0f: predicted %.2f, measured %d (diff %.2f)",
				tc.qStart, tc.qCFO, predicted, at, diff)
		}
		_ = gen
	}
}

// TestKnownPreambleToneOutOfRange: windows that do not overlap q's
// preamble/SYNC region yield no prediction.
func TestKnownPreambleToneOutOfRange(t *testing.T) {
	cfg := testCfg()
	m := int64(cfg.Chirp.SamplesPerSymbol())
	pkt := &rx.Packet{Start: 0}
	q := &rx.Packet{Start: 0, NSymbols: 50}
	// Window far after q's up-chirp region (10 symbols of preamble+sync).
	if _, ok := KnownPreambleTone(cfg, pkt, q, q.Start+11*m); ok {
		t.Error("prediction offered past the up-chirp region")
	}
	// Window before q begins.
	if _, ok := KnownPreambleTone(cfg, pkt, q, q.Start-2*m); ok {
		t.Error("prediction offered before the packet")
	}
}

// TestInterfererSignatureMatchesMeasuredFraction: the fractional offset of
// an interferer's data tone must match the tracker-computed signature.
func TestInterfererSignatureMatchesMeasuredFraction(t *testing.T) {
	cfg := testCfg()
	m := int64(cfg.Chirp.SamplesPerSymbol())
	mod, err := frame.NewModulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("signature test payload!!")
	wave, _, err := mod.Modulate(payload)
	if err != nil {
		t.Fatal(err)
	}
	qStart := int64(4096)
	qCFO := 1.37 * cfg.Chirp.BinWidth()
	em := channel.Emission{Start: qStart, Samples: channel.Apply(wave, channel.Impairments{
		Amplitude: 1, CFOHz: qCFO, SampleRate: cfg.Chirp.SampleRate(),
	})}
	src := rx.SourceFromRenderer(channel.NewRenderer([]channel.Emission{em}, 0, 0))

	q := &rx.Packet{Start: qStart, CFOHz: qCFO, NSymbols: 40}
	// Our hypothetical packet: zero CFO, window placed mid-way through q's
	// data with an odd sub-symbol offset.
	winStart := q.DataStart(cfg) + 7*m + 333
	pkt := &rx.Packet{Start: winStart - int64(cfg.PreambleSampleCount()), CFOHz: 0, NSymbols: 1}

	sig, ok := InterfererSignature(cfg, pkt, q, winStart)
	if !ok {
		t.Fatal("no signature for overlapping data region")
	}
	// Measure: de-chirp the window (our grid) and refine the strongest
	// peak's fractional position.
	d, err := rx.NewDemod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.LoadWindow(src, winStart, 0)
	spec := d.FoldedSpectrum()
	_, at := spec.Max()
	mTotal := cfg.Chirp.SamplesPerSymbol()
	n := cfg.Chirp.ChipCount()
	// Try both images, keep the stronger refined peak.
	p1, w1 := dsp.RefinePeakRange(d.Dechirped(), mTotal, at, 16, 1.2)
	p2, w2 := dsp.RefinePeakRange(d.Dechirped(), mTotal, at+(cfg.Chirp.OSR-1)*n, 16, 1.2)
	pos := p1
	if w2 > w1 {
		pos = p2
	}
	frac := pos - math.Round(pos)
	if d := math.Abs(dsp.WrapToHalf(frac-sig, 0.5)); d > 0.15 {
		t.Errorf("signature %.3f, measured fraction %.3f (diff %.3f)", sig, frac, d)
	}
}

// TestIntersectionSuppressesInterferer: the intersected spectrum's value at
// an interfering bin must be at most its full-spectrum value (normalised),
// for any boundary position.
func TestIntersectionSuppressesInterferer(t *testing.T) {
	cfg := testCfg()
	m := cfg.Chirp.SamplesPerSymbol()
	gen, err := chirp.NewGenerator(cfg.Chirp)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []int{m / 8, m / 3, m / 2, 3 * m / 4} {
		win := make([]complex128, m)
		tmp := make([]complex128, m)
		gen.Symbol(win, 10) // our symbol
		kPrev, kNext := 70, 180
		gen.Symbol(tmp, kPrev)
		for i := 0; i < tau; i++ {
			win[i] += tmp[(i+m-tau)%m]
		}
		gen.Symbol(tmp, kNext)
		for i := tau; i < m; i++ {
			win[i] += tmp[i-tau]
		}
		src := &rx.MemorySource{Samples: win}
		pre := int64(cfg.PreambleSampleCount())
		pkt := &rx.Packet{Start: -pre, NSymbols: 1}
		q := &rx.Packet{Start: int64(tau) - pre - 20*int64(m), NSymbols: 1000}

		dm, err := NewDemodulator(cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		inter := dm.IntersectedSpectrum(src, pkt, 0, []*rx.Packet{q}).Normalize()

		d, err := rx.NewDemod(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.LoadWindow(src, 0, 0)
		full := append(dsp.Spectrum(nil), d.FoldedSpectrum()...)
		full.Normalize()

		// Apparent bins of the interferer's two halves.
		n := cfg.Chirp.ChipCount()
		osr := cfg.Chirp.OSR
		appPrev := ((kPrev+(m-tau)/osr)%n + n) % n
		appNext := ((kNext-tau/osr)%n + n) % n
		for _, b := range []int{appPrev, appNext} {
			if inter[b] > full[b]*1.05 {
				t.Errorf("tau=%d: intersected[%d]=%g exceeds full %g", tau, b, inter[b], full[b])
			}
		}
		// Our own bin must be the argmax of the intersection.
		if _, at := inter.Max(); at != 10 {
			t.Errorf("tau=%d: intersected argmax at %d, want 10", tau, at)
		}
	}
}

// TestDemodulateSymbolDeterministic: same input, same output.
func TestDemodulateSymbolDeterministic(t *testing.T) {
	cfg := testCfg()
	payload := []byte("determinism check")
	src := collision(t, cfg, []int64{0, 9000}, []float64{25, 22}, []float64{1000, -900},
		[][]byte{payload, payload}, 9)
	pkts := []*rx.Packet{
		{ID: 0, Start: 4096, CFOHz: 1000, NSymbols: 10, PeakAmp: 1000},
		{ID: 1, Start: 13096, CFOHz: -900, NSymbols: 10, PeakAmp: 1000},
	}
	dm1, _ := NewDemodulator(cfg, Options{})
	dm2, _ := NewDemodulator(cfg, Options{})
	for s := 0; s < 10; s++ {
		a := dm1.DemodulateSymbol(src, pkts[0], s, pkts[1:])
		b := dm2.DemodulateSymbol(src, pkts[0], s, pkts[1:])
		if a != b {
			t.Fatalf("symbol %d: %d != %d across fresh demodulators", s, a, b)
		}
		// Repeat with the same instance: scratch reuse must not leak state.
		c := dm1.DemodulateSymbol(src, pkts[0], s, pkts[1:])
		if a != c {
			t.Fatalf("symbol %d: %d != %d on repeat", s, a, c)
		}
	}
}

func TestCandidateValueFolding(t *testing.T) {
	n := 256
	cases := []struct {
		pos  float64
		want int
	}{
		{0.2, 0}, {255.6, 0}, {255.4, 255}, {-0.3, 0}, {-0.8, 255}, {128.5, 129},
	}
	for _, c := range cases {
		if got := (Candidate{Pos: c.pos}).Value(n); got != c.want {
			t.Errorf("Value(%g) = %d, want %d", c.pos, got, c.want)
		}
	}
}

// TestAlternatesPrimaryMatchesPick: PickSymbolAlternates[0] must equal
// PickSymbol for the same window — the chase pass depends on it.
func TestAlternatesPrimaryMatchesPick(t *testing.T) {
	cfg := testCfg()
	p1 := []byte("alternates consistency A")
	p2 := []byte("alternates consistency B")
	src := collision(t, cfg, []int64{0, 15000}, []float64{25, 23}, []float64{1200, -2400},
		[][]byte{p1, p2}, 13)
	pkts := []*rx.Packet{
		{ID: 0, Start: 4096, CFOHz: 1200, NSymbols: 20, PeakAmp: 4000},
		{ID: 1, Start: 19096, CFOHz: -2400, NSymbols: 20, PeakAmp: 4000},
	}
	dmA, _ := NewDemodulator(cfg, Options{})
	dmB, _ := NewDemodulator(cfg, Options{})
	for s := 0; s < 20; s++ {
		pick := dmA.PickSymbol(src, pkts[0], s, pkts[1:])
		alts := dmB.PickSymbolAlternates(src, pkts[0], s, pkts[1:])
		if len(alts) == 0 {
			t.Fatalf("symbol %d: empty alternates", s)
		}
		if alts[0] != pick {
			t.Fatalf("symbol %d: primary alternate %d != pick %d", s, alts[0], pick)
		}
		seen := map[uint16]bool{}
		for _, v := range alts {
			if seen[v] {
				t.Fatalf("symbol %d: duplicate alternate %d", s, v)
			}
			seen[v] = true
		}
	}
}

func TestInterfererSignatureOutOfRange(t *testing.T) {
	cfg := testCfg()
	pkt := &rx.Packet{Start: 0}
	q := &rx.Packet{Start: 0, NSymbols: 5}
	// Window long after q ended.
	if _, ok := InterfererSignature(cfg, pkt, q, q.End(cfg)+1000); ok {
		t.Error("signature offered after q ended")
	}
	// Window before q's data begins.
	if _, ok := InterfererSignature(cfg, pkt, q, q.Start-100000); ok {
		t.Error("signature offered before q began")
	}
}
