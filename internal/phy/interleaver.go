package phy

import "fmt"

// The LoRa diagonal interleaver maps a block of `rows` FEC codewords of
// (4+CR) bits each onto (4+CR) chirp symbols of `rows` bits each. Bit c of
// codeword r is transmitted as bit r of symbol c — shifted diagonally so
// that the loss of one whole *symbol* touches at most one bit of each
// *codeword*, which Hamming(7,4)/(8,4) can then correct. `rows` is SF for
// normal blocks and SF−2 for reduced-rate blocks (header block and low
// data-rate optimisation).

// Interleave maps one block of codewords onto symbol values.
// len(codewords) must equal rows; each codeword uses the low (4+CR) bits.
// The returned slice holds 4+CR symbol values, each with `rows` significant
// bits.
func Interleave(codewords []uint16, cr CodingRate, rows int) ([]uint16, error) {
	if len(codewords) != rows {
		return nil, fmt.Errorf("phy: interleave block has %d codewords, want %d", len(codewords), rows)
	}
	if rows < 1 || rows > 16 {
		return nil, fmt.Errorf("phy: interleave rows %d out of range [1,16]", rows)
	}
	cols := cr.CodewordBits()
	out := make([]uint16, cols)
	for c := 0; c < cols; c++ {
		var sym uint16
		for r := 0; r < rows; r++ {
			src := (r + c) % rows // diagonal shift
			bit := (codewords[src] >> c) & 1
			sym |= bit << r
		}
		out[c] = sym
	}
	return out, nil
}

// Deinterleave inverts Interleave. len(symbols) must equal 4+CR; the result
// holds `rows` codewords.
func Deinterleave(symbols []uint16, cr CodingRate, rows int) ([]uint16, error) {
	cols := cr.CodewordBits()
	if len(symbols) != cols {
		return nil, fmt.Errorf("phy: deinterleave block has %d symbols, want %d", len(symbols), cols)
	}
	if rows < 1 || rows > 16 {
		return nil, fmt.Errorf("phy: deinterleave rows %d out of range [1,16]", rows)
	}
	out := make([]uint16, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			src := (r + c) % rows
			bit := (symbols[c] >> r) & 1
			out[src] |= bit << c
		}
	}
	return out, nil
}
