package phy

import (
	"errors"
	"fmt"
)

// Config dimensions the codec for one packet.
type Config struct {
	SF          int        // spreading factor, 7..12
	CR          CodingRate // payload coding rate
	HasCRC      bool       // append CRC-16 to the payload
	LowDataRate bool       // low data-rate optimisation: all blocks reduced-rate

	// ImplicitHeader omits the explicit header: both ends must agree on
	// ImplicitLength, CR and HasCRC out of band (LoRa's implicit/fixed
	// mode, used by latency-sensitive deployments). The first block is
	// still sent reduced-rate at CR 4/8 for robustness, carrying payload
	// nibbles directly.
	ImplicitHeader bool
	// ImplicitLength is the fixed payload length in implicit-header mode.
	ImplicitLength int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SF < 7 || c.SF > 12 {
		return fmt.Errorf("phy: SF %d out of range [7,12]", c.SF)
	}
	if c.ImplicitHeader && (c.ImplicitLength < 0 || c.ImplicitLength > 255) {
		return fmt.Errorf("phy: implicit length %d out of [0,255]", c.ImplicitLength)
	}
	return c.CR.Validate()
}

// rows returns the interleaver row count for a block: the header block (and
// every block under low data-rate optimisation) is reduced-rate with SF−2
// rows; normal payload blocks use SF rows.
func (c Config) rows(block int) int {
	if block == 0 || c.LowDataRate {
		return c.SF - 2
	}
	return c.SF
}

// blockCR returns the coding rate for a block: the header block is always
// 4/8 for robustness; payload blocks use the configured rate.
func (c Config) blockCR(block int) CodingRate {
	if block == 0 {
		return CR48
	}
	return c.CR
}

// reduced reports whether a block's symbols are sent at reduced rate (the
// symbol value is left-shifted by two bins so ±1-bin errors round away).
func (c Config) reduced(block int) bool {
	return block == 0 || c.LowDataRate
}

// DecodeResult reports the outcome of a packet decode.
type DecodeResult struct {
	Header       Header
	Payload      []byte
	CRCOK        bool // payload CRC matched (always true when !HasCRC and header decoded)
	FECCorrected int  // number of single-bit FEC corrections applied
}

// ErrHeader is returned when the header block cannot be decoded.
var ErrHeader = errors.New("phy: header decode failed")

// ErrTooFewSymbols is returned when fewer symbols are supplied than the
// header-declared payload needs.
var ErrTooFewSymbols = errors.New("phy: not enough symbols for declared payload")

// nibbleCount returns how many nibbles a packet with the given payload
// length carries (header when explicit + whitened payload + optional CRC).
func nibbleCount(length int, hasCRC, implicit bool) int {
	n := 2 * length
	if !implicit {
		n += headerNibbles
	}
	if hasCRC {
		n += 4
	}
	return n
}

// HeaderSymbolCount is the number of symbols in the header block (CR 4/8).
const HeaderSymbolCount = 8

// SymbolCount returns the total number of data symbols (first block
// included) for a payload of the given length under cfg.
func SymbolCount(cfg Config, length int) int {
	total := nibbleCount(length, cfg.HasCRC, cfg.ImplicitHeader)
	remaining := total - (cfg.SF - 2) // nibbles carried by the first block
	syms := HeaderSymbolCount
	block := 1
	for remaining > 0 {
		remaining -= cfg.rows(block)
		syms += cfg.blockCR(block).CodewordBits()
		block++
	}
	return syms
}

// MaxSymbolCount bounds the symbol count for any payload up to 255 bytes
// (or exactly the fixed length in implicit mode) — used by receivers before
// the header is known.
func MaxSymbolCount(cfg Config) int {
	if cfg.ImplicitHeader {
		return SymbolCount(cfg, cfg.ImplicitLength)
	}
	return SymbolCount(cfg, 255)
}

// Encode converts a payload into chirp symbol values under cfg. Returned
// values are in [0, 2^SF).
func Encode(payload []byte, cfg Config) ([]uint16, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(payload) > 255 {
		return nil, fmt.Errorf("phy: payload length %d exceeds 255", len(payload))
	}
	if cfg.ImplicitHeader && len(payload) != cfg.ImplicitLength {
		return nil, fmt.Errorf("phy: implicit mode expects %d-byte payloads, got %d", cfg.ImplicitLength, len(payload))
	}

	// Assemble the nibble stream: header (explicit mode only), whitened
	// payload, CRC of the *plaintext* payload.
	var nibs []byte
	if !cfg.ImplicitHeader {
		hdr := Header{Length: byte(len(payload)), CR: cfg.CR, HasCRC: cfg.HasCRC}
		nibs = EncodeHeader(hdr)
	}
	white := Whiten(payload)
	for _, b := range white {
		nibs = append(nibs, b&0x0F, b>>4)
	}
	if cfg.HasCRC {
		crc := CRC16(payload)
		nibs = append(nibs,
			byte(crc)&0x0F, byte(crc)>>4,
			byte(crc>>8)&0x0F, byte(crc>>12))
	}

	var symbols []uint16
	block := 0
	for pos := 0; pos < len(nibs) || block == 0; block++ {
		rows := cfg.rows(block)
		cr := cfg.blockCR(block)
		cws := make([]uint16, rows)
		for r := 0; r < rows; r++ {
			var nib byte
			if pos < len(nibs) {
				nib = nibs[pos]
				pos++
			}
			cw, err := HammingEncode(nib, cr)
			if err != nil {
				return nil, err
			}
			cws[r] = cw
		}
		interleaved, err := Interleave(cws, cr, rows)
		if err != nil {
			return nil, err
		}
		for _, v := range interleaved {
			g := uint16(GrayEncode(int(v)))
			if cfg.reduced(block) {
				g <<= 2
			}
			symbols = append(symbols, g)
		}
	}
	return symbols, nil
}

// Decode converts received symbol values back into a payload. It first
// decodes the header block, then consumes exactly the number of payload
// symbols the header declares; extra symbols are ignored. Symbol values
// must be in [0, 2^SF).
func Decode(symbols []uint16, cfg Config) (*DecodeResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(symbols) < HeaderSymbolCount {
		return nil, fmt.Errorf("%w: %d symbols < header block of %d", ErrTooFewSymbols, len(symbols), HeaderSymbolCount)
	}
	res := &DecodeResult{}

	// The header block carries SF−2 ≤ 10 nibbles: decode it into a small
	// stack buffer, then size the full nibble stream exactly once from the
	// header-declared length (the hot decode path allocates only the stream
	// and the payload).
	var first [maxBlockRows]byte
	nibs, err := decodeBlockInto(first[:0], symbols[:HeaderSymbolCount], cfg, 0, res)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrHeader, err)
	}
	var hdr Header
	if cfg.ImplicitHeader {
		hdr = Header{Length: byte(cfg.ImplicitLength), CR: cfg.CR, HasCRC: cfg.HasCRC}
	} else {
		hdr, err = DecodeHeader(nibs)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrHeader, err)
		}
	}
	res.Header = hdr

	// The payload coding rate comes from the header, not from cfg.
	pcfg := cfg
	pcfg.CR = hdr.CR
	pcfg.HasCRC = hdr.HasCRC

	total := nibbleCount(int(hdr.Length), hdr.HasCRC, cfg.ImplicitHeader)
	capN := total
	if capN < len(nibs) {
		capN = len(nibs)
	}
	// First-block nibbles beyond the header carry payload.
	stream := append(make([]byte, 0, capN), nibs...)
	pos := HeaderSymbolCount
	for block := 1; len(stream) < total; block++ {
		cols := pcfg.blockCR(block).CodewordBits()
		if pos+cols > len(symbols) {
			return res, fmt.Errorf("%w: need %d symbols, have %d", ErrTooFewSymbols, pos+cols, len(symbols))
		}
		stream, err = decodeBlockInto(stream, symbols[pos:pos+cols], pcfg, block, res)
		if err != nil {
			return res, err
		}
		pos += cols
	}
	if !cfg.ImplicitHeader {
		stream = stream[headerNibbles:] // drop header nibbles
	}

	// Reassemble whitened payload bytes, then CRC nibbles.
	payload := make([]byte, hdr.Length)
	for i := range payload {
		payload[i] = stream[2*i]&0x0F | stream[2*i+1]<<4
	}
	NewWhitener().Apply(payload)
	res.Payload = payload
	res.CRCOK = true
	if hdr.HasCRC {
		at := 2 * int(hdr.Length)
		recv := uint16(stream[at]&0x0F) | uint16(stream[at+1])<<4 |
			uint16(stream[at+2])<<8 | uint16(stream[at+3])<<12
		res.CRCOK = recv == CRC16(payload)
	}
	return res, nil
}

// maxBlockRows bounds the interleaver row count (SF ≤ 12, and the exported
// Interleave/Deinterleave accept up to 16) so block decoding can use
// fixed-size stack arrays.
const maxBlockRows = 16

// decodeBlockInto de-maps, deinterleaves and FEC-decodes one block,
// appending its data nibbles onto dst. FEC detection failures are tolerated
// (the nibble is passed through) so that the payload CRC delivers the final
// verdict; correction counts accumulate into res. The de-mapped symbol
// values and deinterleaved codewords live in fixed stack arrays, so the
// only allocation a block decode can cause is growth of dst.
//
//cic:hotpath
func decodeBlockInto(dst []byte, symbols []uint16, cfg Config, block int, res *DecodeResult) ([]byte, error) {
	rows := cfg.rows(block)
	cr := cfg.blockCR(block)
	cols := cr.CodewordBits()
	if len(symbols) != cols {
		return nil, fmt.Errorf("phy: deinterleave block has %d symbols, want %d", len(symbols), cols)
	}
	if rows < 1 || rows > maxBlockRows || cols > maxBlockRows {
		return nil, fmt.Errorf("phy: deinterleave rows %d out of range [1,%d]", rows, maxBlockRows)
	}
	var vals, cws [maxBlockRows]uint16
	mask := uint16(1)<<rows - 1
	for i, s := range symbols {
		if cfg.reduced(block) {
			// Reduced rate: round to the nearest multiple of 4 so ±1-bin
			// demodulation slips vanish. Masking before the Gray decode
			// folds the circular wrap at the top of the bin range.
			s = (s + 2) >> 2
		}
		vals[i] = uint16(GrayDecode(int(s & mask)))
	}
	// Diagonal deinterleave (same mapping as the exported Deinterleave,
	// inlined over the stack arrays).
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			src := (r + c) % rows
			bit := (vals[c] >> r) & 1
			cws[src] |= bit << c
		}
	}
	for r := 0; r < rows; r++ {
		nib, corrected, ok := HammingDecode(cws[r], cr)
		if corrected {
			res.FECCorrected++
		}
		_ = ok // detection-only failures resolved by the payload CRC
		dst = append(dst, nib)
	}
	return dst, nil
}
