package phy

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGrayRoundTrip(t *testing.T) {
	for v := 0; v < 4096; v++ {
		if got := GrayDecode(GrayEncode(v)); got != v {
			t.Fatalf("GrayDecode(GrayEncode(%d)) = %d", v, got)
		}
	}
}

func TestGrayAdjacencyProperty(t *testing.T) {
	// Consecutive values differ in exactly one bit after Gray encoding —
	// the reason LoRa uses Gray mapping at all.
	for v := 0; v < 1023; v++ {
		x := GrayEncode(v) ^ GrayEncode(v+1)
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("Gray(%d) and Gray(%d) differ by %b, want one bit", v, v+1, x)
		}
	}
}

func TestWhitenInvolution(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	prop := func(data []byte) bool {
		return bytes.Equal(Whiten(Whiten(data)), data)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestWhitenSequenceBalanced(t *testing.T) {
	// PN9 output should be roughly DC-balanced: count ones over 4096 bits.
	w := NewWhitener()
	ones := 0
	for i := 0; i < 512; i++ {
		b := w.NextByte()
		for ; b > 0; b &= b - 1 {
			ones++
		}
	}
	if ones < 1850 || ones > 2250 {
		t.Errorf("PN9 ones = %d of 4096, want near balance", ones)
	}
}

func TestWhitenChangesData(t *testing.T) {
	zero := make([]byte, 32)
	if bytes.Equal(Whiten(zero), zero) {
		t.Error("whitening left all-zero payload unchanged")
	}
}

func TestCodingRateBasics(t *testing.T) {
	if CR45.CodewordBits() != 5 || CR48.CodewordBits() != 8 {
		t.Error("CodewordBits wrong")
	}
	if CR47.String() != "4/7" {
		t.Error("String wrong")
	}
	if CodingRate(0).Validate() == nil || CodingRate(5).Validate() == nil {
		t.Error("Validate accepted bad rate")
	}
}

func TestHammingRoundTripCleanAllRates(t *testing.T) {
	for cr := CR45; cr <= CR48; cr++ {
		for nib := byte(0); nib < 16; nib++ {
			cw, err := HammingEncode(nib, cr)
			if err != nil {
				t.Fatalf("CR %v nibble %x: %v", cr, nib, err)
			}
			got, corrected, ok := HammingDecode(cw, cr)
			if got != nib || corrected || !ok {
				t.Errorf("CR %v nibble %x: got %x corrected=%v ok=%v", cr, nib, got, corrected, ok)
			}
		}
	}
}

func TestHamming74CorrectsEverySingleBitError(t *testing.T) {
	for _, cr := range []CodingRate{CR47, CR48} {
		bits := cr.CodewordBits()
		for nib := byte(0); nib < 16; nib++ {
			cw, err := HammingEncode(nib, cr)
			if err != nil {
				t.Fatalf("CR %v nibble %x: %v", cr, nib, err)
			}
			for b := 0; b < bits; b++ {
				bad := cw ^ 1<<b
				got, _, ok := HammingDecode(bad, cr)
				if !ok || got != nib {
					t.Errorf("CR %v nibble %x bit %d flip: got %x ok=%v", cr, nib, b, got, ok)
				}
			}
		}
	}
}

func TestHamming84DetectsDoubleErrors(t *testing.T) {
	for nib := byte(0); nib < 16; nib++ {
		cw, err := HammingEncode(nib, CR48)
		if err != nil {
			t.Fatalf("nibble %x: %v", nib, err)
		}
		for b1 := 0; b1 < 8; b1++ {
			for b2 := b1 + 1; b2 < 8; b2++ {
				bad := cw ^ 1<<b1 ^ 1<<b2
				got, _, ok := HammingDecode(bad, CR48)
				if ok && got != nib {
					t.Errorf("nibble %x bits %d,%d: silently mis-corrected to %x", nib, b1, b2, got)
				}
			}
		}
	}
}

func TestParityRatesDetectSingleErrors(t *testing.T) {
	for _, cr := range []CodingRate{CR45, CR46} {
		bits := cr.CodewordBits()
		for nib := byte(0); nib < 16; nib++ {
			cw, err := HammingEncode(nib, cr)
			if err != nil {
				t.Fatalf("CR %v nibble %x: %v", cr, nib, err)
			}
			for b := 0; b < bits; b++ {
				if cr == CR46 && b >= 4 {
					// Parity-bit flips at CR46 flip exactly one received
					// parity: still detected.
				}
				_, _, ok := HammingDecode(cw^1<<b, cr)
				if ok {
					// CR45 detects all odd-weight errors; CR46 detects any
					// single flip that touches a checked equation. A data
					// bit d2 flip at CR46 touches p0... verify detection
					// only for flips the code provably covers.
					if cr == CR45 {
						t.Errorf("CR45 nibble %x bit %d flip undetected", nib, b)
					}
					if cr == CR46 {
						t.Errorf("CR46 nibble %x bit %d flip undetected", nib, b)
					}
				}
			}
		}
	}
}

func TestInterleaveRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	prop := func(seed int64, crRaw uint8, rowsRaw uint8) bool {
		cr := CodingRate(crRaw%4) + 1
		rows := int(rowsRaw%8) + 5 // 5..12
		r := rand.New(rand.NewSource(seed))
		cws := make([]uint16, rows)
		for i := range cws {
			cws[i] = uint16(r.Intn(1 << cr.CodewordBits()))
		}
		syms, err := Interleave(cws, cr, rows)
		if err != nil {
			return false
		}
		back, err := Deinterleave(syms, cr, rows)
		if err != nil {
			return false
		}
		for i := range cws {
			if back[i] != cws[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestInterleaverDiagonalProperty: corrupting ONE symbol touches at most one
// bit in each codeword — the property that lets Hamming(7,4)+ recover from a
// whole lost symbol.
func TestInterleaverDiagonalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rows, cr := 8, CR48
	cws := make([]uint16, rows)
	for i := range cws {
		cws[i] = uint16(r.Intn(1 << 8))
	}
	syms, err := Interleave(cws, cr, rows)
	if err != nil {
		t.Fatal(err)
	}
	for corrupt := range syms {
		mangled := append([]uint16(nil), syms...)
		mangled[corrupt] ^= uint16(1<<rows - 1) // flip every bit of one symbol
		back, err := Deinterleave(mangled, cr, rows)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cws {
			diff := back[i] ^ cws[i]
			n := 0
			for ; diff > 0; diff &= diff - 1 {
				n++
			}
			if n > 1 {
				t.Fatalf("symbol %d corruption hit codeword %d in %d bits", corrupt, i, n)
			}
		}
	}
}

func TestInterleaveRejectsBadShapes(t *testing.T) {
	if _, err := Interleave(make([]uint16, 3), CR45, 4); err == nil {
		t.Error("want error for wrong codeword count")
	}
	if _, err := Deinterleave(make([]uint16, 4), CR45, 4); err == nil {
		t.Error("want error for wrong symbol count")
	}
	if _, err := Interleave(make([]uint16, 20), CR45, 20); err == nil {
		t.Error("want error for rows > 16")
	}
}

func TestCRC16KnownVectors(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16 check vector = %#04x, want 0x29B1", got)
	}
	if got := CRC16(nil); got != 0xFFFF {
		t.Errorf("CRC16(empty) = %#04x, want init 0xFFFF", got)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for _, h := range []Header{
		{Length: 0, CR: CR45, HasCRC: false},
		{Length: 28, CR: CR45, HasCRC: true},
		{Length: 255, CR: CR48, HasCRC: true},
	} {
		nibs := EncodeHeader(h)
		if len(nibs) != headerNibbles {
			t.Fatalf("header nibbles = %d", len(nibs))
		}
		got, err := DecodeHeader(nibs)
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Errorf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestHeaderChecksumCatchesCorruption(t *testing.T) {
	h := Header{Length: 28, CR: CR45, HasCRC: true}
	nibs := EncodeHeader(h)
	for i := range nibs {
		for bit := 0; bit < 4; bit++ {
			bad := append([]byte(nil), nibs...)
			bad[i] ^= 1 << bit
			if got, err := DecodeHeader(bad); err == nil && got == h {
				// A corruption that still decodes *to the same header* is
				// impossible; decoding to a different valid header would be
				// a checksum collision — flag it.
				t.Errorf("nibble %d bit %d corruption produced identical header", i, bit)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{0x42},
		[]byte("hello, LoRa collision world!"), // 28 bytes, the paper's size
		bytes.Repeat([]byte{0xAA}, 255),
	}
	for _, sf := range []int{7, 8, 10, 12} {
		for cr := CR45; cr <= CR48; cr++ {
			for _, hasCRC := range []bool{true, false} {
				cfg := Config{SF: sf, CR: cr, HasCRC: hasCRC}
				for _, p := range payloads {
					syms, err := Encode(p, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if want := SymbolCount(cfg, len(p)); len(syms) != want {
						t.Fatalf("SF%d %v: SymbolCount=%d but Encode produced %d", sf, cr, want, len(syms))
					}
					for _, s := range syms {
						if int(s) >= 1<<sf {
							t.Fatalf("symbol %d out of SF%d range", s, sf)
						}
					}
					res, err := Decode(syms, cfg)
					if err != nil {
						t.Fatalf("SF%d %v len=%d: %v", sf, cr, len(p), err)
					}
					if !bytes.Equal(res.Payload, p) && !(len(p) == 0 && len(res.Payload) == 0) {
						t.Fatalf("SF%d %v: payload mismatch", sf, cr)
					}
					if !res.CRCOK {
						t.Fatalf("SF%d %v: CRC failed on clean channel", sf, cr)
					}
					if res.Header.Length != byte(len(p)) {
						t.Fatalf("header length %d != %d", res.Header.Length, len(p))
					}
				}
			}
		}
	}
}

func TestEncodeDecodeLowDataRate(t *testing.T) {
	cfg := Config{SF: 12, CR: CR46, HasCRC: true, LowDataRate: true}
	p := []byte("low data rate optimisation")
	syms, err := Encode(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(syms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, p) || !res.CRCOK {
		t.Error("LDRO round trip failed")
	}
}

func TestDecodeRandomPayloadProperty(t *testing.T) {
	cfg := Config{SF: 8, CR: CR45, HasCRC: true}
	qc := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	prop := func(p []byte) bool {
		if len(p) > 255 {
			p = p[:255]
		}
		syms, err := Encode(p, cfg)
		if err != nil {
			return false
		}
		res, err := Decode(syms, cfg)
		if err != nil || !res.CRCOK {
			return false
		}
		return bytes.Equal(res.Payload, p) || (len(p) == 0 && len(res.Payload) == 0)
	}
	if err := quick.Check(prop, qc); err != nil {
		t.Error(err)
	}
}

// TestDecodeSurvivesSingleSymbolCorruption: at CR 4/8 a single fully
// corrupted payload symbol must decode cleanly (diagonal interleave +
// Hamming correction).
func TestDecodeSurvivesSingleSymbolCorruption(t *testing.T) {
	cfg := Config{SF: 8, CR: CR48, HasCRC: true}
	p := []byte("robustness against symbol loss")
	syms, err := Encode(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for i := HeaderSymbolCount; i < len(syms); i++ {
		mangled := append([]uint16(nil), syms...)
		mangled[i] = uint16(r.Intn(256))
		res, err := Decode(mangled, cfg)
		if err != nil {
			t.Fatalf("symbol %d corrupted: %v", i, err)
		}
		if !bytes.Equal(res.Payload, p) || !res.CRCOK {
			t.Fatalf("symbol %d corrupted: payload not recovered", i)
		}
	}
}

// TestHeaderBlockToleratesBinSlips: the reduced-rate header survives ±1-bin
// errors on every header symbol simultaneously.
func TestHeaderBlockToleratesBinSlips(t *testing.T) {
	cfg := Config{SF: 8, CR: CR45, HasCRC: true}
	p := []byte("bin slip tolerance")
	syms, err := Encode(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mangled := append([]uint16(nil), syms...)
	for i := 0; i < HeaderSymbolCount; i++ {
		if i%2 == 0 {
			mangled[i] = (mangled[i] + 1) % 256
		} else {
			mangled[i] = (mangled[i] + 255) % 256
		}
	}
	res, err := Decode(mangled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, p) || !res.CRCOK {
		t.Error("header bin slips broke the decode")
	}
}

func TestDecodeDetectsPayloadCorruption(t *testing.T) {
	cfg := Config{SF: 8, CR: CR45, HasCRC: true}
	p := []byte("corruption must be detected")
	syms, _ := Encode(p, cfg)
	// CR45 cannot correct; trash three payload symbols completely.
	syms[HeaderSymbolCount] ^= 0x55
	syms[HeaderSymbolCount+1] ^= 0xAA
	syms[HeaderSymbolCount+2] ^= 0x0F
	res, err := Decode(syms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CRCOK && bytes.Equal(res.Payload, p) {
		t.Error("corruption silently produced a clean decode")
	}
	if res.CRCOK && !bytes.Equal(res.Payload, p) {
		t.Error("CRC passed on corrupted payload")
	}
}

func TestDecodeTooFewSymbols(t *testing.T) {
	cfg := Config{SF: 8, CR: CR45, HasCRC: true}
	syms, _ := Encode([]byte("truncated packet"), cfg)
	if _, err := Decode(syms[:4], cfg); err == nil {
		t.Error("want error for missing header block")
	}
	if _, err := Decode(syms[:HeaderSymbolCount+2], cfg); err == nil {
		t.Error("want error for truncated payload")
	}
}

func TestSymbolCountMonotonic(t *testing.T) {
	cfg := Config{SF: 8, CR: CR45, HasCRC: true}
	prev := 0
	for l := 0; l <= 255; l++ {
		n := SymbolCount(cfg, l)
		if n < prev {
			t.Fatalf("SymbolCount(%d) = %d < %d", l, n, prev)
		}
		prev = n
	}
	if MaxSymbolCount(cfg) != SymbolCount(cfg, 255) {
		t.Error("MaxSymbolCount mismatch")
	}
}

func TestSymbolCountPaperConfig(t *testing.T) {
	// The paper's deployment: SF8, CR 4/5, 28-byte payload.
	cfg := Config{SF: 8, CR: CR45, HasCRC: true}
	n := SymbolCount(cfg, 28)
	// 5 header + 56 payload + 4 CRC nibbles = 65 nibbles; header block
	// carries 6, leaving 59 → 8 payload blocks of 8 rows → 8×5 = 40 symbols
	// + 8 header symbols = 48.
	if n != 48 {
		t.Errorf("SymbolCount(SF8, CR45, 28B) = %d, want 48", n)
	}
}

func TestImplicitHeaderRoundTrip(t *testing.T) {
	cfg := Config{SF: 8, CR: CR46, HasCRC: true, ImplicitHeader: true, ImplicitLength: 24}
	p := []byte("implicit header payload!")
	syms, err := Encode(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Implicit mode saves the five header nibbles: the packet must be
	// shorter than its explicit-header twin.
	ecfg := cfg
	ecfg.ImplicitHeader = false
	esyms, _ := Encode(p, ecfg)
	if len(syms) >= len(esyms) {
		t.Errorf("implicit %d symbols >= explicit %d", len(syms), len(esyms))
	}
	res, err := Decode(syms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, p) || !res.CRCOK {
		t.Error("implicit round trip failed")
	}
	if res.Header.Length != 24 || res.Header.CR != CR46 {
		t.Errorf("synthesised header wrong: %+v", res.Header)
	}
}

func TestImplicitHeaderLengthMismatch(t *testing.T) {
	cfg := Config{SF: 8, CR: CR45, HasCRC: true, ImplicitHeader: true, ImplicitLength: 10}
	if _, err := Encode(make([]byte, 11), cfg); err == nil {
		t.Error("length mismatch accepted")
	}
	if MaxSymbolCount(cfg) != SymbolCount(cfg, 10) {
		t.Error("implicit MaxSymbolCount must equal the fixed length's count")
	}
	bad := cfg
	bad.ImplicitLength = 300
	if err := bad.Validate(); err == nil {
		t.Error("oversize implicit length accepted")
	}
}

func TestImplicitHeaderCorruptionDetected(t *testing.T) {
	cfg := Config{SF: 8, CR: CR45, HasCRC: true, ImplicitHeader: true, ImplicitLength: 16}
	p := bytes.Repeat([]byte{0x5A}, 16)
	syms, _ := Encode(p, cfg)
	syms[HeaderSymbolCount] ^= 0x33
	syms[HeaderSymbolCount+1] ^= 0x44
	res, err := Decode(syms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CRCOK && !bytes.Equal(res.Payload, p) {
		t.Error("CRC passed on corrupted implicit packet")
	}
}

func TestImplicitPlusLDRO(t *testing.T) {
	cfg := Config{SF: 11, CR: CR47, HasCRC: true, LowDataRate: true, ImplicitHeader: true, ImplicitLength: 32}
	p := bytes.Repeat([]byte{0xC3}, 32)
	syms, err := Encode(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(syms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, p) || !res.CRCOK {
		t.Error("implicit+LDRO round trip failed")
	}
}

func TestSymbolCountAcrossRates(t *testing.T) {
	// Higher coding rates cost more symbols for the same payload.
	prev := 0
	for cr := CR45; cr <= CR48; cr++ {
		cfg := Config{SF: 8, CR: cr, HasCRC: true}
		n := SymbolCount(cfg, 28)
		if n <= prev {
			t.Errorf("CR %v symbol count %d not increasing", cr, n)
		}
		prev = n
	}
	// Higher SF costs fewer symbols (more bits per symbol).
	sf8 := SymbolCount(Config{SF: 8, CR: CR45, HasCRC: true}, 64)
	sf11 := SymbolCount(Config{SF: 11, CR: CR45, HasCRC: true}, 64)
	if sf11 >= sf8 {
		t.Errorf("SF11 (%d) should need fewer symbols than SF8 (%d)", sf11, sf8)
	}
}

func TestDecodeIgnoresTrailingSymbols(t *testing.T) {
	cfg := Config{SF: 8, CR: CR45, HasCRC: true}
	p := []byte("trailing garbage tolerated")
	syms, _ := Encode(p, cfg)
	extended := append(append([]uint16(nil), syms...), 7, 99, 240, 3)
	res, err := Decode(extended, cfg)
	if err != nil || !res.CRCOK || !bytes.Equal(res.Payload, p) {
		t.Errorf("trailing symbols broke the decode: %v", err)
	}
}

// TestHammingRejectsInvalidCodingRate pins the malformed-input paths:
// an out-of-range coding rate is an encode error and decodes every
// codeword as invalid — never a panic (the nopanic invariant).
func TestHammingRejectsInvalidCodingRate(t *testing.T) {
	for _, cr := range []CodingRate{0, -1, 5, 99} {
		if _, err := HammingEncode(0xA, cr); err == nil {
			t.Errorf("HammingEncode(0xA, %d): want error, got nil", cr)
		}
		nib, corrected, ok := HammingDecode(0x5A, cr)
		if nib != 0 || corrected || ok {
			t.Errorf("HammingDecode(0x5A, %d) = (%x, %v, %v), want (0, false, false)", cr, nib, corrected, ok)
		}
	}
}
