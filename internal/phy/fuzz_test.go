package phy

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary symbol streams to the PHY decoder: it must
// never panic, and must never return CRCOK for a stream that was not
// produced by Encode (except for the astronomically unlikely CRC
// collision, which the fuzzer will not find).
func FuzzDecode(f *testing.F) {
	cfg := Config{SF: 8, CR: CR45, HasCRC: true}
	good, _ := Encode([]byte("seed corpus payload"), cfg)
	seed := make([]byte, 0, len(good)*2)
	for _, s := range good {
		seed = append(seed, byte(s), byte(s>>8))
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, raw []byte) {
		syms := make([]uint16, len(raw)/2)
		for i := range syms {
			syms[i] = (uint16(raw[2*i]) | uint16(raw[2*i+1])<<8) % 256
		}
		res, err := Decode(syms, cfg)
		if err != nil {
			return // rejected: fine
		}
		if res == nil {
			t.Fatal("nil result with nil error")
		}
		if int(res.Header.Length) != len(res.Payload) {
			t.Fatalf("header length %d != payload %d", res.Header.Length, len(res.Payload))
		}
	})
}

// FuzzEncodeDecodeRoundTrip: every payload Encode accepts must decode back
// to itself with a passing CRC.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), uint8(1), true)
	f.Add([]byte{}, uint8(4), false)
	f.Add(bytes.Repeat([]byte{0xA5}, 200), uint8(2), true)
	f.Fuzz(func(t *testing.T, payload []byte, crRaw uint8, hasCRC bool) {
		if len(payload) > 255 {
			payload = payload[:255]
		}
		cfg := Config{SF: 8, CR: CodingRate(crRaw%4) + 1, HasCRC: hasCRC}
		syms, err := Encode(payload, cfg)
		if err != nil {
			t.Fatalf("encode rejected valid payload: %v", err)
		}
		res, err := Decode(syms, cfg)
		if err != nil {
			t.Fatalf("decode failed on clean symbols: %v", err)
		}
		if !res.CRCOK {
			t.Fatal("CRC failed on clean round trip")
		}
		if !bytes.Equal(res.Payload, payload) && !(len(payload) == 0 && len(res.Payload) == 0) {
			t.Fatalf("payload mismatch: %x != %x", res.Payload, payload)
		}
	})
}

// FuzzHeaderDecode: arbitrary nibble quintets must never panic and must
// round-trip when they happen to be valid.
func FuzzHeaderDecode(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, nibs []byte) {
		if len(nibs) < headerNibbles {
			if _, err := DecodeHeader(nibs); err == nil {
				t.Fatal("short header accepted")
			}
			return
		}
		h, err := DecodeHeader(nibs[:headerNibbles])
		if err != nil {
			return
		}
		// A header that decodes must re-encode to nibbles that decode to
		// the same header (the low nibble bits are canonical).
		again, err := DecodeHeader(EncodeHeader(h))
		if err != nil || again != h {
			t.Fatalf("valid header did not round-trip: %+v vs %+v (%v)", h, again, err)
		}
	})
}
