package phy

// Whitener generates the PN9 whitening sequence (polynomial x⁹+x⁵+1, seed
// all-ones) used to scramble payload bytes so the radio sees a DC-balanced
// bit stream. Whitening is an involution: applying the same sequence twice
// restores the original bytes.
type Whitener struct {
	state uint16
}

// NewWhitener returns a Whitener in its initial (seed) state.
func NewWhitener() *Whitener { return &Whitener{state: 0x1FF} }

// Reset returns the whitener to the seed state.
func (w *Whitener) Reset() { w.state = 0x1FF }

// NextByte produces the next whitening byte of the PN9 sequence.
func (w *Whitener) NextByte() byte {
	var b byte
	for i := 0; i < 8; i++ {
		bit := w.state & 1
		b |= byte(bit) << i
		// x^9 + x^5 + 1: feedback from taps 0 and 5.
		fb := (w.state ^ (w.state >> 5)) & 1
		w.state = (w.state >> 1) | (fb << 8)
	}
	return b
}

// Apply XORs the whitening sequence over data in place, starting from the
// whitener's current state, and returns data.
func (w *Whitener) Apply(data []byte) []byte {
	for i := range data {
		data[i] ^= w.NextByte()
	}
	return data
}

// Whiten scrambles (or descrambles) a copy of data with a fresh PN9
// sequence.
func Whiten(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return NewWhitener().Apply(out)
}
