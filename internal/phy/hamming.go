package phy

import "fmt"

// CodingRate selects the LoRa forward-error-correction strength. LoRa
// encodes each data nibble into a (4+CR)-bit codeword, giving the familiar
// 4/5, 4/6, 4/7 and 4/8 rates.
type CodingRate int

const (
	CR45 CodingRate = 1 // 4/5: single parity bit, error detection only
	CR46 CodingRate = 2 // 4/6: two parity bits, error detection only
	CR47 CodingRate = 3 // 4/7: Hamming(7,4), single-bit correction
	CR48 CodingRate = 4 // 4/8: Hamming(8,4) SECDED
)

// Validate reports whether the coding rate is one of the four LoRa rates.
func (cr CodingRate) Validate() error {
	if cr < CR45 || cr > CR48 {
		return fmt.Errorf("phy: coding rate %d out of range [1,4]", int(cr))
	}
	return nil
}

// CodewordBits returns 4 + CR, the number of bits per FEC codeword.
func (cr CodingRate) CodewordBits() int { return 4 + int(cr) }

// String implements fmt.Stringer ("4/5" … "4/8").
func (cr CodingRate) String() string { return fmt.Sprintf("4/%d", 4+int(cr)) }

// Hamming parity helpers. Data nibble bits are d0 (LSB) … d3; the classic
// Hamming(7,4) parities are:
//
//	p0 = d0 ⊕ d1 ⊕ d3
//	p1 = d0 ⊕ d2 ⊕ d3
//	p2 = d1 ⊕ d2 ⊕ d3
//
// Codeword layout (LSB first): d0 d1 d2 d3 p0 p1 p2 [p3] where p3 is the
// overall parity used by Hamming(8,4). CR 4/5 sends only the overall
// parity; CR 4/6 sends p0 and p1.
func hammingParities(nib byte) (p0, p1, p2, pAll byte) {
	d0 := nib & 1
	d1 := (nib >> 1) & 1
	d2 := (nib >> 2) & 1
	d3 := (nib >> 3) & 1
	p0 = d0 ^ d1 ^ d3
	p1 = d0 ^ d2 ^ d3
	p2 = d1 ^ d2 ^ d3
	pAll = d0 ^ d1 ^ d2 ^ d3
	return
}

// HammingEncode encodes a data nibble (low 4 bits of nib) into a
// (4+CR)-bit codeword. An out-of-range coding rate is reported as an
// error (coding rates reach this layer from user configuration and the
// wire handshake, so it must not be able to crash a decode worker).
func HammingEncode(nib byte, cr CodingRate) (uint16, error) {
	nib &= 0x0F
	p0, p1, p2, pAll := hammingParities(nib)
	cw := uint16(nib)
	switch cr {
	case CR45:
		cw |= uint16(pAll) << 4
	case CR46:
		cw |= uint16(p0)<<4 | uint16(p1)<<5
	case CR47:
		cw |= uint16(p0)<<4 | uint16(p1)<<5 | uint16(p2)<<6
	case CR48:
		p3 := pAll ^ p0 ^ p1 ^ p2 // overall parity of the 7-bit codeword
		cw |= uint16(p0)<<4 | uint16(p1)<<5 | uint16(p2)<<6 | uint16(p3)<<7
	default:
		return 0, cr.Validate()
	}
	return cw, nil
}

// HammingDecode decodes a (4+CR)-bit codeword. It returns the data nibble,
// whether a single-bit error was corrected, and whether the codeword is
// valid. CR 4/7 and 4/8 correct single-bit errors; CR 4/5 and 4/6 only
// detect errors (ok=false on parity failure). CR 4/8 additionally detects
// (without mis-correcting) double-bit errors. An out-of-range coding rate
// decodes nothing: every codeword is reported invalid, matching how the
// payload pipeline treats undecodable blocks.
func HammingDecode(cw uint16, cr CodingRate) (nib byte, corrected, ok bool) {
	nib = byte(cw & 0x0F)
	switch cr {
	case CR45:
		_, _, _, pAll := hammingParities(nib)
		return nib, false, pAll == byte((cw>>4)&1)
	case CR46:
		p0, p1, _, _ := hammingParities(nib)
		return nib, false, p0 == byte((cw>>4)&1) && p1 == byte((cw>>5)&1)
	case CR47:
		n, corr := hamming74Correct(cw)
		return n, corr, true
	case CR48:
		// Split off the overall parity, correct on the inner (7,4) code,
		// then check overall parity for double-error detection.
		inner := cw & 0x7F
		pRecv := byte((cw >> 7) & 1)
		var pInner byte
		for i := 0; i < 7; i++ {
			pInner ^= byte((inner >> i) & 1)
		}
		n, corr := hamming74Correct(inner)
		if !corr {
			// No inner error: overall parity must match, else the error is
			// in p3 itself (still decodable).
			return n, pInner != pRecv, true
		}
		// Inner correction happened. If overall parity *matched* before
		// correction, there were two errors: uncorrectable.
		if pInner == pRecv {
			return n, false, false
		}
		return n, true, true
	default:
		return 0, false, false
	}
}

// hamming74Correct corrects up to one bit error in a 7-bit codeword and
// returns the data nibble plus whether a correction was applied.
func hamming74Correct(cw uint16) (byte, bool) {
	nib := byte(cw & 0x0F)
	p0r := byte((cw >> 4) & 1)
	p1r := byte((cw >> 5) & 1)
	p2r := byte((cw >> 6) & 1)
	p0, p1, p2, _ := hammingParities(nib)
	s := (p0 ^ p0r) | (p1^p1r)<<1 | (p2^p2r)<<2
	if s == 0 {
		return nib, false
	}
	// Syndrome → bit position. Syndromes for data bits:
	// d0 ∈ p0,p1   → s=0b011
	// d1 ∈ p0,p2   → s=0b101
	// d2 ∈ p1,p2   → s=0b110
	// d3 ∈ p0,p1,p2→ s=0b111
	// single parity-bit errors give s ∈ {001,010,100}: data unaffected.
	switch s {
	case 0b011:
		nib ^= 1 << 0
	case 0b101:
		nib ^= 1 << 1
	case 0b110:
		nib ^= 1 << 2
	case 0b111:
		nib ^= 1 << 3
	}
	return nib, true
}
