// Package phy implements the LoRa bit pipeline between payload bytes and
// chirp symbol values: whitening, Gray mapping, Hamming forward error
// correction (coding rates 4/5…4/8), the diagonal interleaver, the explicit
// header, and the payload CRC (paper §6, "Decoder").
//
// The pipeline is self-consistent (our encoder ↔ our decoder). It mirrors
// the structure of the Semtech PHY as documented by open-source decoders
// (rpp0/gr-lora): nibble-oriented Hamming codewords, SF-row diagonal
// interleaving blocks, a reduced-rate first block carrying the explicit
// header at CR 4/8, and whitening applied to the payload only. Exact
// over-the-air Semtech compatibility is out of scope: the evaluation metric
// (packets whose bits all survive) only needs a standard-shaped codec.
package phy

// GrayEncode returns the Gray code of v: v XOR (v >> 1).
//
// LoRa maps data onto symbol values in Gray order so that the most common
// demodulation error — a ±1 bin slip from noise or timing error — corrupts
// only a single bit, which the Hamming layer can then correct.
func GrayEncode(v int) int { return v ^ (v >> 1) }

// GrayDecode inverts GrayEncode.
func GrayDecode(g int) int {
	v := 0
	for ; g > 0; g >>= 1 {
		v ^= g
	}
	return v
}
