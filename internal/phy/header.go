package phy

import "fmt"

// Header is the LoRa explicit PHY header, transmitted in the reduced-rate
// first interleaving block at coding rate 4/8 so that receivers can learn
// the payload geometry before committing to a full-packet decode.
type Header struct {
	Length byte       // payload length in bytes
	CR     CodingRate // coding rate of the payload blocks
	HasCRC bool       // whether a 16-bit payload CRC trails the payload
}

// headerNibbles is the number of nibbles the encoded header occupies.
const headerNibbles = 5

// flags packs CR and the CRC-present bit into one nibble.
func (h Header) flags() byte {
	f := byte(h.CR) << 1
	if h.HasCRC {
		f |= 1
	}
	return f & 0x0F
}

// checksum derives the 8-bit header checksum from length and flags.
func (h Header) checksum() byte {
	return byte(CRC16([]byte{h.Length, h.flags()}) & 0xFF)
}

// EncodeHeader serialises the header into its five nibbles
// (low nibble first within each conceptual byte).
func EncodeHeader(h Header) []byte {
	chk := h.checksum()
	return []byte{
		h.Length & 0x0F, h.Length >> 4,
		h.flags(),
		chk & 0x0F, chk >> 4,
	}
}

// DecodeHeader parses five header nibbles, validating the checksum.
func DecodeHeader(nibs []byte) (Header, error) {
	if len(nibs) < headerNibbles {
		return Header{}, fmt.Errorf("phy: header needs %d nibbles, got %d", headerNibbles, len(nibs))
	}
	h := Header{
		Length: nibs[0]&0x0F | nibs[1]<<4,
		CR:     CodingRate((nibs[2] >> 1) & 0x07),
		HasCRC: nibs[2]&1 == 1,
	}
	if err := h.CR.Validate(); err != nil {
		return Header{}, fmt.Errorf("phy: header carries invalid coding rate: %w", err)
	}
	chk := nibs[3]&0x0F | nibs[4]<<4
	if chk != h.checksum() {
		return Header{}, fmt.Errorf("phy: header checksum mismatch (got %#02x, want %#02x)", chk, h.checksum())
	}
	return h, nil
}
