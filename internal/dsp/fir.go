package dsp

import (
	"fmt"
	"math"
)

// Window shapes for FIR design and spectral analysis.

// HammingWindow returns the n-point Hamming window.
func HammingWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// HannWindow returns the n-point Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// BlackmanWindow returns the n-point Blackman window.
func BlackmanWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return w
}

// LowpassFIR designs a linear-phase low-pass FIR filter by the
// windowed-sinc method (Hamming window). cutoff is the normalised cutoff
// frequency in cycles/sample, 0 < cutoff < 0.5. The taps are normalised to
// unit DC gain.
func LowpassFIR(taps int, cutoff float64) ([]float64, error) {
	if taps < 3 || taps%2 == 0 {
		return nil, fmt.Errorf("dsp: FIR taps %d must be odd and >= 3", taps)
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: cutoff %g out of (0, 0.5)", cutoff)
	}
	h := make([]float64, taps)
	mid := (taps - 1) / 2
	win := HammingWindow(taps)
	var sum float64
	for i := range h {
		x := float64(i - mid)
		var s float64
		if x == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*x) / (math.Pi * x)
		}
		h[i] = s * win[i]
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return h, nil
}

// Decimator low-pass filters and downsamples complex baseband by an
// integer factor — the digital front end between a wideband SDR capture
// and the decoder's working rate. It is stateless per call: Process
// consumes one complete buffer (edge samples use zero padding).
type Decimator struct {
	factor int
	taps   []float64
}

// NewDecimator builds a Decimator for the given integer factor (>= 1).
// taps <= 0 selects a default length scaled to the factor. The anti-alias
// cutoff is placed at 80% of the post-decimation Nyquist.
func NewDecimator(factor, taps int) (*Decimator, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor %d < 1", factor)
	}
	if factor == 1 {
		return &Decimator{factor: 1}, nil
	}
	if taps <= 0 {
		taps = 16*factor + 1
	}
	if taps%2 == 0 {
		taps++
	}
	h, err := LowpassFIR(taps, 0.4/float64(factor))
	if err != nil {
		return nil, err
	}
	return &Decimator{factor: factor, taps: h}, nil
}

// Factor returns the decimation factor.
func (d *Decimator) Factor() int { return d.factor }

// Process filters and downsamples iq, returning ceil(len/factor) samples.
// Only output phases are computed (polyphase evaluation), so the cost is
// len(iq)·taps/factor multiply-adds. See ProcessInto for the
// allocation-free form.
func (d *Decimator) Process(iq []complex128) []complex128 {
	return d.ProcessInto(nil, iq)
}

// OutputLen returns the number of samples Process produces for an input of
// inLen samples: ceil(inLen/factor).
func (d *Decimator) OutputLen(inLen int) int {
	return (inLen + d.factor - 1) / d.factor
}

// ProcessInto is Process writing into dst, which is grown (reallocating
// only when capacity is insufficient) to OutputLen(len(iq)) and returned.
// Streaming callers retain the returned slice across calls to keep the
// front end allocation-free once dst has reached its high-water mark.
//
//cic:hotpath
func (d *Decimator) ProcessInto(dst, iq []complex128) []complex128 {
	n := d.OutputLen(len(iq))
	if cap(dst) < n {
		dst = make([]complex128, n) //cic:alloc-ok — grows to the stream's high-water mark once
	}
	out := dst[:n]
	if d.factor == 1 {
		copy(out, iq)
		return out
	}
	mid := (len(d.taps) - 1) / 2
	for o := 0; o < n; o++ {
		center := o * d.factor
		var accR, accI float64
		for k, h := range d.taps {
			idx := center + k - mid
			if idx < 0 || idx >= len(iq) {
				continue
			}
			v := iq[idx]
			accR += h * real(v)
			accI += h * imag(v)
		}
		out[o] = complex(accR, accI)
	}
	return out
}
