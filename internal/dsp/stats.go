package dsp

import "math"

// DB converts a power ratio to decibels. Non-positive ratios map to -Inf.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmplitudeFromDB converts decibels to an amplitude (voltage) ratio.
func AmplitudeFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// SignalEnergy returns Σ|x|² of a complex signal.
func SignalEnergy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// SignalPower returns the mean power of a complex signal (0 for empty).
func SignalPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return SignalEnergy(x) / float64(len(x))
}

// WrapToHalf wraps x into the circular interval [-half, half).
func WrapToHalf(x, half float64) float64 {
	period := 2 * half
	x = math.Mod(x+half, period)
	if x < 0 {
		x += period
	}
	return x - half
}
