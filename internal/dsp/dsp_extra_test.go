package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestMustPlanCachesAndConcurrentUse(t *testing.T) {
	a := MustPlan(256)
	b := MustPlan(256)
	if a != b {
		t.Error("MustPlan did not cache")
	}
	// A plan must be usable from many goroutines at once.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			x := randSignal(r, 256)
			y := append([]complex128(nil), x...)
			a.Forward(y)
			a.Inverse(y)
			for i := range x {
				if cmplx.Abs(x[i]-y[i]) > 1e-9 {
					t.Errorf("goroutine %d: round trip failed", seed)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestMustPlanPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPlan(3) did not panic")
		}
	}()
	MustPlan(3)
}

func TestFFTSize(t *testing.T) {
	if MustPlan(64).Size() != 64 {
		t.Error("Size wrong")
	}
}

// TestForwardRedirectsOnWrongLength: a buffer whose length differs from the
// plan size is transformed by the cached plan of the matching size, and a
// non-power-of-two buffer is left unchanged — never a panic.
func TestForwardRedirectsOnWrongLength(t *testing.T) {
	// Impulse through a mismatched plan: the DFT of δ[0] is all ones, which
	// only happens if the length-8 transform actually ran.
	x := make([]complex128, 8)
	x[0] = 1
	MustPlan(16).Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("redirected transform bin %d = %v, want 1", i, v)
		}
	}
	// Non-power-of-two length: no radix-2 plan exists, input stays intact.
	y := []complex128{1, 2, 3}
	MustPlan(16).Forward(y)
	if y[0] != 1 || y[1] != 2 || y[2] != 3 {
		t.Errorf("non-pow2 input modified: %v", y)
	}
	// Inverse and ForwardInto share the redirect path.
	MustPlan(16).Inverse(y)
	if y[0] != 1 || y[1] != 2 || y[2] != 3 {
		t.Errorf("non-pow2 Inverse modified input: %v", y)
	}
	z := make([]complex128, 8)
	MustPlan(16).ForwardInto(z, x)
	if cmplx.Abs(z[0]-8) > 1e-9 {
		t.Errorf("redirected ForwardInto DC bin = %v, want 8", z[0])
	}
}

// TestFFTTimeShiftProperty: a circular time shift multiplies the spectrum
// by a linear phase; the magnitudes are invariant.
func TestFFTTimeShiftProperty(t *testing.T) {
	n := 128
	f := MustPlan(n)
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}
	prop := func(seed int64, shiftRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		x := randSignal(r, n)
		shift := int(shiftRaw) % n
		shifted := make([]complex128, n)
		for i := range x {
			shifted[(i+shift)%n] = x[i]
		}
		fx := append([]complex128(nil), x...)
		fs := append([]complex128(nil), shifted...)
		f.Forward(fx)
		f.Forward(fs)
		for k := range fx {
			if math.Abs(cmplx.Abs(fx[k])-cmplx.Abs(fs[k])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestDFTBinFractionalInterpolation: DFTBin at a fractional position of a
// fractional tone recovers full amplitude (no scalloping loss).
func TestDFTBinFractionalInterpolation(t *testing.T) {
	n := 256
	for _, bin := range []float64{10.0, 10.25, 10.5, 200.875} {
		x := make([]complex128, n)
		for i := range x {
			ang := 2 * math.Pi * bin * float64(i) / float64(n)
			x[i] = cmplx.Exp(complex(0, ang))
		}
		v := DFTBin(x, n, bin)
		if got := cmplx.Abs(v); math.Abs(got-float64(n)) > 1e-6 {
			t.Errorf("bin %g: |DFTBin| = %g, want %d", bin, got, n)
		}
	}
}

func TestRefinePeakRangeSpread(t *testing.T) {
	n := 256
	trueBin := 50.75
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * trueBin * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, ang))
	}
	// Starting 1 bin away with spread 0.5 cannot reach the tone...
	posNear, _ := RefinePeakRange(x, n, 52, 16, 0.5)
	if math.Abs(posNear-trueBin) < 0.2 {
		t.Errorf("spread 0.5 reached %g from bin 52 (outside range)", posNear)
	}
	// ...but spread 1.5 can.
	posFar, _ := RefinePeakRange(x, n, 52, 16, 1.5)
	if math.Abs(posFar-trueBin) > 0.1 {
		t.Errorf("spread 1.5 found %g, want %g", posFar, trueBin)
	}
}

func TestSpectrumScaleAndMax(t *testing.T) {
	s := Spectrum{1, 5, 3}
	s.Scale(2)
	if s[1] != 10 {
		t.Error("Scale wrong")
	}
	v, at := s.Max()
	if v != 10 || at != 1 {
		t.Error("Max wrong")
	}
	var empty Spectrum
	if v, at := empty.Max(); v != 0 || at != -1 {
		t.Error("empty Max wrong")
	}
}

func TestFindPeaksEmptyAndSingle(t *testing.T) {
	if p := FindPeaks(nil, 0, 0); p != nil {
		t.Error("nil spectrum produced peaks")
	}
	if p := FindPeaks(Spectrum{5}, 1, 0); len(p) != 1 || p[0].Bin != 0 {
		t.Error("single-bin spectrum")
	}
	if p := FindPeaks(Spectrum{5}, 6, 0); len(p) != 0 {
		t.Error("threshold not applied to single bin")
	}
}

func TestTopPeaksZeroSpectrum(t *testing.T) {
	if p := TopPeaks(make(Spectrum, 8), 0.5, 3); p != nil {
		t.Error("zero spectrum produced peaks")
	}
}

func TestNoiseFloorEmpty(t *testing.T) {
	if NoiseFloor(nil) != 0 {
		t.Error("empty floor not 0")
	}
	if NoiseFloor(Spectrum{3}) != 3 {
		t.Error("single-bin floor")
	}
	if f := NoiseFloor(Spectrum{1, 3}); f != 2 {
		t.Errorf("even-length median = %g, want 2", f)
	}
}

func TestQuadInterpTinySpectra(t *testing.T) {
	if off, h := QuadInterp(Spectrum{7}, 0); off != 0 || h != 7 {
		t.Error("1-bin interp")
	}
	if off, h := QuadInterp(Spectrum{7, 7}, 1); off != 0 || h != 7 {
		t.Error("flat interp must return center")
	}
}

// TestIntersectClampsOnMismatch: mismatched spectra intersect over the
// common prefix, with missing bins treated as zero power.
func TestIntersectClampsOnMismatch(t *testing.T) {
	got := Intersect(nil, Spectrum{3}, Spectrum{1, 2})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Intersect = %v, want [1]", got)
	}
	// A pre-sized dst longer than the common prefix is zeroed beyond it.
	dst := Spectrum{9, 9, 9}
	Intersect(dst, Spectrum{3, 4}, Spectrum{1})
	if dst[0] != 1 || dst[1] != 0 || dst[2] != 0 {
		t.Errorf("Intersect into long dst = %v, want [1 0 0]", dst)
	}
	acc := Spectrum{5, 6, 7}
	IntersectInto(acc, Spectrum{2})
	if acc[0] != 2 || acc[1] != 0 || acc[2] != 0 {
		t.Errorf("IntersectInto = %v, want [2 0 0]", acc)
	}
}

func TestSignalEnergyAndPower(t *testing.T) {
	x := []complex128{3, 4i}
	if SignalEnergy(x) != 25 {
		t.Error("energy")
	}
	if SignalPower(x) != 12.5 {
		t.Error("power")
	}
	if SignalPower(nil) != 0 {
		t.Error("empty power")
	}
}
