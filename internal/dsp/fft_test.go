package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// naiveDFT is an O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func randSignal(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNewFFTRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 12, 1000} {
		if _, err := NewFFT(n); err == nil {
			t.Errorf("NewFFT(%d) succeeded, want error", n)
		}
	}
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if _, err := NewFFT(n); err != nil {
			t.Errorf("NewFFT(%d) failed: %v", n, err)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randSignal(r, n)
		want := naiveDFT(x)
		got := make([]complex128, n)
		copy(got, x)
		MustPlan(n).Forward(got)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %g vs naive DFT", n, e)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 16, 128, 2048} {
		f := MustPlan(n)
		x := randSignal(r, n)
		y := make([]complex128, n)
		copy(y, x)
		f.Forward(y)
		f.Inverse(y)
		if e := maxErr(x, y); e > 1e-10*float64(n) {
			t.Errorf("n=%d: round-trip error %g", n, e)
		}
	}
}

func TestFFTPureToneLandsOnBin(t *testing.T) {
	n := 256
	f := MustPlan(n)
	for _, bin := range []int{0, 1, 17, n / 2, n - 1} {
		x := make([]complex128, n)
		for t2 := range x {
			ang := 2 * math.Pi * float64(bin) * float64(t2) / float64(n)
			x[t2] = cmplx.Exp(complex(0, ang))
		}
		f.Forward(x)
		_, at := Spectrum(magSq(x)).Max()
		if at != bin {
			t.Errorf("tone at bin %d detected at %d", bin, at)
		}
	}
}

func magSq(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return out
}

func TestFFTLinearityProperty(t *testing.T) {
	f := MustPlan(64)
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	prop := func(seed int64, ar, ai, br, bi float64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randSignal(r, 64)
		y := randSignal(r, 64)
		a := complex(clampF(ar), clampF(ai))
		b := complex(clampF(br), clampF(bi))
		// FFT(a·x + b·y)
		comb := make([]complex128, 64)
		for i := range comb {
			comb[i] = a*x[i] + b*y[i]
		}
		f.Forward(comb)
		// a·FFT(x) + b·FFT(y)
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		f.Forward(fx)
		f.Forward(fy)
		for i := range fx {
			fx[i] = a*fx[i] + b*fy[i]
		}
		return maxErr(comb, fx) < 1e-8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// clampF keeps quick-generated values in a numerically reasonable range.
func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 8)
}

func TestFFTParsevalProperty(t *testing.T) {
	f := MustPlan(128)
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(4))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randSignal(r, 128)
		te := SignalEnergy(x)
		y := append([]complex128(nil), x...)
		f.Forward(y)
		fe := SignalEnergy(y) / 128
		return math.Abs(te-fe) < 1e-8*(te+1)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestForwardIntoZeroPads(t *testing.T) {
	f := MustPlan(16)
	src := []complex128{1, 2, 3}
	dst := make([]complex128, 16)
	for i := range dst {
		dst[i] = complex(99, 99) // stale garbage that must be overwritten
	}
	f.ForwardInto(dst, src)
	// DC bin must equal the sum of src.
	if d := cmplx.Abs(dst[0] - complex(6, 0)); d > 1e-12 {
		t.Errorf("DC bin = %v, want 6", dst[0])
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestDFTBinMatchesFFT(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 64
	x := randSignal(r, n)
	y := append([]complex128(nil), x...)
	MustPlan(n).Forward(y)
	for _, bin := range []int{0, 1, 31, 63} {
		got := DFTBin(x, n, float64(bin))
		if d := cmplx.Abs(got - y[bin]); d > 1e-9 {
			t.Errorf("DFTBin(%d) = %v, FFT bin = %v (err %g)", bin, got, y[bin], d)
		}
	}
}

func TestRefinePeakFindsFractionalTone(t *testing.T) {
	n := 256
	trueBin := 41.3125 // 41 + 5/16
	x := make([]complex128, n)
	for t2 := range x {
		ang := 2 * math.Pi * trueBin * float64(t2) / float64(n)
		x[t2] = cmplx.Exp(complex(0, ang))
	}
	pos, _ := RefinePeak(x, n, 41, 16)
	if math.Abs(pos-trueBin) > 1.0/32 {
		t.Errorf("RefinePeak = %g, want %g", pos, trueBin)
	}
}

// TestMustPlanConcurrent exercises the double-checked plan-cache lookup
// under -race: many goroutines resolving a mix of new and cached sizes
// must all receive the same plan per size.
func TestMustPlanConcurrent(t *testing.T) {
	sizes := []int{64, 128, 256, 512, 1024}
	var wg sync.WaitGroup
	plans := make([][]*FFT, 8)
	for g := range plans {
		plans[g] = make([]*FFT, len(sizes))
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, n := range sizes {
				plans[g][i] = MustPlan(n)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(plans); g++ {
		for i := range sizes {
			if plans[g][i] != plans[0][i] {
				t.Errorf("goroutine %d got a different plan for size %d", g, sizes[i])
			}
		}
	}
}

// BenchmarkMustPlanParallel measures plan-cache hit cost under concurrent
// decode workers: with the read-write lock, hits must not serialise.
func BenchmarkMustPlanParallel(b *testing.B) {
	MustPlan(1024) // warm the cache
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if MustPlan(1024) == nil {
				b.Fatal("nil plan")
			}
		}
	})
}
