// Package dsp provides the signal-processing kernel used throughout the
// repository: an allocation-free radix-2 complex FFT, folded LoRa spectra,
// peak detection with sub-bin interpolation, and small statistics helpers.
//
// The package is deliberately self-contained (stdlib only) because the rest
// of the system — chirp modulation, de-chirping, CIC spectral intersection —
// is built directly on these primitives.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFT is a reusable plan for forward and inverse complex FFTs of a fixed
// power-of-two size. A plan is safe for concurrent use by multiple
// goroutines: Transform writes into caller-provided scratch only.
type FFT struct {
	n       int
	logN    int
	perm    []int        // bit-reversal permutation
	twiddle []complex128 // twiddle[k] = exp(-2πi k / n), k < n/2
}

var (
	planMu    sync.RWMutex
	planCache = map[int]*FFT{}
)

// NewFFT returns an FFT plan for size n. n must be a power of two and >= 1.
func NewFFT(n int) (*FFT, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a positive power of two", n)
	}
	f := &FFT{n: n, logN: bits.TrailingZeros(uint(n))}
	f.perm = make([]int, n)
	shift := 64 - uint(f.logN)
	for i := range f.perm {
		f.perm[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	f.twiddle = make([]complex128, n/2)
	for k := range f.twiddle {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		f.twiddle[k] = complex(c, s)
	}
	return f, nil
}

// Plan returns a cached FFT plan for size n, creating it on first use.
// n must be a positive power of two. Cache hits take only a read lock,
// so concurrent decode workers do not serialise on the lookup.
func Plan(n int) (*FFT, error) {
	planMu.RLock()
	p, ok := planCache[n]
	planMu.RUnlock()
	if ok {
		return p, nil
	}
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[n]; ok {
		return p, nil
	}
	p, err := NewFFT(n)
	if err != nil {
		return nil, err
	}
	planCache[n] = p
	return p, nil
}

// MustPlan is Plan for sizes known good at construction time: it panics
// if n is not a positive power of two. The must* name marks the panic
// as sanctioned (the nopanic analyzer exempts must* constructors);
// decode-path code with wire-derived sizes uses Plan instead.
func MustPlan(n int) *FFT {
	p, err := Plan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the transform length of the plan.
func (f *FFT) Size() int { return f.n }

// resolve returns the plan matching len(x): the receiver when the
// length agrees, the cached plan of size len(x) otherwise, and nil when
// len(x) is not a positive power of two (no radix-2 transform exists).
// This makes every transform method total — a mismatched buffer is
// handled by the right plan or left untouched, never a panic, so a
// hostile window length cannot crash a decode worker.
func (f *FFT) resolve(x []complex128) *FFT {
	if f != nil && len(x) == f.n {
		return f
	}
	p, err := Plan(len(x))
	if err != nil {
		return nil
	}
	return p
}

// Forward computes the in-place forward DFT of x. A length mismatch is
// redirected to the cached plan of size len(x); inputs whose length is
// not a positive power of two are left unchanged (see resolve).
func (f *FFT) Forward(x []complex128) {
	if g := f.resolve(x); g != nil {
		g.transform(x)
	}
}

// Inverse computes the in-place inverse DFT of x (including the 1/n
// scaling), with the same length-redirect semantics as Forward.
func (f *FFT) Inverse(x []complex128) {
	g := f.resolve(x)
	if g == nil {
		return
	}
	for i := range x {
		x[i] = complex(imag(x[i]), real(x[i])) // conjugate trick, part 1
	}
	g.transform(x)
	inv := 1 / float64(g.n)
	for i := range x {
		// part 2: swap back and scale
		x[i] = complex(imag(x[i])*inv, real(x[i])*inv)
	}
}

// transform assumes len(x) == f.n; exported wrappers resolve the plan
// first.
func (f *FFT) transform(x []complex128) {
	// Bit-reversal permutation.
	for i, j := range f.perm {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= f.n; size <<= 1 {
		half := size >> 1
		step := f.n / size
		for start := 0; start < f.n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := f.twiddle[tw]
				tw += step
				a, b := x[k], x[k+half]*w
				x[k], x[k+half] = a+b, a-b
			}
		}
	}
}

// ForwardInto copies src into dst (zero-padding or truncating to the
// transform size) and transforms dst in place, with the same
// length-redirect semantics as Forward (a dst of unusable length is
// left unchanged).
func (f *FFT) ForwardInto(dst, src []complex128) {
	g := f.resolve(dst)
	if g == nil {
		return
	}
	n := copy(dst, src)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	g.transform(dst)
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
