// Package dsp provides the signal-processing kernel used throughout the
// repository: an allocation-free mixed radix-4/radix-2 complex FFT, folded
// LoRa spectra, peak detection with sub-bin interpolation, and small
// statistics helpers.
//
// The package is deliberately self-contained (stdlib only) because the rest
// of the system — chirp modulation, de-chirping, CIC spectral intersection —
// is built directly on these primitives.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFT is a reusable plan for forward and inverse complex FFTs of a fixed
// power-of-two size. The transform is decimation-in-time radix-4 with a
// single radix-2 first stage when log2(n) is odd; radix-4 butterflies do
// ~25% fewer complex multiplies than radix-2. A plan is safe for concurrent
// use by multiple goroutines: transforms are in place over caller storage
// and the plan itself is read-only after construction.
type FFT struct {
	n       int
	logN    int
	perm    []int        // mixed-radix digit-reversal: stage input p holds x[perm[p]]
	swaps   []int32      // transposition list realising perm in place (cycle decomposition)
	twiddle []complex128 // twiddle[k] = exp(-2πi k / n), k < n (full circle, serves w^k, w^2k, w^3k)
}

var (
	planMu    sync.RWMutex
	planCache = map[int]*FFT{}
)

// NewFFT returns an FFT plan for size n. n must be a power of two and >= 1.
func NewFFT(n int) (*FFT, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a positive power of two", n)
	}
	f := &FFT{n: n, logN: bits.TrailingZeros(uint(n))}
	f.perm = digitReversal(n)
	f.swaps = permSwaps(f.perm)
	f.twiddle = make([]complex128, n)
	for k := range f.twiddle {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		f.twiddle[k] = complex(c, s)
	}
	return f, nil
}

// digitReversal builds the input permutation for the mixed-radix
// decimation-in-time schedule: radix-4 stages throughout, with a radix-2
// stage innermost (executed first) when log2(n) is odd. Position p of the
// permuted input holds x[perm[p]].
func digitReversal(n int) []int {
	if n == 1 {
		return []int{0}
	}
	r := 4
	if n == 2 {
		r = 2
	}
	m := n / r
	sub := digitReversal(m)
	out := make([]int, n)
	for k := 0; k < r; k++ {
		for j := 0; j < m; j++ {
			out[k*m+j] = r*sub[j] + k
		}
	}
	return out
}

// permSwaps flattens perm's cycle decomposition into an ordered list of
// transpositions (a, b) such that applying the swaps left to right yields
// y[p] = x[perm[p]]. Unlike plain bit reversal the mixed-radix permutation
// is not an involution, so it cannot be applied with the classic
// "swap if i < j" loop.
func permSwaps(perm []int) []int32 {
	n := len(perm)
	seen := make([]bool, n)
	var swaps []int32
	for start := 0; start < n; start++ {
		if seen[start] || perm[start] == start {
			seen[start] = true
			continue
		}
		prev := start
		for j := perm[start]; j != start; j = perm[j] {
			seen[j] = true
			swaps = append(swaps, int32(prev), int32(j))
			prev = j
		}
		seen[start] = true
	}
	return swaps
}

// Plan returns a cached FFT plan for size n, creating it on first use.
// n must be a positive power of two. Cache hits take only a read lock,
// so concurrent decode workers do not serialise on the lookup.
func Plan(n int) (*FFT, error) {
	planMu.RLock()
	p, ok := planCache[n]
	planMu.RUnlock()
	if ok {
		return p, nil
	}
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[n]; ok {
		return p, nil
	}
	p, err := NewFFT(n)
	if err != nil {
		return nil, err
	}
	planCache[n] = p
	return p, nil
}

// MustPlan is Plan for sizes known good at construction time: it panics
// if n is not a positive power of two. The must* name marks the panic
// as sanctioned (the nopanic analyzer exempts must* constructors);
// decode-path code with wire-derived sizes uses Plan instead.
func MustPlan(n int) *FFT {
	p, err := Plan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the transform length of the plan.
func (f *FFT) Size() int { return f.n }

// resolve returns the plan matching len(x): the receiver when the
// length agrees, the cached plan of size len(x) otherwise, and nil when
// len(x) is not a positive power of two (no power-of-two transform exists).
// This makes every transform method total — a mismatched buffer is
// handled by the right plan or left untouched, never a panic, so a
// hostile window length cannot crash a decode worker.
func (f *FFT) resolve(x []complex128) *FFT {
	if f != nil && len(x) == f.n {
		return f
	}
	p, err := Plan(len(x)) //cic:alloc-ok: once-per-size plan construction, memoised in the package cache — steady state hits the cache and never reaches this call
	if err != nil {
		return nil
	}
	return p
}

// Forward computes the in-place forward DFT of x. A length mismatch is
// redirected to the cached plan of size len(x); inputs whose length is
// not a positive power of two are left unchanged (see resolve).
//
//cic:hotpath
func (f *FFT) Forward(x []complex128) {
	if g := f.resolve(x); g != nil {
		g.transform(x)
	}
}

// Inverse computes the in-place inverse DFT of x (including the 1/n
// scaling), with the same length-redirect semantics as Forward.
func (f *FFT) Inverse(x []complex128) {
	g := f.resolve(x)
	if g == nil {
		return
	}
	for i := range x {
		x[i] = complex(imag(x[i]), real(x[i])) // conjugate trick, part 1
	}
	g.transform(x)
	inv := 1 / float64(g.n)
	for i := range x {
		// part 2: swap back and scale
		x[i] = complex(imag(x[i])*inv, real(x[i])*inv)
	}
}

// transform assumes len(x) == f.n; exported wrappers resolve the plan
// first. Schedule: digit-reversal permutation, an optional radix-2 stage
// (odd log2 n), then radix-4 stages of size 4·(previous).
//
//cic:hotpath
func (f *FFT) transform(x []complex128) {
	for i := 0; i < len(f.swaps); i += 2 {
		a, b := f.swaps[i], f.swaps[i+1]
		x[a], x[b] = x[b], x[a]
	}
	f.stages(x)
}

// stages runs the butterfly schedule over x, which must already be in
// digit-reversed order.
//
//cic:hotpath
func (f *FFT) stages(x []complex128) {
	n := f.n
	first4 := 4
	if f.logN&1 == 1 {
		// Radix-2 pass over adjacent pairs; W_2^0 = 1, so no twiddles.
		for i := 0; i < n; i += 2 {
			a, b := x[i], x[i+1]
			x[i], x[i+1] = a+b, a-b
		}
		first4 = 8
	}
	for size := first4; size <= n; size <<= 2 {
		q := size >> 2
		step := n / size
		for base := 0; base < n; base += size {
			// k = 0 butterfly: all twiddles are 1.
			{
				a, b := x[base], x[base+q]
				c, d := x[base+2*q], x[base+3*q]
				t0, t1 := a+c, a-c
				t2, e := b+d, b-d
				t3 := complex(imag(e), -real(e)) // -i·(b-d)
				x[base], x[base+q] = t0+t2, t1+t3
				x[base+2*q], x[base+3*q] = t0-t2, t1-t3
			}
			tw := step
			for i := base + 1; i < base+q; i++ {
				w1 := f.twiddle[tw]
				w2 := f.twiddle[2*tw]
				w3 := f.twiddle[3*tw]
				tw += step
				a := x[i]
				b := x[i+q] * w1
				c := x[i+2*q] * w2
				d := x[i+3*q] * w3
				t0, t1 := a+c, a-c
				t2, e := b+d, b-d
				t3 := complex(imag(e), -real(e)) // -i·(b-d)
				x[i], x[i+q] = t0+t2, t1+t3
				x[i+2*q], x[i+3*q] = t0-t2, t1-t3
			}
		}
	}
}

// ForwardInto copies src into dst (zero-padding or truncating to the
// transform size) and transforms dst in place, with the same
// length-redirect semantics as Forward (a dst of unusable length is
// left unchanged).
//
//cic:hotpath
func (f *FFT) ForwardInto(dst, src []complex128) {
	g := f.resolve(dst)
	if g == nil {
		return
	}
	n := copy(dst, src)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	g.transform(dst)
}

// ForwardWindowed computes the forward DFT of the signal that equals src
// on the sample range [from, to) and is zero elsewhere, writing the
// spectrum into dst (src is not modified). This is the zero-padded
// sub-window transform at the heart of ICSS spectral intersection: the
// digit-reversal gather, the zero padding, and the segment copy fuse into
// a single pass over dst, so no separate buffer clear is needed between
// sub-symbols. dst follows Forward's length-redirect semantics; out-of-range
// from/to are clamped, and an empty range yields the all-zero spectrum.
//
//cic:hotpath
func (f *FFT) ForwardWindowed(dst, src []complex128, from, to int) {
	g := f.resolve(dst)
	if g == nil {
		return
	}
	if from < 0 {
		from = 0
	}
	if to > len(src) {
		to = len(src)
	}
	for p, q := range g.perm {
		if q >= from && q < to {
			dst[p] = src[q]
		} else {
			dst[p] = 0
		}
	}
	g.stages(dst)
}

// ForwardReal computes the n-point DFT of the real sequence src
// (n = len(src)) via one complex transform of half the size: even/odd
// samples are packed as real/imaginary parts, transformed with the n/2
// plan, and the two interleaved spectra are disentangled with the plan's
// full-circle twiddle table. The full conjugate-symmetric spectrum is
// written into dst[:n], so folded-magnitude consumers can use the output
// exactly like Forward's.
//
// It follows the package's totality rules: a plan/size mismatch is
// redirected to the cached plan of size len(src); the call is a no-op when
// len(src) is not a power of two >= 1 or dst is shorter than len(src).
// No allocation occurs after the n and n/2 plans are warm.
func (f *FFT) ForwardReal(dst []complex128, src []float64) {
	n := len(src)
	if f == nil || f.n != n {
		p, err := Plan(n)
		if err != nil {
			return
		}
		f = p
	}
	if len(dst) < n {
		return
	}
	dst = dst[:n]
	if n == 1 {
		dst[0] = complex(src[0], 0)
		return
	}
	h := n / 2
	halfPlan, err := Plan(h)
	if err != nil {
		return
	}
	z := dst[:h]
	for j := 0; j < h; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	halfPlan.transform(z)
	// Unpack: with E = DFT(even samples), O = DFT(odd samples),
	// Z[k] = E[k] + i·O[k] and conj(Z[h-k]) = E[k] - i·O[k], so
	// X[k] = E[k] + W^k·O[k] with W = exp(-2πi/n) = f.twiddle[1].
	z0 := z[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	if h >= 1 {
		dst[h] = complex(real(z0)-imag(z0), 0)
	}
	for k := 1; 2*k < h; k++ {
		zk, zmk := z[k], z[h-k]
		er := (zk + complex(real(zmk), -imag(zmk))) * 0.5
		od := (zk - complex(real(zmk), -imag(zmk))) * complex(0, -0.5)
		xk := er + f.twiddle[k]*od
		xmk := complex(real(er), -imag(er)) + f.twiddle[h-k]*complex(real(od), -imag(od))
		dst[k], dst[h-k] = xk, xmk
		dst[n-k] = complex(real(xk), -imag(xk))
		dst[n-h+k] = complex(real(xmk), -imag(xmk))
	}
	if h%2 == 0 && h >= 2 {
		k := h / 2
		zk := z[k]
		xk := complex(real(zk), 0) + f.twiddle[k]*complex(imag(zk), 0)
		dst[k] = xk
		dst[n-k] = complex(real(xk), -imag(xk))
	}
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
