package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSpectrum(r *rand.Rand, n int) Spectrum {
	s := make(Spectrum, n)
	for i := range s {
		s[i] = r.Float64() * 10
	}
	return s
}

func TestFoldMagnitudeOSR1(t *testing.T) {
	x := []complex128{1, 2i, complex(3, 4), -1}
	got := FoldMagnitude(nil, x, 4, 1)
	want := []float64{1, 4, 25, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bin %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestFoldMagnitudeSumsImages(t *testing.T) {
	bins, osr := 4, 4
	x := make([]complex128, bins*osr)
	x[1] = complex(3, 0)              // image j=0 at bin 1
	x[(osr-1)*bins+1] = complex(0, 4) // image j=osr-1 at bin 1
	x[bins+2] = complex(9, 9)         // middle image: must be ignored
	got := FoldMagnitude(nil, x, bins, osr)
	// Amplitude fold: (|3| + |4i|)² = 49.
	if math.Abs(got[1]-49) > 1e-12 {
		t.Errorf("bin 1 = %g, want 49", got[1])
	}
	if got[2] != 0 {
		t.Errorf("bin 2 = %g, want 0 (middle images excluded)", got[2])
	}
}

func TestFoldMagnitudeReusesDst(t *testing.T) {
	x := make([]complex128, 8)
	dst := make(Spectrum, 4)
	dst[0] = 42 // stale value that must be overwritten
	out := FoldMagnitude(dst, x, 4, 2)
	if &out[0] != &dst[0] {
		t.Fatal("FoldMagnitude did not reuse dst")
	}
	if out[0] != 0 {
		t.Errorf("stale value not overwritten: %g", out[0])
	}
}

func TestNormalizeUnitEnergy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := randSpectrum(r, 64).Normalize()
	if e := s.Energy(); math.Abs(e-1) > 1e-12 {
		t.Errorf("energy after normalize = %g", e)
	}
	z := make(Spectrum, 4)
	z.Normalize() // must not panic or produce NaN
	for _, v := range z {
		if v != 0 {
			t.Error("zero spectrum mutated by Normalize")
		}
	}
}

func TestIntersectCommutativeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSpectrum(r, 32), randSpectrum(r, 32)
		ab := Intersect(nil, a, b)
		ba := Intersect(nil, b, a)
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error("P1 commutativity violated:", err)
	}
}

func TestIntersectAssociativeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randSpectrum(r, 32), randSpectrum(r, 32), randSpectrum(r, 32)
		left := Intersect(nil, Intersect(nil, a, b), c)
		right := Intersect(nil, a, Intersect(nil, b, c))
		for i := range left {
			if left[i] != right[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error("P1 associativity violated:", err)
	}
}

func TestIntersectIdempotentAndBounded(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSpectrum(r, 16), randSpectrum(r, 16)
		aa := Intersect(nil, a, a)
		ab := Intersect(nil, a, b)
		for i := range a {
			if aa[i] != a[i] {
				return false // idempotent
			}
			if ab[i] > a[i] || ab[i] > b[i] {
				return false // bounded above by both inputs
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestIntersectPreservesResolution checks property P2: when one spectrum has
// a sharp (high-resolution) peak and the other a wide (low-resolution) peak
// at the same frequency, the intersection retains the sharp shape.
func TestIntersectPreservesResolution(t *testing.T) {
	n := 64
	sharp := make(Spectrum, n)
	wide := make(Spectrum, n)
	center := 32
	for i := 0; i < n; i++ {
		d := float64(i - center)
		sharp[i] = math.Exp(-d * d / 2) // σ=1
		wide[i] = math.Exp(-d * d / 50) // σ=5
	}
	got := Intersect(nil, sharp, wide)
	// The intersection must everywhere equal the sharp spectrum near the
	// peak (sharp <= wide around the lobe center).
	for i := center - 3; i <= center+3; i++ {
		if got[i] != sharp[i] {
			t.Errorf("bin %d: intersection %g != sharp %g", i, got[i], sharp[i])
		}
	}
	// Width check: count bins above half-max.
	width := func(s Spectrum) int {
		maxV, _ := s.Max()
		c := 0
		for _, v := range s {
			if v > maxV/2 {
				c++
			}
		}
		return c
	}
	if width(got) > width(sharp) {
		t.Errorf("intersection width %d > sharp width %d", width(got), width(sharp))
	}
}

func TestIntersectInto(t *testing.T) {
	acc := Spectrum{5, 1, 7}
	IntersectInto(acc, Spectrum{3, 2, 9})
	want := Spectrum{3, 1, 7}
	for i := range want {
		if acc[i] != want[i] {
			t.Errorf("bin %d = %g, want %g", i, acc[i], want[i])
		}
	}
}

func TestFindPeaks(t *testing.T) {
	s := Spectrum{0, 5, 1, 0, 3, 0, 0, 2}
	peaks := FindPeaks(s, 0.5, 0)
	if len(peaks) != 3 {
		t.Fatalf("got %d peaks, want 3: %+v", len(peaks), peaks)
	}
	if peaks[0].Bin != 1 || peaks[1].Bin != 4 || peaks[2].Bin != 7 {
		t.Errorf("peak order wrong: %+v", peaks)
	}
	limited := FindPeaks(s, 0.5, 2)
	if len(limited) != 2 || limited[0].Bin != 1 {
		t.Errorf("maxPeaks truncation wrong: %+v", limited)
	}
}

func TestFindPeaksCircularWrap(t *testing.T) {
	// Peak at bin 0 with wrap-around neighbours.
	s := Spectrum{9, 1, 0, 0, 0, 0, 0, 2}
	peaks := FindPeaks(s, 0, 1)
	if len(peaks) != 1 || peaks[0].Bin != 0 {
		t.Errorf("wrap-around peak not found: %+v", peaks)
	}
}

func TestTopPeaksThreshold(t *testing.T) {
	s := Spectrum{0, 10, 0, 4, 0, 0.5, 0}
	peaks := TopPeaks(s, 0.3, 0)
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks, want 2 (0.5 below 30%% of max): %+v", len(peaks), peaks)
	}
}

func TestNoiseFloorRobustToPeaks(t *testing.T) {
	s := make(Spectrum, 100)
	for i := range s {
		s[i] = 1
	}
	s[10] = 1000
	s[20] = 2000
	if nf := NoiseFloor(s); math.Abs(nf-1) > 1e-12 {
		t.Errorf("noise floor = %g, want 1", nf)
	}
}

func TestQuadInterpCenteredTone(t *testing.T) {
	// Symmetric peak: offset must be 0.
	s := Spectrum{0, 1, 4, 1, 0}
	off, h := QuadInterp(s, 2)
	if off != 0 || h < 4 {
		t.Errorf("off=%g h=%g, want off=0 h>=4", off, h)
	}
	// Skewed peak leans toward the heavier neighbour.
	s2 := Spectrum{0, 3, 4, 1, 0}
	off2, _ := QuadInterp(s2, 2)
	if off2 >= 0 {
		t.Errorf("offset %g, want negative (toward bin 1)", off2)
	}
}

func TestWrapToHalf(t *testing.T) {
	cases := []struct{ in, half, want float64 }{
		{0, 0.5, 0},
		{0.6, 0.5, -0.4},
		{-0.6, 0.5, 0.4},
		{1.0, 0.5, 0},
		{127, 128, 127},
		{129, 128, -127},
	}
	for _, c := range cases {
		if got := WrapToHalf(c.in, c.half); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapToHalf(%g,%g) = %g, want %g", c.in, c.half, got, c.want)
		}
	}
}

func TestDBConversions(t *testing.T) {
	if DB(10) != 10 || DB(100) != 20 {
		t.Error("DB wrong")
	}
	if math.Abs(FromDB(3)-1.9952623) > 1e-6 {
		t.Error("FromDB wrong")
	}
	if math.Abs(AmplitudeFromDB(6)-1.9952623) > 1e-6 {
		t.Error("AmplitudeFromDB wrong")
	}
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) must be -Inf")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("stddev = %g", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input must yield 0")
	}
}
