package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// radix2Reference is the classic recursive radix-2 decimation-in-time FFT
// the package used before the radix-4 rewrite — kept here as an independent
// cross-check of the butterfly schedule (the naive DFT checks correctness,
// this checks the numerically-close path a radix bug would diverge from).
func radix2Reference(x []complex128) []complex128 {
	n := len(x)
	if n == 1 {
		return []complex128{x[0]}
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	fe := radix2Reference(even)
	fo := radix2Reference(odd)
	out := make([]complex128, n)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		tw := cmplx.Exp(complex(0, ang)) * fo[k]
		out[k] = fe[k] + tw
		out[k+n/2] = fe[k] - tw
	}
	return out
}

// TestFFTMatchesRadix2Reference cross-checks the mixed radix-4/radix-2
// schedule against an independent radix-2 implementation over randomized
// inputs at every size the decode path uses (both odd and even log2 n, so
// both the pure-radix-4 and the radix-2-first-stage schedules are hit).
func TestFFTMatchesRadix2Reference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		for trial := 0; trial < 4; trial++ {
			x := randSignal(r, n)
			want := radix2Reference(x)
			got := append([]complex128(nil), x...)
			MustPlan(n).Forward(got)
			if e := maxErr(got, want); e > 1e-9*float64(n) {
				t.Errorf("n=%d trial=%d: max error %g vs radix-2 reference", n, trial, e)
			}
		}
	}
}

// TestForwardWindowedMatchesZeroPadded verifies the fused
// gather-permutation path against the straightforward copy-then-transform
// it replaced, over randomized windows including degenerate and
// out-of-range [from, to).
func TestForwardWindowedMatchesZeroPadded(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, n := range []int{4, 16, 64, 256, 1024} {
		f := MustPlan(n)
		for trial := 0; trial < 8; trial++ {
			x := randSignal(r, n)
			from := r.Intn(n+8) - 4 // may be negative or past the end
			to := r.Intn(n+8) - 4
			// Reference: explicit zero-padded copy, then Forward.
			want := make([]complex128, n)
			cf, ct := from, to
			if cf < 0 {
				cf = 0
			}
			if ct > n {
				ct = n
			}
			for i := cf; i < ct; i++ {
				want[i] = x[i]
			}
			f.Forward(want)

			got := make([]complex128, n)
			for i := range got {
				got[i] = complex(42, -42) // stale garbage must be overwritten
			}
			f.ForwardWindowed(got, x, from, to)
			if e := maxErr(got, want); e > 1e-9*float64(n) {
				t.Errorf("n=%d window=[%d,%d): max error %g", n, from, to, e)
			}
		}
	}
}

// TestForwardRealMatchesNaiveDFT verifies the packed half-size real
// transform (including its conjugate-symmetric upper half) against the
// naive DFT of the same samples, over randomized inputs at every size.
func TestForwardRealMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		for trial := 0; trial < 4; trial++ {
			src := make([]float64, n)
			asComplex := make([]complex128, n)
			for i := range src {
				src[i] = r.NormFloat64()
				asComplex[i] = complex(src[i], 0)
			}
			want := naiveDFT(asComplex)
			got := make([]complex128, n)
			MustPlan(n).ForwardReal(got, src)
			if e := maxErr(got, want); e > 1e-9*float64(n) {
				t.Errorf("n=%d trial=%d: max error %g vs naive DFT", n, trial, e)
			}
		}
	}
}

// TestForwardRealConjugateSymmetry pins the structural property consumers
// rely on: X[n-k] = conj(X[k]) for real input.
func TestForwardRealConjugateSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	n := 512
	src := make([]float64, n)
	for i := range src {
		src[i] = r.NormFloat64()
	}
	got := make([]complex128, n)
	MustPlan(n).ForwardReal(got, src)
	for k := 1; k < n/2; k++ {
		if d := cmplx.Abs(got[n-k] - cmplx.Conj(got[k])); d > 1e-9 {
			t.Fatalf("bin %d: |X[n-k] - conj(X[k])| = %g", k, d)
		}
	}
	if imag(got[0]) != 0 || imag(got[n/2]) != 0 {
		t.Fatalf("DC/Nyquist bins not purely real: %v %v", got[0], got[n/2])
	}
}

// naiveDTFT evaluates the DTFT of x at a (possibly fractional) bin by
// direct summation.
func naiveDTFT(x []complex128, n int, bin float64) complex128 {
	var sum complex128
	for t := 0; t < len(x) && t < n; t++ {
		ang := -2 * math.Pi * bin * float64(t) / float64(n)
		sum += x[t] * cmplx.Exp(complex(0, ang))
	}
	return sum
}

// TestDFTBinFractionalMatchesNaiveDTFT verifies the Goertzel evaluation at
// randomized fractional bins (the DTFT-zoom path of peak refinement)
// against direct summation.
func TestDFTBinFractionalMatchesNaiveDTFT(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for _, n := range []int{16, 64, 256, 1024} {
		x := randSignal(r, n)
		for trial := 0; trial < 16; trial++ {
			bin := float64(n) * (2*r.Float64() - 0.5) // includes <0 and >n
			want := naiveDTFT(x, n, bin)
			got := DFTBin(x, n, bin)
			scale := cmplx.Abs(want) + 1
			if d := cmplx.Abs(got - want); d > 1e-8*float64(n)*scale {
				t.Errorf("n=%d bin=%.4f: |err| = %g", n, bin, d)
			}
		}
	}
}

// TestKernelsAllocFree pins the warm-path allocation budget of every FFT
// kernel entry point at zero: after the plans are cached, no transform
// call may allocate.
func TestKernelsAllocFree(t *testing.T) {
	n := 1024
	f := MustPlan(n)
	MustPlan(n / 2) // ForwardReal's half-size plan
	buf := make([]complex128, n)
	dst := make([]complex128, n)
	re := make([]float64, n)
	r := rand.New(rand.NewSource(16))
	for i := range buf {
		buf[i] = complex(r.NormFloat64(), r.NormFloat64())
		re[i] = r.NormFloat64()
	}
	checks := []struct {
		name string
		fn   func()
	}{
		{"Forward", func() { f.Forward(buf) }},
		{"ForwardInto", func() { f.ForwardInto(dst, buf) }},
		{"ForwardWindowed", func() { f.ForwardWindowed(dst, buf, 100, 900) }},
		{"ForwardReal", func() { f.ForwardReal(dst, re) }},
		{"Inverse", func() { f.Inverse(buf) }},
		{"DFTBin", func() { _ = DFTBin(buf, n, 41.25) }},
	}
	for _, c := range checks {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

// --- Kernel benchmarks (recorded by `make bench-matrix` into BENCH_dsp.json) --

func benchSignal(n int) []complex128 {
	r := rand.New(rand.NewSource(21))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func BenchmarkFFT4096(b *testing.B) {
	f := MustPlan(4096)
	buf := benchSignal(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Forward(buf)
	}
}

func BenchmarkForwardWindowed1024(b *testing.B) {
	f := MustPlan(1024)
	src := benchSignal(1024)
	dst := make([]complex128, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ForwardWindowed(dst, src, 128, 640)
	}
}

func BenchmarkForwardReal1024(b *testing.B) {
	f := MustPlan(1024)
	MustPlan(512)
	src := make([]float64, 1024)
	r := rand.New(rand.NewSource(22))
	for i := range src {
		src[i] = r.NormFloat64()
	}
	dst := make([]complex128, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ForwardReal(dst, src)
	}
}

func BenchmarkDFTBin1024(b *testing.B) {
	x := benchSignal(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DFTBin(x, 1024, 511.3125)
	}
}
