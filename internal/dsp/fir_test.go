package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestWindowsBasicShape(t *testing.T) {
	for name, fn := range map[string]func(int) []float64{
		"hamming": HammingWindow, "hann": HannWindow, "blackman": BlackmanWindow,
	} {
		w := fn(65)
		if len(w) != 65 {
			t.Fatalf("%s length", name)
		}
		// Symmetric, peaked in the middle, edges at or below the peak.
		for i := 0; i < 32; i++ {
			if math.Abs(w[i]-w[64-i]) > 1e-12 {
				t.Errorf("%s not symmetric at %d", name, i)
			}
		}
		if w[32] < w[0] || w[32] > 1.0001 {
			t.Errorf("%s peak wrong: mid=%g edge=%g", name, w[32], w[0])
		}
		if one := fn(1); len(one) != 1 || one[0] != 1 {
			t.Errorf("%s single-point window", name)
		}
	}
}

func TestLowpassFIRValidation(t *testing.T) {
	if _, err := LowpassFIR(4, 0.2); err == nil {
		t.Error("even taps accepted")
	}
	if _, err := LowpassFIR(1, 0.2); err == nil {
		t.Error("too few taps accepted")
	}
	if _, err := LowpassFIR(33, 0.6); err == nil {
		t.Error("cutoff >= 0.5 accepted")
	}
	if _, err := LowpassFIR(33, 0); err == nil {
		t.Error("zero cutoff accepted")
	}
}

// firResponse evaluates the filter's magnitude response at a normalised
// frequency.
func firResponse(h []float64, freq float64) float64 {
	var acc complex128
	for i, v := range h {
		ang := -2 * math.Pi * freq * float64(i)
		acc += complex(v, 0) * cmplx.Exp(complex(0, ang))
	}
	return cmplx.Abs(acc)
}

func TestLowpassFIRResponse(t *testing.T) {
	h, err := LowpassFIR(129, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g := firResponse(h, 0); math.Abs(g-1) > 1e-9 {
		t.Errorf("DC gain %g", g)
	}
	if g := firResponse(h, 0.05); g < 0.95 {
		t.Errorf("passband (0.05) gain %g", g)
	}
	if g := firResponse(h, 0.2); g > 0.01 {
		t.Errorf("stopband (0.2) gain %g", g)
	}
}

func TestDecimatorValidation(t *testing.T) {
	if _, err := NewDecimator(0, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	d, err := NewDecimator(1, 0)
	if err != nil || d.Factor() != 1 {
		t.Fatal("factor 1 rejected")
	}
	in := []complex128{1, 2, 3}
	out := d.Process(in)
	if len(out) != 3 || out[1] != 2 {
		t.Error("factor-1 passthrough broken")
	}
	// Passthrough must copy, not alias.
	out[0] = 99
	if in[0] == 99 {
		t.Error("factor-1 output aliases input")
	}
}

// TestDecimatorTonePreservation: an in-band tone survives decimation with
// the right frequency and ~unit gain; an out-of-band tone is crushed.
func TestDecimatorTonePreservation(t *testing.T) {
	const factor = 4
	d, err := NewDecimator(factor, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 4096
	makeTone := func(freq float64) []complex128 {
		x := make([]complex128, n)
		for i := range x {
			ang := 2 * math.Pi * freq * float64(i)
			x[i] = cmplx.Exp(complex(0, ang))
		}
		return x
	}
	// In-band: freq 0.05 (post-decimation 0.2 < 0.5).
	out := d.Process(makeTone(0.05))
	mid := out[len(out)/4 : 3*len(out)/4] // avoid edge transients
	if p := SignalPower(mid); math.Abs(p-1) > 0.05 {
		t.Errorf("in-band tone power %g after decimation", p)
	}
	// Frequency must scale by the factor: measure via FFT.
	fn := NextPow2(len(out))
	buf := make([]complex128, fn)
	copy(buf, out)
	MustPlan(fn).Forward(buf)
	mag := make(Spectrum, fn)
	for i, v := range buf {
		mag[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	_, at := mag.Max()
	wantBin := int(math.Round(0.05 * factor * float64(fn)))
	if at != wantBin && at != wantBin+1 && at != wantBin-1 {
		t.Errorf("tone at bin %d after decimation, want ≈%d", at, wantBin)
	}
	// Out-of-band: freq 0.3 (would alias) must be attenuated hard.
	out = d.Process(makeTone(0.3))
	mid = out[len(out)/4 : 3*len(out)/4]
	if p := SignalPower(mid); p > 1e-3 {
		t.Errorf("out-of-band tone leaked power %g", p)
	}
}

func TestDecimatorOutputLength(t *testing.T) {
	d, _ := NewDecimator(3, 31)
	for _, n := range []int{0, 1, 2, 3, 10, 100} {
		out := d.Process(make([]complex128, n))
		want := (n + 2) / 3
		if len(out) != want {
			t.Errorf("n=%d: %d outputs, want %d", n, len(out), want)
		}
	}
}
