package dsp

import (
	"math"
	"math/cmplx"
)

// Spectrum is a folded LoRa power spectrum: bins bins of non-negative power
// values, one per LoRa frequency bin (2^SF bins regardless of oversampling).
type Spectrum []float64

// FoldMagnitude folds an M-point FFT output X (M = bins*osr) into a
// bins-point LoRa power spectrum, writing into dst (allocated if nil).
//
// After de-chirping, a time-aligned LoRa symbol of value k produces two tone
// images: one at FFT bin k (the pre-wrap segment of the chirp, L₁ samples)
// and one at bin k+(osr-1)*bins (the post-wrap segment aliased by −B, L₂
// samples). Folding sums the *amplitudes* of the two images before
// squaring, so the folded bin carries (L₁+L₂)² — the same value a
// contiguous tone of the full duration would produce. (Summing powers
// instead would yield L₁²+L₂², penalising windows that straddle the wrap by
// up to 3 dB, which skews both spectral intersection and the spectral edge
// difference.) With osr == 1 both segments alias onto one bin coherently
// and the fold is the plain magnitude-squared spectrum.
//
// The fold is total (the nopanic invariant: FFT output lengths can derive
// from wire-supplied windows): a dst of the wrong length is reallocated, and
// an x shorter than bins*osr is treated as zero-extended — missing FFT bins
// contribute no power.
func FoldMagnitude(dst Spectrum, x []complex128, bins, osr int) Spectrum {
	if len(dst) != bins {
		dst = make(Spectrum, bins)
	}
	if osr == 1 {
		for k := 0; k < bins && k < len(x); k++ {
			re, im := real(x[k]), imag(x[k])
			dst[k] = re*re + im*im
		}
		for k := len(x); k < bins; k++ {
			dst[k] = 0
		}
		return dst
	}
	hi := (osr - 1) * bins
	for k := 0; k < bins; k++ {
		var a float64
		if k < len(x) {
			re0, im0 := real(x[k]), imag(x[k])
			a = math.Sqrt(re0*re0 + im0*im0)
		}
		if hi+k < len(x) {
			re1, im1 := real(x[hi+k]), imag(x[hi+k])
			a += math.Sqrt(re1*re1 + im1*im1)
		}
		dst[k] = a * a
	}
	return dst
}

// Energy returns the total power in the spectrum.
func (s Spectrum) Energy() float64 {
	var e float64
	for _, v := range s {
		e += v
	}
	return e
}

// Normalize scales the spectrum in place to unit total energy. A zero
// spectrum is left untouched. It returns the receiver for chaining.
func (s Spectrum) Normalize() Spectrum {
	e := s.Energy()
	if e <= 0 {
		return s
	}
	inv := 1 / e
	for i := range s {
		s[i] *= inv
	}
	return s
}

// Scale multiplies every bin by a.
func (s Spectrum) Scale(a float64) Spectrum {
	for i := range s {
		s[i] *= a
	}
	return s
}

// Max returns the maximum bin value and its index. For an empty spectrum it
// returns (0, -1).
func (s Spectrum) Max() (float64, int) {
	best, at := 0.0, -1
	for i, v := range s {
		if at == -1 || v > best {
			best, at = v, i
		}
	}
	return best, at
}

// Intersect computes the spectral intersection of a and b — the element-wise
// minimum (paper §5.2) — writing the result into dst (allocated if nil).
// The operation is commutative and associative (property P1) and preserves
// the better frequency resolution available for each constituent frequency
// (property P2). Inputs are normally unit-energy normalised first.
// Mismatched lengths intersect over the common prefix (a missing bin is
// treated as zero power, and min(x, 0) = 0 for non-negative spectra), so the
// operation is total and cannot crash a decode worker.
func Intersect(dst, a, b Spectrum) Spectrum {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if dst == nil {
		dst = make(Spectrum, n)
	}
	for i := 0; i < n && i < len(dst); i++ {
		if a[i] <= b[i] {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return dst
}

// IntersectInto folds b into acc with the element-wise minimum (acc ∩= b).
// Like Intersect it is total: bins beyond the common prefix are zeroed in
// acc, matching min against a missing (zero-power) bin.
func IntersectInto(acc, b Spectrum) {
	n := len(acc)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if b[i] < acc[i] {
			acc[i] = b[i]
		}
	}
	for i := n; i < len(acc); i++ {
		acc[i] = 0
	}
}

// DFTBin evaluates the DTFT of x at the (possibly fractional) FFT bin
// position of an n-point transform: X(bin) = Σ x[t]·exp(-2πi·bin·t/n).
// This equals zero-padded-FFT interpolation without computing the full
// zoomed transform; the paper's 16× zoom FFT (§5.7) is realised by probing
// DFTBin on a 1/16-bin grid around a peak.
func DFTBin(x []complex128, n int, bin float64) complex128 {
	// Use a phase recurrence: w = exp(-2πi·bin/n), acc multiplies by w each
	// sample. Renormalise occasionally to bound drift.
	s, c := math.Sincos(-2 * math.Pi * bin / float64(n))
	w := complex(c, s)
	acc := complex(1, 0)
	var sum complex128
	for t, v := range x {
		sum += v * acc
		acc *= w
		if t&1023 == 1023 {
			acc /= complex(cmplx.Abs(acc), 0)
		}
	}
	return sum
}

// RefinePeak locates the fractional peak position near an integer FFT bin by
// probing the DTFT on a fine grid of zoom sub-bins on each side (a local
// zoom FFT). It returns the refined fractional bin and the power there.
// x is the time-domain (already de-chirped) signal, n the FFT length the
// integer bin refers to.
func RefinePeak(x []complex128, n, bin, zoom int) (float64, float64) {
	return RefinePeakRange(x, n, bin, zoom, 1)
}

// RefinePeakRange is RefinePeak with an explicit search radius in bins
// (spread may be fractional): positions bin ± spread are probed at 1/zoom
// bin steps.
func RefinePeakRange(x []complex128, n, bin, zoom int, spread float64) (float64, float64) {
	if zoom < 1 {
		zoom = 1
	}
	steps := int(spread * float64(zoom))
	bestPos := float64(bin)
	bestPow := -1.0
	for s := -steps; s <= steps; s++ {
		pos := float64(bin) + float64(s)/float64(zoom)
		v := DFTBin(x, n, pos)
		p := real(v)*real(v) + imag(v)*imag(v)
		if p > bestPow {
			bestPow, bestPos = p, pos
		}
	}
	return bestPos, bestPow
}

// QuadInterp performs three-point quadratic (parabolic) interpolation of a
// peak at index i of spectrum s, returning the fractional offset in
// [-0.5, 0.5] and the interpolated peak height. Neighbours wrap modulo the
// spectrum length, matching the circular LoRa bin space.
func QuadInterp(s Spectrum, i int) (offset, height float64) {
	n := len(s)
	if n < 3 {
		return 0, s[i]
	}
	l := s[(i-1+n)%n]
	c := s[i]
	r := s[(i+1)%n]
	den := l - 2*c + r
	if den == 0 {
		return 0, c
	}
	d := 0.5 * (l - r) / den
	if d > 0.5 {
		d = 0.5
	} else if d < -0.5 {
		d = -0.5
	}
	return d, c - 0.25*(l-r)*d
}
