package dsp

import "math"

// Spectrum is a folded LoRa power spectrum: bins bins of non-negative power
// values, one per LoRa frequency bin (2^SF bins regardless of oversampling).
type Spectrum []float64

// FoldMagnitude folds an M-point FFT output X (M = bins*osr) into a
// bins-point LoRa power spectrum, writing into dst (allocated if nil).
//
// After de-chirping, a time-aligned LoRa symbol of value k produces two tone
// images: one at FFT bin k (the pre-wrap segment of the chirp, L₁ samples)
// and one at bin k+(osr-1)*bins (the post-wrap segment aliased by −B, L₂
// samples). Folding sums the *amplitudes* of the two images before
// squaring, so the folded bin carries (L₁+L₂)² — the same value a
// contiguous tone of the full duration would produce. (Summing powers
// instead would yield L₁²+L₂², penalising windows that straddle the wrap by
// up to 3 dB, which skews both spectral intersection and the spectral edge
// difference.) With osr == 1 both segments alias onto one bin coherently
// and the fold is the plain magnitude-squared spectrum.
//
// The fold is total (the nopanic invariant: FFT output lengths can derive
// from wire-supplied windows): a dst of the wrong length is reallocated, and
// an x shorter than bins*osr is treated as zero-extended — missing FFT bins
// contribute no power.
func FoldMagnitude(dst Spectrum, x []complex128, bins, osr int) Spectrum {
	if len(dst) != bins {
		dst = make(Spectrum, bins) //cic:alloc-ok: warm-up reallocation for a mismatched dst — steady-state callers pass the right-sized scratch and never allocate
	}
	if osr == 1 {
		for k := 0; k < bins && k < len(x); k++ {
			re, im := real(x[k]), imag(x[k])
			dst[k] = re*re + im*im
		}
		for k := len(x); k < bins; k++ {
			dst[k] = 0
		}
		return dst
	}
	hi := (osr - 1) * bins
	for k := 0; k < bins; k++ {
		var a float64
		if k < len(x) {
			re0, im0 := real(x[k]), imag(x[k])
			a = math.Sqrt(re0*re0 + im0*im0)
		}
		if hi+k < len(x) {
			re1, im1 := real(x[hi+k]), imag(x[hi+k])
			a += math.Sqrt(re1*re1 + im1*im1)
		}
		dst[k] = a * a
	}
	return dst
}

// Energy returns the total power in the spectrum.
func (s Spectrum) Energy() float64 {
	var e float64
	for _, v := range s {
		e += v
	}
	return e
}

// Normalize scales the spectrum in place to unit total energy. A zero
// spectrum is left untouched. It returns the receiver for chaining.
func (s Spectrum) Normalize() Spectrum {
	e := s.Energy()
	if e <= 0 {
		return s
	}
	inv := 1 / e
	for i := range s {
		s[i] *= inv
	}
	return s
}

// Scale multiplies every bin by a.
func (s Spectrum) Scale(a float64) Spectrum {
	for i := range s {
		s[i] *= a
	}
	return s
}

// Max returns the maximum bin value and its index. For an empty spectrum it
// returns (0, -1).
func (s Spectrum) Max() (float64, int) {
	best, at := 0.0, -1
	for i, v := range s {
		if at == -1 || v > best {
			best, at = v, i
		}
	}
	return best, at
}

// Intersect computes the spectral intersection of a and b — the element-wise
// minimum (paper §5.2) — writing the result into dst (allocated if nil).
// The operation is commutative and associative (property P1) and preserves
// the better frequency resolution available for each constituent frequency
// (property P2). Inputs are normally unit-energy normalised first.
// Mismatched lengths intersect over the common prefix (a missing bin is
// treated as zero power, and min(x, 0) = 0 for non-negative spectra), so the
// operation is total and cannot crash a decode worker.
func Intersect(dst, a, b Spectrum) Spectrum {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if dst == nil {
		dst = make(Spectrum, n)
	}
	for i := 0; i < n && i < len(dst); i++ {
		if a[i] <= b[i] {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return dst
}

// IntersectInto folds b into acc with the element-wise minimum (acc ∩= b).
// Like Intersect it is total: bins beyond the common prefix are zeroed in
// acc, matching min against a missing (zero-power) bin.
func IntersectInto(acc, b Spectrum) {
	n := len(acc)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if b[i] < acc[i] {
			acc[i] = b[i]
		}
	}
	for i := n; i < len(acc); i++ {
		acc[i] = 0
	}
}

// DFTBin evaluates the DTFT of x at the (possibly fractional) FFT bin
// position of an n-point transform: X(bin) = Σ x[t]·exp(-2πi·bin·t/n).
// This equals zero-padded-FFT interpolation without computing the full
// zoomed transform; the paper's 16× zoom FFT (§5.7) is realised by probing
// DFTBin on a 1/16-bin grid around a peak.
//
// The sum is evaluated with the Goertzel second-order recurrence run
// backward over x: with c = 2·cos θ (θ = -2π·bin/n) the state update
// v[t] = x[t] + c·v[t+1] - v[t+2] costs two real multiplies per complex
// sample — a quarter of the naive rotating-phasor product — and the probe
// value is recovered exactly as S = v[0] - e^{-iθ}·v[1]. The recurrence is
// branch-free and needs no renormalisation.
//
// The recurrence is a serial dependency chain (each v[t] needs v[t+1]),
// which makes the plain form latency-bound, and DFTBin dominates the
// decoder's DTFT-zoom stage. For the common stride-friendly lengths the
// sum is therefore evaluated by polyphase decomposition: splitting t into
// four phases t = 4u+r gives S = Σ_r e^{-iθr}·S_r with each
// S_r = Σ_u x[4u+r]·e^{-i(4θ)u} an independent Goertzel at angle 4θ over a
// quarter of the samples. The four recurrences interleave in one loop, so
// the out-of-order core overlaps their chains (~4× less latency-bound)
// while the per-sample operation count is unchanged.
//
//cic:hotpath
func DFTBin(x []complex128, n int, bin float64) complex128 {
	theta := -2 * math.Pi * bin / float64(n)
	m := len(x)
	if m < 8 || m%4 != 0 {
		return dftBinGoertzel(x, theta)
	}
	sin4, cos4 := math.Sincos(4 * theta)
	k := 2 * cos4
	var a1r, a1i, a2r, a2i float64 // phase 0 state: v[u+1], v[u+2]
	var b1r, b1i, b2r, b2i float64 // phase 1
	var c1r, c1i, c2r, c2i float64 // phase 2
	var d1r, d1i, d2r, d2i float64 // phase 3
	for base := m - 4; base >= 0; base -= 4 {
		v0, v1, v2, v3 := x[base], x[base+1], x[base+2], x[base+3]
		ar := real(v0) + k*a1r - a2r
		ai := imag(v0) + k*a1i - a2i
		br := real(v1) + k*b1r - b2r
		bi := imag(v1) + k*b1i - b2i
		cr := real(v2) + k*c1r - c2r
		ci := imag(v2) + k*c1i - c2i
		dr := real(v3) + k*d1r - d2r
		di := imag(v3) + k*d1i - d2i
		a2r, a2i, a1r, a1i = a1r, a1i, ar, ai
		b2r, b2i, b1r, b1i = b1r, b1i, br, bi
		c2r, c2i, c1r, c1i = c1r, c1i, cr, ci
		d2r, d2i, d1r, d1i = d1r, d1i, dr, di
	}
	// Per phase: S_r = v[0] - conj(e^{i4θ})·v[1], then S = Σ_r e^{iθr}·S_r
	// (θ already carries the minus sign of the DTFT exponent).
	e4 := complex(cos4, -sin4)
	s0 := complex(a1r, a1i) - e4*complex(a2r, a2i)
	s1 := complex(b1r, b1i) - e4*complex(b2r, b2i)
	s2 := complex(c1r, c1i) - e4*complex(c2r, c2i)
	s3 := complex(d1r, d1i) - e4*complex(d2r, d2i)
	sn, cs := math.Sincos(theta)
	w := complex(cs, sn) // e^{-iθ}
	w2 := w * w
	return s0 + w*s1 + w2*s2 + w2*w*s3
}

// dftBinGoertzel is the plain single-chain Goertzel evaluation of
// Σ x[t]·e^{iθt}, used for lengths the interleaved polyphase path cannot
// stride over.
func dftBinGoertzel(x []complex128, theta float64) complex128 {
	sin, cos := math.Sincos(theta)
	c := 2 * cos
	var s1r, s1i, s2r, s2i float64 // v[t+1], v[t+2]
	for t := len(x) - 1; t >= 0; t-- {
		v := x[t]
		vr := real(v) + c*s1r - s2r
		vi := imag(v) + c*s1i - s2i
		s2r, s2i = s1r, s1i
		s1r, s1i = vr, vi
	}
	// S = v[0] - conj(z)·v[1] with z = e^{-iθ} = (cos, sin).
	return complex(s1r-(cos*s2r+sin*s2i), s1i-(cos*s2i-sin*s2r))
}

// RefinePeak locates the fractional peak position near an integer FFT bin by
// probing the DTFT on a fine grid of zoom sub-bins on each side (a local
// zoom FFT). It returns the refined fractional bin and the power there.
// x is the time-domain (already de-chirped) signal, n the FFT length the
// integer bin refers to.
func RefinePeak(x []complex128, n, bin, zoom int) (float64, float64) {
	return RefinePeakRange(x, n, bin, zoom, 1)
}

// RefinePeakRange is RefinePeak with an explicit search radius in bins
// (spread may be fractional): positions bin ± spread are probed at 1/zoom
// bin steps.
func RefinePeakRange(x []complex128, n, bin, zoom int, spread float64) (float64, float64) {
	if zoom < 1 {
		zoom = 1
	}
	steps := int(spread * float64(zoom))
	return SearchFineGrid(x, n, float64(bin), steps, 1/float64(zoom))
}

// SearchFineGrid finds the maximum-power DTFT probe over the fine grid
// base + s·step for s in [-steps, steps], returning the grid position and
// the power there. The de-chirped tone's main lobe spans several grid
// points at the zooms used by the decoder, so the search is two-stage:
// a coarse pass visits every fourth grid point (plus both endpoints) to
// bracket the lobe, then a fine pass sweeps the remaining grid points
// within one coarse stride of the bracket winner. The probed set is a
// subset of the full grid, so the result is always one of the exhaustive
// sweep's candidates at ~40% of its DFTBin probes.
//
//cic:hotpath
func SearchFineGrid(x []complex128, n int, base float64, steps int, step float64) (float64, float64) {
	probe := func(s int) float64 {
		v := DFTBin(x, n, base+float64(s)*step)
		return real(v)*real(v) + imag(v)*imag(v)
	}
	const stride = 4
	if steps <= 2*stride {
		bestS, bestPow := -steps, -1.0
		for s := -steps; s <= steps; s++ {
			if p := probe(s); p > bestPow {
				bestPow, bestS = p, s
			}
		}
		return base + float64(bestS)*step, bestPow
	}
	bestS, bestPow := -steps, -1.0
	for s := -steps; s <= steps; s += stride {
		if p := probe(s); p > bestPow {
			bestPow, bestS = p, s
		}
	}
	if bestS+stride > steps { // keep the +steps endpoint in the coarse pass
		if p := probe(steps); p > bestPow {
			bestPow, bestS = p, steps
		}
	}
	lo, hi := bestS-stride+1, bestS+stride-1
	if lo < -steps {
		lo = -steps
	}
	if hi > steps {
		hi = steps
	}
	for s := lo; s <= hi; s++ {
		if (s+steps)%stride == 0 { // already probed in the coarse pass
			continue
		}
		if p := probe(s); p > bestPow {
			bestPow, bestS = p, s
		}
	}
	return base + float64(bestS)*step, bestPow
}

// QuadInterp performs three-point quadratic (parabolic) interpolation of a
// peak at index i of spectrum s, returning the fractional offset in
// [-0.5, 0.5] and the interpolated peak height. Neighbours wrap modulo the
// spectrum length, matching the circular LoRa bin space.
func QuadInterp(s Spectrum, i int) (offset, height float64) {
	n := len(s)
	if n < 3 {
		return 0, s[i]
	}
	l := s[(i-1+n)%n]
	c := s[i]
	r := s[(i+1)%n]
	den := l - 2*c + r
	if den == 0 {
		return 0, c
	}
	d := 0.5 * (l - r) / den
	if d > 0.5 {
		d = 0.5
	} else if d < -0.5 {
		d = -0.5
	}
	return d, c - 0.25*(l-r)*d
}
