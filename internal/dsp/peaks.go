package dsp

import (
	"slices"
	"sort"
)

// Peak is a local maximum of a spectrum.
type Peak struct {
	Bin   int     // integer bin index
	Power float64 // bin power
}

// AppendPeaks appends the local maxima of s whose power is at least
// minPower to dst, sorted by descending power and truncated to maxPeaks
// (maxPeaks <= 0 means unlimited). The spectrum is treated as circular,
// matching the LoRa bin space. A plateau contributes a single peak at its
// first bin. Hot-path callers pass a retained dst to stay allocation-free;
// FindPeaks is the allocating convenience wrapper.
//
//cic:hotpath
func AppendPeaks(dst []Peak, s Spectrum, minPower float64, maxPeaks int) []Peak {
	n := len(s)
	if n == 0 {
		return dst
	}
	if n == 1 {
		if s[0] >= minPower {
			return append(dst, Peak{Bin: 0, Power: s[0]})
		}
		return dst
	}
	base := len(dst)
	for i := 0; i < n; i++ {
		v := s[i]
		if v < minPower {
			continue
		}
		prev := s[(i-1+n)%n]
		next := s[(i+1)%n]
		if v > prev && v >= next {
			dst = append(dst, Peak{Bin: i, Power: v})
		}
	}
	peaks := dst[base:]
	slices.SortFunc(peaks, func(a, b Peak) int {
		switch {
		case a.Power > b.Power:
			return -1
		case a.Power < b.Power:
			return 1
		default:
			return a.Bin - b.Bin
		}
	})
	if maxPeaks > 0 && len(peaks) > maxPeaks {
		dst = dst[:base+maxPeaks]
	}
	return dst
}

// FindPeaks returns local maxima of s whose power is at least minPower,
// sorted by descending power and truncated to maxPeaks (maxPeaks <= 0 means
// unlimited). See AppendPeaks for the allocation-free form.
func FindPeaks(s Spectrum, minPower float64, maxPeaks int) []Peak {
	return AppendPeaks(nil, s, minPower, maxPeaks)
}

// AppendTopPeaks appends up to maxPeaks local maxima whose power is at
// least frac times the global maximum (frac in [0,1]) to dst.
//
//cic:hotpath
func AppendTopPeaks(dst []Peak, s Spectrum, frac float64, maxPeaks int) []Peak {
	maxV, at := s.Max()
	if at < 0 || maxV <= 0 {
		return dst
	}
	return AppendPeaks(dst, s, maxV*frac, maxPeaks)
}

// TopPeaks returns up to maxPeaks local maxima whose power is at least
// frac times the global maximum. frac in [0,1]. See AppendTopPeaks for the
// allocation-free form.
func TopPeaks(s Spectrum, frac float64, maxPeaks int) []Peak {
	return AppendTopPeaks(nil, s, frac, maxPeaks)
}

// NoiseFloor estimates the noise floor of a spectrum as the median bin
// power. The median is robust to a handful of strong signal peaks.
func NoiseFloor(s Spectrum) float64 {
	return NoiseFloorInto(nil, s)
}

// NoiseFloorInto is NoiseFloor with caller-provided scratch: when
// len(tmp) >= len(s) the median is computed in tmp and the call does not
// allocate; otherwise scratch is allocated as in NoiseFloor. The caller's
// tmp contents are overwritten.
//
//cic:hotpath
func NoiseFloorInto(tmp []float64, s Spectrum) float64 {
	if len(s) == 0 {
		return 0
	}
	if len(tmp) < len(s) {
		tmp = make([]float64, len(s)) //cic:alloc-ok — cold fallback for short scratch
	}
	tmp = tmp[:len(s)]
	copy(tmp, s)
	sort.Float64s(tmp)
	m := len(tmp) / 2
	if len(tmp)%2 == 1 {
		return tmp[m]
	}
	return 0.5 * (tmp[m-1] + tmp[m])
}
