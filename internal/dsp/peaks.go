package dsp

import "sort"

// Peak is a local maximum of a spectrum.
type Peak struct {
	Bin   int     // integer bin index
	Power float64 // bin power
}

// FindPeaks returns local maxima of s whose power is at least minPower,
// sorted by descending power and truncated to maxPeaks (maxPeaks <= 0 means
// unlimited). The spectrum is treated as circular, matching the LoRa bin
// space. A plateau contributes a single peak at its first bin.
func FindPeaks(s Spectrum, minPower float64, maxPeaks int) []Peak {
	n := len(s)
	if n == 0 {
		return nil
	}
	if n == 1 {
		if s[0] >= minPower {
			return []Peak{{Bin: 0, Power: s[0]}}
		}
		return nil
	}
	var peaks []Peak
	for i := 0; i < n; i++ {
		v := s[i]
		if v < minPower {
			continue
		}
		prev := s[(i-1+n)%n]
		next := s[(i+1)%n]
		if v > prev && v >= next {
			peaks = append(peaks, Peak{Bin: i, Power: v})
		}
	}
	sort.Slice(peaks, func(a, b int) bool { return peaks[a].Power > peaks[b].Power })
	if maxPeaks > 0 && len(peaks) > maxPeaks {
		peaks = peaks[:maxPeaks]
	}
	return peaks
}

// TopPeaks returns up to maxPeaks local maxima whose power is at least
// frac times the global maximum. frac in [0,1].
func TopPeaks(s Spectrum, frac float64, maxPeaks int) []Peak {
	maxV, at := s.Max()
	if at < 0 || maxV <= 0 {
		return nil
	}
	return FindPeaks(s, maxV*frac, maxPeaks)
}

// NoiseFloor estimates the noise floor of a spectrum as the median bin
// power. The median is robust to a handful of strong signal peaks.
func NoiseFloor(s Spectrum) float64 {
	if len(s) == 0 {
		return 0
	}
	tmp := make([]float64, len(s))
	copy(tmp, s)
	sort.Float64s(tmp)
	m := len(tmp) / 2
	if len(tmp)%2 == 1 {
		return tmp[m]
	}
	return 0.5 * (tmp[m-1] + tmp[m])
}
