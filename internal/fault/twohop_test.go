package fault_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"cic/internal/fault"
)

// xorMask mirrors the injector's corrupt-mask rule: 0 means 0xFF.
func xorMask(m byte) byte {
	if m == 0 {
		return 0xFF
	}
	return m
}

// readAllChunked drains r with a fixed chunk size, bounding iterations
// so a broken reader cannot hang the test.
func readAllChunked(t *testing.T, r io.Reader, chunk int) []byte {
	t.Helper()
	var out []byte
	buf := make([]byte, chunk)
	for i := 0; i < 1<<16; i++ {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	t.Fatal("reader never reached EOF")
	return nil
}

// TestTwoHopOffsetsPerLeg pins the per-leg offset contract of a proxied
// fault plan: in a router deployment each hop wraps its own transport,
// so every schedule counts bytes on its own leg. Fragmentation injected
// on the first hop (partial reads) must not shift where the second
// hop's corruption lands, and a corrupt on each leg at the same offset
// composes (both XORs hit the same byte).
func TestTwoHopOffsetsPerLeg(t *testing.T) {
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i)
	}
	leg1 := fault.NewReader(bytes.NewReader(data), []fault.Event{
		{Kind: fault.KindCorrupt, Offset: 3, Mask: 0x01},
		{Kind: fault.KindPartial, Offset: 7},
		{Kind: fault.KindPartial, Offset: 11},
	})
	leg2 := fault.NewReader(leg1, []fault.Event{
		{Kind: fault.KindCorrupt, Offset: 3, Mask: 0x02},
		{Kind: fault.KindCorrupt, Offset: 10, Mask: 0x40},
	})

	got := readAllChunked(t, leg2, 8)

	want := append([]byte(nil), data...)
	want[3] ^= 0x01 // leg 1
	want[3] ^= 0x02 // leg 2, same byte — offsets count per leg, not cumulative
	want[10] ^= 0x40
	if !bytes.Equal(got, want) {
		t.Fatalf("two-hop stream mismatch:\n got %x\nwant %x", got, want)
	}
}

// TestTwoHopPartialDoesNotShiftDownstream sweeps the leg-1 split point
// across the stream and checks leg 2's corrupt byte never moves.
func TestTwoHopPartialDoesNotShiftDownstream(t *testing.T) {
	data := make([]byte, 24)
	for i := range data {
		data[i] = byte(0xA0 + i)
	}
	for split := int64(0); split < 24; split++ {
		leg1 := fault.NewReader(bytes.NewReader(data), []fault.Event{
			{Kind: fault.KindPartial, Offset: split},
		})
		leg2 := fault.NewReader(leg1, []fault.Event{
			{Kind: fault.KindCorrupt, Offset: 13, Mask: 0x0F},
		})
		got := readAllChunked(t, leg2, 5)
		want := append([]byte(nil), data...)
		want[13] ^= 0x0F
		if !bytes.Equal(got, want) {
			t.Fatalf("split@%d: corrupt byte shifted:\n got %x\nwant %x", split, got, want)
		}
	}
}

func TestParseMultiSpec(t *testing.T) {
	ms, err := fault.ParseMultiSpec("leg=client;drop@65536|leg=upstream;seed=7;corrupt@1024:0x20")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(ms))
	}
	up := ms.ForLeg("upstream")
	if up == nil || up.Seed != 7 || len(up.Read) != 1 {
		t.Fatalf("upstream spec = %+v", up)
	}
	if got := up.String(); !strings.Contains(got, "leg=upstream") {
		t.Errorf("String() = %q, want it to name the leg", got)
	}
	// "" and "client" name the same default leg.
	if cl := ms.ForLeg(""); cl == nil || cl != ms.ForLeg("client") {
		t.Errorf("ForLeg(\"\") = %v, ForLeg(client) = %v; want the same spec", cl, ms.ForLeg("client"))
	}
	if cl := ms.ForLeg("client"); len(cl.Read) != 1 || cl.Read[0].Kind != fault.KindDrop {
		t.Errorf("client spec = %+v, want the drop@65536 plan", cl)
	}
	if missing := ms.ForLeg("nonexistent"); missing != nil {
		t.Errorf("ForLeg(nonexistent) = %v, want nil", missing)
	}

	// A bare spec targets the client leg, so a second client spec is a
	// duplicate.
	if _, err := fault.ParseMultiSpec("drop@1|leg=client;drop@2"); err == nil {
		t.Error("duplicate client leg accepted")
	}
	if _, err := fault.ParseMultiSpec("leg=;drop@1"); err == nil {
		t.Error("empty leg name accepted")
	}
	if sp := (*fault.Spec)(nil); sp.LegName() != "client" {
		t.Errorf("nil spec LegName = %q, want client", sp.LegName())
	}
}

// FuzzFaultTwoHop drives random corrupt+partial plans through a
// two-reader chain and checks the result equals applying leg 1's
// corruption to the data, then leg 2's corruption to that — i.e. each
// leg's offsets count that leg's own bytes no matter how the other leg
// fragments its reads.
func FuzzFaultTwoHop(f *testing.F) {
	f.Add([]byte("hello two-hop fault world"), uint16(3), uint16(3), byte(0x01), byte(0x02), uint16(7), uint16(5))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint16(0), uint16(7), byte(0), byte(0xFF), uint16(4), uint16(1))
	f.Add([]byte("x"), uint16(0), uint16(0), byte(0x80), byte(0x80), uint16(0), uint16(3))
	f.Add([]byte{}, uint16(9), uint16(9), byte(1), byte(1), uint16(9), uint16(2))
	f.Fuzz(func(t *testing.T, data []byte, off1, off2 uint16, mask1, mask2 byte, split uint16, chunk uint16) {
		leg1 := fault.NewReader(bytes.NewReader(data), []fault.Event{
			{Kind: fault.KindCorrupt, Offset: int64(off1), Mask: mask1},
			{Kind: fault.KindPartial, Offset: int64(split)},
		})
		leg2 := fault.NewReader(leg1, []fault.Event{
			{Kind: fault.KindCorrupt, Offset: int64(off2), Mask: mask2},
			{Kind: fault.KindPartial, Offset: int64(split) / 2},
		})
		got := readAllChunked(t, leg2, int(chunk%64)+1)

		want := append([]byte{}, data...)
		if int(off1) < len(want) {
			want[off1] ^= xorMask(mask1)
		}
		if int(off2) < len(want) {
			want[off2] ^= xorMask(mask2)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("off1=%d off2=%d split=%d chunk=%d:\n got %x\nwant %x",
				off1, off2, split, chunk%64+1, got, want)
		}
	})
}
