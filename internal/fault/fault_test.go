package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestReaderCorruptAndPartial: a corrupt event flips exactly the
// scheduled byte; a partial event splits the read at its offset; the
// rest of the stream is untouched.
func TestReaderCorruptAndPartial(t *testing.T) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	fr := NewReader(bytes.NewReader(data), []Event{
		{Kind: KindPartial, Offset: 10},
		{Kind: KindCorrupt, Offset: 20, Mask: 0x01},
	})
	buf := make([]byte, 16)
	n, err := fr.Read(buf)
	if err != nil || n != 10 {
		t.Fatalf("first read: n=%d err=%v, want split at 10", n, err)
	}
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	got = append(buf[:n], got...)
	if len(got) != len(data) {
		t.Fatalf("read %d bytes, want %d", len(got), len(data))
	}
	for i := range data {
		want := data[i]
		if i == 20 {
			want ^= 0x01
		}
		if got[i] != want {
			t.Fatalf("byte %d: got %#x, want %#x", i, got[i], want)
		}
	}
}

// TestReaderDrop: a drop event surfaces ErrInjected exactly at its
// offset, with every prior byte delivered intact.
func TestReaderDrop(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 100)
	fr := NewReader(bytes.NewReader(data), []Event{{Kind: KindDrop, Offset: 33}})
	got, err := io.ReadAll(fr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if len(got) != 33 {
		t.Fatalf("delivered %d bytes before drop, want 33", len(got))
	}
}

// TestConnWriteFaults: write-direction corruption and drops fire at
// exact offsets; the peer sees the corrupted byte and then a real
// connection close; the writer's own buffer is never mutated.
func TestConnWriteFaults(t *testing.T) {
	client, srv := net.Pipe()
	defer srv.Close()
	var fired []Event
	fc := WrapConn(client, Schedule{Write: []Event{
		{Kind: KindCorrupt, Offset: 3, Mask: 0x80},
		{Kind: KindDrop, Offset: 8},
	}}, func(e Event) { fired = append(fired, e) })

	recv := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(srv)
		recv <- b
	}()
	payload := []byte("0123456789")
	orig := append([]byte(nil), payload...)
	n, err := fc.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Write err = %v, want ErrInjected", err)
	}
	if n != 8 {
		t.Fatalf("wrote %d bytes before drop, want 8", n)
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("caller's buffer was mutated by write-side corruption")
	}
	got := <-recv
	want := []byte("012\xb345678")[:8]
	if !bytes.Equal(got, want) {
		t.Fatalf("peer received %q, want %q", got, want)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
}

// TestConnStall: a stall delays the covering read by at least Delay.
func TestConnStall(t *testing.T) {
	client, srv := net.Pipe()
	defer client.Close()
	defer srv.Close()
	fc := WrapConn(srv, Schedule{Read: []Event{{Kind: KindStall, Offset: 0, Delay: 30 * time.Millisecond}}}, nil)
	go client.Write([]byte("x"))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := fc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("read returned after %v, want >= 30ms stall", d)
	}
}

// TestParseSpec: the spec DSL round-trips into the expected schedule,
// every/jitter behave deterministically, and bad entries are rejected.
func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("seed=7;every=2;drop@4096;stall@1024w:50ms;corrupt@2048:0x20;partial@100")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 7 || sp.Every != 2 {
		t.Fatalf("params: %+v", sp)
	}
	if len(sp.Read) != 3 || len(sp.Write) != 1 {
		t.Fatalf("events: read=%d write=%d", len(sp.Read), len(sp.Write))
	}
	if sp.Write[0].Kind != KindStall || sp.Write[0].Delay != 50*time.Millisecond {
		t.Fatalf("write event: %+v", sp.Write[0])
	}
	if sp.Read[1].Kind != KindCorrupt || sp.Read[1].Mask != 0x20 {
		t.Fatalf("corrupt event: %+v", sp.Read[1])
	}
	// every=2: connections 0, 2 get the schedule; 1 does not.
	if sp.Schedule(1).Read != nil {
		t.Fatal("connection 1 should be skipped by every=2")
	}
	if got := sp.Schedule(2); len(got.Read) != 3 {
		t.Fatalf("connection 2 schedule: %+v", got)
	}

	// Jitter is deterministic per (seed, conn).
	sp2, err := ParseSpec("seed=9;jitter=100;drop@1000")
	if err != nil {
		t.Fatal(err)
	}
	a, b := sp2.Schedule(0), sp2.Schedule(0)
	if a.Read[0].Offset != b.Read[0].Offset {
		t.Fatal("jitter not deterministic")
	}
	if off := a.Read[0].Offset; off < 1000 || off > 1100 {
		t.Fatalf("jittered offset %d outside [1000,1100]", off)
	}

	for _, bad := range []string{"", "boom@10", "drop@-1", "stall@5", "every=0", "seed=x", "drop@1:2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
