package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Spec is a parsed -fault-spec: a per-connection fault plan generator.
// The same spec with the same seed produces the same schedule for the
// same connection index, so a faulted daemon run is reproducible.
type Spec struct {
	// Seed drives the offset jitter (0 = a fixed default seed).
	Seed int64
	// Every applies the schedule to every Nth wrapped connection,
	// starting with the first (1 = all connections).
	Every int
	// Jitter perturbs every event offset by a deterministic amount in
	// [0, Jitter] derived from (Seed, connection index).
	Jitter int64
	// Read and Write are the template event lists (offsets pre-jitter).
	Read  []Event
	Write []Event
	// Leg names the connection leg this spec targets ("" = the default
	// "client" leg). A proxy chain has one injector per hop, and every
	// offset counts bytes on its own leg, not end-to-end: cic-routerd
	// applies "client" specs to accepted connections and "upstream"
	// specs to its backend dials; cic-gatewayd only has the client leg.
	Leg string
}

// LegName canonicalises the spec's target leg ("" means "client").
func (sp *Spec) LegName() string {
	if sp == nil || sp.Leg == "" {
		return "client"
	}
	return sp.Leg
}

// MultiSpec is a per-leg fault plan set, one Spec per connection leg.
type MultiSpec []*Spec

// ParseMultiSpec parses a '|'-separated list of per-leg specs, e.g.
//
//	leg=client;drop@65536|leg=upstream;seed=7;corrupt@1024:0x20
//
// Each part uses the ParseSpec grammar; duplicate legs are rejected.
func ParseMultiSpec(s string) (MultiSpec, error) {
	parts := strings.Split(s, "|")
	ms := make(MultiSpec, 0, len(parts))
	seen := map[string]bool{}
	for _, p := range parts {
		sp, err := ParseSpec(p)
		if err != nil {
			return nil, err
		}
		if seen[sp.LegName()] {
			return nil, fmt.Errorf("fault: duplicate spec for leg %q", sp.LegName())
		}
		seen[sp.LegName()] = true
		ms = append(ms, sp)
	}
	return ms, nil
}

// ForLeg returns the spec targeting the named leg (nil when the leg has
// no plan). "" and "client" name the same default leg.
func (ms MultiSpec) ForLeg(name string) *Spec {
	if name == "" {
		name = "client"
	}
	for _, sp := range ms {
		if sp.LegName() == name {
			return sp
		}
	}
	return nil
}

// ParseSpec parses a fault-spec string: semicolon- or comma-separated
// entries, each either a parameter or an event.
//
//	seed=42            jitter RNG seed
//	every=3            fault every 3rd connection (default 1 = all)
//	jitter=512         jitter event offsets by up to 512 bytes
//	drop@4096          drop the connection at read-offset 4096
//	drop@4096w         …at write-offset 4096
//	stall@1024:50ms    sleep 50ms before read-offset 1024
//	corrupt@2048:0x20  XOR the byte at read-offset 2048 with 0x20
//	partial@100        split the read covering offset 100
//
// The direction suffix (r/w) defaults to r: on a server-side wrap the
// read direction is the ingest stream, which is where faults matter.
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{Every: 1}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == ',' })
	if len(fields) == 0 {
		return nil, fmt.Errorf("fault: empty spec")
	}
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if k, v, ok := strings.Cut(f, "="); ok && !strings.Contains(k, "@") {
			if k == "leg" {
				if v == "" {
					return nil, fmt.Errorf("fault: empty leg name in %q", f)
				}
				spec.Leg = v
				continue
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: spec %q: %w", f, err)
			}
			switch k {
			case "seed":
				spec.Seed = n
			case "every":
				if n < 1 {
					return nil, fmt.Errorf("fault: every=%d, want >= 1", n)
				}
				spec.Every = int(n)
			case "jitter":
				if n < 0 {
					return nil, fmt.Errorf("fault: jitter=%d, want >= 0", n)
				}
				spec.Jitter = n
			default:
				return nil, fmt.Errorf("fault: unknown spec parameter %q", k)
			}
			continue
		}
		ev, write, err := parseEvent(f)
		if err != nil {
			return nil, err
		}
		if write {
			spec.Write = append(spec.Write, ev)
		} else {
			spec.Read = append(spec.Read, ev)
		}
	}
	return spec, nil
}

// parseEvent parses one `kind@offset[dir][:arg]` entry.
func parseEvent(f string) (Event, bool, error) {
	name, rest, ok := strings.Cut(f, "@")
	if !ok {
		return Event{}, false, fmt.Errorf("fault: spec entry %q: want kind@offset", f)
	}
	var ev Event
	switch name {
	case "drop":
		ev.Kind = KindDrop
	case "stall":
		ev.Kind = KindStall
	case "corrupt":
		ev.Kind = KindCorrupt
	case "partial":
		ev.Kind = KindPartial
	default:
		return Event{}, false, fmt.Errorf("fault: unknown event kind %q", name)
	}
	offPart, arg, _ := strings.Cut(rest, ":")
	write := false
	if strings.HasSuffix(offPart, "w") {
		write = true
		offPart = strings.TrimSuffix(offPart, "w")
	} else {
		offPart = strings.TrimSuffix(offPart, "r")
	}
	off, err := strconv.ParseInt(offPart, 10, 64)
	if err != nil || off < 0 {
		return Event{}, false, fmt.Errorf("fault: bad offset in %q", f)
	}
	ev.Offset = off
	switch ev.Kind {
	case KindStall:
		if arg == "" {
			return Event{}, false, fmt.Errorf("fault: stall %q needs a duration (stall@OFF:50ms)", f)
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return Event{}, false, fmt.Errorf("fault: bad stall duration in %q", f)
		}
		ev.Delay = d
	case KindCorrupt:
		if arg != "" {
			m, err := strconv.ParseUint(strings.TrimPrefix(arg, "0x"), 16, 8)
			if err != nil {
				return Event{}, false, fmt.Errorf("fault: bad corrupt mask in %q", f)
			}
			ev.Mask = byte(m)
		}
	default:
		if arg != "" {
			return Event{}, false, fmt.Errorf("fault: %s takes no argument (%q)", name, f)
		}
	}
	return ev, write, nil
}

// Schedule materialises the spec for the i-th wrapped connection
// (0-based): nil events when the connection is skipped by Every,
// otherwise the template with deterministically jittered offsets.
func (sp *Spec) Schedule(i int) Schedule {
	if sp == nil || i%sp.Every != 0 {
		return Schedule{}
	}
	if sp.Jitter == 0 {
		return Schedule{Read: sp.Read, Write: sp.Write}
	}
	rng := rand.New(rand.NewSource(sp.Seed*1e9 + int64(i)))
	jitter := func(events []Event) []Event {
		out := make([]Event, len(events))
		for j, e := range events {
			e.Offset += rng.Int63n(sp.Jitter + 1)
			out[j] = e
		}
		return out
	}
	return Schedule{Read: jitter(sp.Read), Write: jitter(sp.Write)}
}

// String re-renders the spec parameters for logs.
func (sp *Spec) String() string {
	if sp == nil {
		return "<none>"
	}
	return fmt.Sprintf("leg=%s seed=%d every=%d jitter=%d read=%d write=%d events",
		sp.LegName(), sp.Seed, sp.Every, sp.Jitter, len(sp.Read), len(sp.Write))
}
