// Package fault is a deterministic fault-injection layer for the cic
// ingestion pipeline: schedule-driven net.Conn and io.Reader wrappers
// that inject connection drops, read/write stalls, short (partial)
// transfers and single-byte corruption at exact byte offsets of a
// stream. Schedules are plain data — built literally in tests or parsed
// from a -fault-spec string (see ParseSpec) — so a given schedule
// reproduces the same fault at the same byte on every run, which is what
// lets the chaos suite compare a faulted run byte-for-byte against a
// fault-free baseline.
package fault

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"time"
)

// ErrInjected is the error surfaced by an injected connection drop.
// Callers distinguish injected faults from organic transport errors with
// errors.Is.
var ErrInjected = errors.New("fault: injected connection drop")

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindDrop closes the underlying connection at the event offset; the
	// in-flight call returns ErrInjected. On a Reader it just returns
	// ErrInjected.
	KindDrop Kind = iota + 1
	// KindStall sleeps Delay before the byte at the event offset is
	// transferred (read/write latency).
	KindStall
	// KindCorrupt XORs the byte at the event offset with Mask (0 means
	// 0xFF, so the zero Mask still corrupts).
	KindCorrupt
	// KindPartial splits the transfer at the event offset: the call
	// covering the offset stops there (a short read, or a write split
	// into two underlying writes), exercising framing code against
	// fragmented I/O without any error.
	KindPartial
)

// String names the kind for logs and specs.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindStall:
		return "stall"
	case KindCorrupt:
		return "corrupt"
	case KindPartial:
		return "partial"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault at an absolute byte offset of a stream
// direction (reads and writes are counted independently).
type Event struct {
	Kind   Kind
	Offset int64         // absolute byte offset the event fires at
	Delay  time.Duration // KindStall only
	Mask   byte          // KindCorrupt only; 0 means 0xFF
}

// Schedule is the per-connection fault plan: independent event lists for
// the read and write directions, each applied in offset order.
type Schedule struct {
	Read  []Event
	Write []Event
}

// empty reports whether the schedule injects nothing.
func (s Schedule) empty() bool { return len(s.Read) == 0 && len(s.Write) == 0 }

// injector applies one direction's events to a byte stream. It is not
// safe for concurrent use; net.Conn wrappers own one per direction,
// matching the one-reader/one-writer discipline of the framing layer.
type injector struct {
	events  []Event
	idx     int
	pos     int64
	onFault func(Event)
	drop    func()
	sleep   func(time.Duration)
	scratch []byte // write-side corruption copies through here
}

func newInjector(events []Event, onFault func(Event), drop func()) *injector {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	return &injector{events: sorted, onFault: onFault, drop: drop, sleep: time.Sleep}
}

func (in *injector) fire(e Event) {
	if in.onFault != nil {
		in.onFault(e)
	}
}

// step prepares the next transfer of at most n bytes at the current
// offset: it applies every event due at the current position (stalls,
// drops, consumed split points), caps n so the next pending event lands
// exactly on a call boundary, and reports whether the first transferred
// byte must be corrupted. A KindDrop returns ErrInjected.
func (in *injector) step(n int) (m int, corrupt *Event, err error) {
	for in.idx < len(in.events) && in.events[in.idx].Offset <= in.pos {
		e := in.events[in.idx]
		in.idx++
		switch e.Kind {
		case KindStall:
			in.fire(e)
			in.sleep(e.Delay)
		case KindDrop:
			in.fire(e)
			if in.drop != nil {
				in.drop()
			}
			return 0, nil, ErrInjected
		case KindCorrupt:
			in.fire(e)
			corrupt = &in.events[in.idx-1]
		case KindPartial:
			// The split point itself was consumed by the previous call
			// ending here; nothing to do now.
			in.fire(e)
		}
		if corrupt != nil {
			break
		}
	}
	m = n
	if in.idx < len(in.events) {
		if d := in.events[in.idx].Offset - in.pos; d > 0 && d < int64(m) {
			m = int(d)
		}
	}
	return m, corrupt, nil
}

// read performs one injected read through op.
func (in *injector) read(p []byte, op func([]byte) (int, error)) (int, error) {
	if len(p) == 0 || in.idx >= len(in.events) {
		n, err := op(p)
		in.pos += int64(n)
		return n, err
	}
	m, corrupt, err := in.step(len(p))
	if err != nil {
		return 0, err
	}
	n, err := op(p[:m])
	if corrupt != nil && n > 0 {
		p[0] ^= corruptMask(corrupt.Mask)
	}
	in.pos += int64(n)
	return n, err
}

// write performs one injected write through op, looping over split
// points so the caller still sees a full write (or an error) — the
// io.Writer contract forbids a short count with a nil error.
func (in *injector) write(p []byte, op func([]byte) (int, error)) (int, error) {
	total := 0
	for len(p) > 0 {
		if in.idx >= len(in.events) {
			n, err := op(p)
			in.pos += int64(n)
			return total + n, err
		}
		m, corrupt, err := in.step(len(p))
		if err != nil {
			return total, err
		}
		chunk := p[:m]
		if corrupt != nil {
			if cap(in.scratch) < m {
				in.scratch = make([]byte, m)
			}
			s := in.scratch[:m]
			copy(s, chunk)
			s[0] ^= corruptMask(corrupt.Mask)
			chunk = s
		}
		n, err := op(chunk)
		in.pos += int64(n)
		total += n
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

func corruptMask(m byte) byte {
	if m == 0 {
		return 0xFF
	}
	return m
}

// Conn wraps a net.Conn with a fault schedule. Read and Write offsets
// are counted independently from 0 at wrap time. A KindDrop closes the
// underlying connection (both directions), so the peer observes a real
// disconnect. Conn is safe for the usual one-reader/one-writer
// discipline plus concurrent Close.
type Conn struct {
	net.Conn
	rd *injector
	wr *injector
}

// WrapConn applies sched to conn. onFault (optional) observes every
// injected event, e.g. to count faults in a metrics registry.
func WrapConn(conn net.Conn, sched Schedule, onFault func(Event)) *Conn {
	c := &Conn{Conn: conn}
	drop := func() { _ = conn.Close() }
	c.rd = newInjector(sched.Read, onFault, drop)
	c.wr = newInjector(sched.Write, onFault, drop)
	return c
}

// Read applies the read-direction schedule.
func (c *Conn) Read(p []byte) (int, error) {
	return c.rd.read(p, c.Conn.Read)
}

// Write applies the write-direction schedule.
func (c *Conn) Write(p []byte) (int, error) {
	return c.wr.write(p, c.Conn.Write)
}

// Reader wraps an io.Reader with a read-direction event list — the
// io-only variant for parser tests and fuzzing, where no connection
// exists to drop.
type Reader struct {
	r  io.Reader
	in *injector
}

// NewReader applies events to r. A KindDrop surfaces as ErrInjected.
func NewReader(r io.Reader, events []Event) *Reader {
	return &Reader{r: r, in: newInjector(events, nil, nil)}
}

// Read applies the schedule.
func (fr *Reader) Read(p []byte) (int, error) {
	return fr.in.read(p, fr.r.Read)
}
