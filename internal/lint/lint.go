// Package lint is cic's project-specific static-analysis suite: a small
// go/analysis-style framework (stdlib only — the module has no external
// dependencies, so golang.org/x/tools is deliberately not used) plus the
// analyzers that mechanically enforce the decode pipeline's safety
// invariants:
//
//   - nilsafeobs:   exported methods on internal/obs handle types are
//     nil-receiver safe, keeping the disabled-metrics path free.
//   - boundedalloc: allocations sized from wire-read integers are
//     dominated by a bound check (cap-before-allocate).
//   - nopanic:      no panic call in decode-path packages outside
//     init and must* constructors.
//   - errwrap:      fmt.Errorf wraps error operands with %w, and
//     sentinel errors are matched with errors.Is, not ==.
//   - clockinject:  decode-stage code never reads the wall clock
//     directly; it goes through the internal/obs helpers.
//   - atomicalign:  64-bit sync/atomic calls on raw integers are
//     replaced by atomic.Int64/atomic.Uint64 typed atomics.
//
// The shapes of Analyzer, Pass and Diagnostic mirror
// golang.org/x/tools/go/analysis, so an analyzer written here ports to
// the upstream driver by changing imports. cmd/cic-lint is the
// multichecker; docs/LINTING.md catalogues the invariants.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one type-checked package and reports findings
	// through the Pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicAlign,
		BoundedAlloc,
		ClockInject,
		ErrWrap,
		HotAlloc,
		NilSafeObs,
		NoPanic,
	}
}

// Run applies every analyzer to every package and returns the findings
// sorted by position (then by analyzer name, for determinism when two
// analyzers fire on the same token).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: running %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// calleeFunc resolves the function or method a call statically invokes,
// or nil for builtins, conversions, and dynamic calls through function
// values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t (a static expression type) satisfies the
// error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return false
	}
	return types.Implements(t, errorIface)
}
