// Package lint is cic's project-specific static-analysis suite: a small
// go/analysis-style framework (stdlib only — the module has no external
// dependencies, so golang.org/x/tools is deliberately not used) plus the
// analyzers that mechanically enforce the decode pipeline's safety
// invariants:
//
//   - nilsafeobs:   exported methods on internal/obs handle types are
//     nil-receiver safe, keeping the disabled-metrics path free.
//   - boundedalloc: allocations sized from wire-read integers are
//     dominated by a bound check (cap-before-allocate).
//   - nopanic:      no panic call in decode-path packages outside
//     init and must* constructors.
//   - errwrap:      fmt.Errorf wraps error operands with %w, and
//     sentinel errors are matched with errors.Is, not ==.
//   - clockinject:  decode-stage code never reads the wall clock
//     directly; it goes through the internal/obs helpers.
//   - atomicalign:  64-bit sync/atomic calls on raw integers are
//     replaced by atomic.Int64/atomic.Uint64 typed atomics.
//
// On top of the per-package analyzers sits a whole-program layer
// (callgraph.go) used by the flow-sensitive analyzers:
//
//   - hotpropagate: the //cic:hotpath contract propagates through the
//     call graph — functions reachable from a hot root are alloc-checked
//     even without their own annotation, and stale annotations are
//     flagged.
//   - goroutineleak: go statements in the server/cic/experiment
//     packages must be tied to an observable termination signal.
//   - lockdiscipline: no mutex held across channel operations, blocking
//     I/O or callback invocations, and named server locks are acquired
//     in a consistent order.
//   - arenaescape:   receiver-owned scratch slices must not be stored
//     into escaping values without an explicit copy or waiver.
//
// The shapes of Analyzer, Pass and Diagnostic mirror
// golang.org/x/tools/go/analysis, so an analyzer written here ports to
// the upstream driver by changing imports. cmd/cic-lint is the
// multichecker; docs/LINTING.md catalogues the invariants.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer is one invariant checker. Exactly one of Run and RunProgram
// is set: Run sees one type-checked package at a time, RunProgram sees
// the whole loaded module (with its call graph) in a single pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one type-checked package and reports findings
	// through the Pass.
	Run func(*Pass) error
	// RunProgram inspects the whole program at once; used by the
	// analyzers that need the call graph.
	RunProgram func(*ProgramPass) error
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries the whole loaded program through one
// program-level analyzer run.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ArenaEscape,
		AtomicAlign,
		BoundedAlloc,
		ClockInject,
		ErrWrap,
		GoroutineLeak,
		HotAlloc,
		HotPropagate,
		LockDiscipline,
		NilSafeObs,
		NoPanic,
	}
}

// AnalyzerTiming is the cumulative wall time one analyzer spent across
// every package (or its single whole-program pass).
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// Run applies every analyzer to every package and returns the findings
// sorted by position (then by analyzer name, for determinism when two
// analyzers fire on the same token).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkgs, analyzers)
	return diags, err
}

// RunTimed is Run plus per-analyzer cumulative timing, in analyzer
// order.
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerTiming, error) {
	var diags []Diagnostic
	elapsed := map[string]time.Duration{}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: running %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = NewProgram(pkgs)
		}
		pass := &ProgramPass{
			Analyzer: a,
			Prog:     prog,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		start := time.Now()
		err := a.RunProgram(pass)
		elapsed[a.Name] += time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: running %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[a.Name]})
	}
	return diags, timings, nil
}

// calleeFunc resolves the function or method a call statically invokes,
// or nil for builtins, conversions, and dynamic calls through function
// values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t (a static expression type) satisfies the
// error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return false
	}
	return types.Implements(t, errorIface)
}
