package lint

import "encoding/json"

// SARIF 2.1.0 output, the static-analysis interchange shape GitHub code
// scanning ingests. Only the required subset is emitted: one run, the
// tool driver with one reportingDescriptor per analyzer, and one result
// per finding with a physical location. Struct tags pin the exact
// property names of the spec, and sarif_test.go asserts the shape.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// SARIF renders the findings as a SARIF 2.1.0 log. rel maps a
// diagnostic's filename to the repository-relative slash path emitted
// as the artifact URI. Every analyzer appears as a rule even with zero
// results, so the catalogue uploads alongside the findings.
func SARIF(analyzers []*Analyzer, diags []Diagnostic, rel func(string) string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       rel(d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cic-lint", InformationURI: "https://github.com/cic/cic/blob/main/docs/LINTING.md", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// AnalyzerInfo is one entry of the analyzer catalogue, the shape
// `cic-lint -list -json` emits and the docs/LINTING.md sync test
// cross-checks.
type AnalyzerInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
	// WholeProgram marks call-graph analyzers (RunProgram) as opposed to
	// per-package ones.
	WholeProgram bool `json:"wholeProgram"`
}

// Catalogue lists the full suite in the stable All() order.
func Catalogue() []AnalyzerInfo {
	var out []AnalyzerInfo
	for _, a := range All() {
		out = append(out, AnalyzerInfo{Name: a.Name, Doc: a.Doc, WholeProgram: a.RunProgram != nil})
	}
	return out
}
