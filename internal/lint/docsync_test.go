package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cic/internal/lint"
)

// TestAnalyzersDocumented cross-checks the machine catalogue
// (`cic-lint -list -json`, lint.Catalogue) against the analyzer table
// in docs/LINTING.md, the same doc-sync pattern TestMetricsDocumented
// uses for the metrics reference: every analyzer must have a table row,
// every table row must name a real analyzer, and the count the prose
// states must match the suite.
func TestAnalyzersDocumented(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(moduleRoot(t), "docs", "LINTING.md"))
	if err != nil {
		t.Fatalf("reading docs/LINTING.md: %v", err)
	}
	doc := string(data)

	// Table rows look like: | `name` | invariant … |
	rowRE := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")
	documented := map[string]bool{}
	for _, m := range rowRE.FindAllStringSubmatch(doc, -1) {
		if documented[m[1]] {
			t.Errorf("docs/LINTING.md: analyzer %q has duplicate table rows", m[1])
		}
		documented[m[1]] = true
	}

	catalogue := lint.Catalogue()
	for _, info := range catalogue {
		if info.Doc == "" {
			t.Errorf("analyzer %q has an empty Doc string", info.Name)
		}
		if !documented[info.Name] {
			t.Errorf("analyzer %q has no row in the docs/LINTING.md catalogue table", info.Name)
		}
		delete(documented, info.Name)
	}
	for name := range documented {
		t.Errorf("docs/LINTING.md documents %q, which is not in lint.Catalogue()", name)
	}

	countRE := regexp.MustCompile(`\((\w+) analyzers`)
	m := countRE.FindStringSubmatch(doc)
	if m == nil {
		t.Fatalf("docs/LINTING.md no longer states the analyzer count in its intro")
	}
	words := map[int]string{7: "seven", 8: "eight", 9: "nine", 10: "ten", 11: "eleven", 12: "twelve", 13: "thirteen", 14: "fourteen", 15: "fifteen"}
	if want := words[len(catalogue)]; want != "" && !strings.EqualFold(m[1], want) {
		t.Errorf("docs/LINTING.md intro says %q analyzers; the suite has %d (%q)", m[1], len(catalogue), want)
	}
}
