package lint_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"cic/internal/lint"
)

// TestSARIFShape validates the emitted log against the subset of the
// SARIF 2.1.0 schema GitHub code scanning requires, using a hand-rolled
// structural check (stdlib-only — no JSON-schema engine is available):
// required properties, their types, and the cross-reference from every
// result's ruleId into the driver's rules.
func TestSARIFShape(t *testing.T) {
	diags := []lint.Diagnostic{
		diag("goroutineleak", "/repo/internal/server/server.go", 42, "goroutine has no termination signal"),
		diag("hotpropagate", "/repo/internal/rx/packet.go", 7, "make() in rx.helper, which is reachable from //cic:hotpath root"),
	}
	rel := func(f string) string { return f[len("/repo/"):] }
	out, err := lint.SARIF(lint.All(), diags, rel)
	if err != nil {
		t.Fatal(err)
	}

	var log map[string]any
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}

	if s, _ := log["$schema"].(string); s != "https://json.schemastore.org/sarif-2.1.0.json" {
		t.Errorf("$schema = %v", log["$schema"])
	}
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", log["version"])
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one run", log["runs"])
	}
	run := asObject(t, "runs[0]", runs[0])

	driver := asObject(t, "tool.driver", asObject(t, "tool", run["tool"])["driver"])
	if name, _ := driver["name"].(string); name != "cic-lint" {
		t.Errorf("tool.driver.name = %v", driver["name"])
	}
	ruleIDs := map[string]bool{}
	rules, ok := driver["rules"].([]any)
	if !ok || len(rules) != len(lint.All()) {
		t.Fatalf("driver.rules has %d entries, want one per analyzer (%d)", len(rules), len(lint.All()))
	}
	for i, r := range rules {
		rule := asObject(t, fmt.Sprintf("rules[%d]", i), r)
		id, _ := rule["id"].(string)
		if id == "" {
			t.Fatalf("rules[%d] has no id", i)
		}
		ruleIDs[id] = true
		short := asObject(t, fmt.Sprintf("rules[%d].shortDescription", i), rule["shortDescription"])
		if text, _ := short["text"].(string); text == "" {
			t.Errorf("rules[%d].shortDescription.text is empty", i)
		}
	}

	results, ok := run["results"].([]any)
	if !ok || len(results) != len(diags) {
		t.Fatalf("results has %d entries, want %d", len(results), len(diags))
	}
	for i, r := range results {
		res := asObject(t, fmt.Sprintf("results[%d]", i), r)
		ruleID, _ := res["ruleId"].(string)
		if !ruleIDs[ruleID] {
			t.Errorf("results[%d].ruleId %q does not reference a driver rule", i, ruleID)
		}
		switch res["level"] {
		case "error", "warning", "note":
		default:
			t.Errorf("results[%d].level = %v, not a SARIF level", i, res["level"])
		}
		if text, _ := asObject(t, "message", res["message"])["text"].(string); text == "" {
			t.Errorf("results[%d].message.text is empty", i)
		}
		locs, ok := res["locations"].([]any)
		if !ok || len(locs) == 0 {
			t.Fatalf("results[%d] has no locations", i)
		}
		phys := asObject(t, "physicalLocation", asObject(t, "location", locs[0])["physicalLocation"])
		art := asObject(t, "artifactLocation", phys["artifactLocation"])
		uri, _ := art["uri"].(string)
		if uri == "" || uri[0] == '/' {
			t.Errorf("results[%d] artifact uri = %q, want a relative slash path", i, uri)
		}
		region := asObject(t, "region", phys["region"])
		if line, _ := region["startLine"].(float64); line < 1 {
			t.Errorf("results[%d].region.startLine = %v, want >= 1", i, region["startLine"])
		}
	}
}

func asObject(t *testing.T, what string, v any) map[string]any {
	t.Helper()
	m, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("%s is %T, want a JSON object", what, v)
	}
	return m
}
