package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wireFacingPkgs names the packages (by package name, so testdata
// fixtures participate) that parse length fields out of untrusted
// bytes: the cic-gatewayd framing layer and the root package's
// cf32/frame readers.
var wireFacingPkgs = map[string]bool{
	"server": true,
	"cic":    true,
}

// BoundedAlloc enforces cap-before-allocate on wire-derived sizes: any
// make() whose size or capacity argument is (transitively) computed
// from a binary.{Big,Little}Endian.UintN read must appear after a
// relational bound check on that value. Without the check, a hostile
// 4-byte length field turns into a multi-gigabyte allocation — the
// classic length-prefix DoS. docs/SERVER.md declares the per-frame-type
// caps; ReadFrame's reject-then-allocate shape is the compliant form.
//
// The analysis is per-function and flow-insensitive beyond source
// order: a bound check dominates an allocation if it appears earlier in
// the function body, which matches the early-return parser style used
// throughout this module. Values laundered through function parameters
// or struct fields are out of scope.
var BoundedAlloc = &Analyzer{
	Name: "boundedalloc",
	Doc: "make() sized from wire-read integers must be preceded by a relational " +
		"bound check on that value (cap-before-allocate, per docs/SERVER.md)",
	Run: runBoundedAlloc,
}

func runBoundedAlloc(pass *Pass) error {
	if !wireFacingPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBoundedAllocs(pass, fn.Body)
		}
	}
	return nil
}

func checkBoundedAllocs(pass *Pass, body *ast.BlockStmt) {
	tainted := taintedWireValues(pass, body)
	if len(tainted) == 0 {
		return
	}

	// Earliest relational comparison mentioning each tainted value.
	checked := map[types.Object]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil && tainted[obj] {
						if prev, ok := checked[obj]; !ok || bin.Pos() < prev {
							checked[obj] = bin.Pos()
						}
					}
				}
				return true
			})
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		for _, sizeArg := range call.Args[1:] {
			ast.Inspect(sizeArg, func(m ast.Node) bool {
				sid, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[sid]
				if obj == nil || !tainted[obj] {
					return true
				}
				if pos, ok := checked[obj]; !ok || pos > call.Pos() {
					pass.Reportf(call.Pos(), "make() sized from wire-read value %s without a preceding bound check: cap the length before allocating", sid.Name)
				}
				return true
			})
		}
		return true
	})
}

// taintedWireValues computes (to a fixpoint) the local variables whose
// value derives from a binary.{Big,Little}Endian.UintN decode inside
// this function body.
func taintedWireValues(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass.Info, x); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "encoding/binary" && strings.HasPrefix(fn.Name(), "Uint") {
					found = true
				}
			case *ast.Ident:
				if obj := pass.Info.Uses[x]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		mark := func(obj types.Object) {
			if obj != nil && !tainted[obj] {
				tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
					if exprTainted(x.Rhs[0]) {
						for _, lh := range x.Lhs {
							mark(lhsObj(lh))
						}
					}
					return true
				}
				for i, lh := range x.Lhs {
					if i < len(x.Rhs) && exprTainted(x.Rhs[i]) {
						mark(lhsObj(lh))
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) && exprTainted(x.Values[i]) {
						mark(pass.Info.Defs[name])
					}
				}
			case *ast.RangeStmt:
				if exprTainted(x.X) {
					if x.Key != nil {
						mark(lhsObj(x.Key))
					}
					if x.Value != nil {
						mark(lhsObj(x.Value))
					}
				}
			}
			return true
		})
	}
	return tainted
}
