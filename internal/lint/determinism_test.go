package lint_test

import (
	"reflect"
	"testing"

	"cic/internal/lint"
)

// TestDiagnosticsDeterministicAcrossWorkerCounts pins the ordering
// contract of the parallel loader: LoadWith type-checks packages
// concurrently along the dependency DAG, and the diagnostics of a run
// over the result must be byte-identical regardless of the worker
// count. The four whole-program fixture packages produce a rich,
// multi-package diagnostic set, so any nondeterminism in package order,
// call-graph construction, or report collection shows up as a diff.
func TestDiagnosticsDeterministicAcrossWorkerCounts(t *testing.T) {
	patterns := []string{
		"./testdata/hotpropagate",
		"./testdata/goroutineleak",
		"./testdata/lockdiscipline",
		"./testdata/arenaescape",
	}
	var reference []lint.Diagnostic
	for _, workers := range []int{1, 2, 8} {
		pkgs, err := lint.LoadWith(lint.LoadOptions{Workers: workers}, ".", patterns...)
		if err != nil {
			t.Fatalf("LoadWith(workers=%d): %v", workers, err)
		}
		if len(pkgs) != len(patterns) {
			t.Fatalf("LoadWith(workers=%d) returned %d packages, want %d", workers, len(pkgs), len(patterns))
		}
		diags, err := lint.Run(pkgs, lint.All())
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if len(diags) == 0 {
			t.Fatalf("fixture packages produced no diagnostics; the determinism check needs a non-empty set")
		}
		if reference == nil {
			reference = diags
			continue
		}
		if !reflect.DeepEqual(reference, diags) {
			t.Errorf("diagnostics differ between worker counts:\n  workers=1: %d findings\n  workers=%d: %d findings", len(reference), workers, len(diags))
			for i := 0; i < len(reference) || i < len(diags); i++ {
				var a, b string
				if i < len(reference) {
					a = reference[i].String()
				}
				if i < len(diags) {
					b = diags[i].String()
				}
				if a != b {
					t.Errorf("  [%d]\n    want %s\n    got  %s", i, a, b)
				}
			}
		}
	}
}
