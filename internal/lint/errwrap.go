package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces the module's error-chain discipline in every
// package: an error formatted into another error must be wrapped with
// %w (so callers can reach sentinels like phy.ErrHeader or io.EOF
// through the chain with errors.Is/errors.As), and sentinel errors must
// be matched with errors.Is rather than ==, which breaks as soon as any
// layer wraps.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "require %w for error operands of fmt.Errorf and errors.Is for sentinel " +
		"comparisons, so error chains survive wrapping at every layer",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, x)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error operand
// with %v or %s instead of %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return
	}
	for i, verb := range verbs {
		if verb != 'v' && verb != 's' {
			continue
		}
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		arg := call.Args[argIdx]
		if isErrorType(pass.Info.Types[arg].Type) {
			pass.Reportf(arg.Pos(), "error operand formatted with %%%c: use %%w so callers can errors.Is/errors.As through the wrap", verb)
		}
	}
}

// formatVerbs returns the operand-consuming verb letters of a format
// string in argument order. It reports ok=false for formats it cannot
// map positionally (explicit argument indexes, * widths).
func formatVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		if i < len(format) && (format[i] == '[' || format[i] == '*') {
			return nil, false
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				return nil, false
			}
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		if i >= len(format) {
			return nil, false
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}

// checkSentinelCompare flags ==/!= between error values when either
// side is a package-level sentinel variable (io.EOF, phy.ErrHeader, …).
func checkSentinelCompare(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	ltv, rtv := pass.Info.Types[bin.X], pass.Info.Types[bin.Y]
	if ltv.IsNil() || rtv.IsNil() {
		return // err == nil is the idiomatic presence check
	}
	if !isErrorType(ltv.Type) || !isErrorType(rtv.Type) {
		return
	}
	if !isSentinelRef(pass.Info, bin.X) && !isSentinelRef(pass.Info, bin.Y) {
		return
	}
	pass.Reportf(bin.Pos(), "sentinel error compared with %s: use errors.Is, which matches through wrapped chains", bin.Op)
}

// isSentinelRef reports whether e references a package-level variable —
// the sentinel-error pattern.
func isSentinelRef(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	return ok && !v.IsField() && v.Parent() != nil && v.Parent().Parent() == types.Universe
}
