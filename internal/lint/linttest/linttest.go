// Package linttest is the analysistest-style harness for cic's lint
// suite: it runs one analyzer over a testdata fixture package and
// diffs the diagnostics against `// want "regexp"` comments.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cic/internal/lint"
)

// RunFixture loads the single package rooted at dir (a testdata
// directory holding a self-contained fixture package) and checks the
// analyzer's diagnostics against `// want "regexp"` comments, the
// analysistest convention: each want comment names, on its own line,
// one expected diagnostic whose message the quoted regexp must match.
// Multiple quoted regexps on one comment expect multiple diagnostics on
// that line. Unmatched diagnostics and unmet expectations both fail t.
func RunFixture(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkgs, err := lint.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[key][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, perr := parseWantComment(c.Text)
				if perr != nil {
					pos := pkg.Fset.Position(c.Pos())
					t.Fatalf("%s:%d: %v", filepath.Base(pos.Filename), pos.Line, perr)
				}
				if len(res) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, re := range res {
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", k.file, k.line, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

// parseWantComment extracts the quoted regexps of a `// want "..."`
// comment (nil if the comment is not a want comment). A `//cic:` marker
// comment may embed a want clause after the marker text (`//cic:alloc-ok
// … want "..."`), since a line comment cannot be followed by a second
// one on the same line and some diagnostics point at the marker itself.
func parseWantComment(text string) ([]*regexp.Regexp, error) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, nil // /* */ comments are not want carriers
	}
	trimmed := strings.TrimLeft(body, " \t")
	body, ok = strings.CutPrefix(trimmed, "want ")
	if !ok && strings.HasPrefix(trimmed, "cic:") {
		for _, open := range []string{" want \"", " want `"} {
			if i := strings.Index(trimmed, open); i >= 0 {
				body, ok = trimmed[i+len(" want "):], true
				break
			}
		}
	}
	if !ok {
		return nil, nil
	}
	var res []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want comment %q: %w", text, err)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("malformed want comment %q: %w", text, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("want comment regexp %q: %w", pat, err)
		}
		res = append(res, re)
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want comment %q has no quoted regexp", text)
	}
	return res, nil
}
