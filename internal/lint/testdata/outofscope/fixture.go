// Package helper sits outside every scoped analyzer's package set: the
// would-be violations below must NOT be reported by nopanic,
// clockinject, boundedalloc, nilsafeobs, goroutineleak, lockdiscipline,
// or arenaescape — and hotalloc, which scopes by //cic:hotpath marker
// rather than by package, must stay silent on the unannotated
// allocators here. (No want comments: the harness asserts zero
// diagnostics.)
package helper

import (
	"encoding/binary"
	"sync"
	"time"
)

// Counter shares a handle type name, but this is not the obs package.
type Counter struct{ n int64 }

// Add has no nil guard: fine outside internal/obs.
func (c *Counter) Add(v int64) { c.n += v }

// boom panics: fine outside the decode path.
func boom(k int) int {
	if k < 0 {
		panic("helper: out-of-scope panic")
	}
	return k
}

// stamp reads the clock: fine outside decode-stage packages.
func stamp() time.Time { return time.Now() }

// alloc sizes an allocation from wire bytes: fine outside the
// wire-facing packages.
func alloc(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n)
}

// pool spawns an unbounded spinner and holds its lock across a channel
// send: fine outside the goroutine- and lock-policed packages.
type pool struct {
	mu      sync.Mutex
	out     chan int
	raw     chan []byte
	scratch []byte
}

func (p *pool) spawn() {
	go func() {
		for {
			p.mu.Lock()
			p.out <- 1
			p.mu.Unlock()
		}
	}()
}

// leak hands the receiver's scratch arena over a channel: fine outside
// the decode-path packages arenaescape polices.
func (p *pool) leak(n int) {
	p.raw <- p.scratch[:n]
}

var _, _, _ = boom, stamp, alloc
