// Fixture for the clockinject analyzer: package name "rx" places it in
// the decode-stage scope.
package rx

import "time"

// clock grabs time.Now as a value — still a direct clock dependency.
var clock = time.Now // want `time\.Now in decode-stage code`

// stamp reads the wall clock inline — the violation.
func stamp() time.Time {
	return time.Now() // want `time\.Now in decode-stage code`
}

// age measures elapsed time directly — also a violation.
func age(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since in decode-stage code`
}

// window does time arithmetic without reading the clock: compliant.
func window(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// stampInjected is the compliant form: the clock is a parameter, so
// tests (and the obs layer) control it.
func stampInjected(now func() time.Time) time.Time {
	return now()
}

var _, _, _, _ = clock, stamp, age, window
var _ = stampInjected
