// Package server exercises the lockdiscipline analyzer: no mutex may
// be held across a channel operation, blocking I/O, or a dynamic
// callback — directly or through a static callee — and named locks
// must be acquired in one global order. //cic:lock-ok waives a line.
package server

import (
	"bytes"
	"io"
	"sync"
)

type store struct {
	mu   sync.Mutex
	a, b sync.Mutex
	out  chan int
	w    io.Writer
	log  *bytes.Buffer
	cb   func()
	n    int
}

// sendUnderLock holds mu across a channel send: the consumer now gates
// every other critical section.
func (s *store) sendUnderLock(v int) {
	s.mu.Lock()
	s.out <- v // want `channel send while holding store\.mu`
	s.mu.Unlock()
}

// sendAfterUnlock is the compliant shape: mutate under the lock, send
// outside it.
func (s *store) sendAfterUnlock(v int) {
	s.mu.Lock()
	s.n = v
	s.mu.Unlock()
	s.out <- v
}

// recvUnderDeferredLock shows the deferred unlock sticking: mu stays
// held through the return expression's receive.
func (s *store) recvUnderDeferredLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.out // want `channel receive while holding store\.mu`
}

// ioUnderLock performs writer I/O under mu: the write may block on a
// slow peer with the lock held.
func (s *store) ioUnderLock(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(p) // want `blocking I/O while holding store\.mu`
}

// memWriteUnderLock writes an in-memory buffer: never blocks, so the
// held lock is fine.
func (s *store) memWriteUnderLock(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Write(p)
}

// callbackUnderLock invokes a caller-supplied func under mu: the
// callback's behaviour is invisible, so it must not run locked.
func (s *store) callbackUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cb() // want `callback invocation while holding store\.mu`
}

// transitiveBlock reaches a channel send one static call down: the
// callee's block summary propagates to this site.
func (s *store) transitiveBlock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit(v) // want `call to server\.\(\*store\)\.emit that may perform a channel send while holding store\.mu`
}

func (s *store) emit(v int) { s.out <- v }

// nonBlockingSelect is allowed under the lock: the default case bounds
// the wait at zero.
func (s *store) nonBlockingSelect(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.out <- v:
	default:
		s.n++
	}
}

// waivedSend is vouched for: the consumer drains out by contract.
func (s *store) waivedSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out <- v //cic:lock-ok — bounded consumer drains out by contract
}

// lockAB and lockBA form an ABBA inversion; the cycle is reported at
// each edge's first acquisition site.
func (s *store) lockAB() {
	s.a.Lock()
	s.b.Lock() // want `inconsistent lock acquisition order: store\.b is acquired while holding store\.a`
	s.b.Unlock()
	s.a.Unlock()
}

func (s *store) lockBA() {
	s.b.Lock()
	s.a.Lock() // want `inconsistent lock acquisition order: store\.a is acquired while holding store\.b`
	s.a.Unlock()
	s.b.Unlock()
}
