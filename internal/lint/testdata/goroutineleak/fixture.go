// Package server exercises the goroutineleak analyzer: every goroutine
// spawned in a policed package must be tied to a termination signal —
// a select/receive/ctx check, an exit statement in its loop, or a
// closable queue — and local rendezvous/pump channels must not be
// abandonable. //cic:leak-ok waives a go statement.
package server

import (
	"context"
	"net"
	"sync/atomic"
)

type svc struct {
	jobs  chan int
	count atomic.Int64
	fn    func()
}

// spawnForever leaks: the loop has no exit statement and no signal.
func (s *svc) spawnForever() {
	go func() { // want `goroutine has no termination signal`
		for {
			s.count.Add(1)
		}
	}()
}

// spawnSelect is tied to ctx and the work queue: compliant.
func (s *svc) spawnSelect(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-s.jobs:
				s.count.Add(int64(j))
			}
		}
	}()
}

// spawnRange drains a closable queue: the range ends when jobs closes.
func (s *svc) spawnRange() {
	go func() {
		for j := range s.jobs {
			s.count.Add(int64(j))
		}
	}()
}

// spawnNamed delegates to a named pump whose loop exits on read error:
// the verdict descends into the callee and finds the return.
func (s *svc) spawnNamed(c net.Conn) {
	go s.pump(c)
}

func (s *svc) pump(c net.Conn) {
	buf := make([]byte, 64)
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
		s.count.Add(1)
	}
}

// spawnCAS retries until the swap lands: the break is the exit, so the
// loop is bounded by progress, not by a signal.
func (s *svc) spawnCAS() {
	go func() {
		for {
			old := s.count.Load()
			if s.count.CompareAndSwap(old, old+1) {
				break
			}
		}
	}()
}

// spawnHelper leaks one static call down: the spin lives in the callee
// and the verdict names the path.
func (s *svc) spawnHelper() {
	go func() { // want `goroutine has no termination signal: calls server\.\(\*svc\)\.spin, which spins in an unbounded for-loop`
		s.spin()
	}()
}

func (s *svc) spin() {
	for {
		s.count.Add(1)
	}
}

// spawnDynamic launches a func value: the body is invisible, so the
// signal cannot be verified.
func (s *svc) spawnDynamic() {
	go s.fn() // want `goroutine entry is a dynamic call`
}

// spawnWaived is vouched for by design.
func (s *svc) spawnWaived() {
	go func() { //cic:leak-ok — bounded by the process lifetime by design
		for {
			s.count.Add(1)
		}
	}()
}

// rendezvous can abandon its unbuffered sender: if ctx wins the select,
// nothing ever receives and the sender blocks forever.
func (s *svc) rendezvous(ctx context.Context) int {
	res := make(chan int)
	go func() {
		res <- s.work() // want `send on unbuffered channel res can leak this goroutine`
	}()
	select {
	case v := <-res:
		return v
	case <-ctx.Done():
		return 0
	}
}

// rendezvousBuffered is the fix: capacity 1 lets the sender finish even
// when the result is abandoned.
func (s *svc) rendezvousBuffered(ctx context.Context) int {
	res := make(chan int, 1)
	go func() {
		res <- s.work()
	}()
	select {
	case v := <-res:
		return v
	case <-ctx.Done():
		return 0
	}
}

func (s *svc) work() int { return 1 }

// leakyPump abandons its drainer on the early return: the queue is
// closed only on the fall-through path.
func (s *svc) leakyPump(c net.Conn) error {
	q := newQueue()
	go func() { // want `pump goroutine ranging over a channel from q can be abandoned`
		for range q.items() {
		}
	}()
	if err := s.feed(q, c); err != nil {
		return err
	}
	q.Close()
	return nil
}

// deferredPump is the fix: the deferred release ends the pump on every
// exit path.
func (s *svc) deferredPump(c net.Conn) error {
	q := newQueue()
	defer q.Close()
	go func() {
		for range q.items() {
		}
	}()
	return s.feed(q, c)
}

type queue struct{ ch chan int }

func newQueue() *queue             { return &queue{ch: make(chan int, 8)} }
func (q *queue) items() <-chan int { return q.ch }
func (q *queue) Close()            { close(q.ch) }
func (q *queue) push(v int) {
	select {
	case q.ch <- v:
	default:
	}
}

func (s *svc) feed(q *queue, c net.Conn) error {
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil {
		return err
	}
	q.push(int(buf[0]))
	return nil
}
