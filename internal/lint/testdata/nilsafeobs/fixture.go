// Fixture for the nilsafeobs analyzer: package name "obs" plus the
// handle type names place these methods under the nil-safety contract.
package obs

import "sync/atomic"

// Counter mirrors the real obs handle shape.
type Counter struct{ v atomic.Int64 }

// Add is the compliant form: guard before touching receiver state.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc delegates to a guarded method: allowed without its own guard.
func (c *Counter) Inc() { c.Add(1) }

// Bad touches receiver state with no guard — the violation.
func (c *Counter) Bad(n int64) {
	c.v.Add(n) // want `uses the receiver before a nil guard`
}

// Gauge mirrors the real obs handle shape.
type Gauge struct{ v atomic.Int64 }

// Set guards through an or-chain: still a guard.
func (g *Gauge) Set(n int64) {
	if g == nil || n < 0 {
		return
	}
	g.v.Store(n)
}

// LateGuard reads receiver state before its guard — the violation.
func (g *Gauge) LateGuard() int64 {
	v := g.v.Load() // want `uses the receiver before a nil guard`
	if g == nil {
		return 0
	}
	return v
}

// Histogram mirrors the real obs handle shape.
type Histogram struct{ n atomic.Int64 }

// Count is compliant.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// raw is unexported: internal call sites guard explicitly, so the
// exported-contract analyzer leaves it alone.
func (h *Histogram) raw() int64 { return h.n.Load() }

// Registry mirrors the real obs registry.
type Registry struct{ counters map[string]*Counter }

// Counter may set up receiver-free state before the guard.
func (r *Registry) Counter(name string) *Counter {
	var fallback *Counter
	if r == nil {
		return fallback
	}
	return r.counters[name]
}

var _ = (*Histogram).raw
