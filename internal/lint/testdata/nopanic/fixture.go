// Fixture for the nopanic analyzer: package name "core" places it in
// the decode-path scope.
package core

import "errors"

var errBad = errors.New("core: bad symbol")

// decodeSymbol panics on malformed input — the violation.
func decodeSymbol(k int) (int, error) {
	if k < 0 {
		panic("negative symbol") // want `panic in decode-path function decodeSymbol`
	}
	return k, nil
}

// decodeChecked is the compliant form: malformed input is an error.
func decodeChecked(k int) (int, error) {
	if k < 0 {
		return 0, errBad
	}
	return k, nil
}

// mustSize is a must* constructor: panicking on misconfiguration at
// startup is its documented contract.
func mustSize(n int) int {
	if n <= 0 {
		panic("core: size must be positive")
	}
	return n
}

// MustBuild is the exported must* form, equally exempt.
func MustBuild(n int) int {
	return mustSize(n)
}

func init() {
	if false {
		panic("core: impossible init state")
	}
}

// decodeAll shows that closures inside decode functions are still
// decode-path code.
func decodeAll(ks []int) error {
	check := func(k int) {
		if k < 0 {
			panic("nested") // want `panic in decode-path function decodeAll`
		}
	}
	for _, k := range ks {
		check(k)
	}
	return nil
}

var _ = decodeSymbol
var _ = decodeChecked
var _ = decodeAll
