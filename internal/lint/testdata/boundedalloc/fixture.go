// Fixture for the boundedalloc analyzer: package name "server" places
// it in the wire-facing scope.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

const maxBody = 1 << 20

// readBad allocates straight from a wire-read length — the classic
// length-prefix DoS.
func readBad(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	body := make([]byte, n) // want `make\(\) sized from wire-read value n`
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// readGood rejects oversized lengths before allocating — the compliant
// ReadFrame shape.
func readGood(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxBody {
		return nil, fmt.Errorf("server: body %d bytes exceeds limit %d", n, maxBody)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// readDerivedBad shows taint flowing through arithmetic and
// conversions into the allocation site.
func readDerivedBad(r io.Reader) ([]complex128, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	count := int(binary.BigEndian.Uint16(hdr[:])) * 2
	out := make([]complex128, count) // want `make\(\) sized from wire-read value count`
	return out, nil
}

// readFixed: allocations with constant sizes are never flagged.
func readFixed(r io.Reader) ([]byte, error) {
	buf := make([]byte, 64)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

var _, _, _, _ = readBad, readGood, readDerivedBad, readFixed
