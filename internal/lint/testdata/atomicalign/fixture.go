// Fixture for the atomicalign analyzer, which is unscoped: raw 64-bit
// sync/atomic calls are forbidden module-wide in favour of the typed
// atomics, whose 8-byte alignment the type system guarantees.
package stats

import "sync/atomic"

// rawCounters places a bare int64 behind package-level atomics: on
// 32-bit platforms its alignment is the caller's problem.
type rawCounters struct{ n int64 }

func (c *rawCounters) inc() {
	atomic.AddInt64(&c.n, 1) // want `atomic\.AddInt64 on a raw integer`
}

func (c *rawCounters) get() int64 {
	return atomic.LoadInt64(&c.n) // want `atomic\.LoadInt64 on a raw integer`
}

func (c *rawCounters) reset(v uint64) {
	var u uint64
	atomic.StoreUint64(&u, v) // want `atomic\.StoreUint64 on a raw integer`
	_ = u
}

// typedCounters is the compliant form.
type typedCounters struct{ n atomic.Int64 }

func (c *typedCounters) inc()       { c.n.Add(1) }
func (c *typedCounters) get() int64 { return c.n.Load() }

// bump32: 32-bit raw atomics carry no alignment hazard; not flagged.
func bump32(p *int32) { atomic.AddInt32(p, 1) }

var (
	_ = (*rawCounters)(nil)
	_ = (*typedCounters)(nil)
	_ = bump32
)
