// Package fixture exercises the hotalloc analyzer: functions marked
// //cic:hotpath must not call make/new and may append only into
// arena-rooted slices (struct fields, parameters, callee-returned
// scratch); //cic:alloc-ok waives a line.
package fixture

type demod struct {
	scratch []float64
	peaks   []int
}

func (d *demod) arena() []float64 { return d.scratch[:0] }

// coldPath is unmarked: the analyzer must stay silent no matter what it
// allocates.
func coldPath(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}

// hotMake allocates fresh storage every call.
//
//cic:hotpath
func hotMake(n int) []float64 {
	out := make([]float64, n) // want `make\(\) in hot-path function hotMake`
	return out
}

// hotNew heap-allocates every call.
//
//cic:hotpath
func hotNew() *demod {
	return new(demod) // want `new\(\) in hot-path function hotNew`
}

// hotAppendFresh grows a slice rooted in nothing: every warm call may
// reallocate.
//
//cic:hotpath
func hotAppendFresh(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append into non-arena slice in hot-path function hotAppendFresh`
	}
	return out
}

// hotAppendFromMake roots the destination in a make: both sites are
// wrong, and each is reported where it happens.
//
//cic:hotpath
func hotAppendFromMake(n int) []int {
	out := make([]int, 0) // want `make\(\) in hot-path function hotAppendFromMake`
	return append(out, n) // want `append into non-arena slice in hot-path function hotAppendFromMake`
}

// hotWaived shows the escape hatch: the result genuinely escapes, so the
// allocation is sanctioned inline.
//
//cic:hotpath
func hotWaived() *demod {
	d := new(demod) //cic:alloc-ok — the accepted result escapes to the caller
	return d
}

// hotFieldAppend grows struct-field scratch directly: allowed (grows once
// at warm-up, reused thereafter).
//
//cic:hotpath
func (d *demod) hotFieldAppend(v int) {
	d.peaks = append(d.peaks, v)
}

// hotFieldRootedLocal uses the save-back arena idiom: the local is rooted
// in a field slice expression, so appends through it are allowed.
//
//cic:hotpath
func (d *demod) hotFieldRootedLocal(vals []float64) {
	buf := d.scratch[:0]
	for _, v := range vals {
		buf = append(buf, v)
	}
	d.scratch = buf
}

// hotParamAppend implements the dst-reuse idiom: the caller owns the
// storage, so growing it is the caller's decision.
//
//cic:hotpath
func hotParamAppend(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// hotCalleeScratch appends into a callee-returned slice: the callee may
// hand out reusable scratch, so this is trusted.
//
//cic:hotpath
func (d *demod) hotCalleeScratch(v float64) {
	buf := append(d.arena(), v)
	d.scratch = buf
}

// hotClosure checks that allocation sites inside closures of a hot-path
// function are still scanned, and that captured rooted locals stay rooted.
//
//cic:hotpath
func (d *demod) hotClosure(vals []int) {
	out := d.peaks[:0]
	add := func(v int) {
		out = append(out, v)
		tmp := make([]int, 1) // want `make\(\) in hot-path function hotClosure`
		_ = tmp
	}
	for _, v := range vals {
		add(v)
	}
	d.peaks = out
}

// hotMultiSiteWaiver pins the waiver's line granularity: one
// //cic:alloc-ok covers every allocation site on its line, here two
// makes in a single assignment.
//
//cic:hotpath
func hotMultiSiteWaiver() ([]float64, []float64) {
	a, b := make([]float64, 4), make([]float64, 4) //cic:alloc-ok — both escape; one waiver spans the whole line
	return a, b
}

// hotStaleWaiver carries a waiver on a line that neither allocates nor
// escapes: the waiver is dead weight and must be reported so it cannot
// mask a future allocation added to the same line.
//
//cic:hotpath
func hotStaleWaiver(n int) int {
	n++ //cic:alloc-ok — nothing here allocates: want `stale //cic:alloc-ok waiver in hot-path function hotStaleWaiver`
	return n
}
