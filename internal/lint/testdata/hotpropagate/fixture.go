// Package rx exercises the hotpropagate analyzer: the //cic:hotpath
// contract follows call edges, so an unannotated helper reachable from
// an annotated root inherits the zero-allocation obligation. Dynamic
// edges are followed inside decode-path packages (this fixture's
// package name keeps it on that path); a //cic:alloc-ok on the call
// line cuts the edge. Stale and malformed markers are reported too.
package rx

type sink interface {
	Consume(n int)
}

type state struct {
	scratch []float64
	s       sink
}

// HotRoot is the annotated root; edges from it propagate the contract.
//
//cic:hotpath
func (st *state) HotRoot(n int) {
	st.helper(n)
	st.sanctioned(n) //cic:alloc-ok — sanctioned allocation boundary: the edge is cut here
	st.s.Consume(n)  // dynamic edge, followed because the fixture is a decode-path package
	st.arenaUser(float64(n))
}

// helper inherits the contract through the static edge from HotRoot.
func (st *state) helper(n int) {
	buf := make([]float64, n) // want `make\(\) in rx\.\(\*state\)\.helper, which is reachable from //cic:hotpath root rx\.\(\*state\)\.HotRoot`
	_ = buf
	st.deeper(n)
}

// deeper is two static edges from the root: still on the contract.
func (st *state) deeper(n int) {
	var out []float64
	out = append(out, float64(n)) // want `append into non-arena slice in rx\.\(\*state\)\.deeper`
	_ = out
}

// sanctioned is reachable only through the waived edge: its allocation
// is the sanctioned boundary and must not be reported.
func (st *state) sanctioned(n int) {
	buf := make([]float64, n)
	_ = buf
}

// arenaUser is reachable but allocates nothing (append into the
// receiver arena is the documented idiom): compliant.
func (st *state) arenaUser(v float64) {
	st.scratch = append(st.scratch, v)
}

// impl implements sink; the dynamic dispatch edge from HotRoot reaches
// its method.
type impl struct{}

func (impl) Consume(n int) {
	p := new(impl) // want `new\(\) in rx\..*Consume, which is reachable from //cic:hotpath root`
	_ = p
}

// deadHot is annotated but unexported with no callers and never
// address-taken: the annotation enforces nothing.
//
//cic:hotpath
func deadHot() {} // want `stale //cic:hotpath annotation on rx\.deadHot`

// notActuallyHot carries a marker with trailing text: it silently fails
// to apply, which is worth a diagnostic of its own.
//
//cic:hotpath but only on weekends — want `malformed //cic:hotpath marker`
func notActuallyHot(n int) []int {
	return make([]int, n)
}
