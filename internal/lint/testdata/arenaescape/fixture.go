// Package core exercises the arenaescape analyzer: slices rooted in a
// receiver-owned scratch arena are overwritten on the next packet, so
// they must not escape through channel sends, stores into parameters or
// package variables, or non-return composite literals without a copy.
// Returning one is the documented hand-out idiom and stays legal;
// //cic:alloc-ok waives a sanctioned escape.
package core

type result struct{ buf []float64 }

type dec struct {
	scratch []float64
	out     chan []float64
	sink    chan result
}

var lastBuf []float64

// sendArena ships the arena over a channel: the receiver sees the
// bytes race with the next packet's decode.
func (d *dec) sendArena(n int) {
	d.out <- d.scratch[:n] // want `arena-rooted slice sent over a channel from sendArena`
}

// sendCopy is the fix: a fresh buffer owns its bytes.
func (d *dec) sendCopy(n int) {
	buf := make([]float64, n)
	copy(buf, d.scratch[:n])
	d.out <- buf
}

// storeInLiteral wraps the arena in a value that outlives the reuse
// cycle (the struct send itself is fine — the slice inside is not).
func (d *dec) storeInLiteral(n int) {
	r := result{buf: d.scratch[:n]} // want `arena-rooted slice stored into a composite literal in storeInLiteral`
	d.sink <- r
}

// returnHandout is the documented borrow idiom: the caller knows the
// buffer is only valid until the next call.
func (d *dec) returnHandout(n int) result {
	return result{buf: d.scratch[:n]}
}

// storeInParam hands the alias out through a caller-owned value.
func (d *dec) storeInParam(r *result, n int) {
	r.buf = d.scratch[:n] // want `arena-rooted slice stored into parameter r in storeInParam`
}

// storeInGlobal pins the arena in package state.
func (d *dec) storeInGlobal(n int) {
	lastBuf = d.scratch[:n] // want `arena-rooted slice stored into package variable lastBuf in storeInGlobal`
}

// aliasThroughLocal tracks rooting through a local alias: the view is
// still the arena's storage.
func (d *dec) aliasThroughLocal(n int) {
	view := d.scratch[:n]
	d.out <- view // want `arena-rooted slice sent over a channel from aliasThroughLocal`
}

// saveBack grows the arena through the receiver: the documented
// save-back idiom, not an escape.
func (d *dec) saveBack(v float64) {
	d.scratch = append(d.scratch, v)
}

// waivedSend is a sanctioned hand-off: the consumer copies
// synchronously by contract.
func (d *dec) waivedSend(n int) {
	d.out <- d.scratch[:n] //cic:alloc-ok — consumer copies synchronously by contract
}
