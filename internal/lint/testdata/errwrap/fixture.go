// Fixture for the errwrap analyzer, which is unscoped: any package
// must wrap error operands with %w and match sentinels via errors.Is.
package client

import (
	"errors"
	"fmt"
	"io"
)

var errClosed = errors.New("client: closed")

// wrapV formats an error with %v: the wrap is lost.
func wrapV(err error) error {
	return fmt.Errorf("read failed: %v", err) // want `error operand formatted with %v`
}

// wrapS is the same violation through %s.
func wrapS(err error) error {
	return fmt.Errorf("read failed: %s", err) // want `error operand formatted with %s`
}

// wrapW is the compliant form.
func wrapW(err error) error {
	return fmt.Errorf("read failed: %w", err)
}

// wrapMixed: non-error operands may use any verb; the error gets %w.
func wrapMixed(n int, err error) error {
	return fmt.Errorf("read %d bytes: %w", n, err)
}

// compareEq matches a sentinel with ==: breaks once any layer wraps.
func compareEq(err error) bool {
	return err == io.EOF // want `sentinel error compared with ==`
}

// compareNeq is the != spelling of the same bug.
func compareNeq(err error) bool {
	return err != errClosed // want `sentinel error compared with !=`
}

// compareIs is the compliant form.
func compareIs(err error) bool {
	return errors.Is(err, io.EOF)
}

// nilCheck: presence tests against nil are idiomatic and exempt.
func nilCheck(err error) bool {
	return err == nil
}

var _, _, _, _ = wrapV, wrapS, wrapW, wrapMixed
var _, _, _ = compareEq, compareNeq, compareIs
var _ = nilCheck
