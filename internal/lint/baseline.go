package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Baseline is a suppression list for grandfathered findings: it lets a
// new analyzer land strict while its pre-existing findings are burned
// down explicitly. Entries match on analyzer, slash-relative path, and
// the exact message — not the line number, so unrelated edits above a
// finding do not invalidate the suppression. The file format is one
// entry per line,
//
//	analyzer<TAB>path<TAB>message
//
// with '#' comments and blank lines ignored. Policy (enforced by
// TestBaselineEntriesJustified) is that every entry carries a
// justification comment on the line above it.
type Baseline struct {
	counts map[string]int
	order  []string
}

func baselineKey(analyzer, path, message string) string {
	return analyzer + "\t" + path + "\t" + message
}

// LoadBaseline reads the baseline at path; a missing file is an empty
// baseline, not an error.
func LoadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &Baseline{counts: map[string]int{}}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := ParseBaseline(f)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return b, nil
}

// ParseBaseline parses the baseline format, rejecting lines that are
// neither comments nor well-formed three-field entries.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{counts: map[string]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
			return nil, fmt.Errorf("line %d: want analyzer<TAB>path<TAB>message, got %q", lineNo, line)
		}
		key := baselineKey(parts[0], parts[1], parts[2])
		if b.counts[key] == 0 {
			b.order = append(b.order, key)
		}
		b.counts[key]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Len is the number of entries (counting duplicates).
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// Apply partitions diags into the findings not covered by the baseline
// (kept, still in sorted order) and the count of suppressed ones. Each
// entry suppresses one matching diagnostic; rel maps a diagnostic's
// filename to the slash-relative path the baseline uses. Apply consumes
// entries: call Stale afterwards to list the ones nothing matched.
func (b *Baseline) Apply(diags []Diagnostic, rel func(string) string) (kept []Diagnostic, suppressed int) {
	for _, d := range diags {
		key := baselineKey(d.Analyzer, rel(d.Pos.Filename), d.Message)
		if b.counts[key] > 0 {
			b.counts[key]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// Stale lists the entries no diagnostic consumed in a prior Apply:
// suppressions whose finding is gone and which should be deleted.
func (b *Baseline) Stale() []string {
	var out []string
	for _, key := range b.order {
		for i := 0; i < b.counts[key]; i++ {
			out = append(out, strings.ReplaceAll(key, "\t", " "))
		}
	}
	sort.Strings(out)
	return out
}

// FormatBaseline renders diags as a baseline file. Generated entries
// carry a TODO justification comment: the committer must replace it
// with the actual reason the finding is suppressed rather than fixed.
func FormatBaseline(diags []Diagnostic, rel func(string) string) []byte {
	var buf bytes.Buffer
	buf.WriteString("# cic-lint baseline — grandfathered findings, burned down explicitly.\n")
	buf.WriteString("# Format: analyzer<TAB>path<TAB>exact message. '#' comments and blank\n")
	buf.WriteString("# lines are ignored. Every entry must carry a justification comment on\n")
	buf.WriteString("# the line above it (enforced by internal/lint's baseline test).\n")
	buf.WriteString("# Regenerate with: go run ./cmd/cic-lint -update-baseline ./...\n")
	for _, d := range diags {
		buf.WriteString("\n# TODO(justify): why is this finding suppressed instead of fixed?\n")
		fmt.Fprintf(&buf, "%s\t%s\t%s\n", d.Analyzer, rel(d.Pos.Filename), d.Message)
	}
	return buf.Bytes()
}
