package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program layer under the flow-sensitive
// analyzers (hotpropagate, goroutineleak, lockdiscipline): a module-wide
// call graph built from the same go/ast + go/types information the
// per-package analyzers use. Nodes are declared functions and methods of
// the loaded packages; edges resolve
//
//   - static calls and method calls on concrete receivers directly,
//   - interface method calls conservatively, to every method of a
//     program type that implements the interface, and
//   - func-value calls conservatively, to every address-taken program
//     function whose signature matches the call site.
//
// Calls inside function literals are attributed to the enclosing
// declaration: the literal executes with (at worst) the obligations of
// the function that created it, which is the sound direction for every
// analyzer built on top. Standard-library callees have no node and no
// edges; the analyzers treat them by name/type where they matter.

// Program is the whole-module view handed to program-level analyzers:
// every loaded package plus the lazily built call graph.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	cg *CallGraph
}

// NewProgram wraps the loaded packages (they must share one FileSet, as
// Load guarantees).
func NewProgram(pkgs []*Package) *Program {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	return &Program{Fset: fset, Pkgs: pkgs}
}

// CallGraph builds (once) and returns the module call graph.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

// FuncNode is one declared function or method of the program.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Hot records a `//cic:hotpath` doc marker.
	Hot bool
	// AddrTaken records a reference outside call position (the function
	// is a candidate target of func-value calls).
	AddrTaken bool
	// Calls are the outgoing call sites, in source order.
	Calls []*CallSite
	// Callers are the incoming edges.
	Callers []*CallSite
}

// Name renders the node for diagnostics ("pkg.Func" / "pkg.(*T).Method").
func (n *FuncNode) Name() string {
	recv := funcSig(n.Obj).Recv()
	if recv == nil {
		return n.Pkg.Name + "." + n.Obj.Name()
	}
	t := recv.Type()
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		star = "*"
	}
	tn := "?"
	if named, ok := t.(*types.Named); ok {
		tn = named.Obj().Name()
	}
	return fmt.Sprintf("%s.(%s%s).%s", n.Pkg.Name, star, tn, n.Obj.Name())
}

// CallSite is one resolved call edge.
type CallSite struct {
	Caller *FuncNode
	Callee *FuncNode
	Pos    token.Pos
	// Dynamic marks interface-dispatch and func-value edges (the
	// conservative over-approximation), as opposed to static calls.
	Dynamic bool
}

// CallGraph indexes the program's functions and their call edges.
type CallGraph struct {
	// Nodes in deterministic (package, position) order.
	Nodes []*FuncNode

	byObj  map[*types.Func]*FuncNode
	byDecl map[*ast.FuncDecl]*FuncNode
}

// NodeOf resolves a *types.Func to its program node (nil for functions
// outside the loaded packages).
func (cg *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	if n := cg.byObj[fn]; n != nil {
		return n
	}
	return cg.byObj[fn.Origin()]
}

// NodeOfDecl resolves a declaration to its node.
func (cg *CallGraph) NodeOfDecl(d *ast.FuncDecl) *FuncNode { return cg.byDecl[d] }

func buildCallGraph(p *Program) *CallGraph {
	cg := &CallGraph{
		byObj:  map[*types.Func]*FuncNode{},
		byDecl: map[*ast.FuncDecl]*FuncNode{},
	}

	// Pass 1: nodes, plus the concrete named types used to resolve
	// interface dispatch.
	var named []types.Type
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if _, ok := tn.Type().Underlying().(*types.Interface); !ok {
					named = append(named, tn.Type())
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, Hot: isHotpath(fd)}
				cg.byObj[obj] = n
				cg.byDecl[fd] = n
				cg.Nodes = append(cg.Nodes, n)
			}
		}
	}
	sort.Slice(cg.Nodes, func(i, j int) bool { return cg.Nodes[i].Decl.Pos() < cg.Nodes[j].Decl.Pos() })

	// Pass 2: edges and address-taken marks.
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := cg.byDecl[fd]
				if caller == nil {
					continue
				}
				cg.resolveBody(pkg, caller, fd.Body, named)
			}
		}
	}
	for _, n := range cg.Nodes {
		for _, site := range n.Calls {
			site.Callee.Callers = append(site.Callee.Callers, site)
		}
	}
	return cg
}

// resolveBody records every call edge and address-taken reference inside
// one declaration body.
func (cg *CallGraph) resolveBody(pkg *Package, caller *FuncNode, body *ast.BlockStmt, named []types.Type) {
	callFuns := map[ast.Expr]bool{} // expressions in call-operator position
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	addEdge := func(callee *FuncNode, pos token.Pos, dynamic bool) {
		if callee == nil {
			return
		}
		caller.Calls = append(caller.Calls, &CallSite{Caller: caller, Callee: callee, Pos: pos, Dynamic: dynamic})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(x.Fun)
			// Conversions and builtins are not calls we track.
			if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
				return true
			}
			if id, ok := fun.(*ast.Ident); ok {
				if _, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
					return true
				}
			}
			if fn := calleeFunc(pkg.Info, x); fn != nil {
				if iface := ifaceRecv(fn); iface != nil {
					// Interface dispatch: edge to every implementing
					// program method with this name.
					for _, impl := range implementors(cg, named, iface, fn.Name()) {
						addEdge(impl, x.Pos(), true)
					}
					return true
				}
				addEdge(cg.NodeOf(fn), x.Pos(), false)
				return true
			}
			// Func-value call: edge to every address-taken or literal-free
			// candidate with an identical signature.
			if sig := callSignature(pkg.Info, fun); sig != nil {
				for _, cand := range cg.Nodes {
					if cand.AddrTaken && sameSignature(funcSig(cand.Obj), sig) {
						addEdge(cand, x.Pos(), true)
					}
				}
			}
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok && !callFuns[ast.Expr(x)] {
				if node := cg.NodeOf(fn); node != nil {
					node.AddrTaken = true
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok && !callFuns[ast.Expr(x)] {
				if node := cg.NodeOf(fn); node != nil {
					node.AddrTaken = true
				}
			}
		}
		return true
	})
}

// ifaceRecv returns the interface type a method is declared on, nil for
// concrete methods and plain functions.
func ifaceRecv(fn *types.Func) *types.Interface {
	recv := funcSig(fn).Recv()
	if recv == nil {
		return nil
	}
	iface, _ := recv.Type().Underlying().(*types.Interface)
	return iface
}

// implementors finds the program methods named name on types satisfying
// iface (through a value or pointer receiver).
func implementors(cg *CallGraph, named []types.Type, iface *types.Interface, name string) []*FuncNode {
	var out []*FuncNode
	for _, t := range named {
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		sel := types.NewMethodSet(pt).Lookup(nil, name)
		if sel == nil {
			// Unexported interface methods need the declaring package;
			// the nil-package lookup covers the exported ones, which is
			// every interface the analyzers care about.
			continue
		}
		if m, ok := sel.Obj().(*types.Func); ok {
			if node := cg.NodeOf(m); node != nil {
				out = append(out, node)
			}
		}
	}
	return out
}

// callSignature is the static function signature of a call-expression
// operand (nil when the operand is not func-typed).
func callSignature(info *types.Info, fun ast.Expr) *types.Signature {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// sameSignature compares parameter and result tuples, ignoring the
// receiver (a method value's signature drops it).
func sameSignature(a, b *types.Signature) bool {
	return types.Identical(dropRecv(a), dropRecv(b))
}

func dropRecv(s *types.Signature) *types.Signature {
	if s.Recv() == nil {
		return s
	}
	return types.NewSignatureType(nil, nil, nil, s.Params(), s.Results(), s.Variadic())
}

// Reachable computes the transitive closure from the given roots,
// skipping edges for which skip returns true. The returned map carries,
// for every reached node, the call path back to its root (the root maps
// to itself with an empty via).
type reachInfo struct {
	root *FuncNode
	via  *CallSite // first edge on the path root → ... → node (nil at roots)
	from *FuncNode // the node that reached this one
}

func (cg *CallGraph) reachableFrom(roots []*FuncNode, skip func(*CallSite) bool) map[*FuncNode]*reachInfo {
	reached := map[*FuncNode]*reachInfo{}
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if reached[r] == nil {
			reached[r] = &reachInfo{root: r}
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, site := range n.Calls {
			if skip != nil && skip(site) {
				continue
			}
			if reached[site.Callee] != nil {
				continue
			}
			reached[site.Callee] = &reachInfo{root: reached[n].root, via: site, from: n}
			queue = append(queue, site.Callee)
		}
	}
	return reached
}

// pathTo renders the call chain from a node's root down to it, for
// diagnostics ("a → b → c").
func pathTo(reached map[*FuncNode]*reachInfo, n *FuncNode) string {
	var parts []string
	for cur := n; cur != nil; {
		parts = append(parts, cur.Name())
		info := reached[cur]
		if info == nil || info.from == nil {
			break
		}
		cur = info.from
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " → ")
}

// funcSig is fn.Signature() spelled for the module's go1.22 language
// level (the method itself is a go1.23 addition).
func funcSig(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}
