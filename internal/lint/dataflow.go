package lint

import (
	"go/ast"
	"go/token"
)

// This file is the small intra-procedural dataflow helper under
// lockdiscipline: a linear, branch-aware walk over a function body that
// tracks an ordered set of facts (held locks) through statements. It is
// deliberately not a full CFG — statements are visited in source order,
// branches fork a copy of the state and merge by intersection, loops
// are entered once with a forked copy — which is exactly enough for the
// lock-shaped properties the analyzer checks and keeps the walk
// linear in the size of the body.

// flowState is the ordered fact set threaded through the walk. Facts
// are identified by string keys; order of acquisition is preserved.
type flowState struct {
	facts []flowFact
}

type flowFact struct {
	key string
	pos token.Pos
	// sticky facts (deferred unlocks) survive until function exit.
	sticky bool
}

func (s *flowState) clone() *flowState {
	return &flowState{facts: append([]flowFact(nil), s.facts...)}
}

func (s *flowState) add(key string, pos token.Pos) {
	s.facts = append(s.facts, flowFact{key: key, pos: pos})
}

// drop removes the most recently added non-sticky fact with the key.
func (s *flowState) drop(key string) {
	for i := len(s.facts) - 1; i >= 0; i-- {
		if s.facts[i].key == key && !s.facts[i].sticky {
			s.facts = append(s.facts[:i], s.facts[i+1:]...)
			return
		}
	}
}

// stick marks the most recent fact with the key as held to exit.
func (s *flowState) stick(key string) {
	for i := len(s.facts) - 1; i >= 0; i-- {
		if s.facts[i].key == key {
			s.facts[i].sticky = true
			return
		}
	}
}

func (s *flowState) has(key string) bool {
	for _, f := range s.facts {
		if f.key == key {
			return true
		}
	}
	return false
}

func (s *flowState) empty() bool { return len(s.facts) == 0 }

// keys returns the fact keys in acquisition order.
func (s *flowState) keys() []string {
	out := make([]string, len(s.facts))
	for i, f := range s.facts {
		out[i] = f.key
	}
	return out
}

// intersect keeps the facts present in both states, in s's order.
func (s *flowState) intersect(other *flowState) *flowState {
	merged := &flowState{}
	for _, f := range s.facts {
		if other.has(f.key) {
			merged.facts = append(merged.facts, f)
		}
	}
	return merged
}

// flowHooks are the walker's callbacks: apply mutates the state for a
// statement (lock/unlock), and visit observes a statement or expression
// with the current state (event checks).
type flowHooks struct {
	// stmt is called for every statement before descending, with the
	// live state. Returning false suppresses the default descent (the
	// hook handled children itself).
	stmt func(stmt ast.Stmt, st *flowState) bool
	// expr is called for expressions embedded in otherwise unhandled
	// statements.
	expr func(e ast.Expr, st *flowState)
}

// walkFlow drives the branch-aware walk over a statement list with the
// given entry state and returns the exit state.
func walkFlow(stmts []ast.Stmt, st *flowState, hooks *flowHooks) *flowState {
	for _, stmt := range stmts {
		st = flowStmt(stmt, st, hooks)
	}
	return st
}

func flowStmt(stmt ast.Stmt, st *flowState, hooks *flowHooks) *flowState {
	if hooks.stmt != nil && !hooks.stmt(stmt, st) {
		return st
	}
	switch x := stmt.(type) {
	case *ast.BlockStmt:
		return walkFlow(x.List, st, hooks)
	case *ast.LabeledStmt:
		return flowStmt(x.Stmt, st, hooks)
	case *ast.IfStmt:
		if x.Init != nil {
			st = flowStmt(x.Init, st, hooks)
		}
		flowExpr(x.Cond, st, hooks)
		entry := st.clone()
		bodyOut := walkFlow(x.Body.List, st.clone(), hooks)
		if x.Else != nil {
			elseOut := flowStmt(x.Else, entry.clone(), hooks)
			switch {
			case blockTerminates(x.Body):
				return elseOut
			case stmtTerminates(x.Else):
				return bodyOut
			default:
				return bodyOut.intersect(elseOut)
			}
		}
		if blockTerminates(x.Body) {
			return entry
		}
		return entry.intersect(bodyOut)
	case *ast.ForStmt:
		if x.Init != nil {
			st = flowStmt(x.Init, st, hooks)
		}
		flowExpr(x.Cond, st, hooks)
		walkFlow(x.Body.List, st.clone(), hooks)
		if x.Post != nil {
			flowStmt(x.Post, st.clone(), hooks)
		}
		return st
	case *ast.RangeStmt:
		flowExpr(x.X, st, hooks)
		walkFlow(x.Body.List, st.clone(), hooks)
		return st
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = flowStmt(x.Init, st, hooks)
		}
		flowExpr(x.Tag, st, hooks)
		for _, clause := range x.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				walkFlow(cc.Body, st.clone(), hooks)
			}
		}
		return st
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st = flowStmt(x.Init, st, hooks)
		}
		for _, clause := range x.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				walkFlow(cc.Body, st.clone(), hooks)
			}
		}
		return st
	case *ast.SelectStmt:
		for _, clause := range x.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				walkFlow(cc.Body, st.clone(), hooks)
			}
		}
		return st
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the current state.
		return st
	case *ast.DeferStmt:
		// Deferred work runs at exit; the stmt hook already saw it.
		return st
	default:
		if hooks.expr != nil {
			ast.Inspect(stmt, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if e, ok := n.(ast.Expr); ok {
					hooks.expr(e, st)
				}
				return true
			})
		}
		return st
	}
}

func flowExpr(e ast.Expr, st *flowState, hooks *flowHooks) {
	if e == nil || hooks.expr == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ex, ok := n.(ast.Expr); ok {
			hooks.expr(ex, st)
		}
		return true
	})
}

// blockTerminates reports whether a block's last statement leaves the
// function or the enclosing loop (return, branch, panic).
func blockTerminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(stmt ast.Stmt) bool {
	switch x := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return blockTerminates(x)
	case *ast.IfStmt:
		// Both arms must leave.
		if x.Else == nil {
			return false
		}
		return blockTerminates(x.Body) && stmtTerminates(x.Else)
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
