package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// HotPropagate extends the hot-path contract through the call graph:
// a function reachable from a `//cic:hotpath` root inherits the
// zero-allocation obligation even without its own annotation, so a hot
// loop cannot shed the contract by delegating to an unannotated helper.
// Reachability follows static call edges everywhere and dynamic
// (interface / func-value) edges into decode-path packages; an edge is
// cut when the call site carries a `//cic:alloc-ok` waiver — that is
// how a sanctioned per-packet allocation boundary (e.g. handing a
// decoded payload to the caller) is expressed. The analyzer also flags
// stale annotations: a `//cic:hotpath` comment not attached to a
// function declaration, and annotated unexported functions that nothing
// in the program calls.
var HotPropagate = &Analyzer{
	Name: "hotpropagate",
	Doc: "functions reachable from a //cic:hotpath root must satisfy the " +
		"hot-path allocation contract (annotate them, hoist the allocation, or " +
		"cut the call edge with //cic:alloc-ok); stale //cic:hotpath markers are reported",
	RunProgram: runHotPropagate,
}

func runHotPropagate(pass *ProgramPass) error {
	cg := pass.Prog.CallGraph()
	fset := pass.Prog.Fset

	// Waived source lines across the whole program, keyed by filename.
	waived := map[string]map[int]token.Pos{}
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			name := fset.Position(file.Pos()).Filename
			waived[name] = markerLines(fset, file, allocOKMarker)
		}
	}
	isWaived := func(pos token.Pos) bool {
		p := fset.Position(pos)
		_, ok := waived[p.Filename][p.Line]
		return ok
	}

	var roots []*FuncNode
	for _, n := range cg.Nodes {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	reached := cg.reachableFrom(roots, func(site *CallSite) bool {
		if isWaived(site.Pos) {
			return true
		}
		// Dynamic dispatch is followed only into decode-path packages:
		// sinks and observability implementations behind interfaces are
		// not on the zero-alloc contract.
		return site.Dynamic && !decodePathPkgs[site.Callee.Pkg.Name]
	})

	for _, n := range cg.Nodes {
		info, ok := reached[n]
		if !ok || n.Hot {
			continue
		}
		root := info.root
		path := pathTo(reached, n)
		scanAllocs(n.Pkg.Info, n.Decl, func(pos token.Pos, what string) {
			if isWaived(pos) {
				return
			}
			verb := what + "()"
			if what == "append" {
				verb = "append into non-arena slice"
			}
			pass.Reportf(pos, "%s in %s, which is reachable from //cic:hotpath root %s (%s): annotate it //cic:hotpath, hoist the allocation, or waive the call edge with //cic:alloc-ok",
				verb, n.Name(), root.Name(), path)
		})
	}

	reportStaleHotpathMarkers(pass, cg)
	return nil
}

// reportStaleHotpathMarkers flags //cic:hotpath comments that do not
// annotate anything: markers outside any function doc comment, and
// annotated unexported functions with no inbound call edges that are
// never address-taken (nothing in the loaded program — tests are not
// loaded — can reach them, so the contract is unenforced upstream).
func reportStaleHotpathMarkers(pass *ProgramPass, cg *CallGraph) {
	// Positions of comments that are part of a function's doc.
	inDoc := map[token.Pos]bool{}
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					inDoc[c.Pos()] = true
				}
			}
		}
	}
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cgrp := range file.Comments {
				for _, c := range cgrp.List {
					trimmed := strings.TrimSpace(c.Text)
					switch {
					case trimmed == hotpathMarker && !inDoc[c.Pos()]:
						pass.Reportf(c.Pos(), "stale //cic:hotpath marker: not attached to a function declaration, so no analyzer enforces it")
					case trimmed != hotpathMarker && strings.HasPrefix(trimmed, hotpathMarker+" "):
						// The marker only takes effect as the comment's entire
						// text; trailing words silently disable it.
						pass.Reportf(c.Pos(), "malformed //cic:hotpath marker: trailing text disables it — the marker must be the comment's entire text")
					}
				}
			}
		}
	}
	for _, n := range cg.Nodes {
		if !n.Hot || ast.IsExported(n.Obj.Name()) || n.AddrTaken || len(n.Callers) > 0 {
			continue
		}
		pass.Reportf(n.Decl.Pos(), "stale //cic:hotpath annotation on %s: no caller in the loaded program — remove the marker or wire the function into the pipeline", n.Name())
	}
}
