package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockDiscipline enforces two rules on the daemon's mutexes. First, a
// held mutex must not span a potentially blocking operation: a channel
// send or receive (outside a select with a default), a blocking select,
// blocking I/O, WaitGroup.Wait, time.Sleep, or a dynamic callback
// invocation — any of these under a lock couples the lock's hold time
// to peers the lock owner does not control. The check is whole-program:
// calling a function whose transitive (static) call tree contains a
// blocking operation counts as blocking at the call site. Second, the
// named struct-field locks in internal/server must be acquired in a
// consistent order across the package, so parked-session refactors
// cannot introduce lock-order inversions. `//cic:lock-ok` on the
// offending line waives a finding whose design is vouched for.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "no mutex held across channel operations, blocking I/O, WaitGroup.Wait, " +
		"time.Sleep, or callback invocations (transitively, via the call graph); " +
		"named server locks are acquired in a consistent order; waive with //cic:lock-ok",
	RunProgram: runLockDiscipline,
}

// lockPkgs are the packages whose lock usage is policed.
var lockPkgs = map[string]bool{
	"server":     true,
	"cluster":    true,
	"cic":        true,
	"obs":        true,
	"experiment": true,
}

const lockOKMarker = "//cic:lock-ok"

// blockKinds, in reporting priority order.
var blockKinds = []string{
	"channel send",
	"channel receive",
	"blocking select",
	"range over channel",
	"blocking I/O",
	"WaitGroup.Wait",
	"time.Sleep",
	"callback invocation",
}

// blockEvent is one way a function may block, with the position of the
// operation and a human-readable call path for transitive events.
type blockEvent struct {
	kind string
	pos  token.Pos
	path string // "" for direct events, "via a → b" for inherited ones
}

func runLockDiscipline(pass *ProgramPass) error {
	cg := pass.Prog.CallGraph()
	summaries := blockSummaries(pass.Prog, cg)

	var order *lockOrderGraph
	for _, pkg := range pass.Prog.Pkgs {
		if !lockPkgs[pkg.Name] {
			continue
		}
		if order == nil {
			order = newLockOrderGraph()
		}
		for _, file := range pkg.Files {
			waived := markerLines(pass.Prog.Fset, file, lockOKMarker)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockFlow(pass, pkg, cg, summaries, fd, waived, order)
			}
		}
	}
	if order != nil {
		order.reportCycles(pass)
	}
	return nil
}

// ---- whole-program blocking summaries -------------------------------

// blockSummaries computes, for every program function, the set of
// blocking operations its transitive static call tree may perform.
// Direct events come from the function's own body (goroutine and
// closure bodies excluded — they run on their own schedule); inherited
// events flow up static call edges to a fixpoint.
func blockSummaries(prog *Program, cg *CallGraph) map[*FuncNode]map[string]blockEvent {
	direct := make(map[*FuncNode]map[string]blockEvent, len(cg.Nodes))
	for _, n := range cg.Nodes {
		direct[n] = directBlockEvents(n)
	}
	sum := make(map[*FuncNode]map[string]blockEvent, len(cg.Nodes))
	for n, d := range direct {
		m := map[string]blockEvent{}
		for k, v := range d {
			m[k] = v
		}
		sum[n] = m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range cg.Nodes {
			for _, site := range n.Calls {
				if site.Dynamic {
					continue
				}
				for kind, ev := range sum[site.Callee] {
					if _, ok := sum[n][kind]; ok {
						continue
					}
					path := site.Callee.Name()
					if ev.path != "" {
						path += " " + ev.path
					}
					sum[n][kind] = blockEvent{kind: kind, pos: site.Pos, path: "via " + strings.TrimPrefix(path, "via ")}
					changed = true
				}
			}
		}
	}
	return sum
}

// directBlockEvents scans one function body for operations that may
// block the calling goroutine.
func directBlockEvents(n *FuncNode) map[string]blockEvent {
	events := map[string]blockEvent{}
	add := func(kind string, pos token.Pos) {
		if _, ok := events[kind]; !ok {
			events[kind] = blockEvent{kind: kind, pos: pos}
		}
	}
	info := n.Pkg.Info

	var scan func(node ast.Node)
	scan = func(node ast.Node) {
		ast.Inspect(node, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.SendStmt:
				add("channel send", x.Pos())
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					add("channel receive", x.Pos())
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						add("range over channel", x.Pos())
					}
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, clause := range x.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					add("blocking select", x.Pos())
				}
				// Comm clauses of a default-carrying select are
				// non-blocking; only the case bodies are rescanned.
				for _, clause := range x.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							scan(s)
						}
					}
				}
				return false
			case *ast.CallExpr:
				if kind := directCallBlockKind(info, x); kind != "" {
					add(kind, x.Pos())
				}
			}
			return true
		})
	}
	scan(n.Decl.Body)
	return events
}

// directCallBlockKind classifies one call expression as a direct
// blocking operation ("" when it is not one). Module-internal callees
// are handled by summary propagation, not here.
func directCallBlockKind(info *types.Info, call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return "" // conversion
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return ""
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		if callSignature(info, fun) != nil {
			return "callback invocation"
		}
		return ""
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case pkgPath == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case fn.Name() == "Wait" && recvIsNamed(fn, "sync", "WaitGroup"):
		return "WaitGroup.Wait"
	case pkgPath == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
		if len(call.Args) > 0 && !inMemoryIO(info, call.Args[0]) {
			return "blocking I/O"
		}
	case pkgPath == "io" || pkgPath == "io/ioutil":
		switch fn.Name() {
		case "Copy", "CopyN", "CopyBuffer", "WriteString", "ReadFull", "ReadAll", "ReadAtLeast":
			return "blocking I/O"
		}
	}
	// Method call with an I/O-shaped name on an I/O-carrying receiver
	// (interfaces like io.Writer / net.Conn, or concrete os/bufio/net
	// types) — in-memory buffers are exempt.
	if sel, ok := fun.(*ast.SelectorExpr); ok && blockingIOName(fn.Name()) {
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			if typeIsIOLike(tv.Type) && !inMemoryIO(info, sel.X) {
				return "blocking I/O"
			}
		}
	}
	return ""
}

func blockingIOName(name string) bool {
	switch name {
	case "Read", "Write", "Flush", "Accept", "ReadFrom", "WriteTo",
		"ReadByte", "ReadRune", "ReadString", "ReadBytes", "ReadFull",
		"WriteString", "WriteByte", "WriteRune", "Printf", "Sync":
		return true
	}
	return false
}

// inMemoryIO reports whether the expression's static type lives in
// bytes or strings (in-memory buffers never block).
func inMemoryIO(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	return pkg == "bytes" || pkg == "strings"
}

func recvIsNamed(fn *types.Func, pkgPath, typeName string) bool {
	recv := funcSig(fn).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName
}

// ---- per-function held-lock walk ------------------------------------

func checkLockFlow(pass *ProgramPass, pkg *Package, cg *CallGraph, summaries map[*FuncNode]map[string]blockEvent, fd *ast.FuncDecl, waived map[int]token.Pos, order *lockOrderGraph) {
	fset := pass.Prog.Fset
	info := pkg.Info
	recvObj := receiverObject(info, fd)

	isWaived := func(pos token.Pos) bool {
		_, ok := waived[fset.Position(pos).Line]
		return ok
	}
	heldDesc := func(st *flowState) string { return strings.Join(st.keys(), ", ") }

	reportEvent := func(pos token.Pos, st *flowState, kind, detail string) {
		if st.empty() || isWaived(pos) {
			return
		}
		msg := fmt.Sprintf("%s while holding %s", kind, heldDesc(st))
		if detail != "" {
			msg += " (" + detail + ")"
		}
		pass.Reportf(pos, "%s: release the lock first, or waive with //cic:lock-ok", msg)
	}

	// checkCall reports blocking behaviour of one call under held locks.
	checkCall := func(call *ast.CallExpr, st *flowState) {
		if st.empty() {
			return
		}
		if fn := calleeFunc(info, call); fn != nil {
			if node := cg.NodeOf(fn); node != nil {
				for _, kind := range blockKinds {
					if ev, ok := summaries[node][kind]; ok {
						detail := ev.path
						if detail == "" {
							detail = "in " + node.Name()
						}
						reportEvent(call.Pos(), st, "call to "+node.Name()+" that may perform a "+kind, detail)
						return // one finding per call site
					}
				}
				return
			}
		}
		if kind := directCallBlockKind(info, call); kind != "" {
			reportEvent(call.Pos(), st, kind, "")
		}
	}

	exprHook := func(e ast.Expr, st *flowState) {
		switch x := e.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				reportEvent(x.Pos(), st, "channel receive", "")
			}
		case *ast.CallExpr:
			if isLockCall(info, x) != "" {
				return // state transition, handled by the stmt hook
			}
			checkCall(x, st)
		}
	}

	stmtHook := func(stmt ast.Stmt, st *flowState) bool {
		switch x := stmt.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(x.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			switch isLockCall(info, call) {
			case "lock":
				id := lockIdent(info, call, recvObj, pkg, fd)
				for _, prev := range st.keys() {
					order.addEdge(prev, id, call.Pos())
				}
				st.add(id, call.Pos())
				return false
			case "unlock":
				st.drop(lockIdent(info, call, recvObj, pkg, fd))
				return false
			}
			return true
		case *ast.DeferStmt:
			// defer mu.Unlock() (directly or inside a literal) keeps the
			// lock held through every remaining statement.
			forEachDeferredCall(x, func(call *ast.CallExpr) {
				if isLockCall(info, call) == "unlock" {
					st.stick(lockIdent(info, call, recvObj, pkg, fd))
				}
			})
			return false
		case *ast.SendStmt:
			flowExprForSend(x, st, exprHook)
			reportEvent(x.Pos(), st, "channel send", "")
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range x.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				reportEvent(x.Pos(), st, "blocking select", "")
			}
			return true // clause bodies still walked (comm stmts are not)
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					reportEvent(x.Pos(), st, "range over channel", "")
				}
			}
			return true
		}
		return true
	}

	walkFlow(fd.Body.List, &flowState{}, &flowHooks{stmt: stmtHook, expr: exprHook})
}

// flowExprForSend runs the expression hook over a send's value (the
// channel operand is the operation itself).
func flowExprForSend(s *ast.SendStmt, st *flowState, hook func(ast.Expr, *flowState)) {
	ast.Inspect(s.Value, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			hook(e, st)
		}
		return true
	})
}

// forEachDeferredCall visits the deferred call and, when the deferred
// function is a literal, the calls inside it.
func forEachDeferredCall(d *ast.DeferStmt, fn func(*ast.CallExpr)) {
	fn(d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				fn(call)
			}
			return true
		})
	}
}

// isLockCall classifies a call as a mutex acquisition ("lock"), release
// ("unlock"), or neither ("").
func isLockCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var verdict string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		verdict = "lock"
	case "Unlock", "RUnlock":
		verdict = "unlock"
	default:
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if recvIsNamed(fn, "sync", "Mutex") || recvIsNamed(fn, "sync", "RWMutex") {
		return verdict
	}
	return ""
}

// lockIdent names the mutex a lock call operates on. Receiver-rooted
// field locks get a type-qualified name ("Server.mu") that is stable
// across functions — those participate in the acquisition-order graph;
// anything else is named locally to the enclosing function.
func lockIdent(info *types.Info, call *ast.CallExpr, recvObj types.Object, pkg *Package, fd *ast.FuncDecl) string {
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	target := ast.Unparen(sel.X) // the mutex expression (strip &)
	if u, ok := target.(*ast.UnaryExpr); ok && u.Op == token.AND {
		target = ast.Unparen(u.X)
	}
	if fieldSel, ok := target.(*ast.SelectorExpr); ok {
		if rootID, ok := ast.Unparen(rootExpr(fieldSel)).(*ast.Ident); ok && recvObj != nil && info.Uses[rootID] == recvObj {
			if tname := receiverTypeName(info, fd); tname != "" {
				return tname + "." + fieldSel.Sel.Name
			}
		}
	}
	return pkg.Name + "." + fd.Name.Name + ":" + types.ExprString(target)
}

// rootExpr walks selector/index chains down to the base expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return e
		}
	}
}

func receiverObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

func receiverTypeName(info *types.Info, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if se, ok := ast.Unparen(t).(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := ast.Unparen(t).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// ---- acquisition-order graph ----------------------------------------

type lockOrderGraph struct {
	// edges: first-acquired → acquired-while-held, with the position of
	// the first occurrence of each direction.
	edges map[string]map[string]token.Pos
}

func newLockOrderGraph() *lockOrderGraph {
	return &lockOrderGraph{edges: map[string]map[string]token.Pos{}}
}

func (g *lockOrderGraph) addEdge(from, to string, pos token.Pos) {
	if g == nil || from == to {
		return
	}
	// Only type-qualified ("Type.field") lock names are comparable
	// across functions.
	if strings.Contains(from, ":") || strings.Contains(to, ":") {
		return
	}
	if g.edges[from] == nil {
		g.edges[from] = map[string]token.Pos{}
	}
	if _, ok := g.edges[from][to]; !ok {
		g.edges[from][to] = pos
	}
}

// reportCycles flags every acquisition-order cycle (the classic ABBA
// deadlock shape and longer rings) at the position of each offending
// edge.
func (g *lockOrderGraph) reportCycles(pass *ProgramPass) {
	nodes := make([]string, 0, len(g.edges))
	for from := range g.edges {
		nodes = append(nodes, from)
	}
	sort.Strings(nodes)
	reported := map[string]bool{}
	for _, start := range nodes {
		// DFS for a path back to start.
		var path []string
		var dfs func(cur string) bool
		seen := map[string]bool{}
		dfs = func(cur string) bool {
			if cur == start && len(path) > 0 {
				return true
			}
			if seen[cur] {
				return false
			}
			seen[cur] = true
			next := make([]string, 0, len(g.edges[cur]))
			for to := range g.edges[cur] {
				next = append(next, to)
			}
			sort.Strings(next)
			for _, to := range next {
				path = append(path, to)
				if dfs(to) {
					return true
				}
				path = path[:len(path)-1]
			}
			return false
		}
		if !dfs(start) {
			continue
		}
		cycle := append([]string{start}, path...)
		key := canonicalCycle(cycle)
		if reported[key] {
			continue
		}
		reported[key] = true
		prev := start
		for _, to := range path {
			pos := g.edges[prev][to]
			pass.Reportf(pos, "inconsistent lock acquisition order: %s is acquired while holding %s here, closing the cycle %s — pick one global order",
				to, prev, strings.Join(cycle, " → "))
			prev = to
		}
	}
}

func canonicalCycle(cycle []string) string {
	// cycle arrives as start, n1, ..., start; drop the closing repeat so
	// the rotation is over the distinct ring, then rotate the smallest
	// name to the front, making the key independent of the DFS entry
	// point (with the repeat kept, [a b a] and [b a b] rotate apart and
	// the same cycle is reported once per entry point).
	if len(cycle) > 1 && cycle[0] == cycle[len(cycle)-1] {
		cycle = cycle[:len(cycle)-1]
	}
	min := 0
	for i, s := range cycle {
		if s < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string{}, cycle[min:]...), cycle[:min]...)
	return strings.Join(rotated, "→")
}
