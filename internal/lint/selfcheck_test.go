package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cic/internal/lint"
)

// TestModuleIsLintClean runs the full multichecker suite over the real
// module — the same analysis `make lint` (cmd/cic-lint ./...) performs —
// and asserts zero unsuppressed diagnostics. Reintroducing a panic on
// the decode path, an unguarded obs method, an unbounded wire
// allocation, a == sentinel comparison, a raw 64-bit atomic, a direct
// clock read in stage code, a leakable goroutine, a lock held across a
// channel op, or an escaping arena slice therefore fails `go test
// ./...`, not just `make lint`. Findings listed in the checked-in
// lint.baseline are suppressed exactly like the driver does; stale
// baseline entries fail too, so dead suppressions cannot accumulate.
func TestModuleIsLintClean(t *testing.T) {
	pkgs, err := lint.Load(".", "cic/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the cic/... pattern should cover the whole module", len(pkgs))
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	root := moduleRoot(t)
	base, err := lint.LoadBaseline(filepath.Join(root, "lint.baseline"))
	if err != nil {
		t.Fatalf("loading baseline: %v", err)
	}
	rel := func(filename string) string {
		if r, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(filename)
	}
	kept, _ := base.Apply(diags, rel)
	for _, d := range kept {
		t.Errorf("%s", d)
	}
	for _, stale := range base.Stale() {
		t.Errorf("stale lint.baseline entry (finding is gone — delete it): %s", stale)
	}
}

// TestBaselineEntriesJustified pins the baseline hygiene rule from
// docs/LINTING.md: the checked-in lint.baseline is either empty or
// every entry line is immediately preceded by a '#' justification
// comment (and no generated TODO placeholder survives a commit).
func TestBaselineEntriesJustified(t *testing.T) {
	root := moduleRoot(t)
	data, err := os.ReadFile(filepath.Join(root, "lint.baseline"))
	if err != nil {
		t.Fatalf("reading lint.baseline: %v", err)
	}
	if _, err := lint.ParseBaseline(strings.NewReader(string(data))); err != nil {
		t.Fatalf("parsing lint.baseline: %v", err)
	}
	lines := strings.Split(string(data), "\n")
	prevComment := false
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case line == "":
			prevComment = false
		case strings.HasPrefix(line, "#"):
			if strings.Contains(line, "TODO(justify)") {
				t.Errorf("lint.baseline:%d: placeholder justification left in place — explain why the finding is suppressed", i+1)
			}
			prevComment = true
		default:
			if !prevComment {
				t.Errorf("lint.baseline:%d: entry has no justification comment on the line above it", i+1)
			}
			prevComment = false
		}
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
