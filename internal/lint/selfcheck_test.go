package lint_test

import (
	"testing"

	"cic/internal/lint"
)

// TestModuleIsLintClean runs the full multichecker suite over the real
// module — the same analysis `make lint` (cmd/cic-lint ./...) performs —
// and asserts zero diagnostics. Reintroducing a panic on the decode
// path, an unguarded obs method, an unbounded wire allocation, a ==
// sentinel comparison, a raw 64-bit atomic, or a direct clock read in
// stage code therefore fails `go test ./...`, not just `make lint`.
func TestModuleIsLintClean(t *testing.T) {
	pkgs, err := lint.Load(".", "cic/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the cic/... pattern should cover the whole module", len(pkgs))
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
