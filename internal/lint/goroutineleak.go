package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak polices the long-lived daemon packages: every `go`
// statement in server, cic, and experiment code must be tied to a
// termination signal observable in the spawned body (or in the static
// functions it calls) — a context Done/Err check, a channel receive or
// select, a range over a (closable) channel, or an I/O call whose error
// exits the loop. Loop-free bodies terminate by construction and pass.
// The analyzer additionally flags two structural leak shapes: the
// abandoned rendezvous (a goroutine sending on an unbuffered local
// channel whose only receiver is a select that can take a different
// case — buffer the channel so the sender cannot block forever) and
// the abandoned pump (a goroutine ranging over a channel from a local
// resource whose Close/close is reached only on the fall-through path,
// so an early return strands the range forever — defer the release).
// `//cic:leak-ok` on the `go` line waives a finding the surrounding
// design already bounds.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc: "go statements in server/cic/experiment packages must have a " +
		"termination signal (ctx/done channel/closed queue/IO error exit) " +
		"observable in the goroutine body; unbuffered sends into an " +
		"abandonable select are flagged; waive with //cic:leak-ok",
	RunProgram: runGoroutineLeak,
}

// goroutinePkgs are the long-lived daemon packages whose goroutines the
// analyzer polices (fixture packages reuse these names to opt in).
var goroutinePkgs = map[string]bool{
	"server":     true,
	"cluster":    true,
	"cic":        true,
	"experiment": true,
	"main":       true,
}

const leakOKMarker = "//cic:leak-ok"

func runGoroutineLeak(pass *ProgramPass) error {
	cg := pass.Prog.CallGraph()
	fset := pass.Prog.Fset
	memo := map[*FuncNode]leakVerdict{}

	for _, pkg := range pass.Prog.Pkgs {
		if !goroutinePkgs[pkg.Name] {
			continue
		}
		for _, file := range pkg.Files {
			waived := markerLines(fset, file, leakOKMarker)
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.GoStmt:
					if _, ok := waived[fset.Position(x.Pos()).Line]; ok {
						return true
					}
					checkGoStmt(pass, pkg, cg, memo, x)
				case *ast.FuncDecl:
					if x.Body != nil {
						checkAbandonedRendezvous(pass, pkg, x.Body, waived)
						checkAbandonedPump(pass, pkg, x.Body, waived)
					}
				}
				return true
			})
		}
	}
	return nil
}

// leakVerdict is the memoized analysis of one function: whether it (or
// a static callee) contains an unbounded loop with no termination
// evidence, and where.
type leakVerdict struct {
	suspicious bool
	pos        token.Pos
	why        string
}

func checkGoStmt(pass *ProgramPass, pkg *Package, cg *CallGraph, memo map[*FuncNode]leakVerdict, g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		v := suspiciousBody(pkg, lit.Body, cg, memo, map[*FuncNode]bool{})
		if v.suspicious {
			pass.Reportf(g.Pos(), "goroutine has no termination signal: %s — tie it to ctx.Done(), a done channel, a closed work queue, or waive with //cic:leak-ok", v.why)
		}
		return
	}
	fn := calleeFunc(pkg.Info, g.Call)
	if fn == nil {
		// Dynamic entry (func value / interface method): the body is
		// invisible, so termination cannot be verified here.
		pass.Reportf(g.Pos(), "goroutine entry is a dynamic call, so its termination signal cannot be verified: spawn a named function, or waive with //cic:leak-ok")
		return
	}
	node := cg.NodeOf(fn)
	if node == nil {
		// Standard-library entries (e.g. go srv.Serve) are outside the
		// program; trust them.
		return
	}
	v := nodeVerdict(node, cg, memo)
	if v.suspicious {
		pass.Reportf(g.Pos(), "goroutine running %s has no termination signal: %s — tie it to ctx.Done(), a done channel, a closed work queue, or waive with //cic:leak-ok", node.Name(), v.why)
	}
}

func nodeVerdict(n *FuncNode, cg *CallGraph, memo map[*FuncNode]leakVerdict) leakVerdict {
	if v, ok := memo[n]; ok {
		return v
	}
	// Optimistic placeholder breaks call cycles.
	memo[n] = leakVerdict{}
	v := suspiciousBody(n.Pkg, n.Decl.Body, cg, memo, map[*FuncNode]bool{n: true})
	memo[n] = v
	return v
}

// suspiciousBody scans one body for unbounded loops without termination
// evidence, descending into static callees (the loop may live in a
// helper the goroutine entry delegates to).
func suspiciousBody(pkg *Package, body *ast.BlockStmt, cg *CallGraph, memo map[*FuncNode]leakVerdict, onPath map[*FuncNode]bool) leakVerdict {
	var verdict leakVerdict
	ast.Inspect(body, func(n ast.Node) bool {
		if verdict.suspicious {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			// A nested literal runs on its own schedule; its loops are
			// judged when (if) it is spawned or invoked.
			return false
		case *ast.ForStmt:
			if x.Cond == nil && !loopHasTerminationEvidence(pkg, x.Body) {
				verdict = leakVerdict{suspicious: true, pos: x.Pos(), why: "spins in an unbounded for-loop with no exit statement and no select/receive/ctx signal"}
				return false
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pkg.Info, x); fn != nil {
				if callee := cg.NodeOf(fn); callee != nil && !onPath[callee] {
					onPath[callee] = true
					if v := nodeVerdict(callee, cg, memo); v.suspicious {
						verdict = leakVerdict{suspicious: true, pos: x.Pos(), why: "calls " + callee.Name() + ", which " + v.why}
						return false
					}
				}
			}
		}
		return true
	})
	return verdict
}

// loopHasTerminationEvidence reports whether an unbounded loop body
// contains a way out: an external signal (a select, a channel receive,
// a range over a channel, a context Done/Err call) or any exit
// statement (return/break — the shape of I/O pump loops that leave on
// error and of CAS/retry loops that terminate by local computation).
// Only loops with neither — run-forever bodies with no escape — are the
// leak class.
func loopHasTerminationEvidence(pkg *Package, body *ast.BlockStmt) bool {
	var (
		hasSignal bool // select / receive / chan range / ctx call
		hasExit   bool // return or break
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			hasSignal = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				hasSignal = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if _, ok := tv.Type.Underlying().(*types.Chan); ok {
					hasSignal = true
				}
			}
		case *ast.ReturnStmt:
			hasExit = true
		case *ast.BranchStmt:
			if x.Tok == token.BREAK {
				hasExit = true
			}
		case *ast.CallExpr:
			if isCtxSignalCall(pkg.Info, x) {
				hasSignal = true
			}
		}
		return true
	})
	return hasSignal || hasExit
}

// isCtxSignalCall matches ctx.Done() / ctx.Err() on context.Context.
func isCtxSignalCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func typeIsIOLike(t types.Type) bool {
	hasIOMethod := func(t types.Type) bool {
		ms := types.NewMethodSet(t)
		for _, name := range []string{"Read", "Write", "Accept"} {
			if ms.Lookup(nil, name) != nil {
				return true
			}
		}
		return false
	}
	if hasIOMethod(t) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return hasIOMethod(types.NewPointer(t))
	}
	return false
}

// checkAbandonedRendezvous flags the leak-by-rendezvous shape inside
// one declaration: a local unbuffered channel, a goroutine that sends
// on it, and a receiving select that can take another case and abandon
// the sender forever. Buffering the channel (capacity 1) makes the
// send non-blocking and the goroutine always terminates.
func checkAbandonedRendezvous(pass *ProgramPass, pkg *Package, body *ast.BlockStmt, waived map[int]token.Pos) {
	fset := pass.Prog.Fset
	unbuffered := map[types.Object]bool{}
	goSends := map[types.Object]token.Pos{}

	chanObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[id]
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rh := range x.Rhs {
				call, ok := ast.Unparen(rh).(*ast.CallExpr)
				if !ok || len(call.Args) != 1 || i >= len(x.Lhs) {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					continue
				}
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
					continue
				}
				if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						if obj := chanObj(x.Lhs[i]); obj != nil {
							unbuffered[obj] = true
						}
					}
				}
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if send, ok := m.(*ast.SendStmt); ok {
						if obj := chanObj(send.Chan); obj != nil && unbuffered[obj] {
							goSends[obj] = send.Pos()
						}
					}
					return true
				})
			}
		case *ast.SelectStmt:
			if len(x.Body.List) < 2 {
				return true
			}
			for _, clause := range x.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue
				}
				recv := receivedChan(comm.Comm)
				if recv == nil {
					continue
				}
				obj := chanObj(recv)
				if obj == nil || !unbuffered[obj] {
					continue
				}
				sendPos, ok := goSends[obj]
				if !ok {
					continue
				}
				if _, w := waived[fset.Position(sendPos).Line]; w {
					continue
				}
				pass.Reportf(sendPos, "send on unbuffered channel %s can leak this goroutine: the receiving select has another case and may abandon the rendezvous — make the channel capacity 1, or waive with //cic:leak-ok", obj.Name())
			}
		}
		return true
	})
}

// checkAbandonedPump flags the abandoned-pump shape inside one
// declaration: a goroutine ranging over a channel rooted in a local
// resource (`for p := range gw.Packets()` or `for v := range ch`),
// where the release that would end the range (`gw.Close()` /
// `close(ch)`) is written only on the fall-through path — not
// deferred — and a return statement sits between the spawn and the
// release. Any of those early returns strands the pump on its range
// forever. Deferring the release fixes every exit path at once.
func checkAbandonedPump(pass *ProgramPass, pkg *Package, body *ast.BlockStmt, waived map[int]token.Pos) {
	fset := pass.Prog.Fset

	// localRoot resolves the ranged expression to the local variable
	// owning the channel: the receiver of the producing method call, or
	// the channel variable itself. Variables declared outside the body
	// (parameters, receivers, globals) are skipped — their lifecycle is
	// the caller's contract, not this function's.
	localRoot := func(e ast.Expr) types.Object {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.CallExpr:
				e = x.Fun
			case *ast.SelectorExpr:
				e = x.X
			case *ast.Ident:
				obj := pkg.Info.Uses[x]
				if obj == nil {
					obj = pkg.Info.Defs[x]
				}
				if v, ok := obj.(*types.Var); ok && v.Pos() >= body.Pos() && v.Pos() < body.End() {
					return v
				}
				return nil
			default:
				return nil
			}
		}
	}

	// releasesOf finds the resource's release calls in the body:
	// `obj.Close()` or `close(obj)`. Deferred ones end every path;
	// plain ones only end the path they sit on.
	isRelease := func(call *ast.CallExpr, obj types.Object) bool {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name == "Close" && localRoot(fun.X) == obj
		case *ast.Ident:
			if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" && len(call.Args) == 1 {
				return localRoot(call.Args[0]) == obj
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		var resource types.Object
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if resource != nil {
				return false
			}
			rng, ok := m.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if tv, ok := pkg.Info.Types[rng.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					resource = localRoot(rng.X)
				}
			}
			return true
		})
		if resource == nil {
			return true
		}
		if _, ok := waived[fset.Position(g.Pos()).Line]; ok {
			return true
		}

		var (
			deferred     bool
			firstRelease token.Pos
		)
		collectReleases(body, resource, isRelease, &deferred, &firstRelease)
		if deferred || !firstRelease.IsValid() {
			// Deferred release covers every path; no release at all means
			// the channel's lifecycle lives elsewhere — out of scope.
			return true
		}
		if returnBetween(body, g.End(), firstRelease) {
			pass.Reportf(g.Pos(), "pump goroutine ranging over a channel from %s can be abandoned: %s is released only on the fall-through path and an earlier return skips it — defer the Close/close so every exit path ends the pump, or waive with //cic:leak-ok", resource.Name(), resource.Name())
		}
		return true
	})
}

// collectReleases records whether the resource has a deferred release
// and the position of its first plain (non-deferred) release. Releases
// inside function literals run on another schedule and do not count.
func collectReleases(body *ast.BlockStmt, obj types.Object, isRelease func(*ast.CallExpr, types.Object) bool, deferred *bool, first *token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if isRelease(x.Call, obj) {
				*deferred = true
			}
			return false
		case *ast.CallExpr:
			if isRelease(x, obj) && (!first.IsValid() || x.Pos() < *first) {
				*first = x.Pos()
			}
		}
		return true
	})
}

// returnBetween reports whether a return statement (of the enclosing
// function — literals are skipped) sits in the (lo, hi) position range.
func returnBetween(body *ast.BlockStmt, lo, hi token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if x.Pos() > lo && x.Pos() < hi {
				found = true
			}
		}
		return true
	})
	return found
}

// receivedChan extracts the channel expression a comm clause receives
// from (`<-ch`, `v := <-ch`, `v, ok := <-ch`), nil for send clauses.
func receivedChan(stmt ast.Stmt) ast.Expr {
	var expr ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(expr).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}
