package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package: syntax plus type
// information, everything an Analyzer needs.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns, resolved relative
// to dir. It shells out to `go list -export -deps -json`, which compiles
// (or reuses cached) export data for every dependency, then parses and
// type-checks only the matched packages from source — the same division
// of labour as golang.org/x/tools/go/packages in LoadAllSyntax-for-roots
// mode, but built on the standard library's gc importer. Test files are
// not loaded: the analyzers police the shipped library and binaries.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue // nothing but test files; analyzers skip those
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the source loader does not support", p.ImportPath)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Name:  tpkg.Name(),
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
