package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked target package: syntax plus type
// information, everything an Analyzer needs.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// LoadOptions configures Load's parallelism.
type LoadOptions struct {
	// Workers is the number of concurrent type-checking workers; 0 means
	// GOMAXPROCS. Results are deterministic regardless of the count.
	Workers int
}

// Load type-checks the packages matched by patterns, resolved relative
// to dir, with default options.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadWith(LoadOptions{}, dir, patterns...)
}

// LoadWith type-checks the packages matched by patterns, resolved
// relative to dir. It shells out to one `go list -export -deps -json`
// invocation, then parses and type-checks every in-module package in the
// dependency closure from source — standard-library dependencies come
// from compiled export data. Checking module dependencies from source
// (rather than export data) makes type objects identical across
// packages, which the whole-program call graph requires to resolve
// cross-package calls. Packages are checked concurrently along the
// dependency DAG; the shared FileSet and importer are safe for that.
// Test files are not loaded: the analyzers police the shipped library
// and binaries. Only the pattern-matched packages are returned.
func LoadWith(opts LoadOptions, dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Imports,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := map[string]string{}
	var module []listPackage // in-module closure, dependency order
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard {
			continue
		}
		if len(p.GoFiles) == 0 {
			continue // nothing but test files; analyzers skip those
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the source loader does not support", p.ImportPath)
		}
		module = append(module, p)
	}

	fset := token.NewFileSet()
	imp := &hybridImporter{
		src: map[string]*types.Package{},
		exp: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	checked, err := checkDAG(opts, fset, imp, module)
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	for _, p := range module {
		if p.DepOnly {
			continue
		}
		pkgs = append(pkgs, checked[p.ImportPath])
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// hybridImporter resolves in-module imports to the source-checked
// package (identical type objects program-wide) and everything else
// through gc export data. Safe for concurrent use.
type hybridImporter struct {
	mu  sync.Mutex
	src map[string]*types.Package
	exp types.Importer
}

func (h *hybridImporter) Import(path string) (*types.Package, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.src[path]; ok {
		return p, nil
	}
	return h.exp.Import(path)
}

func (h *hybridImporter) provide(path string, pkg *types.Package) {
	h.mu.Lock()
	h.src[path] = pkg
	h.mu.Unlock()
}

// checkDAG parses and type-checks the module packages concurrently in
// dependency order: a package is eligible once all its in-module
// imports are checked. Workers share the FileSet (its methods are
// synchronized) and the hybrid importer.
func checkDAG(opts LoadOptions, fset *token.FileSet, imp *hybridImporter, module []listPackage) (map[string]*Package, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(module) {
		workers = len(module)
	}

	inModule := map[string]*listPackage{}
	for i := range module {
		inModule[module[i].ImportPath] = &module[i]
	}
	waiting := map[string]int{}         // path → unchecked in-module imports
	dependents := map[string][]string{} // dep path → importers
	ready := make(chan *listPackage, len(module))
	for i := range module {
		p := &module[i]
		n := 0
		for _, dep := range p.Imports {
			if _, ok := inModule[dep]; ok {
				n++
				dependents[dep] = append(dependents[dep], p.ImportPath)
			}
		}
		waiting[p.ImportPath] = n
		if n == 0 {
			ready <- p
		}
	}

	var (
		mu       sync.Mutex
		firstErr error
		checked  = map[string]*Package{}
		done     = make(chan struct{})
		wg       sync.WaitGroup
	)
	release := func(path string) {
		// Caller holds mu.
		for _, dep := range dependents[path] {
			waiting[dep]--
			if waiting[dep] == 0 {
				ready <- inModule[dep]
			}
		}
		if len(checked) == len(inModule) && firstErr == nil {
			close(done)
		}
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			close(done)
		}
		mu.Unlock()
	}

	if len(module) == 0 {
		return checked, nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case p := <-ready:
					pkg, err := checkOne(fset, imp, p)
					if err != nil {
						fail(err)
						return
					}
					imp.provide(p.ImportPath, pkg.Types)
					mu.Lock()
					checked[p.ImportPath] = pkg
					release(p.ImportPath)
					mu.Unlock()
				}
			}
		}()
	}
	<-done
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return checked, nil
}

// checkOne parses and type-checks a single package from source.
func checkOne(fset *token.FileSet, imp types.Importer, p *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		Path:  p.ImportPath,
		Name:  tpkg.Name(),
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
