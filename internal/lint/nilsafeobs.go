package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsHandleTypes are the internal/obs metric handle types whose nil
// value is the documented "observability disabled" fast path: a nil
// *Registry hands out nil handles, and every operation on a nil handle
// must be a no-op that never dereferences, reads the clock, or
// allocates. The instrumented hot paths rely on this costing exactly
// one pointer-nil test.
var obsHandleTypes = map[string]bool{
	"Counter":        true,
	"Gauge":          true,
	"Histogram":      true,
	"Registry":       true,
	"CounterVec":     true,
	"GaugeVec":       true,
	"HistogramVec":   true,
	"FlightRecorder": true,
	"FlightScope":    true,
}

// NilSafeObs checks that every exported pointer-receiver method on an
// obs handle type guards the nil receiver before touching receiver
// state. Two receiver uses are allowed before (or without) the guard:
// comparing the receiver against nil, and delegating to another method
// of the same handle (which performs its own guard) — e.g.
// Counter.Inc's body `c.Add(1)`.
var NilSafeObs = &Analyzer{
	Name: "nilsafeobs",
	Doc: "exported methods on internal/obs handle types must be nil-receiver safe: " +
		"guard `if x == nil` (or delegate to a guarded method) before using receiver state, " +
		"so disabled observability stays a free no-op",
	Run: runNilSafeObs,
}

func runNilSafeObs(pass *Pass) error {
	if pass.Pkg.Name() != "obs" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recvType, recvObj := recvInfo(pass.Info, fn)
			if recvType == "" || !obsHandleTypes[recvType] {
				continue
			}
			if recvObj == nil {
				continue // unnamed receiver: trivially nil-safe
			}
			checkNilGuarded(pass, fn, recvType, recvObj)
		}
	}
	return nil
}

// recvInfo returns the named type of a pointer receiver (or "" for
// value receivers and non-obs shapes) plus the receiver variable.
func recvInfo(info *types.Info, fn *ast.FuncDecl) (string, types.Object) {
	if len(fn.Recv.List) != 1 {
		return "", nil
	}
	field := fn.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", nil // value receiver: a copy, nil cannot reach it
	}
	id, ok := ast.Unparen(star.X).(*ast.Ident)
	if !ok {
		return "", nil
	}
	var obj types.Object
	if len(field.Names) == 1 {
		obj = info.Defs[field.Names[0]]
	}
	return id.Name, obj
}

// checkNilGuarded walks the method body's top-level statements in
// order: statements before the nil guard may not use the receiver
// except for nil comparisons and method-call delegation; once a guard
// statement is seen, anything goes.
func checkNilGuarded(pass *Pass, fn *ast.FuncDecl, recvType string, recvObj types.Object) {
	for _, stmt := range fn.Body.List {
		if isNilGuard(pass.Info, stmt, recvObj) {
			return
		}
		if pos, found := rawReceiverUse(pass.Info, stmt, recvObj); found {
			pass.Reportf(pos, "exported obs handle method (*%s).%s uses the receiver before a nil guard: nil handles must be free no-ops", recvType, fn.Name.Name)
			return
		}
	}
	// No guard and no raw use: the method only delegates (or ignores
	// the receiver), which is nil-safe.
}

// isNilGuard reports whether stmt is `if recv == nil { ... return }`
// (possibly `recv == nil || more...`) with a body that bails out.
func isNilGuard(info *types.Info, stmt ast.Stmt, recvObj types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || len(ifs.Body.List) == 0 {
		return false
	}
	if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	return condHasNilCheck(info, ifs.Cond, recvObj)
}

func condHasNilCheck(info *types.Info, cond ast.Expr, recvObj types.Object) bool {
	switch x := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if x.Op == token.LOR {
			return condHasNilCheck(info, x.X, recvObj) || condHasNilCheck(info, x.Y, recvObj)
		}
		if x.Op != token.EQL {
			return false
		}
		return isRecvNilCompare(info, x, recvObj)
	}
	return false
}

func isRecvNilCompare(info *types.Info, bin *ast.BinaryExpr, recvObj types.Object) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == recvObj
	}
	isNil := func(e ast.Expr) bool { return info.Types[e].IsNil() }
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}

// rawReceiverUse finds the first use of the receiver inside stmt that
// is neither a nil comparison nor the receiver position of a method
// call (delegation to a method that does its own guard).
func rawReceiverUse(info *types.Info, stmt ast.Stmt, recvObj types.Object) (token.Pos, bool) {
	allowed := map[*ast.Ident]bool{}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == recvObj {
					if _, isMethod := info.Uses[sel.Sel].(*types.Func); isMethod {
						allowed[id] = true
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				for _, side := range []ast.Expr{x.X, x.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok && info.Uses[id] == recvObj {
						allowed[id] = true
					}
				}
			}
		}
		return true
	})
	var pos token.Pos
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == recvObj && !allowed[id] {
			pos, found = id.Pos(), true
		}
		return !found
	})
	return pos, found
}
