package lint_test

import (
	"go/token"
	"strings"
	"testing"

	"cic/internal/lint"
)

func diag(analyzer, file string, line int, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func TestBaselineApplySuppressesAndReportsStale(t *testing.T) {
	src := strings.Join([]string{
		"# header",
		"",
		"# grandfathered until the pump refactor lands",
		"goroutineleak\tinternal/server/server.go\tgoroutine has no termination signal",
		"# duplicate finding, two sites with the same message",
		"hotalloc\tinternal/rx/packet.go\tmake() in hot-path function demod",
		"hotalloc\tinternal/rx/packet.go\tmake() in hot-path function demod",
		"# this finding no longer exists",
		"lockdiscipline\tgateway.go\tchannel send while holding Gateway.wmu",
	}, "\n")
	b, err := lint.ParseBaseline(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}

	diags := []lint.Diagnostic{
		diag("goroutineleak", "/abs/internal/server/server.go", 10, "goroutine has no termination signal"),
		diag("hotalloc", "/abs/internal/rx/packet.go", 20, "make() in hot-path function demod"),
		diag("hotalloc", "/abs/internal/rx/packet.go", 99, "make() in hot-path function demod"),
		diag("hotalloc", "/abs/internal/rx/packet.go", 120, "make() in hot-path function demod"), // third site: not covered
		diag("nopanic", "/abs/internal/dsp/fft.go", 5, "panic on the decode path"),
	}
	rel := func(f string) string { return strings.TrimPrefix(f, "/abs/") }
	kept, suppressed := b.Apply(diags, rel)
	if suppressed != 3 {
		t.Errorf("suppressed = %d, want 3", suppressed)
	}
	if len(kept) != 2 {
		t.Fatalf("kept = %d findings (%v), want 2", len(kept), kept)
	}
	if kept[0].Analyzer != "hotalloc" || kept[0].Pos.Line != 120 {
		t.Errorf("kept[0] = %s, want the uncovered third hotalloc site", kept[0])
	}
	if kept[1].Analyzer != "nopanic" {
		t.Errorf("kept[1] = %s, want the nopanic finding", kept[1])
	}
	stale := b.Stale()
	if len(stale) != 1 || !strings.Contains(stale[0], "lockdiscipline") {
		t.Errorf("Stale() = %v, want exactly the lockdiscipline entry", stale)
	}
}

func TestBaselineRejectsMalformedLines(t *testing.T) {
	for _, src := range []string{
		"analyzer only",
		"two\tfields",
		"\tpath\tmessage",
	} {
		if _, err := lint.ParseBaseline(strings.NewReader(src)); err == nil {
			t.Errorf("ParseBaseline(%q): want error, got nil", src)
		}
	}
}

func TestBaselineFormatRoundTrips(t *testing.T) {
	diags := []lint.Diagnostic{
		diag("arenaescape", "/abs/internal/rx/packet.go", 7, "arena-rooted slice sent over a channel from emit"),
		diag("goroutineleak", "/abs/gateway.go", 3, "goroutine entry is a dynamic call, so its termination signal cannot be verified"),
	}
	rel := func(f string) string { return strings.TrimPrefix(f, "/abs/") }
	formatted := lint.FormatBaseline(diags, rel)
	b, err := lint.ParseBaseline(strings.NewReader(string(formatted)))
	if err != nil {
		t.Fatalf("parsing formatted baseline: %v\n%s", err, formatted)
	}
	if b.Len() != len(diags) {
		t.Fatalf("round-trip kept %d entries, want %d", b.Len(), len(diags))
	}
	kept, suppressed := b.Apply(diags, rel)
	if len(kept) != 0 || suppressed != len(diags) {
		t.Errorf("round-tripped baseline suppressed %d/%d, kept %v", suppressed, len(diags), kept)
	}
	if !strings.Contains(string(formatted), "TODO(justify)") {
		t.Errorf("generated baseline should carry TODO justification placeholders:\n%s", formatted)
	}
}

func TestLoadBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := lint.LoadBaseline(t.TempDir() + "/nope.baseline")
	if err != nil {
		t.Fatalf("missing baseline should not error: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("missing baseline Len = %d, want 0", b.Len())
	}
}
