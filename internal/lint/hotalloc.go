package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-steady-state-allocation contract on the
// decode hot path: inside any function whose doc comment carries a
// `//cic:hotpath` marker, calls to make() and new() are flagged, and
// append() is flagged unless its destination is arena-rooted — derived
// from a struct field, a function parameter, or a callee's return value
// (the dst-reuse idiom: scratch owned by the struct or handed in by the
// caller may grow once at warm-up and is then reused). A `//cic:alloc-ok`
// comment on the same line waives one sanctioned allocation (e.g. a
// result that genuinely escapes to the caller). docs/PERFORMANCE.md
// describes the arena ownership rules; docs/LINTING.md catalogues the
// invariant.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions marked //cic:hotpath must not allocate: no make/new, and " +
		"append only into arena-rooted (field/parameter/callee-returned) slices; " +
		"waive single lines with //cic:alloc-ok",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		waived := allocOKLines(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotAlloc(pass, fn, waived)
		}
	}
	return nil
}

// isHotpath reports whether the function's doc comment contains a
// `//cic:hotpath` marker line.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == "//cic:hotpath" {
			return true
		}
	}
	return false
}

// allocOKLines collects the source lines carrying a `//cic:alloc-ok`
// waiver comment (trailing text after the marker is free-form rationale).
func allocOKLines(pass *Pass, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//cic:alloc-ok") {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func checkHotAlloc(pass *Pass, fn *ast.FuncDecl, waived map[int]bool) {
	rooted := arenaRootedVars(pass, fn)
	report := func(pos token.Pos, format string, args ...any) {
		if waived[pass.Fset.Position(pos).Line] {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		b, ok := pass.Info.Uses[id].(*types.Builtin)
		if !ok {
			return true
		}
		switch b.Name() {
		case "make":
			report(call.Pos(), "make() in hot-path function %s: allocate scratch at construction and reuse it, or waive with //cic:alloc-ok", fn.Name.Name)
		case "new":
			report(call.Pos(), "new() in hot-path function %s: reuse construction-time scratch, or waive with //cic:alloc-ok", fn.Name.Name)
		case "append":
			if len(call.Args) == 0 {
				return true
			}
			if !arenaRooted(pass, call.Args[0], rooted) {
				report(call.Pos(), "append into non-arena slice in hot-path function %s: grow caller-provided or struct-field scratch instead, or waive with //cic:alloc-ok", fn.Name.Name)
			}
		}
		return true
	})
}

// arenaRooted reports whether the expression's storage root is an arena:
// a struct field (selector), a non-builtin call result (callees return
// their own scratch), or a local/parameter in the rooted set. Slice and
// index expressions delegate to their operand.
func arenaRooted(pass *Pass, e ast.Expr, rooted map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			return true
		case *ast.CallExpr:
			// Builtins: append inherits its destination's rootedness,
			// make/new (and everything else returning fresh values) do not
			// root anything. Non-builtin calls may legitimately return
			// reusable scratch, so they count as arenas.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
					if b.Name() == "append" && len(x.Args) > 0 {
						e = x.Args[0]
						continue
					}
					return false
				}
			}
			return true
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			return obj != nil && rooted[obj]
		default:
			return false
		}
	}
}

// arenaRootedVars computes (to a fixpoint, flow-insensitively) the
// variables inside fn whose storage is arena-rooted: the receiver and
// parameters seed the set, and any variable assigned from an arena-rooted
// expression joins it. `cands := dm.candBuf[:0]` therefore roots cands,
// while `var cands []T` or `cands := make([]T, 0)` does not.
func arenaRootedVars(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	rooted := map[types.Object]bool{}
	seed := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					rooted[obj] = true
				}
			}
		}
	}
	seed(fn.Recv)
	seed(fn.Type.Params)

	lhsObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		mark := func(obj types.Object) {
			if obj != nil && !rooted[obj] {
				rooted[obj] = true
				changed = true
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lh := range x.Lhs {
					if i < len(x.Rhs) && arenaRooted(pass, x.Rhs[i], rooted) {
						mark(lhsObj(lh))
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) && arenaRooted(pass, x.Values[i], rooted) {
						mark(pass.Info.Defs[name])
					}
				}
			}
			return true
		})
	}
	return rooted
}
