package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-steady-state-allocation contract on the
// decode hot path: inside any function whose doc comment carries a
// `//cic:hotpath` marker, calls to make() and new() are flagged, and
// append() is flagged unless its destination is arena-rooted — derived
// from a struct field, a function parameter, or a callee's return value
// (the dst-reuse idiom: scratch owned by the struct or handed in by the
// caller may grow once at warm-up and is then reused). A `//cic:alloc-ok`
// comment on the same line waives one sanctioned allocation (e.g. a
// result that genuinely escapes to the caller); a waiver on a line with
// nothing to waive is itself reported as stale. docs/PERFORMANCE.md
// describes the arena ownership rules; docs/LINTING.md catalogues the
// invariant.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions marked //cic:hotpath must not allocate: no make/new, and " +
		"append only into arena-rooted (field/parameter/callee-returned) slices; " +
		"waive single lines with //cic:alloc-ok (stale waivers are reported)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		waived := markerLines(pass.Fset, file, allocOKMarker)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotAlloc(pass, fn, waived)
			checkStaleWaivers(pass, fn, waived)
		}
	}
	return nil
}

// hotpath and waiver markers recognised in comments. The markers are
// matched as comment prefixes so free-form rationale may follow.
const (
	hotpathMarker = "//cic:hotpath"
	allocOKMarker = "//cic:alloc-ok"
)

// isHotpath reports whether the function's doc comment contains a
// `//cic:hotpath` marker line.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}

// markerLines collects the source lines carrying a comment with the
// given prefix, keyed by line with the comment's position as value.
func markerLines(fset *token.FileSet, file *ast.File, prefix string) map[int]token.Pos {
	lines := map[int]token.Pos{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, prefix) {
				lines[fset.Position(c.Pos()).Line] = c.Pos()
			}
		}
	}
	return lines
}

func checkHotAlloc(pass *Pass, fn *ast.FuncDecl, waived map[int]token.Pos) {
	report := func(pos token.Pos, what string) {
		if _, ok := waived[pass.Fset.Position(pos).Line]; ok {
			return
		}
		switch what {
		case "make":
			pass.Reportf(pos, "make() in hot-path function %s: allocate scratch at construction and reuse it, or waive with //cic:alloc-ok", fn.Name.Name)
		case "new":
			pass.Reportf(pos, "new() in hot-path function %s: reuse construction-time scratch, or waive with //cic:alloc-ok", fn.Name.Name)
		case "append":
			pass.Reportf(pos, "append into non-arena slice in hot-path function %s: grow caller-provided or struct-field scratch instead, or waive with //cic:alloc-ok", fn.Name.Name)
		}
	}
	scanAllocs(pass.Info, fn, report)
}

// scanAllocs walks fn's body and calls report for every allocation the
// hot-path contract forbids: make, new, and append into a non-arena
// destination. Shared by hotalloc (annotated functions) and
// hotpropagate (functions reachable from annotated roots).
func scanAllocs(info *types.Info, fn *ast.FuncDecl, report func(pos token.Pos, what string)) {
	rooted := arenaRootedVars(info, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		b, ok := info.Uses[id].(*types.Builtin)
		if !ok {
			return true
		}
		switch b.Name() {
		case "make", "new":
			report(call.Pos(), b.Name())
		case "append":
			if len(call.Args) > 0 && !arenaRooted(info, call.Args[0], rooted) {
				report(call.Pos(), "append")
			}
		}
		return true
	})
}

// checkStaleWaivers reports `//cic:alloc-ok` comments inside a hot-path
// function that sit on a line with nothing to waive. Waivable events
// are allocation sites (make/new/append), non-builtin calls (the
// hotpropagate edge cut), composite literals, channel sends, and stores
// through selectors (the arenaescape events) — a waiver anywhere else
// is dead weight that would silently mask a future edit.
func checkStaleWaivers(pass *Pass, fn *ast.FuncDecl, waived map[int]token.Pos) {
	start := pass.Fset.Position(fn.Body.Pos()).Line
	end := pass.Fset.Position(fn.Body.End()).Line
	used := map[int]bool{}
	mark := func(pos token.Pos) { used[pass.Fset.Position(pos).Line] = true }
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// Conversions allocate when the target is a slice/string;
			// counting every call keeps the check conservative.
			mark(x.Pos())
		case *ast.CompositeLit:
			mark(x.Pos())
		case *ast.SendStmt:
			mark(x.Pos())
		case *ast.AssignStmt:
			for _, lh := range x.Lhs {
				if _, ok := ast.Unparen(lh).(*ast.SelectorExpr); ok {
					mark(x.Pos())
				}
			}
		case *ast.ReturnStmt:
			mark(x.Pos())
		}
		return true
	})
	for line, pos := range waived {
		if line < start || line > end || used[line] {
			continue
		}
		pass.Reportf(pos, "stale //cic:alloc-ok waiver in hot-path function %s: nothing on this line allocates or escapes", fn.Name.Name)
	}
}

// arenaRooted reports whether the expression's storage root is an arena:
// a struct field (selector), a non-builtin call result (callees return
// their own scratch), or a local/parameter in the rooted set. Slice and
// index expressions delegate to their operand.
func arenaRooted(info *types.Info, e ast.Expr, rooted map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			return true
		case *ast.CallExpr:
			// Builtins: append inherits its destination's rootedness,
			// make/new (and everything else returning fresh values) do not
			// root anything. Non-builtin calls may legitimately return
			// reusable scratch, so they count as arenas.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					if b.Name() == "append" && len(x.Args) > 0 {
						e = x.Args[0]
						continue
					}
					return false
				}
			}
			return true
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && rooted[obj]
		default:
			return false
		}
	}
}

// arenaRootedVars computes (to a fixpoint, flow-insensitively) the
// variables inside fn whose storage is arena-rooted: the receiver and
// parameters seed the set, and any variable assigned from an arena-rooted
// expression joins it. `cands := dm.candBuf[:0]` therefore roots cands,
// while `var cands []T` or `cands := make([]T, 0)` does not.
func arenaRootedVars(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	rooted := map[types.Object]bool{}
	seed := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					rooted[obj] = true
				}
			}
		}
	}
	seed(fn.Recv)
	seed(fn.Type.Params)

	lhsObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		mark := func(obj types.Object) {
			if obj != nil && !rooted[obj] {
				rooted[obj] = true
				changed = true
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lh := range x.Lhs {
					if i < len(x.Rhs) && arenaRooted(info, x.Rhs[i], rooted) {
						mark(lhsObj(lh))
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) && arenaRooted(info, x.Values[i], rooted) {
						mark(info.Defs[name])
					}
				}
			}
			return true
		})
	}
	return rooted
}
