package lint

import (
	"go/types"
)

// raw64AtomicFuncs are the sync/atomic package-level functions that
// operate on raw 64-bit integers. On 32-bit platforms these require the
// caller to guarantee 8-byte alignment of the addressed word manually —
// a silent struct-layout landmine. The typed atomic.Int64/atomic.Uint64
// wrappers carry the alignment guarantee in the type system.
var raw64AtomicFuncs = map[string]bool{
	"AddInt64":             true,
	"AddUint64":            true,
	"LoadInt64":            true,
	"LoadUint64":           true,
	"StoreInt64":           true,
	"StoreUint64":          true,
	"SwapInt64":            true,
	"SwapUint64":           true,
	"CompareAndSwapInt64":  true,
	"CompareAndSwapUint64": true,
}

// AtomicAlign forbids the raw 64-bit sync/atomic functions everywhere
// in the module in favour of the Go 1.19 typed atomics that
// internal/obs (and the gateway's shared counters) standardised on.
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc: "forbid raw 64-bit sync/atomic functions; use atomic.Int64/atomic.Uint64, " +
		"whose alignment is guaranteed by the type system on 32-bit platforms",
	Run: runAtomicAlign,
}

func runAtomicAlign(pass *Pass) error {
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			continue
		}
		if raw64AtomicFuncs[fn.Name()] {
			pass.Reportf(id.Pos(), "atomic.%s on a raw integer: use the typed atomic.Int64/atomic.Uint64, which are alignment-safe on 32-bit platforms", fn.Name())
		}
	}
	return nil
}
