package lint_test

import (
	"testing"

	"cic/internal/lint"
	"cic/internal/lint/linttest"
)

// Each analyzer is exercised against a self-contained fixture package
// under testdata/ whose `// want` comments pin down both the violating
// and the compliant forms of the invariant.

func TestNoPanicFixture(t *testing.T) {
	linttest.RunFixture(t, lint.NoPanic, "testdata/nopanic")
}

func TestClockInjectFixture(t *testing.T) {
	linttest.RunFixture(t, lint.ClockInject, "testdata/clockinject")
}

func TestErrWrapFixture(t *testing.T) {
	linttest.RunFixture(t, lint.ErrWrap, "testdata/errwrap")
}

func TestAtomicAlignFixture(t *testing.T) {
	linttest.RunFixture(t, lint.AtomicAlign, "testdata/atomicalign")
}

func TestNilSafeObsFixture(t *testing.T) {
	linttest.RunFixture(t, lint.NilSafeObs, "testdata/nilsafeobs")
}

func TestBoundedAllocFixture(t *testing.T) {
	linttest.RunFixture(t, lint.BoundedAlloc, "testdata/boundedalloc")
}

func TestHotAllocFixture(t *testing.T) {
	linttest.RunFixture(t, lint.HotAlloc, "testdata/hotalloc")
}

func TestHotPropagateFixture(t *testing.T) {
	linttest.RunFixture(t, lint.HotPropagate, "testdata/hotpropagate")
}

func TestGoroutineLeakFixture(t *testing.T) {
	linttest.RunFixture(t, lint.GoroutineLeak, "testdata/goroutineleak")
}

func TestLockDisciplineFixture(t *testing.T) {
	linttest.RunFixture(t, lint.LockDiscipline, "testdata/lockdiscipline")
}

func TestArenaEscapeFixture(t *testing.T) {
	linttest.RunFixture(t, lint.ArenaEscape, "testdata/arenaescape")
}

// TestScopedAnalyzersSkipForeignPackages pins the package-name scoping:
// the decode-path and obs analyzers must stay silent on packages
// outside their scope even when those packages contain what would
// otherwise be violations.
func TestScopedAnalyzersSkipForeignPackages(t *testing.T) {
	linttest.RunFixture(t, lint.NoPanic, "testdata/outofscope")
	linttest.RunFixture(t, lint.ClockInject, "testdata/outofscope")
	linttest.RunFixture(t, lint.BoundedAlloc, "testdata/outofscope")
	linttest.RunFixture(t, lint.NilSafeObs, "testdata/outofscope")
	linttest.RunFixture(t, lint.HotAlloc, "testdata/outofscope")
	linttest.RunFixture(t, lint.GoroutineLeak, "testdata/outofscope")
	linttest.RunFixture(t, lint.LockDiscipline, "testdata/outofscope")
	linttest.RunFixture(t, lint.ArenaEscape, "testdata/outofscope")
}
