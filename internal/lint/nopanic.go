package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// decodePathPkgs names the packages (by package name, so fixture
// packages under testdata participate by declaring the same name) that
// form the library decode path: everything a Gateway or Receiver
// executes between raw IQ in and decoded packets out. A panic anywhere
// in here can be triggered by hostile radio traffic or a malformed
// network frame and would take down a whole cic-gatewayd process, so
// these packages must report malformed input as errors (or degrade to a
// documented total behaviour), never by panicking.
var decodePathPkgs = map[string]bool{
	"cic":   true,
	"dsp":   true,
	"phy":   true,
	"chirp": true,
	"frame": true,
	"rx":    true,
	"core":  true,
}

// NoPanic forbids panic calls in decode-path packages outside init
// functions and must*-named constructors (whose contract is to panic on
// misconfiguration at startup, e.g. dsp.MustPlan).
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "forbid panic in decode-path packages: hostile IQ or wire input must surface " +
		"as returned errors, never crash the process; only init and must* constructors may panic",
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) error {
	if !decodePathPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || noPanicExempt(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(), "panic in decode-path function %s: return an error instead (only init and must* constructors may panic)", fn.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

func noPanicExempt(name string) bool {
	return name == "init" || strings.HasPrefix(strings.ToLower(name), "must")
}
