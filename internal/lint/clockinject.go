package lint

import (
	"go/types"
)

// ClockInject forbids direct wall-clock reads (time.Now, time.Since) in
// decode-stage packages. Stage code that timestamps events must go
// through the internal/obs helpers (obs.Now, obs.Since,
// Histogram.Start/Since), which are nil-safe, centralise every clock
// read behind the observability layer, and keep the disabled-metrics
// path clock-free — so decode output remains a deterministic function
// of the input samples.
var ClockInject = &Analyzer{
	Name: "clockinject",
	Doc: "forbid time.Now/time.Since in decode-stage code; route clock reads through " +
		"the internal/obs instrumentation helpers so stages stay deterministic and testable",
	Run: runClockInject,
}

func runClockInject(pass *Pass) error {
	if !decodePathPkgs[pass.Pkg.Name()] {
		return nil
	}
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			continue
		}
		if name := fn.Name(); name == "Now" || name == "Since" {
			pass.Reportf(id.Pos(), "time.%s in decode-stage code: inject the clock through internal/obs (obs.Now/obs.Since or Histogram.Start/Since)", name)
		}
	}
	return nil
}
