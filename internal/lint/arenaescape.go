package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaEscape guards the other side of the zero-alloc contract: the
// scratch arenas (receiver-owned slice fields, per docs/PERFORMANCE.md)
// are reused on every packet, so a slice rooted in one must not be
// stored anywhere that outlives the call without an explicit copy — the
// next packet would overwrite the bytes behind the emitted value.
// Flagged escapes: channel sends, stores through a parameter or
// package-level variable, and composite literals outside a return
// statement. Returning an arena slice is the documented hand-out idiom
// (the caller knows the buffer is borrowed until the next call) and
// stays legal, as does passing one as a call argument.
// `//cic:alloc-ok` on the line waives a sanctioned escape.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc: "slices rooted in a receiver-owned scratch arena must not escape " +
		"through channel sends, stores into parameters/globals, or non-return " +
		"composite literals without an explicit copy; waive with //cic:alloc-ok",
	Run: runArenaEscape,
}

func runArenaEscape(pass *Pass) error {
	if !decodePathPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		waived := markerLines(pass.Fset, file, allocOKMarker)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			checkArenaEscape(pass, fn, waived)
		}
	}
	return nil
}

func checkArenaEscape(pass *Pass, fn *ast.FuncDecl, waived map[int]token.Pos) {
	info := pass.Info
	recvObj := receiverObject(info, fn)
	if recvObj == nil {
		return
	}
	rooted, params := fieldRootedVars(info, fn, recvObj)

	report := func(pos token.Pos, format string, args ...any) {
		if _, ok := waived[pass.Fset.Position(pos).Line]; ok {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	// isArena: the expression is slice-typed and its storage root is the
	// receiver's arena.
	isArena := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
			return false
		}
		return arenaFieldRooted(info, e, recvObj, rooted)
	}

	// Composite literals that are return operands express the hand-out
	// idiom and are exempt.
	returnLits := map[*ast.CompositeLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if lit, ok := m.(*ast.CompositeLit); ok {
					returnLits[lit] = true
				}
				return true
			})
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if isArena(x.Value) {
				report(x.Pos(), "arena-rooted slice sent over a channel from %s: the arena is overwritten on the next packet — copy into a fresh buffer first, or waive with //cic:alloc-ok", fn.Name.Name)
			}
		case *ast.CompositeLit:
			if returnLits[x] {
				return true
			}
			for _, elt := range x.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if isArena(val) {
					report(val.Pos(), "arena-rooted slice stored into a composite literal in %s: the value outlives the arena's reuse cycle — copy it, return it directly, or waive with //cic:alloc-ok", fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for i, lh := range x.Lhs {
				if i >= len(x.Rhs) && len(x.Rhs) != 1 {
					break
				}
				rh := x.Rhs[0]
				if i < len(x.Rhs) {
					rh = x.Rhs[i]
				}
				if !isArena(rh) {
					continue
				}
				if root := escapingStoreRoot(info, lh, recvObj, params); root != "" {
					report(x.Pos(), "arena-rooted slice stored into %s in %s: the destination escapes the arena's reuse cycle — copy it first, or waive with //cic:alloc-ok", root, fn.Name.Name)
				}
			}
		}
		return true
	})
}

// escapingStoreRoot names the escaping destination of a store ("" when
// the destination is local). Stores through the receiver (save-back)
// and into plain locals stay inside the arena's owner; stores rooted in
// a parameter or a package-level variable hand the alias to the caller.
func escapingStoreRoot(info *types.Info, lhs ast.Expr, recvObj types.Object, params map[types.Object]bool) string {
	lhs = ast.Unparen(lhs)
	switch l := lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
	case *ast.Ident:
		// A direct assignment to a package-level variable pins the alias
		// beyond the call; local idents are plain local stores.
		if v, ok := info.Uses[l].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "package variable " + v.Name()
		}
		return ""
	default:
		return "" // blank or complex: local store
	}
	rootID, ok := ast.Unparen(rootExpr(lhs)).(*ast.Ident)
	if !ok {
		return ""
	}
	obj := info.Uses[rootID]
	if obj == nil {
		obj = info.Defs[rootID]
	}
	if obj == nil || obj == recvObj {
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return ""
	}
	switch {
	case v.Pkg() != nil && v.Parent() == v.Pkg().Scope():
		return "package variable " + v.Name()
	case params[v]:
		return "parameter " + v.Name()
	}
	return ""
}

// fieldRootedVars computes (to a fixpoint) the local variables whose
// storage aliases the receiver's arena fields: seeded empty, a variable
// joins when assigned from a receiver-field-rooted slice expression.
// It also returns fn's parameter set for escape classification.
func fieldRootedVars(info *types.Info, fn *ast.FuncDecl, recvObj types.Object) (rooted, params map[types.Object]bool) {
	params = map[types.Object]bool{}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	rooted = map[types.Object]bool{}
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		mark := func(obj types.Object) {
			if obj != nil && !rooted[obj] {
				rooted[obj] = true
				changed = true
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lh := range x.Lhs {
					if i < len(x.Rhs) && arenaFieldRooted(info, x.Rhs[i], recvObj, rooted) {
						mark(lhsObj(lh))
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) && arenaFieldRooted(info, x.Values[i], recvObj, rooted) {
						mark(info.Defs[name])
					}
				}
			}
			return true
		})
	}
	return rooted, params
}

// arenaFieldRooted reports whether the expression's storage root is a
// field of the receiver (directly or through a variable in the rooted
// set). Unlike hotalloc's arenaRooted, call results and parameters do
// not count — only the receiver's own arena matters for escapes.
func arenaFieldRooted(info *types.Info, e ast.Expr, recvObj types.Object, rooted map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			rootID, ok := ast.Unparen(rootExpr(x)).(*ast.Ident)
			if !ok {
				return false
			}
			obj := info.Uses[rootID]
			if obj == nil {
				obj = info.Defs[rootID]
			}
			return obj != nil && (obj == recvObj || rooted[obj])
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 {
					e = x.Args[0]
					continue
				}
			}
			return false
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && rooted[obj]
		default:
			return false
		}
	}
}
