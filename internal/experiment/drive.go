package experiment

import (
	"fmt"

	"cic/internal/eval"
	"cic/internal/rx"
	"cic/internal/sim"
)

// Drive modes.
const (
	// DriveInProcess scores every receiver in this process against the
	// rendered run (the batch pipeline the legacy figures used).
	DriveInProcess = "inprocess"
	// DriveGatewayd streams the CIC receiver's IQ through a cic-gatewayd
	// over TCP (server.ReconnectingClient) and scores the daemon's NDJSON
	// records; baseline receivers still run in-process, since the daemon
	// only speaks CIC.
	DriveGatewayd = "gatewayd"
)

// buildRun materialises a trial's network and rendered air.
func buildRun(cfg *Config, t Trial) (*sim.Run, error) {
	nw, err := sim.NewNetwork(cfg.FrameConfig(), t.Spec.Deployment(), t.Seed)
	if err != nil {
		return nil, err
	}
	run, err := nw.BuildRun(t.Rate, cfg.DurationS, cfg.PayloadLen, t.Seed)
	if err != nil {
		return nil, err
	}
	return run, nil
}

// scoreToResult converts a sim score to the journaled form.
func scoreToResult(s sim.Score) ReceiverScore {
	return ReceiverScore{
		Offered:       s.Offered,
		Detected:      s.Detected,
		Decoded:       s.Decoded,
		False:         s.False,
		PRR:           prr(s),
		Throughput:    s.Throughput(),
		DetectionRate: s.DetectionRate(),
	}
}

func prr(s sim.Score) float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Decoded) / float64(s.Offered)
}

// runTrialInProcess executes one trial entirely in this process.
func runTrialInProcess(cfg *Config, t Trial) (map[string]ReceiverScore, error) {
	run, err := buildRun(cfg, t)
	if err != nil {
		return nil, fmt.Errorf("experiment: trial %s: %w", t.Key, err)
	}
	out := map[string]ReceiverScore{}
	if cfg.Metric == MetricDetection {
		scanners, err := eval.DetectionScanners(cfg.FrameConfig(), cfg.PayloadLen)
		if err != nil {
			return nil, fmt.Errorf("experiment: trial %s: %w", t.Key, err)
		}
		for _, sc := range scanners {
			pkts := sc.Scan(run.Source)
			out[sc.Name] = scoreToResult(sim.ScoreDetections(run, pkts, cfg.DurationS))
		}
		return out, nil
	}
	for _, name := range cfg.ReceiverNames() {
		recv, err := eval.ReceiverByName(cfg.FrameConfig(), cfg.Workers, name, nil)
		if err != nil {
			return nil, fmt.Errorf("experiment: trial %s: %w", t.Key, err)
		}
		decoded, err := recv.Receive(run.Source)
		if err != nil {
			return nil, fmt.Errorf("experiment: trial %s: receiver %s: %w", t.Key, name, err)
		}
		out[name] = scoreToResult(sim.ScoreDecodes(run, decoded, cfg.DurationS))
	}
	return out, nil
}

// readAll drains a sample source's span in bounded chunks, handing each
// chunk to emit. This is how trials stream rendered air to a gatewayd.
func readAll(src rx.SampleSource, chunk int, emit func([]complex128) error) error {
	start, end := src.Span()
	buf := make([]complex128, chunk)
	for off := start; off < end; {
		n := int64(len(buf))
		if end-off < n {
			n = end - off
		}
		src.Read(buf[:n], off)
		if err := emit(buf[:n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}
