package experiment

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"cic/internal/eval"
	"cic/internal/obs"
	"cic/internal/rx"
	"cic/internal/server"
	"cic/internal/sim"
)

// streamChunk is the IQ chunk size trials stream to a gatewayd, in
// samples — large enough to amortise framing, small enough to keep the
// client's retain buffer (and the daemon's ring) modest.
const streamChunk = 1 << 16

// Gatewayd is the network drive target: a running cic-gatewayd and the
// NDJSON file it publishes records to. Either attach to an existing
// daemon (addr + outPath) or spawn one with SpawnGatewayd.
type Gatewayd struct {
	Addr    string // ingestion address
	OutPath string // the daemon's -out NDJSON file

	cmd *exec.Cmd // non-nil when spawned by us
}

// SpawnGatewayd launches a cic-gatewayd binary on a loopback port with an
// NDJSON out-file in a fresh temp directory, waits for it to listen, and
// returns the attached Gatewayd. faultSpec, when non-empty, arms the
// daemon's deterministic fault injector (the config's "fault" field).
func SpawnGatewayd(bin, faultSpec string) (*Gatewayd, error) {
	dir, err := os.MkdirTemp("", "cic-experiment-gatewayd-")
	if err != nil {
		return nil, fmt.Errorf("experiment: spawn gatewayd: %w", err)
	}
	outPath := filepath.Join(dir, "records.ndjson")
	addrFile := filepath.Join(dir, "addr")
	args := []string{
		"-listen", "127.0.0.1:0",
		"-out", outPath,
		"-addr-file", addrFile,
		"-quiet",
	}
	if faultSpec != "" {
		args = append(args, "-fault-spec", faultSpec)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("experiment: spawn gatewayd: %w", err)
	}
	// Poll the addr-file: the daemon writes it once listening.
	deadline := obs.Now().Add(10 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil {
			if lines := strings.Split(string(data), "\n"); len(lines) > 0 && lines[0] != "" {
				return &Gatewayd{Addr: lines[0], OutPath: outPath, cmd: cmd}, nil
			}
		}
		if obs.Now().After(deadline) {
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("experiment: gatewayd did not listen within 10s")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Stop terminates a spawned daemon (graceful drain via SIGTERM, then a
// bounded wait). Attached daemons are left alone.
func (g *Gatewayd) Stop() error {
	if g.cmd == nil {
		return nil
	}
	if err := g.cmd.Process.Signal(os.Interrupt); err != nil {
		_ = g.cmd.Process.Kill()
	}
	done := make(chan error, 1)
	go func() { done <- g.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(15 * time.Second):
		_ = g.cmd.Process.Kill()
		return fmt.Errorf("experiment: gatewayd did not drain within 15s")
	}
}

// runTrialGatewayd executes one trial with the CIC receiver behind the
// network: the rendered air streams through a server.ReconnectingClient
// (surviving injected connection faults), and the daemon's published
// NDJSON records are scored against ground truth. Baseline receivers run
// in-process — the daemon only speaks CIC. Detection sweeps have no wire
// form, so they are rejected here (the Runner routes them in-process).
func runTrialGatewayd(cfg *Config, t Trial, gd *Gatewayd) (map[string]ReceiverScore, int64, error) {
	if cfg.Metric == MetricDetection {
		return nil, 0, fmt.Errorf("experiment: trial %s: detection sweeps cannot drive a gatewayd", t.Key)
	}
	run, err := buildRun(cfg, t)
	if err != nil {
		return nil, 0, fmt.Errorf("experiment: trial %s: %w", t.Key, err)
	}

	// One station per (run, trial): the PID isolates this invocation from
	// parked sessions of earlier runs against an attached daemon.
	station := fmt.Sprintf("%s.%d.%s", cfg.Name, os.Getpid(), t.Key)
	client := server.NewReconnectingClient(server.ReconnectOptions{
		Station:     station,
		Config:      cfg.GatewayConfig(),
		Addr:        gd.Addr,
		MaxAttempts: -1, // injected faults must never fail the trial
		Seed:        t.Seed,
	})
	if _, err := client.Connect(); err != nil {
		return nil, 0, fmt.Errorf("experiment: trial %s: connect: %w", t.Key, err)
	}
	err = readAll(run.Source, streamChunk, client.WriteIQ)
	if err != nil {
		_ = client.Abort()
		return nil, 0, fmt.Errorf("experiment: trial %s: stream: %w", t.Key, err)
	}
	// Close blocks until the daemon's drain ack — by which point every
	// record for this station has been published to the out-file.
	if err := client.Close(); err != nil {
		return nil, 0, fmt.Errorf("experiment: trial %s: close: %w", t.Key, err)
	}
	decoded, err := readStationRecords(gd.OutPath, station)
	if err != nil {
		return nil, 0, fmt.Errorf("experiment: trial %s: %w", t.Key, err)
	}

	out := map[string]ReceiverScore{}
	for _, name := range cfg.ReceiverNames() {
		if name == "CIC" {
			out[name] = scoreToResult(sim.ScoreDecodes(run, decoded, cfg.DurationS))
			continue
		}
		recv, err := eval.ReceiverByName(cfg.FrameConfig(), cfg.Workers, name, nil)
		if err != nil {
			return nil, 0, fmt.Errorf("experiment: trial %s: %w", t.Key, err)
		}
		res, err := recv.Receive(run.Source)
		if err != nil {
			return nil, 0, fmt.Errorf("experiment: trial %s: receiver %s: %w", t.Key, name, err)
		}
		out[name] = scoreToResult(sim.ScoreDecodes(run, res, cfg.DurationS))
	}
	return out, client.Reconnects(), nil
}

// readStationRecords loads the daemon's published records for one station
// from its NDJSON out-file and converts them to the scoring form. The
// file is shared by every concurrent trial, so filtering happens here.
func readStationRecords(path, station string) ([]rx.Decoded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("read gatewayd records: %w", err)
	}
	defer f.Close()
	var out []rx.Decoded
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec server.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("gatewayd record: %w", err)
		}
		if rec.Station != station {
			continue
		}
		payload, err := hex.DecodeString(rec.Payload)
		if err != nil {
			return nil, fmt.Errorf("gatewayd record payload: %w", err)
		}
		out = append(out, rx.Decoded{
			Packet:       &rx.Packet{Start: rec.Start, CFOHz: rec.CFOHz, SNRdB: rec.SNRdB},
			HeaderOK:     rec.OK,
			CRCOK:        rec.OK,
			Payload:      payload,
			FECCorrected: rec.FECCorrected,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gatewayd records: %w", err)
	}
	return out, nil
}
