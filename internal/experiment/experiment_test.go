package experiment

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cic"
	"cic/internal/fault"
	"cic/internal/obs"
	"cic/internal/server"
)

// validConfigJSON is the canonical smoke-scale sweep used across tests.
const validConfigJSON = `{
	"version": 1,
	"name": "test-sweep",
	"kind": "sweep",
	"metric": "prr",
	"channel": {"sf": 8, "bandwidth_hz": 250000, "osr": 2, "cr": "4/5", "sync_word": 52},
	"deployments": [{"base": "D1", "nodes": 4}],
	"rates": [20, 40],
	"duration_s": 0.4,
	"payload_len": 8,
	"receivers": ["CIC", "LoRa"],
	"seeds": {"base": 1, "count": 2}
}`

func mustParse(t *testing.T, src string) *Config {
	t.Helper()
	cfg, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestParseValid(t *testing.T) {
	cfg := mustParse(t, validConfigJSON)
	if cfg.Name != "test-sweep" || cfg.Kind != KindSweep || cfg.Metric != MetricPRR {
		t.Fatalf("parsed %+v", cfg)
	}
	if got := cfg.SeedCount(); got != 2 {
		t.Errorf("seed count %d", got)
	}
	fc := cfg.FrameConfig()
	if fc.Chirp.SF != 8 || fc.Chirp.Bandwidth != 250e3 || fc.SyncWord != 0x34 {
		t.Errorf("frame config %+v", fc)
	}
	gc := cfg.GatewayConfig()
	if gc.SpreadingFactor != 8 || gc.CodingRate != 1 || !gc.PayloadCRC {
		t.Errorf("gateway config %+v", gc)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"version":1,"name":"x","kind":"sweep","metric":"prr","deployments":[{"base":"D1"}],"rates":[10],"duration_s":1,"typo_field":true}`,
		"bad version":       `{"version":2,"name":"x","kind":"sweep","metric":"prr","deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"no name":           `{"version":1,"kind":"sweep","metric":"prr","deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"bad kind":          `{"version":1,"name":"x","kind":"zap","deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"no metric":         `{"version":1,"name":"x","kind":"sweep","deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"bad metric":        `{"version":1,"name":"x","kind":"sweep","metric":"vibes","deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"bad figure":        `{"version":1,"name":"x","kind":"figure","figure":"nonesuch","deployments":[{"base":"D1"}]}`,
		"sf low":            `{"version":1,"name":"x","kind":"sweep","metric":"prr","channel":{"sf":6},"deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"sf high":           `{"version":1,"name":"x","kind":"sweep","metric":"prr","channel":{"sf":13},"deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"bad bw":            `{"version":1,"name":"x","kind":"sweep","metric":"prr","channel":{"bandwidth_hz":300000},"deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"bad osr":           `{"version":1,"name":"x","kind":"sweep","metric":"prr","channel":{"osr":3},"deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"bad cr":            `{"version":1,"name":"x","kind":"sweep","metric":"prr","channel":{"cr":"4/9"},"deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`,
		"bad deployment":    `{"version":1,"name":"x","kind":"sweep","metric":"prr","deployments":[{"base":"D9"}],"rates":[10],"duration_s":1}`,
		"no deployments":    `{"version":1,"name":"x","kind":"sweep","metric":"prr","deployments":[],"rates":[10],"duration_s":1}`,
		"negative rate":     `{"version":1,"name":"x","kind":"sweep","metric":"prr","deployments":[{"base":"D1"}],"rates":[-5],"duration_s":1}`,
		"zero duration":     `{"version":1,"name":"x","kind":"sweep","metric":"prr","deployments":[{"base":"D1"}],"rates":[10],"duration_s":0}`,
		"bad duty cycle":    `{"version":1,"name":"x","kind":"sweep","metric":"prr","deployments":[{"base":"D1","duty_cycle":1.5}],"rates":[10],"duration_s":1}`,
		"bad receiver":      `{"version":1,"name":"x","kind":"sweep","metric":"prr","deployments":[{"base":"D1"}],"rates":[10],"duration_s":1,"receivers":["WiFi"]}`,
		"bad fault spec":    `{"version":1,"name":"x","kind":"sweep","metric":"prr","deployments":[{"base":"D1"}],"rates":[10],"duration_s":1,"fault":"zorp@"}`,
		"payload too large": `{"version":1,"name":"x","kind":"sweep","metric":"prr","deployments":[{"base":"D1"}],"rates":[10],"duration_s":1,"payload_len":300}`,
		"fault on figure":   `{"version":1,"name":"x","kind":"figure","figure":"snr","deployments":[{"base":"D1"}],"fault":"drop@10"}`,
		"trailing doc":      `{"version":1,"name":"x","kind":"figure","figure":"snr","deployments":[{"base":"D1"}]}{"again":true}`,
		"not json":          `pure garbage`,
	}
	for label, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

// TestCommittedConfigsParse keeps every config under experiments/ loadable:
// a schema change that orphans a committed artifact fails here, not in a
// user's terminal.
func TestCommittedConfigsParse(t *testing.T) {
	paths, err := filepath.Glob("../../experiments/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 12 {
		t.Fatalf("only %d committed configs found", len(paths))
	}
	for _, p := range paths {
		cfg, err := Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if cfg.Kind == KindSweep && len(cfg.Trials()) == 0 {
			t.Errorf("%s: empty trial matrix", p)
		}
	}
}

func TestConfigSHA(t *testing.T) {
	a := mustParse(t, validConfigJSON)
	b := mustParse(t, validConfigJSON)
	if a.SHA() != b.SHA() {
		t.Error("identical configs hash differently")
	}
	c := mustParse(t, strings.Replace(validConfigJSON, `"base": 1`, `"base": 2`, 1))
	if a.SHA() == c.SHA() {
		t.Error("different configs hash identically")
	}
}

func TestTrialMatrix(t *testing.T) {
	cfg := mustParse(t, validConfigJSON)
	trials := cfg.Trials()
	if len(trials) != 1*2*2 {
		t.Fatalf("%d trials", len(trials))
	}
	keys := map[string]bool{}
	seeds := map[int64]bool{}
	for i, tr := range trials {
		if tr.Index != i {
			t.Errorf("trial %d has index %d", i, tr.Index)
		}
		if keys[tr.Key] {
			t.Errorf("duplicate key %s", tr.Key)
		}
		keys[tr.Key] = true
		if seeds[tr.Seed] {
			t.Errorf("duplicate seed %d", tr.Seed)
		}
		seeds[tr.Seed] = true
	}
	// The matrix is a pure function of the config.
	again := cfg.Trials()
	for i := range trials {
		if trials[i] != again[i] {
			t.Fatal("matrix not reproducible")
		}
	}
}

func TestJournalRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := j.Append(TrialResult{
			ConfigSHA: "sha1", Name: "t", Key: fmt.Sprintf("D1/r10/s%d", i),
			Drive: DriveInProcess, Seed: int64(i),
			Receivers: map[string]ReceiverScore{"CIC": {Offered: 10, Decoded: 9, PRR: 0.9}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadJournal(path, "sha1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d entries", len(got))
	}
	if got["D1/r10/s1"].Receivers["CIC"].Decoded != 9 {
		t.Error("entry content lost")
	}

	// A torn final line (kill mid-write) is tolerated.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(data, []byte(`{"config_sha":"sha1","key":"D1/r10/s3","receiv`)...)
	tornPath := filepath.Join(dir, "torn.ndjson")
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadJournal(tornPath, "sha1")
	if err != nil || len(got) != 3 {
		t.Fatalf("torn journal: %d entries, err %v", len(got), err)
	}

	// A malformed line in the middle is corruption, not a torn tail.
	bad := append([]byte("not json at all\n"), data...)
	badPath := filepath.Join(dir, "bad.ndjson")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(badPath, "sha1"); err == nil {
		t.Error("mid-journal corruption accepted")
	}

	// A different config identity refuses to resume.
	if _, err := ReadJournal(path, "other-sha"); err == nil {
		t.Error("journal from a different config accepted")
	}

	// Missing journal = empty.
	got, err = ReadJournal(filepath.Join(dir, "missing.ndjson"), "sha1")
	if err != nil || len(got) != 0 {
		t.Errorf("missing journal: %d entries, err %v", len(got), err)
	}
}

func TestMeanCI95(t *testing.T) {
	mean, half := meanCI95([]float64{2, 4, 6})
	if math.Abs(mean-4) > 1e-12 {
		t.Errorf("mean %g", mean)
	}
	// s = 2, n = 3, t(df 2) = 4.303 → half = 4.303·2/√3.
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(half-want) > 1e-9 {
		t.Errorf("half %g want %g", half, want)
	}
	if m, h := meanCI95([]float64{7}); m != 7 || h != 0 {
		t.Errorf("singleton: %g ± %g", m, h)
	}
	if m, h := meanCI95(nil); m != 0 || h != 0 {
		t.Errorf("empty: %g ± %g", m, h)
	}
	// Large n falls back to the normal critical value.
	big := make([]float64, 40)
	for i := range big {
		big[i] = float64(i % 2)
	}
	_, h := meanCI95(big)
	if h <= 0 {
		t.Error("no interval for large n")
	}
}

// TestRunResumeByteIdentical is the harness's core contract: an
// interrupted matrix, resumed from the journal, aggregates to exactly the
// bytes an uninterrupted run produces.
func TestRunResumeByteIdentical(t *testing.T) {
	cfg := mustParse(t, validConfigJSON)
	ctx := context.Background()
	reg := obs.NewRegistry()

	// Uninterrupted reference run.
	refJournal := filepath.Join(t.TempDir(), "ref.ndjson")
	ref, err := Run(ctx, cfg, RunnerOptions{JournalPath: refJournal, Concurrency: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Executed != 4 || ref.Stopped {
		t.Fatalf("reference run: executed %d, stopped %v", ref.Executed, ref.Stopped)
	}
	refFigs, err := Aggregate(cfg, ref.Results)
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	for _, f := range refFigs {
		if err := f.WriteCSV(&refCSV); err != nil {
			t.Fatal(err)
		}
	}

	// Nonzero decode sanity: the CIC receiver must decode something.
	anyDecoded := false
	for _, tr := range ref.Results {
		if tr.Receivers["CIC"].Decoded > 0 {
			anyDecoded = true
		}
	}
	if !anyDecoded {
		t.Fatal("CIC decoded nothing across the matrix")
	}

	// Interrupted run: stop after 2 trials, then resume.
	resJournal := filepath.Join(t.TempDir(), "res.ndjson")
	first, err := Run(ctx, cfg, RunnerOptions{JournalPath: resJournal, Concurrency: 1, StopAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Stopped || first.Executed != 2 {
		t.Fatalf("first leg: executed %d, stopped %v", first.Executed, first.Stopped)
	}
	if _, err := Aggregate(cfg, first.Results); err == nil {
		t.Fatal("aggregate of an incomplete matrix must fail")
	}
	second, err := Run(ctx, cfg, RunnerOptions{JournalPath: resJournal, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 2 || second.Executed != 2 {
		t.Fatalf("second leg: executed %d, resumed %d", second.Executed, second.Resumed)
	}
	resFigs, err := Aggregate(cfg, second.Results)
	if err != nil {
		t.Fatal(err)
	}
	var resCSV bytes.Buffer
	for _, f := range resFigs {
		if err := f.WriteCSV(&resCSV); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(refCSV.Bytes(), resCSV.Bytes()) {
		t.Errorf("resumed aggregates differ from uninterrupted run:\n--- ref\n%s\n--- resumed\n%s", refCSV.String(), resCSV.String())
	}

	// CI columns exist (2 seeds) and the metrics registry saw the run.
	if !strings.Contains(refCSV.String(), "ci95") {
		t.Error("aggregate CSV missing ci95 columns")
	}
	snap := reg.Snapshot()
	if snap.Gauges[MetricTrialsPlanned] != 4 {
		t.Errorf("planned gauge %d", snap.Gauges[MetricTrialsPlanned])
	}
	if snap.Counters[MetricPacketsOffered] == 0 {
		t.Error("offered counter never moved")
	}
}

// startTestGatewayd runs the ingestion server in-process and returns an
// attach-mode Gatewayd. wrap optionally injects connection faults.
func startTestGatewayd(t *testing.T, wrap func(net.Conn) net.Conn) *Gatewayd {
	t.Helper()
	dir := t.TempDir()
	outPath := filepath.Join(dir, "records.ndjson")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Workers:  1,
		Metrics:  cic.NewMetrics(),
		Sink:     server.NewFanout(out),
		WrapConn: wrap,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Shutdown(context.Background())
		ln.Close()
		out.Close()
	})
	return &Gatewayd{Addr: ln.Addr().String(), OutPath: outPath}
}

func TestRunGatewaydDrive(t *testing.T) {
	cfg := mustParse(t, strings.Replace(validConfigJSON,
		`"rates": [20, 40]`, `"rates": [30]`, 1))
	cfg.Receivers = []string{"CIC"}
	cfg.Seeds.Count = 1
	gd := startTestGatewayd(t, nil)
	res, err := Run(context.Background(), cfg, RunnerOptions{
		JournalPath: filepath.Join(t.TempDir(), "gw.ndjson"),
		Drive:       DriveGatewayd,
		Gatewayd:    gd,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := res.Results["D1/r30/s0"]
	if !ok {
		t.Fatalf("trial missing; have %v", res.Results)
	}
	if tr.Drive != DriveGatewayd {
		t.Errorf("drive %q", tr.Drive)
	}
	sc := tr.Receivers["CIC"]
	if sc.Offered == 0 || sc.Decoded == 0 {
		t.Errorf("gatewayd drive decoded %d of %d", sc.Decoded, sc.Offered)
	}
	if sc.PRR <= 0 || sc.PRR > 1 {
		t.Errorf("PRR %g", sc.PRR)
	}
}

// TestRunGatewaydDriveFaulted streams through injected connection drops:
// the reconnecting client must recover and the trial must still score.
func TestRunGatewaydDriveFaulted(t *testing.T) {
	// every=2: the first connection drops mid-stream, the retry is clean.
	spec, err := fault.ParseSpec("seed=7;every=2;drop@131072")
	if err != nil {
		t.Fatal(err)
	}
	conns := 0
	wrap := func(c net.Conn) net.Conn {
		sched := spec.Schedule(conns)
		conns++
		if len(sched.Read) == 0 && len(sched.Write) == 0 {
			return c
		}
		return fault.WrapConn(c, sched, nil)
	}
	cfg := mustParse(t, strings.Replace(validConfigJSON,
		`"rates": [20, 40]`, `"rates": [30]`, 1))
	cfg.Receivers = []string{"CIC"}
	cfg.Seeds.Count = 1
	gd := startTestGatewayd(t, wrap)
	res, err := Run(context.Background(), cfg, RunnerOptions{
		Drive:       DriveGatewayd,
		Gatewayd:    gd,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Results["D1/r30/s0"]
	if sc := tr.Receivers["CIC"]; sc.Decoded == 0 {
		t.Errorf("faulted gatewayd drive decoded nothing (offered %d)", sc.Offered)
	}
	if tr.Reconnects == 0 {
		t.Error("fault injected but client never reconnected")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	cfg := mustParse(t, validConfigJSON)
	ctx := context.Background()
	if _, err := Run(ctx, cfg, RunnerOptions{Drive: "carrier-pigeon"}); err == nil {
		t.Error("unknown drive accepted")
	}
	if _, err := Run(ctx, cfg, RunnerOptions{Drive: DriveGatewayd}); err == nil {
		t.Error("gatewayd drive without target accepted")
	}
	det := mustParse(t, strings.Replace(validConfigJSON, `"metric": "prr"`, `"metric": "detection"`, 1))
	if _, err := Run(ctx, det, RunnerOptions{Drive: DriveGatewayd, Gatewayd: &Gatewayd{}}); err == nil {
		t.Error("detection sweep over gatewayd accepted")
	}
	fig := mustParse(t, `{"version":1,"name":"f","kind":"figure","figure":"snr","deployments":[{"base":"D1"}]}`)
	if _, err := Run(ctx, fig, RunnerOptions{}); err == nil {
		t.Error("figure config accepted by sweep runner")
	}
	if _, err := Aggregate(fig, nil); err == nil {
		t.Error("figure config accepted by aggregator")
	}
	if _, err := Figures(cfg, nil); err == nil {
		t.Error("sweep config accepted by figure dispatch")
	}
}

func TestDetectionSweep(t *testing.T) {
	src := strings.Replace(validConfigJSON, `"metric": "prr"`, `"metric": "detection"`, 1)
	src = strings.Replace(src, `"receivers": ["CIC", "LoRa"],`, ``, 1)
	src = strings.Replace(src, `"rates": [20, 40]`, `"rates": [40]`, 1)
	cfg := mustParse(t, src)
	cfg.Seeds.Count = 1
	res, err := Run(context.Background(), cfg, RunnerOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Results["D1/r40/s0"]
	for _, name := range []string{"CIC", "FTrack", "LoRa"} {
		if _, ok := tr.Receivers[name]; !ok {
			t.Errorf("detection trial missing %s", name)
		}
	}
	if tr.Receivers["CIC"].DetectionRate <= 0 {
		t.Error("CIC detected nothing")
	}
	figs, err := Aggregate(cfg, res.Results)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].YLabel != "detection rate" {
		t.Errorf("aggregate figures %+v", figs)
	}
}

func TestFiguresDispatch(t *testing.T) {
	cfg := mustParse(t, `{
		"version": 1, "name": "snr-fig", "kind": "figure", "figure": "snr",
		"deployments": [{"base":"D1"},{"base":"D2"},{"base":"D3"},{"base":"D4"}],
		"seeds": {"base": 1}
	}`)
	figs, err := Figures(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || len(figs[0].Series) == 0 {
		t.Fatalf("snr figure: %+v", figs)
	}
}
