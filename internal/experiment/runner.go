package experiment

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"

	"cic/internal/obs"
)

// RunnerOptions parameterise one invocation of a sweep. Everything here
// is operational (where to journal, how wide to fan out, which drive) —
// nothing affects trial results, which depend only on the config.
type RunnerOptions struct {
	// JournalPath is the NDJSON checkpoint file. Completed trials found
	// there (same config SHA) are not recomputed. Empty disables
	// journaling (every trial recomputes).
	JournalPath string
	// Drive selects DriveInProcess (default) or DriveGatewayd.
	Drive string
	// Gatewayd is the network drive target; required for DriveGatewayd.
	Gatewayd *Gatewayd
	// Concurrency bounds the trial worker pool (0 = GOMAXPROCS).
	Concurrency int
	// StopAfter, when positive, stops the run cleanly after that many
	// newly executed trials — the deterministic stand-in for "killed
	// mid-matrix" in resume tests; the return signals the matrix is
	// incomplete.
	StopAfter int
	// Metrics, when non-nil, receives the experiment_* metrics.
	Metrics *obs.Registry
	// Log, when non-nil, receives per-trial progress.
	Log *slog.Logger
}

// RunResult is a sweep invocation's outcome.
type RunResult struct {
	// Results maps trial key → journaled result for every trial of the
	// matrix that has completed (resumed or executed this run).
	Results map[string]TrialResult
	// Executed and Resumed partition the completed trials.
	Executed int
	Resumed  int
	// Stopped reports a clean StopAfter exit with trials remaining.
	Stopped bool
}

// Run executes a sweep config's trial matrix: journal-backed, bounded
// concurrency, order-independent. On error the journal still holds every
// trial completed before the failure, so a rerun resumes.
func Run(ctx context.Context, cfg *Config, opts RunnerOptions) (*RunResult, error) {
	if cfg.Kind != KindSweep {
		return nil, fmt.Errorf("experiment: Run wants a %q config, got %q", KindSweep, cfg.Kind)
	}
	if opts.Drive == "" {
		opts.Drive = DriveInProcess
	}
	if opts.Drive != DriveInProcess && opts.Drive != DriveGatewayd {
		return nil, fmt.Errorf("experiment: unknown drive %q", opts.Drive)
	}
	if opts.Drive == DriveGatewayd && opts.Gatewayd == nil {
		return nil, fmt.Errorf("experiment: gatewayd drive needs a Gatewayd target")
	}
	if opts.Drive == DriveGatewayd && cfg.Metric == MetricDetection {
		return nil, fmt.Errorf("experiment: detection sweeps cannot drive a gatewayd (no wire form); use %q", DriveInProcess)
	}
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
	}

	sha := cfg.SHA()
	trials := cfg.Trials()
	done := map[string]TrialResult{}
	var journal *Journal
	if opts.JournalPath != "" {
		var err error
		done, err = ReadJournal(opts.JournalPath, sha)
		if err != nil {
			return nil, err
		}
		journal, err = OpenJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	var (
		planned   *obs.Gauge
		resumed   *obs.Counter
		completed *obs.CounterVec
		failed    *obs.Counter
		trialSec  *obs.Histogram
		offered   *obs.Counter
		decoded   *obs.CounterVec
		reconn    *obs.Counter
	)
	if m := opts.Metrics; m != nil {
		planned = m.Gauge(MetricTrialsPlanned)
		resumed = m.Counter(MetricTrialsResumed)
		completed = m.CounterVec(MetricTrialsCompleted, []string{"deployment"}, 0)
		failed = m.Counter(MetricTrialsFailed)
		trialSec = m.Histogram(MetricTrialSeconds, obs.DurationBuckets)
		offered = m.Counter(MetricPacketsOffered)
		decoded = m.CounterVec(MetricPacketsDecoded, []string{"receiver"}, receiverSeriesLimit)
		reconn = m.Counter(MetricClientReconnects)
	}
	if planned != nil {
		planned.Set(int64(len(trials)))
	}

	var pending []Trial
	for _, t := range trials {
		if _, ok := done[t.Key]; ok {
			if resumed != nil {
				resumed.Inc()
			}
			continue
		}
		pending = append(pending, t)
	}
	res := &RunResult{Results: done, Resumed: len(done)}
	log.Info("experiment start",
		"name", cfg.Name, "config_sha", sha[:12], "drive", opts.Drive,
		"trials", len(trials), "resumed", len(done), "pending", len(pending))
	if len(pending) == 0 {
		return res, nil
	}

	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var (
		mu       sync.Mutex // guards res.Results / res.Executed
		firstErr error
		claimed  atomic.Int64
		wg       sync.WaitGroup
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	work := make(chan Trial)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for t := range work {
				if ctx.Err() != nil {
					continue // drain without executing
				}
				if opts.StopAfter > 0 && claimed.Add(1) > int64(opts.StopAfter) {
					mu.Lock()
					res.Stopped = true
					mu.Unlock()
					cancel()
					continue
				}
				begin := obs.Now()
				var (
					scores map[string]ReceiverScore
					recs   int64
					err    error
				)
				if opts.Drive == DriveGatewayd {
					scores, recs, err = runTrialGatewayd(cfg, t, opts.Gatewayd)
				} else {
					scores, err = runTrialInProcess(cfg, t)
				}
				elapsed := obs.Since(begin)
				if err != nil {
					if failed != nil {
						failed.Inc()
					}
					log.Error("trial failed", "trial", t.Key, "err", err)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					continue
				}
				tr := TrialResult{
					ConfigSHA:  sha,
					Name:       cfg.Name,
					Key:        t.Key,
					Drive:      opts.Drive,
					Seed:       t.Seed,
					Receivers:  scores,
					ElapsedMS:  float64(elapsed.Milliseconds()),
					Reconnects: recs,
				}
				if journal != nil {
					if jerr := journal.Append(tr); jerr != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = jerr
						}
						mu.Unlock()
						cancel()
						continue
					}
				}
				observeTrial(tr, t, completed, trialSec, offered, decoded, reconn, elapsed.Seconds())
				logTrial(log, cfg, tr, elapsed.Seconds())
				mu.Lock()
				res.Results[t.Key] = tr
				res.Executed++
				mu.Unlock()
			}
		}()
	}
	for _, t := range pending {
		work <- t
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil && !res.Stopped {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	log.Info("experiment done",
		"name", cfg.Name, "executed", res.Executed, "resumed", res.Resumed,
		"stopped", res.Stopped)
	return res, nil
}

// observeTrial publishes one executed trial's metrics (all receivers nil
// when the run is unobserved).
func observeTrial(tr TrialResult, t Trial, completed *obs.CounterVec, trialSec *obs.Histogram, offered *obs.Counter, decoded *obs.CounterVec, reconn *obs.Counter, seconds float64) {
	if completed == nil {
		return
	}
	completed.With(t.Spec.Base).Inc()
	trialSec.Observe(seconds)
	reconn.Add(tr.Reconnects)
	for name, sc := range tr.Receivers {
		decoded.With(name).Add(int64(sc.Decoded))
		if name == "CIC" {
			offered.Add(int64(sc.Offered))
		}
	}
}

// logTrial emits one progress line, leading with the receiver under study.
func logTrial(log *slog.Logger, cfg *Config, tr TrialResult, seconds float64) {
	attrs := []any{"trial", tr.Key, "drive", tr.Drive, "seconds", fmt.Sprintf("%.2f", seconds)}
	if cic, ok := tr.Receivers["CIC"]; ok {
		attrs = append(attrs, "offered", cic.Offered)
		if cfg.Metric == MetricDetection {
			attrs = append(attrs, "cic_detection", fmt.Sprintf("%.3f", cic.DetectionRate))
		} else {
			attrs = append(attrs, "cic_prr", fmt.Sprintf("%.3f", cic.PRR))
		}
	}
	if tr.Reconnects > 0 {
		attrs = append(attrs, "reconnects", tr.Reconnects)
	}
	log.Info("trial complete", attrs...)
}
