package experiment

import (
	"fmt"

	"cic/internal/traffic"
)

// Trial is one fully-determined cell of the experiment matrix: a
// deployment point, an offered load and a seed index. Everything a trial
// needs is derived from the config and these coordinates, so trials can
// execute in any order on any number of workers and produce identical
// results.
type Trial struct {
	// Index is the trial's position in the canonical enumeration
	// (deployments × rates × seeds, in config order).
	Index int
	// Key identifies the trial in the journal: "dep/rate/seed-index".
	Key string
	// Spec is the deployment point (config entry, not yet materialised).
	Spec DeploymentSpec
	// Rate is the aggregate offered load in packets/second.
	Rate float64
	// SeedIndex is the trial's position in the seed matrix.
	SeedIndex int
	// Seed is the derived simulation seed (see trialSeed).
	Seed int64
}

// Trials expands a validated sweep config into its deterministic trial
// matrix. The enumeration order is canonical (config order), but nothing
// downstream depends on it: every trial's seed is a pure function of the
// seed base and the trial's coordinates.
func (c *Config) Trials() []Trial {
	var out []Trial
	for di, d := range c.Deployments {
		for ri, rate := range c.Rates {
			for si := 0; si < c.SeedCount(); si++ {
				out = append(out, Trial{
					Index:     len(out),
					Key:       fmt.Sprintf("%s/r%g/s%d", d.Base, rate, si),
					Spec:      d,
					Rate:      rate,
					SeedIndex: si,
					Seed:      trialSeed(c.Seeds.Base, di, ri, si),
				})
			}
		}
	}
	return out
}

// trialSeed derives a trial's simulation seed from the experiment's base
// seed and the trial coordinates. Coordinates are packed into disjoint
// bit fields and mixed through the same splitmix finalizer the traffic
// generator uses, so trials are decorrelated and the derivation is
// independent of enumeration order, worker count and resume history.
func trialSeed(base int64, dep, rate, seed int) int64 {
	stream := int64(dep)<<40 | int64(rate)<<20 | int64(seed)
	return traffic.SubSeed(base, stream)
}
