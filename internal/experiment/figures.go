package experiment

import (
	"fmt"

	"cic/internal/eval"
	"cic/internal/obs"
	"cic/internal/sim"
)

// Figures runs a KindFigure config: the analytic single-shot figures of
// internal/eval, parameterised from the config's channel / load / seed
// fields. These are not trial matrices (no journal, no CIs) — they exist
// so every committed figure of the paper regenerates from a config file.
// metrics may be nil.
func Figures(cfg *Config, metrics *obs.Registry) ([]eval.Figure, error) {
	if cfg.Kind != KindFigure {
		return nil, fmt.Errorf("experiment: Figures wants a %q config", KindFigure)
	}
	ecfg := eval.Config{
		Frame:      cfg.FrameConfig(),
		Rates:      cfg.Rates,
		Duration:   cfg.DurationS,
		PayloadLen: cfg.PayloadLen,
		Seed:       cfg.Seeds.Base,
		Workers:    cfg.Workers,
		Metrics:    metrics,
	}
	if ecfg.Duration == 0 {
		ecfg.Duration = 2.0
	}
	deps := make([]sim.Deployment, len(cfg.Deployments))
	for i, d := range cfg.Deployments {
		deps[i] = d.Deployment()
	}
	var figs []eval.Figure
	add := func(f eval.Figure, err error) error {
		if err != nil {
			return fmt.Errorf("experiment: figure %s: %w", cfg.Figure, err)
		}
		figs = append(figs, f)
		return nil
	}
	switch cfg.Figure {
	case "heisenberg":
		return figs, add(eval.Heisenberg(ecfg))
	case "cancellation":
		return figs, add(eval.Cancellation(ecfg))
	case "clutter":
		return figs, add(eval.PreambleClutter(ecfg))
	case "snr":
		return figs, add(eval.SNRDistribution(ecfg))
	case "maps":
		return figs, add(eval.DeploymentMaps(ecfg))
	case "spectra":
		return figs, add(eval.SpectraDemo(ecfg))
	case "temporal":
		return figs, add(eval.TemporalProximity(ecfg))
	case "ablation":
		for _, d := range deps {
			if err := add(eval.Ablation(ecfg, d)); err != nil {
				return nil, err
			}
		}
		return figs, nil
	case "icss":
		for _, d := range deps {
			if err := add(eval.ICSSComparison(ecfg, d)); err != nil {
				return nil, err
			}
		}
		return figs, nil
	default:
		// Validate guarantees the name; keep the error path total.
		return nil, fmt.Errorf("experiment: unknown figure %q", cfg.Figure)
	}
}
