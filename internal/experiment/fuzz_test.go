package experiment

import (
	"strings"
	"testing"
)

// FuzzParseExperimentConfig asserts the strict parser's safety contract:
// it never panics on arbitrary bytes, and anything it accepts satisfies
// the schema invariants (version pinned, channel in range, kind/metric
// consistent, positive rates).
func FuzzParseExperimentConfig(f *testing.F) {
	f.Add([]byte(validConfigJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"version":1,"name":"x","kind":"figure","figure":"snr","deployments":[{"base":"D1"}]}`))
	f.Add([]byte(`{"version":1,"name":"x","kind":"sweep","metric":"prr","channel":{"sf":99},"deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`))
	f.Add([]byte(`{"version":1,"name":"x","kind":"sweep","metric":"prr","channel":{"bandwidth_hz":1},"deployments":[{"base":"D1"}],"rates":[10],"duration_s":1}`))
	f.Add([]byte(`{"version":1,"unknown_key":true}`))
	f.Add([]byte(`{"version":1e999}`))
	f.Add([]byte(strings.Repeat(`{"a":`, 64)))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return
		}
		if cfg.Version != SchemaVersion {
			t.Fatalf("accepted version %d", cfg.Version)
		}
		if cfg.Name == "" {
			t.Fatal("accepted empty name")
		}
		if cfg.Kind != KindSweep && cfg.Kind != KindFigure {
			t.Fatalf("accepted kind %q", cfg.Kind)
		}
		if sf := cfg.Channel.SF; sf != 0 && (sf < 7 || sf > 12) {
			t.Fatalf("accepted SF %d", sf)
		}
		switch bw := cfg.Channel.BandwidthHz; bw {
		case 0, 125e3, 250e3, 500e3:
		default:
			t.Fatalf("accepted bandwidth %g", bw)
		}
		if len(cfg.Deployments) == 0 {
			t.Fatal("accepted empty deployment list")
		}
		for _, r := range cfg.Rates {
			if r <= 0 {
				t.Fatalf("accepted rate %g", r)
			}
		}
		if cfg.Kind == KindSweep {
			if cfg.Metric != MetricThroughput && cfg.Metric != MetricPRR && cfg.Metric != MetricDetection {
				t.Fatalf("accepted sweep metric %q", cfg.Metric)
			}
			// A valid sweep must expand to a nonempty, panic-free matrix.
			if len(cfg.Trials()) == 0 {
				t.Fatal("valid sweep expands to zero trials")
			}
		}
		// Derived accessors must be total on accepted configs.
		_ = cfg.FrameConfig()
		_ = cfg.GatewayConfig()
		_ = cfg.SHA()
		_ = cfg.ReceiverNames()
	})
}
