package experiment

// Metric names the experiment runner publishes on its obs.Registry. Every
// name here must be documented in docs/OBSERVABILITY.md — the
// TestMetricsDocumented catalogue test enforces it.
const (
	// MetricTrialsPlanned is the size of the expanded trial matrix.
	MetricTrialsPlanned = "experiment_trials_planned"
	// MetricTrialsResumed counts trials satisfied from the journal
	// without recomputation.
	MetricTrialsResumed = "experiment_trials_resumed"
	// MetricTrialsCompleted counts trials executed this run, labeled by
	// deployment base.
	MetricTrialsCompleted = "experiment_trials_completed"
	// MetricTrialsFailed counts trials that returned an error.
	MetricTrialsFailed = "experiment_trials_failed"
	// MetricTrialSeconds is the wall-clock histogram of trial execution.
	MetricTrialSeconds = "experiment_trial_seconds"
	// MetricPacketsOffered counts ground-truth packets across executed
	// trials.
	MetricPacketsOffered = "experiment_packets_offered"
	// MetricPacketsDecoded counts correctly decoded packets across
	// executed trials, labeled by receiver.
	MetricPacketsDecoded = "experiment_packets_decoded"
	// MetricClientReconnects counts ReconnectingClient recoveries in the
	// gatewayd drive mode (fault schedules make this non-zero).
	MetricClientReconnects = "experiment_client_reconnects"
)

// receiverSeriesLimit caps the receiver label cardinality of
// MetricPacketsDecoded: the known receiver set is tiny, but the limit
// keeps a malformed config from growing the registry unboundedly.
const receiverSeriesLimit = 16
